// Data exchange: the schema-mapping scenario of the paper's introduction.
// The rule Order(i,p) → ∃x Cust(x) ∧ Pref(x,p) is chased over a source
// database, inventing marked nulls for the unknown customers, and certain
// answers are computed over the exchanged (incomplete) target instance.
package main

import (
	"fmt"

	"incdata/internal/cq"
	"incdata/internal/exchange"
	"incdata/internal/schema"
	"incdata/internal/table"
)

func main() {
	source := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	target := schema.MustNew(
		schema.NewRelation("Cust", "cust"),
		schema.NewRelation("Pref", "cust", "product"),
	)
	mapping := exchange.Mapping{
		Source: source,
		Target: target,
		Dependencies: []exchange.Dependency{{
			Name: "order-to-cust",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head: []cq.Atom{
				cq.NewAtom("Cust", cq.V("x")),
				cq.NewAtom("Pref", cq.V("x"), cq.V("p")),
			},
			Existential: []string{"x"},
		}},
	}
	fmt.Println("mapping:", mapping.Dependencies[0])

	src := table.NewDatabase(source)
	src.MustAddRow("Order", "oid1", "pr1")
	src.MustAddRow("Order", "oid2", "pr2")
	fmt.Println("\nsource:")
	fmt.Println(src)

	solution, err := mapping.Chase(src)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncanonical universal solution (note the shared marked nulls):")
	fmt.Println(solution)

	// Certain answers over the exchanged data.
	prefs := cq.Single(cq.Query{
		Name: "prefs",
		Head: []string{"p"},
		Body: []cq.Atom{cq.NewAtom("Pref", cq.V("x"), cq.V("p"))},
	})
	ans, err := mapping.CertainAnswers(prefs, src)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncertain answers to prefs(p) :- Pref(x,p):")
	fmt.Println(ans)

	customers := cq.Single(cq.Query{
		Name: "customers",
		Head: []string{"x"},
		Body: []cq.Atom{cq.NewAtom("Cust", cq.V("x"))},
	})
	ans2, err := mapping.CertainAnswers(customers, src)
	if err != nil {
		panic(err)
	}
	fmt.Println("certain answers to customers(x) :- Cust(x):", ans2, "(no customer id is known)")
}
