// Data exchange: the schema-mapping scenario of the paper's introduction.
// The rule Order(i,p) → ∃x Cust(x) ∧ Pref(x,p) is chased over a source
// database, inventing marked nulls for the unknown customers, and certain
// answers are computed over the exchanged (incomplete) target instance —
// the chase builds the canonical universal solution, and the engine facade
// evaluates the queries over it.
package main

import (
	"fmt"

	"incdata/internal/cq"
	"incdata/internal/engine"
	"incdata/internal/exchange"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

func main() {
	source := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	target := schema.MustNew(
		schema.NewRelation("Cust", "cust"),
		schema.NewRelation("Pref", "cust", "product"),
	)
	mapping := exchange.Mapping{
		Source: source,
		Target: target,
		Dependencies: []exchange.Dependency{{
			Name: "order-to-cust",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head: []cq.Atom{
				cq.NewAtom("Cust", cq.V("x")),
				cq.NewAtom("Pref", cq.V("x"), cq.V("p")),
			},
			Existential: []string{"x"},
		}},
	}
	fmt.Println("mapping:", mapping.Dependencies[0])

	src := table.NewDatabase(source)
	src.MustAddRow("Order", "oid1", "pr1")
	src.MustAddRow("Order", "oid2", "pr2")
	fmt.Println("\nsource:")
	fmt.Println(src)

	solution, err := mapping.Chase(src)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncanonical universal solution (note the shared marked nulls):")
	fmt.Println(solution)

	// Certain answers over the exchanged data: evaluate on the canonical
	// universal solution and keep the null-free part — ModeCertain of the
	// engine, which is exactly what makes chase-then-evaluate compute the
	// certain answers of the mapping.
	eng := engine.New(solution)

	prefs := ra.Project{Input: ra.Base("Pref"), Attrs: []string{"product"}}
	ans, err := eng.Eval(prefs, engine.Options{Mode: engine.ModeCertain})
	if err != nil {
		panic(err)
	}
	fmt.Println("\ncertain answers to prefs(p) :- Pref(x,p):")
	fmt.Println(ans)

	customers := ra.Project{Input: ra.Base("Cust"), Attrs: []string{"cust"}}
	ans2, err := eng.Eval(customers, engine.Options{Mode: engine.ModeCertain})
	if err != nil {
		panic(err)
	}
	fmt.Println("certain answers to customers(x) :- Cust(x):", ans2, "(no customer id is known)")

	// The naïve answers keep the invented nulls — the engine's ModeNaive
	// shows what null stripping removed.
	raw, err := eng.Eval(customers, engine.Options{Mode: engine.ModeNaive})
	if err != nil {
		panic(err)
	}
	fmt.Println("naïve answers with invented nulls:", raw)
}
