// Quickstart: build a small incomplete database, evaluate a query through
// the engine facade under the evaluation modes the library provides, and
// see where SQL-style evaluation and certain answers part ways.
package main

import (
	"fmt"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

func main() {
	// A naïve database: R(a,b) with a repeated marked null ⊥1.
	s := schema.MustNew(schema.NewRelation("R", "a", "b"), schema.NewRelation("S", "b"))
	db := table.NewDatabase(s)
	db.MustAddRow("R", "1", "⊥1")
	db.MustAddRow("R", "⊥1", "2")
	db.MustAddRow("R", "3", "4")
	db.MustAddRow("S", "2")
	db.MustAddRow("S", "⊥2")

	fmt.Println("database:")
	fmt.Println(db)
	fmt.Printf("complete: %v, Codd table: %v, nulls: %d\n\n",
		db.IsComplete(), db.IsCodd(), len(db.Nulls()))

	// The engine owns evaluation: one instance per logical database, every
	// mode behind one Options struct.
	eng := engine.New(db)

	// A positive query: π_a(σ_{b=2}(R)).
	q := ra.Project{
		Input: ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("b"), ra.LitInt(2))},
		Attrs: []string{"a"},
	}
	fmt.Println("query:", q)
	fmt.Println("fragment:", ra.Classify(q))

	naive, err := eng.Eval(q, engine.Options{Mode: engine.ModeNaive})
	if err != nil {
		panic(err)
	}
	fmt.Println("naïve evaluation:        ", naive)

	certainAns, err := eng.Eval(q, engine.Options{Mode: engine.ModeCertain})
	if err != nil {
		panic(err)
	}
	fmt.Println("certain (naïve+strip):   ", certainAns)

	truth, err := eng.Eval(q, engine.Options{Mode: engine.ModeCertainCWA, ExtraFresh: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("certain (world enum):    ", truth)
	fmt.Println("naïve route agrees with ground truth:", certainAns.Equal(truth))

	// Writers and readers can overlap: a snapshot keeps answering from the
	// state it was taken at, while updates land on the live database.
	snap := eng.Snapshot()
	if err := eng.Update(func(d *table.Database) error {
		return d.Add("R", table.MustParseTuple("5", "2"))
	}); err != nil {
		panic(err)
	}
	before, _ := snap.Eval(q, engine.Options{Mode: engine.ModeCertain})
	after, _ := eng.Eval(q, engine.Options{Mode: engine.ModeCertain})
	fmt.Println("\nafter inserting R(5,2):")
	fmt.Println("  old snapshot still answers:", before)
	fmt.Println("  current state answers:     ", after)

	// A non-positive query: the same idea with a difference inside shows why
	// the fragment check matters.
	diff := ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Product{
		Left:  ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"a"}},
		Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"b"}},
	}}, Attrs: []string{"a"}}
	fmt.Println("\nnon-positive query:", diff)
	fmt.Println("sound to use naïve evaluation under CWA?", ra.NaiveEvalSound(diff, true))
}
