// Division under the closed-world assumption: the RAcwa fragment of
// Section 6.2.  "Students who take all courses" is a division query;
// cwa-naïve evaluation computes its certain answers correctly, which the
// example verifies against explicit world enumeration — both modes
// evaluated through the engine facade.
package main

import (
	"fmt"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/workload"
)

func main() {
	db := table.NewDatabase(workload.EnrollSchema())
	for _, row := range [][]string{
		{"alice", "db"}, {"alice", "os"}, {"alice", "nets"},
		{"bob", "db"}, {"bob", "⊥1"},
		{"carol", "db"}, {"carol", "os"},
	} {
		db.MustAddRow("Enroll", row...)
	}
	for _, c := range []string{"db", "os", "nets"} {
		db.MustAddRow("Course", c)
	}
	fmt.Println(db)

	eng := engine.New(db)

	q := ra.Division{Left: ra.Base("Enroll"), Right: ra.Base("Course")}
	fmt.Println("\nquery:", q)
	fmt.Println("fragment:", ra.Classify(q), "— naïve evaluation sound under CWA:", ra.NaiveEvalSound(q, true))

	naive, err := eng.Eval(q, engine.Options{Mode: engine.ModeCertain})
	if err != nil {
		panic(err)
	}
	fmt.Println("cwa-naïve certain answers:", naive)

	truth, err := eng.Eval(q, engine.Options{Mode: engine.ModeCertainCWA, ExtraFresh: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("world-enumeration ground truth:", truth)
	fmt.Println("agree:", naive.Equal(truth))

	// Note that bob is not in the answer even though ⊥1 *could* be "os" and
	// "nets" is missing anyway; and that under OWA the answer would not even
	// be well defined by naïve evaluation — division is not a positive query.
	fmt.Println("\nsound under OWA too?", ra.NaiveEvalSound(q, false))

	// At scale (experiment E9 uses the same generator).
	big, _ := workload.Enroll(workload.EnrollConfig{Students: 2000, Courses: 4, EnrollRate: 0.85, NullRate: 0.02, Seed: 5})
	ans, err := engine.New(big).Eval(q, engine.Options{Mode: engine.ModeCertain})
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated workload: %d enrolments, %d students certainly take all %d courses\n",
		big.Relation("Enroll").Len(), ans.Len(), big.Relation("Course").Len())
}
