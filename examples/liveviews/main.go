// Live views: certain answers maintained across updates.  The unpaid-orders
// query of the paper's introduction is registered as a view; the engine
// then keeps its certain answer current on every commit by propagating the
// captured tuple deltas through the view's delta network — no query is
// re-evaluated, yet the answer is always bit-identical to re-evaluation.
package main

import (
	"fmt"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/workload"
)

func main() {
	db := table.NewDatabase(workload.OrdersSchema())
	db.MustAddRow("Order", "oid1", "pr1")
	db.MustAddRow("Order", "oid2", "pr2")
	db.MustAddRow("Pay", "pid1", "⊥1", "100")
	eng := engine.New(db)

	// Register the introduction's query as a maintained view: certain
	// answers by naïve evaluation + null stripping, kept fresh from deltas.
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	if err := eng.Register("unpaid", unpaid, engine.Options{Mode: engine.ModeCertain}); err != nil {
		panic(err)
	}
	show := func(when string) {
		ans, err := eng.Answers("unpaid")
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s %v\n", when+":", ans)
	}
	show("initially")

	// A new order arrives: its delta flows through the view's difference
	// node and surfaces immediately — the unknown payment can't cover it.
	must(eng.Update(func(db *table.Database) error {
		return db.Add("Order", table.NewTuple(value.String("oid3"), value.String("pr9")))
	}))
	show("after adding oid3")

	// The mystery payment is resolved to oid1; deleting the null-carrying
	// tuple and inserting the resolved one refreshes the view again.
	must(eng.Update(func(db *table.Database) error {
		db.Relation("Pay").Remove(table.MustParseTuple("pid1", "⊥1", "100"))
		return db.Add("Pay", table.MustParseTuple("pid1", "oid1", "100"))
	}))
	show("after resolving ⊥1 to oid1")

	// An answer handed out earlier is a copy-on-write clone: it stays
	// exactly as it was while the engine refreshes the view underneath.
	before, err := eng.Answers("unpaid")
	if err != nil {
		panic(err)
	}
	must(eng.Update(func(db *table.Database) error {
		return db.Add("Pay", table.MustParseTuple("pid2", "oid2", "55"))
	}))
	show("after paying oid2")
	fmt.Printf("%-28s %v\n", "the clone from before:", before)

	// An update to a relation the view does not read is validated as a
	// no-op from the captured delta — the view is not even refreshed.
	must(eng.Update(func(db *table.Database) error { return nil }))
	st, err := eng.ViewStats("unpaid")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nview stats: %d updates seen, %d skipped as irrelevant, %d incremental refreshes, %d recomputes\n",
		st.Updates, st.Skipped, st.Incremental, st.Recomputed)
	fmt.Printf("delta volume: %d base tuples in, %d answer tuples changed\n", st.DeltaIn, st.DeltaOut)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
