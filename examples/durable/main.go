// Durability: persist an engine to a content-addressed store, commit over
// it, crash mid-append, and recover.  The delta algebra that drives
// incremental maintenance is also the write-ahead log: every commit
// appends one CRC-framed record to log.bin, relation contents live in
// sha256-keyed chunks shared across commits, and Open replays the log's
// valid prefix — a torn tail from a crash is truncated, landing the
// engine on the last fully appended commit with the whole history (and
// time travel) intact.  A memory budget on evaluation demonstrates the
// spill-to-disk join on the reopened store.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/version"
	"incdata/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "incdata-durable-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")

	// A small orders database with one unknown: which order pid1 paid for.
	db := table.NewDatabase(workload.OrdersSchema())
	db.MustAddRow("Order", "oid1", "pr1")
	db.MustAddRow("Order", "oid2", "pr2")
	db.MustAddRow("Pay", "pid1", "⊥1", "100")
	eng := engine.New(db)

	// Persist: the store directory gets a chunk store and a commit log;
	// from here on every commit is durable.
	must(eng.Persist(storeDir))
	fmt.Printf("persisted to %s\n", storeDir)

	// Two durable commits: a new order, then the null refined to oid1.
	must(eng.Update(func(db *table.Database) error {
		return db.Add("Order", table.MustParseTuple("oid3", "pr3"))
	}))
	c1, err := eng.Commit("add oid3")
	must(err)
	must(eng.Update(func(db *table.Database) error {
		db.Relation("Pay").Remove(table.MustParseTuple("pid1", "⊥1", "100"))
		return db.Add("Pay", table.MustParseTuple("pid1", "oid1", "100"))
	}))
	c2, err := eng.Commit("payment was for oid1")
	must(err)
	must(eng.Close())

	// Crash: a power cut mid-append leaves a torn record at the log tail.
	log, err := os.OpenFile(filepath.Join(storeDir, "log.bin"), os.O_APPEND|os.O_WRONLY, 0o644)
	must(err)
	_, err = log.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}) // half a frame header
	must(err)
	must(log.Close())
	fmt.Println("simulated crash: torn record appended to log.bin")

	// Recovery: Open truncates the torn tail and replays the valid prefix.
	eng2, err := engine.Open(storeDir)
	must(err)
	defer eng2.Close()
	_, head, err := eng2.Head()
	must(err)
	fmt.Printf("reopened at head %s (crash lost nothing committed: head == c2 is %v)\n", head, head == c2)

	// Time travel runs against the recovered history exactly as in memory.
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	certain := engine.Options{Mode: engine.ModeCertain}
	for _, at := range []struct {
		label string
		id    version.CommitID
	}{{"after adding oid3", c1}, {"after refining ⊥1→oid1", c2}} {
		snap, err := eng2.AsOf(at.id)
		must(err)
		r, err := snap.Eval(unpaid, certain)
		must(err)
		fmt.Printf("unpaid %-24s %v\n", at.label+":", r)
	}

	// Larger than RAM: a tiny MemBudget forces the join to spill both
	// sides to disk partitions — same certain answer, bounded memory.
	paid := ra.Project{
		Input: ra.Join{
			Left:  ra.Base("Order"),
			Right: ra.Rename{Input: ra.Base("Pay"), As: "P", Attrs: []string{"p_id", "o_id", "amount"}},
		},
		Attrs: []string{"o_id", "amount"},
	}
	unbounded, err := eng2.Eval(paid, certain)
	must(err)
	budgeted := certain
	budgeted.MemBudget = 64 // bytes — everything spills
	spilled, err := eng2.Eval(paid, budgeted)
	must(err)
	fmt.Printf("\npaid join unbounded:        %v\n", unbounded)
	fmt.Printf("paid join with 64B budget:  %v  (identical: %v)\n", spilled, spilled.Equal(unbounded))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
