// Time travel: commit history, historical certain answers, and an
// order-theoretic merge.  The engine records every update's captured
// deltas in a commit DAG; certain-answer queries run against any
// historical commit exactly as against the live head, and two branches
// that refine the same unknown (marked null) in different ways merge via
// the informativeness order — keeping exactly the certainty both branches
// share, with conflicts reported instead of silently picking a winner.
package main

import (
	"fmt"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/workload"
)

func main() {
	db := table.NewDatabase(workload.OrdersSchema())
	db.MustAddRow("Order", "oid1", "pr1")
	db.MustAddRow("Order", "oid2", "pr2")
	db.MustAddRow("Pay", "pid1", "⊥1", "100") // a payment for an unknown order
	eng := engine.New(db)

	// Enable history: the current state becomes the root commit of the
	// "main" branch.
	root, err := eng.EnableHistory(engine.HistoryOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("root commit: %s\n", root)

	// The introduction's query: orders certainly unpaid.
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	certain := engine.Options{Mode: engine.ModeCertain}

	// Commit a new order, then branch: two teams will resolve the
	// mystery payment independently.
	must(eng.Update(func(db *table.Database) error {
		return db.Add("Order", table.MustParseTuple("oid3", "pr3"))
	}))
	c1, _ := eng.Commit("add oid3")
	must(eng.Branch("audit"))

	// Main refines ⊥1 to oid1.
	must(eng.Update(func(db *table.Database) error {
		db.Relation("Pay").Remove(table.MustParseTuple("pid1", "⊥1", "100"))
		return db.Add("Pay", table.MustParseTuple("pid1", "oid1", "100"))
	}))
	c2, _ := eng.Commit("main: payment was for oid1")

	// The audit branch concludes it was oid2 — a conflicting refinement.
	must(eng.Checkout("audit"))
	must(eng.Update(func(db *table.Database) error {
		db.Relation("Pay").Remove(table.MustParseTuple("pid1", "⊥1", "100"))
		return db.Add("Pay", table.MustParseTuple("pid1", "oid2", "100"))
	}))
	_, _ = eng.Commit("audit: payment was for oid2")

	// Time travel: the certain answer at each point in history.
	show := func(label string, rel *table.Relation, err error) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-34s %v\n", label+":", rel)
	}
	snap, err := eng.AsOf(root)
	if err != nil {
		panic(err)
	}
	r, err := snap.Eval(unpaid, certain)
	show("unpaid at root", r, err)
	snap, err = eng.AsOf(c1)
	if err != nil {
		panic(err)
	}
	r, err = snap.Eval(unpaid, certain)
	show("unpaid after adding oid3", r, err)
	snap, err = eng.AsOf(c2)
	if err != nil {
		panic(err)
	}
	r, err = snap.Eval(unpaid, certain)
	show("unpaid on main (⊥1→oid1)", r, err)

	// Merge audit into main.  The two branches refined the same null to
	// different constants: the merge keeps their greatest lower bound — a
	// fresh null, i.e. "some order was paid, which one is again uncertain"
	// — and reports the conflict explicitly.
	must(eng.Checkout("main"))
	res, err := eng.Merge("audit", "merge audit findings")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmerge commit %s, %d conflict(s)\n", res.Commit, len(res.Conflicts))
	for _, c := range res.Conflicts {
		fmt.Printf("  conflict: %s\n", c)
	}
	r, err = eng.Eval(unpaid, certain)
	show("unpaid after merge", r, err)

	// The net change across the whole history, composed from the
	// per-commit deltas.
	_, head, err := eng.Head()
	if err != nil {
		panic(err)
	}
	cs, err := eng.DiffVersions(root, head)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nnet change root..head:\n%s", cs)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
