// Unpaid orders: the running example of the paper's introduction.  A
// payment references an unknown order (a null); the SQL NOT IN query claims
// no order is unpaid, while certain-answer evaluation tells the truth.
// Every evaluation — SQL semantics included — goes through the engine
// facade.
package main

import (
	"fmt"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/sqlx"
	"incdata/internal/table"
	"incdata/internal/workload"
)

func main() {
	// The exact instance from the paper:
	//   Order = {(oid1,pr1),(oid2,pr2)},  Pay = {(pid1, ⊥, 100)}.
	db := table.NewDatabase(workload.OrdersSchema())
	db.MustAddRow("Order", "oid1", "pr1")
	db.MustAddRow("Order", "oid2", "pr2")
	db.MustAddRow("Pay", "pid1", "⊥1", "100")
	fmt.Println(db)
	fmt.Println()

	eng := engine.New(db)

	// SQL, as a student would write it.
	sqlQuery := sqlx.Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: sqlx.In{
			Term:   sqlx.Col("o_id"),
			Sub:    sqlx.Subquery{Select: "order", From: "Pay"},
			Negate: true,
		},
	}
	sqlAns, err := eng.SQL(sqlQuery)
	if err != nil {
		panic(err)
	}
	fmt.Println("SQL:", sqlQuery)
	fmt.Println("SQL answer (3-valued logic):", sqlAns)
	fmt.Println("  -> the empty answer: SQL claims every order is paid!")
	fmt.Println()

	// The same question in relational algebra.
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	// Tuple-level certainty: no specific order is certainly unpaid, because
	// the unknown payment could be for either one.
	tupleCertain, err := eng.Eval(unpaid, engine.Options{Mode: engine.ModeCertainCWA, ExtraFresh: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("orders certainly unpaid (tuple level):", tupleCertain)

	// Boolean certainty: it IS certain that some order is unpaid, because
	// two orders cannot both be covered by a single payment.
	someUnpaid, err := eng.EvalBool(unpaid, engine.Options{ExtraFresh: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("\"some order is unpaid\" is certain:", someUnpaid)
	fmt.Println()

	// At scale: the generated workload used by experiment E1, served as one
	// concurrent batch against a consistent snapshot.
	gen, trulyUnpaid := workload.Orders(workload.OrdersConfig{Orders: 1000, PaidFraction: 0.7, NullRate: 0.3, Seed: 1})
	genEng := engine.New(gen)
	resp := genEng.Serve([]engine.Request{
		{SQL: &sqlQuery},
		{Query: unpaid, Opts: engine.Options{Mode: engine.ModeCertain}},
	}, 2)
	for _, r := range resp {
		if r.Err != nil {
			panic(r.Err)
		}
	}
	fmt.Printf("generated workload: %d orders, %d truly unpaid, SQL NOT IN reports %d, certain answers report %d\n",
		gen.Relation("Order").Len(), len(trulyUnpaid), resp[0].Rel.Len(), resp[1].Rel.Len())
}
