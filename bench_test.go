// Package incdata's root-level benchmarks: one Benchmark per reproduction
// experiment (E1–E19, see the "Experiments" section of README.md).  Each benchmark
// re-runs the corresponding experiment's workload at a representative
// parameter point; cmd/incbench prints the full sweeps as tables.
package incdata_test

import (
	"testing"

	"incdata/internal/certain"
	"incdata/internal/cq"
	"incdata/internal/ctable"
	"incdata/internal/engine"
	"incdata/internal/exchange"
	"incdata/internal/experiments"
	"incdata/internal/order"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/sqlx"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/workload"
)

// ordersDB builds the E1/E2/E3 workload once per benchmark.
func ordersDB(b *testing.B, n int, nullRate float64) *table.Database {
	b.Helper()
	d, _ := workload.Orders(workload.OrdersConfig{Orders: n, PaidFraction: 0.7, NullRate: nullRate, Seed: 42})
	return d
}

func BenchmarkE1UnpaidOrders(b *testing.B) {
	d := ordersDB(b, 2000, 0.3)
	sqlQ := sqlx.Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where:  sqlx.In{Term: sqlx.Col("o_id"), Sub: sqlx.Subquery{Select: "order", From: "Pay"}, Negate: true},
	}
	raQ := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	b.Run("sql-not-in", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqlx.Eval(sqlQ, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-certain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.Naive(raQ, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE2DifferenceAnomaly(b *testing.B) {
	d := workload.Pairs(workload.PairsConfig{RSize: 5000, SSize: 1, SNulls: 1, DomainSize: 50000, Seed: 7})
	sqlQ := sqlx.Query{
		Select: []string{"A"},
		From:   "R",
		Where:  sqlx.In{Term: sqlx.Col("A"), Sub: sqlx.Subquery{Select: "A", From: "S"}, Negate: true},
	}
	raQ := ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")}
	b.Run("sql-not-in", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqlx.Eval(sqlQ, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ra.Eval(raQ, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE3Tautology(b *testing.B) {
	d := ordersDB(b, 1000, 0.5)
	sqlQ := sqlx.Query{
		Select: []string{"p_id"},
		From:   "Pay",
		Where: sqlx.AnyOf(
			sqlx.Eq(sqlx.Col("order"), sqlx.ValString("oid1")),
			sqlx.Neq(sqlx.Col("order"), sqlx.ValString("oid1")),
		),
	}
	for i := 0; i < b.N; i++ {
		if _, err := sqlx.Eval(sqlQ, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4CTableStrong(b *testing.B) {
	rRel := table.NewRelation(schema.NewRelation("R", "A"))
	for i := 0; i < 12; i++ {
		rRel.MustAdd(table.NewTuple(value.Int(int64(i + 1))))
	}
	sRel := table.NewRelation(schema.NewRelation("S", "A"))
	sRel.MustAdd(table.NewTuple(value.Null(1)))
	dom := make([]value.Value, 0, 13)
	for i := 0; i < 13; i++ {
		dom = append(dom, value.Int(int64(i+1)))
	}
	for i := 0; i < b.N; i++ {
		diff, err := ctable.Diff(ctable.FromRelation(rRel), ctable.FromRelation(sRel))
		if err != nil {
			b.Fatal(err)
		}
		diff.Worlds(dom, func(*table.Relation) bool { return true })
	}
}

func BenchmarkE5NaiveUCQ(b *testing.B) {
	d := workload.Random(workload.RandomConfig{
		Relations: map[string]int{"R": 2, "S": 2}, TuplesPerRelation: 8,
		DomainSize: 5, Nulls: 3, NullRate: 0.3, Seed: 11,
	})
	q := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.Naive(q, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("world-enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.ByWorldsCWA(q, d, certain.Options{ExtraFresh: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE6Complexity(b *testing.B) {
	q := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	for _, nulls := range []int{1, 2, 3} {
		d := workload.Random(workload.RandomConfig{
			Relations: map[string]int{"R": 2, "S": 2}, TuplesPerRelation: 20,
			DomainSize: 10, Nulls: nulls, NullRate: 0.2, Seed: int64(nulls),
		})
		b.Run("naive/nulls="+itoa(nulls), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.Naive(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("worlds/nulls="+itoa(nulls), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.ByWorldsCWA(q, d, certain.Options{ExtraFresh: 1, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

func BenchmarkE7Duality(b *testing.B) {
	s := schema.MustNew(schema.WithArity("R", 2))
	d := workload.Random(workload.RandomConfig{
		Relations: map[string]int{"R": 2}, TuplesPerRelation: 12,
		DomainSize: 5, Nulls: 3, NullRate: 0.3, Seed: 17,
	})
	q := cq.Query{Body: []cq.Atom{
		cq.NewAtom("R", cq.V("x"), cq.V("y")),
		cq.NewAtom("R", cq.V("y"), cq.V("z")),
		cq.NewAtom("R", cq.V("z"), cq.V("w")),
	}}
	b.Run("naive-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.EvalBool(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("containment", func(b *testing.B) {
		qd := cq.FromDatabase(d)
		for i := 0; i < b.N; i++ {
			if _, err := cq.Contained(qd, q, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE8CertainO(b *testing.B) {
	s := schema.MustNew(schema.WithArity("R", 2))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "2", "⊥1")
	q := ra.Base("R")
	b.Run("intersection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.ByWorldsCWA(q, d, certain.Options{ExtraFresh: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("certainO-glb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.CertainObjectCWA(q, d, certain.Options{ExtraFresh: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE9DivisionCWA(b *testing.B) {
	d, _ := workload.Enroll(workload.EnrollConfig{Students: 2000, Courses: 4, EnrollRate: 0.85, NullRate: 0.02, Seed: 5})
	q := ra.Division{Left: ra.Base("Enroll"), Right: ra.Base("Course")}
	for i := 0; i < b.N; i++ {
		if _, err := certain.Naive(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Exchange(b *testing.B) {
	src := table.NewDatabase(schema.MustNew(schema.NewRelation("Order", "o_id", "product")))
	for i := 0; i < 5000; i++ {
		src.MustAddRow("Order", "oid"+itoa5(i), "pr"+itoa5(i%97))
	}
	m := exchange.Mapping{
		Source: schema.MustNew(schema.NewRelation("Order", "o_id", "product")),
		Target: schema.MustNew(schema.NewRelation("Cust", "cust"), schema.NewRelation("Pref", "cust", "product")),
		Dependencies: []exchange.Dependency{{
			Name:        "order-to-cust",
			Body:        []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head:        []cq.Atom{cq.NewAtom("Cust", cq.V("x")), cq.NewAtom("Pref", cq.V("x"), cq.V("p"))},
			Existential: []string{"x"},
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Chase(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11Theorem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Harness{}.E11Theorem(5)
	}
}

// BenchmarkE13EngineBatch measures the engine's concurrent batch path: a
// mixed SQL/certain-answer batch served against one snapshot, serial vs a
// worker pool (the CI bench smoke covers this path).
func BenchmarkE13EngineBatch(b *testing.B) {
	d := ordersDB(b, 500, 0.3)
	eng := engine.New(d)
	sqlQ := sqlx.Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: sqlx.Exists{
			Sub:    sqlx.Subquery{From: "Pay", Correlate: []sqlx.Correlation{{Inner: "order", Outer: "o_id"}}},
			Negate: true,
		},
	}
	raQ := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	reqs := make([]engine.Request, 64)
	for i := range reqs {
		if i%2 == 0 {
			reqs[i] = engine.Request{SQL: &sqlQ}
		} else {
			reqs[i] = engine.Request{Query: raQ, Opts: engine.Options{Mode: engine.ModeCertain}}
		}
	}
	check := func(b *testing.B, resp []engine.Response) {
		b.Helper()
		for _, r := range resp {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check(b, eng.Serve(reqs, 1))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check(b, eng.Serve(reqs, 0))
		}
	})
}

// BenchmarkE14IncrementalViews measures the maintained-view refresh path
// against per-update full re-evaluation on the same update stream (the CI
// bench smoke covers this path).
func BenchmarkE14IncrementalViews(b *testing.B) {
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	update := func(b *testing.B, eng *engine.Engine, i int) {
		b.Helper()
		err := eng.Update(func(db *table.Database) error {
			return db.Add("Order", table.NewTuple(value.String("bench-o"+itoa5(i)), value.String("pr1")))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		eng := engine.New(ordersDB(b, 500, 0.3))
		if err := eng.Register("unpaid", unpaid, engine.Options{Mode: engine.ModeCertain}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			update(b, eng, i)
			if _, err := eng.Answers("unpaid"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		eng := engine.New(ordersDB(b, 500, 0.3))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			update(b, eng, i)
			if _, err := eng.Eval(unpaid, engine.Options{Mode: engine.ModeCertain}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE12Orderings(b *testing.B) {
	a := workload.Random(workload.RandomConfig{Relations: map[string]int{"R": 2}, TuplesPerRelation: 8, DomainSize: 4, Nulls: 3, NullRate: 0.3, Seed: 1})
	c := workload.Random(workload.RandomConfig{Relations: map[string]int{"R": 2}, TuplesPerRelation: 8, DomainSize: 4, Nulls: 3, NullRate: 0.1, Seed: 2})
	b.Run("leq-owa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order.LeqOWA(a, c)
		}
	})
	b.Run("leq-cwa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order.LeqCWA(a, c)
		}
	})
	b.Run("glb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := order.GLBOWA([]*table.Database{a, c}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- small helpers kept out of the library ---

func itoa5(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	var out []byte
	for i > 0 {
		out = append([]byte{digits[i%10]}, out...)
		i /= 10
	}
	return string(out)
}

// BenchmarkE15VersionHistory measures the version subsystem's commit and
// time-travel path on a small stream (the CI bench smoke covers it).
func BenchmarkE15VersionHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Harness{}.E15VersionHistory(30, 4, []int{8}, 50)
	}
}

// BenchmarkE16ParallelScaling measures intra-query morsel parallelism: an
// E5-style join-project UCQ at a size well past the plan layer's parallel
// cutoff, evaluated serially (Workers: 1, the differential oracle the
// parallel path is pinned against) and on a full worker pool (Workers: 0 =
// GOMAXPROCS).  Run with -cpu 1,2,4 the parallel variant shows core-count
// scaling; under -cpu 1 both variants must coincide, which bounds the
// pool's overhead (the CI bench smoke checks exactly that).
func BenchmarkE16ParallelScaling(b *testing.B) {
	d := workload.Random(workload.RandomConfig{
		Relations: map[string]int{"R": 2, "S": 2}, TuplesPerRelation: 4000,
		DomainSize: 504, Nulls: 3, NullRate: 0.02, Seed: 16,
	})
	q := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	eng := engine.New(d)
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := engine.Options{Mode: engine.ModeCertain, Workers: tc.workers}
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE17CodedStrings measures the dictionary-coded execution tier
// on the string-heavy catalog workload: a projected item/tag join with
// the coded tier off (the columnar path over value.Value chunks, binary
// string keys in the join) and on (monomorphic u64 kernels over
// dictionary codes).  allocs/op is the headline together with ns/op: the
// coded probe hashes raw codes and the gather dedups on code tuples
// before decoding, so both must drop when coded is on.  Run serial and
// on the full worker pool; the CI bench smoke covers both.
func BenchmarkE17CodedStrings(b *testing.B) {
	d := workload.Catalog(workload.CatalogConfig{
		Items: 4000, Categories: 24, Tags: 40, Nulls: 3, NullRate: 0.02, Seed: 17,
	})
	q := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("Item"), As: "I", Attrs: []string{"sku", "category"}},
			Right: ra.Rename{Input: ra.Base("Tagged"), As: "T", Attrs: []string{"sku", "tag"}},
		},
		Attrs: []string{"category", "tag"},
	}
	eng := engine.New(d)
	for _, tc := range []struct {
		name    string
		workers int
		coded   engine.CodedSetting
	}{
		{"serial-off", 1, engine.CodedOff},
		{"serial-on", 1, engine.CodedOn},
		{"parallel-off", 0, engine.CodedOff},
		{"parallel-on", 0, engine.CodedOn},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := engine.Options{Mode: engine.ModeCertain, Workers: tc.workers, Coded: tc.coded}
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE18ServerThroughput measures the network server end to end at
// one representative point: two concurrent client sessions firing the
// E18 mixed request stream (queries, updates with commits, ASOF
// time-travel) at a server over real TCP with a subscriber attached.
// The benchmark fails if the remote head answer stops being
// bit-identical to in-process evaluation — throughput that drifts from
// the oracle is not throughput.
func BenchmarkE18ServerThroughput(b *testing.B) {
	h := experiments.Harness{}
	for i := 0; i < b.N; i++ {
		res := h.E18ServerThroughput(800, []int{2}, 100)
		if len(res.Rows) != 1 {
			b.Fatalf("rows: %v", res.Rows)
		}
		if agree := res.Rows[0][len(res.Rows[0])-1]; agree != "true" {
			b.Fatalf("remote answer diverged from in-process evaluation: %v", res.Rows[0])
		}
	}
}

// BenchmarkE19DurableStore measures the durable storage subsystem at one
// representative point: a 30-commit durable stream (checkpoint every 8),
// a cold open recovering the history, a 50-query AsOf sweep over the
// recovered DAG, and a spill join under a 16 KiB build budget.  The
// benchmark fails if the recovered history or the spill join stops being
// bit-identical to the in-memory writing engine.
func BenchmarkE19DurableStore(b *testing.B) {
	h := experiments.Harness{}
	for i := 0; i < b.N; i++ {
		res := h.E19DurableStore(30, 4, []int{8}, 50, 16<<10)
		if len(res.Rows) != 1 {
			b.Fatalf("rows: %v", res.Rows)
		}
		row := res.Rows[0]
		if agree, spill := row[len(row)-2], row[len(row)-1]; agree != "true" || spill != "true" {
			b.Fatalf("durable recovery or spill join diverged: %v", row)
		}
	}
}
