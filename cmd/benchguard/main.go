// Command benchguard compares a current incbench -json report against one
// or more archived baselines (BENCH_*.json, comma-separated) and fails
// when an experiment got slower than an allowed factor against any of
// them — the bench-regression smoke CI runs after the quick suite.
//
// Experiment IDs absent from the baseline are skipped with a note (older
// baselines predate newer experiments); IDs absent from the current run
// are an error, since a silently vanished experiment would make the guard
// vacuous.  The threshold is deliberately generous (default 2x): shared
// CI hosts are noisy, and the guard exists to catch order-of-magnitude
// regressions, not single-digit percentages.
//
// Usage:
//
//	incbench -json > current.json
//	benchguard -current current.json -baseline BENCH_baseline.json -ids E1,E5
//	benchguard -current current.json -baseline BENCH_pr7.json,BENCH_pr8.json -ids E16,E17 -threshold 2.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchReport is the subset of the incbench -json document the guard
// reads; unknown fields are ignored, so it loads every BENCH_*.json
// generation.
type benchReport struct {
	Experiments []struct {
		ID      string  `json:"ID"`
		Seconds float64 `json:"seconds"`
	} `json:"experiments"`
}

func loadReport(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(rep.Experiments))
	for _, e := range rep.Experiments {
		out[e.ID] = e.Seconds
	}
	return out, nil
}

func main() {
	current := flag.String("current", "", "current incbench -json report (required)")
	baseline := flag.String("baseline", "", "comma-separated baseline BENCH_*.json reports (required)")
	ids := flag.String("ids", "", "comma-separated experiment ids to compare (required, e.g. E1,E5,E16)")
	threshold := flag.Float64("threshold", 2.0, "fail when current seconds exceed baseline seconds times this factor")
	flag.Parse()

	if *current == "" || *baseline == "" || *ids == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current, -baseline and -ids are required")
		os.Exit(2)
	}
	cur, err := loadReport(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	failed := false
	for _, basePath := range strings.Split(*baseline, ",") {
		basePath = strings.TrimSpace(basePath)
		if basePath == "" {
			continue
		}
		base, err := loadReport(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if id == "" {
				continue
			}
			baseS, ok := base[id]
			if !ok {
				fmt.Printf("benchguard: %-4s skipped (not in baseline %s)\n", id, basePath)
				continue
			}
			curS, ok := cur[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: %-4s missing from current report %s\n", id, *current)
				failed = true
				continue
			}
			limit := baseS * *threshold
			status := "ok"
			if baseS > 0 && curS > limit {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchguard: %-4s vs %s: current %.4fs  baseline %.4fs  limit %.4fs (%.1fx)  %s\n",
				id, basePath, curS, baseS, limit, *threshold, status)
		}
	}
	if failed {
		os.Exit(1)
	}
}
