// Command incserver serves one CSV data directory to many concurrent
// sessions over the incdata wire protocol (internal/server/wire): a
// long-lived process owning one engine, with per-session snapshot
// isolation, version history (ASOF time travel), server-side maintained
// views with subscription delta pushes, and admission control.
//
// The data directory uses any layout cmd/incq accepts: flat CSV files
// (history starts empty at the loaded state), versioned state
// subdirectories (the loaded history's commits are ASOF-addressable by
// directory name), or a durable store directory as written by
// `incq -persist` — commits made over the wire then append to its log
// and survive server restarts.  Clients connect with `incq -connect`, or
// any program speaking the wire protocol:
//
//	incserver -data ./testdata -addr 127.0.0.1:7070
//	incq -connect 127.0.0.1:7070 -mode certain 'project(Order; o_id)'
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// finish and their replies flush before sockets close.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incdata/internal/dataload"
	"incdata/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "incserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("incserver", flag.ExitOnError)
	dataDir := fs.String("data", ".", "directory of <Relation>.csv files, or of versioned state subdirectories")
	addr := fs.String("addr", "127.0.0.1:7070", "listen address (host:port; port 0 picks a free port)")
	maxSessions := fs.Int("max-sessions", 0, "concurrent session cap (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent request cap across sessions (0 = default)")
	timeout := fs.Duration("timeout", 0, "how long a request may wait for an execution slot before BUSY (0 = default)")
	workers := fs.Int("workers", 0, "default intra-query worker budget for requests that set none")
	maxFrame := fs.Int("max-frame", 0, "wire frame payload cap in bytes; clients must dial with the same cap (0 = default 1 MiB)")
	fs.Parse(args)

	eng, versioned, err := dataload.Load(*dataDir)
	if err != nil {
		return err
	}
	defer eng.Close() // release the durable store's log handle, if attached
	srv, err := server.New(eng, server.Config{
		MaxSessions:    *maxSessions,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		Workers:        *workers,
		MaxFrame:       *maxFrame,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	layout := "flat"
	if versioned {
		layout = "versioned"
	}
	if eng.Durable() {
		layout = "durable"
	}
	fmt.Printf("incserver: serving %s (%s) on %s\n", *dataDir, layout, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("incserver: shutting down (draining in-flight requests)")
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("drain timed out after 30s")
	}
}
