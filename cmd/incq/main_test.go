package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	order := "o_id,product\noid1,pr1\noid2,pr2\n"
	pay := "p_id,order,amount\npid1,⊥1,100\n"
	if err := os.WriteFile(filepath.Join(dir, "Order.csv"), []byte(order), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Pay.csv"), []byte(pay), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunModes(t *testing.T) {
	dir := writeData(t)
	query := "diff(project(Order; o_id), project(Pay; order))"
	for _, mode := range []string{"naive", "certain", "certain-cwa"} {
		if err := run([]string{"-data", dir, "-mode", mode, query}); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := writeData(t)
	cases := [][]string{
		{},                              // missing query
		{"-data", dir, "a", "b"},        // too many args
		{"-data", "/nope", "Order"},     // bad data dir
		{"-data", dir, "project(Order"}, // parse error
		{"-data", dir, "-mode", "bogus", "Order"},      // bad mode
		{"-data", dir, "Nope"},                         // unknown relation (naive default mode)
		{"-data", dir, "-mode", "naive", "Nope"},       // unknown relation
		{"-data", dir, "-mode", "certain-cwa", "Nope"}, // unknown relation under enumeration
		{"-badflag"}, // flag parse error
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
