package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	order := "o_id,product\noid1,pr1\noid2,pr2\n"
	pay := "p_id,order,amount\npid1,⊥1,100\n"
	if err := os.WriteFile(filepath.Join(dir, "Order.csv"), []byte(order), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Pay.csv"), []byte(pay), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// writeVersionedData lays out three successive database states as
// subdirectories, the versioned layout the history flags load.
func writeVersionedData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	states := map[string]map[string]string{
		"v1": {
			"Order.csv": "o_id,product\noid1,pr1\noid2,pr2\n",
			"Pay.csv":   "p_id,order,amount\npid1,⊥1,100\n",
		},
		"v2": {
			"Order.csv": "o_id,product\noid1,pr1\noid2,pr2\noid3,pr3\n",
			"Pay.csv":   "p_id,order,amount\npid1,oid1,100\n",
		},
		"v3": {
			"Order.csv": "o_id,product\noid2,pr2\noid3,pr3\n",
			"Pay.csv":   "p_id,order,amount\npid1,oid1,100\npid2,oid3,50\n",
		},
	}
	for state, files := range states {
		if err := os.MkdirAll(filepath.Join(dir, state), 0o755); err != nil {
			t.Fatal(err)
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, state, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir
}

// TestFlatLayoutWinsOverStraySubdir pins that a data directory with
// top-level CSV files stays a plain layout even when a stray subdirectory
// also holds CSVs (e.g. a backup) — it must not be reinterpreted as a
// versioned layout.
func TestFlatLayoutWinsOverStraySubdir(t *testing.T) {
	dir := writeData(t)
	if err := os.MkdirAll(filepath.Join(dir, "backup"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "backup", "X.csv"), []byte("a\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "project(Order; o_id)"}); err != nil {
		t.Errorf("flat layout with stray subdir: %v", err)
	}
	// History flags still refuse: the directory is flat.
	if err := run([]string{"-data", dir, "-log"}); err == nil || exitCode(err) != 1 {
		t.Errorf("history flag on flat layout must exit 1, got %v", err)
	}
}

func TestRunModes(t *testing.T) {
	dir := writeData(t)
	query := "diff(project(Order; o_id), project(Pay; order))"
	for _, mode := range []string{"naive", "certain", "certain-cwa", "certain-owa", "certain-object"} {
		if err := run([]string{"-data", dir, "-mode", mode, query}); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunPlannerAndParallelFlags(t *testing.T) {
	dir := writeData(t)
	query := "diff(project(Order; o_id), project(Pay; order))"
	for _, args := range [][]string{
		{"-data", dir, "-planner", "on", query},
		{"-data", dir, "-planner", "off", query},
		{"-data", dir, "-mode", "certain-cwa", "-parallel", query},
		{"-data", dir, "-mode", "certain-cwa", "-planner", "off", "-parallel", query},
		{"-data", dir, "-mode", "certain-cwa", "-workers", "2", query},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestRunHistoryFlags covers the happy paths of the version-history
// flags on a versioned data directory: -log and -diff as standalone
// reports, -as-of combined with a query, and head evaluation.
func TestRunHistoryFlags(t *testing.T) {
	dir := writeVersionedData(t)
	query := "project(Order; o_id)"
	for _, args := range [][]string{
		{"-data", dir, "-log"},
		{"-data", dir, "-diff", "v1..v3"},
		{"-data", dir, "-diff", "v3..v1"},
		{"-data", dir, "-log", "-diff", "v1..v2", query},
		{"-data", dir, "-as-of", "v1", query},
		{"-data", dir, "-as-of", "v2", "-mode", "certain-cwa", query},
		{"-data", dir, "-as-of", "v3", "-planner", "off", query},
		{"-data", dir, query}, // head evaluation of a versioned layout
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestRunPersistAndDurableStore covers the durable-store layout: -persist
// converts a versioned directory into a store, and a -data pointing at
// the store serves the same history — -log, -diff, -as-of and head
// evaluation all work against the recovered commit DAG.
func TestRunPersistAndDurableStore(t *testing.T) {
	vdir := writeVersionedData(t)
	store := filepath.Join(t.TempDir(), "store")
	if err := run([]string{"-data", vdir, "-persist", store}); err != nil {
		t.Fatalf("persist: %v", err)
	}
	query := "project(Order; o_id)"
	for _, args := range [][]string{
		{"-data", store, "-log"},
		{"-data", store, "-diff", "v1..v3"},
		{"-data", store, "-as-of", "v1", query},
		{"-data", store, "-as-of", "v2", "-mode", "certain-cwa", query},
		{"-data", store, query}, // head evaluation of the recovered history
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	// -persist combines with a query: convert and evaluate in one call.
	store2 := filepath.Join(t.TempDir(), "store2")
	if err := run([]string{"-data", vdir, "-persist", store2, query}); err != nil {
		t.Errorf("persist with query: %v", err)
	}
	// Re-persisting a store is refused (it already is one), as is
	// persisting into an existing store directory.
	if err := run([]string{"-data", store, "-persist", filepath.Join(t.TempDir(), "s3")}); err == nil || exitCode(err) != 1 {
		t.Errorf("persisting a store must exit 1, got %v", err)
	}
	if err := run([]string{"-data", vdir, "-persist", store}); err == nil || exitCode(err) != 1 {
		t.Errorf("persisting into an existing store must exit 1, got %v", err)
	}
	// -persist is a local conversion; with -connect it is a usage error.
	if err := run([]string{"-connect", "127.0.0.1:1", "-persist", store, query}); err == nil || exitCode(err) != 2 {
		t.Errorf("-persist with -connect must exit 2, got %v", err)
	}
}

// TestExitCodes pins the failure classification: parse errors (bad flags,
// unknown modes, malformed queries, malformed -diff specs) exit with 2,
// data and evaluation errors (including unknown commits and history flags
// on unversioned directories) with 1.
func TestExitCodes(t *testing.T) {
	dir := writeData(t)
	vdir := writeVersionedData(t)
	cases := []struct {
		args []string
		code int
	}{
		{[]string{}, 2},                                             // missing query
		{[]string{"-data", dir, "a", "b"}, 2},                       // too many args
		{[]string{"-badflag"}, 2},                                   // flag parse error
		{[]string{"-data", dir, "project(Order"}, 2},                // query parse error
		{[]string{"-data", dir, "-mode", "bogus", "Order"}, 2},      // bad mode
		{[]string{"-data", dir, "-planner", "maybe", "Order"}, 2},   // bad planner
		{[]string{"-data", "/nope", "Order"}, 1},                    // bad data dir
		{[]string{"-data", dir, "Nope"}, 1},                         // unknown relation
		{[]string{"-data", dir, "-mode", "naive", "Nope"}, 1},       // unknown relation
		{[]string{"-data", dir, "-mode", "certain-cwa", "Nope"}, 1}, // unknown relation under enumeration
		{[]string{"-data", vdir, "-diff", "v1", "Order"}, 2},        // malformed -diff spec
		{[]string{"-data", vdir, "-diff", "..v1"}, 2},               // malformed -diff spec
		{[]string{"-data", vdir, "-as-of", "v1"}, 2},                // -as-of still needs a query
		{[]string{"-data", dir, "-as-of", "v1", "Order"}, 1},        // history flag on unversioned dir
		{[]string{"-data", dir, "-log"}, 1},                         // history flag on unversioned dir
		{[]string{"-data", dir, "-diff", "v1..v2"}, 1},              // history flag on unversioned dir
		{[]string{"-data", vdir, "-as-of", "nope", "Order"}, 1},     // unknown commit
		{[]string{"-data", vdir, "-as-of", "v", "Order"}, 1},        // unresolvable commit reference
		{[]string{"-data", vdir, "-diff", "v1..nope"}, 1},           // unknown commit in -diff
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil {
			t.Errorf("run(%v) should fail", c.args)
			continue
		}
		if got := exitCode(err); got != c.code {
			t.Errorf("run(%v): exit code %d, want %d (err: %v)", c.args, got, c.code, err)
		}
	}
	if exitCode(nil) != 0 {
		t.Error("nil error must exit 0")
	}
}
