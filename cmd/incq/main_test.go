package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	order := "o_id,product\noid1,pr1\noid2,pr2\n"
	pay := "p_id,order,amount\npid1,⊥1,100\n"
	if err := os.WriteFile(filepath.Join(dir, "Order.csv"), []byte(order), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Pay.csv"), []byte(pay), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunModes(t *testing.T) {
	dir := writeData(t)
	query := "diff(project(Order; o_id), project(Pay; order))"
	for _, mode := range []string{"naive", "certain", "certain-cwa", "certain-owa", "certain-object"} {
		if err := run([]string{"-data", dir, "-mode", mode, query}); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunPlannerAndParallelFlags(t *testing.T) {
	dir := writeData(t)
	query := "diff(project(Order; o_id), project(Pay; order))"
	for _, args := range [][]string{
		{"-data", dir, "-planner", "on", query},
		{"-data", dir, "-planner", "off", query},
		{"-data", dir, "-mode", "certain-cwa", "-parallel", query},
		{"-data", dir, "-mode", "certain-cwa", "-planner", "off", "-parallel", query},
		{"-data", dir, "-mode", "certain-cwa", "-workers", "2", query},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestExitCodes pins the failure classification: parse errors (bad flags,
// unknown modes, malformed queries) exit with 2, data and evaluation
// errors with 1.
func TestExitCodes(t *testing.T) {
	dir := writeData(t)
	cases := []struct {
		args []string
		code int
	}{
		{[]string{}, 2},                                             // missing query
		{[]string{"-data", dir, "a", "b"}, 2},                       // too many args
		{[]string{"-badflag"}, 2},                                   // flag parse error
		{[]string{"-data", dir, "project(Order"}, 2},                // query parse error
		{[]string{"-data", dir, "-mode", "bogus", "Order"}, 2},      // bad mode
		{[]string{"-data", dir, "-planner", "maybe", "Order"}, 2},   // bad planner
		{[]string{"-data", "/nope", "Order"}, 1},                    // bad data dir
		{[]string{"-data", dir, "Nope"}, 1},                         // unknown relation
		{[]string{"-data", dir, "-mode", "naive", "Nope"}, 1},       // unknown relation
		{[]string{"-data", dir, "-mode", "certain-cwa", "Nope"}, 1}, // unknown relation under enumeration
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil {
			t.Errorf("run(%v) should fail", c.args)
			continue
		}
		if got := exitCode(err); got != c.code {
			t.Errorf("run(%v): exit code %d, want %d (err: %v)", c.args, got, c.code, err)
		}
	}
	if exitCode(nil) != 0 {
		t.Error("nil error must exit 0")
	}
}
