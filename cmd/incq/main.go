// Command incq evaluates a relational-algebra query over CSV relations
// under the different evaluation modes the library implements:
//
//	naive        naïve evaluation (nulls as values), raw answer
//	certain      naïve evaluation + null stripping (sound for positive/RAcwa)
//	certain-cwa  intersection-based certain answers by CWA world enumeration
//	sql          not available here (use the sqlx package); see examples/
//
// The data directory must contain one <Relation>.csv file per relation, with
// a header row of attribute names and ⊥i / NULL markers for nulls.
//
// Example:
//
//	incq -data ./data -mode certain 'diff(project(Order; o_id), project(Pay; order))'
package main

import (
	"flag"
	"fmt"
	"os"

	"incdata/internal/certain"
	"incdata/internal/csvio"
	"incdata/internal/queryparse"
	"incdata/internal/ra"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "incq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("incq", flag.ContinueOnError)
	dataDir := fs.String("data", ".", "directory of <Relation>.csv files")
	mode := fs.String("mode", "certain", "evaluation mode: naive | certain | certain-cwa")
	extraFresh := fs.Int("fresh", 1, "fresh constants for world enumeration (certain-cwa)")
	maxWorlds := fs.Int("max-worlds", 1<<20, "abort certain-cwa when more valuations would be needed")
	workers := fs.Int("workers", 4, "parallel workers for world enumeration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one query argument, got %d", fs.NArg())
	}
	queryText := fs.Arg(0)

	db, err := csvio.ReadDatabaseDir(*dataDir)
	if err != nil {
		return err
	}
	expr, err := queryparse.Parse(queryText)
	if err != nil {
		return err
	}

	fmt.Printf("query: %s\n", expr)
	fmt.Printf("fragment: %s\n", ra.Classify(expr))
	fmt.Printf("naïve evaluation sound for certain answers: owa=%v cwa=%v\n",
		ra.NaiveEvalSound(expr, false), ra.NaiveEvalSound(expr, true))

	var out interface{ String() string }
	switch *mode {
	case "naive":
		rel, err := certain.NaiveRaw(expr, db)
		if err != nil {
			return err
		}
		out = rel
	case "certain":
		rel, err := certain.Naive(expr, db)
		if err != nil {
			return err
		}
		out = rel
	case "certain-cwa":
		rel, err := certain.ByWorldsCWA(expr, db, certain.Options{
			ExtraFresh: *extraFresh,
			MaxWorlds:  *maxWorlds,
			Workers:    *workers,
		})
		if err != nil {
			return err
		}
		out = rel
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	fmt.Println(out.String())
	return nil
}
