// Command incq evaluates a relational-algebra query over CSV relations
// through the engine facade, under any of the evaluation modes the library
// implements:
//
//	naive           naïve evaluation (nulls as values), raw answer
//	certain         naïve evaluation + null stripping (sound for positive/RAcwa)
//	certain-cwa     intersection-based certain answers by CWA world enumeration
//	certain-owa     intersection-based certain answers over the OWA world set
//	certain-object  certainO: the GLB of the answer set (Section 5.3)
//
// The data directory must contain one <Relation>.csv file per relation, with
// a header row of attribute names and ⊥i / NULL markers for nulls.
//
// # Version history
//
// A data directory whose entries are subdirectories of CSV states (one
// database state per subdirectory, applied in sorted name order) is loaded
// as a commit history: the first state is the root commit and every
// further state commits its net tuple diff, each commit tagged with its
// directory name.  Queries then evaluate at the head by default, or at any
// historical commit with -as-of; -log prints the commit log and -diff
// prints the net change between two commits (both work without a query):
//
//	incq -data ./versioned -log
//	incq -data ./versioned -as-of v2 'project(Order; o_id)'
//	incq -data ./versioned -diff v1..v3
//
// Commits are referenced by id, unique id prefix, or directory name.
//
// # Durable stores
//
// -persist converts a data directory into a durable store (internal/
// store): content-addressed chunks plus an append-only commit log holding
// the full history.  A -data pointing at such a store opens it directly —
// -log, -diff and -as-of work against the recovered history:
//
//	incq -data ./versioned -persist ./store
//	incq -data ./store -as-of v2 'project(Order; o_id)'
//
// # Remote mode
//
// With -connect the query is evaluated by a running incserver instead of
// local data: the CLI becomes one session of the multi-session server,
// and -as-of pins that session to a historical commit of the server's
// history before evaluating.  -data, -log and -diff do not apply:
//
//	incq -connect 127.0.0.1:7070 -mode certain 'project(Order; o_id)'
//	incq -connect 127.0.0.1:7070 -as-of v2 'project(Order; o_id)'
//
// Exit codes distinguish failure classes: 2 for parse errors (bad flags,
// unknown mode, malformed query, malformed -diff spec — locally or as
// classified by the server), 1 for data and evaluation errors (including
// unknown commit references, history flags on an unversioned directory,
// and server-side evaluation or admission failures).
//
// Example:
//
//	incq -data ./data -mode certain 'diff(project(Order; o_id), project(Pay; order))'
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"incdata/internal/dataload"
	"incdata/internal/engine"
	"incdata/internal/queryparse"
	"incdata/internal/ra"
	"incdata/internal/server/client"
	"incdata/internal/server/wire"
	"incdata/internal/table"
	"incdata/internal/version"
)

// errParse marks failures to understand the invocation — flag errors,
// unknown modes, query syntax — as opposed to data and evaluation errors.
// main maps it to exit code 2, everything else to 1.
var errParse = errors.New("parse error")

// exitCode classifies an error from run.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, errParse) {
		return 2
	}
	return 1
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "incq:", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("incq", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are reported (and classified) by main
	dataDir := fs.String("data", ".", "directory of <Relation>.csv files, or of versioned state subdirectories")
	mode := fs.String("mode", "certain", "evaluation mode: naive | certain | certain-cwa | certain-owa | certain-object")
	planner := fs.String("planner", "on", "evaluation path: on (query planner) or off (naïve-evaluation oracle)")
	extraFresh := fs.Int("fresh", 1, "fresh constants for world enumeration (certain-cwa/-owa/-object)")
	maxWorlds := fs.Int("max-worlds", 1<<20, "abort world enumeration when more valuations would be needed")
	workers := fs.Int("workers", 0, "intra-query worker budget: morsel-parallel evaluation and world enumeration (0 = GOMAXPROCS, 1 = serial)")
	parallel := fs.Bool("parallel", false, "use all CPUs (same as the -workers default; overrides an explicit -workers)")
	connect := fs.String("connect", "", "evaluate on a running incserver at host:port instead of local data")
	asOf := fs.String("as-of", "", "evaluate at a historical commit (id, unique prefix, or state-directory name)")
	showLog := fs.Bool("log", false, "print the commit log of a versioned data directory")
	diffSpec := fs.String("diff", "", "print the net change between two commits, as <a>..<b>")
	persist := fs.String("persist", "", "write the loaded data and its history into a fresh durable store directory")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fs.Usage()
			return nil
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}
	// -log, -diff and -persist are reports/conversions and need no query;
	// everything else wants exactly one.
	queryOptional := *showLog || *diffSpec != "" || *persist != ""
	if fs.NArg() != 1 && !(fs.NArg() == 0 && queryOptional) {
		return fmt.Errorf("%w: expected exactly one query argument, got %d", errParse, fs.NArg())
	}

	m, err := engine.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("%w: %v", errParse, err)
	}
	ps, err := engine.ParsePlanner(*planner)
	if err != nil {
		return fmt.Errorf("%w: %v", errParse, err)
	}
	var diffA, diffB string
	if *diffSpec != "" {
		a, b, ok := strings.Cut(*diffSpec, "..")
		if !ok || a == "" || b == "" {
			return fmt.Errorf("%w: -diff wants <a>..<b>, got %q", errParse, *diffSpec)
		}
		diffA, diffB = a, b
	}
	var expr ra.Expr
	if fs.NArg() == 1 {
		expr, err = queryparse.Parse(fs.Arg(0))
		if err != nil {
			return fmt.Errorf("%w: %v", errParse, err)
		}
	}

	if *connect != "" {
		if *showLog || *diffSpec != "" || *persist != "" {
			return fmt.Errorf("%w: -log, -diff and -persist are not available with -connect", errParse)
		}
		if expr == nil {
			return fmt.Errorf("%w: -connect needs a query", errParse)
		}
		w := *workers
		if *parallel {
			w = runtime.GOMAXPROCS(0)
		}
		return runRemote(*connect, *asOf, fs.Arg(0), *mode, *planner, w, expr)
	}

	eng, versioned, err := dataload.Load(*dataDir)
	if err != nil {
		return err
	}
	defer eng.Close() // release the durable store's log handle, if attached
	historyWanted := *asOf != "" || *showLog || *diffSpec != ""
	if historyWanted && !versioned {
		return fmt.Errorf("history flags need a versioned data directory (state subdirectories of CSV files); %s has none", *dataDir)
	}

	if *persist != "" {
		if eng.Durable() {
			return fmt.Errorf("%s is already a durable store", *dataDir)
		}
		if err := eng.Persist(*persist); err != nil {
			return err
		}
		fmt.Printf("persisted %s to %s\n", *dataDir, *persist)
	}

	if *showLog {
		log, err := eng.Log()
		if err != nil {
			return err
		}
		for _, c := range log {
			extra := ""
			if len(c.Parents) > 1 {
				extra = fmt.Sprintf("  (merges %s)", c.Parents[1])
			}
			fmt.Printf("%s  %s  (+%d -%d)%s\n", c.ID, c.Message, insertedCount(c), deletedCount(c), extra)
		}
	}
	if *diffSpec != "" {
		a, err := eng.ResolveCommit(diffA)
		if err != nil {
			return err
		}
		b, err := eng.ResolveCommit(diffB)
		if err != nil {
			return err
		}
		cs, err := eng.DiffVersions(a, b)
		if err != nil {
			return err
		}
		fmt.Printf("diff %s..%s\n%s", a, b, cs)
	}
	if expr == nil {
		return nil
	}

	opts := engine.Options{
		Mode:       m,
		Planner:    ps,
		ExtraFresh: *extraFresh,
		MaxWorlds:  *maxWorlds,
		Workers:    *workers,
	}
	if *parallel {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	fmt.Printf("query: %s\n", expr)
	fmt.Printf("fragment: %s\n", ra.Classify(expr))
	fmt.Printf("naïve evaluation sound for certain answers: owa=%v cwa=%v\n",
		ra.NaiveEvalSound(expr, false), ra.NaiveEvalSound(expr, true))

	rel, err := evalMaybeAsOf(eng, *asOf, expr, opts)
	if err != nil {
		return err
	}
	fmt.Println(rel.String())
	return nil
}

// runRemote evaluates the query as one session of a running incserver,
// pinning the session to the -as-of commit first when one is given.
// Server-side parse classifications keep the local exit-code convention.
func runRemote(addr, asOf, query, mode, planner string, workers int, expr ra.Expr) error {
	cl, err := client.Dial(addr)
	if err != nil {
		return remoteErr(err)
	}
	defer cl.Close()

	fmt.Printf("query: %s\n", expr)
	fmt.Printf("fragment: %s\n", ra.Classify(expr))
	fmt.Printf("server: %s\n", cl.Banner)

	if asOf != "" {
		id, err := cl.AsOf(asOf)
		if err != nil {
			return remoteErr(err)
		}
		fmt.Printf("as of: %s\n", id)
	}
	resp, err := cl.Query(query, mode, planner, workers)
	if err != nil {
		return remoteErr(err)
	}
	rows := make([]string, len(resp.Rows))
	for i, row := range resp.Rows {
		rows[i] = "(" + strings.Join(row, ", ") + ")"
	}
	fmt.Printf("columns: %s\n", strings.Join(resp.Columns, ", "))
	fmt.Println("answer{" + strings.Join(rows, ", ") + "}")
	cl.Quit()
	return nil
}

// remoteErr maps a server error reply onto the CLI's exit-code classes:
// the server's parse and protocol codes mean the request itself was
// malformed (exit 2), everything else is an evaluation failure (exit 1).
func remoteErr(err error) error {
	var re *client.RemoteError
	if errors.As(err, &re) && (re.Code == wire.CodeParse || re.Code == wire.CodeProto) {
		return fmt.Errorf("%w: %s", errParse, re.Msg)
	}
	return err
}

// evalMaybeAsOf evaluates at the head, or at the -as-of commit when given.
func evalMaybeAsOf(eng *engine.Engine, asOf string, expr ra.Expr, opts engine.Options) (*table.Relation, error) {
	if asOf == "" {
		return eng.Eval(expr, opts)
	}
	id, err := eng.ResolveCommit(asOf)
	if err != nil {
		return nil, err
	}
	snap, err := eng.AsOf(id)
	if err != nil {
		return nil, err
	}
	fmt.Printf("as of: %s\n", id)
	return snap.Eval(expr, opts)
}

func insertedCount(c *version.Commit) int {
	n := 0
	for _, d := range c.Delta.Rels {
		n += len(d.Inserted)
	}
	return n
}

func deletedCount(c *version.Commit) int {
	n := 0
	for _, d := range c.Delta.Rels {
		n += len(d.Deleted)
	}
	return n
}
