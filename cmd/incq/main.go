// Command incq evaluates a relational-algebra query over CSV relations
// through the engine facade, under any of the evaluation modes the library
// implements:
//
//	naive           naïve evaluation (nulls as values), raw answer
//	certain         naïve evaluation + null stripping (sound for positive/RAcwa)
//	certain-cwa     intersection-based certain answers by CWA world enumeration
//	certain-owa     intersection-based certain answers over the OWA world set
//	certain-object  certainO: the GLB of the answer set (Section 5.3)
//
// The data directory must contain one <Relation>.csv file per relation, with
// a header row of attribute names and ⊥i / NULL markers for nulls.
//
// Exit codes distinguish failure classes: 2 for parse errors (bad flags,
// unknown mode, malformed query), 1 for data and evaluation errors.
//
// Example:
//
//	incq -data ./data -mode certain 'diff(project(Order; o_id), project(Pay; order))'
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"incdata/internal/csvio"
	"incdata/internal/engine"
	"incdata/internal/queryparse"
	"incdata/internal/ra"
)

// errParse marks failures to understand the invocation — flag errors,
// unknown modes, query syntax — as opposed to data and evaluation errors.
// main maps it to exit code 2, everything else to 1.
var errParse = errors.New("parse error")

// exitCode classifies an error from run.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, errParse) {
		return 2
	}
	return 1
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "incq:", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("incq", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are reported (and classified) by main
	dataDir := fs.String("data", ".", "directory of <Relation>.csv files")
	mode := fs.String("mode", "certain", "evaluation mode: naive | certain | certain-cwa | certain-owa | certain-object")
	planner := fs.String("planner", "on", "evaluation path: on (query planner) or off (naïve-evaluation oracle)")
	extraFresh := fs.Int("fresh", 1, "fresh constants for world enumeration (certain-cwa/-owa/-object)")
	maxWorlds := fs.Int("max-worlds", 1<<20, "abort world enumeration when more valuations would be needed")
	workers := fs.Int("workers", 4, "parallel workers for world enumeration")
	parallel := fs.Bool("parallel", false, "use all CPUs for world enumeration (overrides -workers)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fs.Usage()
			return nil
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%w: expected exactly one query argument, got %d", errParse, fs.NArg())
	}
	queryText := fs.Arg(0)

	m, err := engine.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("%w: %v", errParse, err)
	}
	ps, err := engine.ParsePlanner(*planner)
	if err != nil {
		return fmt.Errorf("%w: %v", errParse, err)
	}
	expr, err := queryparse.Parse(queryText)
	if err != nil {
		return fmt.Errorf("%w: %v", errParse, err)
	}

	db, err := csvio.ReadDatabaseDir(*dataDir)
	if err != nil {
		return err
	}

	opts := engine.Options{
		Mode:       m,
		Planner:    ps,
		ExtraFresh: *extraFresh,
		MaxWorlds:  *maxWorlds,
		Workers:    *workers,
	}
	if *parallel {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	fmt.Printf("query: %s\n", expr)
	fmt.Printf("fragment: %s\n", ra.Classify(expr))
	fmt.Printf("naïve evaluation sound for certain answers: owa=%v cwa=%v\n",
		ra.NaiveEvalSound(expr, false), ra.NaiveEvalSound(expr, true))

	rel, err := engine.New(db).Eval(expr, opts)
	if err != nil {
		return err
	}
	fmt.Println(rel.String())
	return nil
}
