package main

// Remote-mode tests: incq -connect against an in-process server, pinning
// the exit-code contract for malformed requests (2 for parse errors,
// local or server-classified; 1 for evaluation, data, and connection
// failures) and the happy paths across modes and ASOF.

import (
	"testing"

	"incdata/internal/engine"
	"incdata/internal/schema"
	"incdata/internal/server"
	"incdata/internal/table"
)

// startTestServer serves a small database on a random port and returns
// its address.
func startTestServer(t *testing.T) string {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("Order", "o_id", "product"),
		schema.NewRelation("Pay", "p_id", "order"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("Order", "oid1", "pr1")
	d.MustAddRow("Order", "oid2", "pr2")
	d.MustAddRow("Pay", "pid1", "⊥1")
	eng := engine.New(d)
	srv, err := server.New(eng, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

// TestRemoteRunModes covers the -connect happy path in every mode and
// planner setting.
func TestRemoteRunModes(t *testing.T) {
	addr := startTestServer(t)
	query := "diff(project(Order; o_id), project(Pay; order))"
	for _, mode := range []string{"naive", "certain", "certain-cwa", "certain-owa", "certain-object"} {
		if err := run([]string{"-connect", addr, "-mode", mode, query}); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	for _, args := range [][]string{
		{"-connect", addr, "-planner", "off", query},
		{"-connect", addr, "-workers", "2", query},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestRemoteExitCodes pins the failure classification over the wire:
// malformed invocations exit 2, server-side evaluation and connection
// failures exit 1.
func TestRemoteExitCodes(t *testing.T) {
	addr := startTestServer(t)
	cases := []struct {
		args []string
		code int
	}{
		{[]string{"-connect", addr}, 2},                                 // missing query
		{[]string{"-connect", addr, "project(Order"}, 2},                // query parse error
		{[]string{"-connect", addr, "-mode", "bogus", "Order"}, 2},      // bad mode
		{[]string{"-connect", addr, "-planner", "maybe", "Order"}, 2},   // bad planner
		{[]string{"-connect", addr, "-log"}, 2},                         // -log needs local data
		{[]string{"-connect", addr, "-diff", "a..b"}, 2},                // -diff needs local data
		{[]string{"-connect", addr, "Nope"}, 1},                         // unknown relation (server eval error)
		{[]string{"-connect", addr, "-as-of", "nope", "Order"}, 1},      // unknown commit (server eval error)
		{[]string{"-connect", "127.0.0.1:1", "Order"}, 1},               // connection refused
		{[]string{"-connect", addr, "-mode", "certain-cwa", "Nope"}, 1}, // unknown relation under enumeration
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil {
			t.Errorf("run(%v) should fail", c.args)
			continue
		}
		if got := exitCode(err); got != c.code {
			t.Errorf("run(%v): exit code %d, want %d (err: %v)", c.args, got, c.code, err)
		}
	}
}

// TestRemoteASOF pins -as-of over -connect: the session is pinned to the
// named commit before the query runs.
func TestRemoteASOF(t *testing.T) {
	s := schema.MustNew(schema.NewRelation("R", "a"))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1")
	eng := engine.New(d)
	srv, err := server.New(eng, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.MustParseTuple("2"))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit("second"); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-connect", addr.String(), "-as-of", "init", "R"}); err != nil {
		t.Errorf("asof root commit: %v", err)
	}
	if err := run([]string{"-connect", addr.String(), "-as-of", "second", "R"}); err != nil {
		t.Errorf("asof second commit: %v", err)
	}
}
