// Command incbench runs the reproduction experiments E1–E12 (see DESIGN.md
// and EXPERIMENTS.md) and prints one text table per experiment.
//
// Usage:
//
//	incbench            # quick configuration (seconds)
//	incbench -full      # larger sweeps (minutes)
//	incbench -only E1,E8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"incdata/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the larger sweeps")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E8)")
	flag.Parse()

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	filter := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, res := range experiments.All(cfg) {
		if len(filter) > 0 && !filter[res.ID] {
			continue
		}
		fmt.Println(res.String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "incbench: no experiment matched the -only filter")
		os.Exit(1)
	}
	fmt.Printf("ran %d experiments in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
