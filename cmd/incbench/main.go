// Command incbench runs the reproduction experiments E1–E12 (see the
// "Experiments" section of README.md) and prints one text table per
// experiment, or a single machine-readable JSON document with -json so
// that successive runs can be archived (BENCH_*.json) and compared.
//
// Usage:
//
//	incbench            # quick configuration (seconds)
//	incbench -full      # larger sweeps (minutes)
//	incbench -only E1,E8
//	incbench -json      # machine-readable output for perf tracking
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"incdata/internal/experiments"
)

// report is the -json output document.
type report struct {
	Config      string               `json:"config"`
	Experiments []experiments.Result `json:"experiments"`
	Ran         int                  `json:"ran"`
	Seconds     float64              `json:"seconds"`
}

func main() {
	full := flag.Bool("full", false, "run the larger sweeps")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E8)")
	asJSON := flag.Bool("json", false, "emit one JSON document instead of text tables")
	flag.Parse()

	cfg := experiments.QuickConfig()
	cfgName := "quick"
	if *full {
		cfg = experiments.FullConfig()
		cfgName = "full"
	}
	filter := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	start := time.Now()
	var kept []experiments.Result
	for _, res := range experiments.All(cfg) {
		if len(filter) > 0 && !filter[res.ID] {
			continue
		}
		if !*asJSON {
			fmt.Println(res.String())
		}
		kept = append(kept, res)
	}
	if len(kept) == 0 {
		fmt.Fprintln(os.Stderr, "incbench: no experiment matched the -only filter")
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Config:      cfgName,
			Experiments: kept,
			Ran:         len(kept),
			Seconds:     elapsed.Seconds(),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("ran %d experiments in %s\n", len(kept), elapsed.Round(time.Millisecond))
}
