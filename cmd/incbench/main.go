// Command incbench runs the reproduction experiments E1–E19 (see the
// "Experiments" section of README.md) through the engine facade and prints
// one text table per experiment, or a single machine-readable JSON
// document with -json so that successive runs can be archived
// (BENCH_*.json) and compared.
//
// The -planner flag selects the engine's evaluation path: "on" (the query
// planner: planned one-shot evaluation plus world-invariant subplan
// hoisting), "off" (the naïve-evaluation oracle, the seed path), or
// "both", which runs the suite twice and reports per-experiment timings
// for each — the planner-on vs planner-off comparison archived in
// BENCH_*.json.  The -columnar flag selects the execution layout of
// planned evaluation the same way: "on" (vectorized columnar kernels),
// "off" (the per-tuple row path, the differential oracle), or "both".
// The -coded flag selects the dictionary-coded execution tier of planned
// evaluation the same way: "on" (monomorphic u64 kernels over the value
// dictionary), "off" (the columnar path, the coded tier's differential
// oracle), or "both".
// E13 exercises the engine's snapshot-isolated concurrent batch path and
// reports its parallel speedup; E14 exercises maintained views and
// reports the incremental-refresh vs full-recompute speedup on an update
// stream; E16 sweeps the intra-query worker budget
// (engine.Options.Workers, the -workers flag) over morsel-parallel
// evaluation; E17 measures the coded tier against the columnar path on a
// string-heavy workload; E18 measures the multi-session network server
// (internal/server) end to end — concurrent client fleets over real TCP,
// with remote answers pinned bit-identical to in-process evaluation; E19
// measures the durable storage subsystem (internal/store) — commit-log
// throughput, cold-open recovery, time travel over the recovered history,
// and the spill-to-disk join under a constrained memory budget, all
// pinned bit-identical to in-memory evaluation.
// With -json the report records GOMAXPROCS, the CPU count and
// the -workers setting, so archived speedups stay interpretable across
// hosts.
//
// Usage:
//
//	incbench                  # quick configuration (seconds)
//	incbench -full            # larger sweeps (minutes)
//	incbench -only E1,E8
//	incbench -json            # machine-readable output for perf tracking
//	incbench -json -planner both
//	incbench -json -columnar both > BENCH_pr7.json
//	incbench -json -coded both > BENCH_pr8.json
//	incbench -json -planner off > BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"incdata/internal/engine"
	"incdata/internal/experiments"
)

// plannerTimings summarizes one full suite run under a fixed evaluation
// setting (a planner or columnar selection).
type plannerTimings struct {
	Seconds     float64            `json:"seconds"`
	Experiments map[string]float64 `json:"experiment_seconds"`
}

// environment records the hardware/scheduler context a run executed under,
// so archived BENCH_*.json documents stay comparable across hosts: parallel
// speedups (E13, E16) are bounded by GOMAXPROCS, and a ~1x speedup on a
// GOMAXPROCS=1 host is expected, not a regression.
type environment struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Workers is the -workers flag: the intra-query worker budget every
	// evaluation ran under (0 means it resolved to GOMAXPROCS).
	Workers int `json:"workers"`
}

// report is the -json output document.
type report struct {
	Config      string               `json:"config"`
	Planner     string               `json:"planner"`
	Columnar    string               `json:"columnar"`
	Coded       string               `json:"coded"`
	Env         environment          `json:"env"`
	Experiments []experiments.Result `json:"experiments"`
	Ran         int                  `json:"ran"`
	Seconds     float64              `json:"seconds"`
	// PlannerOn/PlannerOff carry the per-experiment timing comparison when
	// -planner both is selected; the Experiments above are the planner-on
	// results (the two paths are differentially tested to be identical).
	PlannerOn  *plannerTimings `json:"planner_on,omitempty"`
	PlannerOff *plannerTimings `json:"planner_off,omitempty"`
	// ColumnarOn/ColumnarOff carry the vectorized vs row-path comparison
	// when -columnar both is selected; the Experiments above are the
	// columnar-on results (the two paths compute bit-identical answers).
	ColumnarOn  *plannerTimings `json:"columnar_on,omitempty"`
	ColumnarOff *plannerTimings `json:"columnar_off,omitempty"`
	// CodedOn/CodedOff carry the coded vs columnar comparison when -coded
	// both is selected; the Experiments above are the coded-on results
	// (the two tiers compute bit-identical answers).
	CodedOn  *plannerTimings `json:"coded_on,omitempty"`
	CodedOff *plannerTimings `json:"coded_off,omitempty"`
}

// runSuite executes the experiment suite through the engine under the
// given planner, columnar and coded settings and returns the kept
// results plus timing summary.
func runSuite(cfg experiments.Config, filter map[string]bool, plannerOn, columnarOn, codedOn bool) ([]experiments.Result, plannerTimings) {
	cfg.Planner = engine.PlannerOn
	if !plannerOn {
		cfg.Planner = engine.PlannerOff
	}
	cfg.Columnar = engine.ColumnarOn
	if !columnarOn {
		cfg.Columnar = engine.ColumnarOff
	}
	cfg.Coded = engine.CodedOn
	if !codedOn {
		cfg.Coded = engine.CodedOff
	}
	start := time.Now()
	kept := experiments.Run(cfg, filter)
	timings := plannerTimings{Experiments: map[string]float64{}}
	for _, res := range kept {
		timings.Experiments[res.ID] = res.Seconds
	}
	timings.Seconds = time.Since(start).Seconds()
	return kept, timings
}

// printComparison renders an on-vs-off timing table for one setting.
func printComparison(name string, kept []experiments.Result, on, off *plannerTimings) {
	fmt.Printf("== %s-on vs %s-off (seconds per experiment) ==\n", name, name)
	fmt.Printf("%-6s  %12s  %12s  %8s\n", "exp", name+"-on", name+"-off", "speedup")
	for _, res := range kept {
		onS := on.Experiments[res.ID]
		offS := off.Experiments[res.ID]
		speedup := "-"
		if onS > 0 {
			speedup = fmt.Sprintf("%.2fx", offS/onS)
		}
		fmt.Printf("%-6s  %12.4f  %12.4f  %8s\n", res.ID, onS, offS, speedup)
	}
	fmt.Printf("total   %12.4f  %12.4f\n", on.Seconds, off.Seconds)
}

func main() {
	full := flag.Bool("full", false, "run the larger sweeps")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E8)")
	asJSON := flag.Bool("json", false, "emit one JSON document instead of text tables")
	planner := flag.String("planner", "on", "evaluation path: on, off, or both (runs twice and compares timings)")
	columnar := flag.String("columnar", "on", "execution layout of planned evaluation: on (vectorized), off (row oracle), or both")
	coded := flag.String("coded", "on", "dictionary-coded tier of planned evaluation: on, off (columnar oracle), or both")
	workers := flag.Int("workers", 0, "intra-query worker budget for every evaluation (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := experiments.QuickConfig()
	cfgName := "quick"
	if *full {
		cfg = experiments.FullConfig()
		cfgName = "full"
	}
	cfg.Workers = *workers
	filter := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	if *planner != "on" && *planner != "off" && *planner != "both" {
		fmt.Fprintf(os.Stderr, "incbench: -planner must be on, off or both (got %q)\n", *planner)
		os.Exit(2)
	}
	if *columnar != "on" && *columnar != "off" && *columnar != "both" {
		fmt.Fprintf(os.Stderr, "incbench: -columnar must be on, off or both (got %q)\n", *columnar)
		os.Exit(2)
	}
	if *coded != "on" && *coded != "off" && *coded != "both" {
		fmt.Fprintf(os.Stderr, "incbench: -coded must be on, off or both (got %q)\n", *coded)
		os.Exit(2)
	}

	primaryPlannerOn := *planner != "off"
	primaryColumnarOn := *columnar != "off"
	primaryCodedOn := *coded != "off"
	kept, primary := runSuite(cfg, filter, primaryPlannerOn, primaryColumnarOn, primaryCodedOn)
	if len(kept) == 0 {
		fmt.Fprintln(os.Stderr, "incbench: no experiment matched the -only filter")
		os.Exit(1)
	}
	var plannerSecondary *plannerTimings
	if *planner == "both" {
		_, off := runSuite(cfg, filter, false, primaryColumnarOn, primaryCodedOn)
		plannerSecondary = &off
	}
	var columnarSecondary *plannerTimings
	if *columnar == "both" {
		_, off := runSuite(cfg, filter, primaryPlannerOn, false, primaryCodedOn)
		columnarSecondary = &off
	}
	var codedSecondary *plannerTimings
	if *coded == "both" {
		_, off := runSuite(cfg, filter, primaryPlannerOn, primaryColumnarOn, false)
		codedSecondary = &off
	}

	if *asJSON {
		rep := report{
			Config:   cfgName,
			Planner:  *planner,
			Columnar: *columnar,
			Coded:    *coded,
			Env: environment{
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				NumCPU:     runtime.NumCPU(),
				Workers:    *workers,
			},
			Experiments: kept,
			Ran:         len(kept),
			Seconds:     primary.Seconds,
		}
		if *planner == "both" {
			p := primary
			rep.PlannerOn = &p
			rep.PlannerOff = plannerSecondary
		}
		if *columnar == "both" {
			p := primary
			rep.ColumnarOn = &p
			rep.ColumnarOff = columnarSecondary
		}
		if *coded == "both" {
			p := primary
			rep.CodedOn = &p
			rep.CodedOff = codedSecondary
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	for _, res := range kept {
		fmt.Println(res.String())
	}
	if *planner == "both" {
		printComparison("planner", kept, &primary, plannerSecondary)
	}
	if *columnar == "both" {
		printComparison("columnar", kept, &primary, columnarSecondary)
	}
	if *coded == "both" {
		printComparison("coded", kept, &primary, codedSecondary)
	}
	fmt.Printf("ran %d experiments in %s (planner %s, columnar %s, coded %s)\n",
		len(kept), time.Duration(primary.Seconds*float64(time.Second)).Round(time.Millisecond), *planner, *columnar, *coded)
}
