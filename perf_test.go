// Micro-benchmarks for the evaluator hot path, alongside the E1–E12
// experiment benchmarks in bench_test.go: tuple-key encoding, the hash
// join, and world enumeration.  These are the numbers the perf work of
// each PR is judged against (see README.md, "Benchmarks").
package incdata_test

import (
	"testing"

	"incdata/internal/certain"
	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/workload"
)

func BenchmarkTupleKey(b *testing.B) {
	tuples := make([]table.Tuple, 64)
	for i := range tuples {
		tuples[i] = table.NewTuple(
			value.Int(int64(i)),
			value.String("customer-name"),
			value.Null(uint64(i%5)),
			value.Int(int64(i*7919)),
		)
	}
	b.Run("key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = tuples[i%len(tuples)].Key()
		}
	})
	b.Run("append-reuse", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 128)
		for i := 0; i < b.N; i++ {
			buf = tuples[i%len(tuples)].AppendKey(buf[:0])
		}
	})
}

func BenchmarkHashJoin(b *testing.B) {
	d := workload.Random(workload.RandomConfig{
		Relations: map[string]int{"R": 2, "S": 2}, TuplesPerRelation: 2000,
		DomainSize: 500, Nulls: 20, NullRate: 0.05, Seed: 3,
	})
	q := ra.Join{
		Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
		Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ra.Eval(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldEnum(b *testing.B) {
	d := workload.Random(workload.RandomConfig{
		Relations: map[string]int{"R": 2, "S": 2}, TuplesPerRelation: 10,
		DomainSize: 6, Nulls: 4, NullRate: 0.3, Seed: 19,
	})
	q := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := certain.ByWorldsCWA(q, d, certain.Options{ExtraFresh: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := certain.ByWorldsCWA(q, d, certain.Options{ExtraFresh: 1, Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
