module incdata

go 1.21
