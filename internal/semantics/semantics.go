// Package semantics defines the semantics of incompleteness from Section 2
// of the paper: functions [[·]] assigning to an incomplete database the set
// of complete databases it represents.
//
//	[[D]]cwa  = { v(D)                     | v a valuation }
//	[[D]]owa  = { D' | D' ⊇ v(D),            v a valuation }
//	[[D]]wcwa = { D' | D' ⊇ v(D), adom(D') = adom(v(D)), v a valuation }
//
// The sets are infinite (valuations range over an infinite constant set and
// OWA additionally allows arbitrary supersets), so the package offers two
// finite views used throughout the experiments: membership tests, and
// enumeration of worlds over an explicitly given finite constant domain.
// For generic queries the finite-domain enumeration with enough fresh
// constants yields the same certain answers as the full semantics; package
// certain cross-checks this.
package semantics

import (
	"fmt"
	"slices"
	"strconv"

	"incdata/internal/hom"
	"incdata/internal/table"
	"incdata/internal/valuation"
	"incdata/internal/value"
)

// Assumption selects one of the semantics of incompleteness.
type Assumption uint8

const (
	// OWA is the open-world assumption.
	OWA Assumption = iota
	// CWA is the closed-world assumption.
	CWA
	// WCWA is the weak closed-world assumption (supersets allowed but no new
	// active-domain elements).
	WCWA
)

// String names the assumption.
func (a Assumption) String() string {
	switch a {
	case OWA:
		return "owa"
	case CWA:
		return "cwa"
	case WCWA:
		return "wcwa"
	default:
		return fmt.Sprintf("Assumption(%d)", uint8(a))
	}
}

// ParseAssumption parses "owa", "cwa" or "wcwa".
func ParseAssumption(s string) (Assumption, error) {
	switch s {
	case "owa", "OWA":
		return OWA, nil
	case "cwa", "CWA":
		return CWA, nil
	case "wcwa", "WCWA":
		return WCWA, nil
	default:
		return OWA, fmt.Errorf("semantics: unknown assumption %q", s)
	}
}

// Represents reports whether the complete database world belongs to
// [[d]] under the given assumption.  world must be complete; Represents
// returns false (and is meaningless) otherwise.
//
// The characterisations used are the ones from Section 5.2 of the paper:
// membership in [[D]]owa is the existence of a homomorphism D → world,
// membership in [[D]]cwa is the existence of a strong onto homomorphism,
// and membership in [[D]]wcwa is the existence of an onto homomorphism.
// For a complete target these coincide with the valuation-based definitions.
func Represents(a Assumption, d, world *table.Database) bool {
	if !world.IsComplete() {
		return false
	}
	switch a {
	case OWA:
		return hom.Exists(d, world)
	case CWA:
		return hom.ExistsStrongOnto(d, world)
	case WCWA:
		return hom.ExistsOnto(d, world)
	default:
		return false
	}
}

// Domain is a finite set of constants used to enumerate worlds.
type Domain []value.Value

// DomainOf builds the enumeration domain for a database: its constants plus
// extraFresh fresh constants not occurring in it (so that valuations can map
// nulls outside Const(D), which is what genericity arguments require).
// Additional constants (for example constants mentioned by a query) can be
// passed in extra.
func DomainOf(d *table.Database, extraFresh int, extra ...value.Value) Domain {
	seen := map[value.Value]bool{}
	var dom Domain
	add := func(v value.Value) {
		if v.IsConst() && !seen[v] {
			seen[v] = true
			dom = append(dom, v)
		}
	}
	// Collect the database constants in a single pass (equivalent to
	// SortedConsts, without the per-relation set allocations).
	for _, name := range d.RelationNames() {
		d.Relation(name).Each(func(t table.Tuple) bool {
			for _, v := range t {
				add(v)
			}
			return true
		})
	}
	slices.SortFunc(dom, value.Compare)
	for _, c := range extra {
		add(c)
	}
	next := 0
	for added := 0; added < extraFresh; added++ {
		c := freshConst(next)
		next++
		for seen[c] {
			c = freshConst(next)
			next++
		}
		add(c)
	}
	return dom
}

// freshConsts caches the first few fresh world constants so the common
// case (one or two fresh constants per enumeration) allocates nothing.
var freshConsts = func() [16]value.Value {
	var out [16]value.Value
	for i := range out {
		out[i] = value.String("@w" + strconv.Itoa(i))
	}
	return out
}()

// freshConst returns the k-th fresh world constant "@w<k>".
func freshConst(k int) value.Value {
	if k < len(freshConsts) {
		return freshConsts[k]
	}
	return value.String("@w" + strconv.Itoa(k))
}

// Values returns the domain as a plain slice.
func (dom Domain) Values() []value.Value { return []value.Value(dom) }

// EnumerateCWA calls fn with every world of [[d]]cwa whose nulls are
// instantiated within the given domain, i.e. with v(d) for every valuation
// v : Null(d) → dom.  Distinct valuations may yield the same world; fn sees
// each distinct world exactly once.  Enumeration stops early when fn
// returns false; the return value reports whether enumeration ran to
// completion.
func EnumerateCWA(d *table.Database, dom Domain, fn func(*table.Database) bool) bool {
	nulls := d.SortedNulls()
	seen := map[string]bool{}
	return valuation.Enumerate(nulls, dom, func(v valuation.Valuation) bool {
		world := v.ApplyDatabase(d)
		key := world.CanonicalKey()
		if seen[key] {
			return true
		}
		seen[key] = true
		return fn(world)
	})
}

// EnumerateOWA calls fn with worlds of [[d]]owa over the given domain,
// namely every v(d) extended with at most maxExtraTuples additional tuples
// built from domain constants.  With maxExtraTuples = 0 it enumerates
// exactly the minimal worlds (the valuation images), which is sufficient
// for computing certain answers of monotone queries.  Enumeration stops
// early when fn returns false.
func EnumerateOWA(d *table.Database, dom Domain, maxExtraTuples int, fn func(*table.Database) bool) bool {
	if maxExtraTuples <= 0 {
		return EnumerateCWA(d, dom, fn)
	}
	// All candidate extra tuples over the domain, per relation.
	type extra struct {
		rel   string
		tuple table.Tuple
	}
	var candidates []extra
	for _, name := range d.RelationNames() {
		arity := d.Relation(name).Arity()
		tuples := allTuples(dom, arity)
		for _, t := range tuples {
			candidates = append(candidates, extra{rel: name, tuple: t})
		}
	}
	seen := map[string]bool{}
	emit := func(world *table.Database) bool {
		key := world.CanonicalKey()
		if seen[key] {
			return true
		}
		seen[key] = true
		return fn(world)
	}
	return EnumerateCWA(d, dom, func(base *table.Database) bool {
		// Enumerate subsets of candidate extra tuples of size ≤ maxExtraTuples.
		var rec func(start, budget int, cur *table.Database) bool
		rec = func(start, budget int, cur *table.Database) bool {
			if !emit(cur) {
				return false
			}
			if budget == 0 {
				return true
			}
			for i := start; i < len(candidates); i++ {
				c := candidates[i]
				if cur.Relation(c.rel).Contains(c.tuple) {
					continue
				}
				next := cur.Clone()
				next.MustAdd(c.rel, c.tuple)
				if !rec(i+1, budget-1, next) {
					return false
				}
			}
			return true
		}
		return rec(0, maxExtraTuples, base)
	})
}

// allTuples enumerates all tuples of the given arity over the domain.
func allTuples(dom Domain, arity int) []table.Tuple {
	if arity == 0 {
		return []table.Tuple{{}}
	}
	var out []table.Tuple
	cur := make(table.Tuple, arity)
	var rec func(i int)
	rec = func(i int) {
		if i == arity {
			out = append(out, cur.Clone())
			return
		}
		for _, v := range dom {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// WorldCount returns the number of valuations that EnumerateCWA will try:
// |dom|^|Null(d)| (worlds may be fewer after deduplication).  When the
// true count exceeds math.MaxInt the result saturates there, so
// comparisons against enumeration bounds (certain.Options.MaxWorlds)
// still trip instead of wrapping around.
func WorldCount(d *table.Database, dom Domain) int {
	return valuation.Count(len(d.Nulls()), len(dom))
}
