package semantics

import (
	"math"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

func db(t *testing.T, arity int, rows ...[]string) *table.Database {
	t.Helper()
	s := schema.MustNew(schema.WithArity("R", arity))
	d := table.NewDatabase(s)
	for _, r := range rows {
		d.MustAddRow("R", r...)
	}
	return d
}

func TestAssumptionStringParse(t *testing.T) {
	for _, a := range []Assumption{OWA, CWA, WCWA} {
		got, err := ParseAssumption(a.String())
		if err != nil || got != a {
			t.Errorf("round trip of %v failed: %v %v", a, got, err)
		}
	}
	if _, err := ParseAssumption("nonsense"); err == nil {
		t.Error("ParseAssumption should fail on junk")
	}
	if Assumption(200).String() == "" {
		t.Error("unknown assumption should render")
	}
	if got, _ := ParseAssumption("CWA"); got != CWA {
		t.Error("upper-case parse failed")
	}
}

// The paper's example: R = {(⊥,1,⊥'), (2,⊥',⊥)}.  R1 = {(3,1,4),(2,4,3)} is
// in [[R]]cwa and [[R]]owa; R2 = R1 ∪ {(5,6,7)} is only in [[R]]owa.
func TestRepresentsPaperExample(t *testing.T) {
	r := db(t, 3, []string{"⊥1", "1", "⊥2"}, []string{"2", "⊥2", "⊥1"})
	r1 := db(t, 3, []string{"3", "1", "4"}, []string{"2", "4", "3"})
	r2 := db(t, 3, []string{"3", "1", "4"}, []string{"2", "4", "3"}, []string{"5", "6", "7"})

	if !Represents(CWA, r, r1) {
		t.Error("R1 ∈ [[R]]cwa expected")
	}
	if !Represents(OWA, r, r1) {
		t.Error("R1 ∈ [[R]]owa expected")
	}
	if Represents(CWA, r, r2) {
		t.Error("R2 ∉ [[R]]cwa expected")
	}
	if !Represents(OWA, r, r2) {
		t.Error("R2 ∈ [[R]]owa expected")
	}
	// WCWA: R2 adds new active-domain elements 5,6,7, so it is not in
	// [[R]]wcwa; R1 is.
	if !Represents(WCWA, r, r1) {
		t.Error("R1 ∈ [[R]]wcwa expected")
	}
	if Represents(WCWA, r, r2) {
		t.Error("R2 ∉ [[R]]wcwa expected")
	}
}

func TestRepresentsRejectsIncompleteWorld(t *testing.T) {
	r := db(t, 1, []string{"⊥1"})
	withNull := db(t, 1, []string{"⊥2"})
	if Represents(OWA, r, withNull) || Represents(CWA, r, withNull) {
		t.Error("worlds must be complete databases")
	}
	if Represents(Assumption(99), r, db(t, 1, []string{"1"})) {
		t.Error("unknown assumption should represent nothing")
	}
}

func TestWCWAAllowsMoreTuplesSameDomain(t *testing.T) {
	r := db(t, 2, []string{"1", "⊥1"})
	// world (1,2),(2,1): superset of v(R) for ⊥1↦2 with adom {1,2} = adom(v(R)).
	w := db(t, 2, []string{"1", "2"}, []string{"2", "1"})
	if !Represents(WCWA, r, w) {
		t.Error("WCWA should allow extra tuples over the same active domain")
	}
	if Represents(CWA, r, w) {
		t.Error("CWA should not")
	}
	if !Represents(OWA, r, w) {
		t.Error("OWA should allow it too")
	}
}

func TestDomainOf(t *testing.T) {
	d := db(t, 2, []string{"1", "⊥1"}, []string{"2", "⊥2"})
	dom := DomainOf(d, 2, value.Int(7))
	if len(dom) != 5 {
		t.Fatalf("domain size = %d, want 5 (2 consts + 1 extra + 2 fresh): %v", len(dom), dom)
	}
	seen := map[value.Value]bool{}
	for _, v := range dom.Values() {
		if !v.IsConst() {
			t.Errorf("domain contains non-constant %v", v)
		}
		if seen[v] {
			t.Errorf("domain contains duplicate %v", v)
		}
		seen[v] = true
	}
	if !seen[value.Int(1)] || !seen[value.Int(2)] || !seen[value.Int(7)] {
		t.Error("domain should include database and extra constants")
	}
	// Fresh constants must avoid existing ones even if they look like @w0.
	d2 := db(t, 1, []string{"@w0"})
	dom2 := DomainOf(d2, 1)
	if len(dom2) != 2 || dom2[0] == dom2[1] {
		t.Errorf("fresh constant collided: %v", dom2)
	}
}

func TestEnumerateCWA(t *testing.T) {
	d := db(t, 2, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	dom := Domain{value.Int(1), value.Int(2), value.Int(3)}
	var worlds []*table.Database
	completed := EnumerateCWA(d, dom, func(w *table.Database) bool {
		worlds = append(worlds, w)
		return true
	})
	if !completed {
		t.Error("enumeration should complete")
	}
	// One world per value of ⊥1: 3 distinct worlds.
	if len(worlds) != 3 {
		t.Fatalf("got %d worlds, want 3", len(worlds))
	}
	for _, w := range worlds {
		if !w.IsComplete() {
			t.Errorf("world %v is not complete", w)
		}
		if !Represents(CWA, d, w) {
			t.Errorf("enumerated world %v not in [[d]]cwa", w)
		}
	}
	if got := WorldCount(d, dom); got != 3 {
		t.Errorf("WorldCount = %d, want 3", got)
	}
}

func TestEnumerateCWADeduplicates(t *testing.T) {
	// Two nulls that always produce the same world when equal: make sure
	// distinct valuations collapsing to the same world are deduplicated.
	d := db(t, 1, []string{"⊥1"}, []string{"⊥2"})
	dom := Domain{value.Int(1), value.Int(2)}
	count := 0
	EnumerateCWA(d, dom, func(w *table.Database) bool {
		count++
		return true
	})
	// Valuations: 4.  Worlds: {1},{2},{1,2} => 3.
	if count != 3 {
		t.Errorf("expected 3 distinct worlds, got %d", count)
	}
}

func TestEnumerateCWAEarlyStop(t *testing.T) {
	d := db(t, 1, []string{"⊥1"})
	dom := Domain{value.Int(1), value.Int(2), value.Int(3)}
	count := 0
	completed := EnumerateCWA(d, dom, func(*table.Database) bool {
		count++
		return false
	})
	if completed || count != 1 {
		t.Errorf("early stop failed: completed=%v count=%d", completed, count)
	}
}

func TestEnumerateOWA(t *testing.T) {
	d := db(t, 1, []string{"1"})
	dom := Domain{value.Int(1), value.Int(2)}
	var sizes []int
	EnumerateOWA(d, dom, 1, func(w *table.Database) bool {
		sizes = append(sizes, w.TotalTuples())
		if !Represents(OWA, d, w) {
			t.Errorf("world %v not in [[d]]owa", w)
		}
		return true
	})
	// Worlds: {1} and {1,2} (adding tuple (2)); adding (1) is already there.
	if len(sizes) != 2 {
		t.Fatalf("got %d OWA worlds, want 2", len(sizes))
	}
	// maxExtraTuples=0 degenerates to CWA enumeration.
	count := 0
	EnumerateOWA(d, dom, 0, func(*table.Database) bool { count++; return true })
	if count != 1 {
		t.Errorf("OWA with 0 extra tuples should equal CWA enumeration, got %d", count)
	}
}

func TestEnumerateOWAWithNullsAndEarlyStop(t *testing.T) {
	d := db(t, 1, []string{"⊥1"})
	dom := Domain{value.Int(1), value.Int(2)}
	worlds := map[string]bool{}
	EnumerateOWA(d, dom, 1, func(w *table.Database) bool {
		worlds[w.String()] = true
		return true
	})
	// Base worlds {1},{2}; plus one extra tuple each: {1,2} (from either).
	if len(worlds) != 3 {
		t.Errorf("got %d worlds, want 3: %v", len(worlds), worlds)
	}
	count := 0
	completed := EnumerateOWA(d, dom, 1, func(*table.Database) bool { count++; return false })
	if completed || count != 1 {
		t.Errorf("early stop failed: %v %d", completed, count)
	}
}

// TestWorldCountSaturates pins the overflow guard: an instance whose
// |dom|^#nulls exceeds math.MaxInt reports a saturated (not wrapped)
// world count, so enumeration bounds still trip.
func TestWorldCountSaturates(t *testing.T) {
	d := table.NewDatabase(schema.MustNew(schema.WithArity("R", 2)))
	// 48 distinct nulls over a domain that, with one fresh constant,
	// has ~25 values: 25^48 overflows int64 by a wide margin.
	for i := 0; i < 48; i++ {
		d.MustAdd("R", table.NewTuple(value.Int(int64(i%24)), value.Null(uint64(i+1))))
	}
	dom := DomainOf(d, 1)
	got := WorldCount(d, dom)
	if got != math.MaxInt {
		t.Fatalf("WorldCount = %d, want math.MaxInt", got)
	}
	if got <= 1<<40 {
		t.Fatalf("saturated WorldCount %d does not dominate large bounds", got)
	}
}
