// Package dataload builds engines from data directories, in any of the
// three on-disk layouts the CLIs accept: a flat directory of
// <Relation>.csv files (one database state, no history), a versioned
// directory whose subdirectories each hold one full CSV state — loaded as
// a commit history with one commit per state, in sorted name order, each
// tagged with its directory name — or a durable store directory
// (internal/store), opened attached so commits keep appending to its log.
// It exists so cmd/incq and cmd/incserver load data identically: a
// directory served over the network answers exactly as it does when
// queried locally.
package dataload

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"

	"incdata/internal/csvio"
	"incdata/internal/engine"
	"incdata/internal/store"
	"incdata/internal/table"
)

// VersionDirs returns the subdirectories of dir that contain CSV files, in
// sorted (commit) order; an empty result means the directory is a plain
// single-state layout.  A directory with top-level CSV files is always
// treated as a plain layout — a stray CSV-bearing subdirectory (a backup,
// say) must not silently hijack an existing flat data directory.
func VersionDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			if strings.HasSuffix(e.Name(), ".csv") {
				return nil, nil
			}
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range sub {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".csv") {
				out = append(out, e.Name())
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// LoadVersioned builds an engine whose history holds one commit per state
// subdirectory: the first state is the root, every later one commits its
// net tuple diff under the directory's name.
func LoadVersioned(dir string, vers []string) (*engine.Engine, error) {
	db, err := csvio.ReadDatabaseDir(filepath.Join(dir, vers[0]))
	if err != nil {
		return nil, fmt.Errorf("state %s: %w", vers[0], err)
	}
	eng := engine.New(db)
	if _, err := eng.EnableHistory(engine.HistoryOptions{Message: vers[0]}); err != nil {
		return nil, err
	}
	names := db.RelationNames()
	for _, v := range vers[1:] {
		next, err := csvio.ReadDatabaseDir(filepath.Join(dir, v))
		if err != nil {
			return nil, fmt.Errorf("state %s: %w", v, err)
		}
		if !slices.Equal(next.RelationNames(), names) {
			return nil, fmt.Errorf("state %s: relations %v, want %v (every state must cover the same relations)",
				v, next.RelationNames(), names)
		}
		if err := eng.Update(func(live *table.Database) error {
			for _, name := range names {
				if err := live.SetRelation(name, next.Relation(name)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("state %s: %w", v, err)
		}
		if _, err := eng.Commit(v); err != nil {
			return nil, fmt.Errorf("state %s: %w", v, err)
		}
	}
	return eng, nil
}

// Load builds an engine from dir in whichever layout it uses, reporting
// whether the directory was versioned (and the engine therefore already
// has a commit history).  A durable store directory (internal/store, as
// written by engine.Persist or `incq -persist`) opens attached: its
// history is recovered from the commit log and later commits append to
// it, so they survive restarts.
func Load(dir string) (eng *engine.Engine, versioned bool, err error) {
	if store.IsStore(dir) {
		eng, err = engine.Open(dir)
		return eng, true, err
	}
	vers, err := VersionDirs(dir)
	if err != nil {
		return nil, false, err
	}
	if len(vers) > 0 {
		eng, err = LoadVersioned(dir, vers)
		return eng, true, err
	}
	db, err := csvio.ReadDatabaseDir(dir)
	if err != nil {
		return nil, false, err
	}
	return engine.New(db), false, nil
}
