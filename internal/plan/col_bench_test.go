package plan

import (
	"testing"

	"incdata/internal/col"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Micro-benchmarks for the vectorized kernels, each against its per-tuple
// counterpart: predicate evaluation (BenchmarkColFilter), hash-key
// computation (BenchmarkColHashKey) and the hash-join probe
// (BenchmarkColJoinProbe).  CI runs them as a -benchtime 1x smoke; local
// runs with real benchtime report the ns/op and allocs/op the DESIGN.md
// columnar section quotes.

// benchChunk fills a chunk (and its row-wise twin) with deterministic
// two-column tuples, no nulls.
func benchChunk(rows int) (*col.Chunk, []table.Tuple) {
	ch := col.New(2, rows)
	ts := make([]table.Tuple, rows)
	for i := 0; i < rows; i++ {
		t := table.NewTuple(value.Int(int64(i%64)), value.Int(int64(i%7)))
		ts[i] = t
		ch.AppendTuple(t)
	}
	return ch, ts
}

func benchSchema() schema.Relation {
	return schema.NewRelation("R", "a", "b")
}

// BenchmarkColFilter compares one compiled predicate applied per tuple
// (cpred) against the vectorized per-column loop (vpred) over the same
// chunk.
func BenchmarkColFilter(b *testing.B) {
	rs := benchSchema()
	pred := ra.And{Preds: []ra.Predicate{
		ra.Neq(ra.Attr("a"), ra.LitInt(3)),
		ra.Lt(ra.Attr("b"), ra.LitInt(5)),
	}}
	cp, err := compilePred(pred, rs)
	if err != nil {
		b.Fatal(err)
	}
	vp, err := compileVPred(pred, rs)
	if err != nil {
		b.Fatal(err)
	}
	ch, ts := benchChunk(chunkSize)

	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		kept := 0
		for i := 0; i < b.N; i++ {
			for _, t := range ts {
				if cp(t) {
					kept++
				}
			}
		}
		_ = kept
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		c := &pctx{}
		kept := 0
		for i := 0; i < b.N; i++ {
			sel := vp(c, ch, nil)
			kept += len(sel)
			c.putSel(sel)
		}
		_ = kept
	})
}

// BenchmarkColHashKey compares per-tuple probe-key encoding (appendPosKey
// on each tuple) against the column-wise AppendPosKey over a chunk.
func BenchmarkColHashKey(b *testing.B) {
	ch, ts := benchChunk(chunkSize)
	pos := []int{0, 1}

	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		c := &pctx{}
		n := 0
		for i := 0; i < b.N; i++ {
			for _, t := range ts {
				n += len(c.appendPosKey(t, pos))
			}
		}
		_ = n
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		var keyBuf []byte
		n := 0
		for i := 0; i < b.N; i++ {
			for r := 0; r < ch.Rows; r++ {
				keyBuf = ch.AppendPosKey(keyBuf[:0], pos, r)
				n += len(keyBuf)
			}
		}
		_ = n
	})
}

// BenchmarkColJoinProbe compares a full hash-join probe pipeline: the
// row-path stream (per-match tuple allocation) against the columnar
// stream (column-wise appends into a reused output chunk, all-constant
// fast path active).
func BenchmarkColJoinProbe(b *testing.B) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "a", "c"),
	)
	d := table.NewDatabase(s)
	for i := 0; i < 4096; i++ {
		d.MustAdd("R", table.NewTuple(value.Int(int64(i%256)), value.Int(int64(i))))
		d.MustAdd("S", table.NewTuple(value.Int(int64(i%256)), value.Int(int64(i/16))))
	}
	q := ra.Project{
		Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
		Attrs: []string{"b", "c"},
	}
	p, err := Compile(q, s)
	if err != nil {
		b.Fatal(err)
	}

	for _, cfg := range []struct {
		name     string
		columnar bool
	}{{"row", false}, {"columnar", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.EvalWith(d, EvalConfig{Columnar: cfg.columnar}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
