package plan

import (
	"errors"
	"sync"

	"incdata/internal/col"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Coded (monomorphic) execution.  Operators that implement codedStreamer
// move data as col.Coded chunks — one []uint64 code vector per column —
// instead of []value.Value columns: scans emit zero-copy windows over the
// relation's cached table.Encoding, compiled predicates narrow selection
// vectors with branch-free u64 compares (codedpred.go), the hash-join
// probe hashes raw codes (no binary key encoding, no allocation) against
// a table.CodedIndex, and diff/intersect membership probes hash code
// tuples the same way.  Codes decode back to value.Value exactly once, at
// the gather in materializeIntoCoded, and only for rows that survive
// dedup.
//
// The tier is strictly layered above the columnar path: codedEligible
// requires the colEligible shape plus an Ok() encoding for every base
// relation the subtree reads, and any runtime surprise (a partition
// bucket or build side outside the code space) falls back through
// bridgeCoded, which re-encodes the row stream on the fly.  The columnar
// path (colexec.go) is kept fully intact as the differential oracle —
// plan.EvalConfig.Coded selects the tier, and the fuzz tests pin all
// three execution models bit-identical across planners and worker
// counts.
//
// Chunk contract: identical to the columnar path — the chunk and
// selection vector passed to emit are producer-owned scratch (or
// read-only views into a cached Encoding) and must not be retained past
// the emit callback.

// codedEmit consumes one coded chunk restricted to the selected rows
// (nil sel = all rows).
type codedEmit func(ch *col.Coded, sel []int32) bool

// codedStreamer is the coded counterpart of colStreamer, implemented by
// operators with a native coded form.
type codedStreamer interface {
	streamCoded(c *pctx, emit codedEmit) error
}

// codedContains is a coded right-side membership probe for diff and
// intersect: key holds the probe's codes, h their HashCode fold.
type codedContains func(h uint64, key []uint64) bool

// errCodedOverflow reports a value outside the code space reaching the
// coded path.  codedEligible verifies every base relation encodes before
// dispatching, so this is defense in depth, not an expected state.
var errCodedOverflow = errors.New("plan: value outside the code space on the coded path")

// codedChunkPool recycles coded chunks (and their column capacity)
// across operators and evaluations, like colChunkPool.
var codedChunkPool = sync.Pool{
	New: func() any { return &col.Coded{} },
}

func getCodedChunk(arity int) *col.Coded {
	ch := codedChunkPool.Get().(*col.Coded)
	ch.Reset(arity)
	return ch
}

func putCodedChunk(ch *col.Coded) { codedChunkPool.Put(ch) }

// decode maps a code back to its value through the context's lock-free
// dictionary snapshot, refreshing the snapshot only when the code was
// interned after it was taken (the dictionary is append-only, so a
// stale snapshot is merely short, never wrong).
func (c *pctx) decode(code uint64) value.Value {
	if v, ok := value.DecodeDirect(code); ok {
		return v
	}
	idx := value.DictIndex(code)
	if idx >= uint64(len(c.dictVals)) {
		c.dictVals = c.dict.Values()
	}
	return c.dictVals[idx]
}

// appendCodedRow encodes one tuple into the chunk; false means a value
// fell outside the code space.
func (c *pctx) appendCodedRow(ch *col.Coded, t table.Tuple) bool {
	for j, v := range t {
		code, ok := c.dict.Encode(v)
		if !ok {
			return false
		}
		ch.Append(j, code)
	}
	ch.EndRow()
	return true
}

// streamCoded drives n's output as coded chunks, using the operator's
// native coded implementation when it has one and the encoding bridge
// otherwise.
func streamCoded(n pnode, c *pctx, emit codedEmit) error {
	if cs, ok := n.(codedStreamer); ok {
		return cs.streamCoded(c, emit)
	}
	return bridgeCoded(n, c, emit)
}

// bridgeCoded adapts an operator's row-chunk stream into coded chunks by
// encoding each batch on the fly.  It is the fallback for operators
// without a coded form and for coded operators whose fast-path inputs
// (cached encodings, coded partition buckets) are unavailable.
func bridgeCoded(n pnode, c *pctx, emit codedEmit) error {
	arity := n.out().Arity()
	ch := getCodedChunk(arity)
	defer putCodedChunk(ch)
	var encErr error
	err := streamChunks(n, c, func(ts []table.Tuple) bool {
		ch.Reset(arity)
		for _, t := range ts {
			if !c.appendCodedRow(ch, t) {
				encErr = errCodedOverflow
				return false
			}
		}
		return emit(ch, nil)
	})
	if err != nil {
		return err
	}
	return encErr
}

// streamCoded on a scan emits zero-copy chunk-sized windows over the
// relation's cached encoding — no copy, no re-encode.  Under a morsel
// assignment the worker's tuple slice is encoded on the fly instead (the
// morsel is an arbitrary sub-slice of a partitioning, which has no
// cached code vectors).
func (n *pscan) streamCoded(c *pctx, emit codedEmit) error {
	arity := n.rs.Arity()
	if c.morselFor == n {
		ch := getCodedChunk(arity)
		defer putCodedChunk(ch)
		for _, t := range c.morsel {
			if !c.appendCodedRow(ch, t) {
				return errCodedOverflow
			}
			if ch.Rows == chunkSize {
				if !emit(ch, nil) {
					return nil
				}
				ch.Reset(arity)
			}
		}
		if ch.Rows > 0 {
			emit(ch, nil)
		}
		return nil
	}
	rel := c.db.Relation(n.name)
	if rel == nil {
		return relationErr(n.name)
	}
	enc := rel.Encoding(c.dict)
	if !enc.Ok() {
		return bridgeCoded(n, c, emit)
	}
	// Window views share the encoding's storage; the per-column constant
	// flag is the whole column's (conservative for a window, never wrong).
	view := col.Coded{
		Cols:  make([][]uint64, arity),
		Const: make([]bool, arity),
	}
	rows := enc.Rows()
	for lo := 0; lo < rows; lo += chunkSize {
		hi := lo + chunkSize
		if hi > rows {
			hi = rows
		}
		for j := 0; j < arity; j++ {
			view.Cols[j] = enc.Col(j)[lo:hi]
			view.Const[j] = enc.ColConst(j)
		}
		view.Rows = hi - lo
		if !emit(&view, nil) {
			return nil
		}
	}
	return nil
}

// streamCoded on a filter narrows the selection vector with the coded
// predicate — no data moves and no value is ever looked at.
func (n *pfilter) streamCoded(c *pctx, emit codedEmit) error {
	if n.kpred == nil {
		return bridgeCoded(n, c, emit)
	}
	return streamCoded(n.in, c, func(ch *col.Coded, sel []int32) bool {
		out := n.kpred(c, ch, sel)
		ok := true
		if len(out) > 0 {
			ok = emit(ch, out)
		}
		c.putSel(out)
		return ok
	})
}

// streamCoded on a projection applies the fused coded pre-filter and
// re-points the view's code vectors.
func (n *pproject) streamCoded(c *pctx, emit codedEmit) error {
	if n.pred != nil && n.kpred == nil {
		return bridgeCoded(n, c, emit)
	}
	view := col.Coded{
		Cols:  make([][]uint64, len(n.idx)),
		Const: make([]bool, len(n.idx)),
	}
	return streamCoded(n.in, c, func(ch *col.Coded, sel []int32) bool {
		owned := false
		if n.kpred != nil {
			sel = n.kpred(c, ch, sel)
			owned = true
			if len(sel) == 0 {
				c.putSel(sel)
				return true
			}
		}
		for k, p := range n.idx {
			view.Cols[k] = ch.Cols[p]
			view.Const[k] = ch.Const[p]
		}
		view.Rows = ch.Rows
		ok := emit(&view, sel)
		if owned {
			c.putSel(sel)
		}
		return ok
	})
}

// streamCoded on a rename passes chunks through untouched.
func (n *pschema) streamCoded(c *pctx, emit codedEmit) error {
	return streamCoded(n.in, c, emit)
}

// streamCoded on a union streams both sides' chunks.
func (n *punion) streamCoded(c *pctx, emit codedEmit) error {
	stopped := false
	err := streamCoded(n.l, c, func(ch *col.Coded, sel []int32) bool {
		if !emit(ch, sel) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	return streamCoded(n.r, c, emit)
}

// codedIndex returns the coded build index this join probes: on the
// partitioned parallel path the worker's per-partition coded index,
// otherwise a coded index over the build side's cached encoding.  nil
// (with no error) means the build side has no coded form — the caller
// falls back to the columnar/binary probe via bridgeCoded.
func (n *pjoin) codedIndex(c *pctx) (*table.CodedIndex, error) {
	if c.partIdxFor == n {
		return c.partCoded, nil
	}
	// A base-scan build side (including folded renames) and the parallel
	// prepare phase's shared materialization both serve the index cached
	// on the relation's sidecar.
	rrel := (*table.Relation)(nil)
	if sc, ok := n.r.(*pscan); ok {
		if rrel = c.db.Relation(sc.name); rrel == nil {
			return nil, relationErr(sc.name)
		}
	} else if c.shared != nil {
		rrel = c.shared.mats[n.r]
	}
	if rrel != nil {
		enc := rrel.Encoding(c.dict)
		if !enc.Ok() {
			return nil, nil
		}
		return enc.Index(n.rpos), nil
	}
	// Derived build side with no shared copy: index it straight off its
	// coded stream — codes never decode into tuples just to be hashed
	// again.  The dedup set supplies the set semantics a materialization
	// would have enforced.
	arity := n.r.out().Arity()
	seen := newCodedSet(arity, 16)
	cols := make([][]uint64, arity)
	row := make([]uint64, arity)
	rows := 0
	err := streamCoded(n.r, c, func(ch *col.Coded, sel []int32) bool {
		gather := func(i int32) {
			h := value.CodeHashSeed
			for j := 0; j < arity; j++ {
				code := ch.Cols[j][i]
				row[j] = code
				h = value.HashCode(h, code)
			}
			if !seen.insert(h, row) {
				return
			}
			for j, code := range row {
				cols[j] = append(cols[j], code)
			}
			rows++
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				gather(i)
			}
		} else {
			for _, i := range sel {
				gather(i)
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return table.NewCodedIndexFromCols(n.rpos, cols, rows), nil
}

// streamCoded on a hash join probes the coded build index with the
// HashCode fold of the probe columns' raw codes and appends matches
// column-wise — no binary key is built and no tuple is allocated per
// match.  Hash buckets may mix distinct keys, so every candidate is
// verified by u64 equality (MatchesKey).  The all-constant fast path
// mirrors the columnar one: null-free build side plus all-constant probe
// chunk skip the sidecar bookkeeping entirely.
func (n *pjoin) streamCoded(c *pctx, emit codedEmit) error {
	ix, err := n.codedIndex(c)
	if err != nil {
		return err
	}
	if ix == nil {
		return bridgeCoded(n, c, emit)
	}
	outArity := n.rs.Arity()
	out := getCodedChunk(outArity)
	defer putCodedChunk(out)
	// key must survive emit calls mid-probe (a downstream operator may
	// use its own scratch), so it is local to this evaluation.
	key := make([]uint64, len(n.lpos))
	stopped := false
	err = streamCoded(n.l, c, func(ch *col.Coded, sel []int32) bool {
		lar := len(ch.Cols)
		fast := ix.AllComplete() && ch.AllConst()
		probe := func(i int32) bool {
			h := value.CodeHashSeed
			for k, p := range n.lpos {
				code := ch.Cols[p][i]
				key[k] = code
				h = value.HashCode(h, code)
			}
			for e := ix.Lookup(h); e != 0; {
				var row int32
				row, e = ix.At(e)
				if !ix.MatchesKey(row, key) {
					continue
				}
				rc := ix.Row(row)
				if fast {
					for j := 0; j < lar; j++ {
						out.Cols[j] = append(out.Cols[j], ch.Cols[j][i])
					}
					for k, ri := range n.extraIdx {
						out.Cols[lar+k] = append(out.Cols[lar+k], rc[ri])
					}
				} else {
					for j := 0; j < lar; j++ {
						code := ch.Cols[j][i]
						out.Cols[j] = append(out.Cols[j], code)
						if out.Const[j] && value.CodeIsNull(code) {
							out.Const[j] = false
						}
					}
					for k, ri := range n.extraIdx {
						code := rc[ri]
						out.Cols[lar+k] = append(out.Cols[lar+k], code)
						if out.Const[lar+k] && value.CodeIsNull(code) {
							out.Const[lar+k] = false
						}
					}
				}
				out.Rows++
				if out.Rows == chunkSize {
					if !emit(out, nil) {
						return false
					}
					out.Reset(outArity)
				}
			}
			return true
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				if !probe(i) {
					stopped = true
					return false
				}
			}
			return true
		}
		for _, i := range sel {
			if !probe(i) {
				stopped = true
				return false
			}
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	if out.Rows > 0 {
		emit(out, nil)
	}
	return nil
}

// codedSet is an insert-only hash set of fixed-width code tuples, in the
// same chained-slice layout as CodedIndex — the coded counterpart of the
// map[string]struct{} key sets of the row path.
type codedSet struct {
	width int
	heads map[uint64]int32 // code hash → 1-based head into next
	next  []int32
	codes []uint64 // row-major, width-strided
}

func newCodedSet(width, sizeHint int) *codedSet {
	return &codedSet{
		width: width,
		heads: make(map[uint64]int32, sizeHint),
		next:  make([]int32, 0, sizeHint),
	}
}

// contains reports whether the set holds the key (hashed to h).
func (s *codedSet) contains(h uint64, key []uint64) bool {
	for e := s.heads[h]; e != 0; e = s.next[e-1] {
		a := int(e-1) * s.width
		match := true
		for k, kc := range key {
			if s.codes[a+k] != kc {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// insert adds the key if absent; it reports whether the key was new.
func (s *codedSet) insert(h uint64, key []uint64) bool {
	if s.contains(h, key) {
		return false
	}
	s.codes = append(s.codes, key...)
	s.next = append(s.next, s.heads[h])
	s.heads[h] = int32(len(s.next))
	return true
}

// size returns the number of keys held.
func (s *codedSet) size() int { return len(s.next) }

// codedContainsFn builds (or fetches the prepare phase's shared copy of)
// the coded right-side membership probe of a diff/intersect.  nil with
// no error means the right side has no coded form — the caller bridges.
// The returned function only reads immutable state and is safe for
// concurrent probes.
func (n *pdiff) codedContainsFn(c *pctx) (codedContains, error) {
	if c.shared != nil {
		if f, ok := c.shared.codedContains[n]; ok {
			return f, nil
		}
	}
	if sc, ok := n.r.(*pscan); ok && n.rpred == nil {
		rrel := c.db.Relation(sc.name)
		if rrel == nil {
			return nil, relationErr(sc.name)
		}
		enc := rrel.Encoding(c.dict)
		if !enc.Ok() {
			return nil, nil
		}
		pos := n.rproj
		if pos == nil {
			pos = allPositions(rrel.Arity())
		}
		ix := enc.Index(pos)
		return ix.HasKey, nil
	}
	// Derived right side (or a base scan with a fused filter): stream the
	// rows once — the right side is a pipeline breaker either way — and
	// collect the code tuples of the (projected) keys.
	width := n.r.out().Arity()
	if n.rproj != nil {
		width = len(n.rproj)
	}
	sizeHint := 16
	if sc, ok := n.r.(*pscan); ok {
		if rrel := c.db.Relation(sc.name); rrel != nil {
			sizeHint = rrel.Len()
		}
	}
	set := newCodedSet(width, sizeHint)
	key := make([]uint64, width)
	encodable := true
	err := n.r.stream(c, func(t table.Tuple) bool {
		if n.rpred != nil && !n.rpred(t) {
			return true
		}
		h := value.CodeHashSeed
		fill := func(k int, v value.Value) bool {
			code, ok := c.dict.Encode(v)
			if !ok {
				encodable = false
				return false
			}
			key[k] = code
			h = value.HashCode(h, code)
			return true
		}
		if n.rproj == nil {
			for k, v := range t {
				if !fill(k, v) {
					return false
				}
			}
		} else {
			for k, p := range n.rproj {
				if !fill(k, t[p]) {
					return false
				}
			}
		}
		set.insert(h, key)
		return true
	})
	if err != nil {
		return nil, err
	}
	if !encodable {
		return nil, nil
	}
	return set.contains, nil
}

// streamCoded on a diff/intersect narrows the selection with the fused
// coded pre-filter, folds each surviving row's key codes into a hash,
// and probes the coded membership set — no binary key is ever built.
func (n *pdiff) streamCoded(c *pctx, emit codedEmit) error {
	if n.lpred != nil && n.lkpred == nil {
		return bridgeCoded(n, c, emit)
	}
	contains, err := n.codedContainsFn(c)
	if err != nil {
		return err
	}
	if contains == nil {
		return bridgeCoded(n, c, emit)
	}
	var view col.Coded
	if n.lproj != nil {
		view.Cols = make([][]uint64, len(n.lproj))
		view.Const = make([]bool, len(n.lproj))
	}
	width := n.l.out().Arity()
	if n.lproj != nil {
		width = len(n.lproj)
	}
	key := make([]uint64, width)
	return streamCoded(n.l, c, func(ch *col.Coded, sel []int32) bool {
		owned := false
		if n.lkpred != nil {
			sel = n.lkpred(c, ch, sel)
			owned = true
		}
		out := c.getSel()[:0]
		keep := func(i int32) {
			h := value.CodeHashSeed
			if n.lproj == nil {
				for j := 0; j < width; j++ {
					code := ch.Cols[j][i]
					key[j] = code
					h = value.HashCode(h, code)
				}
			} else {
				for k, p := range n.lproj {
					code := ch.Cols[p][i]
					key[k] = code
					h = value.HashCode(h, code)
				}
			}
			if contains(h, key) != n.negate {
				out = append(out, i)
			}
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				keep(i)
			}
		} else {
			for _, i := range sel {
				keep(i)
			}
		}
		if owned {
			c.putSel(sel)
		}
		ok := true
		if len(out) > 0 {
			if n.lproj == nil {
				ok = emit(ch, out)
			} else {
				for k, p := range n.lproj {
					view.Cols[k] = ch.Cols[p]
					view.Const[k] = ch.Const[p]
				}
				view.Rows = ch.Rows
				ok = emit(&view, out)
			}
		}
		c.putSel(out)
		return ok
	})
}

// codedEligible reports whether the coded tier should evaluate this
// subtree: the shape must pay off like the columnar path's
// (colEligible), and every base relation the subtree reads must have an
// Ok() encoding — otherwise bridged chunks could meet a value outside
// the code space mid-stream.  Checking eagerly also builds (and caches)
// the encodings the scans will serve windows from.
func codedEligible(n pnode, c *pctx) bool {
	if !c.coded || c.dict == nil {
		return false
	}
	if !colEligible(n) {
		return false
	}
	return scansEncodable(n, c)
}

// scansEncodable walks every operator of the subtree — including bridged
// ones, whose rows get re-encoded on the fly — and verifies each base
// relation read encodes cleanly.  Δ reads the whole database's active
// domain, which the walk cannot bound, so it disqualifies the subtree.
func scansEncodable(n pnode, c *pctx) bool {
	switch x := n.(type) {
	case *pscan:
		rel := c.db.Relation(x.name)
		if rel == nil {
			return true // the stream will surface the unknown-relation error
		}
		return rel.Encoding(c.dict).Ok()
	case *pempty:
		return true
	case *pdelta:
		return false
	case *pfilter:
		return scansEncodable(x.in, c)
	case *pproject:
		return scansEncodable(x.in, c)
	case *pschema:
		return scansEncodable(x.in, c)
	case *punion:
		return scansEncodable(x.l, c) && scansEncodable(x.r, c)
	case *pjoin:
		return scansEncodable(x.l, c) && scansEncodable(x.r, c)
	case *pproduct:
		return scansEncodable(x.l, c) && scansEncodable(x.r, c)
	case *pdiff:
		return scansEncodable(x.l, c) && scansEncodable(x.r, c)
	case *pdivision:
		return scansEncodable(x.l, c) && scansEncodable(x.r, c)
	default:
		return true
	}
}

// codedDedupProbe is the number of gathered rows after which the
// code-tuple dedup set is dropped unless it is earning its keep: on
// distinct-heavy output the set is pure overhead on top of the
// authoritative inserter check, so it only stays for streams that
// repeat a substantial fraction of their rows (projected joins that
// collapse many pairs onto few result tuples).  Each duplicate the set
// absorbs saves a decode, a binary key and a map probe; each distinct
// row it retains costs a hash, a chained lookup and ~width words of
// growth — the break-even sits around one duplicate per eight rows,
// which codedDedupKeep encodes.
const (
	codedDedupProbe = 4096
	codedDedupKeep  = 8 // keep the set iff dups ≥ gathered/codedDedupKeep
)

// codedTupleSlab is the number of output tuples carved from one slab
// allocation in the coded gather.
const codedTupleSlab = 256

// materializeIntoCoded streams n as coded chunks into out.  Certain-only
// extraction narrows the selection with the tag-test CompleteSel, and
// duplicates are dropped on the full code tuple (hash + u64 compare)
// before any value is decoded — only the first occurrence of a row pays
// for decoding, the binary key, and the tuple allocation.  The dedup set
// is adaptive (see codedDedupProbe); ins.Has remains the authority, so
// dropping the set is always sound.
func materializeIntoCoded(n pnode, c *pctx, certainOnly, adopt bool, out *table.Relation) error {
	ins := out.BeginInsert()
	arity := n.out().Arity()
	seen := newCodedSet(arity, 16)
	gathered := 0
	row := make([]uint64, arity)
	// When adopt is set, every code that reaches the relation is also
	// collected column-wise: a fresh output adopts them as its coded
	// sidecar afterwards, so a consumer (join build side, diff probe)
	// asking for the temporary's Encoding skips the re-interning pass
	// over values just decoded here.  Root results never pass adopt.
	var codes [][]uint64
	if adopt && out.Len() == 0 {
		codes = make([][]uint64, arity)
	}
	// Tuples that survive dedup are carved out of a slab, one allocation
	// per codedTupleSlab rows instead of one per tuple.  The slab cursor
	// only advances on insertion, so a row rejected by ins.Has hands its
	// storage to the next candidate.  Slab memory is retained by the
	// inserted tuples, which out keeps alive anyway.
	var slab []value.Value
	err := streamCoded(n, c, func(ch *col.Coded, sel []int32) bool {
		if seen != nil && gathered >= codedDedupProbe &&
			gathered-seen.size() < gathered/codedDedupKeep {
			seen = nil
		}
		if certainOnly {
			dst := c.getSel()
			narrowed, used := ch.CompleteSel(sel, dst)
			if used {
				sel = narrowed
				defer c.putSel(narrowed)
			} else {
				c.putSel(dst)
			}
		}
		gather := func(i int32) {
			if seen != nil {
				h := value.CodeHashSeed
				for j := 0; j < arity; j++ {
					code := ch.Cols[j][i]
					row[j] = code
					h = value.HashCode(h, code)
				}
				gathered++
				if !seen.insert(h, row) {
					return
				}
			} else {
				for j := 0; j < arity; j++ {
					row[j] = ch.Cols[j][i]
				}
			}
			if len(slab) < arity {
				slab = make([]value.Value, codedTupleSlab*arity)
			}
			t := table.Tuple(slab[:arity:arity])
			for j, code := range row {
				t[j] = c.decode(code)
			}
			key := t.AppendKey(c.keyBuf[:0])
			c.keyBuf = key
			// The code-tuple dedup is per materialization; ins.Has still
			// guards against rows merged in by other branches or workers.
			if !ins.Has(key) {
				ins.Add(key, t)
				slab = slab[arity:]
				if codes != nil {
					for j, code := range row {
						codes[j] = append(codes[j], code)
					}
				}
			}
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				gather(i)
			}
		} else {
			for _, i := range sel {
				gather(i)
			}
		}
		return true
	})
	if err == nil && codes != nil {
		out.AdoptEncoding(c.dict, codes)
	}
	return err
}
