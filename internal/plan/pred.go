package plan

import (
	"fmt"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// predAttrs returns the attribute names a predicate references (with
// duplicates; callers only test membership).
func predAttrs(p ra.Predicate) []string {
	var out []string
	var walk func(p ra.Predicate)
	walk = func(p ra.Predicate) {
		switch pp := p.(type) {
		case ra.Cmp:
			if pp.Left.IsAttr {
				out = append(out, pp.Left.Attr)
			}
			if pp.Right.IsAttr {
				out = append(out, pp.Right.Attr)
			}
		case ra.And:
			for _, q := range pp.Preds {
				walk(q)
			}
		case ra.Or:
			for _, q := range pp.Preds {
				walk(q)
			}
		case ra.Not:
			walk(pp.Pred)
		}
	}
	walk(p)
	return out
}

// translatePred rewrites a predicate's attribute references positionally
// from one schema to another of the same arity (used when pushing through
// ρ and ∪).
func translatePred(p ra.Predicate, from, to schema.Relation) (ra.Predicate, error) {
	if from.Arity() != to.Arity() {
		return nil, fmt.Errorf("plan: cannot translate predicate between %s and %s", from, to)
	}
	translateOp := func(o ra.Operand) (ra.Operand, error) {
		if !o.IsAttr {
			return o, nil
		}
		pos := from.AttrIndex(o.Attr)
		if pos < 0 {
			return o, fmt.Errorf("plan: attribute %q not in %s", o.Attr, from)
		}
		return ra.Attr(to.Attrs[pos]), nil
	}
	var walk func(p ra.Predicate) (ra.Predicate, error)
	walk = func(p ra.Predicate) (ra.Predicate, error) {
		switch pp := p.(type) {
		case ra.Cmp:
			l, err := translateOp(pp.Left)
			if err != nil {
				return nil, err
			}
			r, err := translateOp(pp.Right)
			if err != nil {
				return nil, err
			}
			return ra.Cmp{Left: l, Op: pp.Op, Right: r}, nil
		case ra.And:
			out := make([]ra.Predicate, len(pp.Preds))
			for i, q := range pp.Preds {
				nq, err := walk(q)
				if err != nil {
					return nil, err
				}
				out[i] = nq
			}
			return ra.And{Preds: out}, nil
		case ra.Or:
			out := make([]ra.Predicate, len(pp.Preds))
			for i, q := range pp.Preds {
				nq, err := walk(q)
				if err != nil {
					return nil, err
				}
				out[i] = nq
			}
			return ra.Or{Preds: out}, nil
		case ra.Not:
			nq, err := walk(pp.Pred)
			if err != nil {
				return nil, err
			}
			return ra.Not{Pred: nq}, nil
		default:
			return p, nil // True, False
		}
	}
	return walk(p)
}

// cpred is a compiled predicate: attribute references are resolved to
// tuple positions once, at compile time, so evaluation does no name
// lookups.  A nil cpred means "always true".
type cpred func(t table.Tuple) bool

// CompilePredicate resolves a predicate against the input schema into a
// closed evaluation function over tuples, with exactly the semantics the
// physical operators and the naïve evaluator agree on: marked-null
// identity for = and ≠, value.Compare for the order comparisons.  Unlike
// the internal compiled form, a constant-true predicate compiles to a
// non-nil always-true function.  Incremental view maintenance
// (internal/inc) uses this to filter deltas through selection nodes with
// the same semantics as full evaluation.
func CompilePredicate(p ra.Predicate, rs schema.Relation) (func(table.Tuple) bool, error) {
	cp, err := compilePred(p, rs)
	if err != nil {
		return nil, err
	}
	if cp == nil {
		return func(table.Tuple) bool { return true }, nil
	}
	return cp, nil
}

// compilePred resolves a predicate against the input schema.
func compilePred(p ra.Predicate, rs schema.Relation) (cpred, error) {
	switch pp := p.(type) {
	case ra.True:
		return nil, nil
	case ra.False:
		return func(table.Tuple) bool { return false }, nil
	case ra.Cmp:
		return compileCmp(pp, rs)
	case ra.And:
		kids := make([]cpred, 0, len(pp.Preds))
		for _, q := range pp.Preds {
			cq, err := compilePred(q, rs)
			if err != nil {
				return nil, err
			}
			if cq != nil {
				kids = append(kids, cq)
			}
		}
		switch len(kids) {
		case 0:
			return nil, nil
		case 1:
			return kids[0], nil
		}
		return func(t table.Tuple) bool {
			for _, k := range kids {
				if !k(t) {
					return false
				}
			}
			return true
		}, nil
	case ra.Or:
		kids := make([]cpred, len(pp.Preds))
		for i, q := range pp.Preds {
			cq, err := compilePred(q, rs)
			if err != nil {
				return nil, err
			}
			if cq == nil {
				return nil, nil // a true disjunct makes the whole ∨ true
			}
			kids[i] = cq
		}
		if len(kids) == 0 {
			return func(table.Tuple) bool { return false }, nil
		}
		return func(t table.Tuple) bool {
			for _, k := range kids {
				if k(t) {
					return true
				}
			}
			return false
		}, nil
	case ra.Not:
		inner, err := compilePred(pp.Pred, rs)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return func(table.Tuple) bool { return false }, nil
		}
		return func(t table.Tuple) bool { return !inner(t) }, nil
	default:
		return nil, fmt.Errorf("plan: unsupported predicate %T", p)
	}
}

func compileCmp(c ra.Cmp, rs schema.Relation) (cpred, error) {
	resolve := func(o ra.Operand) (int, value.Value, error) {
		if !o.IsAttr {
			return -1, o.Const, nil
		}
		pos := rs.AttrIndex(o.Attr)
		if pos < 0 {
			return 0, value.Value{}, fmt.Errorf("ra: unknown attribute %q in %s", o.Attr, rs)
		}
		return pos, value.Value{}, nil
	}
	li, lc, err := resolve(c.Left)
	if err != nil {
		return nil, err
	}
	ri, rc, err := resolve(c.Right)
	if err != nil {
		return nil, err
	}
	get := func(idx int, con value.Value) func(t table.Tuple) value.Value {
		if idx < 0 {
			return func(table.Tuple) value.Value { return con }
		}
		return func(t table.Tuple) value.Value { return t[idx] }
	}
	switch c.Op {
	case ra.EQ:
		switch {
		case li >= 0 && ri >= 0:
			return func(t table.Tuple) bool { return t[li] == t[ri] }, nil
		case li >= 0:
			return func(t table.Tuple) bool { return t[li] == rc }, nil
		case ri >= 0:
			return func(t table.Tuple) bool { return lc == t[ri] }, nil
		default:
			holds := lc == rc
			return func(table.Tuple) bool { return holds }, nil
		}
	case ra.NEQ:
		switch {
		case li >= 0 && ri >= 0:
			return func(t table.Tuple) bool { return t[li] != t[ri] }, nil
		case li >= 0:
			return func(t table.Tuple) bool { return t[li] != rc }, nil
		case ri >= 0:
			return func(t table.Tuple) bool { return lc != t[ri] }, nil
		default:
			holds := lc != rc
			return func(table.Tuple) bool { return holds }, nil
		}
	}
	l, r := get(li, lc), get(ri, rc)
	switch c.Op {
	case ra.LT:
		return func(t table.Tuple) bool { return value.Compare(l(t), r(t)) < 0 }, nil
	case ra.LEQ:
		return func(t table.Tuple) bool { return value.Compare(l(t), r(t)) <= 0 }, nil
	case ra.GT:
		return func(t table.Tuple) bool { return value.Compare(l(t), r(t)) > 0 }, nil
	case ra.GEQ:
		return func(t table.Tuple) bool { return value.Compare(l(t), r(t)) >= 0 }, nil
	default:
		return nil, fmt.Errorf("plan: unsupported comparison operator %v", c.Op)
	}
}
