package plan

import (
	"sync"

	"incdata/internal/table"
)

// Chunked execution.  Operators that implement chunkStreamer move tuples in
// fixed-size batches instead of one per closure call: a scan fills a chunk
// from its relation, filters compact into their own chunk, projections and
// join probes build output chunks, and materialization inserts each chunk
// with a single Relation.AddBatch (one version bump / COW check per chunk
// instead of per tuple).  Operators without a native chunked form are
// adapted from their per-tuple stream, so the two execution models compose
// freely within one plan.
//
// Chunk contract: the slice passed to emit is producer-owned scratch —
// consumers must not retain or modify it after returning (its tuples are
// immutable and may be adopted, exactly as with per-tuple emit).  Chunks
// hold at most chunkSize tuples.  Chunk buffers are recycled through a
// process-wide sync.Pool so the chunked path does not add allocations per
// evaluation.

// chunkSize is the number of tuples moved per batch.  Large enough to
// amortize per-chunk overhead (AddBatch, pool traffic), small enough that a
// chunk of tuple headers stays cache-resident.
const chunkSize = 256

// chunkPool recycles chunk buffers across operators and evaluations.
var chunkPool = sync.Pool{
	New: func() any {
		s := make([]table.Tuple, 0, chunkSize)
		return &s
	},
}

func getChunk() *[]table.Tuple { return chunkPool.Get().(*[]table.Tuple) }

func putChunk(c *[]table.Tuple) {
	*c = (*c)[:0]
	chunkPool.Put(c)
}

// chunkStreamer is the chunked counterpart of pnode.stream, implemented by
// operators with a native batched form.
type chunkStreamer interface {
	streamChunks(c *pctx, emit func([]table.Tuple) bool) error
}

// streamChunks drives n's output in chunks, using the operator's native
// chunked implementation when it has one and adapting the per-tuple stream
// otherwise.
func streamChunks(n pnode, c *pctx, emit func([]table.Tuple) bool) error {
	if cs, ok := n.(chunkStreamer); ok {
		return cs.streamChunks(c, emit)
	}
	chp := getChunk()
	defer putChunk(chp)
	chunk := (*chp)[:0]
	stopped := false
	err := n.stream(c, func(t table.Tuple) bool {
		chunk = append(chunk, t)
		if len(chunk) == chunkSize {
			if !emit(chunk) {
				stopped = true
				return false
			}
			chunk = chunk[:0]
		}
		return true
	})
	*chp = chunk[:0]
	if err != nil || stopped {
		return err
	}
	if len(chunk) > 0 {
		emit(chunk)
	}
	return nil
}

// streamChunks on a scan iterates the relation (or, under a morsel
// assignment, the scan's morsel slice) into pooled chunks.  Morsel slices
// are emitted as read-only sub-slices without copying.
func (n *pscan) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	if c.morselFor == n {
		m := c.morsel
		for len(m) > 0 {
			k := len(m)
			if k > chunkSize {
				k = chunkSize
			}
			if !emit(m[:k]) {
				return nil
			}
			m = m[k:]
		}
		return nil
	}
	rel := c.db.Relation(n.name)
	if rel == nil {
		return relationErr(n.name)
	}
	chp := getChunk()
	defer putChunk(chp)
	chunk := (*chp)[:0]
	rel.Each(func(t table.Tuple) bool {
		chunk = append(chunk, t)
		if len(chunk) == chunkSize {
			if !emit(chunk) {
				return false
			}
			chunk = chunk[:0]
		}
		return true
	})
	*chp = chunk[:0]
	if len(chunk) > 0 {
		emit(chunk)
	}
	return nil
}

// streamChunks on a filter compacts each input chunk into its own buffer.
func (n *pfilter) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	chp := getChunk()
	defer putChunk(chp)
	return streamChunks(n.in, c, func(in []table.Tuple) bool {
		out := (*chp)[:0]
		for _, t := range in {
			if n.pred(t) {
				out = append(out, t)
			}
		}
		*chp = out
		if len(out) == 0 {
			return true
		}
		return emit(out)
	})
}

// streamChunks on a projection applies the fused pre-filter and projects
// each surviving tuple into its own output chunk.
func (n *pproject) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	chp := getChunk()
	defer putChunk(chp)
	return streamChunks(n.in, c, func(in []table.Tuple) bool {
		out := (*chp)[:0]
		for _, t := range in {
			if n.pred != nil && !n.pred(t) {
				continue
			}
			out = append(out, t.Project(n.idx...))
		}
		*chp = out
		if len(out) == 0 {
			return true
		}
		return emit(out)
	})
}

// streamChunks on a rename passes chunks through untouched.
func (n *pschema) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	return streamChunks(n.in, c, emit)
}

// streamChunks on a union streams both sides' chunks.
func (n *punion) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	stopped := false
	err := streamChunks(n.l, c, func(ts []table.Tuple) bool {
		if !emit(ts) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	return streamChunks(n.r, c, emit)
}

// streamChunks on a hash join probes each input chunk against the build
// index, accumulating matches into an output chunk.
func (n *pjoin) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	ix, err := n.buildIndex(c)
	if err != nil {
		return err
	}
	chp := getChunk()
	defer putChunk(chp)
	out := (*chp)[:0]
	stopped := false
	err = streamChunks(n.l, c, func(in []table.Tuple) bool {
		for _, lt := range in {
			key := c.appendPosKey(lt, n.lpos)
			for i := ix.Lookup(key); i != 0; {
				var rt table.Tuple
				rt, i = ix.At(i)
				combined := make(table.Tuple, len(lt), len(lt)+len(n.extraIdx))
				copy(combined, lt)
				for _, ri := range n.extraIdx {
					combined = append(combined, rt[ri])
				}
				out = append(out, combined)
				if len(out) == chunkSize {
					if !emit(out) {
						*chp = out[:0]
						stopped = true
						return false
					}
					out = out[:0]
				}
			}
		}
		*chp = out
		return true
	})
	if err != nil || stopped {
		return err
	}
	if len(out) > 0 {
		emit(out)
	}
	return nil
}

// streamChunks on a diff/intersect filters the left side's chunks through
// the right-side key set, with the fused projection applied to survivors.
func (n *pdiff) streamChunks(c *pctx, emit func([]table.Tuple) bool) error {
	contains, err := n.containsFn(c)
	if err != nil {
		return err
	}
	chp := getChunk()
	defer putChunk(chp)
	return streamChunks(n.l, c, func(in []table.Tuple) bool {
		out := (*chp)[:0]
		for _, t := range in {
			if n.lpred != nil && !n.lpred(t) {
				continue
			}
			k := sideKey(c.keyBuf[:0], t, n.lproj)
			c.keyBuf = k
			if contains(k) == n.negate {
				continue
			}
			if n.lproj != nil {
				out = append(out, t.Project(n.lproj...))
			} else {
				out = append(out, t)
			}
		}
		*chp = out
		if len(out) == 0 {
			return true
		}
		return emit(out)
	})
}

// materializeInto streams n in chunks into out, optionally keeping only
// null-free tuples (the fused null-stripping of certain-answer extraction).
// Union branches split at the root so each branch picks its own execution
// model: under a coded context, branches whose base relations all encode
// (codedEligible) run on the monomorphic coded path (codedexec.go); under
// a columnar context, branches whose subtree builds fresh output tuples
// (colEligible) run on the vectorized path (colexec.go); everything else
// on the row-chunk path below.
func materializeInto(n pnode, c *pctx, certainOnly bool, out *table.Relation) error {
	return materializeIntoAdopt(n, c, certainOnly, false, out)
}

// materializeIntoAdopt is materializeInto with control over whether a
// coded materialization also publishes the collected codes as out's
// Encoding sidecar (see AdoptEncoding).  Only temporaries that downstream
// operators will consume coded — materialize()'s pipeline breakers — pass
// adopt; root results skip the collection, nothing ever reads their codes.
func materializeIntoAdopt(n pnode, c *pctx, certainOnly, adopt bool, out *table.Relation) error {
	if c.columnar || c.coded {
		if u, ok := n.(*punion); ok {
			if err := materializeIntoAdopt(u.l, c, certainOnly, adopt, out); err != nil {
				return err
			}
			return materializeIntoAdopt(u.r, c, certainOnly, adopt, out)
		}
	}
	if c.coded && codedEligible(n, c) {
		return materializeIntoCoded(n, c, certainOnly, adopt, out)
	}
	if c.columnar {
		if colEligible(n) {
			return materializeIntoCol(n, c, certainOnly, out)
		}
	}
	if !certainOnly {
		return streamChunks(n, c, func(ts []table.Tuple) bool {
			out.MustAddBatch(ts)
			return true
		})
	}
	chp := getChunk()
	defer putChunk(chp)
	return streamChunks(n, c, func(ts []table.Tuple) bool {
		keep := (*chp)[:0]
		for _, t := range ts {
			if t.IsComplete() {
				keep = append(keep, t)
			}
		}
		*chp = keep
		out.MustAddBatch(keep)
		return true
	})
}
