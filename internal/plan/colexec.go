package plan

import (
	"sync"

	"incdata/internal/col"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Columnar (vectorized) execution.  Operators that implement colStreamer
// move data as col.Chunk column vectors plus a selection vector instead
// of per-tuple rows: scans fill column vectors directly from relation
// storage, compiled predicates narrow selection vectors with per-column
// loops (colpred.go), projections re-point column slices without moving
// data, the hash-join probe appends matches column-wise into a reused
// output chunk (no per-match tuple allocation), and diff/intersect
// compute membership keys column-wise.  Tuples materialize exactly once,
// at the gather in materializeIntoCol, where the precomputed row key
// also skips the allocation for duplicate rows.
//
// Operators without a native columnar form (product, division, Δ) adapt
// through the row bridge (bridgeCols): their per-tuple stream is
// transposed into chunks, so the three execution models — per-tuple, row
// chunks, column chunks — compose freely within one plan.
//
// Chunk contract: the chunk and selection vector passed to emit are
// producer-owned scratch, reused for the next batch as soon as emit
// returns — consumers must not retain either.  Values gathered out of a
// chunk are copies, so adopted tuples never alias chunk storage (the
// same "producer-owned scratch, adoptable tuples" contract as the row
// chunk path; pinned by TestColumnarScratchLifetime).
//
// The row path (chunk.go) is kept fully intact as the differential
// oracle — plan.EvalConfig.Columnar selects between the two, and the
// fuzz tests pin them bit-identical across planners and worker counts.

// colEmit consumes one columnar chunk restricted to the selected rows
// (nil sel = all rows).
type colEmit func(ch *col.Chunk, sel []int32) bool

// colStreamer is the columnar counterpart of chunkStreamer, implemented
// by operators with a native vectorized form.
type colStreamer interface {
	streamCols(c *pctx, emit colEmit) error
}

// colChunkPool recycles columnar chunks (and their column capacity)
// across operators and evaluations, like chunkPool does for row chunks.
var colChunkPool = sync.Pool{
	New: func() any { return &col.Chunk{} },
}

func getColChunk(arity int) *col.Chunk {
	ch := colChunkPool.Get().(*col.Chunk)
	ch.Reset(arity)
	return ch
}

func putColChunk(ch *col.Chunk) { colChunkPool.Put(ch) }

// streamCols drives n's output column-wise, using the operator's native
// vectorized implementation when it has one and the row bridge
// otherwise.
func streamCols(n pnode, c *pctx, emit colEmit) error {
	if cs, ok := n.(colStreamer); ok {
		return cs.streamCols(c, emit)
	}
	return bridgeCols(n, c, emit)
}

// bridgeCols adapts an operator's row-chunk stream into columnar chunks:
// each row batch is transposed into a pooled chunk.  It is also the
// fallback for vectorizable operators whose predicate did not compile to
// a vectorized form.
func bridgeCols(n pnode, c *pctx, emit colEmit) error {
	arity := n.out().Arity()
	ch := getColChunk(arity)
	defer putColChunk(ch)
	return streamChunks(n, c, func(ts []table.Tuple) bool {
		ch.FromTuples(ts, arity)
		return emit(ch, nil)
	})
}

// streamCols on a scan fills column vectors directly from the relation
// (or, under a morsel assignment, from the scan's morsel slice),
// tracking the all-constant sidecar during the fill.
func (n *pscan) streamCols(c *pctx, emit colEmit) error {
	arity := n.rs.Arity()
	ch := getColChunk(arity)
	defer putColChunk(ch)
	if c.morselFor == n {
		for _, t := range c.morsel {
			ch.AppendTuple(t)
			if ch.Rows == chunkSize {
				if !emit(ch, nil) {
					return nil
				}
				ch.Reset(arity)
			}
		}
		if ch.Rows > 0 {
			emit(ch, nil)
		}
		return nil
	}
	rel := c.db.Relation(n.name)
	if rel == nil {
		return relationErr(n.name)
	}
	stopped := false
	rel.Each(func(t table.Tuple) bool {
		ch.AppendTuple(t)
		if ch.Rows == chunkSize {
			if !emit(ch, nil) {
				stopped = true
				return false
			}
			ch.Reset(arity)
		}
		return true
	})
	if !stopped && ch.Rows > 0 {
		emit(ch, nil)
	}
	return nil
}

// streamCols on a filter narrows the selection vector with the
// vectorized predicate — no data moves at all.
func (n *pfilter) streamCols(c *pctx, emit colEmit) error {
	if n.vpred == nil {
		return bridgeCols(n, c, emit)
	}
	return streamCols(n.in, c, func(ch *col.Chunk, sel []int32) bool {
		out := n.vpred(c, ch, sel)
		ok := true
		if len(out) > 0 {
			ok = emit(ch, out)
		}
		c.putSel(out)
		return ok
	})
}

// streamCols on a projection applies the fused vectorized pre-filter and
// re-points the view's column slices — a projection moves no values.
func (n *pproject) streamCols(c *pctx, emit colEmit) error {
	if n.pred != nil && n.vpred == nil {
		return bridgeCols(n, c, emit)
	}
	view := col.Chunk{
		Cols:  make([][]value.Value, len(n.idx)),
		Const: make([]bool, len(n.idx)),
	}
	return streamCols(n.in, c, func(ch *col.Chunk, sel []int32) bool {
		owned := false
		if n.vpred != nil {
			sel = n.vpred(c, ch, sel)
			owned = true
			if len(sel) == 0 {
				c.putSel(sel)
				return true
			}
		}
		for k, p := range n.idx {
			view.Cols[k] = ch.Cols[p]
			view.Const[k] = ch.Const[p]
		}
		view.Rows = ch.Rows
		ok := emit(&view, sel)
		if owned {
			c.putSel(sel)
		}
		return ok
	})
}

// streamCols on a rename passes chunks through untouched.
func (n *pschema) streamCols(c *pctx, emit colEmit) error {
	return streamCols(n.in, c, emit)
}

// streamCols on a union streams both sides' chunks.
func (n *punion) streamCols(c *pctx, emit colEmit) error {
	stopped := false
	err := streamCols(n.l, c, func(ch *col.Chunk, sel []int32) bool {
		if !emit(ch, sel) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	return streamCols(n.r, c, emit)
}

// streamCols on a hash join probes the build index with column-wise
// probe keys and appends matches column-wise into a reused output chunk
// — no tuple is allocated per match.  When the probe-key columns carry
// the all-constant sidecar and the build side indexed only null-free
// tuples (Index.AllComplete), the all-constant fast path appends with no
// null bookkeeping at all and the output chunk stays marked all-constant
// for free.
func (n *pjoin) streamCols(c *pctx, emit colEmit) error {
	ix, err := n.buildIndex(c)
	if err != nil {
		return err
	}
	outArity := n.rs.Arity()
	out := getColChunk(outArity)
	defer putColChunk(out)
	stopped := false
	err = streamCols(n.l, c, func(ch *col.Chunk, sel []int32) bool {
		lar := len(ch.Cols)
		fast := ix.AllComplete() && ch.AllConst()
		probe := func(i int32) bool {
			key := ch.AppendPosKey(c.keyBuf[:0], n.lpos, int(i))
			c.keyBuf = key
			for e := ix.Lookup(key); e != 0; {
				var rt table.Tuple
				rt, e = ix.At(e)
				if fast {
					for j := 0; j < lar; j++ {
						out.Cols[j] = append(out.Cols[j], ch.Cols[j][i])
					}
					for k, ri := range n.extraIdx {
						out.Cols[lar+k] = append(out.Cols[lar+k], rt[ri])
					}
				} else {
					for j := 0; j < lar; j++ {
						v := ch.Cols[j][i]
						out.Cols[j] = append(out.Cols[j], v)
						if out.Const[j] && v.IsNull() {
							out.Const[j] = false
						}
					}
					for k, ri := range n.extraIdx {
						v := rt[ri]
						out.Cols[lar+k] = append(out.Cols[lar+k], v)
						if out.Const[lar+k] && v.IsNull() {
							out.Const[lar+k] = false
						}
					}
				}
				out.Rows++
				if out.Rows == chunkSize {
					if !emit(out, nil) {
						return false
					}
					out.Reset(outArity)
				}
			}
			return true
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				if !probe(i) {
					stopped = true
					return false
				}
			}
			return true
		}
		for _, i := range sel {
			if !probe(i) {
				stopped = true
				return false
			}
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	if out.Rows > 0 {
		emit(out, nil)
	}
	return nil
}

// streamCols on a diff/intersect narrows the selection with the fused
// vectorized pre-filter, computes the membership key of each surviving
// row column-wise, and emits the survivors — through a projection view
// when a projection was fused, so projected tuples never materialize
// inside the operator.
func (n *pdiff) streamCols(c *pctx, emit colEmit) error {
	if n.lpred != nil && n.lvpred == nil {
		return bridgeCols(n, c, emit)
	}
	contains, err := n.containsFn(c)
	if err != nil {
		return err
	}
	var view col.Chunk
	if n.lproj != nil {
		view.Cols = make([][]value.Value, len(n.lproj))
		view.Const = make([]bool, len(n.lproj))
	}
	return streamCols(n.l, c, func(ch *col.Chunk, sel []int32) bool {
		owned := false
		if n.lvpred != nil {
			sel = n.lvpred(c, ch, sel)
			owned = true
		}
		out := c.getSel()[:0]
		keep := func(i int32) {
			k := c.keyBuf[:0]
			if n.lproj == nil {
				k = ch.AppendRowKey(k, int(i))
			} else {
				k = ch.AppendPosKey(k, n.lproj, int(i))
			}
			c.keyBuf = k
			if contains(k) != n.negate {
				out = append(out, i)
			}
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				keep(i)
			}
		} else {
			for _, i := range sel {
				keep(i)
			}
		}
		if owned {
			c.putSel(sel)
		}
		ok := true
		if len(out) > 0 {
			if n.lproj == nil {
				ok = emit(ch, out)
			} else {
				for k, p := range n.lproj {
					view.Cols[k] = ch.Cols[p]
					view.Const[k] = ch.Const[p]
				}
				view.Rows = ch.Rows
				ok = emit(&view, out)
			}
		}
		c.putSel(out)
		return ok
	})
}

// colEligible reports whether the columnar path should evaluate this
// subtree: some operator on the stream builds fresh output tuples per
// row (π, ⋈, or a diff with a fused projection), which the columnar
// gather defers to a single final materialization.  Plans that only
// adopt existing tuples (bare scans, filters, whole-tuple diffs) stay on
// the row path, where adoption is free.
func colEligible(n pnode) bool {
	switch x := n.(type) {
	case *pjoin:
		return true
	case *pproject:
		return true
	case *pdiff:
		if x.lproj != nil {
			return true
		}
		return colEligible(x.l)
	case *pfilter:
		return colEligible(x.in)
	case *pschema:
		return colEligible(x.in)
	case *punion:
		return colEligible(x.l) || colEligible(x.r)
	default:
		return false
	}
}

// materializeIntoCol streams n column-wise into out.  Certain-only
// extraction narrows the selection with the sidecar-aware CompleteSel
// (all-constant chunks skip the null scan entirely), and each surviving
// row's key is computed column-wise before the row is gathered, so
// duplicate rows are dropped without allocating a tuple.
func materializeIntoCol(n pnode, c *pctx, certainOnly bool, out *table.Relation) error {
	ins := out.BeginInsert()
	return streamCols(n, c, func(ch *col.Chunk, sel []int32) bool {
		if certainOnly {
			dst := c.getSel()
			narrowed, used := ch.CompleteSel(sel, dst)
			if used {
				sel = narrowed
				defer c.putSel(narrowed)
			} else {
				c.putSel(dst)
			}
		}
		gather := func(i int32) {
			key := ch.AppendRowKey(c.keyBuf[:0], int(i))
			c.keyBuf = key
			if !ins.Has(key) {
				ins.Add(key, ch.Tuple(int(i)))
			}
		}
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				gather(i)
			}
		} else {
			for _, i := range sel {
				gather(i)
			}
		}
		return true
	})
}
