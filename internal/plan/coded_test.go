package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
)

// mustSameCoded asserts the coded path is bit-identical to both of its
// oracles — the columnar path and the per-tuple row path — for raw and
// certain evaluation under the given worker budget.
func mustSameCoded(t *testing.T, q ra.Expr, d *table.Database, workers int, label string) {
	t.Helper()
	p, err := Compile(q, d.Schema())
	if err != nil {
		return // compile rejections are covered by the serial differential
	}
	configs := []struct {
		name string
		cfg  EvalConfig
	}{
		{"row", EvalConfig{Workers: workers}},
		{"columnar", EvalConfig{Workers: workers, Columnar: true}},
		{"coded", EvalConfig{Workers: workers, Columnar: true, Coded: true}},
	}
	type outcome struct {
		key string
		str string
		err error
	}
	raw := make([]outcome, len(configs))
	cert := make([]outcome, len(configs))
	for i, c := range configs {
		if r, err := p.EvalWith(d, c.cfg); err != nil {
			raw[i] = outcome{err: err}
		} else {
			raw[i] = outcome{key: r.CanonicalKey(), str: r.String()}
		}
		if r, err := p.EvalCertainWith(d, c.cfg); err != nil {
			cert[i] = outcome{err: err}
		} else {
			cert[i] = outcome{key: r.CanonicalKey(), str: r.String()}
		}
	}
	for i := 1; i < len(configs); i++ {
		if (raw[0].err == nil) != (raw[i].err == nil) {
			t.Fatalf("%s: error mismatch for %s (workers=%d): row %v, %s %v",
				label, q, workers, raw[0].err, configs[i].name, raw[i].err)
		}
		if raw[0].err == nil && raw[i].key != raw[0].key {
			t.Fatalf("%s: EvalWith %s differs for %s (workers=%d)\n%s: %s\nrow: %s\nplan:\n%s",
				label, configs[i].name, q, workers, configs[i].name, raw[i].str, raw[0].str, p.Describe())
		}
		if (cert[0].err == nil) != (cert[i].err == nil) {
			t.Fatalf("%s: certain error mismatch for %s (workers=%d): row %v, %s %v",
				label, q, workers, cert[0].err, configs[i].name, cert[i].err)
		}
		if cert[0].err == nil && cert[i].key != cert[0].key {
			t.Fatalf("%s: EvalCertainWith %s differs for %s (workers=%d)\n%s: %s\nrow: %s\nplan:\n%s",
				label, configs[i].name, q, workers, configs[i].name, cert[i].str, cert[0].str, p.Describe())
		}
	}
}

// codedFuzzDB builds a small random incomplete database mixing the three
// value kinds — dictionary-coded strings alongside directly coded ints
// and tagged nulls — so the fuzz corpus crosses kind boundaries inside
// single columns.
func codedFuzzDB(seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(fuzzSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < 8; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				switch rnd.Intn(5) {
				case 0:
					t[j] = value.Null(uint64(rnd.Intn(3) + 1))
				case 1, 2:
					t[j] = value.String(fmt.Sprintf("s%d", rnd.Intn(4)))
				default:
					t[j] = value.Int(int64(rnd.Intn(4)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// hugeNullDB is fuzzDB with one null outside the code space (id ≥ 2^62)
// planted in every relation, so every coded subtree must detect the
// unencodable relation and fall back — while still answering correctly.
func hugeNullDB(seed int64) *table.Database {
	d := fuzzDB(seed)
	for _, name := range []string{"R", "S", "T"} {
		d.MustAdd(name, table.NewTuple(value.Null(uint64(1)<<62), value.Int(1)))
	}
	return d
}

// TestCodedMatchesRowFuzz pins the coded path bit-identical to the
// columnar and row paths across the full random operator corpus, crossed
// with serial and parallel evaluation and with databases of pure-int,
// mixed-kind, and unencodable (huge null id) values — the last forcing
// the eligibility fallback on every plan.
func TestCodedMatchesRowFuzz(t *testing.T) {
	withParallelCutoff(t, 1)
	trials := 400
	if testing.Short() {
		trials = 60
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(5000 + i))), s: s}
		q := g.expr(3)
		var d *table.Database
		switch i % 3 {
		case 0:
			d = fuzzDB(int64(i % 7))
		case 1:
			d = codedFuzzDB(int64(i % 7))
		default:
			d = hugeNullDB(int64(i % 7))
		}
		for _, workers := range []int{1, 2, 4} {
			mustSameCoded(t, q, d, workers, "fuzz")
		}
	}
}

// largeStringDB is largeDB with string-dominated columns: the workload
// the coded tier exists for, where the row and columnar paths pay for
// per-value string hashing and key encoding.
func largeStringDB(tuples int, seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(fuzzSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < tuples; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				if rnd.Intn(50) == 0 {
					t[j] = value.Null(uint64(rnd.Intn(3) + 1))
				} else {
					t[j] = value.String(fmt.Sprintf("key-%03d", rnd.Intn(40)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// TestCodedLargeJoin exercises the coded kernels at the production
// cutoff on string-heavy relations big enough to fill many chunks and
// take the partitioned-join path: coded partition indexes, coded
// select-joins over dictionary codes, coded diffs, and a union mixing an
// eligible branch with a row-path branch.
func TestCodedLargeJoin(t *testing.T) {
	d := largeStringDB(1500, 17)
	queries := map[string]ra.Expr{
		"join": ra.Project{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Attrs: []string{"a", "c"},
		},
		"select-join": ra.Select{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Pred:  ra.Neq(ra.Attr("a"), ra.Attr("c")),
		},
		"project-diff": ra.Diff{
			Left:  ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
		"union-mixed": ra.Union{
			Left:  ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
	}
	for name, q := range queries {
		for _, workers := range []int{1, 2, 4, 8} {
			mustSameCoded(t, q, d, workers, name)
		}
	}
}

// TestCodedEligible pins the coded eligibility gate: the structural
// colEligible shape is required, and beyond it every base relation the
// subtree reads must encode cleanly — a single value outside the code
// space (a null with id ≥ 2^62) disqualifies the subtree.
func TestCodedEligible(t *testing.T) {
	join := ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}
	proj := ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}

	check := func(d *table.Database, q ra.Expr, want bool, label string) {
		t.Helper()
		p, err := Compile(q, d.Schema())
		if err != nil {
			t.Fatalf("%s: compile %s: %v", label, q, err)
		}
		c := newPctx(d, EvalConfig{Columnar: true, Coded: true}, nil)
		if got := codedEligible(p.root, c); got != want {
			t.Errorf("%s: codedEligible(%s) = %v, want %v\nplan:\n%s", label, q, got, want, p.Describe())
		}
	}

	clean := codedFuzzDB(1)
	check(clean, ra.Base("R"), false, "clean") // not colEligible: adoption is free on the row path
	check(clean, proj, true, "clean")
	check(clean, join, true, "clean")

	huge := hugeNullDB(1)
	check(huge, proj, false, "huge-null")
	check(huge, join, false, "huge-null")

	// The gate is per-relation: a subtree reading only clean relations
	// stays eligible even when another relation of the database does not
	// encode.
	partial := codedFuzzDB(2)
	partial.MustAdd("T", table.NewTuple(value.Null(uint64(1)<<62), value.Int(1)))
	check(partial, join, true, "partial")
	check(partial, ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}}, false, "partial")
}

// TestCodedFallbackMidDictionary pins correctness when predicate
// constants miss the dictionary: a filter comparing against a string the
// database never mentions must keep nothing on =, everything on ≠, on
// every path.
func TestCodedFallbackMidDictionary(t *testing.T) {
	d := largeStringDB(600, 23)
	absent := ra.Select{
		Input: ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
		Pred:  ra.Eq(ra.Attr("a"), ra.LitString("never-in-db")),
	}
	absentNeq := ra.Select{
		Input: ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
		Pred:  ra.Neq(ra.Attr("a"), ra.LitString("never-in-db")),
	}
	for _, workers := range []int{1, 4} {
		mustSameCoded(t, absent, d, workers, "absent-eq")
		mustSameCoded(t, absentNeq, d, workers, "absent-neq")
	}
}
