package plan

import (
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/workload"
)

// exprGen generates random well-formed ra expressions over the fixed fuzz
// schema R(a,b), S(b,c), T(a,b).
type exprGen struct {
	rnd *rand.Rand
	s   *schema.Schema
}

func fuzzSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
		schema.NewRelation("T", "a", "b"),
	)
}

// fuzzDB builds a small random incomplete database over the fuzz schema
// (the relations carry the schema's attribute names, so generated
// predicates and projections resolve).
func fuzzDB(seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(fuzzSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < 6; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				if rnd.Intn(4) == 0 {
					t[j] = value.Null(uint64(rnd.Intn(3) + 1))
				} else {
					t[j] = value.Int(int64(rnd.Intn(4)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

func (g *exprGen) expr(depth int) ra.Expr {
	e := g.rawExpr(depth)
	if _, err := e.OutSchema(g.s); err != nil {
		// The generator can produce attribute clashes (products of
		// identically named columns); fall back to a base expression.
		return g.base()
	}
	return e
}

func (g *exprGen) rawExpr(depth int) ra.Expr {
	if depth <= 0 {
		return g.base()
	}
	switch g.rnd.Intn(12) {
	case 0:
		return g.base()
	case 1:
		in := g.expr(depth - 1)
		return ra.Select{Input: in, Pred: g.pred(in, 2)}
	case 2:
		in := g.expr(depth - 1)
		attrs := g.someAttrs(in)
		if attrs == nil {
			return in
		}
		return ra.Project{Input: in, Attrs: attrs}
	case 3:
		in := g.expr(depth - 1)
		rs := g.outSchema(in)
		attrs := make([]string, rs.Arity())
		for i := range attrs {
			attrs[i] = g.freshAttr(i)
		}
		return ra.Rename{Input: in, As: "X", Attrs: attrs}
	case 4:
		l, r := g.expr(depth-1), g.expr(depth-1)
		// Rename the right side apart so the product is well-formed.
		rs := g.outSchema(r)
		attrs := make([]string, rs.Arity())
		for i := range attrs {
			attrs[i] = g.freshAttr(i + 10)
		}
		return ra.Product{Left: l, Right: ra.Rename{Input: r, As: "Y", Attrs: attrs}}
	case 5:
		return ra.Join{Left: g.expr(depth - 1), Right: g.expr(depth - 1)}
	case 6, 7:
		l := g.expr(depth - 1)
		r := g.sameArity(l, depth-1)
		return ra.Union{Left: l, Right: r}
	case 8:
		l := g.expr(depth - 1)
		r := g.sameArity(l, depth-1)
		return ra.Diff{Left: l, Right: r}
	case 9:
		l := g.expr(depth - 1)
		r := g.sameArity(l, depth-1)
		return ra.Intersect{Left: l, Right: r}
	case 10:
		// Division of a product by its right factor: always well-formed.
		r := g.base()
		rs := g.outSchema(r)
		attrs := make([]string, rs.Arity())
		for i := range attrs {
			attrs[i] = g.freshAttr(i + 20)
		}
		renamed := ra.Rename{Input: r, As: "D", Attrs: attrs}
		return ra.Division{
			Left:  ra.Product{Left: g.base(), Right: renamed},
			Right: renamed,
		}
	default:
		// Selection over a product with a cross equality: exercises the
		// Product+Select→Join rule.
		l := g.base()
		r := g.base()
		rs := g.outSchema(r)
		attrs := make([]string, rs.Arity())
		for i := range attrs {
			attrs[i] = g.freshAttr(i + 30)
		}
		renamed := ra.Rename{Input: r, As: "Z", Attrs: attrs}
		ls := g.outSchema(l)
		pred := ra.Eq(ra.Attr(ls.Attrs[g.rnd.Intn(ls.Arity())]), ra.Attr(attrs[g.rnd.Intn(len(attrs))]))
		return ra.Select{Input: ra.Product{Left: l, Right: renamed}, Pred: pred}
	}
}

func (g *exprGen) base() ra.Expr {
	switch g.rnd.Intn(4) {
	case 0:
		return ra.Base("R")
	case 1:
		return ra.Base("S")
	case 2:
		return ra.Base("T")
	default:
		return ra.Delta{Attr1: "d1", Attr2: "d2"}
	}
}

func (g *exprGen) outSchema(e ra.Expr) schema.Relation {
	rs, err := e.OutSchema(g.s)
	if err != nil {
		panic(err)
	}
	return rs
}

func (g *exprGen) freshAttr(i int) string {
	return "x" + string(rune('a'+i%26)) + string(rune('0'+g.rnd.Intn(10)))
}

func (g *exprGen) someAttrs(e ra.Expr) []string {
	rs := g.outSchema(e)
	var out []string
	for _, a := range rs.Attrs {
		if g.rnd.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sameArity generates an expression with the same arity as e (projecting
// or padding a base expression as needed).
func (g *exprGen) sameArity(e ra.Expr, depth int) ra.Expr {
	want := g.outSchema(e).Arity()
	cand := g.expr(depth)
	rs := g.outSchema(cand)
	if rs.Arity() == want {
		return cand
	}
	if rs.Arity() > want {
		return ra.Project{Input: cand, Attrs: rs.Attrs[:want]}
	}
	// Pad by product with renamed bases until wide enough, then project.
	padSeq := 0
	for rs.Arity() < want {
		extra := g.base()
		es := g.outSchema(extra)
		attrs := make([]string, es.Arity())
		for i := range attrs {
			attrs[i] = "pad" + string(rune('a'+padSeq)) + string(rune('a'+i))
		}
		padSeq++
		next := ra.Product{Left: cand, Right: ra.Rename{Input: extra, As: "P", Attrs: attrs}}
		nrs, err := next.OutSchema(g.s)
		if err != nil {
			continue // unlucky clash; try another pad
		}
		cand, rs = next, nrs
	}
	return ra.Project{Input: cand, Attrs: rs.Attrs[:want]}
}

func (g *exprGen) pred(e ra.Expr, depth int) ra.Predicate {
	rs := g.outSchema(e)
	if depth <= 0 || g.rnd.Intn(3) == 0 {
		return g.cmp(rs)
	}
	switch g.rnd.Intn(4) {
	case 0:
		return ra.AllOf(g.pred(e, depth-1), g.pred(e, depth-1))
	case 1:
		return ra.AnyOf(g.pred(e, depth-1), g.pred(e, depth-1))
	case 2:
		return ra.Negate(g.pred(e, depth-1))
	default:
		return g.cmp(rs)
	}
}

func (g *exprGen) cmp(rs schema.Relation) ra.Predicate {
	ops := []ra.CmpOp{ra.EQ, ra.NEQ, ra.LT, ra.LEQ, ra.GT, ra.GEQ}
	op := ops[g.rnd.Intn(len(ops))]
	operand := func() ra.Operand {
		if g.rnd.Intn(2) == 0 {
			return ra.Attr(rs.Attrs[g.rnd.Intn(rs.Arity())])
		}
		if g.rnd.Intn(2) == 0 {
			return ra.LitInt(int64(g.rnd.Intn(5)))
		}
		return ra.LitString("v" + string(rune('0'+g.rnd.Intn(4))))
	}
	return ra.Cmp{Left: operand(), Op: op, Right: operand()}
}

// mustSame asserts the planned evaluation is bit-identical to the oracle.
func mustSame(t *testing.T, q ra.Expr, d *table.Database, label string) {
	t.Helper()
	want, oracleErr := ra.Eval(q, d)
	p, err := Compile(q, d.Schema())
	if oracleErr != nil {
		// The oracle rejects the query at runtime; the planner must reject
		// it too (at compile or eval time).
		if err != nil {
			return
		}
		if _, err := p.Eval(d); err == nil {
			t.Fatalf("%s: oracle failed (%v) but planner succeeded for %s", label, oracleErr, q)
		}
		return
	}
	if err != nil {
		t.Fatalf("%s: compile failed for %s: %v", label, q, err)
	}
	got, err := p.Eval(d)
	if err != nil {
		t.Fatalf("%s: eval failed for %s: %v", label, q, err)
	}
	if !got.Equal(want) {
		t.Fatalf("%s: planned result differs for %s\nplanner: %s\noracle:  %s\nplan:\n%s",
			label, q, got, want, p.Describe())
	}
	// Bit-identical includes the output attribute names.
	wantSchema, _ := q.OutSchema(d.Schema())
	if gotAttrs, wantAttrs := got.Schema().Attrs, wantSchema.Attrs; len(gotAttrs) == len(wantAttrs) {
		for i := range gotAttrs {
			if gotAttrs[i] != wantAttrs[i] {
				t.Fatalf("%s: output attrs differ for %s: %v vs %v", label, q, gotAttrs, wantAttrs)
			}
		}
	}
	// And the Boolean route must agree with nonemptiness.
	gotBool, err := p.EvalBool(d)
	if err != nil {
		t.Fatalf("%s: EvalBool failed for %s: %v", label, q, err)
	}
	if gotBool != (want.Len() > 0) {
		t.Fatalf("%s: EvalBool=%v but |answer|=%d for %s", label, gotBool, want.Len(), q)
	}
}

// TestPlannedEvalMatchesOracleFuzz is the planner property test: on random
// expression trees over random small incomplete databases, planned
// evaluation must be bit-identical to naïve evaluation.
func TestPlannedEvalMatchesOracleFuzz(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(i))), s: s}
		q := g.expr(3)
		d := fuzzDB(int64(i % 7))
		mustSame(t, q, d, "fuzz")
	}
}

// TestPlannedEvalPaperQueries pins the planner on the repo's experiment
// queries.
func TestPlannedEvalPaperQueries(t *testing.T) {
	d, _ := workload.Orders(workload.OrdersConfig{Orders: 200, PaidFraction: 0.7, NullRate: 0.3, Seed: 42})
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	mustSame(t, unpaid, d, "E1")

	rnd := workload.Random(workload.RandomConfig{
		Relations: map[string]int{"R": 2, "S": 2}, TuplesPerRelation: 8,
		DomainSize: 5, Nulls: 3, NullRate: 0.3, Seed: 11,
	})
	ucq := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	mustSame(t, ucq, rnd, "E5")

	enroll, _ := workload.Enroll(workload.EnrollConfig{Students: 100, Courses: 3, EnrollRate: 0.8, NullRate: 0.05, Seed: 5})
	div := ra.Division{Left: ra.Base("Enroll"), Right: ra.Base("Course")}
	mustSame(t, div, enroll, "E9")

	tautology := ra.Project{
		Input: ra.Select{
			Input: ra.Base("Pay"),
			Pred: ra.AnyOf(
				ra.Eq(ra.Attr("order"), ra.LitString("oid1")),
				ra.Neq(ra.Attr("order"), ra.LitString("oid1")),
			),
		},
		Attrs: []string{"p_id"},
	}
	mustSame(t, tautology, d, "E3")
}

// TestRelationIndex covers the lazy hash-index cache on relations.
func TestRelationIndex(t *testing.T) {
	rel := table.NewRelation(schema.NewRelation("R", "a", "b"))
	rel.MustAdd(table.NewTuple(value.Int(1), value.Int(10)))
	rel.MustAdd(table.NewTuple(value.Int(1), value.Int(20)))
	rel.MustAdd(table.NewTuple(value.Int(2), value.Int(30)))

	ix := rel.Index([]int{0})
	if ix.Len() != 3 {
		t.Fatalf("index has %d entries, want 3", ix.Len())
	}
	if again := rel.Index([]int{0}); again != ix {
		t.Fatalf("index not cached: got a different instance")
	}
	key := ix.AppendTupleKey(nil, table.NewTuple(value.Int(1)))
	count := 0
	for i := ix.Lookup(key); i != 0; {
		_, i = ix.At(i)
		count++
	}
	if count != 2 {
		t.Fatalf("probe for a=1 found %d tuples, want 2", count)
	}
	// Mutation invalidates the cache.
	rel.MustAdd(table.NewTuple(value.Int(3), value.Int(40)))
	if same := rel.Index([]int{0}); same == ix {
		t.Fatalf("index survived a mutation")
	}
	if got := rel.Index([]int{0}).Len(); got != 4 {
		t.Fatalf("rebuilt index has %d entries, want 4", got)
	}
}
