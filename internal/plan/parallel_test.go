package plan

import (
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/valuation"
	"incdata/internal/value"
)

// withParallelCutoff lowers the parallel cutoff so the small fuzz corpora
// exercise the worker paths, restoring it afterwards.
func withParallelCutoff(t *testing.T, cutoff int) {
	t.Helper()
	prev := parallelCutoff
	parallelCutoff = cutoff
	t.Cleanup(func() { parallelCutoff = prev })
}

// mustSameParallel asserts EvalWorkers and EvalCertainWorkers are
// bit-identical to their serial counterparts (and hence, via the planner's
// own differential, to the ra.Eval oracle).
func mustSameParallel(t *testing.T, q ra.Expr, d *table.Database, workers int, label string) {
	t.Helper()
	p, err := Compile(q, d.Schema())
	if err != nil {
		return // compile rejections are covered by the serial differential
	}
	want, serr := p.Eval(d)
	got, perr := p.EvalWorkers(d, workers)
	if (serr == nil) != (perr == nil) {
		t.Fatalf("%s: error mismatch for %s: serial %v, workers=%d %v", label, q, serr, workers, perr)
	}
	if serr == nil && got.CanonicalKey() != want.CanonicalKey() {
		t.Fatalf("%s: EvalWorkers(%d) differs for %s\nparallel: %s\nserial:   %s\nplan:\n%s",
			label, workers, q, got, want, p.Describe())
	}
	wantC, serr := p.EvalCertain(d)
	gotC, perr := p.EvalCertainWorkers(d, workers)
	if (serr == nil) != (perr == nil) {
		t.Fatalf("%s: certain error mismatch for %s: serial %v, workers=%d %v", label, q, serr, workers, perr)
	}
	if serr == nil && gotC.CanonicalKey() != wantC.CanonicalKey() {
		t.Fatalf("%s: EvalCertainWorkers(%d) differs for %s", label, workers, q)
	}
}

// TestParallelEvalMatchesSerialFuzz pins morsel-parallel evaluation
// bit-identical to the serial path across the full random operator corpus,
// with the cutoff lowered so every plan with a driving scan goes parallel.
func TestParallelEvalMatchesSerialFuzz(t *testing.T) {
	withParallelCutoff(t, 1)
	trials := 400
	if testing.Short() {
		trials = 60
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(i))), s: s}
		q := g.expr(3)
		d := fuzzDB(int64(i % 7))
		for _, workers := range []int{2, 4} {
			mustSameParallel(t, q, d, workers, "fuzz")
		}
	}
}

// largeDB builds a database big enough to clear the real parallel cutoff,
// with join keys spread over a modest domain so hash partitions are
// non-trivial on both sides.
func largeDB(tuples int, seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(fuzzSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < tuples; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				if rnd.Intn(50) == 0 {
					t[j] = value.Null(uint64(rnd.Intn(3) + 1))
				} else {
					t[j] = value.Int(int64(rnd.Intn(40)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// TestParallelEvalLargeJoin exercises the partitioned-join path at the
// production cutoff: the probe chain down to the scan preserves positions,
// so both join sides are hash-partitioned and bucket i probes bucket i.
func TestParallelEvalLargeJoin(t *testing.T) {
	d := largeDB(1500, 3)
	queries := map[string]ra.Expr{
		"join": ra.Project{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Attrs: []string{"a", "c"},
		},
		"select-join": ra.Select{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Pred:  ra.Neq(ra.Attr("a"), ra.Attr("c")),
		},
		"diff": ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		"union-join": ra.Union{
			Left:  ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
	}
	for name, q := range queries {
		// Confirm the shape under test: every query here has a driving scan.
		p, err := Compile(q, d.Schema())
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if scan, _ := drivingChain(firstBranch(p.root)); scan == nil {
			t.Fatalf("%s: no driving scan; test corpus is wrong", name)
		}
		for _, workers := range []int{2, 4, 8} {
			mustSameParallel(t, q, d, workers, name)
		}
	}
}

func firstBranch(n pnode) pnode {
	if u, ok := n.(*punion); ok {
		return firstBranch(u.l)
	}
	return n
}

// TestDrivingChain pins the partition-join detection: clean filter/rename
// chains keep the join partitionable, projections below the join break it.
func TestDrivingChain(t *testing.T) {
	s := fuzzSchema()
	compile := func(q ra.Expr) pnode {
		p, err := Compile(q, s)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return p.root
	}

	join := ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}
	scan, pj := drivingChain(compile(join))
	if scan == nil || pj == nil {
		t.Fatalf("join over scans: want partition join, got scan=%v join=%v", scan, pj)
	}

	filtered := ra.Join{
		Left:  ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.LitInt(-1))},
		Right: ra.Base("S"),
	}
	scan, pj = drivingChain(compile(filtered))
	if scan == nil || pj == nil {
		t.Fatalf("join over filtered scan: want partition join, got scan=%v join=%v", scan, pj)
	}

	projected := ra.Join{
		Left:  ra.Project{Input: ra.Base("R"), Attrs: []string{"b"}},
		Right: ra.Base("S"),
	}
	scan, pj = drivingChain(compile(projected))
	if scan == nil {
		t.Fatalf("join over projected scan: want a driving scan")
	}
	if pj != nil {
		t.Fatalf("join over projected scan: positions change, must not partition-join")
	}

	division := ra.Division{
		Left:  ra.Product{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"x", "y"}}},
		Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"x", "y"}},
	}
	if scan, _ := drivingChain(compile(division)); scan != nil {
		t.Fatalf("division root: want serial fallback (no driving scan)")
	}
}

// TestWorldPlanParallelStable pins the partition-parallel stable parts of
// world plans bit-identical to a serial plan's, including per-world answers
// computed on top of them.
func TestWorldPlanParallelStable(t *testing.T) {
	withParallelCutoff(t, 1)
	d := fuzzDB(5)
	queries := []ra.Expr{
		ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.Attr("b"))},
		ra.Union{Left: ra.Base("R"), Right: ra.Base("T")},
		ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
	}
	for _, q := range queries {
		serial, err := ForWorlds(q, d)
		if err != nil {
			t.Fatalf("ForWorlds: %v", err)
		}
		par, err := ForWorlds(q, d)
		if err != nil {
			t.Fatalf("ForWorlds: %v", err)
		}
		par.SetWorkers(4)
		if !serial.Splittable() {
			continue
		}
		ws, err := serial.Stable()
		if err != nil {
			t.Fatalf("serial Stable: %v", err)
		}
		wp, err := par.Stable()
		if err != nil {
			t.Fatalf("parallel Stable: %v", err)
		}
		if ws.CanonicalKey() != wp.CanonicalKey() {
			t.Fatalf("parallel stable differs for %s:\nserial:   %s\nparallel: %s", q, ws, wp)
		}
		// Per-world answers on top of the parallel stable parts.
		dom := []value.Value{value.Int(0), value.Int(1)}
		ss, ps := serial.NewSession(), par.NewSession()
		valuation.Enumerate(serial.SortedNulls(), dom, func(v valuation.Valuation) bool {
			a1, err1 := ss.Answer(v)
			if err1 != nil {
				t.Fatalf("serial answer for %s: %v", q, err1)
			}
			k1 := a1.CanonicalKey()
			a2, err2 := ps.Answer(v)
			if err2 != nil {
				t.Fatalf("parallel answer for %s: %v", q, err2)
			}
			if k1 != a2.CanonicalKey() {
				t.Fatalf("per-world answer differs for %s under %s", q, v)
			}
			return true
		})
	}
}

// TestChunkedMaterializeBatches covers AddBatch-based materialization:
// chunked output equals per-tuple MustAdd output on a multi-chunk stream.
func TestChunkedMaterializeBatches(t *testing.T) {
	rs := schema.NewRelation("R", "a", "b")
	rel := table.NewRelation(rs)
	for i := 0; i < 3*chunkSize+17; i++ {
		rel.MustAdd(table.NewTuple(value.Int(int64(i)), value.Int(int64(i%7))))
	}
	d := table.NewDatabase(schema.MustNew(rs))
	rel.Each(func(tp table.Tuple) bool {
		d.MustAdd("R", tp)
		return true
	})
	q := ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("b"), ra.LitInt(3))}
	p, err := Compile(q, d.Schema())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := p.Eval(d)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	want, err := ra.Eval(q, d)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if got.CanonicalKey() != want.CanonicalKey() {
		t.Fatalf("chunked materialization differs: %d vs %d tuples", got.Len(), want.Len())
	}
}
