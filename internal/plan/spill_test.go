package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// spillDB builds a database whose join build side is far larger than the
// small test budgets, with ints, strings and nulls in play.
func spillDB(t *testing.T) (*table.Database, *schema.Schema) {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d.MustAdd("R", table.NewTuple(value.Int(int64(i)), value.Int(int64(rnd.Intn(200)))))
	}
	for i := 0; i < 800; i++ {
		var v value.Value
		if i%7 == 0 {
			v = value.Null(uint64(i%5 + 1))
		} else {
			v = value.String(fmt.Sprintf("payload-%d", rnd.Intn(100)))
		}
		d.MustAdd("S", table.NewTuple(value.Int(int64(rnd.Intn(200))), v))
	}
	return d, s
}

// TestSpillJoinMatchesUnbounded pins the Grace spill path against the
// unbounded resident path: a join evaluated under budgets smaller than its
// build side must return bit-identical answers, on both the plain and the
// fused null-stripping (certain) routes.
func TestSpillJoinMatchesUnbounded(t *testing.T) {
	d, s := spillDB(t)
	q := ra.Join{Left: ra.Rel{Name: "R"}, Right: ra.Rel{Name: "S"}}
	p, err := Compile(q, s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := p.EvalWith(d, EvalConfig{Columnar: true, Coded: true})
	if err != nil {
		t.Fatalf("unbounded eval: %v", err)
	}
	wantCertain, err := p.EvalCertainWith(d, EvalConfig{Columnar: true, Coded: true})
	if err != nil {
		t.Fatalf("unbounded certain eval: %v", err)
	}
	// 1 forces a spill on the first build tuple; the larger budgets cross
	// over mid-stream, exercising the buffered-prefix drain.
	for _, budget := range []int64{1, 512, 4 << 10, 16 << 10} {
		got, err := p.EvalWith(d, EvalConfig{MemBudget: budget})
		if err != nil {
			t.Fatalf("budget %d: eval: %v", budget, err)
		}
		if !got.Equal(want) {
			t.Fatalf("budget %d: spill answer differs: %d vs %d tuples", budget, got.Len(), want.Len())
		}
		gotCertain, err := p.EvalCertainWith(d, EvalConfig{MemBudget: budget})
		if err != nil {
			t.Fatalf("budget %d: certain eval: %v", budget, err)
		}
		if !gotCertain.Equal(wantCertain) {
			t.Fatalf("budget %d: spill certain answer differs: %d vs %d tuples",
				budget, gotCertain.Len(), wantCertain.Len())
		}
	}
}

// TestSpillUnderBudgetStaysResident checks the budgeted path's other leg:
// a build side that fits the budget is indexed in memory and the answer
// still matches the unbounded path.
func TestSpillUnderBudgetStaysResident(t *testing.T) {
	d, s := spillDB(t)
	q := ra.Join{Left: ra.Rel{Name: "R"}, Right: ra.Rel{Name: "S"}}
	p, err := Compile(q, s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := p.EvalWith(d, EvalConfig{Columnar: true})
	if err != nil {
		t.Fatalf("unbounded eval: %v", err)
	}
	got, err := p.EvalWith(d, EvalConfig{MemBudget: 1 << 30})
	if err != nil {
		t.Fatalf("large-budget eval: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("large-budget answer differs: %d vs %d tuples", got.Len(), want.Len())
	}
}

// TestSpillEvalMatchesOracleFuzz is the spill path's property test: on
// random expression trees over random small incomplete databases, budgeted
// evaluation with MemBudget=1 — every join build side spills — must be
// bit-identical to naïve evaluation, nested joins and all.
func TestSpillEvalMatchesOracleFuzz(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(1000 + i))), s: s}
		q := g.expr(3)
		d := fuzzDB(int64(i))
		want, oracleErr := ra.Eval(q, d)
		p, err := Compile(q, s)
		if oracleErr != nil {
			if err != nil {
				continue
			}
			if _, err := p.EvalWith(d, EvalConfig{MemBudget: 1}); err == nil {
				t.Fatalf("trial %d: oracle failed (%v) but spill eval succeeded for %s", i, oracleErr, q)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: compile failed for %s: %v", i, q, err)
		}
		got, err := p.EvalWith(d, EvalConfig{MemBudget: 1})
		if err != nil {
			t.Fatalf("trial %d: spill eval failed for %s: %v", i, q, err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: spill result differs for %s\nspill:  %s\noracle: %s\nplan:\n%s",
				i, q, got, want, p.Describe())
		}
	}
}
