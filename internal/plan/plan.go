// Package plan is the query planner: a rule-based logical optimizer over
// relational-algebra expressions (package ra) that compiles to physical
// operators — indexed hash joins, fused select-project pipelines, key-set
// anti-joins — and a world-aware evaluator that factors the plan into a
// world-invariant part, evaluated once, and a per-valuation delta plan
// (see world.go).
//
// The planner exists to make the paper's world-enumeration ground truth
// affordable: certain-answer computation by ⋂ { Q(v(D)) | v } re-evaluates
// the same query in |dom|^#nulls worlds, yet a valuation only changes the
// tuples that mention nulls.  Splitting every base relation R into its
// complete part R_c (identical in every world) and its null part R_n
// (tiny) turns the per-world cost from O(|Q(D)|) into O(|Q_null(D)|).
//
// The naïve evaluator ra.Eval is kept untouched as the oracle; the
// planner is differentially tested against it (plan_test.go).
package plan

import (
	"fmt"
	"strings"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// Plan is a compiled, immutable physical query plan.  A Plan may be
// evaluated many times, against different databases over the same schema;
// repeated evaluation over the same base relations reuses their cached
// hash indexes.
type Plan struct {
	root pnode
	out  schema.Relation
}

// Compile rewrites the expression with the logical rule set and compiles
// it to physical operators.  The expression must be well-formed against s.
func Compile(q ra.Expr, s *schema.Schema) (*Plan, error) {
	out, err := q.OutSchema(s)
	if err != nil {
		return nil, err
	}
	rw, err := Rewrite(q, s)
	if err != nil {
		return nil, err
	}
	root, err := compileNode(rw, s)
	if err != nil {
		return nil, err
	}
	if root.out().Arity() != out.Arity() {
		return nil, fmt.Errorf("plan: internal arity mismatch: %s vs %s", root.out(), out)
	}
	return &Plan{root: root, out: out}, nil
}

// OutSchema returns the plan's output schema (the original expression's).
func (p *Plan) OutSchema() schema.Relation { return p.out }

// EvalConfig selects the execution strategy of one evaluation: the
// worker-pool size of the morsel-parallel path (Workers <= 1 is serial)
// and whether eligible subtrees run on the vectorized columnar path
// (colexec.go) or the coded path (codedexec.go) instead of the per-tuple
// row path.  Every combination produces bit-identical results; the row
// path is kept as the differential oracle of the columnar one, and the
// columnar path as the oracle of the coded one.
type EvalConfig struct {
	// Workers is the worker-pool size; <= 1 evaluates serially.
	Workers int
	// Columnar enables the vectorized columnar path where eligible.
	Columnar bool
	// Coded enables the dictionary-coded path where eligible.  It only
	// takes effect when the database exposes a value dictionary
	// (table.Database does) and every base relation a subtree reads
	// encodes cleanly; otherwise evaluation silently falls back to the
	// columnar (or row) path, so enabling it is always safe.
	Coded bool
	// MemBudget, when positive, bounds (approximately, in bytes) the
	// memory a hash join may pin for its build side: a build side over
	// budget is Grace-partitioned to temporary spill files and joined
	// partition by partition (spill.go), so evaluation handles build
	// sides larger than RAM.  Answers are bit-identical to the unbounded
	// path.  A budgeted evaluation runs on the serial row engine —
	// Workers, Columnar and Coded are overridden, since the parallel and
	// vectorized tiers assume resident build sides.
	MemBudget int64
}

// normalized resolves the config's internal contradictions: a memory
// budget forces the serial row engine, since the morsel-parallel,
// columnar and coded tiers all assume resident build sides.
func (cfg EvalConfig) normalized() EvalConfig {
	if cfg.MemBudget > 0 {
		cfg.Workers, cfg.Columnar, cfg.Coded = 1, false, false
	}
	return cfg
}

// dictProvider is implemented by databases carrying a value dictionary
// (table.Database); the coded path keys its encodings against it.
type dictProvider interface {
	Dict() *table.Dict
}

// newPctx builds the evaluation context for one serial or worker run,
// resolving the coded tier against the database's dictionary.
func newPctx(db ra.DB, cfg EvalConfig, shared *sharedEval) *pctx {
	c := &pctx{db: db, columnar: cfg.Columnar, shared: shared, budget: cfg.MemBudget}
	if cfg.Coded {
		if dp, ok := db.(dictProvider); ok {
			if d := dp.Dict(); d != nil {
				c.coded = true
				c.dict = d
			}
		}
	}
	return c
}

// Eval evaluates the plan serially on the coded/columnar path.  Like
// ra.EvalDB, the result never aliases mutable state of the database.
func (p *Plan) Eval(db ra.DB) (*table.Relation, error) {
	return p.EvalWith(db, EvalConfig{Columnar: true, Coded: true})
}

// EvalWith evaluates the plan with the given execution configuration.
// The result is bit-identical across all configurations and never
// aliases mutable state of the database.
func (p *Plan) EvalWith(db ra.DB, cfg EvalConfig) (*table.Relation, error) {
	cfg = cfg.normalized()
	if cfg.Workers > 1 && parallelizable(p.root, db) {
		out := table.NewRelation(p.out)
		if err := runParallel(p.root, db, cfg, false, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	c := newPctx(db, cfg, nil)
	rel, err := materialize(p.root, c)
	if err != nil {
		return nil, err
	}
	if _, ok := p.root.(*pscan); ok {
		rel = rel.Clone() // copy-on-write; protects the base relation
	}
	return rel.WithSchema(p.out), nil
}

// EvalCertain evaluates the plan serially on the columnar path and keeps
// only null-free tuples — the null-stripping step of certain-answer
// extraction (equation (4)), fused into materialization so the
// unstripped answer is never stored.  The result equals
// StripNulls(Eval(db)).
func (p *Plan) EvalCertain(db ra.DB) (*table.Relation, error) {
	return p.EvalCertainWith(db, EvalConfig{Columnar: true, Coded: true})
}

// EvalCertainWith is EvalWith with the null-stripping of certain-answer
// extraction fused into materialization.
func (p *Plan) EvalCertainWith(db ra.DB, cfg EvalConfig) (*table.Relation, error) {
	cfg = cfg.normalized()
	if cfg.Workers > 1 && parallelizable(p.root, db) {
		out := table.NewRelation(p.out)
		if err := runParallel(p.root, db, cfg, true, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	c := newPctx(db, cfg, nil)
	out := table.NewRelation(p.out)
	if err := materializeInto(p.root, c, true, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBool evaluates the plan as a Boolean query (nonempty result),
// stopping at the first tuple.
func (p *Plan) EvalBool(db ra.DB) (bool, error) {
	c := &pctx{db: db}
	found := false
	err := p.root.stream(c, func(table.Tuple) bool {
		found = true
		return false
	})
	return found, err
}

// Describe renders the physical operator tree, one operator per line, for
// debugging and documentation.
func (p *Plan) Describe() string {
	var b strings.Builder
	describe(p.root, &b, 0)
	return b.String()
}

func describe(n pnode, b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	switch x := n.(type) {
	case *pscan:
		fmt.Fprintf(b, "scan %s\n", x.name)
	case *pempty:
		fmt.Fprintf(b, "empty %s\n", x.rs)
	case *pfilter:
		b.WriteString("filter\n")
		describe(x.in, b, depth+1)
	case *pproject:
		if x.pred != nil {
			fmt.Fprintf(b, "select-project %v\n", x.rs.Attrs)
		} else {
			fmt.Fprintf(b, "project %v\n", x.rs.Attrs)
		}
		describe(x.in, b, depth+1)
	case *pschema:
		fmt.Fprintf(b, "rename %s\n", x.rs)
		describe(x.in, b, depth+1)
	case *pproduct:
		b.WriteString("product\n")
		describe(x.l, b, depth+1)
		describe(x.r, b, depth+1)
	case *pjoin:
		fmt.Fprintf(b, "hash-join l%v=r%v\n", x.lpos, x.rpos)
		describe(x.l, b, depth+1)
		describe(x.r, b, depth+1)
	case *punion:
		b.WriteString("union\n")
		describe(x.l, b, depth+1)
		describe(x.r, b, depth+1)
	case *pdiff:
		if x.negate {
			b.WriteString("anti-probe (diff)\n")
		} else {
			b.WriteString("semi-probe (intersect)\n")
		}
		describe(x.l, b, depth+1)
		describe(x.r, b, depth+1)
	case *pdivision:
		b.WriteString("division\n")
		describe(x.l, b, depth+1)
		describe(x.r, b, depth+1)
	case *pdelta:
		b.WriteString("delta\n")
	default:
		fmt.Fprintf(b, "%T\n", n)
	}
}

// compileNode compiles a rewritten expression to a physical operator tree.
func compileNode(e ra.Expr, s *schema.Schema) (pnode, error) {
	switch ex := e.(type) {
	case ra.Rel:
		rs, ok := s.Relation(ex.Name)
		if !ok {
			return nil, fmt.Errorf("ra: unknown relation %q", ex.Name)
		}
		return &pscan{name: ex.Name, rs: rs}, nil

	case ra.Select:
		return compileSelect(ex, s)

	case ra.Project:
		// Fuse a selection directly below the projection (same as the
		// oracle evaluator, but with a compiled predicate).
		inExpr := ex.Input
		var pred ra.Predicate
		if sel, ok := inExpr.(ra.Select); ok {
			inExpr = sel.Input
			pred = sel.Pred
		}
		in, err := compileNode(inExpr, s)
		if err != nil {
			return nil, err
		}
		rs := in.out()
		var cp cpred
		var vp vpred
		var kp kpred
		if pred != nil {
			cp, err = compilePred(pred, rs)
			if err != nil {
				return nil, err
			}
			vp, err = compileVPred(pred, rs)
			if err != nil {
				return nil, err
			}
			kp, err = compileKPred(pred, rs)
			if err != nil {
				return nil, err
			}
		}
		idx, err := projectPositions(ex.Attrs, rs)
		if err != nil {
			return nil, err
		}
		return &pproject{in: in, pred: cp, vpred: vp, kpred: kp, idx: idx,
			rs: schema.NewRelation("π("+rs.Name+")", ex.Attrs...)}, nil

	case ra.Rename:
		in, err := compileNode(ex.Input, s)
		if err != nil {
			return nil, err
		}
		rs, err := ex.OutSchemaFromInput(in.out())
		if err != nil {
			return nil, err
		}
		// A rename only relabels.  Folding it into a base scan lets
		// materialize return the base relation itself, so join build
		// sides that are renamed scans keep the relation's cached
		// indexes and coded sidecar instead of copying tuples per
		// evaluation; folding into another pschema keeps chains flat.
		switch x := in.(type) {
		case *pscan:
			return &pscan{name: x.name, rs: rs}, nil
		case *pschema:
			return &pschema{in: x.in, rs: rs}, nil
		}
		return &pschema{in: in, rs: rs}, nil

	case ra.Product:
		l, r, err := compilePair(ex.Left, ex.Right, s)
		if err != nil {
			return nil, err
		}
		rs, err := productSchema(l.out(), r.out())
		if err != nil {
			return nil, err
		}
		return &pproduct{l: l, r: r, rs: rs}, nil

	case ra.Join:
		l, r, err := compilePair(ex.Left, ex.Right, s)
		if err != nil {
			return nil, err
		}
		return compileNaturalJoin(l, r)

	case ra.Union:
		l, r, err := compileSetOp(ex.Left, ex.Right, "∪", s)
		if err != nil {
			return nil, err
		}
		return &punion{l: l, r: r,
			rs: schema.NewRelation("("+l.out().Name+"∪"+r.out().Name+")", l.out().Attrs...)}, nil

	case ra.Diff:
		l, r, err := compileSetOp(ex.Left, ex.Right, "−", s)
		if err != nil {
			return nil, err
		}
		return fusedDiff(l, r, true,
			schema.NewRelation("("+l.out().Name+"−"+r.out().Name+")", l.out().Attrs...)), nil

	case ra.Intersect:
		l, r, err := compileSetOp(ex.Left, ex.Right, "∩", s)
		if err != nil {
			return nil, err
		}
		return fusedDiff(l, r, false,
			schema.NewRelation("("+l.out().Name+"∩"+r.out().Name+")", l.out().Attrs...)), nil

	case ra.Division:
		l, r, err := compilePair(ex.Left, ex.Right, s)
		if err != nil {
			return nil, err
		}
		return compileDivision(l, r)

	case ra.Delta:
		rs, err := ex.OutSchema(s)
		if err != nil {
			return nil, err
		}
		return &pdelta{rs: rs}, nil

	default:
		return nil, fmt.Errorf("ra: unsupported expression %T", e)
	}
}

func compilePair(le, re ra.Expr, s *schema.Schema) (pnode, pnode, error) {
	l, err := compileNode(le, s)
	if err != nil {
		return nil, nil, err
	}
	r, err := compileNode(re, s)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func compileSetOp(le, re ra.Expr, op string, s *schema.Schema) (pnode, pnode, error) {
	l, r, err := compilePair(le, re, s)
	if err != nil {
		return nil, nil, err
	}
	if l.out().Arity() != r.out().Arity() {
		return nil, nil, fmt.Errorf("ra: %s of arities %d and %d", op, l.out().Arity(), r.out().Arity())
	}
	return l, r, nil
}

func productSchema(ls, rs schema.Relation) (schema.Relation, error) {
	for _, a := range rs.Attrs {
		if ls.HasAttr(a) {
			return schema.Relation{}, fmt.Errorf("ra: product attribute clash on %q", a)
		}
	}
	attrs := append(append([]string{}, ls.Attrs...), rs.Attrs...)
	return schema.NewRelation("("+ls.Name+"×"+rs.Name+")", attrs...), nil
}

// naturalJoinSplit resolves a natural join's column roles: the shared
// (join) positions on each side, the right-side positions appended to the
// output, and the output schema.  Shared by the one-shot and world-plan
// compilers.
type naturalJoinSplit struct {
	lShared, rShared []int
	extraIdx         []int
	rs               schema.Relation
}

func splitNaturalJoin(ls, rsch schema.Relation) naturalJoinSplit {
	var sp naturalJoinSplit
	var extraAttrs []string
	for ri, a := range rsch.Attrs {
		if li := ls.AttrIndex(a); li >= 0 {
			sp.lShared = append(sp.lShared, li)
			sp.rShared = append(sp.rShared, ri)
		} else {
			extraAttrs = append(extraAttrs, a)
			sp.extraIdx = append(sp.extraIdx, ri)
		}
	}
	attrs := append(append([]string{}, ls.Attrs...), extraAttrs...)
	sp.rs = schema.NewRelation("("+ls.Name+"⋈"+rsch.Name+")", attrs...)
	return sp
}

// partitionEquiJoin splits a selection cascade over a product into
// cross-side equality conjuncts (the join condition) and the residual
// predicates.  Shared by both compilers.
func partitionEquiJoin(preds []ra.Predicate, ls, rsch schema.Relation) (lpos, rpos []int, residual []ra.Predicate) {
	for _, p := range preds {
		cmp, ok := p.(ra.Cmp)
		if !ok || cmp.Op != ra.EQ || !cmp.Left.IsAttr || !cmp.Right.IsAttr {
			residual = append(residual, p)
			continue
		}
		li, ri := ls.AttrIndex(cmp.Left.Attr), rsch.AttrIndex(cmp.Right.Attr)
		if li < 0 || ri < 0 {
			// The flipped orientation: right-side attribute on the left.
			li, ri = ls.AttrIndex(cmp.Right.Attr), rsch.AttrIndex(cmp.Left.Attr)
		}
		if li >= 0 && ri >= 0 {
			lpos = append(lpos, li)
			rpos = append(rpos, ri)
			continue
		}
		residual = append(residual, p)
	}
	return lpos, rpos, residual
}

// PartitionEquiJoin splits a selection conjunction over a product into the
// cross-side equality pairs that can drive a hash equi-join — returned as
// positions into the left and right schemas — and the residual predicates
// that remain as filters above the join.  It is the exported form of the
// Product+Select→Join rule, shared with incremental view maintenance
// (internal/inc) so maintained views detect joins exactly like the
// planner's physical and world compilers do.
func PartitionEquiJoin(preds []ra.Predicate, l, r schema.Relation) (lpos, rpos []int, residual []ra.Predicate) {
	return partitionEquiJoin(preds, l, r)
}

// NaturalJoin resolves a natural join's column roles for the two input
// schemas: the shared (join-key) positions on each side, the right-side
// positions appended to the output, and the output schema.  It is the
// exported form of the split shared by the one-shot and world-plan
// compilers, reused by incremental view maintenance (internal/inc).
func NaturalJoin(l, r schema.Relation) (lpos, rpos, extraIdx []int, out schema.Relation) {
	sp := splitNaturalJoin(l, r)
	return sp.lShared, sp.rShared, sp.extraIdx, sp.rs
}

// divisionSplit resolves a division's column roles: the divisor attribute
// positions inside the dividend, the kept positions, and the output
// schema.  Shared by both compilers.
type divisionSplit struct {
	divPos, keepPos []int
	rs              schema.Relation
}

func splitDivision(ls, rsch schema.Relation) (divisionSplit, error) {
	var sp divisionSplit
	if rsch.Arity() == 0 {
		return sp, fmt.Errorf("ra: division by zero-ary relation")
	}
	sp.divPos = make([]int, rsch.Arity())
	for i, a := range rsch.Attrs {
		j := ls.AttrIndex(a)
		if j < 0 {
			return sp, fmt.Errorf("ra: division attribute %q of %s not in %s", a, rsch, ls)
		}
		sp.divPos[i] = j
	}
	var keepAttrs []string
	for i, a := range ls.Attrs {
		if !rsch.HasAttr(a) {
			keepAttrs = append(keepAttrs, a)
			sp.keepPos = append(sp.keepPos, i)
		}
	}
	if len(keepAttrs) == 0 {
		return sp, fmt.Errorf("ra: division %s ÷ %s would have empty schema", ls, rsch)
	}
	sp.rs = schema.NewRelation("("+ls.Name+"÷"+rsch.Name+")", keepAttrs...)
	return sp, nil
}

// allPositions returns [0, n).
func allPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// compileNaturalJoin builds the ⋈ operator: a hash join on the shared
// attributes, or a product when the attribute sets are disjoint.
func compileNaturalJoin(l, r pnode) (pnode, error) {
	sp := splitNaturalJoin(l.out(), r.out())
	if len(sp.lShared) == 0 {
		return &pproduct{l: l, r: r, rs: sp.rs}, nil
	}
	return &pjoin{l: l, r: r, lpos: sp.lShared, rpos: sp.rShared, extraIdx: sp.extraIdx, rs: sp.rs}, nil
}

// compileSelect compiles a cascade of selections.  When the cascade sits
// on a product and contains cross-side equality conjuncts, it becomes a
// hash equi-join (the Product+Select→Join rule); remaining predicates stay
// as filters above it.
func compileSelect(sel ra.Select, s *schema.Schema) (pnode, error) {
	var preds []ra.Predicate
	var inExpr ra.Expr = sel
	for {
		cur, ok := inExpr.(ra.Select)
		if !ok {
			break
		}
		preds = append(preds, cur.Pred)
		inExpr = cur.Input
	}

	if prod, ok := inExpr.(ra.Product); ok {
		return compileSelectProduct(preds, prod, s)
	}

	in, err := compileNode(inExpr, s)
	if err != nil {
		return nil, err
	}
	return wrapFilters(in, preds, in.out())
}

// wrapFilters stacks compiled predicate filters over a node; a constant
// false predicate collapses the subtree to the empty relation.
func wrapFilters(in pnode, preds []ra.Predicate, rs schema.Relation) (pnode, error) {
	node := in
	for i := len(preds) - 1; i >= 0; i-- {
		if _, isFalse := preds[i].(ra.False); isFalse {
			return &pempty{rs: rs}, nil
		}
		cp, err := compilePred(preds[i], rs)
		if err != nil {
			return nil, err
		}
		if cp == nil {
			continue // constant true
		}
		vp, err := compileVPred(preds[i], rs)
		if err != nil {
			return nil, err
		}
		kp, err := compileKPred(preds[i], rs)
		if err != nil {
			return nil, err
		}
		node = &pfilter{in: node, pred: cp, vpred: vp, kpred: kp}
	}
	return node, nil
}

// compileSelectProduct detects equi-join conjuncts (one attribute of each
// product side) in a selection cascade over a product.
func compileSelectProduct(preds []ra.Predicate, prod ra.Product, s *schema.Schema) (pnode, error) {
	l, r, err := compilePair(prod.Left, prod.Right, s)
	if err != nil {
		return nil, err
	}
	ls, rsch := l.out(), r.out()
	rs, err := productSchema(ls, rsch)
	if err != nil {
		return nil, err
	}
	lpos, rpos, residual := partitionEquiJoin(preds, ls, rsch)
	if len(lpos) == 0 {
		return wrapFilters(&pproduct{l: l, r: r, rs: rs}, preds, rs)
	}
	join := &pjoin{l: l, r: r, lpos: lpos, rpos: rpos, extraIdx: allPositions(rsch.Arity()), rs: rs}
	return wrapFilters(join, residual, rs)
}

func compileDivision(l, r pnode) (pnode, error) {
	sp, err := splitDivision(l.out(), r.out())
	if err != nil {
		return nil, err
	}
	return &pdivision{l: l, r: r, divPos: sp.divPos, keepPos: sp.keepPos, rs: sp.rs}, nil
}

func projectPositions(attrs []string, rs schema.Relation) ([]int, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := rs.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("ra: projection attribute %q not in %s", a, rs)
		}
		idx[i] = j
	}
	return idx, nil
}
