package plan

import (
	"fmt"

	"incdata/internal/col"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/value"
)

// Coded (monomorphic) predicate compilation.  A kpred is the coded twin
// of vpred: the same selection-vector contract (ascending, pooled
// buffers from the pctx, nil = all rows), but the comparisons run over
// the raw []uint64 code vectors of a col.Coded chunk.  Equality and
// inequality become branch-free u64 compares — code equality coincides
// with value equality under the shared dictionary — and only the order
// comparisons ever look at a value again, via the lock-free decode
// snapshot (and even there, two directly coded integers compare as bare
// u64s thanks to the order-preserving bias).

// kpred narrows a selection vector over a coded chunk; nil means
// constant true.
type kpred func(c *pctx, ch *col.Coded, sel []int32) []int32

// compileKPred resolves a predicate against the input schema into its
// coded form.  It accepts exactly the predicates compilePred accepts,
// so every compiled row predicate has a coded twin.
func compileKPred(p ra.Predicate, rs schema.Relation) (kpred, error) {
	switch pp := p.(type) {
	case ra.True:
		return nil, nil
	case ra.False:
		return kconstPred(false), nil
	case ra.Cmp:
		return compileKCmp(pp, rs)
	case ra.And:
		kids := make([]kpred, 0, len(pp.Preds))
		for _, q := range pp.Preds {
			kq, err := compileKPred(q, rs)
			if err != nil {
				return nil, err
			}
			if kq != nil {
				kids = append(kids, kq)
			}
		}
		switch len(kids) {
		case 0:
			return nil, nil
		case 1:
			return kids[0], nil
		}
		return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
			cur := kids[0](c, ch, sel)
			for _, k := range kids[1:] {
				if len(cur) == 0 {
					return cur
				}
				next := k(c, ch, cur)
				c.putSel(cur)
				cur = next
			}
			return cur
		}, nil
	case ra.Or:
		kids := make([]kpred, len(pp.Preds))
		for i, q := range pp.Preds {
			kq, err := compileKPred(q, rs)
			if err != nil {
				return nil, err
			}
			if kq == nil {
				return nil, nil // a true disjunct makes the whole ∨ true
			}
			kids[i] = kq
		}
		if len(kids) == 0 {
			return kconstPred(false), nil
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
			acc := kids[0](c, ch, sel)
			for _, k := range kids[1:] {
				ks := k(c, ch, sel)
				merged := unionSorted(c.getSel()[:0], acc, ks)
				c.putSel(acc)
				c.putSel(ks)
				acc = merged
			}
			return acc
		}, nil
	case ra.Not:
		inner, err := compileKPred(pp.Pred, rs)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return kconstPred(false), nil
		}
		return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
			in := inner(c, ch, sel)
			out := complementSorted(c.getSel()[:0], ch.Rows, sel, in)
			c.putSel(in)
			return out
		}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported predicate %T", p)
	}
}

// kconstPred is the constant coded predicate: true copies the selection,
// false empties it.
func kconstPred(holds bool) kpred {
	return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
		out := c.getSel()[:0]
		if !holds {
			return out
		}
		if sel == nil {
			for i := 0; i < ch.Rows; i++ {
				out = append(out, int32(i))
			}
			return out
		}
		return append(out, sel...)
	}
}

// compileKCmp builds the coded comparison kernels: = and ≠ as direct u64
// compares against an encoded constant or a second code column, the
// order comparisons via the int-code fast path with a decode fallback.
func compileKCmp(cm ra.Cmp, rs schema.Relation) (kpred, error) {
	resolve := func(o ra.Operand) (int, value.Value, error) {
		if !o.IsAttr {
			return -1, o.Const, nil
		}
		pos := rs.AttrIndex(o.Attr)
		if pos < 0 {
			return 0, value.Value{}, fmt.Errorf("ra: unknown attribute %q in %s", o.Attr, rs)
		}
		return pos, value.Value{}, nil
	}
	li, lc, err := resolve(cm.Left)
	if err != nil {
		return nil, err
	}
	ri, rc, err := resolve(cm.Right)
	if err != nil {
		return nil, err
	}
	switch cm.Op {
	case ra.EQ, ra.NEQ:
		neq := cm.Op == ra.NEQ
		switch {
		case li >= 0 && ri >= 0:
			return kcmpEqCols(li, ri, neq), nil
		case li >= 0:
			return kcmpEqConst(li, rc, neq), nil
		case ri >= 0:
			return kcmpEqConst(ri, lc, neq), nil
		default:
			return kconstPred((lc == rc) != neq), nil
		}
	case ra.LT, ra.LEQ, ra.GT, ra.GEQ:
		return kcmpOrder(cm.Op, li, lc, ri, rc), nil
	default:
		return nil, fmt.Errorf("plan: unsupported comparison operator %v", cm.Op)
	}
}

// kcmpEqConst keeps rows whose column code equals (or, with neq, differs
// from) the constant's code.  The constant is encoded once per chunk —
// interning is idempotent, and a constant outside the code space (only a
// null with an astronomical id) can equal no encodable column value, so
// = keeps nothing and ≠ keeps everything.
func kcmpEqConst(pos int, con value.Value, neq bool) kpred {
	return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
		code, ok := c.dict.Encode(con)
		if !ok {
			return kconstPred(neq)(c, ch, sel)
		}
		column := ch.Cols[pos]
		out := c.getSel()[:0]
		if sel == nil {
			for i, v := range column {
				if (v == code) != neq {
					out = append(out, int32(i))
				}
			}
			return out
		}
		for _, i := range sel {
			if (column[i] == code) != neq {
				out = append(out, i)
			}
		}
		return out
	}
}

// kcmpEqCols keeps rows where two code columns agree (or, with neq,
// differ).
func kcmpEqCols(lpos, rpos int, neq bool) kpred {
	return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
		lcol, rcol := ch.Cols[lpos], ch.Cols[rpos]
		out := c.getSel()[:0]
		if sel == nil {
			for i := range lcol {
				if (lcol[i] == rcol[i]) != neq {
					out = append(out, int32(i))
				}
			}
			return out
		}
		for _, i := range sel {
			if (lcol[i] == rcol[i]) != neq {
				out = append(out, i)
			}
		}
		return out
	}
}

// kcmpOrder is the coded order-comparison kernel; negative positions
// select the constant operand.  Two directly coded integers compare as
// raw u64s (the bias preserves order); any other combination decodes
// through the pctx snapshot and defers to value.Compare.
func kcmpOrder(op ra.CmpOp, li int, lc value.Value, ri int, rc value.Value) kpred {
	keep := func(cmp int) bool {
		switch op {
		case ra.LT:
			return cmp < 0
		case ra.LEQ:
			return cmp <= 0
		case ra.GT:
			return cmp > 0
		default: // ra.GEQ
			return cmp >= 0
		}
	}
	return func(c *pctx, ch *col.Coded, sel []int32) []int32 {
		var lcol, rcol []uint64
		if li >= 0 {
			lcol = ch.Cols[li]
		}
		if ri >= 0 {
			rcol = ch.Cols[ri]
		}
		test := func(i int32) bool {
			if lcol != nil && rcol != nil {
				a, b := lcol[i], rcol[i]
				if value.CodeIsInt(a) && value.CodeIsInt(b) {
					switch {
					case a < b:
						return keep(-1)
					case a > b:
						return keep(1)
					default:
						return keep(0)
					}
				}
				return keep(value.Compare(c.decode(a), c.decode(b)))
			}
			av, bv := lc, rc
			if lcol != nil {
				av = c.decode(lcol[i])
			}
			if rcol != nil {
				bv = c.decode(rcol[i])
			}
			return keep(value.Compare(av, bv))
		}
		out := c.getSel()[:0]
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				if test(i) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if test(i) {
				out = append(out, i)
			}
		}
		return out
	}
}
