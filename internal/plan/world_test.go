package plan

import (
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/semantics"
	"incdata/internal/table"
	"incdata/internal/valuation"
)

// checkWorlds asserts that for every valuation over the enumeration
// domain, the factored evaluation (Stable ∪ Delta for splittable plans,
// Answer for all plans) is bit-identical to evaluating the query on the
// materialized world with the oracle.
func checkWorlds(t *testing.T, q ra.Expr, d *table.Database, label string) {
	t.Helper()
	wp, err := ForWorlds(q, d)
	if err != nil {
		// The oracle must reject the query too (on any world).
		v := valuation.New()
		if _, oerr := ra.Eval(q, v.ApplyDatabase(d)); oerr == nil {
			t.Fatalf("%s: ForWorlds failed (%v) but oracle evaluates %s", label, err, q)
		}
		return
	}
	sess := wp.NewSession()
	dom := semantics.DomainOf(d, 2)
	worlds := 0
	valuation.Enumerate(d.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
		worlds++
		world := v.ApplyDatabase(d)
		want, err := ra.Eval(q, world)
		if err != nil {
			t.Fatalf("%s: oracle failed on world %s: %v", label, v, err)
		}
		got, err := sess.Answer(v)
		if err != nil {
			t.Fatalf("%s: Answer failed on world %s: %v", label, v, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: Answer differs on world %s for %s\ngot:  %s\nwant: %s",
				label, v, q, got, want)
		}
		if wp.Splittable() {
			stable, err := wp.Stable()
			if err != nil {
				t.Fatalf("%s: Stable failed: %v", label, err)
			}
			delta, err := sess.Delta(v)
			if err != nil {
				t.Fatalf("%s: Delta failed on world %s: %v", label, v, err)
			}
			merged := table.NewRelation(stable.Schema())
			if err := merged.AddAll(stable); err != nil {
				t.Fatal(err)
			}
			if err := merged.AddAll(delta); err != nil {
				t.Fatal(err)
			}
			if !merged.Equal(want) {
				t.Fatalf("%s: Stable∪Delta differs on world %s for %s\nstable: %s\ndelta:  %s\nwant:   %s",
					label, v, q, stable, delta, want)
			}
			// The stable part must be a subset of every world's answer.
			stable.Each(func(tp table.Tuple) bool {
				if !want.Contains(tp) {
					t.Fatalf("%s: stable tuple %s not in world %s answer for %s", label, tp, v, q)
				}
				return true
			})
		}
		return true
	})
	if worlds == 0 {
		t.Fatalf("%s: no worlds enumerated", label)
	}
}

// TestWorldPlanMatchesOracleFuzz fuzzes the factored world evaluation
// against per-world oracle evaluation.
func TestWorldPlanMatchesOracleFuzz(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(1000 + i))), s: s}
		q := g.expr(3)
		d := fuzzDB(int64(i%5) + 3)
		checkWorlds(t, q, d, "world-fuzz")
	}
}

// TestWorldPlanSplitExamples pins the splittability classification and the
// factored evaluation on the experiment queries.
func TestWorldPlanSplitExamples(t *testing.T) {
	d := fuzzDB(1)
	ucq := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	wp, err := ForWorlds(ucq, d)
	if err != nil {
		t.Fatal(err)
	}
	if !wp.Splittable() {
		t.Fatalf("UCQ plan should be splittable")
	}
	checkWorlds(t, ucq, d, "ucq")

	diff := ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")}
	checkWorlds(t, diff, d, "diff")

	delta := ra.Delta{Attr1: "d1", Attr2: "d2"}
	checkWorlds(t, delta, d, "delta")

	inter := ra.Intersect{Left: ra.Base("R"), Right: ra.Base("T")}
	checkWorlds(t, inter, d, "intersect")
}
