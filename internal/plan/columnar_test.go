package plan

import (
	"math/rand"
	"sync"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
)

// mustSameColumnar asserts the columnar path is bit-identical to the row
// path for raw and certain evaluation under the given worker budget.
func mustSameColumnar(t *testing.T, q ra.Expr, d *table.Database, workers int, label string) {
	t.Helper()
	p, err := Compile(q, d.Schema())
	if err != nil {
		return // compile rejections are covered by the serial differential
	}
	row := EvalConfig{Workers: workers, Columnar: false}
	colCfg := EvalConfig{Workers: workers, Columnar: true}
	want, rerr := p.EvalWith(d, row)
	got, cerr := p.EvalWith(d, colCfg)
	if (rerr == nil) != (cerr == nil) {
		t.Fatalf("%s: error mismatch for %s (workers=%d): row %v, columnar %v", label, q, workers, rerr, cerr)
	}
	if rerr == nil && got.CanonicalKey() != want.CanonicalKey() {
		t.Fatalf("%s: EvalWith columnar differs for %s (workers=%d)\ncolumnar: %s\nrow:      %s\nplan:\n%s",
			label, q, workers, got, want, p.Describe())
	}
	wantC, rerr := p.EvalCertainWith(d, row)
	gotC, cerr := p.EvalCertainWith(d, colCfg)
	if (rerr == nil) != (cerr == nil) {
		t.Fatalf("%s: certain error mismatch for %s (workers=%d): row %v, columnar %v", label, q, workers, rerr, cerr)
	}
	if rerr == nil && gotC.CanonicalKey() != wantC.CanonicalKey() {
		t.Fatalf("%s: EvalCertainWith columnar differs for %s (workers=%d)\ncolumnar: %s\nrow:      %s\nplan:\n%s",
			label, q, workers, gotC, wantC, p.Describe())
	}
}

// TestColumnarMatchesRowFuzz pins the vectorized columnar path
// bit-identical to the per-tuple row path (its differential oracle)
// across the full random operator corpus, crossed with serial and
// parallel evaluation — the cutoff is lowered so every plan with a
// driving scan also exercises the columnar morsel path.
func TestColumnarMatchesRowFuzz(t *testing.T) {
	withParallelCutoff(t, 1)
	trials := 400
	if testing.Short() {
		trials = 60
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(1000 + i))), s: s}
		q := g.expr(3)
		d := fuzzDB(int64(i % 7))
		for _, workers := range []int{1, 2, 4} {
			mustSameColumnar(t, q, d, workers, "fuzz")
		}
	}
}

// TestColumnarLargeJoin exercises the columnar kernels at the production
// cutoff on relations big enough to fill many chunks: partitioned joins,
// fused select-joins, diffs, and a union mixing an eligible branch with a
// row-path branch.
func TestColumnarLargeJoin(t *testing.T) {
	d := largeDB(1500, 11)
	queries := map[string]ra.Expr{
		"join": ra.Project{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Attrs: []string{"a", "c"},
		},
		"select-join": ra.Select{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Pred:  ra.Neq(ra.Attr("a"), ra.Attr("c")),
		},
		"project-diff": ra.Diff{
			Left:  ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
		"union-mixed": ra.Union{
			Left:  ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
	}
	for name, q := range queries {
		for _, workers := range []int{1, 2, 4, 8} {
			mustSameColumnar(t, q, d, workers, name)
		}
	}
}

// TestColEligible pins the eligibility gate: plans that only adopt
// existing tuples (bare scans, filters, whole-tuple diffs) stay on the
// row path, plans that build fresh output tuples (π, ⋈, projected diffs)
// take the columnar one.
func TestColEligible(t *testing.T) {
	d := fuzzDB(1)
	cases := []struct {
		q    ra.Expr
		want bool
	}{
		{ra.Base("R"), false},
		{ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.LitInt(0))}, false},
		{ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")}, false},
		{ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}, true},
		{ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, true},
		{ra.Diff{
			Left:  ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		}, true},
	}
	for _, tc := range cases {
		p, err := Compile(tc.q, d.Schema())
		if err != nil {
			t.Fatalf("compile %s: %v", tc.q, err)
		}
		if got := colEligible(p.root); got != tc.want {
			t.Errorf("colEligible(%s) = %v, want %v\nplan:\n%s", tc.q, got, tc.want, p.Describe())
		}
	}
}

// TestColumnarScratchLifetime audits the producer-owned scratch contract
// of the columnar chunk pool: tuples a consumer adopts out of an
// evaluation result must stay valid after the chunks they were gathered
// from are recycled and refilled by later (including concurrent)
// evaluations.  Run under -race in CI, this also catches any write to a
// recycled buffer that still aliases adopted state.
func TestColumnarScratchLifetime(t *testing.T) {
	d := largeDB(800, 21)
	q := ra.Project{
		Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
		Attrs: []string{"a", "c"},
	}
	p, err := Compile(q, d.Schema())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !colEligible(p.root) {
		t.Fatalf("test query must take the columnar path")
	}
	res, err := p.EvalWith(d, EvalConfig{Columnar: true})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}

	// Adopt the result's tuples and deep-copy their values.
	var adopted []table.Tuple
	var copies [][]value.Value
	res.Each(func(tp table.Tuple) bool {
		adopted = append(adopted, tp)
		cp := make([]value.Value, len(tp))
		copy(cp, tp)
		copies = append(copies, cp)
		return true
	})
	if len(adopted) == 0 {
		t.Fatalf("test query produced no tuples; corpus is wrong")
	}

	// Churn the chunk and selection pools hard: many more evaluations, on
	// multiple goroutines, reusing the same process-wide pools.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			d2 := largeDB(400, seed)
			for i := 0; i < 8; i++ {
				if _, err := p.EvalWith(d2, EvalConfig{Workers: 1 + int(seed)%3, Columnar: true}); err != nil {
					t.Errorf("churn eval: %v", err)
					return
				}
			}
		}(int64(30 + g))
	}
	wg.Wait()

	for i, tp := range adopted {
		for j := range tp {
			if tp[j] != copies[i][j] {
				t.Fatalf("adopted tuple %d mutated after pool churn: %v != %v", i, tp, copies[i])
			}
		}
	}
}
