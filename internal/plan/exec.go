package plan

import (
	"fmt"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Physical operators.  A pnode streams its result tuples to a consumer
// (push model): pipelined operators (scan, filter, project, the probe side
// of a join, union, the left side of − and ∩) never materialize their
// output, while pipeline breakers (join build sides, the right side of −
// and ∩ as key sets, both division inputs, Δ) materialize only what they
// must.  Emitted tuples are immutable and may be adopted by the consumer.

// pctx carries the database view and a reusable key scratch buffer for one
// evaluation.  On the parallel path (parallel.go) each worker owns one pctx
// holding its morsel assignment and the evaluation-wide shared state; on
// the serial path the extra fields stay zero and every operator behaves
// exactly as before.
type pctx struct {
	db     ra.DB
	keyBuf []byte

	columnar bool      // use the vectorized path where eligible (colexec.go)
	selPool  [][]int32 // recycled selection vectors for vectorized kernels

	coded    bool          // use the coded path where eligible (codedexec.go)
	dict     *table.Dict   // the database's value dictionary; nil disables coded
	dictVals []value.Value // lock-free decode snapshot, refreshed on demand

	budget int64 // join build-side memory budget in bytes; 0 = unbounded (spill.go)

	shared     *sharedEval       // prepare-phase materializations shared by workers
	morselFor  *pscan            // scan whose tuples come from morsel, not the relation
	morsel     []table.Tuple     // the worker's current morsel of morselFor
	partIdxFor *pjoin            // join probing a per-partition build index
	partIdx    *table.Index      // the partition's index, matching the worker's morsel
	partCoded  *table.CodedIndex // coded twin of partIdx; nil → the coded join bridges
}

// getSel hands out a selection-vector buffer from the context pool,
// allocating one chunk's worth of capacity on a cold pool.
func (c *pctx) getSel() []int32 {
	if n := len(c.selPool); n > 0 {
		s := c.selPool[n-1]
		c.selPool = c.selPool[:n-1]
		return s[:0]
	}
	return make([]int32, 0, chunkSize)
}

// putSel returns a selection vector to the pool; nil (the "all rows"
// selection) is ignored so callers can release unconditionally.
func (c *pctx) putSel(s []int32) {
	if s == nil {
		return
	}
	c.selPool = append(c.selPool, s)
}

// relationErr is the shared unknown-relation error.
func relationErr(name string) error {
	return fmt.Errorf("ra: unknown relation %q", name)
}

// appendPosKey appends the key of t restricted to positions into the
// context scratch buffer and returns it; valid until the next call.
func (c *pctx) appendPosKey(t table.Tuple, positions []int) []byte {
	buf := c.keyBuf[:0]
	for _, p := range positions {
		buf = t[p].AppendKey(buf)
	}
	c.keyBuf = buf
	return buf
}

type pnode interface {
	// out is the static output schema of the operator.
	out() schema.Relation
	// stream calls emit with every result tuple (duplicates allowed; set
	// semantics are restored at materialization).  When emit returns false
	// the stream stops early and stream returns nil.
	stream(c *pctx, emit func(table.Tuple) bool) error
}

// materialize evaluates a node into a relation with set semantics.  Base
// relation scans are returned as-is (never mutated by the planner), so
// their cached hash indexes survive across evaluations.  On the parallel
// path, pipeline breakers materialized during the prepare phase are served
// from the shared cache instead of being recomputed per worker.
func materialize(n pnode, c *pctx) (*table.Relation, error) {
	if sc, ok := n.(*pscan); ok {
		rel := c.db.Relation(sc.name)
		if rel == nil {
			return nil, relationErr(sc.name)
		}
		return rel, nil
	}
	if c.shared != nil {
		if rel, ok := c.shared.mats[n]; ok {
			return rel, nil
		}
	}
	out := table.NewRelation(n.out())
	if err := materializeIntoAdopt(n, c, false, true, out); err != nil {
		return nil, err
	}
	return out, nil
}

// pscan scans a base relation.
type pscan struct {
	name string
	rs   schema.Relation
}

func (n *pscan) out() schema.Relation { return n.rs }

func (n *pscan) stream(c *pctx, emit func(table.Tuple) bool) error {
	if c.morselFor == n {
		for _, t := range c.morsel {
			if !emit(t) {
				return nil
			}
		}
		return nil
	}
	rel := c.db.Relation(n.name)
	if rel == nil {
		return relationErr(n.name)
	}
	rel.Each(emit)
	return nil
}

// pempty is the empty relation (a constant-false selection).
type pempty struct{ rs schema.Relation }

func (n *pempty) out() schema.Relation                       { return n.rs }
func (n *pempty) stream(*pctx, func(table.Tuple) bool) error { return nil }

// pfilter applies a compiled predicate.  vpred is the vectorized twin of
// pred, used by the columnar path (colexec.go), and kpred the coded twin
// (codedexec.go); each is nil when the predicate has no such form.
type pfilter struct {
	in    pnode
	pred  cpred
	vpred vpred
	kpred kpred
}

func (n *pfilter) out() schema.Relation { return n.in.out() }

func (n *pfilter) stream(c *pctx, emit func(table.Tuple) bool) error {
	return n.in.stream(c, func(t table.Tuple) bool {
		if !n.pred(t) {
			return true
		}
		return emit(t)
	})
}

// pproject projects onto fixed positions, with an optional fused
// pre-projection filter (σ directly below π never materializes).  vpred
// is the vectorized twin of pred for the columnar path; nil when pred is
// nil or has no vectorized form.
type pproject struct {
	in    pnode
	pred  cpred // may be nil
	vpred vpred
	kpred kpred
	idx   []int
	rs    schema.Relation
}

func (n *pproject) out() schema.Relation { return n.rs }

func (n *pproject) stream(c *pctx, emit func(table.Tuple) bool) error {
	return n.in.stream(c, func(t table.Tuple) bool {
		if n.pred != nil && !n.pred(t) {
			return true
		}
		return emit(t.Project(n.idx...))
	})
}

// pschema re-labels the output schema (ρ); tuples pass through untouched.
type pschema struct {
	in pnode
	rs schema.Relation
}

func (n *pschema) out() schema.Relation { return n.rs }

func (n *pschema) stream(c *pctx, emit func(table.Tuple) bool) error {
	return n.in.stream(c, emit)
}

// pproduct is the cartesian product; the right side is materialized once
// and the left side streams.
type pproduct struct {
	l, r pnode
	rs   schema.Relation
}

func (n *pproduct) out() schema.Relation { return n.rs }

func (n *pproduct) stream(c *pctx, emit func(table.Tuple) bool) error {
	rrel, err := materialize(n.r, c)
	if err != nil {
		return err
	}
	stopped := false
	err = n.l.stream(c, func(lt table.Tuple) bool {
		rrel.Each(func(rt table.Tuple) bool {
			if !emit(lt.Concat(rt)) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	})
	return err
}

// pjoin is a hash equi-join: the right side is materialized and indexed on
// rpos (cached on the relation when the right side is a base scan), the
// left side streams and probes with its lpos key.  The output tuple is the
// left tuple followed by the right columns in extraIdx — for a natural
// join those are the right side's non-shared columns, for a detected
// σ=(×) equi-join all right columns.
type pjoin struct {
	l, r     pnode
	lpos     []int
	rpos     []int
	extraIdx []int
	rs       schema.Relation
}

func (n *pjoin) out() schema.Relation { return n.rs }

// buildIndex returns the hash index this join probes: on the partitioned
// parallel path the worker's per-partition index (matching its morsel of
// the probe side), otherwise the index over the whole materialized build
// side (cached on the relation when the build side is a base scan).
func (n *pjoin) buildIndex(c *pctx) (*table.Index, error) {
	if c.partIdxFor == n {
		return c.partIdx, nil
	}
	rrel, err := materialize(n.r, c)
	if err != nil {
		return nil, err
	}
	return rrel.Index(n.rpos), nil
}

func (n *pjoin) stream(c *pctx, emit func(table.Tuple) bool) error {
	if c.budget > 0 && c.partIdxFor != n {
		return n.spillStream(c, emit)
	}
	ix, err := n.buildIndex(c)
	if err != nil {
		return err
	}
	return n.probeWith(c, ix, emit)
}

// probeWith streams the probe (left) side against a build-side index,
// emitting the joined output tuples.  Shared by the resident path and the
// under-budget case of the spill path.
func (n *pjoin) probeWith(c *pctx, ix *table.Index, emit func(table.Tuple) bool) error {
	return n.l.stream(c, func(lt table.Tuple) bool {
		key := c.appendPosKey(lt, n.lpos)
		for i := ix.Lookup(key); i != 0; {
			var rt table.Tuple
			rt, i = ix.At(i)
			if !n.emitJoined(lt, rt, emit) {
				return false
			}
		}
		return true
	})
}

// emitJoined emits the join output of one matching tuple pair: the left
// tuple followed by the right columns in extraIdx.
func (n *pjoin) emitJoined(lt, rt table.Tuple, emit func(table.Tuple) bool) bool {
	combined := make(table.Tuple, len(lt), len(lt)+len(n.extraIdx))
	copy(combined, lt)
	for _, ri := range n.extraIdx {
		combined = append(combined, rt[ri])
	}
	return emit(combined)
}

// punion streams both sides; duplicates collapse at materialization.
type punion struct {
	l, r pnode
	rs   schema.Relation
}

func (n *punion) out() schema.Relation { return n.rs }

func (n *punion) stream(c *pctx, emit func(table.Tuple) bool) error {
	stopped := false
	err := n.l.stream(c, func(t table.Tuple) bool {
		if !emit(t) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	return n.r.stream(c, emit)
}

// pdiff streams left tuples absent from (−) or present in (∩) the right
// side.  The right side collapses to a key set (or, for a base scan, the
// relation's own hash map) — its tuples are never stored.  Pure
// projections directly below either side are fused: keys are computed
// from the pre-projection tuple's columns, and the projected tuple is
// materialized only for tuples that reach the output.
type pdiff struct {
	l      pnode
	lproj  []int // nil: compare l's tuples whole
	lpred  cpred // optional filter fused from a projected selection
	lvpred vpred // vectorized twin of lpred for the columnar path
	lkpred kpred // coded twin of lpred for the coded path
	r      pnode
	rproj  []int
	rpred  cpred
	negate bool // true: −, false: ∩
	rs     schema.Relation
}

// sideKey appends the comparison key of a tuple: its projected columns
// when a projection was fused, the whole tuple otherwise.
func sideKey(buf []byte, t table.Tuple, proj []int) []byte {
	if proj == nil {
		return t.AppendKey(buf)
	}
	for _, p := range proj {
		buf = t[p].AppendKey(buf)
	}
	return buf
}

func (n *pdiff) out() schema.Relation { return n.rs }

// containsFn builds (or, on the parallel path, fetches the prepare phase's
// shared copy of) the right-side membership probe.  The returned function
// only reads immutable state and is safe for concurrent probes.
func (n *pdiff) containsFn(c *pctx) (func(key []byte) bool, error) {
	if c.shared != nil {
		if f, ok := c.shared.contains[n]; ok {
			return f, nil
		}
	}
	if sc, ok := n.r.(*pscan); ok && n.rpred == nil {
		rrel := c.db.Relation(sc.name)
		if rrel == nil {
			return nil, relationErr(sc.name)
		}
		if n.rproj == nil {
			// Whole-tuple comparison: the relation's own hash map is the
			// key set.
			return rrel.ContainsKey, nil
		}
		// Projected comparison: the relation's cached hash index on the
		// projected columns is the key set — built once, reused across
		// evaluations.
		ix := rrel.Index(n.rproj)
		return func(key []byte) bool { return ix.Lookup(key) != 0 }, nil
	}
	sizeHint := 16
	if sc, ok := n.r.(*pscan); ok {
		if rrel := c.db.Relation(sc.name); rrel != nil {
			sizeHint = rrel.Len()
		}
	}
	keys := make(map[string]struct{}, sizeHint)
	err := n.r.stream(c, func(t table.Tuple) bool {
		if n.rpred != nil && !n.rpred(t) {
			return true
		}
		k := sideKey(c.keyBuf[:0], t, n.rproj)
		c.keyBuf = k
		if _, ok := keys[string(k)]; !ok {
			keys[string(k)] = struct{}{}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return func(key []byte) bool {
		_, ok := keys[string(key)]
		return ok
	}, nil
}

func (n *pdiff) stream(c *pctx, emit func(table.Tuple) bool) error {
	contains, err := n.containsFn(c)
	if err != nil {
		return err
	}
	return n.l.stream(c, func(t table.Tuple) bool {
		if n.lpred != nil && !n.lpred(t) {
			return true
		}
		k := sideKey(c.keyBuf[:0], t, n.lproj)
		c.keyBuf = k
		if contains(k) == n.negate {
			// − drops tuples present on the right; ∩ drops absent ones.
			return true
		}
		if n.lproj != nil {
			return emit(t.Project(n.lproj...))
		}
		return emit(t)
	})
}

// fusedDiff builds a pdiff, fusing projections below both sides.
func fusedDiff(l, r pnode, negate bool, rs schema.Relation) *pdiff {
	lsrc, lproj, lpred, lvpred, lkpred := fuseDiffSide(l)
	rsrc, rproj, rpred, _, _ := fuseDiffSide(r)
	return &pdiff{
		l: lsrc, lproj: lproj, lpred: lpred, lvpred: lvpred, lkpred: lkpred,
		r: rsrc, rproj: rproj, rpred: rpred,
		negate: negate, rs: rs,
	}
}

// fuseDiffSide peels renames and a pure projection (with its fused
// pre-filter, in row, vectorized and coded forms) off a diff/intersect
// input so pdiff can compare keys without materializing the projected
// tuples.  Renames do not change tuples, so they vanish entirely.
func fuseDiffSide(n pnode) (src pnode, proj []int, pred cpred, vp vpred, kp kpred) {
	for {
		if ps, ok := n.(*pschema); ok {
			n = ps.in
			continue
		}
		break
	}
	if pp, ok := n.(*pproject); ok {
		return pp.in, pp.idx, pp.pred, pp.vpred, pp.kpred
	}
	return n, nil, nil, nil, nil
}

// pdivision is relational division over materialized inputs (a pipeline
// breaker on both sides), ported from the naïve evaluator.
type pdivision struct {
	l, r    pnode
	divPos  []int // divisor attribute positions inside the dividend
	keepPos []int
	rs      schema.Relation
}

func (n *pdivision) out() schema.Relation { return n.rs }

func (n *pdivision) stream(c *pctx, emit func(table.Tuple) bool) error {
	l, err := materialize(n.l, c)
	if err != nil {
		return err
	}
	r, err := materialize(n.r, c)
	if err != nil {
		return err
	}
	divide(l, r, n.divPos, n.keepPos, n.rs).Each(emit)
	return nil
}

// pdelta is the Δ operator: {(a,a) | a ∈ adom(D)}.
type pdelta struct{ rs schema.Relation }

func (n *pdelta) out() schema.Relation { return n.rs }

func (n *pdelta) stream(c *pctx, emit func(table.Tuple) bool) error {
	for v := range c.db.ActiveDomain() {
		if !emit(table.NewTuple(v, v)) {
			return nil
		}
	}
	return nil
}
