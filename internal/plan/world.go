package plan

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// World-aware evaluation: the world-enumeration ground truth evaluates
// Q(v(D)) for every valuation v of the nulls, but v only changes the
// tuples that mention nulls.  ForWorlds factors the (rewritten) plan of Q
// into, per operator, a *stable* part — identical in every world, computed
// exactly once and cached — and a per-valuation *delta*:
//
//	full(v) = stable ∪ delta(v)              ("splittable" operators)
//
// Base relations split into complete part (stable) and null part (delta =
// v applied to the null tuples); σ, π, ρ, ∪ and Δ distribute over the
// split; ×, ⋈ and ∩ expand it (the ⋈ deltas probe persistently indexed
// stable sides, so a world costs O(#null tuples), not O(|D|)); − splits
// when its right side is world-invariant.  Division and the remaining −
// cases evaluate per world over materialized children, still reusing every
// invariant subtree.
//
// A WorldPlan is shared (stable results and their hash indexes are built
// once, under sync.Once, and only read afterwards); each enumeration
// worker owns a Session holding per-node scratch relations that are
// recycled from world to world.

// WorldPlan is a query plan factored for world enumeration over a fixed
// incomplete database.
type WorldPlan struct {
	d     *table.Database
	root  *wnode
	out   schema.Relation
	n     int           // number of nodes (scratch sizing)
	nulls []value.Value // Null(D), sorted (shared by enumeration loops)

	workers atomic.Int32 // worker budget for partition-parallel stable parts

	sessions sync.Pool // recycled *Session values (warm per-node scratch)
}

// SetWorkers sets the worker budget used when stable parts are computed
// partition-parallel (see computeStable); the stable results themselves are
// bit-identical regardless of the budget.  The highest value ever set wins
// — world plans are cached and shared across calls with different worker
// settings, and stable parts are computed only once.  Safe to call
// concurrently with evaluation.
func (wp *WorldPlan) SetWorkers(w int) {
	for {
		cur := wp.workers.Load()
		if int32(w) <= cur {
			return
		}
		if wp.workers.CompareAndSwap(cur, int32(w)) {
			return
		}
	}
}

// AcquireSession returns a session from the plan's pool (or a fresh one).
// Returning it with ReleaseSession lets the next certain-answer call reuse
// the per-node scratch relations.
func (wp *WorldPlan) AcquireSession() *Session {
	if s, ok := wp.sessions.Get().(*Session); ok && s != nil {
		return s
	}
	return wp.NewSession()
}

// ReleaseSession returns a session to the plan's pool.  The session's
// scratch results (including the last Delta/Answer return values) must no
// longer be referenced by the caller.
func (wp *WorldPlan) ReleaseSession(s *Session) { wp.sessions.Put(s) }

// SortedNulls returns Null(D) in the deterministic enumeration order,
// computed once at plan time.  Callers must not mutate it.
func (wp *WorldPlan) SortedNulls() []value.Value { return wp.nulls }

// ForWorlds rewrites and factors q for world enumeration over d.
func ForWorlds(q ra.Expr, d *table.Database) (*WorldPlan, error) {
	out, err := q.OutSchema(d.Schema())
	if err != nil {
		return nil, err
	}
	rw, err := Rewrite(q, d.Schema())
	if err != nil {
		return nil, err
	}
	b := &worldBuilder{d: d}
	root, err := b.build(rw)
	if err != nil {
		return nil, err
	}
	return &WorldPlan{d: d, root: root, out: out, n: b.n, nulls: collectNulls(d)}, nil
}

// collectNulls gathers Null(D) sorted, in a single pass over the stored
// tuples (equivalent to d.SortedNulls() without the per-relation set
// allocations).
func collectNulls(d *table.Database) []value.Value {
	seen := map[value.Value]bool{}
	var out []value.Value
	for _, name := range d.RelationNames() {
		d.Relation(name).Each(func(t table.Tuple) bool {
			for _, v := range t {
				if v.IsNull() && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			return true
		})
	}
	slices.SortFunc(out, value.Compare)
	return out
}

// OutSchema returns the plan's output schema (the original expression's).
func (wp *WorldPlan) OutSchema() schema.Relation { return wp.out }

// Splittable reports whether every world's answer decomposes as
// Stable() ∪ Delta(v).  When false, use Session.Answer per world instead;
// invariant subtrees are still evaluated only once.
func (wp *WorldPlan) Splittable() bool { return wp.root.splittable }

// Invariant reports whether the answer is identical in every world (the
// query touches no nulls), i.e. Delta(v) is empty for every v.
func (wp *WorldPlan) Invariant() bool { return wp.root.invariant }

// Stable returns the world-invariant part of the answer: tuples present in
// Q(v(D)) for every valuation v.  Only valid when Splittable().  The
// result is computed on first use and shared; callers must not mutate it.
func (wp *WorldPlan) Stable() (*table.Relation, error) {
	if !wp.root.splittable {
		return nil, fmt.Errorf("plan: world plan for %s is not splittable", wp.out)
	}
	return wp.stable(wp.root)
}

func (wp *WorldPlan) stable(n *wnode) (*table.Relation, error) {
	n.stableOnce.Do(func() {
		n.stableRel, n.stableErr = wp.computeStable(n)
	})
	return n.stableRel, n.stableErr
}

// wkind discriminates world-plan operators.
type wkind uint8

const (
	wRel wkind = iota
	wSelect
	wProject
	wRename
	wProduct
	wJoin
	wUnion
	wIntersect
	wDiff
	wDivision
	wDelta
	wEmpty
)

// wnode is one operator of a factored world plan.
type wnode struct {
	id   int
	kind wkind
	l, r *wnode
	rs   schema.Relation

	// splittable: full(v) = stable ∪ delta(v) holds for this subtree.
	// invariant: the subtree's result is identical in every world.
	// invariant implies splittable (the delta is empty).
	splittable bool
	invariant  bool

	// Kind-specific compiled data.
	relName    string
	nullTuples []table.Tuple // wRel: tuples mentioning nulls
	pred       cpred         // wSelect
	projIdx    []int         // wProject
	lpos       []int         // wJoin: shared positions in the left input
	rpos       []int         // wJoin: shared positions in the right input
	extraIdx   []int         // wJoin: right positions appended to the output
	divPos     []int         // wDivision
	keepPos    []int         // wDivision
	adomC      []value.Value // wDelta: constants of adom(D)
	adomN      []value.Value // wDelta: nulls of adom(D)

	stableOnce sync.Once
	stableRel  *table.Relation
	stableErr  error
}

type worldBuilder struct {
	d *table.Database
	n int
}

func (b *worldBuilder) node(kind wkind, rs schema.Relation) *wnode {
	n := &wnode{id: b.n, kind: kind, rs: rs}
	b.n++
	return n
}

func (b *worldBuilder) build(e ra.Expr) (*wnode, error) {
	switch ex := e.(type) {
	case ra.Rel:
		rel := b.d.Relation(ex.Name)
		if rel == nil {
			return nil, fmt.Errorf("ra: unknown relation %q", ex.Name)
		}
		n := b.node(wRel, rel.Schema())
		n.relName = ex.Name
		rel.Each(func(t table.Tuple) bool {
			if t.HasNull() {
				n.nullTuples = append(n.nullTuples, t)
			}
			return true
		})
		n.splittable = true
		n.invariant = len(n.nullTuples) == 0
		return n, nil

	case ra.Select:
		// Gather the selection cascade: a cascade over a product whose
		// conjuncts equate one attribute of each side becomes an indexed
		// equi-join, exactly as in the one-shot compiler — otherwise the
		// per-world deltas would cross-product against stable sides.
		var preds []ra.Predicate
		var inExpr ra.Expr = ex
		for {
			cur, ok := inExpr.(ra.Select)
			if !ok {
				break
			}
			preds = append(preds, cur.Pred)
			inExpr = cur.Input
		}
		if prod, ok := inExpr.(ra.Product); ok {
			return b.buildSelectProduct(preds, prod)
		}
		in, err := b.build(inExpr)
		if err != nil {
			return nil, err
		}
		return b.wrapSelects(in, preds)

	case ra.Project:
		in, err := b.build(ex.Input)
		if err != nil {
			return nil, err
		}
		idx, err := projectPositions(ex.Attrs, in.rs)
		if err != nil {
			return nil, err
		}
		n := b.node(wProject, schema.NewRelation("π("+in.rs.Name+")", ex.Attrs...))
		n.l, n.projIdx = in, idx
		n.splittable, n.invariant = in.splittable, in.invariant
		return n, nil

	case ra.Rename:
		in, err := b.build(ex.Input)
		if err != nil {
			return nil, err
		}
		rs, err := ex.OutSchemaFromInput(in.rs)
		if err != nil {
			return nil, err
		}
		n := b.node(wRename, rs)
		n.l = in
		n.splittable, n.invariant = in.splittable, in.invariant
		return n, nil

	case ra.Product:
		l, r, err := b.buildPair(ex.Left, ex.Right)
		if err != nil {
			return nil, err
		}
		rs, err := productSchema(l.rs, r.rs)
		if err != nil {
			return nil, err
		}
		n := b.node(wProduct, rs)
		n.l, n.r = l, r
		n.splittable = l.splittable && r.splittable
		n.invariant = l.invariant && r.invariant
		return n, nil

	case ra.Join:
		l, r, err := b.buildPair(ex.Left, ex.Right)
		if err != nil {
			return nil, err
		}
		sp := splitNaturalJoin(l.rs, r.rs)
		kind := wJoin
		if len(sp.lShared) == 0 {
			kind = wProduct
		}
		n := b.node(kind, sp.rs)
		n.l, n.r = l, r
		n.lpos, n.rpos, n.extraIdx = sp.lShared, sp.rShared, sp.extraIdx
		n.splittable = l.splittable && r.splittable
		n.invariant = l.invariant && r.invariant
		return n, nil

	case ra.Union:
		l, r, err := b.buildSetOp(ex.Left, ex.Right, "∪")
		if err != nil {
			return nil, err
		}
		n := b.node(wUnion, schema.NewRelation("("+l.rs.Name+"∪"+r.rs.Name+")", l.rs.Attrs...))
		n.l, n.r = l, r
		n.splittable = l.splittable && r.splittable
		n.invariant = l.invariant && r.invariant
		return n, nil

	case ra.Intersect:
		l, r, err := b.buildSetOp(ex.Left, ex.Right, "∩")
		if err != nil {
			return nil, err
		}
		n := b.node(wIntersect, schema.NewRelation("("+l.rs.Name+"∩"+r.rs.Name+")", l.rs.Attrs...))
		n.l, n.r = l, r
		n.splittable = l.splittable && r.splittable
		n.invariant = l.invariant && r.invariant
		return n, nil

	case ra.Diff:
		l, r, err := b.buildSetOp(ex.Left, ex.Right, "−")
		if err != nil {
			return nil, err
		}
		n := b.node(wDiff, schema.NewRelation("("+l.rs.Name+"−"+r.rs.Name+")", l.rs.Attrs...))
		n.l, n.r = l, r
		// L − R splits iff R is the same in every world: the stable part of
		// L shrinks by a fixed set, and only L's delta varies.
		n.splittable = l.splittable && r.invariant
		n.invariant = l.invariant && r.invariant
		return n, nil

	case ra.Division:
		l, r, err := b.buildPair(ex.Left, ex.Right)
		if err != nil {
			return nil, err
		}
		sp, err := splitDivision(l.rs, r.rs)
		if err != nil {
			return nil, err
		}
		n := b.node(wDivision, sp.rs)
		n.l, n.r = l, r
		n.divPos, n.keepPos = sp.divPos, sp.keepPos
		// Division only splits trivially (both sides invariant).
		n.invariant = l.invariant && r.invariant
		n.splittable = n.invariant
		return n, nil

	case ra.Delta:
		rs, err := ex.OutSchema(b.d.Schema())
		if err != nil {
			return nil, err
		}
		n := b.node(wDelta, rs)
		for v := range b.d.ActiveDomain() {
			if v.IsConst() {
				n.adomC = append(n.adomC, v)
			} else {
				n.adomN = append(n.adomN, v)
			}
		}
		n.splittable = true
		n.invariant = len(n.adomN) == 0
		return n, nil

	default:
		return nil, fmt.Errorf("ra: unsupported expression %T", e)
	}
}

// wrapSelects stacks selection nodes over in, innermost predicate first
// (preds is collected outermost-first; conjunction order is immaterial).
func (b *worldBuilder) wrapSelects(in *wnode, preds []ra.Predicate) (*wnode, error) {
	node := in
	for i := len(preds) - 1; i >= 0; i-- {
		if _, isFalse := preds[i].(ra.False); isFalse {
			n := b.node(wEmpty, node.rs)
			n.splittable, n.invariant = true, true
			return n, nil
		}
		cp, err := compilePred(preds[i], node.rs)
		if err != nil {
			return nil, err
		}
		if cp == nil {
			continue // constant true
		}
		n := b.node(wSelect, node.rs)
		n.l, n.pred = node, cp
		n.splittable, n.invariant = node.splittable, node.invariant
		node = n
	}
	return node, nil
}

// buildSelectProduct is the world-plan side of the Product+Select→Join
// rule: cross-side equality conjuncts become a wJoin (whose deltas probe
// the indexed stable sides), the rest stay as filters above it.
func (b *worldBuilder) buildSelectProduct(preds []ra.Predicate, prod ra.Product) (*wnode, error) {
	l, r, err := b.buildPair(prod.Left, prod.Right)
	if err != nil {
		return nil, err
	}
	rs, err := productSchema(l.rs, r.rs)
	if err != nil {
		return nil, err
	}
	lpos, rpos, residual := partitionEquiJoin(preds, l.rs, r.rs)
	kind := wJoin
	if len(lpos) == 0 {
		kind = wProduct
	}
	n := b.node(kind, rs)
	n.l, n.r = l, r
	if kind == wJoin {
		n.lpos, n.rpos, n.extraIdx = lpos, rpos, allPositions(r.rs.Arity())
		preds = residual
	}
	n.splittable = l.splittable && r.splittable
	n.invariant = l.invariant && r.invariant
	return b.wrapSelects(n, preds)
}

func (b *worldBuilder) buildPair(le, re ra.Expr) (*wnode, *wnode, error) {
	l, err := b.build(le)
	if err != nil {
		return nil, nil, err
	}
	r, err := b.build(re)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func (b *worldBuilder) buildSetOp(le, re ra.Expr, op string) (*wnode, *wnode, error) {
	l, r, err := b.buildPair(le, re)
	if err != nil {
		return nil, nil, err
	}
	if l.rs.Arity() != r.rs.Arity() {
		return nil, nil, fmt.Errorf("ra: %s of arities %d and %d", op, l.rs.Arity(), r.rs.Arity())
	}
	return l, r, nil
}

// computeStable evaluates the world-invariant part of a node, child stable
// parts first.  For invariant nodes this is the full (only) result.  With a
// worker budget set (SetWorkers) the heavy shapes — join probes, σ/π maps,
// products — run partition-parallel over morsels of the left stable part;
// set-semantics merging keeps the result bit-identical to the serial loop.
func (wp *WorldPlan) computeStable(n *wnode) (*table.Relation, error) {
	var sl, sr *table.Relation
	var err error
	if n.l != nil {
		if sl, err = wp.stable(n.l); err != nil {
			return nil, err
		}
	}
	if n.r != nil {
		if sr, err = wp.stable(n.r); err != nil {
			return nil, err
		}
	}
	workers := int(wp.workers.Load())
	parallel := func() bool { return workers > 1 && sl.Len() >= parallelCutoff }
	switch n.kind {
	case wRel:
		return wp.d.Relation(n.relName).CompletePart(), nil
	case wEmpty:
		return table.NewRelation(n.rs), nil
	case wSelect:
		if parallel() {
			return parallelStableMap(sl, n.rs, workers, func(t table.Tuple, out *table.Relation) {
				if n.pred(t) {
					out.MustAdd(t)
				}
			})
		}
		return sl.Filter(n.pred), nil
	case wProject:
		if parallel() {
			return parallelStableMap(sl, n.rs, workers, func(t table.Tuple, out *table.Relation) {
				out.MustAdd(t.Project(n.projIdx...))
			})
		}
		out := table.NewRelation(n.rs)
		sl.Each(func(t table.Tuple) bool {
			out.MustAdd(t.Project(n.projIdx...))
			return true
		})
		return out, nil
	case wRename:
		return sl.WithSchema(n.rs), nil
	case wProduct:
		if parallel() {
			return parallelStableMap(sl, n.rs, workers, func(lt table.Tuple, out *table.Relation) {
				sr.Each(func(rt table.Tuple) bool {
					out.MustAdd(lt.Concat(rt))
					return true
				})
			})
		}
		out := table.NewRelation(n.rs)
		sl.Each(func(lt table.Tuple) bool {
			sr.Each(func(rt table.Tuple) bool {
				out.MustAdd(lt.Concat(rt))
				return true
			})
			return true
		})
		return out, nil
	case wJoin:
		if parallel() {
			return parallelStableJoin(sl, sr, n, workers)
		}
		out := table.NewRelation(n.rs)
		ix := sr.Index(n.rpos)
		var keyBuf []byte
		sl.Each(func(lt table.Tuple) bool {
			keyBuf = keyBuf[:0]
			for _, p := range n.lpos {
				keyBuf = lt[p].AppendKey(keyBuf)
			}
			joinProbe(out, ix, keyBuf, lt, n.extraIdx)
			return true
		})
		return out, nil
	case wUnion:
		out := table.NewRelation(n.rs)
		if err := out.AddAll(sl); err != nil {
			return nil, err
		}
		if err := out.AddAll(sr); err != nil {
			return nil, err
		}
		return out, nil
	case wIntersect:
		return sl.Filter(sr.Contains).WithSchema(n.rs), nil
	case wDiff:
		// Splittable (right invariant) or fully invariant: either way the
		// stable part is stable(L) − R.
		return sl.Filter(func(t table.Tuple) bool { return !sr.Contains(t) }).WithSchema(n.rs), nil
	case wDivision:
		// Only reached when invariant.
		return divide(sl, sr, n.divPos, n.keepPos, n.rs), nil
	case wDelta:
		out := table.NewRelation(n.rs)
		for _, c := range n.adomC {
			out.MustAdd(table.NewTuple(c, c))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("plan: unknown world operator %d", n.kind)
	}
}

// joinProbe emits index matches for one probe tuple into out.
func joinProbe(out *table.Relation, ix *table.Index, key []byte, lt table.Tuple, extraIdx []int) {
	for i := ix.Lookup(key); i != 0; {
		var rt table.Tuple
		rt, i = ix.At(i)
		combined := make(table.Tuple, len(lt), len(lt)+len(extraIdx))
		copy(combined, lt)
		for _, ri := range extraIdx {
			combined = append(combined, rt[ri])
		}
		out.MustAdd(combined)
	}
}

// divide is relational division over materialized relations — the single
// implementation shared by the one-shot physical operator and the stable
// and per-world paths of world plans.
func divide(l, r *table.Relation, divPos, keepPos []int, rs schema.Relation) *table.Relation {
	out := table.NewRelation(rs)
	type group struct {
		repr table.Tuple
		seen map[string]bool
	}
	groups := map[string]*group{}
	var keyBuf, divBuf []byte
	l.Each(func(t table.Tuple) bool {
		keyBuf = keyBuf[:0]
		for _, p := range keepPos {
			keyBuf = t[p].AppendKey(keyBuf)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{repr: t.Project(keepPos...), seen: map[string]bool{}}
			groups[string(keyBuf)] = g
		}
		divBuf = divBuf[:0]
		for _, p := range divPos {
			divBuf = t[p].AppendKey(divBuf)
		}
		if !g.seen[string(divBuf)] {
			g.seen[string(divBuf)] = true
		}
		return true
	})
	var divisorKeys []string
	r.Each(func(t table.Tuple) bool {
		divisorKeys = append(divisorKeys, string(t.AppendKey(keyBuf[:0])))
		return true
	})
	for _, g := range groups {
		all := true
		for _, dk := range divisorKeys {
			if !g.seen[dk] {
				all = false
				break
			}
		}
		if all {
			out.MustAdd(g.repr)
		}
	}
	return out
}
