package plan

import (
	"bytes"
	"fmt"

	"incdata/internal/table"
	"incdata/internal/valuation"
)

// Session is one enumeration worker's view of a WorldPlan: per-node
// scratch relations recycled from world to world, and the current
// valuation.  Sessions of the same WorldPlan share the stable results and
// their indexes (read-only); each worker must own its Session.
type Session struct {
	wp     *WorldPlan
	val    valuation.Valuation
	delta_ []*table.Relation // per-node delta scratch
	full_  []*table.Relation // per-node full-materialization scratch
	keyBuf []byte
	altBuf []byte
}

// NewSession creates an evaluation session for one enumeration worker.
func (wp *WorldPlan) NewSession() *Session {
	return &Session{
		wp:     wp,
		delta_: make([]*table.Relation, wp.n),
		full_:  make([]*table.Relation, wp.n),
	}
}

// Delta evaluates the world-dependent remainder of the answer under
// valuation v: Q(v(D)) = Stable() ∪ Delta(v).  Only valid when the plan is
// Splittable().  The result is scratch, valid until the next call on this
// session; callers clone (copy-on-write) to retain it.
func (s *Session) Delta(v valuation.Valuation) (*table.Relation, error) {
	if !s.wp.root.splittable {
		return nil, fmt.Errorf("plan: world plan for %s is not splittable", s.wp.out)
	}
	s.val = v
	return s.delta(s.wp.root)
}

// Answer evaluates the full answer Q(v(D)) for valuation v, for any plan.
// The result is scratch, valid until the next call on this session.
func (s *Session) Answer(v valuation.Valuation) (*table.Relation, error) {
	s.val = v
	return s.full(s.wp.root)
}

// scratchDelta returns the node's delta scratch relation, reset to empty.
func (s *Session) scratchDelta(n *wnode) *table.Relation {
	r := s.delta_[n.id]
	if r == nil {
		r = table.NewRelation(n.rs)
		s.delta_[n.id] = r
	} else {
		r.Reset(n.rs)
	}
	return r
}

func (s *Session) scratchFull(n *wnode) *table.Relation {
	r := s.full_[n.id]
	if r == nil {
		r = table.NewRelation(n.rs)
		s.full_[n.id] = r
	} else {
		r.Reset(n.rs)
	}
	return r
}

// delta computes the per-world remainder of a splittable node.
func (s *Session) delta(n *wnode) (*table.Relation, error) {
	if n.invariant {
		return s.scratchDelta(n), nil // empty
	}
	stable := func(c *wnode) (*table.Relation, error) { return s.wp.stable(c) }
	switch n.kind {
	case wRel:
		out := s.scratchDelta(n)
		sl, err := stable(n)
		if err != nil {
			return nil, err
		}
		for _, t := range n.nullTuples {
			nt := t.Map(s.val.ApplyValue)
			// Keep the delta minimal: a valuation can map a null tuple onto
			// a tuple the complete part already holds.
			if !sl.Contains(nt) {
				out.MustAdd(nt)
			}
		}
		return out, nil

	case wSelect:
		din, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		din.Each(func(t table.Tuple) bool {
			if n.pred(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case wProject:
		din, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		din.Each(func(t table.Tuple) bool {
			out.MustAdd(t.Project(n.projIdx...))
			return true
		})
		return out, nil

	case wRename:
		din, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		if err := out.AddAll(din); err != nil {
			return nil, err
		}
		return out, nil

	case wProduct:
		sl, err := stable(n.l)
		if err != nil {
			return nil, err
		}
		sr, err := stable(n.r)
		if err != nil {
			return nil, err
		}
		dl, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		dr, err := s.delta(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		// (dL × sR) ∪ (dL × dR) ∪ (sL × dR) — everything touching a delta.
		cross := func(a, b *table.Relation) {
			a.Each(func(lt table.Tuple) bool {
				b.Each(func(rt table.Tuple) bool {
					out.MustAdd(lt.Concat(rt))
					return true
				})
				return true
			})
		}
		cross(dl, sr)
		cross(dl, dr)
		cross(sl, dr)
		return out, nil

	case wJoin:
		return s.deltaJoin(n)

	case wUnion:
		dl, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		dr, err := s.delta(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		if err := out.AddAll(dl); err != nil {
			return nil, err
		}
		if err := out.AddAll(dr); err != nil {
			return nil, err
		}
		return out, nil

	case wIntersect:
		sl, err := stable(n.l)
		if err != nil {
			return nil, err
		}
		sr, err := stable(n.r)
		if err != nil {
			return nil, err
		}
		dl, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		dr, err := s.delta(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		// (fullL ∩ dR) ∪ (dL ∩ sR), iterating only the deltas.
		dr.Each(func(t table.Tuple) bool {
			if sl.Contains(t) || dl.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		dl.Each(func(t table.Tuple) bool {
			if sr.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case wDiff:
		// Right side is invariant (otherwise the node is not splittable).
		sr, err := stable(n.r)
		if err != nil {
			return nil, err
		}
		dl, err := s.delta(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		dl.Each(func(t table.Tuple) bool {
			if !sr.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case wDelta:
		sl, err := stable(n)
		if err != nil {
			return nil, err
		}
		out := s.scratchDelta(n)
		for _, nl := range n.adomN {
			c := s.val.ApplyValue(nl)
			t := table.NewTuple(c, c)
			if !sl.Contains(t) {
				out.MustAdd(t)
			}
		}
		return out, nil

	case wEmpty:
		return s.scratchDelta(n), nil

	default:
		return nil, fmt.Errorf("plan: delta of non-splittable operator %d", n.kind)
	}
}

// deltaJoin joins the per-world deltas against the persistently indexed
// stable sides: (dL ⋈ sR) ∪ (sL ⋈ dR) ∪ (dL ⋈ dR).
func (s *Session) deltaJoin(n *wnode) (*table.Relation, error) {
	sl, err := s.wp.stable(n.l)
	if err != nil {
		return nil, err
	}
	sr, err := s.wp.stable(n.r)
	if err != nil {
		return nil, err
	}
	dl, err := s.delta(n.l)
	if err != nil {
		return nil, err
	}
	dr, err := s.delta(n.r)
	if err != nil {
		return nil, err
	}
	out := s.scratchDelta(n)
	if dl.Len() > 0 {
		ixSR := sr.Index(n.rpos) // built once, cached on the stable relation
		dl.Each(func(lt table.Tuple) bool {
			key := s.keyBuf[:0]
			for _, p := range n.lpos {
				key = lt[p].AppendKey(key)
			}
			s.keyBuf = key
			joinProbe(out, ixSR, key, lt, n.extraIdx)
			return true
		})
	}
	if dr.Len() > 0 {
		ixSL := sl.Index(n.lpos)
		dr.Each(func(rt table.Tuple) bool {
			key := s.keyBuf[:0]
			for _, p := range n.rpos {
				key = rt[p].AppendKey(key)
			}
			s.keyBuf = key
			for i := ixSL.Lookup(key); i != 0; {
				var lt table.Tuple
				lt, i = ixSL.At(i)
				combined := make(table.Tuple, len(lt), len(lt)+len(n.extraIdx))
				copy(combined, lt)
				for _, ri := range n.extraIdx {
					combined = append(combined, rt[ri])
				}
				out.MustAdd(combined)
			}
			return true
		})
	}
	if dl.Len() > 0 && dr.Len() > 0 {
		// Both deltas are small; nested loop with key comparison.
		dl.Each(func(lt table.Tuple) bool {
			lkey := s.keyBuf[:0]
			for _, p := range n.lpos {
				lkey = lt[p].AppendKey(lkey)
			}
			s.keyBuf = lkey
			dr.Each(func(rt table.Tuple) bool {
				rkey := s.altBuf[:0]
				for _, p := range n.rpos {
					rkey = rt[p].AppendKey(rkey)
				}
				s.altBuf = rkey
				if bytes.Equal(lkey, rkey) {
					combined := make(table.Tuple, len(lt), len(lt)+len(n.extraIdx))
					copy(combined, lt)
					for _, ri := range n.extraIdx {
						combined = append(combined, rt[ri])
					}
					out.MustAdd(combined)
				}
				return true
			})
			return true
		})
	}
	return out, nil
}

// full materializes a node's complete per-world result, reusing stable
// parts wherever the tree allows.
func (s *Session) full(n *wnode) (*table.Relation, error) {
	if n.invariant {
		return s.wp.stable(n)
	}
	if n.splittable {
		st, err := s.wp.stable(n)
		if err != nil {
			return nil, err
		}
		d, err := s.delta(n)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		if err := out.AddAll(st); err != nil {
			return nil, err
		}
		if err := out.AddAll(d); err != nil {
			return nil, err
		}
		return out, nil
	}
	switch n.kind {
	case wSelect:
		fin, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		fin.Each(func(t table.Tuple) bool {
			if n.pred(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case wProject:
		fin, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		fin.Each(func(t table.Tuple) bool {
			out.MustAdd(t.Project(n.projIdx...))
			return true
		})
		return out, nil

	case wRename:
		fin, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		if err := out.AddAll(fin); err != nil {
			return nil, err
		}
		return out, nil

	case wProduct:
		fl, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		fr, err := s.full(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		fl.Each(func(lt table.Tuple) bool {
			fr.Each(func(rt table.Tuple) bool {
				out.MustAdd(lt.Concat(rt))
				return true
			})
			return true
		})
		return out, nil

	case wJoin:
		fl, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		fr, err := s.full(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		ix := fr.Index(n.rpos)
		fl.Each(func(lt table.Tuple) bool {
			key := s.keyBuf[:0]
			for _, p := range n.lpos {
				key = lt[p].AppendKey(key)
			}
			s.keyBuf = key
			joinProbe(out, ix, key, lt, n.extraIdx)
			return true
		})
		return out, nil

	case wUnion:
		fl, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		fr, err := s.full(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		if err := out.AddAll(fl); err != nil {
			return nil, err
		}
		if err := out.AddAll(fr); err != nil {
			return nil, err
		}
		return out, nil

	case wIntersect:
		fl, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		fr, err := s.full(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		fl.Each(func(t table.Tuple) bool {
			if fr.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case wDiff:
		fl, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		fr, err := s.full(n.r)
		if err != nil {
			return nil, err
		}
		out := s.scratchFull(n)
		fl.Each(func(t table.Tuple) bool {
			if !fr.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case wDivision:
		fl, err := s.full(n.l)
		if err != nil {
			return nil, err
		}
		fr, err := s.full(n.r)
		if err != nil {
			return nil, err
		}
		return divide(fl, fr, n.divPos, n.keepPos, n.rs), nil

	default:
		return nil, fmt.Errorf("plan: cannot materialize operator %d per world", n.kind)
	}
}
