package plan

import (
	"fmt"

	"incdata/internal/ra"
	"incdata/internal/schema"
)

// Logical rewrite rules.  Every rule maps an ra.Expr to an equivalent
// ra.Expr (same output attributes, same tuple set on every database), so
// each rule is independently testable against the naïve evaluator.  The
// driver Rewrite applies the rule set bottom-up to a fixpoint.
//
// The rules:
//
//   - FoldPredicates: constant-folds selection predicates (1=2 → false,
//     flattening ∧/∨, ¬¬p → p, absorbing true/false).
//   - SplitSelections: σ[p1∧p2](E) → σ[p1](σ[p2](E)), so each conjunct can
//     be pushed independently.
//   - PushSelections: moves σ through π, ρ (translating attribute names),
//     into the relevant side of × and ⋈, into both sides of ∪ (positional
//     translation), and into the left side of −, ∩ and ÷.
//   - PushProjections: composes π∘π, moves π through ρ and ∪, and narrows
//     the inputs of × and ⋈ to the attributes the output and the join
//     condition need.
//
// Product+Select→Join detection happens during physical compilation (see
// compile.go): a cascade of selections over a product whose conjuncts
// equate one attribute of each side becomes a hash equi-join.

// maxRewritePasses bounds the fixpoint iteration; every rule only moves
// operators downward or shrinks the tree, so this is a safety net, not a
// tuning knob.
const maxRewritePasses = 8

// Rewrite applies the logical rule set to a fixpoint and returns the
// optimized expression.  The expression must be well-formed against s.
func Rewrite(e ra.Expr, s *schema.Schema) (ra.Expr, error) {
	if _, err := e.OutSchema(s); err != nil {
		return nil, err
	}
	prev := e.String()
	for pass := 0; pass < maxRewritePasses; pass++ {
		next := FoldPredicates(e)
		next = SplitSelections(next)
		next, err := PushSelections(next, s)
		if err != nil {
			return nil, err
		}
		next, err = PushProjections(next, s)
		if err != nil {
			return nil, err
		}
		rendered := next.String()
		e = next
		if rendered == prev {
			break
		}
		prev = rendered
	}
	return e, nil
}

// mapChildren rebuilds an expression with f applied to every child.
func mapChildren(e ra.Expr, f func(ra.Expr) ra.Expr) ra.Expr {
	switch ex := e.(type) {
	case ra.Select:
		return ra.Select{Input: f(ex.Input), Pred: ex.Pred}
	case ra.Project:
		return ra.Project{Input: f(ex.Input), Attrs: ex.Attrs}
	case ra.Rename:
		return ra.Rename{Input: f(ex.Input), As: ex.As, Attrs: ex.Attrs}
	case ra.Product:
		return ra.Product{Left: f(ex.Left), Right: f(ex.Right)}
	case ra.Join:
		return ra.Join{Left: f(ex.Left), Right: f(ex.Right)}
	case ra.Union:
		return ra.Union{Left: f(ex.Left), Right: f(ex.Right)}
	case ra.Diff:
		return ra.Diff{Left: f(ex.Left), Right: f(ex.Right)}
	case ra.Intersect:
		return ra.Intersect{Left: f(ex.Left), Right: f(ex.Right)}
	case ra.Division:
		return ra.Division{Left: f(ex.Left), Right: f(ex.Right)}
	default:
		return e // Rel, Delta: no children
	}
}

// FoldPredicates constant-folds every selection predicate in the tree.
func FoldPredicates(e ra.Expr) ra.Expr {
	e = mapChildren(e, FoldPredicates)
	if sel, ok := e.(ra.Select); ok {
		p := foldPred(sel.Pred)
		if _, isTrue := p.(ra.True); isTrue {
			return sel.Input
		}
		return ra.Select{Input: sel.Input, Pred: p}
	}
	return e
}

// foldPred simplifies a predicate tree: constant comparisons are decided,
// ∧/∨ are flattened with true/false absorption, and ¬ is pushed into
// constants and double negations.
func foldPred(p ra.Predicate) ra.Predicate {
	switch pp := p.(type) {
	case ra.Cmp:
		if !pp.Left.IsAttr && !pp.Right.IsAttr {
			// Holds ignores the tuple when both operands are constants.
			if pp.Holds(nil, schema.Relation{}) {
				return ra.True{}
			}
			return ra.False{}
		}
		return pp
	case ra.And:
		var kept []ra.Predicate
		for _, q := range pp.Preds {
			fq := foldPred(q)
			switch fq := fq.(type) {
			case ra.True:
			case ra.False:
				return ra.False{}
			case ra.And:
				kept = append(kept, fq.Preds...)
			default:
				kept = append(kept, fq)
			}
		}
		switch len(kept) {
		case 0:
			return ra.True{}
		case 1:
			return kept[0]
		}
		return ra.And{Preds: kept}
	case ra.Or:
		var kept []ra.Predicate
		for _, q := range pp.Preds {
			fq := foldPred(q)
			switch fq := fq.(type) {
			case ra.False:
			case ra.True:
				return ra.True{}
			case ra.Or:
				kept = append(kept, fq.Preds...)
			default:
				kept = append(kept, fq)
			}
		}
		switch len(kept) {
		case 0:
			return ra.False{}
		case 1:
			return kept[0]
		}
		return ra.Or{Preds: kept}
	case ra.Not:
		inner := foldPred(pp.Pred)
		switch inner := inner.(type) {
		case ra.True:
			return ra.False{}
		case ra.False:
			return ra.True{}
		case ra.Not:
			return inner.Pred
		}
		return ra.Not{Pred: inner}
	default:
		return p
	}
}

// SplitSelections turns σ[p1∧…∧pn](E) into a cascade of single-conjunct
// selections so that PushSelections can route each conjunct independently.
func SplitSelections(e ra.Expr) ra.Expr {
	e = mapChildren(e, SplitSelections)
	if sel, ok := e.(ra.Select); ok {
		if and, ok := sel.Pred.(ra.And); ok && len(and.Preds) > 1 {
			out := sel.Input
			for i := len(and.Preds) - 1; i >= 0; i-- {
				out = ra.Select{Input: out, Pred: and.Preds[i]}
			}
			return out
		}
	}
	return e
}

// PushSelections pushes every selection as deep as its attributes allow.
func PushSelections(e ra.Expr, s *schema.Schema) (ra.Expr, error) {
	var rec func(e ra.Expr) (ra.Expr, error)
	rec = func(e ra.Expr) (ra.Expr, error) {
		var err error
		e = mapChildren(e, func(c ra.Expr) ra.Expr {
			if err != nil {
				return c
			}
			var nc ra.Expr
			nc, err = rec(c)
			if err != nil {
				return c
			}
			return nc
		})
		if err != nil {
			return nil, err
		}
		sel, ok := e.(ra.Select)
		if !ok {
			return e, nil
		}
		pushed, changed, err := pushOneSelect(sel, s)
		if err != nil {
			return nil, err
		}
		if !changed {
			return pushed, nil
		}
		// The selection moved down one level; recurse into the new tree so a
		// single pass pushes it as far as it can go.
		return rec(pushed)
	}
	return rec(e)
}

// pushOneSelect moves a single selection one operator downward when sound.
func pushOneSelect(sel ra.Select, s *schema.Schema) (ra.Expr, bool, error) {
	attrs := predAttrs(sel.Pred)
	switch in := sel.Input.(type) {
	case ra.Project:
		// p only references projected attributes, all of which exist below.
		return ra.Project{Input: ra.Select{Input: in.Input, Pred: sel.Pred}, Attrs: in.Attrs}, true, nil
	case ra.Rename:
		inSchema, err := in.Input.OutSchema(s)
		if err != nil {
			return nil, false, err
		}
		outSchema, err := in.OutSchema(s)
		if err != nil {
			return nil, false, err
		}
		p, err := translatePred(sel.Pred, outSchema, inSchema)
		if err != nil {
			return nil, false, err
		}
		return ra.Rename{Input: ra.Select{Input: in.Input, Pred: p}, As: in.As, Attrs: in.Attrs}, true, nil
	case ra.Product:
		side, err := routeToSide(attrs, in.Left, in.Right, s)
		if err != nil {
			return nil, false, err
		}
		switch side {
		case sideLeft:
			return ra.Product{Left: ra.Select{Input: in.Left, Pred: sel.Pred}, Right: in.Right}, true, nil
		case sideRight:
			return ra.Product{Left: in.Left, Right: ra.Select{Input: in.Right, Pred: sel.Pred}}, true, nil
		}
		return sel, false, nil
	case ra.Join:
		side, err := routeToSide(attrs, in.Left, in.Right, s)
		if err != nil {
			return nil, false, err
		}
		switch side {
		case sideLeft:
			return ra.Join{Left: ra.Select{Input: in.Left, Pred: sel.Pred}, Right: in.Right}, true, nil
		case sideRight:
			return ra.Join{Left: in.Left, Right: ra.Select{Input: in.Right, Pred: sel.Pred}}, true, nil
		}
		return sel, false, nil
	case ra.Union:
		ls, err := in.Left.OutSchema(s)
		if err != nil {
			return nil, false, err
		}
		rs, err := in.Right.OutSchema(s)
		if err != nil {
			return nil, false, err
		}
		// The union's schema is the left schema; translate positionally for
		// the right arm.
		rp, err := translatePred(sel.Pred, ls, rs)
		if err != nil {
			return nil, false, err
		}
		return ra.Union{
			Left:  ra.Select{Input: in.Left, Pred: sel.Pred},
			Right: ra.Select{Input: in.Right, Pred: rp},
		}, true, nil
	case ra.Diff:
		return ra.Diff{Left: ra.Select{Input: in.Left, Pred: sel.Pred}, Right: in.Right}, true, nil
	case ra.Intersect:
		return ra.Intersect{Left: ra.Select{Input: in.Left, Pred: sel.Pred}, Right: in.Right}, true, nil
	case ra.Division:
		// The division's output attributes are dividend attributes, so the
		// predicate applies verbatim to the dividend; it filters whole groups.
		return ra.Division{Left: ra.Select{Input: in.Left, Pred: sel.Pred}, Right: in.Right}, true, nil
	default:
		return sel, false, nil
	}
}

type side int

const (
	sideNone side = iota
	sideLeft
	sideRight
)

// routeToSide decides which side of a binary product/join covers all the
// predicate's attributes; shared join attributes prefer the left side.
func routeToSide(attrs []string, l, r ra.Expr, s *schema.Schema) (side, error) {
	ls, err := l.OutSchema(s)
	if err != nil {
		return sideNone, err
	}
	rs, err := r.OutSchema(s)
	if err != nil {
		return sideNone, err
	}
	inLeft, inRight := true, true
	for _, a := range attrs {
		if !ls.HasAttr(a) {
			inLeft = false
		}
		if !rs.HasAttr(a) {
			inRight = false
		}
	}
	switch {
	case inLeft:
		return sideLeft, nil
	case inRight:
		return sideRight, nil
	default:
		return sideNone, nil
	}
}

// PushProjections narrows inputs early: composes π∘π, moves π through ρ
// and ∪, and prunes the columns of × and ⋈ inputs to what the output and
// the join condition need.
func PushProjections(e ra.Expr, s *schema.Schema) (ra.Expr, error) {
	var err error
	rewrote := func(c ra.Expr) ra.Expr {
		if err != nil {
			return c
		}
		var nc ra.Expr
		nc, err = PushProjections(c, s)
		if err != nil {
			return c
		}
		return nc
	}
	e = mapChildren(e, rewrote)
	if err != nil {
		return nil, err
	}
	proj, ok := e.(ra.Project)
	if !ok {
		return e, nil
	}
	switch in := proj.Input.(type) {
	case ra.Project:
		return ra.Project{Input: in.Input, Attrs: proj.Attrs}, nil
	case ra.Rename:
		if len(in.Attrs) == 0 {
			// Name-only rename: project below it.
			return ra.Rename{Input: ra.Project{Input: in.Input, Attrs: proj.Attrs}, As: in.As}, nil
		}
		inSchema, err := in.Input.OutSchema(s)
		if err != nil {
			return nil, err
		}
		if len(proj.Attrs) == len(in.Attrs) {
			return e, nil // nothing to prune
		}
		// Translate the projected attributes back to pre-rename names and
		// rename only the surviving columns.
		orig := make([]string, len(proj.Attrs))
		for i, a := range proj.Attrs {
			pos := indexOf(in.Attrs, a)
			if pos < 0 {
				return nil, fmt.Errorf("plan: projection attribute %q not in rename %s", a, in)
			}
			orig[i] = inSchema.Attrs[pos]
		}
		return ra.Rename{Input: ra.Project{Input: in.Input, Attrs: orig}, As: in.As, Attrs: proj.Attrs}, nil
	case ra.Union:
		ls, err := in.Left.OutSchema(s)
		if err != nil {
			return nil, err
		}
		rs, err := in.Right.OutSchema(s)
		if err != nil {
			return nil, err
		}
		rAttrs := make([]string, len(proj.Attrs))
		for i, a := range proj.Attrs {
			pos := ls.AttrIndex(a)
			if pos < 0 {
				return nil, fmt.Errorf("plan: projection attribute %q not in %s", a, ls)
			}
			rAttrs[i] = rs.Attrs[pos]
		}
		return ra.Union{
			Left:  ra.Project{Input: in.Left, Attrs: proj.Attrs},
			Right: ra.Project{Input: in.Right, Attrs: rAttrs},
		}, nil
	case ra.Product:
		return pushProjectProduct(proj, in.Left, in.Right, nil, s, false)
	case ra.Join:
		ls, err := in.Left.OutSchema(s)
		if err != nil {
			return nil, err
		}
		rs, err := in.Right.OutSchema(s)
		if err != nil {
			return nil, err
		}
		var joinAttrs []string
		for _, a := range rs.Attrs {
			if ls.HasAttr(a) {
				joinAttrs = append(joinAttrs, a)
			}
		}
		return pushProjectProduct(proj, in.Left, in.Right, joinAttrs, s, true)
	default:
		return e, nil
	}
}

// pushProjectProduct narrows the two sides of a product or natural join to
// the attributes needed by the outer projection (plus the join attributes,
// which both sides must keep).  It leaves the expression unchanged when a
// side would lose nothing — or everything, since π onto zero attributes is
// not expressible and dropping a side would change cardinality.
func pushProjectProduct(proj ra.Project, l, r ra.Expr, joinAttrs []string, s *schema.Schema, isJoin bool) (ra.Expr, error) {
	ls, err := l.OutSchema(s)
	if err != nil {
		return nil, err
	}
	rs, err := r.OutSchema(s)
	if err != nil {
		return nil, err
	}
	need := map[string]bool{}
	for _, a := range proj.Attrs {
		need[a] = true
	}
	for _, a := range joinAttrs {
		need[a] = true
	}
	keep := func(sc schema.Relation) []string {
		var out []string
		for _, a := range sc.Attrs {
			if need[a] {
				out = append(out, a)
			}
		}
		return out
	}
	lKeep, rKeep := keep(ls), keep(rs)
	if len(lKeep) == 0 || len(rKeep) == 0 {
		return proj, nil
	}
	if len(lKeep) == ls.Arity() && len(rKeep) == rs.Arity() {
		return proj, nil
	}
	nl, nr := l, r
	if len(lKeep) < ls.Arity() {
		nl = ra.Project{Input: l, Attrs: lKeep}
	}
	if len(rKeep) < rs.Arity() {
		nr = ra.Project{Input: r, Attrs: rKeep}
	}
	if isJoin {
		return ra.Project{Input: ra.Join{Left: nl, Right: nr}, Attrs: proj.Attrs}, nil
	}
	return ra.Project{Input: ra.Product{Left: nl, Right: nr}, Attrs: proj.Attrs}, nil
}

func indexOf(attrs []string, a string) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}
