package plan

import (
	"fmt"

	"incdata/internal/col"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/value"
)

// Vectorized predicate compilation.  A vpred is the columnar counterpart
// of cpred: instead of a closure invoked once per tuple, it is invoked
// once per chunk and narrows a selection vector with tight per-column
// loops — comparisons run directly over the contiguous value slices of a
// col.Chunk, so the per-row cost is a struct compare, not a function
// call.
//
// Selection-vector contract: sel lists the live row indexes of the chunk
// in ascending order, with nil meaning "all rows".  A vpred always
// returns a buffer obtained from the pctx selection pool — never its
// input — and the caller releases it with putSel.  Combinators preserve
// ascending order (∧ narrows, ∨ merges sorted results, ¬ complements),
// so the columnar path visits surviving rows in exactly the input order.

// vpred narrows a selection vector over a chunk; nil means constant true.
type vpred func(c *pctx, ch *col.Chunk, sel []int32) []int32

// compileVPred resolves a predicate against the input schema into its
// vectorized form.  It accepts exactly the predicates compilePred
// accepts, so every compiled row predicate has a columnar twin.
func compileVPred(p ra.Predicate, rs schema.Relation) (vpred, error) {
	switch pp := p.(type) {
	case ra.True:
		return nil, nil
	case ra.False:
		return vconstPred(false), nil
	case ra.Cmp:
		return compileVCmp(pp, rs)
	case ra.And:
		kids := make([]vpred, 0, len(pp.Preds))
		for _, q := range pp.Preds {
			vq, err := compileVPred(q, rs)
			if err != nil {
				return nil, err
			}
			if vq != nil {
				kids = append(kids, vq)
			}
		}
		switch len(kids) {
		case 0:
			return nil, nil
		case 1:
			return kids[0], nil
		}
		return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
			cur := kids[0](c, ch, sel)
			for _, k := range kids[1:] {
				if len(cur) == 0 {
					return cur
				}
				next := k(c, ch, cur)
				c.putSel(cur)
				cur = next
			}
			return cur
		}, nil
	case ra.Or:
		kids := make([]vpred, len(pp.Preds))
		for i, q := range pp.Preds {
			vq, err := compileVPred(q, rs)
			if err != nil {
				return nil, err
			}
			if vq == nil {
				return nil, nil // a true disjunct makes the whole ∨ true
			}
			kids[i] = vq
		}
		if len(kids) == 0 {
			return vconstPred(false), nil
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
			acc := kids[0](c, ch, sel)
			for _, k := range kids[1:] {
				ks := k(c, ch, sel)
				merged := unionSorted(c.getSel()[:0], acc, ks)
				c.putSel(acc)
				c.putSel(ks)
				acc = merged
			}
			return acc
		}, nil
	case ra.Not:
		inner, err := compileVPred(pp.Pred, rs)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return vconstPred(false), nil
		}
		return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
			in := inner(c, ch, sel)
			out := complementSorted(c.getSel()[:0], ch.Rows, sel, in)
			c.putSel(in)
			return out
		}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported predicate %T", p)
	}
}

// vconstPred is the constant predicate: true copies the selection, false
// empties it.
func vconstPred(holds bool) vpred {
	return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
		out := c.getSel()[:0]
		if !holds {
			return out
		}
		if sel == nil {
			for i := 0; i < ch.Rows; i++ {
				out = append(out, int32(i))
			}
			return out
		}
		return append(out, sel...)
	}
}

// unionSorted merges two ascending selection vectors into dst (set
// union, ascending).
func unionSorted(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// complementSorted appends to dst the rows of the base selection (sel,
// nil = all rows of the chunk) that are absent from the ascending vector
// drop.
func complementSorted(dst []int32, rows int, sel, drop []int32) []int32 {
	j := 0
	if sel == nil {
		for i := int32(0); int(i) < rows; i++ {
			if j < len(drop) && drop[j] == i {
				j++
				continue
			}
			dst = append(dst, i)
		}
		return dst
	}
	for _, i := range sel {
		for j < len(drop) && drop[j] < i {
			j++
		}
		if j < len(drop) && drop[j] == i {
			j++
			continue
		}
		dst = append(dst, i)
	}
	return dst
}

// compileVCmp builds the vectorized comparison kernels: = and ≠ as
// direct struct compares against a constant or a second column, the
// order comparisons via value.Compare — all as straight loops with no
// per-row calls into compiled closures.
func compileVCmp(cm ra.Cmp, rs schema.Relation) (vpred, error) {
	resolve := func(o ra.Operand) (int, value.Value, error) {
		if !o.IsAttr {
			return -1, o.Const, nil
		}
		pos := rs.AttrIndex(o.Attr)
		if pos < 0 {
			return 0, value.Value{}, fmt.Errorf("ra: unknown attribute %q in %s", o.Attr, rs)
		}
		return pos, value.Value{}, nil
	}
	li, lc, err := resolve(cm.Left)
	if err != nil {
		return nil, err
	}
	ri, rc, err := resolve(cm.Right)
	if err != nil {
		return nil, err
	}
	switch cm.Op {
	case ra.EQ, ra.NEQ:
		neq := cm.Op == ra.NEQ
		switch {
		case li >= 0 && ri >= 0:
			return vcmpEqCols(li, ri, neq), nil
		case li >= 0:
			return vcmpEqConst(li, rc, neq), nil
		case ri >= 0:
			return vcmpEqConst(ri, lc, neq), nil
		default:
			return vconstPred((lc == rc) != neq), nil
		}
	case ra.LT, ra.LEQ, ra.GT, ra.GEQ:
		return vcmpOrder(cm.Op, li, lc, ri, rc), nil
	default:
		return nil, fmt.Errorf("plan: unsupported comparison operator %v", cm.Op)
	}
}

// vcmpEqConst keeps rows whose column equals (or, with neq, differs
// from) a constant.
func vcmpEqConst(pos int, con value.Value, neq bool) vpred {
	return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
		column := ch.Cols[pos]
		out := c.getSel()[:0]
		if sel == nil {
			for i, v := range column {
				if (v == con) != neq {
					out = append(out, int32(i))
				}
			}
			return out
		}
		for _, i := range sel {
			if (column[i] == con) != neq {
				out = append(out, i)
			}
		}
		return out
	}
}

// vcmpEqCols keeps rows where two columns agree (or, with neq, differ).
func vcmpEqCols(lpos, rpos int, neq bool) vpred {
	return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
		lcol, rcol := ch.Cols[lpos], ch.Cols[rpos]
		out := c.getSel()[:0]
		if sel == nil {
			for i := range lcol {
				if (lcol[i] == rcol[i]) != neq {
					out = append(out, int32(i))
				}
			}
			return out
		}
		for _, i := range sel {
			if (lcol[i] == rcol[i]) != neq {
				out = append(out, i)
			}
		}
		return out
	}
}

// vcmpOrder is the generic order-comparison kernel over value.Compare;
// negative positions select the constant operand.
func vcmpOrder(op ra.CmpOp, li int, lc value.Value, ri int, rc value.Value) vpred {
	keep := func(cmp int) bool {
		switch op {
		case ra.LT:
			return cmp < 0
		case ra.LEQ:
			return cmp <= 0
		case ra.GT:
			return cmp > 0
		default: // ra.GEQ
			return cmp >= 0
		}
	}
	return func(c *pctx, ch *col.Chunk, sel []int32) []int32 {
		var lcol, rcol []value.Value
		if li >= 0 {
			lcol = ch.Cols[li]
		}
		if ri >= 0 {
			rcol = ch.Cols[ri]
		}
		at := func(colv []value.Value, con value.Value, i int32) value.Value {
			if colv == nil {
				return con
			}
			return colv[i]
		}
		out := c.getSel()[:0]
		if sel == nil {
			for i := int32(0); int(i) < ch.Rows; i++ {
				if keep(value.Compare(at(lcol, lc, i), at(rcol, rc, i))) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if keep(value.Compare(at(lcol, lc, i), at(rcol, rc, i))) {
				out = append(out, i)
			}
		}
		return out
	}
}
