package plan

import (
	"sync"
	"sync/atomic"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// Morsel-driven parallel evaluation.  A plan is parallelized by splitting
// the base relation that drives its probe pipeline — the scan reached by
// walking the left spine of the operator tree — into morsels, and running
// the whole pipeline once per morsel on a pool of workers.  Each worker
// owns its pctx (scratch buffers, morsel assignment) and a private output
// relation; the locals are merged at the end, and set semantics make the
// merged result independent of scheduling, so the parallel answer is
// bit-identical to the serial one.
//
// Two morsel shapes exist:
//
//   - Partitioned join: when the lowest hash join's probe chain down to the
//     driving scan preserves tuple positions (only filters and renames),
//     both join sides are hash-partitioned on their key columns
//     (table.Partitioning).  Matching keys land in the same bucket, so each
//     worker joins probe bucket i against the per-partition index of build
//     bucket i — smaller indexes, no cross-partition probes.
//   - Round-robin morsels: otherwise the driving scan is split round-robin
//     and every other operator runs unchanged, probing the shared
//     whole-relation structures.
//
// Before workers start, a single-threaded prepare phase materializes every
// pipeline breaker off the driving spine (join build sides, diff/intersect
// key sets, product right sides) into a sharedEval, so that work happens
// once instead of once per worker.  After prepare, the shared state is
// read-only; the structures workers probe concurrently (relations, hash
// indexes, partitionings, key-set closures) are all immutable.

// parallelCutoff is the minimum driving-relation size for going parallel;
// below it, goroutine and merge overhead dominates.  It is a variable so
// tests can lower it to force the parallel paths on small corpora.
var parallelCutoff = 512

// morselFanout is the number of morsels (or partitions) per worker.  More
// morsels than workers smooths load imbalance from skewed buckets; too
// many shrinks each bucket below chunk size.
const morselFanout = 4

// sharedEval is the read-only state an evaluation's workers share: the
// prepare phase's materialized pipeline breakers and key-set probes, keyed
// by operator identity.
type sharedEval struct {
	mats     map[pnode]*table.Relation
	contains map[*pdiff]func([]byte) bool
	// codedContains holds the coded twins of contains, built during
	// prepare for diffs whose right side has a coded form.
	codedContains map[*pdiff]codedContains
}

// EvalWorkers evaluates the plan on a pool of workers (on the columnar
// path) and returns a result bit-identical to Eval's.  workers <= 1,
// plans without a parallelizable shape (no driving scan: division or Δ
// roots), and driving relations smaller than the parallel cutoff all
// fall back to the serial path.
func (p *Plan) EvalWorkers(db ra.DB, workers int) (*table.Relation, error) {
	return p.EvalWith(db, EvalConfig{Workers: workers, Columnar: true, Coded: true})
}

// EvalCertainWorkers is EvalWorkers with the null-stripping of
// certain-answer extraction fused into each worker's materialization; the
// result is bit-identical to EvalCertain's.
func (p *Plan) EvalCertainWorkers(db ra.DB, workers int) (*table.Relation, error) {
	return p.EvalCertainWith(db, EvalConfig{Workers: workers, Columnar: true, Coded: true})
}

// parallelizable reports whether any union branch of the plan has a
// driving scan over a relation big enough to warrant the worker pool.
func parallelizable(n pnode, db ra.DB) bool {
	if u, ok := n.(*punion); ok {
		return parallelizable(u.l, db) || parallelizable(u.r, db)
	}
	scan, _ := drivingChain(n)
	if scan == nil {
		return false
	}
	rel := db.Relation(scan.name)
	return rel != nil && rel.Len() >= parallelCutoff
}

// drivingChain walks the left spine of an operator tree to the scan that
// drives its probe pipeline, and returns the lowest hash join whose chain
// down to that scan preserves tuple positions (only filters and renames in
// between) — that join can be evaluated partition-wise.  A nil scan means
// the tree has no driving scan (division, Δ, empty).
func drivingChain(root pnode) (scan *pscan, partJoin *pjoin) {
	n := root
	var cand *pjoin
	clean := false
	for {
		switch x := n.(type) {
		case *pscan:
			if clean {
				return x, cand
			}
			return x, nil
		case *pfilter:
			n = x.in
		case *pschema:
			n = x.in
		case *pproject:
			// Projection changes tuple positions: joins above it cannot
			// partition the scan on their probe-key columns.
			cand, clean = nil, false
			n = x.in
		case *pjoin:
			cand, clean = x, true
			n = x.l
		case *pdiff:
			cand, clean = nil, false
			n = x.l
		case *pproduct:
			cand, clean = nil, false
			n = x.l
		default:
			return nil, nil
		}
	}
}

// runParallel evaluates root into out with a worker pool.  Union branches
// are evaluated one after the other (each internally parallel when its
// driving relation is big enough, serially otherwise), all sharing one
// prepare phase.
func runParallel(root pnode, db ra.DB, cfg EvalConfig, certainOnly bool, out *table.Relation) error {
	shared := &sharedEval{
		mats:          make(map[pnode]*table.Relation),
		contains:      make(map[*pdiff]func([]byte) bool),
		codedContains: make(map[*pdiff]codedContains),
	}
	c0 := newPctx(db, cfg, shared)

	branches := unionBranches(root, nil)
	type branchRun struct {
		root pnode
		scan *pscan
		join *pjoin
		rel  *table.Relation
	}
	runs := make([]branchRun, 0, len(branches))
	for _, b := range branches {
		br := branchRun{root: b}
		br.scan, br.join = drivingChain(b)
		if br.scan != nil {
			if br.rel = db.Relation(br.scan.name); br.rel == nil {
				return relationErr(br.scan.name)
			}
			if br.rel.Len() < parallelCutoff {
				br.scan, br.join = nil, nil // too small; evaluate serially
			}
		}
		if err := prepareShared(b, c0, br.join); err != nil {
			return err
		}
		runs = append(runs, br)
	}

	for _, br := range runs {
		if br.scan == nil {
			if err := materializeInto(br.root, c0, certainOnly, out); err != nil {
				return err
			}
			continue
		}
		if err := runBranch(br.root, br.scan, br.join, br.rel, db, shared, cfg, certainOnly, out); err != nil {
			return err
		}
	}
	return nil
}

// unionBranches flattens the punion tree at the root into its branches;
// every other node is a single branch.
func unionBranches(n pnode, acc []pnode) []pnode {
	if u, ok := n.(*punion); ok {
		return unionBranches(u.r, unionBranches(u.l, acc))
	}
	return append(acc, n)
}

// prepareShared materializes, single-threaded, every pipeline breaker off
// the driving spine into the shared cache: join build sides (with their
// whole-relation index, except for the partition-joined one, whose
// per-partition indexes replace it), product right sides, diff/intersect
// key-set probes, and division inputs.
func prepareShared(n pnode, c *pctx, partJoin *pjoin) error {
	switch x := n.(type) {
	case *pscan:
		if c.coded {
			// Build (and cache) the scan's encoding once, single-threaded,
			// instead of racing duplicate builds across workers.
			if rel := c.db.Relation(x.name); rel != nil {
				rel.Encoding(c.dict)
			}
		}
		return nil
	case *pfilter:
		return prepareShared(x.in, c, partJoin)
	case *pproject:
		return prepareShared(x.in, c, partJoin)
	case *pschema:
		return prepareShared(x.in, c, partJoin)
	case *punion:
		if err := prepareShared(x.l, c, partJoin); err != nil {
			return err
		}
		return prepareShared(x.r, c, partJoin)
	case *pjoin:
		if err := prepareShared(x.l, c, partJoin); err != nil {
			return err
		}
		rel, err := shareMat(x.r, c)
		if err != nil {
			return err
		}
		if x != partJoin {
			rel.Index(x.rpos) // built once here, probed by every worker
			if c.coded {
				if enc := rel.Encoding(c.dict); enc.Ok() {
					enc.Index(x.rpos)
				}
			}
		}
		return nil
	case *pproduct:
		if err := prepareShared(x.l, c, partJoin); err != nil {
			return err
		}
		_, err := shareMat(x.r, c)
		return err
	case *pdiff:
		if err := prepareShared(x.l, c, partJoin); err != nil {
			return err
		}
		f, err := x.containsFn(c)
		if err != nil {
			return err
		}
		c.shared.contains[x] = f
		if c.coded {
			cf, err := x.codedContainsFn(c)
			if err != nil {
				return err
			}
			if cf != nil {
				c.shared.codedContains[x] = cf
			}
		}
		return nil
	case *pdivision:
		if _, err := shareMat(x.l, c); err != nil {
			return err
		}
		_, err := shareMat(x.r, c)
		return err
	default:
		return nil
	}
}

// shareMat materializes a node into the shared cache (base relation scans
// are already shared storage and are returned as-is).
func shareMat(n pnode, c *pctx) (*table.Relation, error) {
	rel, err := materialize(n, c)
	if err != nil {
		return nil, err
	}
	if _, ok := n.(*pscan); !ok {
		c.shared.mats[n] = rel
	}
	return rel, nil
}

// runBranch evaluates one union branch with the worker pool.  With a
// partition join, probe and build sides are hash-partitioned on their key
// columns and bucket i probes the index of bucket i; otherwise the driving
// relation is split round-robin and workers probe the shared structures.
// Workers pull partitions from an atomic counter (morsel stealing) and
// collect into private relations, merged into out afterwards.
func runBranch(root pnode, scan *pscan, join *pjoin, rel *table.Relation, db ra.DB,
	shared *sharedEval, cfg EvalConfig, certainOnly bool, out *table.Relation) error {
	workers := cfg.Workers
	parts := workers * morselFanout
	var lp, rp *table.Partitioning
	if join != nil {
		buildRel, err := materialize(join.r, &pctx{db: db, shared: shared})
		if err != nil {
			return err
		}
		lp = rel.Partition(join.lpos, parts)
		rp = buildRel.Partition(join.rpos, parts)
	} else {
		lp = rel.Partition(nil, parts)
	}

	// Resolve the branch's coded eligibility once: per-partition coded
	// indexes are only worth building when the branch will run coded.
	codedBranch := false
	if join != nil {
		probe := newPctx(db, cfg, shared)
		codedBranch = codedEligible(root, probe)
	}

	locals := make([]*table.Relation, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := table.NewRelation(root.out())
			locals[w] = local
			c := newPctx(db, cfg, shared)
			c.morselFor = scan
			for {
				i := int(next.Add(1)) - 1
				if i >= parts {
					return
				}
				c.morsel = lp.Bucket(i)
				if len(c.morsel) == 0 {
					continue
				}
				if join != nil {
					c.partIdxFor, c.partIdx = join, rp.Index(i)
					if codedBranch {
						c.partCoded = rp.CodedIndex(i, c.dict)
					}
				}
				if err := materializeInto(root, c, certainOnly, local); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, local := range locals {
		if local == nil {
			continue
		}
		if err := out.AddAll(local); err != nil {
			return err
		}
	}
	return nil
}

// Partition-parallel stable evaluation for world plans (world.go): the
// stable part of a join is computed by partitioning both sides on their
// join keys, and map-shaped stable parts (σ, π, ×) by round-robin morsels.

// parallelStableJoin joins sl ⋈ sr partition-wise: both sides are
// hash-partitioned on their key columns and each worker joins bucket i
// against bucket i's per-partition index.
func parallelStableJoin(sl, sr *table.Relation, n *wnode, workers int) (*table.Relation, error) {
	parts := workers * morselFanout
	lp := sl.Partition(n.lpos, parts)
	rp := sr.Partition(n.rpos, parts)
	return mergeStableWorkers(n.rs, workers, parts, func(i int, local *table.Relation, keyBuf []byte) []byte {
		bucket := lp.Bucket(i)
		if len(bucket) == 0 {
			return keyBuf
		}
		ix := rp.Index(i)
		for _, lt := range bucket {
			keyBuf = keyBuf[:0]
			for _, p := range n.lpos {
				keyBuf = lt[p].AppendKey(keyBuf)
			}
			joinProbe(local, ix, keyBuf, lt, n.extraIdx)
		}
		return keyBuf
	})
}

// parallelStableMap evaluates a tuple-at-a-time stable part (σ, π, ×) over
// round-robin morsels of sl.
func parallelStableMap(sl *table.Relation, rs schema.Relation, workers int, per func(table.Tuple, *table.Relation)) (*table.Relation, error) {
	parts := workers * morselFanout
	mp := sl.Partition(nil, parts)
	return mergeStableWorkers(rs, workers, parts, func(i int, local *table.Relation, keyBuf []byte) []byte {
		for _, t := range mp.Bucket(i) {
			per(t, local)
		}
		return keyBuf
	})
}

// mergeStableWorkers runs the per-partition body on a worker pool feeding
// from an atomic partition counter and merges the per-worker locals.
func mergeStableWorkers(rs schema.Relation, workers, parts int,
	body func(i int, local *table.Relation, keyBuf []byte) []byte) (*table.Relation, error) {
	locals := make([]*table.Relation, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := table.NewRelation(rs)
			locals[w] = local
			var keyBuf []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= parts {
					return
				}
				keyBuf = body(i, local, keyBuf)
			}
		}(w)
	}
	wg.Wait()
	out := table.NewRelation(rs)
	for _, local := range locals {
		if local == nil {
			continue
		}
		if err := out.AddAll(local); err != nil {
			return nil, err
		}
	}
	return out, nil
}
