package plan

// Grace-style spill-to-disk hash join (the MemBudget path of EvalConfig).
//
// A budgeted join buffers its build side only while it fits the budget.
// The moment the running size estimate crosses it, the join switches to
// Grace partitioning: every build tuple (buffered and still arriving) is
// routed by a hash of its join key into one of spillFanout temporary
// partition files, the probe side is routed the same way with its own
// join key, and the join then runs partition by partition — each
// partition's build side is small enough to index in memory, and equal
// join keys always land in the same partition, so the union of the
// per-partition joins is exactly the unbounded join.  Duplicates are
// preserved on both sides just as the streaming path preserves them; set
// semantics are restored at materialization like everywhere else.
//
// Spill records are length-prefixed tuple keys: uvarint byte count, then
// the tuple's self-delimiting key encoding (table.Tuple.AppendKey),
// decoded back with table.DecodeTuple.  The spill directory lives under
// the OS temp dir and is removed when the join finishes, succeeds or not.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"incdata/internal/table"
)

// spillFanout is the number of Grace partitions.  With the build side
// hashed uniformly, each partition holds ~1/32 of it, so the in-memory
// index of one partition stays far under any budget that triggered the
// spill in the first place.
const spillFanout = 32

// tupleOverheadBytes is the assumed per-value in-memory overhead used by
// the build-side size estimate, on top of the encoded key bytes.
const tupleOverheadBytes = 16

// errStopStream distinguishes an emit-requested early stop from a real
// error inside stream callbacks that cannot return one directly.
var errStopStream = errors.New("plan: stream stopped")

// spillStream evaluates a budgeted hash join: resident build + normal
// probe while the build side fits c.budget, Grace partition spill once it
// does not.
func (n *pjoin) spillStream(c *pctx, emit func(table.Tuple) bool) error {
	var (
		buffered []table.Tuple // build tuples while under budget
		used     int64
		sp       *spillJoin
		inErr    error
	)
	defer func() {
		if sp != nil {
			sp.cleanup()
		}
	}()
	err := n.r.stream(c, func(rt table.Tuple) bool {
		if sp == nil {
			used += spillTupleBytes(c, rt)
			buffered = append(buffered, rt)
			if used <= c.budget {
				return true
			}
			// Budget crossed: open the spill, drain the buffer into the
			// build partitions, and stop buffering.
			var err error
			if sp, err = newSpillJoin(n.r.out().Arity(), n.l.out().Arity()); err != nil {
				inErr = err
				return false
			}
			for _, bt := range buffered {
				if err := sp.addBuild(c, bt, n.rpos); err != nil {
					inErr = err
					return false
				}
			}
			buffered = nil
			return true
		}
		if err := sp.addBuild(c, rt, n.rpos); err != nil {
			inErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = inErr
	}
	if err != nil {
		return err
	}

	if sp == nil {
		// The whole build side fit the budget: index it and probe as usual.
		rrel := table.NewRelation(n.r.out())
		if err := rrel.AddBatch(buffered); err != nil {
			return err
		}
		return n.probeWith(c, rrel.Index(n.rpos), emit)
	}

	// Route the probe side to its partitions, then join partition by
	// partition.
	inErr = nil
	err = n.l.stream(c, func(lt table.Tuple) bool {
		if err := sp.addProbe(c, lt, n.lpos); err != nil {
			inErr = err
			return false
		}
		return true
	})
	if err == nil {
		err = inErr
	}
	if err != nil {
		return err
	}
	if err := sp.finishWrites(); err != nil {
		return err
	}
	for p := 0; p < spillFanout; p++ {
		if err := n.joinPartition(c, sp, p, emit); err != nil {
			if err == errStopStream {
				return nil
			}
			return err
		}
	}
	return nil
}

// joinPartition loads one build partition into an in-memory relation,
// indexes it on the build join key, and probes it with the partition's
// probe tuples.  Returns errStopStream when emit asked to stop.
func (n *pjoin) joinPartition(c *pctx, sp *spillJoin, p int, emit func(table.Tuple) bool) error {
	build := table.NewRelation(n.r.out())
	if err := sp.build.each(p, sp.buildArity, func(t table.Tuple) error {
		return build.Add(t)
	}); err != nil {
		return err
	}
	if build.Len() == 0 {
		return nil // no build tuples: every probe in p misses
	}
	ix := build.Index(n.rpos)
	return sp.probe.each(p, sp.probeArity, func(lt table.Tuple) error {
		key := c.appendPosKey(lt, n.lpos)
		for i := ix.Lookup(key); i != 0; {
			var rt table.Tuple
			rt, i = ix.At(i)
			if !n.emitJoined(lt, rt, emit) {
				return errStopStream
			}
		}
		return nil
	})
}

// spillTupleBytes estimates the in-memory footprint of one build tuple:
// its encoded key bytes (proportional to the payload) plus a per-value
// overhead for headers and map bookkeeping.
func spillTupleBytes(c *pctx, t table.Tuple) int64 {
	k := t.AppendKey(c.keyBuf[:0])
	c.keyBuf = k
	return int64(len(k)) + int64(tupleOverheadBytes*(len(t)+1))
}

// spillJoin owns the temporary directory and the two partitioned spill
// sides of one Grace join.
type spillJoin struct {
	dir        string
	build      spillSide
	probe      spillSide
	buildArity int
	probeArity int
}

func newSpillJoin(buildArity, probeArity int) (*spillJoin, error) {
	dir, err := os.MkdirTemp("", "incdata-spill-")
	if err != nil {
		return nil, fmt.Errorf("plan: create spill dir: %w", err)
	}
	sp := &spillJoin{dir: dir, buildArity: buildArity, probeArity: probeArity}
	if err := sp.build.open(dir, "build"); err != nil {
		sp.cleanup()
		return nil, err
	}
	if err := sp.probe.open(dir, "probe"); err != nil {
		sp.cleanup()
		return nil, err
	}
	return sp, nil
}

// addBuild routes one build tuple to its partition by the hash of its
// join key (the keyPos positions).
func (sp *spillJoin) addBuild(c *pctx, t table.Tuple, keyPos []int) error {
	return sp.build.add(c, t, keyPos)
}

// addProbe routes one probe tuple by its own join key; equal keys hash to
// the same partition on both sides.
func (sp *spillJoin) addProbe(c *pctx, t table.Tuple, keyPos []int) error {
	return sp.probe.add(c, t, keyPos)
}

// finishWrites flushes both sides' buffered writers; after it, partitions
// may be read back.
func (sp *spillJoin) finishWrites() error {
	if err := sp.build.flush(); err != nil {
		return err
	}
	return sp.probe.flush()
}

// cleanup closes every partition file and removes the spill directory.
func (sp *spillJoin) cleanup() {
	sp.build.close()
	sp.probe.close()
	os.RemoveAll(sp.dir)
}

// spillSide is one side's spillFanout partition files with buffered
// writers.
type spillSide struct {
	files [spillFanout]*os.File
	w     [spillFanout]*bufio.Writer
}

func (s *spillSide) open(dir, name string) error {
	for p := 0; p < spillFanout; p++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%02d", name, p)))
		if err != nil {
			return fmt.Errorf("plan: create spill partition: %w", err)
		}
		s.files[p] = f
		s.w[p] = bufio.NewWriter(f)
	}
	return nil
}

// add appends one tuple record — uvarint length, then the tuple's key
// encoding — to the partition selected by the FNV-1a hash of the tuple's
// join key.
func (s *spillSide) add(c *pctx, t table.Tuple, keyPos []int) error {
	p := spillPartition(c.appendPosKey(t, keyPos))
	rec := t.AppendKey(c.keyBuf[:0])
	c.keyBuf = rec
	var lenBuf [binary.MaxVarintLen64]byte
	nn := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
	w := s.w[p]
	if _, err := w.Write(lenBuf[:nn]); err != nil {
		return fmt.Errorf("plan: write spill record: %w", err)
	}
	if _, err := w.Write(rec); err != nil {
		return fmt.Errorf("plan: write spill record: %w", err)
	}
	return nil
}

func (s *spillSide) close() {
	for p := 0; p < spillFanout; p++ {
		if s.files[p] != nil {
			s.files[p].Close()
		}
	}
}

func (s *spillSide) flush() error {
	for p := 0; p < spillFanout; p++ {
		if err := s.w[p].Flush(); err != nil {
			return fmt.Errorf("plan: flush spill partition: %w", err)
		}
	}
	return nil
}

// each decodes every tuple record of one partition in write order,
// preserving duplicates.  fn's error aborts the scan and is returned
// as-is (the join uses errStopStream for early stop).
func (s *spillSide) each(p, arity int, fn func(table.Tuple) error) error {
	f := s.files[p]
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("plan: rewind spill partition: %w", err)
	}
	r := bufio.NewReader(f)
	var rec []byte
	for {
		ln, err := binary.ReadUvarint(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("plan: read spill record length: %w", err)
		}
		if uint64(cap(rec)) < ln {
			rec = make([]byte, ln)
		}
		rec = rec[:ln]
		if _, err := io.ReadFull(r, rec); err != nil {
			return fmt.Errorf("plan: read spill record: %w", err)
		}
		t, rest, err := table.DecodeTuple(rec, arity)
		if err != nil {
			return fmt.Errorf("plan: decode spill record: %w", err)
		}
		if len(rest) != 0 {
			return fmt.Errorf("plan: spill record has %d trailing bytes", len(rest))
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// spillPartition maps a join key to its partition: FNV-1a over the key
// bytes, reduced mod spillFanout.  Both sides hash the same key bytes
// (value key encodings), so equal join keys always meet in one partition.
func spillPartition(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % spillFanout)
}
