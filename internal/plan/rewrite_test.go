package plan

import (
	"math/rand"
	"strings"
	"testing"

	"incdata/internal/ra"
)

// assertEquivalent asserts that a rewritten expression evaluates
// bit-identically to the original on several random incomplete databases.
func assertEquivalent(t *testing.T, orig, rewritten ra.Expr, label string) {
	t.Helper()
	for seed := int64(0); seed < 5; seed++ {
		d := fuzzDB(seed)
		want, err1 := ra.Eval(orig, d)
		got, err2 := ra.Eval(rewritten, d)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v\norig: %s\nrewritten: %s", label, err1, err2, orig, rewritten)
		}
		if err1 != nil {
			continue
		}
		if !got.Equal(want) {
			t.Fatalf("%s: rewrite changed the result on seed %d\norig:      %s = %s\nrewritten: %s = %s",
				label, seed, orig, want, rewritten, got)
		}
	}
}

func TestFoldPredicatesRule(t *testing.T) {
	q := ra.Select{
		Input: ra.Base("R"),
		Pred: ra.AllOf(
			ra.Eq(ra.LitInt(1), ra.LitInt(1)), // true: drops
			ra.AnyOf(
				ra.Eq(ra.LitInt(1), ra.LitInt(2)), // false: drops from ∨
				ra.Eq(ra.Attr("a"), ra.LitInt(3)),
			),
			ra.Negate(ra.Negate(ra.Eq(ra.Attr("b"), ra.Attr("a")))), // ¬¬p → p
		),
	}
	folded := FoldPredicates(q)
	rendered := folded.String()
	if strings.Contains(rendered, "1=1") || strings.Contains(rendered, "1=2") || strings.Contains(rendered, "¬") {
		t.Fatalf("constants or double negation survived folding: %s", rendered)
	}
	assertEquivalent(t, q, folded, "fold")

	alwaysFalse := ra.Select{Input: ra.Base("R"), Pred: ra.AllOf(
		ra.Eq(ra.Attr("a"), ra.LitInt(1)),
		ra.Eq(ra.LitInt(1), ra.LitInt(2)),
	)}
	folded = FoldPredicates(alwaysFalse)
	if _, ok := folded.(ra.Select); !ok {
		t.Fatalf("expected a Select, got %T", folded)
	}
	if _, ok := folded.(ra.Select).Pred.(ra.False); !ok {
		t.Fatalf("expected σ[false], got %s", folded)
	}
	assertEquivalent(t, alwaysFalse, folded, "fold-false")
}

func TestSplitSelectionsRule(t *testing.T) {
	q := ra.Select{Input: ra.Base("R"), Pred: ra.AllOf(
		ra.Eq(ra.Attr("a"), ra.LitInt(1)),
		ra.Eq(ra.Attr("b"), ra.LitInt(2)),
		ra.Neq(ra.Attr("a"), ra.Attr("b")),
	)}
	split := SplitSelections(q)
	// Expect a cascade of three single-conjunct selections.
	depth := 0
	cur := split
	for {
		sel, ok := cur.(ra.Select)
		if !ok {
			break
		}
		if _, isAnd := sel.Pred.(ra.And); isAnd {
			t.Fatalf("conjunction survived splitting: %s", split)
		}
		depth++
		cur = sel.Input
	}
	if depth != 3 {
		t.Fatalf("expected a cascade of 3 selections, got %d in %s", depth, split)
	}
	assertEquivalent(t, q, split, "split")
}

func TestPushSelectionsRule(t *testing.T) {
	s := fuzzSchema()
	cases := []struct {
		name string
		q    ra.Expr
		want string // substring of the rewritten rendering
	}{
		{
			name: "through-project",
			q: ra.Select{
				Input: ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
				Pred:  ra.Eq(ra.Attr("a"), ra.LitInt(1)),
			},
			want: "π[a](σ[a=1](R))",
		},
		{
			name: "through-rename",
			q: ra.Select{
				Input: ra.Rename{Input: ra.Base("R"), As: "X", Attrs: []string{"x", "y"}},
				Pred:  ra.Eq(ra.Attr("x"), ra.LitInt(1)),
			},
			want: "σ[a=1](R)",
		},
		{
			name: "into-join-side",
			q: ra.Select{
				Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
				Pred:  ra.Eq(ra.Attr("c"), ra.LitInt(2)),
			},
			want: "R ⋈ σ[c=2](S)",
		},
		{
			name: "into-union-both-arms",
			q: ra.Select{
				Input: ra.Union{Left: ra.Base("R"), Right: ra.Base("S")},
				Pred:  ra.Eq(ra.Attr("a"), ra.LitInt(1)),
			},
			want: "(σ[a=1](R) ∪ σ[b=1](S))",
		},
		{
			name: "into-diff-left",
			q: ra.Select{
				Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
				Pred:  ra.Eq(ra.Attr("a"), ra.LitInt(1)),
			},
			want: "(σ[a=1](R) − T)",
		},
	}
	for _, tc := range cases {
		pushed, err := PushSelections(tc.q, s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(pushed.String(), tc.want) {
			t.Fatalf("%s: rewrite %s does not contain %q", tc.name, pushed, tc.want)
		}
		assertEquivalent(t, tc.q, pushed, tc.name)
	}
}

func TestPushProjectionsRule(t *testing.T) {
	s := fuzzSchema()
	// π[a](R ⋈ S): the join needs b; S's c column can be pruned.
	q := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}}
	pushed, err := PushProjections(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pushed.String(), "π[b](S)") {
		t.Fatalf("expected S pruned to its join column: %s", pushed)
	}
	assertEquivalent(t, q, pushed, "project-join")

	// π∘π composes.
	pp := ra.Project{Input: ra.Project{Input: ra.Base("R"), Attrs: []string{"a", "b"}}, Attrs: []string{"b"}}
	pushed, err = PushProjections(pp, s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(pushed.String(), "π") != 1 {
		t.Fatalf("π∘π not composed: %s", pushed)
	}
	assertEquivalent(t, pp, pushed, "project-project")
}

func TestProductSelectBecomesJoin(t *testing.T) {
	// σ[a=xc](R × ρ[Z(xc,xd)]S) must compile to a hash equi-join.
	renamed := ra.Rename{Input: ra.Base("S"), As: "Z", Attrs: []string{"xc", "xd"}}
	q := ra.Select{
		Input: ra.Product{Left: ra.Base("R"), Right: renamed},
		Pred:  ra.Eq(ra.Attr("a"), ra.Attr("xc")),
	}
	p, err := Compile(q, fuzzSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Describe(), "hash-join") {
		t.Fatalf("expected a hash join in the physical plan:\n%s", p.Describe())
	}
	for seed := int64(0); seed < 5; seed++ {
		mustSame(t, q, fuzzDB(seed), "product-select-join")
	}
}

// TestRewriteFuzz checks the full rewrite pipeline for equivalence on
// random expressions (the physical layer is covered by the planned-eval
// fuzz; this isolates the logical rules).
func TestRewriteFuzz(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	s := fuzzSchema()
	for i := 0; i < trials; i++ {
		g := &exprGen{rnd: rand.New(rand.NewSource(int64(5000 + i))), s: s}
		q := g.expr(3)
		rw, err := Rewrite(q, s)
		if err != nil {
			t.Fatalf("rewrite failed for %s: %v", q, err)
		}
		assertEquivalent(t, q, rw, "rewrite-fuzz")
		// The rewrite must preserve the output schema's attributes.
		origSchema, err := q.OutSchema(s)
		if err != nil {
			t.Fatal(err)
		}
		rwSchema, err := rw.OutSchema(s)
		if err != nil {
			t.Fatalf("rewritten expression %s has invalid schema: %v", rw, err)
		}
		if origSchema.Arity() != rwSchema.Arity() {
			t.Fatalf("rewrite changed arity: %s vs %s", origSchema, rwSchema)
		}
	}
}

// TestSelectFalseCompilesEmpty pins the σ[false] → empty-relation path.
func TestSelectFalseCompilesEmpty(t *testing.T) {
	q := ra.Select{Input: ra.Base("R"), Pred: ra.Cmp{Left: ra.LitInt(1), Op: ra.EQ, Right: ra.LitInt(2)}}
	p, err := Compile(q, fuzzSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Describe(), "empty") {
		t.Fatalf("expected an empty operator:\n%s", p.Describe())
	}
	out, err := p.Eval(fuzzDB(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("σ[false] returned %d tuples", out.Len())
	}
}
