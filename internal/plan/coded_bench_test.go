package plan

import (
	"fmt"
	"testing"

	"incdata/internal/col"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Micro-benchmarks for the monomorphic coded kernels against their
// columnar (value.Value) counterparts, on the string-heavy shape the
// coded tier targets: predicate evaluation (BenchmarkCodedFilter) and
// the full hash-join probe pipeline (BenchmarkCodedJoinProbe).  CI runs
// them as a -benchtime 1x smoke; local runs with real benchtime report
// the ns/op and allocs/op the DESIGN.md coded section quotes.

// benchCodedChunk fills a string-valued columnar chunk and its coded
// twin (same rows, same order) against a fresh dictionary.
func benchCodedChunk(rows int) (*col.Chunk, *col.Coded, *table.Dict) {
	dict := table.NewDict()
	ch := col.New(2, rows)
	cd := col.NewCoded(2, rows)
	for i := 0; i < rows; i++ {
		a := value.String(fmt.Sprintf("key-%02d", i%64))
		b := value.Int(int64(i % 7))
		ch.AppendTuple(table.NewTuple(a, b))
		ca, _ := dict.Encode(a)
		cb, _ := dict.Encode(b)
		cd.Append(0, ca)
		cd.Append(1, cb)
		cd.EndRow()
	}
	return ch, cd, dict
}

// BenchmarkCodedFilter compares the vectorized value-typed predicate
// loop (vpred: per-row kind dispatch and string compares) against the
// monomorphic coded loop (kpred: raw u64 compares) over the same rows.
func BenchmarkCodedFilter(b *testing.B) {
	rs := benchSchema()
	pred := ra.And{Preds: []ra.Predicate{
		ra.Neq(ra.Attr("a"), ra.LitString("key-03")),
		ra.Lt(ra.Attr("b"), ra.LitInt(5)),
	}}
	vp, err := compileVPred(pred, rs)
	if err != nil {
		b.Fatal(err)
	}
	kp, err := compileKPred(pred, rs)
	if err != nil {
		b.Fatal(err)
	}
	ch, cd, dict := benchCodedChunk(chunkSize)

	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		c := &pctx{}
		kept := 0
		for i := 0; i < b.N; i++ {
			sel := vp(c, ch, nil)
			kept += len(sel)
			c.putSel(sel)
		}
		_ = kept
	})
	b.Run("coded", func(b *testing.B) {
		b.ReportAllocs()
		c := &pctx{coded: true, dict: dict}
		kept := 0
		for i := 0; i < b.N; i++ {
			sel := kp(c, cd, nil)
			kept += len(sel)
			c.putSel(sel)
		}
		_ = kept
	})
}

// BenchmarkCodedJoinProbe compares the full hash-join probe pipeline on
// string keys: the row path (binary key encoding per probe), the
// columnar path (column-wise gather, still binary keys) and the coded
// path (code-hash probes, dedup on code tuples, decode only at
// materialization).  The projected query is the set-semantics shape the
// coded gather targets — the join generates 16 duplicates per surviving
// row, and the code-tuple dedup drops them before any decode or binary
// key is paid.
func BenchmarkCodedJoinProbe(b *testing.B) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "a", "c"),
	)
	d := table.NewDatabase(s)
	for i := 0; i < 4096; i++ {
		k := value.String(fmt.Sprintf("key-%03d", i%256))
		d.MustAdd("R", table.NewTuple(k, value.Int(int64(i))))
		d.MustAdd("S", table.NewTuple(k, value.Int(int64(i/16))))
	}
	projected := ra.Project{
		Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
		Attrs: []string{"a", "c"},
	}
	// The distinct-heavy worst case for the dedup structure: every
	// generated row survives, so the code-tuple set pays without
	// dropping anything.
	distinct := ra.Project{
		Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
		Attrs: []string{"b", "c"},
	}

	for _, shape := range []struct {
		name string
		q    ra.Expr
	}{{"projected", projected}, {"distinct", distinct}} {
		p, err := Compile(shape.q, s)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			name string
			cfg  EvalConfig
		}{
			{"row", EvalConfig{}},
			{"columnar", EvalConfig{Columnar: true}},
			{"coded", EvalConfig{Columnar: true, Coded: true}},
		} {
			b.Run(shape.name+"/"+cfg.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.EvalWith(d, cfg.cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
