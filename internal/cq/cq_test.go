package cq

import (
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
)

func binSchema() *schema.Schema {
	return schema.MustNew(schema.WithArity("R", 2), schema.WithArity("S", 2))
}

func binDB(t *testing.T, rows ...[]string) *table.Database {
	t.Helper()
	d := table.NewDatabase(binSchema())
	for _, r := range rows {
		d.MustAddRow("R", r...)
	}
	return d
}

func TestValidateAndVariables(t *testing.T) {
	q := Query{Name: "q", Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	vars := q.Variables()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Variables = %v", vars)
	}
	if err := (Query{Head: []string{"x"}}).Validate(); err == nil {
		t.Error("empty body should be invalid")
	}
	if err := (Query{Head: []string{"z"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}}).Validate(); err == nil {
		t.Error("unsafe head variable should be invalid")
	}
	if !(Query{Body: []Atom{NewAtom("R", V("x"), V("x"))}}).Boolean() {
		t.Error("empty head should be Boolean")
	}
	if (Query{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("x"))}}).Boolean() {
		t.Error("nonempty head should not be Boolean")
	}
}

func TestEval(t *testing.T) {
	d := binDB(t, []string{"1", "2"}, []string{"2", "3"}, []string{"3", "⊥1"})
	// q(x,z) :- R(x,y), R(y,z)  — the length-2 path query.
	q := Query{Name: "path2", Head: []string{"x", "z"}, Body: []Atom{
		NewAtom("R", V("x"), V("y")),
		NewAtom("R", V("y"), V("z")),
	}}
	res, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"1", "3"}, {"2", "⊥1"}}
	if res.Len() != len(want) {
		t.Fatalf("got %v", res)
	}
	for _, w := range want {
		if !res.Contains(table.MustParseTuple(w...)) {
			t.Errorf("missing %v in %v", w, res)
		}
	}
	// Constants in atoms restrict matches.
	q2 := Query{Name: "from1", Head: []string{"y"}, Body: []Atom{NewAtom("R", CInt(1), V("y"))}}
	res2, _ := q2.Eval(d)
	if res2.Len() != 1 || !res2.Contains(table.MustParseTuple("2")) {
		t.Errorf("got %v", res2)
	}
	// Repeated variable forces equality (naïve identity on nulls too).
	q3 := Query{Name: "loop", Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("x"))}}
	res3, _ := q3.Eval(d)
	if res3.Len() != 0 {
		t.Errorf("no loops expected, got %v", res3)
	}
	d.MustAddRow("R", "⊥2", "⊥2")
	res3b, _ := q3.Eval(d)
	if res3b.Len() != 1 || !res3b.Contains(table.MustParseTuple("⊥2")) {
		t.Errorf("loop on ⊥2 expected, got %v", res3b)
	}
}

func TestEvalErrors(t *testing.T) {
	d := binDB(t, []string{"1", "2"})
	if _, err := (Query{Head: []string{"x"}, Body: []Atom{NewAtom("Nope", V("x"))}}).Eval(d); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := (Query{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"))}}).Eval(d); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := (Query{Head: []string{"x"}}).Eval(d); err == nil {
		t.Error("invalid query should error")
	}
	if _, err := (Query{Head: []string{"x"}}).EvalBool(d); err == nil {
		t.Error("invalid query should error in EvalBool")
	}
}

func TestEvalBool(t *testing.T) {
	d := binDB(t, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	// ∃x R(1,x) ∧ R(x,2): the Section 4 example; true on the tableau itself
	// by naïve evaluation (x = ⊥1).
	q := Query{Name: "qr", Body: []Atom{NewAtom("R", CInt(1), V("x")), NewAtom("R", V("x"), CInt(2))}}
	b, err := q.EvalBool(d)
	if err != nil || !b {
		t.Errorf("EvalBool = %v, %v", b, err)
	}
	certain, err := CertainBoolOWA(q, d)
	if err != nil || !certain {
		t.Error("certain answer under OWA should be true (duality)")
	}
	q2 := Query{Name: "no", Body: []Atom{NewAtom("R", CInt(7), V("x"))}}
	if b, _ := q2.EvalBool(d); b {
		t.Error("no match expected")
	}
}

func TestCanonicalDatabaseAndFromDatabase(t *testing.T) {
	s := binSchema()
	q := Query{Name: "q", Head: []string{"x"}, Body: []Atom{
		NewAtom("R", V("x"), V("y")),
		NewAtom("R", V("y"), CInt(2)),
	}}
	canon, frozen, err := q.CanonicalDatabase(s)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Relation("R").Len() != 2 {
		t.Errorf("canonical db = %v", canon)
	}
	if len(frozen) != 2 || !frozen["x"].IsNull() || !frozen["y"].IsNull() || frozen["x"] == frozen["y"] {
		t.Errorf("frozen = %v", frozen)
	}
	// Errors.
	if _, _, err := (Query{Body: []Atom{NewAtom("Nope", V("x"))}}).CanonicalDatabase(s); err == nil {
		t.Error("unknown relation in canonical database should error")
	}
	if _, _, err := (Query{Body: []Atom{NewAtom("R", V("x"))}}).CanonicalDatabase(s); err == nil {
		t.Error("arity mismatch in canonical database should error")
	}
	if _, _, err := (Query{Head: []string{"z"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}}).CanonicalDatabase(s); err == nil {
		t.Error("invalid query should error")
	}

	// FromDatabase on the paper's example produces QR = ∃x R(1,x) ∧ R(x,2).
	d := binDB(t, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	qd := FromDatabase(d)
	if !qd.Boolean() || len(qd.Body) != 2 {
		t.Errorf("FromDatabase = %v", qd)
	}
	if b, err := qd.EvalBool(d); err != nil || !b {
		t.Error("Q_D must hold on D itself (identity homomorphism)")
	}
	// Q_D holds exactly on databases admitting a homomorphism from D.
	w := binDB(t, []string{"1", "5"}, []string{"5", "2"})
	if b, _ := qd.EvalBool(w); !b {
		t.Error("Q_D should hold on a homomorphic image")
	}
	w2 := binDB(t, []string{"1", "5"})
	if b, _ := qd.EvalBool(w2); b {
		t.Error("Q_D should fail when no homomorphism exists")
	}
}

func TestContainment(t *testing.T) {
	s := binSchema()
	// path3 ⊆ path2 (a path of length 3 contains one of length 2 ... careful:
	// actually q1 ⊆ q2 where q1 asks for MORE structure).  Boolean versions:
	// q1 = ∃x,y,z,w R(x,y),R(y,z),R(z,w)  and  q2 = ∃x,y,z R(x,y),R(y,z).
	q1 := Query{Body: []Atom{NewAtom("R", V("x"), V("y")), NewAtom("R", V("y"), V("z")), NewAtom("R", V("z"), V("w"))}}
	q2 := Query{Body: []Atom{NewAtom("R", V("x"), V("y")), NewAtom("R", V("y"), V("z"))}}
	c, err := Contained(q1, q2, s)
	if err != nil || !c {
		t.Errorf("path3 ⊆ path2 expected, got %v %v", c, err)
	}
	c, err = Contained(q2, q1, s)
	if err != nil || c {
		t.Errorf("path2 ⊄ path3 expected, got %v %v", c, err)
	}
	// Same via the direct homomorphism route.
	hc, err := HomContained(q1, q2, s)
	if err != nil || !hc {
		t.Errorf("HomContained(path3,path2) = %v %v", hc, err)
	}
	hc, err = HomContained(q2, q1, s)
	if err != nil || hc {
		t.Errorf("HomContained(path2,path3) = %v %v", hc, err)
	}
	if _, err := HomContained(Query{Head: []string{"x"}, Body: q1.Body}, q2, s); err == nil {
		t.Error("HomContained requires Boolean queries")
	}

	// Non-Boolean containment: q(x) :- R(x,1) is contained in q(x) :- R(x,y).
	qa := Query{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), CInt(1))}}
	qb := Query{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}}
	if c, _ := Contained(qa, qb, s); !c {
		t.Error("qa ⊆ qb expected")
	}
	if c, _ := Contained(qb, qa, s); c {
		t.Error("qb ⊄ qa expected")
	}
	// Equivalence: renaming of variables.
	qc := Query{Head: []string{"u"}, Body: []Atom{NewAtom("R", V("u"), V("v"))}}
	if eq, _ := Equivalent(qb, qc, s); !eq {
		t.Error("variable renaming should be an equivalence")
	}
	if eq, _ := Equivalent(qa, qb, s); eq {
		t.Error("qa and qb are not equivalent")
	}
	// Head arity mismatch.
	if _, err := Contained(qa, q1, s); err == nil {
		t.Error("head arity mismatch should error")
	}
	// Error propagation.
	bad := Query{Head: []string{"x"}, Body: []Atom{NewAtom("Nope", V("x"))}}
	if _, err := Contained(bad, qb, s); err == nil {
		t.Error("bad q1 should error")
	}
	if _, err := Contained(qb, Query{Head: []string{"x"}}, s); err == nil {
		t.Error("bad q2 should error")
	}
}

func TestStrings(t *testing.T) {
	q := Query{Name: "ans", Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), CInt(2)), NewAtom("S", CString("a"), V("x"))}}
	if q.String() != "ans(x) :- R(x,2), S(a,x)" {
		t.Errorf("String = %q", q.String())
	}
	if (Query{Body: []Atom{NewAtom("R", V("x"), V("x"))}}).String() != "Q() :- R(x,x)" {
		t.Error("default name wrong")
	}
	u := UCQ{Disjuncts: []Query{q, q}}
	if !strings.Contains(u.String(), " ∪ ") {
		t.Error("UCQ string should join disjuncts")
	}
	if V("x").String() != "x" || CInt(3).String() != "3" || CString("a").String() != "a" {
		t.Error("term strings wrong")
	}
}

func TestUCQ(t *testing.T) {
	s := binSchema()
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("S", "3", "4")
	// u(x) :- R(x,y)  ∪  u(x) :- S(x,y)
	u := UCQ{Name: "u", Disjuncts: []Query{
		{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}},
		{Head: []string{"x"}, Body: []Atom{NewAtom("S", V("x"), V("y"))}},
	}}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.Boolean() {
		t.Error("u is not Boolean")
	}
	res, err := u.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || !res.Contains(table.MustParseTuple("1")) || !res.Contains(table.MustParseTuple("3")) {
		t.Errorf("UCQ eval = %v", res)
	}
	b, err := u.EvalBool(d)
	if err == nil && !b {
		t.Error("Boolean eval of nonempty answer should be true")
	}
	// Boolean UCQ.
	ub := UCQ{Disjuncts: []Query{
		{Body: []Atom{NewAtom("R", CInt(9), V("y"))}},
		{Body: []Atom{NewAtom("S", CInt(3), V("y"))}},
	}}
	if !ub.Boolean() {
		t.Error("ub should be Boolean")
	}
	if b, _ := ub.EvalBool(d); !b {
		t.Error("second disjunct matches")
	}
	ubFalse := UCQ{Disjuncts: []Query{{Body: []Atom{NewAtom("R", CInt(9), V("y"))}}}}
	if b, _ := ubFalse.EvalBool(d); b {
		t.Error("no disjunct matches")
	}
	// Validation errors.
	if err := (UCQ{}).Validate(); err == nil {
		t.Error("empty UCQ should be invalid")
	}
	mixed := UCQ{Disjuncts: []Query{
		{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}},
		{Body: []Atom{NewAtom("R", V("x"), V("y"))}},
	}}
	if err := mixed.Validate(); err == nil {
		t.Error("mixed head arities should be invalid")
	}
	if _, err := (UCQ{Disjuncts: []Query{{Head: []string{"x"}}}}).Eval(d); err == nil {
		t.Error("invalid disjunct should error in Eval")
	}
	if _, err := (UCQ{Disjuncts: []Query{{Head: []string{"x"}}}}).EvalBool(d); err == nil {
		t.Error("invalid disjunct should error in EvalBool")
	}
	if _, err := (UCQ{Disjuncts: []Query{{Head: []string{"x"}, Body: []Atom{NewAtom("Nope", V("x"))}}}}).Eval(d); err == nil {
		t.Error("unknown relation should error in UCQ eval")
	}
	// Single.
	if len(Single(u.Disjuncts[0]).Disjuncts) != 1 {
		t.Error("Single wrong")
	}
}

func TestContainedUCQ(t *testing.T) {
	s := binSchema()
	rOnly := UCQ{Disjuncts: []Query{{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}}}}
	rOrS := UCQ{Disjuncts: []Query{
		{Head: []string{"x"}, Body: []Atom{NewAtom("R", V("x"), V("y"))}},
		{Head: []string{"x"}, Body: []Atom{NewAtom("S", V("x"), V("y"))}},
	}}
	if c, err := ContainedUCQ(rOnly, rOrS, s); err != nil || !c {
		t.Errorf("R ⊆ R∪S expected: %v %v", c, err)
	}
	if c, _ := ContainedUCQ(rOrS, rOnly, s); c {
		t.Error("R∪S ⊄ R expected")
	}
	if _, err := ContainedUCQ(UCQ{}, rOnly, s); err == nil {
		t.Error("invalid UCQ should error")
	}
	if _, err := ContainedUCQ(rOnly, UCQ{}, s); err == nil {
		t.Error("invalid UCQ should error")
	}
	bad := UCQ{Disjuncts: []Query{{Head: []string{"x"}, Body: []Atom{NewAtom("Nope", V("x"))}}}}
	if _, err := ContainedUCQ(bad, rOnly, s); err == nil {
		t.Error("bad relation should error")
	}
}

// Cross-check of the duality: certain(Q,D) under OWA computed (a) by naïve
// evaluation, (b) by containment Q_D ⊆ Q, coincide on a family of instances.
func TestDualityCrossCheck(t *testing.T) {
	s := binSchema()
	queries := []Query{
		{Body: []Atom{NewAtom("R", V("x"), V("y")), NewAtom("R", V("y"), V("z"))}},
		{Body: []Atom{NewAtom("R", V("x"), V("x"))}},
		{Body: []Atom{NewAtom("R", CInt(1), V("y"))}},
	}
	dbs := []*table.Database{
		binDB(t, []string{"1", "⊥1"}, []string{"⊥1", "2"}),
		binDB(t, []string{"1", "2"}),
		binDB(t, []string{"⊥1", "⊥1"}),
		binDB(t, []string{"⊥1", "⊥2"}),
	}
	for _, q := range queries {
		for _, d := range dbs {
			naive, err := q.EvalBool(d)
			if err != nil {
				t.Fatal(err)
			}
			qd := FromDatabase(d)
			viaContainment, err := Contained(qd, q, s)
			if err != nil {
				t.Fatal(err)
			}
			if naive != viaContainment {
				t.Errorf("duality mismatch for %s on %v: naive=%v containment=%v", q, d, naive, viaContainment)
			}
		}
	}
}

func TestTableauOf(t *testing.T) {
	s := binSchema()
	q := Query{Body: []Atom{NewAtom("R", V("x"), V("y"))}}
	d, frozen, err := TableauOf(q, s)
	if err != nil || d.Relation("R").Len() != 1 || len(frozen) != 2 {
		t.Errorf("TableauOf = %v %v %v", d, frozen, err)
	}
}

func TestOutSchema(t *testing.T) {
	q := Query{Name: "ans", Head: []string{"a", "b"}, Body: []Atom{NewAtom("R", V("a"), V("b"))}}
	rs := q.OutSchema()
	if rs.Name != "ans" || rs.Arity() != 2 {
		t.Errorf("OutSchema = %v", rs)
	}
	anon := Query{Body: []Atom{NewAtom("R", V("a"), V("b"))}}
	if anon.OutSchema().Name != "Q" {
		t.Error("anonymous query should get default name")
	}
}
