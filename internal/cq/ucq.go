package cq

import (
	"fmt"
	"strings"

	"incdata/internal/schema"
	"incdata/internal/table"
)

// UCQ is a union of conjunctive queries: all disjuncts must have the same
// head arity.  UCQs are exactly the positive relational algebra / the
// existential positive fragment; naïve evaluation computes their certain
// answers under both OWA and CWA (equation (4) of the paper).
type UCQ struct {
	Name      string
	Disjuncts []Query
}

// Validate checks that the UCQ is nonempty and that all disjuncts are safe
// and share the head arity.
func (u UCQ) Validate() error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("cq: empty UCQ %q", u.Name)
	}
	arity := len(u.Disjuncts[0].Head)
	for _, q := range u.Disjuncts {
		if err := q.Validate(); err != nil {
			return err
		}
		if len(q.Head) != arity {
			return fmt.Errorf("cq: UCQ %q mixes head arities %d and %d", u.Name, arity, len(q.Head))
		}
	}
	return nil
}

// Boolean reports whether the UCQ is Boolean (head arity zero).
func (u UCQ) Boolean() bool {
	return len(u.Disjuncts) > 0 && u.Disjuncts[0].Boolean()
}

// String renders the UCQ as the disjuncts joined by " ∪ ".
func (u UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, "  ∪  ")
}

// Eval evaluates the UCQ by naïve evaluation (union of the disjuncts'
// answers).
func (u UCQ) Eval(d *table.Database) (*table.Relation, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	name := u.Name
	if name == "" {
		name = "Q"
	}
	var out *table.Relation
	for _, q := range u.Disjuncts {
		r, err := q.Eval(d)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.NewRelation(schema.NewRelation(name, r.Schema().Attrs...))
		}
		if err := out.AddAll(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EvalBool evaluates a Boolean UCQ.
func (u UCQ) EvalBool(d *table.Database) (bool, error) {
	if err := u.Validate(); err != nil {
		return false, err
	}
	for _, q := range u.Disjuncts {
		b, err := q.EvalBool(d)
		if err != nil {
			return false, err
		}
		if b {
			return true, nil
		}
	}
	return false, nil
}

// ContainedUCQ reports whether u1 ⊆ u2: every disjunct of u1 must be
// contained in some disjunct of u2 (the Sagiv–Yannakakis criterion, sound
// and complete for UCQs).
func ContainedUCQ(u1, u2 UCQ, s *schema.Schema) (bool, error) {
	if err := u1.Validate(); err != nil {
		return false, err
	}
	if err := u2.Validate(); err != nil {
		return false, err
	}
	for _, q1 := range u1.Disjuncts {
		contained := false
		for _, q2 := range u2.Disjuncts {
			c, err := Contained(q1, q2, s)
			if err != nil {
				return false, err
			}
			if c {
				contained = true
				break
			}
		}
		if !contained {
			return false, nil
		}
	}
	return true, nil
}

// Single wraps a conjunctive query as a one-disjunct UCQ.
func Single(q Query) UCQ { return UCQ{Name: q.Name, Disjuncts: []Query{q}} }
