// Package cq implements conjunctive queries (select-project-join queries,
// the ∃,∧ fragment of FO), unions of conjunctive queries, their evaluation
// by naïve evaluation, and query containment via the Chandra–Merlin
// homomorphism criterion.
//
// The package realises the duality of Section 4 of the paper: an incomplete
// database D is the tableau of a Boolean conjunctive query Q_D with
// ModC(Q_D) = [[D]]owa, certain answers of Boolean CQs under OWA reduce to
// containment, and containment in turn reduces to evaluating the containing
// query on the tableau of the contained one.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"incdata/internal/hom"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Term is a variable or constant in a conjunctive query.
type Term struct {
	Var   string
	Const value.Value
	IsVar bool
}

// V builds a variable term.
func V(name string) Term { return Term{Var: name, IsVar: true} }

// C builds a constant term.
func C(v value.Value) Term { return Term{Const: v} }

// CInt builds an integer-constant term.
func CInt(i int64) Term { return C(value.Int(i)) }

// CString builds a string-constant term.
func CString(s string) Term { return C(value.String(s)) }

// String renders the term.
func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Const.String()
}

// Atom is a relational atom R(t1,...,tk) in the query body.
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, args ...Term) Atom { return Atom{Rel: rel, Args: args} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Query is a conjunctive query with head variables Head (the empty head
// makes it a Boolean query) and body atoms Body.  Every head variable must
// occur in the body (safety).
type Query struct {
	Name string
	Head []string
	Body []Atom
}

// Boolean reports whether the query has an empty head.
func (q Query) Boolean() bool { return len(q.Head) == 0 }

// Validate checks safety (head variables occur in the body) and that the
// body is nonempty.
func (q Query) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: query %q has an empty body", q.Name)
	}
	bodyVars := map[string]bool{}
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, h := range q.Head {
		if !bodyVars[h] {
			return fmt.Errorf("cq: head variable %q of %q does not occur in the body", h, q.Name)
		}
	}
	return nil
}

// Variables returns all variables of the query, sorted.
func (q Query) Variables() []string {
	set := map[string]bool{}
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar {
				set[t.Var] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the query in rule form: Name(x,y) :- R(x,z), S(z,y).
func (q Query) String() string {
	name := q.Name
	if name == "" {
		name = "Q"
	}
	parts := make([]string, len(q.Body))
	for i, a := range q.Body {
		parts[i] = a.String()
	}
	return name + "(" + strings.Join(q.Head, ",") + ") :- " + strings.Join(parts, ", ")
}

// OutSchema is the schema of the query's answer relation.
func (q Query) OutSchema() schema.Relation {
	name := q.Name
	if name == "" {
		name = "Q"
	}
	return schema.NewRelation(name, q.Head...)
}

// Eval evaluates the query on a database by naïve evaluation: variables
// range over values (constants and nulls alike), atoms are matched with
// marked-null identity.  The result may contain nulls.
func (q Query) Eval(d *table.Database) (*table.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := table.NewRelation(q.OutSchema())
	err := q.matches(d, func(env map[string]value.Value) bool {
		t := make(table.Tuple, len(q.Head))
		for i, h := range q.Head {
			t[i] = env[h]
		}
		out.MustAdd(t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBool evaluates a Boolean query: true iff the body has at least one
// match.
func (q Query) EvalBool(d *table.Database) (bool, error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	found := false
	err := q.matches(d, func(map[string]value.Value) bool {
		found = true
		return false
	})
	return found, err
}

// matches enumerates homomorphic matches of the body into d, calling fn
// with each satisfying assignment; fn returns false to stop.
func (q Query) matches(d *table.Database, fn func(map[string]value.Value) bool) error {
	// Order atoms as given; simple backtracking with early unification.
	for _, a := range q.Body {
		rel := d.Relation(a.Rel)
		if rel == nil {
			return fmt.Errorf("cq: unknown relation %q", a.Rel)
		}
		if rel.Arity() != len(a.Args) {
			return fmt.Errorf("cq: atom %s has %d arguments, relation has arity %d", a.Rel, len(a.Args), rel.Arity())
		}
	}
	env := map[string]value.Value{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(q.Body) {
			return fn(env)
		}
		a := q.Body[i]
		rel := d.Relation(a.Rel)
		cont := true
		rel.Each(func(t table.Tuple) bool {
			// Try to unify the atom with the tuple.
			var newlyBound []string
			ok := true
			for j, arg := range a.Args {
				if arg.IsVar {
					if bound, exists := env[arg.Var]; exists {
						if bound != t[j] {
							ok = false
							break
						}
					} else {
						env[arg.Var] = t[j]
						newlyBound = append(newlyBound, arg.Var)
					}
				} else if arg.Const != t[j] {
					ok = false
					break
				}
			}
			if ok {
				if !rec(i + 1) {
					cont = false
				}
			}
			for _, v := range newlyBound {
				delete(env, v)
			}
			return cont
		})
		return cont
	}
	rec(0)
	return nil
}

// freezeCounter gives fresh null ids for canonical databases deterministic
// within a single call.
//
// CanonicalDatabase returns the canonical database (tableau) of the query
// over the given schema: each variable becomes a distinct marked null, each
// atom becomes a tuple.  Head variables are additionally reported so that
// containment checks can find the frozen head.
func (q Query) CanonicalDatabase(s *schema.Schema) (*table.Database, map[string]value.Value, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	d := table.NewDatabase(s)
	frozen := map[string]value.Value{}
	next := uint64(1)
	// Deterministic variable order.
	for _, v := range q.Variables() {
		frozen[v] = value.Null(next)
		next++
	}
	for _, a := range q.Body {
		rs, ok := s.Relation(a.Rel)
		if !ok {
			return nil, nil, fmt.Errorf("cq: unknown relation %q", a.Rel)
		}
		if rs.Arity() != len(a.Args) {
			return nil, nil, fmt.Errorf("cq: atom %s arity mismatch", a.Rel)
		}
		t := make(table.Tuple, len(a.Args))
		for i, arg := range a.Args {
			if arg.IsVar {
				t[i] = frozen[arg.Var]
			} else {
				t[i] = arg.Const
			}
		}
		if err := d.Add(a.Rel, t); err != nil {
			return nil, nil, err
		}
	}
	return d, frozen, nil
}

// FromDatabase is the other direction of the duality of Section 4: it views
// an incomplete database D as the Boolean conjunctive query Q_D whose
// tableau is D (nulls become variables).  ModC(Q_D) = [[D]]owa.
func FromDatabase(d *table.Database) Query {
	var body []Atom
	varOf := func(v value.Value) Term {
		if v.IsNull() {
			return V(fmt.Sprintf("x%d", v.NullID()))
		}
		return C(v)
	}
	for _, relName := range d.RelationNames() {
		for _, t := range d.Relation(relName).Tuples() {
			args := make([]Term, len(t))
			for i, v := range t {
				args[i] = varOf(v)
			}
			body = append(body, NewAtom(relName, args...))
		}
	}
	return Query{Name: "Q_D", Body: body}
}

// Contained reports whether q1 ⊆ q2 over the given schema, using the
// Chandra–Merlin theorem: q1 ⊆ q2 iff q2 has a match on the canonical
// database of q1 that maps q2's head to q1's frozen head.
func Contained(q1, q2 Query, s *schema.Schema) (bool, error) {
	if len(q1.Head) != len(q2.Head) {
		return false, fmt.Errorf("cq: containment of queries with different head arities")
	}
	canon, frozen, err := q1.CanonicalDatabase(s)
	if err != nil {
		return false, err
	}
	if err := q2.Validate(); err != nil {
		return false, err
	}
	// Find a match of q2 on canon whose head equals the frozen head of q1.
	want := make(table.Tuple, len(q1.Head))
	for i, h := range q1.Head {
		fv, ok := frozen[h]
		if !ok {
			return false, fmt.Errorf("cq: head variable %q not frozen", h)
		}
		want[i] = fv
	}
	found := false
	err = q2.matches(canon, func(env map[string]value.Value) bool {
		for i, h := range q2.Head {
			if env[h] != want[i] {
				return true // keep searching
			}
		}
		found = true
		return false
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// Equivalent reports whether q1 and q2 are equivalent (mutually contained).
func Equivalent(q1, q2 Query, s *schema.Schema) (bool, error) {
	c12, err := Contained(q1, q2, s)
	if err != nil {
		return false, err
	}
	if !c12 {
		return false, nil
	}
	return Contained(q2, q1, s)
}

// CertainBoolOWA computes the certain answer of a Boolean conjunctive query
// under OWA using the duality of Section 4: certain(Q,D) is true iff Q_D ⊆ Q
// iff D ⊨ Q (naïve evaluation).  The function evaluates D ⊨ Q directly.
func CertainBoolOWA(q Query, d *table.Database) (bool, error) {
	return q.EvalBool(d)
}

// TableauOf exposes the canonical-database construction for the hom-based
// route: q1 ⊆ q2 iff there is a homomorphism from the tableau of q2 to the
// tableau of q1 preserving the head.  It is used by tests to cross-check
// Contained against package hom.
func TableauOf(q Query, s *schema.Schema) (*table.Database, map[string]value.Value, error) {
	return q.CanonicalDatabase(s)
}

// HomContained is an alternative containment check that goes through
// package hom directly on Boolean queries: q1 ⊆ q2 iff there is a
// homomorphism tableau(q2) → tableau(q1).  Only valid for Boolean queries.
func HomContained(q1, q2 Query, s *schema.Schema) (bool, error) {
	if !q1.Boolean() || !q2.Boolean() {
		return false, fmt.Errorf("cq: HomContained requires Boolean queries")
	}
	t1, _, err := q1.CanonicalDatabase(s)
	if err != nil {
		return false, err
	}
	t2, _, err := q2.CanonicalDatabase(s)
	if err != nil {
		return false, err
	}
	return hom.Exists(t2, t1), nil
}
