package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "x", "y", "z"),
	)
}

// testDB builds a database mixing ints, strings and nulls, large enough
// to span several tuple-block chunks.
func testDB(t *testing.T, rows int) *table.Database {
	t.Helper()
	d := table.NewDatabase(testSchema())
	for i := 0; i < rows; i++ {
		d.MustAdd("R", table.NewTuple(value.Int(int64(i)), value.String(fmt.Sprintf("row-%04d", i))))
		var v value.Value
		if i%5 == 0 {
			v = value.Null(uint64(i%7 + 1))
		} else {
			v = value.String(fmt.Sprintf("payload-%d", i%97))
		}
		d.MustAdd("S", table.NewTuple(value.Int(int64(i%13)), v, value.Int(int64(i))))
	}
	return d
}

func TestChunkRoundTrip(t *testing.T) {
	cs, err := newChunkStore(filepath.Join(t.TempDir(), "chunks"))
	if err != nil {
		t.Fatalf("newChunkStore: %v", err)
	}
	data := []byte("some chunk payload")
	h1, err := cs.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	h2, err := cs.Put(data)
	if err != nil {
		t.Fatalf("Put again: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("content addressing broken: %s vs %s", h1, h2)
	}
	if !cs.Has(h1) {
		t.Fatalf("Has(%s) = false after Put", h1)
	}
	got, err := cs.Get(h1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	if _, err := cs.Get("0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Fatalf("Get of missing chunk succeeded")
	}
}

func TestChunkGetDetectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chunks")
	cs, err := newChunkStore(dir)
	if err != nil {
		t.Fatalf("newChunkStore: %v", err)
	}
	h, err := cs.Put([]byte("chunk to corrupt"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, h[:2], h)
	if err := os.WriteFile(path, []byte("flipped bits"), 0o644); err != nil {
		t.Fatalf("corrupt chunk: %v", err)
	}
	if _, err := cs.Get(h); err == nil {
		t.Fatalf("Get of corrupted chunk succeeded")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	// Enough rows that R and S each need multiple chunks (chunkTarget is
	// 64 KiB and rows are tens of bytes).
	db := testDB(t, 4000)
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer s.Close()
	manifest, err := s.WriteManifest(db)
	if err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := s.LoadDatabase(manifest)
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	if got.CanonicalKey() != db.CanonicalKey() {
		t.Fatalf("loaded database differs from written one")
	}
	// The loaded copy is lazy: force both relations and re-compare.
	for _, name := range got.RelationNames() {
		if got.Relation(name).Len() != db.Relation(name).Len() {
			t.Fatalf("relation %s: loaded %d rows, want %d", name, got.Relation(name).Len(), db.Relation(name).Len())
		}
	}
}

func TestManifestSharesChunksAcrossStates(t *testing.T) {
	db := testDB(t, 500)
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer s.Close()
	m1, err := s.WriteManifest(db)
	if err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	// The identical state hashes to the identical manifest (and therefore
	// shares every chunk).
	m2, err := s.WriteManifest(db.Clone())
	if err != nil {
		t.Fatalf("WriteManifest of clone: %v", err)
	}
	if m1 != m2 {
		t.Fatalf("identical states produced different manifests: %s vs %s", m1, m2)
	}
	// A state differing in one relation shares the untouched relation's
	// chunks: only the changed relation's blocks and the manifest differ.
	before := countChunks(t, s.dir)
	db2 := db.Clone()
	if err := db2.Add("R", table.NewTuple(value.Int(-1), value.String("new"))); err != nil {
		t.Fatalf("Add: %v", err)
	}
	m3, err := s.WriteManifest(db2)
	if err != nil {
		t.Fatalf("WriteManifest of modified state: %v", err)
	}
	if m3 == m1 {
		t.Fatalf("modified state produced the unmodified manifest")
	}
	added := countChunks(t, s.dir) - before
	// R fits one chunk at 500 rows, so: one new R block + one new manifest.
	if added > 3 {
		t.Fatalf("small change added %d chunks; structural sharing broken", added)
	}
}

func countChunks(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.Walk(filepath.Join(dir, chunksName), func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk chunks: %v", err)
	}
	return n
}

func TestLogRoundTrip(t *testing.T) {
	recs := []*Record{
		{Type: RecRoot, Branch: "main", ID: "c0", Manifest: "m0", CheckpointEvery: 4},
		{Type: RecCommit, Branch: "main", ID: "c1", Parents: []string{"c0"}, Message: "one",
			Delta: map[string]RecordDelta{"R": {Ins: [][]string{{"1", `"a"`}}}}},
		{Type: RecBranch, Branch: "dev", ID: "c1"},
		{Type: RecHead, Branch: "dev"},
		{Type: RecCheckpoint, ID: "c1", Manifest: "m1"},
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		frame, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
		buf.Write(frame)
	}
	got, valid, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if valid != int64(buf.Len()) {
		t.Fatalf("valid prefix %d, want %d", valid, buf.Len())
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Type != recs[i].Type || rec.ID != recs[i].ID || rec.Branch != recs[i].Branch {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, rec, recs[i])
		}
	}
}

// TestLogTornTailEveryOffset truncates a three-record log at every byte
// offset inside the final frame: recovery must return exactly the first
// two records and a valid length at the second frame's boundary.
func TestLogTornTailEveryOffset(t *testing.T) {
	var buf bytes.Buffer
	var frames [][]byte
	for i := 0; i < 3; i++ {
		frame, err := EncodeRecord(&Record{Type: RecCommit, ID: fmt.Sprintf("c%d", i), Message: "m"})
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
		frames = append(frames, frame)
		buf.Write(frame)
	}
	full := buf.Bytes()
	prefixLen := len(full) - len(frames[2])
	for cut := prefixLen; cut < len(full); cut++ {
		got, valid, err := ReadLog(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: ReadLog: %v", cut, err)
		}
		if len(got) != 2 || valid != int64(prefixLen) {
			t.Fatalf("cut %d: recovered %d records / %d bytes, want 2 / %d", cut, len(got), valid, prefixLen)
		}
	}
}

// TestLogCorruptTailDropped flips a payload byte in the final frame: the
// CRC catches it and recovery drops just that record.
func TestLogCorruptTailDropped(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 2; i++ {
		frame, err := EncodeRecord(&Record{Type: RecCommit, ID: fmt.Sprintf("c%d", i)})
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
		buf.Write(frame)
	}
	full := buf.Bytes()
	full[len(full)-1] ^= 0xff
	got, _, err := ReadLog(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("recovered %d records, want 1", len(got))
	}
}

// TestLogOversizedLengthHeader checks the length sanity cap: a frame
// announcing > maxRecordLen bytes is treated as a torn tail, not as a
// gigantic allocation.
func TestLogOversizedLengthHeader(t *testing.T) {
	frame, err := EncodeRecord(&Record{Type: RecHead, Branch: "main"})
	if err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	bad := append(append([]byte{}, frame...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	got, valid, err := ReadLog(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(got) != 1 || valid != int64(len(frame)) {
		t.Fatalf("recovered %d records / %d bytes, want 1 / %d", len(got), valid, len(frame))
	}
}

func FuzzLogDecode(f *testing.F) {
	for _, rec := range []*Record{
		{Type: RecRoot, Branch: "main", ID: "abc", Manifest: "def", CheckpointEvery: 16},
		{Type: RecCommit, ID: "c1", Parents: []string{"c0"}, Delta: map[string]RecordDelta{
			"R": {Ins: [][]string{{"1", `"x"`, "_2"}}, Del: [][]string{{"3"}}},
		}},
		{Type: RecHead, Branch: "dev"},
	} {
		frame, err := EncodeRecord(rec)
		if err != nil {
			f.Fatalf("EncodeRecord: %v", err)
		}
		f.Add(frame[8:])
		f.Add(frame)
	}
	f.Add([]byte(`{"Type":"commit"`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		// DecodeRecord must never panic, and on success the record's delta
		// must decode or error cleanly too.
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		_, _, _ = decodeDeltas(rec.Delta)
		// The same bytes as a (framed) log must also never panic.
		frame, err := EncodeRecord(rec)
		if err != nil {
			return
		}
		if _, _, err := ReadLog(bytes.NewReader(append(frame, payload...))); err != nil {
			_ = err // mid-log corruption errors are fine; panics are not
		}
	})
}
