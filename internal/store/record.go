package store

// The commit log: an append-only file of CRC-framed records.  Each frame
// is
//
//	[4B little-endian payload length][4B CRC32 (IEEE) of payload][payload]
//
// and the payload is one JSON Record.  Append order is replay order.  A
// torn final frame — short header, short payload, or CRC mismatch, the
// signature of a crash mid-append — ends the valid prefix: recovery keeps
// everything before it and truncates the rest, so the store recovers to
// the last fully committed record, never to a corrupt state.
//
// Commit records carry the commit's table.ChangeSet with tuples in the
// textual value form of value.Parse/String, which round-trips exactly
// (the wire protocol relies on the same property).  The delta algebra IS
// the WAL format: replaying the log composes the same deltas the
// in-memory version DAG replays from its checkpoints.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"slices"

	"incdata/internal/table"
	"incdata/internal/value"
)

// RecordType discriminates log records.
type RecordType string

const (
	// RecRoot opens a store: the root commit, its full-state manifest,
	// the initial branch, and the checkpoint policy.
	RecRoot RecordType = "root"
	// RecCommit appends one commit (its change set) and advances the
	// branch ref named in Branch; Manifest, when set, is a checkpoint of
	// the post-commit state.
	RecCommit RecordType = "commit"
	// RecBranch creates a new branch ref at an existing commit.
	RecBranch RecordType = "branch"
	// RecRef moves an existing branch ref (fast-forward merges).
	RecRef RecordType = "ref"
	// RecHead records which branch is checked out.
	RecHead RecordType = "head"
	// RecCheckpoint adds a materialized state manifest for an existing
	// commit (Engine.Flush).
	RecCheckpoint RecordType = "checkpoint"
)

// RecordDelta is one relation's delta in a commit record: inserted and
// deleted tuples, each tuple a list of textual fields.
type RecordDelta struct {
	Ins [][]string `json:",omitempty"`
	Del [][]string `json:",omitempty"`
}

// Record is one log entry.  Field use by type: see the RecordType
// constants; unused fields stay zero and are omitted from the JSON.
type Record struct {
	Type            RecordType
	Branch          string                 `json:",omitempty"`
	ID              string                 `json:",omitempty"` // commit id
	Parents         []string               `json:",omitempty"`
	Message         string                 `json:",omitempty"`
	Manifest        string                 `json:",omitempty"` // state manifest chunk
	CheckpointEvery int                    `json:",omitempty"` // root only
	Delta           map[string]RecordDelta `json:",omitempty"`
}

// maxRecordLen is a sanity cap on a single record payload; a length
// header beyond it is treated as corruption, not as a 4 GiB allocation.
const maxRecordLen = 1 << 30

// EncodeRecord renders a record as one CRC-framed log frame.
func EncodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// DecodeRecord parses one record payload (the bytes after the frame
// header).  It never panics; corrupt input returns an error.
func DecodeRecord(payload []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: decode record: %w", err)
	}
	switch rec.Type {
	case RecRoot, RecCommit, RecBranch, RecRef, RecHead, RecCheckpoint:
	default:
		return nil, fmt.Errorf("store: decode record: unknown type %q", rec.Type)
	}
	return &rec, nil
}

// ReadLog reads the valid prefix of a log file: every fully framed,
// CRC-clean record in order, plus the byte length of that prefix.  A torn
// tail (short header, short payload, CRC mismatch, oversized length) ends
// the prefix silently — that is the crash-recovery contract — but a
// record that frames correctly and still fails to decode is corruption in
// the middle of the log and is returned as an error.
func ReadLog(r io.Reader) ([]*Record, int64, error) {
	var (
		recs  []*Record
		valid int64
		head  [8]byte
	)
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			return recs, valid, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		if n > maxRecordLen {
			return recs, valid, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(head[4:8]) {
			return recs, valid, nil // torn/corrupt tail
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// A CRC-clean but undecodable record cannot be a torn append;
			// report it rather than silently dropping history behind it.
			return recs, valid, fmt.Errorf("store: log record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
		valid += int64(8 + len(payload))
	}
}

// ReadLogFile is ReadLog over a file path; a missing file is an empty log.
func ReadLogFile(path string) ([]*Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: open log: %w", err)
	}
	defer f.Close()
	return ReadLog(f)
}

// recordDeltas renders a change set as record deltas, tuples in their
// exact-round-trip textual form; empty deltas vanish.
func recordDeltas(cs *table.ChangeSet) map[string]RecordDelta {
	if cs == nil || len(cs.Rels) == 0 {
		return nil
	}
	out := make(map[string]RecordDelta, len(cs.Rels))
	for name, d := range cs.Rels {
		if d.Empty() {
			continue
		}
		rd := RecordDelta{
			Ins: tuplesToFields(sortedTuples(d.Inserted)),
			Del: tuplesToFields(sortedTuples(d.Deleted)),
		}
		out[name] = rd
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// decodeDeltas is the inverse of recordDeltas: it rebuilds the change set
// and reports the largest null id mentioned, so recovery can advance the
// fresh-null counter past every persisted null.
func decodeDeltas(rd map[string]RecordDelta) (*table.ChangeSet, uint64, error) {
	cs := table.NewChangeSet()
	var maxNull uint64
	for name, d := range rd {
		delta := table.NewDelta()
		for _, fields := range d.Ins {
			t, mn, err := parseFields(fields)
			if err != nil {
				return nil, 0, fmt.Errorf("store: delta of %s: %w", name, err)
			}
			delta.Inserted[t.Key()] = t
			if mn > maxNull {
				maxNull = mn
			}
		}
		for _, fields := range d.Del {
			t, mn, err := parseFields(fields)
			if err != nil {
				return nil, 0, fmt.Errorf("store: delta of %s: %w", name, err)
			}
			delta.Deleted[t.Key()] = t
			if mn > maxNull {
				maxNull = mn
			}
		}
		cs.Rels[name] = delta
	}
	return cs, maxNull, nil
}

func parseFields(fields []string) (table.Tuple, uint64, error) {
	t := make(table.Tuple, len(fields))
	var maxNull uint64
	for i, f := range fields {
		v, err := value.Parse(f)
		if err != nil {
			return nil, 0, fmt.Errorf("field %d: %w", i, err)
		}
		t[i] = v
		if v.IsNull() && v.NullID() > maxNull {
			maxNull = v.NullID()
		}
	}
	return t, maxNull, nil
}

func sortedTuples(m map[string]table.Tuple) []table.Tuple {
	out := make([]table.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	// Deterministic record bytes: same delta, same frame.
	slices.SortFunc(out, table.Tuple.Compare)
	return out
}

func tuplesToFields(ts []table.Tuple) [][]string {
	if len(ts) == 0 {
		return nil
	}
	out := make([][]string, len(ts))
	for i, t := range ts {
		fields := make([]string, len(t))
		for j, v := range t {
			fields[j] = v.String()
		}
		out[i] = fields
	}
	return out
}
