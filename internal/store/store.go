package store

// Store: the directory handle tying the chunk store and the commit log
// together, plus crash recovery.
//
// Write protocol (the engine's side of the contract):
//
//  1. State first: chunks and the manifest referencing them are written
//     (atomically, temp-then-rename) BEFORE any log record that names the
//     manifest is appended.  A log record therefore never dangles.
//  2. Log second: the record frame is appended and fsynced.  A crash
//     between (1) and (2) leaves orphaned chunks — wasted bytes, never
//     corruption — and recovery lands on the previous record.
//
// Recovery (Open) reads the valid record prefix, truncates a torn tail
// in place, and replays the records into a Recovery image: the exported
// commits, branch refs, checked-out head, and the manifest of every
// checkpointed commit.  The engine feeds that image to version.Restore
// and lazily loads the checkpoint states it needs.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"incdata/internal/table"
	"incdata/internal/version"
)

const (
	logName    = "log.bin"
	chunksName = "chunks"
)

// Store is an open durable store.  Append operations are serialized
// internally; one process must own a store directory at a time (the
// usual single-writer contract of an embedded database).
type Store struct {
	dir    string
	chunks *chunkStore
	mu     sync.Mutex
	logF   *os.File
	seen   map[string]bool // commit ids already in the log
	loaded map[string]*table.Database
}

// IsStore reports whether dir looks like a store directory (has a log).
func IsStore(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, logName))
	return err == nil && st.Mode().IsRegular()
}

// Create initializes a fresh store directory.  The directory may exist
// but must not already hold a store.
func Create(dir string) (*Store, error) {
	if IsStore(dir) {
		return nil, fmt.Errorf("store: %s already holds a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	chunks, err := newChunkStore(filepath.Join(dir, chunksName))
	if err != nil {
		return nil, err
	}
	logF, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create log: %w", err)
	}
	return &Store{
		dir:    dir,
		chunks: chunks,
		logF:   logF,
		seen:   map[string]bool{},
		loaded: map[string]*table.Database{},
	}, nil
}

// Recovery is the replayed image of a store's log: everything needed to
// rebuild the version history and resume appending.
type Recovery struct {
	Opts        version.Options
	Commits     []version.ExportedCommit
	Branches    map[string]version.CommitID
	Head        string                        // checked-out branch
	Checkpoints map[version.CommitID]string   // commit → manifest chunk
	MaxNull     uint64                        // largest null id in any replayed delta
}

// Open opens an existing store, truncating a torn final log record, and
// returns the store together with the recovered history image.
func Open(dir string) (*Store, *Recovery, error) {
	if !IsStore(dir) {
		return nil, nil, fmt.Errorf("store: %s is not a store directory", dir)
	}
	chunks, err := newChunkStore(filepath.Join(dir, chunksName))
	if err != nil {
		return nil, nil, err
	}
	logPath := filepath.Join(dir, logName)
	recs, valid, err := ReadLogFile(logPath)
	if err != nil {
		return nil, nil, err
	}
	logF, err := os.OpenFile(logPath, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open log: %w", err)
	}
	if st, err := logF.Stat(); err == nil && st.Size() > valid {
		// Torn tail from a crash mid-append: drop it so later appends
		// start on a clean frame boundary.
		if err := logF.Truncate(valid); err != nil {
			logF.Close()
			return nil, nil, fmt.Errorf("store: truncate torn log tail: %w", err)
		}
	}
	if _, err := logF.Seek(0, 2); err != nil {
		logF.Close()
		return nil, nil, fmt.Errorf("store: seek log end: %w", err)
	}
	s := &Store{
		dir:    dir,
		chunks: chunks,
		logF:   logF,
		seen:   map[string]bool{},
		loaded: map[string]*table.Database{},
	}
	rec, err := s.replay(recs)
	if err != nil {
		logF.Close()
		return nil, nil, err
	}
	return s, rec, nil
}

// replay folds the log records into a Recovery image.
func (s *Store) replay(recs []*Record) (*Recovery, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: empty log (no root record survived)")
	}
	r := &Recovery{
		Branches:    map[string]version.CommitID{},
		Checkpoints: map[version.CommitID]string{},
	}
	for i, rec := range recs {
		switch rec.Type {
		case RecRoot:
			if i != 0 {
				return nil, fmt.Errorf("store: log record %d: unexpected second root", i)
			}
			if rec.ID == "" || rec.Manifest == "" || rec.Branch == "" {
				return nil, fmt.Errorf("store: root record is missing id, manifest or branch")
			}
			r.Opts.CheckpointEvery = rec.CheckpointEvery
			r.Commits = append(r.Commits, version.ExportedCommit{
				ID:      version.CommitID(rec.ID),
				Message: rec.Message,
			})
			r.Branches[rec.Branch] = version.CommitID(rec.ID)
			r.Head = rec.Branch
			r.Checkpoints[version.CommitID(rec.ID)] = rec.Manifest
			s.seen[rec.ID] = true
		case RecCommit:
			if i == 0 {
				return nil, fmt.Errorf("store: log does not start with a root record")
			}
			cs, maxNull, err := decodeDeltas(rec.Delta)
			if err != nil {
				return nil, fmt.Errorf("store: log record %d: %w", i, err)
			}
			if maxNull > r.MaxNull {
				r.MaxNull = maxNull
			}
			if !s.seen[rec.ID] {
				parents := make([]version.CommitID, len(rec.Parents))
				for j, p := range rec.Parents {
					parents[j] = version.CommitID(p)
				}
				r.Commits = append(r.Commits, version.ExportedCommit{
					ID:      version.CommitID(rec.ID),
					Parents: parents,
					Message: rec.Message,
					Delta:   cs,
				})
				s.seen[rec.ID] = true
			}
			if rec.Branch != "" {
				r.Branches[rec.Branch] = version.CommitID(rec.ID)
			}
			if rec.Manifest != "" {
				r.Checkpoints[version.CommitID(rec.ID)] = rec.Manifest
			}
		case RecBranch, RecRef:
			if rec.Branch == "" || rec.ID == "" {
				return nil, fmt.Errorf("store: log record %d: %s record missing branch or id", i, rec.Type)
			}
			r.Branches[rec.Branch] = version.CommitID(rec.ID)
		case RecHead:
			if rec.Branch == "" {
				return nil, fmt.Errorf("store: log record %d: head record missing branch", i)
			}
			r.Head = rec.Branch
		case RecCheckpoint:
			if rec.ID == "" || rec.Manifest == "" {
				return nil, fmt.Errorf("store: log record %d: checkpoint record missing id or manifest", i)
			}
			r.Checkpoints[version.CommitID(rec.ID)] = rec.Manifest
		}
	}
	if _, ok := r.Branches[r.Head]; !ok {
		return nil, fmt.Errorf("store: checked-out branch %q has no ref", r.Head)
	}
	return r, nil
}

// Append writes one record frame to the log and fsyncs it.  Commit
// records whose id is already in the log are dropped (content-addressed
// dedup, mirroring the in-memory DAG); their branch/checkpoint side
// effects must be appended separately by the caller if needed — the
// engine only dedups commits that change nothing, so this does not arise.
func (s *Store) Append(rec *Record) error {
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Type == RecCommit || rec.Type == RecRoot {
		if s.seen[rec.ID] {
			return nil
		}
	}
	if _, err := s.logF.Write(frame); err != nil {
		return fmt.Errorf("store: append log record: %w", err)
	}
	if err := s.logF.Sync(); err != nil {
		return fmt.Errorf("store: sync log: %w", err)
	}
	if rec.Type == RecCommit || rec.Type == RecRoot {
		s.seen[rec.ID] = true
	}
	return nil
}

// AppendCommit writes a commit record: the commit's change set, the
// branch ref it advances (empty for historical backfill), and optionally
// the manifest of a checkpoint of the post-commit state.
func (s *Store) AppendCommit(c version.ExportedCommit, branch, checkpointManifest string) error {
	parents := make([]string, len(c.Parents))
	for i, p := range c.Parents {
		parents[i] = string(p)
	}
	return s.Append(&Record{
		Type:     RecCommit,
		Branch:   branch,
		ID:       string(c.ID),
		Parents:  parents,
		Message:  c.Message,
		Manifest: checkpointManifest,
		Delta:    recordDeltas(c.Delta),
	})
}

// HasCommit reports whether a commit with the given id is already in the
// log (written or replayed).
func (s *Store) HasCommit(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[id]
}

// Sync flushes the log to stable storage (appends already sync; this is
// a barrier for callers that bypassed them, and a no-op otherwise).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logF.Sync()
}

// Close releases the log file handle.  The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logF.Close()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }
