// Package store is the durable persistence subsystem: a content-addressed
// chunk store for database state plus an append-only, CRC-framed commit
// log whose records are the version DAG's own change sets — the delta
// algebra of package table doubles as the write-ahead-log format.
//
// Layout of a store directory:
//
//	<dir>/chunks/ab/abcdef…   content-addressed blobs (sha256 hex)
//	<dir>/log.bin             the commit log, CRC-framed records
//
// Chunks hold tuple blocks, dictionary sidecars, and JSON manifests (a
// manifest names the chunks of one full database state).  Every chunk is
// written temp-file-then-rename, so a chunk either exists in full or not
// at all, and identical relation states across snapshots, branches and
// restarts share storage bytes — verifying a chunk is a hash check.  The
// log is the only mutable file; recovery truncates a torn final record
// and replays the rest (see record.go and store.go).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// chunkStore is the content-addressed blob half of a store: blobs keyed
// by the hex sha256 of their contents, fanned out over 256 subdirectories.
type chunkStore struct {
	dir string
}

func newChunkStore(dir string) (*chunkStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create chunk dir: %w", err)
	}
	return &chunkStore{dir: dir}, nil
}

// hashOf returns the content address of a blob.
func hashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (cs *chunkStore) path(hash string) string {
	return filepath.Join(cs.dir, hash[:2], hash)
}

// Put stores a blob and returns its content address.  An existing chunk
// with the same address is left untouched (identical content, by
// construction); a new one is written to a temp file, synced, and
// renamed into place, so a crash never leaves a partial chunk visible.
func (cs *chunkStore) Put(data []byte) (string, error) {
	hash := hashOf(data)
	p := cs.path(hash)
	if _, err := os.Stat(p); err == nil {
		return hash, nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return "", fmt.Errorf("store: create chunk fanout: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-"+hash[:8]+"-*")
	if err != nil {
		return "", fmt.Errorf("store: create chunk temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("store: write chunk: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("store: close chunk temp: %w", err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("store: publish chunk: %w", err)
	}
	return hash, nil
}

// Get returns the blob at the given content address, verifying that the
// bytes still hash to it — a corrupted chunk is detected, never served.
func (cs *chunkStore) Get(hash string) ([]byte, error) {
	if len(hash) < 2 {
		return nil, fmt.Errorf("store: bad chunk address %q", hash)
	}
	data, err := os.ReadFile(cs.path(hash))
	if err != nil {
		return nil, fmt.Errorf("store: read chunk %s: %w", hash, err)
	}
	if got := hashOf(data); got != hash {
		return nil, fmt.Errorf("store: chunk %s corrupt (content hashes to %s)", hash, got)
	}
	return data, nil
}

// Has reports whether a chunk with the given address exists.
func (cs *chunkStore) Has(hash string) bool {
	if len(hash) < 2 {
		return false
	}
	_, err := os.Stat(cs.path(hash))
	return err == nil
}
