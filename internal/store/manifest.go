package store

// Manifests: one JSON document per materialized database state, itself
// stored as a chunk and referenced by content address from log records.
// A manifest names, per relation, the ordered tuple-block chunks holding
// the relation's rows, plus the database dictionary sidecar, so a full
// state is a Merkle tree: manifest → chunks → bytes, every edge a hash.
//
// Tuple blocks reuse the canonical binary key encoding of package table
// (Tuple.AppendKey / DecodeTuple): a block is a uvarint tuple count
// followed by that many self-delimiting tuple encodings, cut at a target
// block size.  Because SortedTuples fixes the order, an unchanged
// relation always serializes to the identical chunk list — that is what
// makes snapshots, branches and restarts share storage.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// chunkTarget is the target tuple-block size in bytes.  Blocks may
// overshoot by one tuple; a relation smaller than the target is one block.
const chunkTarget = 64 << 10

// RelManifest describes one relation's persisted form.
type RelManifest struct {
	Name   string
	Attrs  []string
	Rows   int
	Chunks []string `json:",omitempty"` // tuple blocks, in sorted-tuple order
}

// Manifest describes one full database state.
type Manifest struct {
	FormatVersion int
	Relations     []RelManifest // sorted by name
	Dict          string        `json:",omitempty"` // dictionary sidecar chunk
	MaxNull       uint64        // largest null id in the state (incl. dict)
}

// manifestFormatVersion guards against reading manifests written by a
// future incompatible layout.
const manifestFormatVersion = 1

// WriteManifest serializes the database into the chunk store and returns
// the manifest's content address.  Unchanged relations re-hash to chunks
// that already exist, so the incremental cost of a checkpoint is
// proportional to what changed plus one hashing pass.
func (s *Store) WriteManifest(db *table.Database) (string, error) {
	m := Manifest{FormatVersion: manifestFormatVersion}
	names := db.RelationNames()
	for _, name := range names {
		r := db.Relation(name)
		rm := RelManifest{Name: name, Attrs: append([]string(nil), r.Schema().Attrs...), Rows: r.Len()}
		block := make([]byte, 0, chunkTarget+256)
		count := 0
		flush := func() error {
			if count == 0 {
				return nil
			}
			payload := binary.AppendUvarint(nil, uint64(count))
			payload = append(payload, block...)
			h, err := s.chunks.Put(payload)
			if err != nil {
				return err
			}
			rm.Chunks = append(rm.Chunks, h)
			block = block[:0]
			count = 0
			return nil
		}
		for _, t := range r.SortedTuples() {
			block = t.AppendKey(block)
			count++
			for _, v := range t {
				if v.IsNull() && v.NullID() > m.MaxNull {
					m.MaxNull = v.NullID()
				}
			}
			if len(block) >= chunkTarget {
				if err := flush(); err != nil {
					return "", err
				}
			}
		}
		if err := flush(); err != nil {
			return "", err
		}
		m.Relations = append(m.Relations, rm)
	}
	if dict := db.Dict(); dict != nil && dict.Len() > 0 {
		vals := dict.Values()
		payload := binary.AppendUvarint(nil, uint64(len(vals)))
		for _, v := range vals {
			payload = v.AppendKey(payload)
			if v.IsNull() && v.NullID() > m.MaxNull {
				m.MaxNull = v.NullID()
			}
		}
		h, err := s.chunks.Put(payload)
		if err != nil {
			return "", err
		}
		m.Dict = h
	}
	sort.Slice(m.Relations, func(i, j int) bool { return m.Relations[i].Name < m.Relations[j].Name })
	doc, err := json.Marshal(&m)
	if err != nil {
		return "", fmt.Errorf("store: encode manifest: %w", err)
	}
	return s.chunks.Put(doc)
}

// readManifest loads and parses a manifest chunk.
func (s *Store) readManifest(hash string) (*Manifest, error) {
	doc, err := s.chunks.Get(hash)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, fmt.Errorf("store: decode manifest %s: %w", hash, err)
	}
	if m.FormatVersion != manifestFormatVersion {
		return nil, fmt.Errorf("store: manifest %s has format version %d, this build reads %d",
			hash, m.FormatVersion, manifestFormatVersion)
	}
	return &m, nil
}

// LoadDatabase materializes the database a manifest describes.  The
// returned database is lazy: each relation holds only its header and
// chunk list, and reads its tuple blocks from the chunk store on first
// access — Open over a huge store costs O(manifest), and a query pays
// only for the relations it touches.  The dictionary sidecar is interned
// eagerly (it is small and shared by every relation) in its original
// order, so dictionary codes are stable across restarts.  Repeated calls
// for one manifest return the same immutable snapshot, keeping relation
// stamps — and with them the engine's plan caches — valid across
// historical reads.
func (s *Store) LoadDatabase(manifestHash string) (*table.Database, error) {
	s.mu.Lock()
	if db, ok := s.loaded[manifestHash]; ok {
		s.mu.Unlock()
		return db, nil
	}
	s.mu.Unlock()
	m, err := s.readManifest(manifestHash)
	if err != nil {
		return nil, err
	}
	rels := make([]schema.Relation, 0, len(m.Relations))
	for _, rm := range m.Relations {
		rels = append(rels, schema.NewRelation(rm.Name, rm.Attrs...))
	}
	sch, err := schema.New(rels...)
	if err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", manifestHash, err)
	}
	db := table.NewDatabase(sch)
	if m.Dict != "" {
		payload, err := s.chunks.Get(m.Dict)
		if err != nil {
			return nil, err
		}
		if err := internDict(db.Dict(), payload); err != nil {
			return nil, fmt.Errorf("store: dict sidecar %s: %w", m.Dict, err)
		}
	}
	for _, rm := range m.Relations {
		rm := rm
		rs, _ := sch.Relation(rm.Name)
		lazy := table.NewLazyRelation(rs, func(add func(table.Tuple)) error {
			return s.fillRelation(rm, add)
		})
		if err := db.SetRelation(rm.Name, lazy); err != nil {
			return nil, fmt.Errorf("store: manifest %s: %w", manifestHash, err)
		}
	}
	value.EnsureFreshNullsAfter(m.MaxNull)
	s.mu.Lock()
	if prev, ok := s.loaded[manifestHash]; ok {
		db = prev // lost a benign race with a concurrent load
	} else {
		s.loaded[manifestHash] = db
	}
	s.mu.Unlock()
	return db, nil
}

// fillRelation streams one relation's tuple blocks into a lazy load.
func (s *Store) fillRelation(rm RelManifest, add func(table.Tuple)) error {
	arity := len(rm.Attrs)
	total := 0
	for _, h := range rm.Chunks {
		payload, err := s.chunks.Get(h)
		if err != nil {
			return err
		}
		n, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return fmt.Errorf("store: tuple block %s: bad count header", h)
		}
		rest := payload[sz:]
		for i := uint64(0); i < n; i++ {
			var t table.Tuple
			t, rest, err = table.DecodeTuple(rest, arity)
			if err != nil {
				return fmt.Errorf("store: tuple block %s: %w", h, err)
			}
			add(t)
			total++
		}
		if len(rest) != 0 {
			return fmt.Errorf("store: tuple block %s: %d trailing bytes", h, len(rest))
		}
	}
	if total != rm.Rows {
		return fmt.Errorf("store: relation %s: manifest says %d rows, blocks hold %d", rm.Name, rm.Rows, total)
	}
	return nil
}

// internDict replays a dictionary sidecar into a fresh dictionary,
// preserving the interned order (and therefore the codes).
func internDict(dict *table.Dict, payload []byte) error {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return fmt.Errorf("bad count header")
	}
	rest := payload[sz:]
	for i := uint64(0); i < n; i++ {
		v, r, err := value.DecodeKey(rest)
		if err != nil {
			return err
		}
		rest = r
		if _, ok := dict.Encode(v); !ok {
			return fmt.Errorf("value %s does not fit the code space", v)
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%d trailing bytes", len(rest))
	}
	return nil
}
