package tvl

import (
	"testing"
	"testing/quick"

	"incdata/internal/value"
)

func TestStringAndPredicates(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("String wrong")
	}
	if Truth(9).String() != "invalid" {
		t.Error("invalid truth should render as invalid")
	}
	if !True.IsTrue() || True.IsFalse() || True.IsUnknown() {
		t.Error("True predicates wrong")
	}
	if !False.IsFalse() || False.IsTrue() {
		t.Error("False predicates wrong")
	}
	if !Unknown.IsUnknown() || Unknown.IsTrue() || Unknown.IsFalse() {
		t.Error("Unknown predicates wrong")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
}

// Kleene truth tables.
func TestKleeneTables(t *testing.T) {
	vals := []Truth{False, Unknown, True}
	andTable := map[[2]Truth]Truth{
		{False, False}: False, {False, Unknown}: False, {False, True}: False,
		{Unknown, False}: False, {Unknown, Unknown}: Unknown, {Unknown, True}: Unknown,
		{True, False}: False, {True, Unknown}: Unknown, {True, True}: True,
	}
	orTable := map[[2]Truth]Truth{
		{False, False}: False, {False, Unknown}: Unknown, {False, True}: True,
		{Unknown, False}: Unknown, {Unknown, Unknown}: Unknown, {Unknown, True}: True,
		{True, False}: True, {True, Unknown}: True, {True, True}: True,
	}
	for _, a := range vals {
		for _, b := range vals {
			if got := And(a, b); got != andTable[[2]Truth{a, b}] {
				t.Errorf("And(%v,%v) = %v", a, b, got)
			}
			if got := Or(a, b); got != orTable[[2]Truth{a, b}] {
				t.Errorf("Or(%v,%v) = %v", a, b, got)
			}
		}
	}
	if Not(True) != False || Not(False) != True || Not(Unknown) != Unknown {
		t.Error("Not wrong")
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		a := Truth(x % 3)
		b := Truth(y % 3)
		return Not(And(a, b)) == Or(Not(a), Not(b)) && Not(Or(a, b)) == And(Not(a), Not(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAndAllOrAll(t *testing.T) {
	if AndAll() != True || OrAll() != False {
		t.Error("empty folds wrong")
	}
	if AndAll(True, Unknown, True) != Unknown {
		t.Error("AndAll wrong")
	}
	if AndAll(True, False, Unknown) != False {
		t.Error("AndAll with false wrong")
	}
	if OrAll(False, Unknown) != Unknown || OrAll(False, True, Unknown) != True {
		t.Error("OrAll wrong")
	}
}

func TestComparisons(t *testing.T) {
	one, two := value.Int(1), value.Int(2)
	null := value.Null(1)
	if Equals(one, one) != True || Equals(one, two) != False {
		t.Error("Equals on constants wrong")
	}
	if Equals(one, null) != Unknown || Equals(null, null) != Unknown {
		t.Error("Equals with null must be unknown (even ⊥=⊥)")
	}
	if NotEquals(one, two) != True || NotEquals(one, null) != Unknown {
		t.Error("NotEquals wrong")
	}
	if Less(one, two) != True || Less(two, one) != False || Less(one, null) != Unknown {
		t.Error("Less wrong")
	}
	if LessEq(one, one) != True || LessEq(two, one) != False || LessEq(null, one) != Unknown {
		t.Error("LessEq wrong")
	}
	if Greater(two, one) != True || GreaterEq(one, one) != True || Greater(null, one) != Unknown {
		t.Error("Greater/GreaterEq wrong")
	}
	if Less(value.Int(1), value.String("a")) != True {
		t.Error("cross-kind Less should follow canonical order")
	}
}

// The NOT IN anomaly from the paper's introduction: if the list contains a
// null and x does not match any constant in it, NOT IN is unknown, so the
// row is silently dropped.
func TestInNotInAnomaly(t *testing.T) {
	oid1 := value.String("oid1")
	oid2 := value.String("oid2")
	null := value.Null(1)

	if In(oid1, []value.Value{oid1, null}) != True {
		t.Error("IN should be true when a definite match exists")
	}
	if In(oid2, []value.Value{oid1}) != False {
		t.Error("IN should be false with no match and no nulls")
	}
	if In(oid2, []value.Value{oid1, null}) != Unknown {
		t.Error("IN with no definite match but a null should be unknown")
	}
	if NotIn(oid2, []value.Value{null}) != Unknown {
		t.Error("NOT IN (NULL) must be unknown — the unpaid-orders anomaly")
	}
	if NotIn(oid2, nil) != True {
		t.Error("NOT IN of empty list should be true")
	}
	if NotIn(oid1, []value.Value{oid1, null}) != False {
		t.Error("NOT IN should be false when a definite match exists")
	}
}
