// Package tvl implements the three-valued (Kleene) logic that SQL uses to
// evaluate conditions over nulls: truth values true, false and unknown,
// with Codd's propagation rules (Section 1 of the paper).  Comparisons
// involving a null evaluate to unknown; a WHERE clause keeps only rows whose
// condition evaluates to true.
package tvl

import "incdata/internal/value"

// Truth is a three-valued truth value.
type Truth uint8

const (
	// False is definite falsehood.
	False Truth = iota
	// Unknown is SQL's "unknown" (the result of comparing with NULL).
	Unknown
	// True is definite truth.
	True
)

// String renders the truth value.
func (t Truth) String() string {
	switch t {
	case False:
		return "false"
	case Unknown:
		return "unknown"
	case True:
		return "true"
	default:
		return "invalid"
	}
}

// FromBool lifts a Boolean into the three-valued lattice.
func FromBool(b bool) Truth {
	if b {
		return True
	}
	return False
}

// IsTrue reports whether t is definitely true (the only case in which SQL
// keeps a row).
func (t Truth) IsTrue() bool { return t == True }

// IsFalse reports whether t is definitely false.
func (t Truth) IsFalse() bool { return t == False }

// IsUnknown reports whether t is unknown.
func (t Truth) IsUnknown() bool { return t == Unknown }

// And is Kleene conjunction: min in the order False < Unknown < True.
func And(a, b Truth) Truth {
	if a < b {
		return a
	}
	return b
}

// Or is Kleene disjunction: max in the order False < Unknown < True.
func Or(a, b Truth) Truth {
	if a > b {
		return a
	}
	return b
}

// Not is Kleene negation: swaps True and False, fixes Unknown.
func Not(a Truth) Truth {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// AndAll folds And over the arguments (True for the empty list).
func AndAll(ts ...Truth) Truth {
	out := True
	for _, t := range ts {
		out = And(out, t)
	}
	return out
}

// OrAll folds Or over the arguments (False for the empty list).
func OrAll(ts ...Truth) Truth {
	out := False
	for _, t := range ts {
		out = Or(out, t)
	}
	return out
}

// Equals is SQL equality: unknown if either operand is a null, otherwise the
// Boolean comparison of the constants.  Note the contrast with marked-null
// identity: under SQL semantics even ⊥1 = ⊥1 is unknown.
func Equals(a, b value.Value) Truth {
	if a.IsNull() || b.IsNull() {
		return Unknown
	}
	return FromBool(a == b)
}

// NotEquals is SQL inequality: Not(Equals(a,b)).
func NotEquals(a, b value.Value) Truth { return Not(Equals(a, b)) }

// Less is SQL "<": unknown if either operand is null, false for
// incomparable constant kinds, otherwise the comparison.
func Less(a, b value.Value) Truth {
	if a.IsNull() || b.IsNull() {
		return Unknown
	}
	if a.Kind() != b.Kind() {
		return FromBool(value.Less(a, b))
	}
	return FromBool(value.Less(a, b))
}

// LessEq is SQL "<=".
func LessEq(a, b value.Value) Truth {
	return Or(Less(a, b), Equals(a, b))
}

// Greater is SQL ">".
func Greater(a, b value.Value) Truth { return Less(b, a) }

// GreaterEq is SQL ">=".
func GreaterEq(a, b value.Value) Truth { return LessEq(b, a) }

// In implements SQL's "x IN (list)": true if x definitely equals some
// element, false if it definitely differs from all elements, and unknown
// otherwise (the source of the NOT IN anomaly in the paper's introduction).
func In(x value.Value, list []value.Value) Truth {
	out := False
	for _, y := range list {
		out = Or(out, Equals(x, y))
		if out == True {
			return True
		}
	}
	return out
}

// NotIn implements SQL's "x NOT IN (list)" = Not(In(x, list)).
func NotIn(x value.Value, list []value.Value) Truth { return Not(In(x, list)) }
