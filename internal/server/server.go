// Package server is the multi-session network front end of the engine: a
// long-lived TCP server speaking the length-prefixed JSON protocol of
// internal/server/wire over one shared engine.Engine per process.
//
// # Sessions
//
// Each accepted connection is one session.  A session's reads are pinned
// to a snapshot: the first QUERY pins the live state at that moment, and
// concurrent commits by other sessions stay invisible until an explicit
// REFRESH re-pins the head — exactly the engine's snapshot-isolation
// contract lifted onto the wire.  ASOF re-pins the session to a
// historical commit through the version DAG, so time-traveling reads run
// through the same code path (and the same stamp-keyed plan caches) as
// live ones.  Writes (UPDATE) and COMMIT always address the live head,
// regardless of where the session's reads are pinned.
//
// # Threading model
//
// One goroutine reads and handles a connection's requests in order; a
// second drains its outbound queue to the socket, so subscription pushes
// (which originate in whichever session committed) never interleave
// mid-frame with replies.  Request execution passes through an admission
// gate: at most MaxInflight requests execute at once, a request that
// cannot get a slot within RequestTimeout is refused with a typed BUSY
// error (backpressure, not unbounded goroutines), and the session limit
// is enforced at accept time the same way.  Close drains: in-flight
// requests finish and their replies are flushed before sockets close.
//
// # Subscriptions
//
// REGISTER creates a maintained view (internal/inc) on the engine plus a
// server-side feed holding the answer as of the last commit.  COMMIT
// atomically commits and drains each view's accumulated answer delta
// (Engine.CommitWithDeltas); the server applies each delta to its feed
// baseline and pushes it to the view's SUBSCRIBEd sessions.  A subscriber
// therefore receives the full answer once, then exactly the changed
// tuples per commit — applying them in order reproduces the maintained
// answer at every commit.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"incdata/internal/certain"
	"incdata/internal/engine"
	"incdata/internal/queryparse"
	"incdata/internal/server/wire"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Config are the server's admission-control and evaluation knobs; the
// zero value gets sensible defaults from (Config).withDefaults.
type Config struct {
	// MaxSessions caps concurrently connected sessions; connections
	// beyond it are refused with a BUSY error at accept time.  Default 64.
	MaxSessions int
	// MaxInflight caps concurrently executing requests across all
	// sessions.  Default 2×GOMAXPROCS, minimum 2.
	MaxInflight int
	// RequestTimeout bounds how long a request may wait for an execution
	// slot before it is refused with a BUSY error.  Default 5s.
	RequestTimeout time.Duration
	// PushBuffer is each session's outbound queue depth; a subscriber too
	// slow to drain its pushes is disconnected rather than allowed to
	// stall the server.  Default 256.
	PushBuffer int
	// Workers is the default intra-query worker budget for requests that
	// do not set their own (engine.Options.Workers semantics).
	Workers int
	// MaxWorlds bounds world enumeration for the world-modes served over
	// the wire.  Default 1<<20.
	MaxWorlds int
	// MaxFrame caps a wire frame payload in bytes, both directions.
	// Clients must dial with the same cap (client.DialMaxFrame).  Default
	// wire.MaxFrame (1 MiB).
	MaxFrame int
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
		if c.MaxInflight < 2 {
			c.MaxInflight = 2
		}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.PushBuffer <= 0 {
		c.PushBuffer = 256
	}
	if c.MaxWorlds <= 0 {
		c.MaxWorlds = 1 << 20
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.MaxFrame
	}
	return c
}

// Server serves one engine to many sessions.
type Server struct {
	eng *engine.Engine
	cfg Config

	ln       net.Listener
	gate     chan struct{} // execution slots (MaxInflight)
	sessions chan struct{} // session slots (MaxSessions)

	mu     sync.Mutex // guards conns, feeds, closing
	conns  map[*conn]struct{}
	feeds  map[string]*feed
	closed chan struct{}

	// commitMu serializes COMMIT+broadcast (and REGISTER feed setup) so
	// per-commit deltas reach subscribers in commit order.
	commitMu sync.Mutex

	wg       sync.WaitGroup
	closing  bool
	served   atomic.Uint64
	rejected atomic.Uint64

	// testHookExec, when set by tests, runs while the request's execution
	// slot is held, before dispatch — a deterministic way to keep a slot
	// occupied for backpressure and drain tests.
	testHookExec func(op string)
}

// feed is the server-side state of one registered view: the answer as of
// the last commit push, and the sessions subscribed to it.
type feed struct {
	base *table.Relation
	subs map[*conn]struct{}
}

// New wraps an engine in a server.  Version history is enabled on the
// engine if it is not already — ASOF and COMMIT need the commit DAG.
func New(eng *engine.Engine, cfg Config) (*Server, error) {
	if !eng.HistoryEnabled() {
		if _, err := eng.EnableHistory(engine.HistoryOptions{}); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults()
	return &Server{
		eng:      eng,
		cfg:      cfg,
		gate:     make(chan struct{}, cfg.MaxInflight),
		sessions: make(chan struct{}, cfg.MaxSessions),
		conns:    map[*conn]struct{}{},
		feeds:    map[string]*feed{},
		closed:   make(chan struct{}),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting sessions.
// It returns the bound address immediately; serving runs in background
// goroutines until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// acceptLoop admits sessions up to the session cap.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case s.sessions <- struct{}{}:
		default:
			s.rejected.Add(1)
			go s.refuse(nc)
			continue
		}
		c := &conn{srv: s, nc: nc, out: make(chan wire.Response, s.cfg.PushBuffer)}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			<-s.sessions
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go c.writeLoop()
		go c.readLoop()
	}
}

// refuse turns away a connection over the session cap: it reads the
// client's opening frame before replying, so the close below never fires
// a TCP reset into a receive buffer still holding unread bytes — a reset
// would race the BUSY frame to the client and sometimes destroy it.
// Reading first empties our side; the deadline bounds a client that
// never sends anything.
func (s *Server) refuse(nc net.Conn) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(time.Second))
	wire.ReadFrameLimit(nc, s.cfg.MaxFrame)
	wire.WriteFrameLimit(nc, wire.Response{Kind: wire.KindError, Code: wire.CodeBusy,
		Error: fmt.Sprintf("server: session limit (%d) reached", s.cfg.MaxSessions)}, s.cfg.MaxFrame)
}

// Addr returns the bound address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, lets in-flight requests finish and their replies
// flush, then closes every session.  It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	close(s.closed)
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Interrupt idle reads; a handler mid-request is unaffected (the
	// deadline only breaks the blocking Read) and finishes its reply.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return nil
}

// Stats assembles the STATS payload.
func (s *Server) stats() *wire.Stats {
	s.mu.Lock()
	sessions := len(s.conns)
	s.mu.Unlock()
	est := s.eng.Stats()
	st := &wire.Stats{
		Sessions: sessions,
		Served:   s.served.Load(),
		Rejected: s.rejected.Load(),
		Planned:  cacheCounters(est.Planned),
		Oracle:   cacheCounters(est.Oracle),
	}
	if _, head, err := s.eng.Head(); err == nil {
		st.Head = string(head)
	}
	if len(est.Views) > 0 {
		st.Views = make(map[string]wire.ViewCounters, len(est.Views))
		for name, vs := range est.Views {
			st.Views[name] = wire.ViewCounters{
				Updates: vs.Updates, Skipped: vs.Skipped,
				Incremental: vs.Incremental, Recomputed: vs.Recomputed,
				DeltaIn: vs.DeltaIn, DeltaOut: vs.DeltaOut, Failed: vs.Failed,
			}
		}
	}
	return st
}

// cacheCounters converts engine cache statistics to their wire form.
func cacheCounters(cs certain.CacheStats) wire.CacheCounters {
	return wire.CacheCounters{
		OneShotHits:      cs.OneShotHits,
		OneShotMisses:    cs.OneShotMisses,
		OneShotEvictions: cs.OneShotEvictions,
		WorldHits:        cs.WorldHits,
		WorldMisses:      cs.WorldMisses,
		WorldEvictions:   cs.WorldEvictions,
	}
}

// conn is one session.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan wire.Response

	// Session state, touched only by the session's own readLoop.
	snap *engine.Snapshot
	// subs is the set of view names this session subscribed to, for
	// teardown.
	subs map[string]struct{}

	dropOnce sync.Once
}

// send enqueues a reply; the session's writeLoop owns the socket.
func (c *conn) send(resp wire.Response) {
	c.out <- resp
}

// trySend enqueues a push without blocking; a session whose queue is full
// is disconnected (slow subscribers must not stall commits).
func (c *conn) trySend(resp wire.Response) {
	select {
	case c.out <- resp:
	default:
		c.drop()
	}
}

// drop forcibly tears the session down (slow subscriber, write failure).
func (c *conn) drop() {
	c.dropOnce.Do(func() {
		c.nc.SetReadDeadline(time.Now())
		c.nc.SetWriteDeadline(time.Now())
	})
}

// writeLoop drains the outbound queue to the socket.  After a write error
// it keeps draining (discarding) so handlers never block on a dead
// session, and closes the socket once the queue is closed.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	var werr error
	for resp := range c.out {
		if werr != nil {
			continue
		}
		werr = wire.WriteFrameLimit(c.nc, resp, c.srv.cfg.MaxFrame)
	}
	c.nc.Close()
}

// readLoop reads and handles the session's requests in order.
func (c *conn) readLoop() {
	s := c.srv
	defer func() {
		s.detach(c)
		close(c.out) // writeLoop flushes what is queued, then closes the socket
		<-s.sessions
		s.wg.Done()
	}()
	for {
		payload, err := wire.ReadFrameLimit(c.nc, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The stream position is untrustworthy after a bad
				// length prefix: report and hang up.
				c.send(wire.Response{Kind: wire.KindError, Code: wire.CodeProto, Error: err.Error()})
			}
			if s.isClosing() && isTimeout(err) {
				return // drained: the deadline only interrupts idle reads
			}
			return
		}
		req, perr := decodeRequest(payload)
		if perr != nil {
			// The frame itself was intact, so the stream stays usable:
			// report the malformed request and keep serving.
			c.send(wire.Response{Kind: wire.KindError, Code: wire.CodeProto, Error: perr.Error()})
			continue
		}
		if quit := c.handle(req); quit {
			return
		}
	}
}

// decodeRequest unmarshals a request frame.
func decodeRequest(payload []byte) (wire.Request, error) {
	var req wire.Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return wire.Request{}, fmt.Errorf("server: bad request frame: %v", err)
	}
	return req, nil
}

// handle executes one request and sends its reply; it reports whether the
// session should end (QUIT).
func (c *conn) handle(req wire.Request) (quit bool) {
	s := c.srv
	reply := func(resp wire.Response) {
		resp.ID = req.ID
		c.send(resp)
	}
	fail := func(code string, err error) {
		reply(wire.Response{Kind: wire.KindError, Code: code, Error: err.Error()})
	}
	switch req.Op {
	case wire.OpHello:
		resp := wire.Response{Kind: wire.KindHello, Server: "incserver/1"}
		if _, head, err := s.eng.Head(); err == nil {
			resp.Commit = string(head)
		}
		reply(resp)
		return false
	case wire.OpQuit:
		reply(wire.Response{Kind: wire.KindOK})
		return true
	case wire.OpUnsubscribe:
		if req.Name == "" {
			fail(wire.CodeParse, fmt.Errorf("server: UNSUBSCRIBE needs a view name"))
			return false
		}
		s.unsubscribe(c, req.Name)
		delete(c.subs, req.Name)
		reply(wire.Response{Kind: wire.KindOK, View: req.Name})
		return false
	case wire.OpQuery, wire.OpUpdate, wire.OpCommit, wire.OpAsOf, wire.OpRefresh,
		wire.OpRegister, wire.OpSubscribe, wire.OpStats:
		// Engine-touching ops pass the admission gate below.
	default:
		fail(wire.CodeParse, fmt.Errorf("server: unknown op %q", req.Op))
		return false
	}

	if s.isClosing() {
		fail(wire.CodeShutdown, fmt.Errorf("server: shutting down"))
		return false
	}
	if !s.acquire() {
		s.rejected.Add(1)
		fail(wire.CodeBusy, fmt.Errorf("server: no execution slot within %s (%d in flight)",
			s.cfg.RequestTimeout, s.cfg.MaxInflight))
		return false
	}
	defer func() { <-s.gate }()
	s.served.Add(1)
	if s.testHookExec != nil {
		s.testHookExec(req.Op)
	}

	switch req.Op {
	case wire.OpQuery:
		resp, code, err := c.query(req)
		if err != nil {
			fail(code, err)
			return false
		}
		reply(resp)
	case wire.OpUpdate:
		resp, code, err := c.update(req)
		if err != nil {
			fail(code, err)
			return false
		}
		reply(resp)
	case wire.OpCommit:
		id, err := s.commitAndPush(req.Message)
		if err != nil {
			fail(wire.CodeEval, err)
			return false
		}
		reply(wire.Response{Kind: wire.KindCommit, Commit: string(id)})
	case wire.OpAsOf:
		id, err := s.eng.ResolveCommit(req.Ref)
		if err != nil {
			fail(wire.CodeEval, err)
			return false
		}
		snap, err := s.eng.AsOf(id)
		if err != nil {
			fail(wire.CodeEval, err)
			return false
		}
		c.snap = snap
		reply(wire.Response{Kind: wire.KindOK, Commit: string(id)})
	case wire.OpRefresh:
		c.snap = s.eng.Snapshot()
		resp := wire.Response{Kind: wire.KindOK}
		if _, head, err := s.eng.Head(); err == nil {
			resp.Commit = string(head)
		}
		reply(resp)
	case wire.OpRegister:
		code, err := s.register(req)
		if err != nil {
			fail(code, err)
			return false
		}
		reply(wire.Response{Kind: wire.KindOK, View: req.Name})
	case wire.OpSubscribe:
		resp, code, err := s.subscribe(c, req)
		if err != nil {
			fail(code, err)
			return false
		}
		reply(resp)
	case wire.OpStats:
		reply(wire.Response{Kind: wire.KindStats, Stats: s.stats()})
	}
	return false
}

// acquire takes an execution slot, waiting at most RequestTimeout.
func (s *Server) acquire() bool {
	select {
	case s.gate <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(s.cfg.RequestTimeout)
	defer t.Stop()
	select {
	case s.gate <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

// query evaluates QUERY on the session's pinned snapshot, pinning the
// live head first if the session has none yet.
func (c *conn) query(req wire.Request) (wire.Response, string, error) {
	opts, err := c.srv.evalOptions(req)
	if err != nil {
		return wire.Response{}, wire.CodeParse, err
	}
	expr, err := queryparse.Parse(req.Query)
	if err != nil {
		return wire.Response{}, wire.CodeParse, err
	}
	if c.snap == nil {
		c.snap = c.srv.eng.Snapshot()
	}
	rel, err := c.snap.Eval(expr, opts)
	if err != nil {
		return wire.Response{}, wire.CodeEval, err
	}
	cols, rows := relRows(rel)
	return wire.Response{Kind: wire.KindResult, Columns: cols, Rows: rows}, "", nil
}

// evalOptions builds engine options from a request's mode/planner/workers.
func (s *Server) evalOptions(req wire.Request) (engine.Options, error) {
	mode, err := engine.ParseMode(modeOrDefault(req.Mode))
	if err != nil {
		return engine.Options{}, err
	}
	planner, err := engine.ParsePlanner(req.Planner)
	if err != nil {
		return engine.Options{}, err
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	return engine.Options{Mode: mode, Planner: planner, Workers: workers, MaxWorlds: s.cfg.MaxWorlds}, nil
}

func modeOrDefault(m string) string {
	if m == "" {
		return "certain"
	}
	return m
}

// parsedOp is one UPDATE mutation, decoded and validated before the
// engine lock is taken.
type parsedOp struct {
	add bool
	rel string
	t   table.Tuple
}

// update applies UPDATE ops to the live database.  Parse failures (bad op
// kind, bad value literal) are detected before any mutation; data
// failures (unknown relation, arity) abort mid-way inside the engine's
// update — partial effects stay visible, as with any failed Update, and
// are reported as eval errors.
func (c *conn) update(req wire.Request) (wire.Response, string, error) {
	if len(req.Ops) == 0 {
		return wire.Response{}, wire.CodeParse, fmt.Errorf("server: UPDATE needs ops")
	}
	ops := make([]parsedOp, 0, len(req.Ops))
	for i, op := range req.Ops {
		var add bool
		switch op.Op {
		case "add":
			add = true
		case "delete", "del":
		default:
			return wire.Response{}, wire.CodeParse, fmt.Errorf("server: ops[%d]: unknown op %q (want add or delete)", i, op.Op)
		}
		t := make(table.Tuple, len(op.Row))
		for j, cell := range op.Row {
			v, err := value.Parse(cell)
			if err != nil {
				return wire.Response{}, wire.CodeParse, fmt.Errorf("server: ops[%d].row[%d]: %v", i, j, err)
			}
			t[j] = v
		}
		ops = append(ops, parsedOp{add: add, rel: op.Rel, t: t})
	}
	applied := 0
	err := c.srv.eng.Update(func(db *table.Database) error {
		for _, op := range ops {
			rel := db.Relation(op.rel)
			if rel == nil {
				return fmt.Errorf("server: unknown relation %q", op.rel)
			}
			if op.add {
				if rel.Contains(op.t) {
					continue
				}
				if err := rel.Add(op.t); err != nil {
					return err
				}
				applied++
			} else if rel.Remove(op.t) {
				applied++
			}
		}
		return nil
	})
	if err != nil {
		return wire.Response{}, wire.CodeEval, err
	}
	return wire.Response{Kind: wire.KindOK, Applied: applied}, "", nil
}

// register creates the maintained view and its server-side feed.  It runs
// under commitMu so no commit can drain the fresh view's deltas before
// the feed exists to receive them.
func (s *Server) register(req wire.Request) (string, error) {
	if req.Name == "" {
		return wire.CodeParse, fmt.Errorf("server: REGISTER needs a view name")
	}
	opts, err := s.evalOptions(req)
	if err != nil {
		return wire.CodeParse, err
	}
	expr, err := queryparse.Parse(req.Query)
	if err != nil {
		return wire.CodeParse, err
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.eng.Register(req.Name, expr, opts); err != nil {
		return wire.CodeEval, err
	}
	base, err := s.eng.Answers(req.Name)
	if err != nil {
		return wire.CodeEval, err
	}
	s.mu.Lock()
	s.feeds[req.Name] = &feed{base: base, subs: map[*conn]struct{}{}}
	s.mu.Unlock()
	return "", nil
}

// subscribe attaches the session to a registered view's feed and returns
// the feed's current baseline — the answer as of the last commit push.
// Serialization with commitAndPush (both lock s.mu around feed state)
// guarantees the baseline and the subsequent delta stream compose without
// gaps or duplicates.
func (s *Server) subscribe(c *conn, req wire.Request) (wire.Response, string, error) {
	if req.Name == "" {
		return wire.Response{}, wire.CodeParse, fmt.Errorf("server: SUBSCRIBE needs a view name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.feeds[req.Name]
	if !ok {
		return wire.Response{}, wire.CodeEval, fmt.Errorf("server: unknown view %q (REGISTER it first)", req.Name)
	}
	f.subs[c] = struct{}{}
	if c.subs == nil {
		c.subs = map[string]struct{}{}
	}
	c.subs[req.Name] = struct{}{}
	cols, rows := relRows(f.base)
	return wire.Response{Kind: wire.KindResult, View: req.Name, Columns: cols, Rows: rows}, "", nil
}

// unsubscribe detaches the session from a view's feed.
func (s *Server) unsubscribe(c *conn, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.feeds[name]; ok {
		delete(f.subs, c)
	}
}

// commitAndPush commits the pending updates and pushes every changed
// view's answer delta to its subscribers, in commit order (commitMu).
func (s *Server) commitAndPush(message string) (id string, err error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	cid, deltas, err := s.eng.CommitWithDeltas(message)
	if err != nil {
		return "", err
	}
	if len(deltas) == 0 {
		return string(cid), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, d := range deltas {
		f, ok := s.feeds[name]
		if !ok {
			continue // view registered directly on the engine, no feed
		}
		f.base.ApplyDelta(d)
		if len(f.subs) == 0 {
			continue
		}
		push := wire.Response{
			Kind:     wire.KindDelta,
			View:     name,
			Commit:   string(cid),
			Columns:  append([]string(nil), f.base.Schema().Attrs...),
			Inserted: tupleRows(sortedDeltaTuples(d.Inserted)),
			Deleted:  tupleRows(sortedDeltaTuples(d.Deleted)),
		}
		for c := range f.subs {
			c.trySend(push)
		}
	}
	return string(cid), nil
}

// detach removes a closing session from the conn set and every feed.
func (s *Server) detach(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
	for _, f := range s.feeds {
		delete(f.subs, c)
	}
}

// isClosing reports whether Close has begun.
func (s *Server) isClosing() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded)
}

// relRows serializes a relation for the wire: attribute names plus every
// tuple in canonical sorted order, cells in the textual value form that
// round-trips through value.Parse.  Two relations are equal exactly when
// their serializations are — "bit-identical across the wire".
func relRows(rel *table.Relation) (cols []string, rows [][]string) {
	cols = append([]string(nil), rel.Schema().Attrs...)
	return cols, tupleRows(rel.SortedTuples())
}

// tupleRows renders tuples to textual rows.
func tupleRows(ts []table.Tuple) [][]string {
	if len(ts) == 0 {
		return nil
	}
	rows := make([][]string, len(ts))
	for i, t := range ts {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return rows
}

// sortedDeltaTuples orders one side of a delta deterministically by the
// canonical tuple key.
func sortedDeltaTuples(m map[string]table.Tuple) []table.Tuple {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]table.Tuple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
