package server

// End-to-end tests: a real server on a random port, driven through real
// TCP connections by the shared Go client, checked for bit-identical
// answers against direct in-process evaluation on the same engine — per
// evaluation mode and planner setting, on live snapshots, ASOF-pinned
// historical commits, and SUBSCRIBE delta streams, with at least four
// clients hammering the server concurrently.  Run under -race in CI.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"incdata/internal/engine"
	"incdata/internal/queryparse"
	"incdata/internal/schema"
	"incdata/internal/server/client"
	"incdata/internal/server/wire"
	"incdata/internal/table"
	"incdata/internal/version"
)

// cid converts a wire commit id back to the engine's typed form.
func cid(s string) version.CommitID { return version.CommitID(s) }

// testEngine builds an engine over a small two-relation database, with
// marked nulls so every evaluation mode has real work to do.
func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "2", "⊥1")
	d.MustAddRow("S", "2", "3")
	d.MustAddRow("S", "⊥2", "4")
	return engine.New(d)
}

// startServer serves a testEngine database on a random port.
func startServer(t *testing.T, cfg Config) (*Server, *engine.Engine, string) {
	t.Helper()
	return startServerWithHook(t, cfg, nil)
}

// startServerWithHook is startServer with the test execution hook
// installed before the listener starts, so every handler observes it.
func startServerWithHook(t *testing.T, cfg Config, hook func(op string)) (*Server, *engine.Engine, string) {
	t.Helper()
	eng := testEngine(t)
	srv, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.testHookExec = hook
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, eng, addr.String()
}

// dial connects a test client.
func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// flat serializes an answer for comparison: header line plus one line per
// row, exactly as they crossed the wire.
func flat(cols []string, rows [][]string) string {
	parts := make([]string, 0, len(rows)+1)
	parts = append(parts, strings.Join(cols, ","))
	for _, r := range rows {
		parts = append(parts, strings.Join(r, ","))
	}
	return strings.Join(parts, "\n")
}

// localFlat evaluates the query in-process on snap with exactly the
// options the server builds for (mode, planner), serialized the same way
// the server serializes — the "bit-identical across the wire" oracle.
func localFlat(t *testing.T, srv *Server, snap *engine.Snapshot, query, mode, planner string) string {
	t.Helper()
	opts, err := srv.evalOptions(wire.Request{Mode: mode, Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	expr, err := queryparse.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := snap.Eval(expr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return flat(relRows(rel))
}

var e2eModes = []string{"naive", "certain", "certain-cwa", "certain-owa", "certain-object"}

// TestE2EModesBitIdentical requires every remote answer — every mode,
// planner on and off — to serialize identically to direct in-process
// evaluation of the same query on the same engine.
func TestE2EModesBitIdentical(t *testing.T) {
	srv, eng, addr := startServer(t, Config{})
	cl := dial(t, addr)
	queries := []string{
		"R",
		"project(join(R, S); a, c)",
		"diff(project(R; a), project(S; b))",
	}
	for _, q := range queries {
		for _, mode := range e2eModes {
			for _, planner := range []string{"on", "off"} {
				resp, err := cl.Query(q, mode, planner, 0)
				if err != nil {
					t.Fatalf("%s mode=%s planner=%s: %v", q, mode, planner, err)
				}
				want := localFlat(t, srv, eng.Snapshot(), q, mode, planner)
				if got := flat(resp.Columns, resp.Rows); got != want {
					t.Errorf("%s mode=%s planner=%s:\nremote:\n%s\nlocal:\n%s", q, mode, planner, got, want)
				}
			}
		}
	}
}

// TestE2EASOFSession pins a session to historical commits and requires the
// remote answers to match in-process AsOf evaluation at the same commits,
// in every mode.
func TestE2EASOFSession(t *testing.T) {
	srv, eng, addr := startServer(t, Config{})
	cl := dial(t, addr)
	const q = "project(join(R, S); a, c)"

	// Two commits: add a joining row, then delete it again.
	if _, err := cl.Update(client.Add("R", "7", "2")); err != nil {
		t.Fatal(err)
	}
	c1, err := cl.Commit("add 7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Update(client.Delete("R", "7", "2")); err != nil {
		t.Fatal(err)
	}
	c2, err := cl.Commit("del 7")
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatalf("distinct commits expected, both %s", c1)
	}

	for _, ref := range []string{c1, c2, "add 7"} {
		id, err := cl.AsOf(ref)
		if err != nil {
			t.Fatalf("asof %s: %v", ref, err)
		}
		snap, err := eng.AsOf(cid(id))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range e2eModes {
			for _, planner := range []string{"on", "off"} {
				resp, err := cl.Query(q, mode, planner, 0)
				if err != nil {
					t.Fatalf("asof %s mode=%s: %v", ref, mode, err)
				}
				want := localFlat(t, srv, snap, q, mode, planner)
				if got := flat(resp.Columns, resp.Rows); got != want {
					t.Errorf("asof %s mode=%s planner=%s:\nremote:\n%s\nlocal:\n%s", ref, mode, planner, got, want)
				}
			}
		}
	}

	// Back to the head: REFRESH answers must match live evaluation.
	if _, err := cl.Refresh(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(q, "certain", "on", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := flat(resp.Columns, resp.Rows), localFlat(t, srv, eng.Snapshot(), q, "certain", "on"); got != want {
		t.Errorf("after refresh:\nremote:\n%s\nlocal:\n%s", got, want)
	}
}

// rowSet is a mutable answer state keyed by serialized row, for replaying
// subscription delta streams.
type rowSet map[string]struct{}

func (rs rowSet) apply(push wire.Response) error {
	for _, r := range push.Deleted {
		k := strings.Join(r, ",")
		if _, ok := rs[k]; !ok {
			return fmt.Errorf("delta deletes absent row %q", k)
		}
		delete(rs, k)
	}
	for _, r := range push.Inserted {
		k := strings.Join(r, ",")
		if _, ok := rs[k]; ok {
			return fmt.Errorf("delta inserts duplicate row %q", k)
		}
		rs[k] = struct{}{}
	}
	return nil
}

func (rs rowSet) equal(rows [][]string) bool {
	if len(rs) != len(rows) {
		return false
	}
	for _, r := range rows {
		if _, ok := rs[strings.Join(r, ",")]; !ok {
			return false
		}
	}
	return true
}

// TestE2EConcurrentClients is the headline end-to-end test: six clients —
// two writers committing updates, two ASOF readers time-traveling to
// recorded commits, one live reader, one subscriber — run concurrently
// against one server.  Every ASOF answer must match in-process evaluation
// at the same commit, and after the dust settles the subscriber's delta
// stream must replay to the view's recomputed answer at every commit it
// was pushed for.
func TestE2EConcurrentClients(t *testing.T) {
	srv, eng, addr := startServer(t, Config{})
	const viewQ = "project(join(R, S); a, c)"

	setup := dial(t, addr)
	if err := setup.Register("V", viewQ, "certain", "on"); err != nil {
		t.Fatal(err)
	}
	sub := dial(t, addr)
	baseline, err := sub.Subscribe("V")
	if err != nil {
		t.Fatal(err)
	}
	acc := rowSet{}
	for _, r := range baseline.Rows {
		acc[strings.Join(r, ",")] = struct{}{}
	}

	var (
		commitMu sync.Mutex
		commits  []string
	)
	recordCommit := func(id string) {
		commitMu.Lock()
		defer commitMu.Unlock()
		for _, c := range commits {
			if c == id {
				return
			}
		}
		commits = append(commits, id)
	}
	someCommit := func(rnd *rand.Rand) string {
		commitMu.Lock()
		defer commitMu.Unlock()
		if len(commits) == 0 {
			return ""
		}
		return commits[rnd.Intn(len(commits))]
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Two writers: each keeps inserting fresh R rows that join S (so the
	// view answer keeps changing) and committing.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < rounds; i++ {
				a := fmt.Sprintf("%d", 100+w*rounds+i)
				if _, err := cl.Update(client.Add("R", a, "2")); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
				id, err := cl.Commit(fmt.Sprintf("w%d-%d", w, i))
				if err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
				recordCommit(id)
			}
		}(w)
	}

	// Two ASOF readers: pin to a recorded commit and require the remote
	// answer to match in-process evaluation at exactly that commit.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(r)))
			cl, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 2*rounds; i++ {
				ref := someCommit(rnd)
				if ref == "" {
					time.Sleep(time.Millisecond)
					continue
				}
				if _, err := cl.AsOf(ref); err != nil {
					errs <- fmt.Errorf("asof reader %d: %v", r, err)
					return
				}
				resp, err := cl.Query("project(R; a)", "certain", "on", 0)
				if err != nil {
					errs <- fmt.Errorf("asof reader %d: %v", r, err)
					return
				}
				snap, err := eng.AsOf(cid(ref))
				if err != nil {
					errs <- err
					return
				}
				want := localFlat(t, srv, snap, "project(R; a)", "certain", "on")
				if got := flat(resp.Columns, resp.Rows); got != want {
					errs <- fmt.Errorf("asof reader %d at %s:\nremote:\n%s\nlocal:\n%s", r, ref, got, want)
					return
				}
			}
		}(r)
	}

	// One live reader: snapshot-pinned queries and refreshes must never
	// error while writers churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		for i := 0; i < 2*rounds; i++ {
			if _, err := cl.Query(viewQ, "certain", "on", 0); err != nil {
				errs <- fmt.Errorf("live reader: %v", err)
				return
			}
			if _, err := cl.Refresh(); err != nil {
				errs <- fmt.Errorf("live reader: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain the subscriber's delta stream.  Applying each push in order
	// must reproduce the view's recomputed answer at that push's commit,
	// and the final state must equal the live answer.
	pushes := 0
	for {
		push, err := sub.NextDelta(500 * time.Millisecond)
		if err != nil {
			break // drained
		}
		pushes++
		if err := acc.apply(push); err != nil {
			t.Fatal(err)
		}
		snap, err := eng.AsOf(cid(push.Commit))
		if err != nil {
			t.Fatal(err)
		}
		want := localFlat(t, srv, snap, viewQ, "certain", "on")
		wantRows := strings.Split(want, "\n")[1:]
		rows := make([][]string, 0, len(wantRows))
		for _, r := range wantRows {
			if r != "" {
				rows = append(rows, strings.Split(r, ","))
			}
		}
		if !acc.equal(rows) {
			t.Fatalf("after push for commit %s: accumulated answer diverges from recomputation\nacc: %v\nwant rows: %v",
				push.Commit, acc, wantRows)
		}
	}
	if pushes == 0 {
		t.Fatal("subscriber saw no delta pushes despite view-changing commits")
	}
	live := localFlat(t, srv, eng.Snapshot(), viewQ, "certain", "on")
	liveRows := [][]string{}
	for _, r := range strings.Split(live, "\n")[1:] {
		if r != "" {
			liveRows = append(liveRows, strings.Split(r, ","))
		}
	}
	if !acc.equal(liveRows) {
		t.Fatalf("final accumulated answer diverges from live answer\nacc: %v\nlive:\n%s", acc, live)
	}
}
