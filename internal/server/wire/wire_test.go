package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip pins the framing format: WriteFrame then ReadFrame
// returns the exact JSON payload, and ReadResponse decodes it.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Response{ID: 7, Kind: KindResult, Columns: []string{"a"}, Rows: [][]string{{"1"}, {"⊥1"}}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Kind != in.Kind || len(out.Rows) != 2 || out.Rows[1][0] != "⊥1" {
		t.Fatalf("round trip mangled the response: %+v", out)
	}
}

// TestReadFrameTruncated pins that frames cut short — in the header or
// the payload — fail with io.ErrUnexpectedEOF rather than hanging or
// succeeding, and a clean EOF before any byte is io.EOF.
func TestReadFrameTruncated(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("")); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if _, err := ReadFrame(strings.NewReader("\x00\x00")); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short header: err = %v, want unexpected EOF", err)
	}
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("only ten b")
	if _, err := ReadFrame(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short payload: err = %v, want unexpected EOF", err)
	}
}

// TestReadFrameOversized pins the hard cap: a length prefix above
// MaxFrame is rejected as ErrFrameTooLarge without the payload being
// read, so a hostile prefix can neither allocate gigabytes nor block
// waiting for bytes that never come.
func TestReadFrameOversized(t *testing.T) {
	for _, n := range []uint32{MaxFrame + 1, 1 << 30, 0xFFFFFFFF} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		r := bytes.NewReader(hdr[:])
		if _, err := ReadFrame(r); !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("prefix %d: err = %v, want ErrFrameTooLarge", n, err)
		}
		if r.Len() != 0 {
			t.Errorf("prefix %d: header not fully consumed", n)
		}
	}
	// At exactly the cap the frame is legal.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame)
	buf.Write(hdr[:])
	buf.Write(bytes.Repeat([]byte{'x'}, MaxFrame))
	payload, err := ReadFrame(&buf)
	if err != nil || len(payload) != MaxFrame {
		t.Errorf("frame at cap: len=%d err=%v", len(payload), err)
	}
}

// TestWriteFrameOversized pins that the writer applies the same cap.
func TestWriteFrameOversized(t *testing.T) {
	big := Response{Error: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameTooLargeErrorTyped pins the typed form of the cap violation:
// errors.As extracts the configured limit from both the reader and writer
// side, and every instance matches the ErrFrameTooLarge sentinel under
// errors.Is regardless of its limit.
func TestFrameTooLargeErrorTyped(t *testing.T) {
	err := WriteFrameLimit(io.Discard, Response{Error: strings.Repeat("x", 100)}, 16)
	var fe *FrameTooLargeError
	if !errors.As(err, &fe) || fe.Limit != 16 {
		t.Fatalf("write err = %v, want *FrameTooLargeError{Limit: 16}", err)
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("a limit-16 violation must match the ErrFrameTooLarge sentinel")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 17)
	_, err = ReadFrameLimit(bytes.NewReader(hdr[:]), 16)
	if !errors.As(err, &fe) || fe.Limit != 16 {
		t.Fatalf("read err = %v, want *FrameTooLargeError{Limit: 16}", err)
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("the reader-side violation must match the sentinel too")
	}
}

// TestFrameLimitVariants pins the configurable cap: a raised cap admits a
// frame the default rejects, and limit <= 0 means the default MaxFrame.
func TestFrameLimitVariants(t *testing.T) {
	big := Response{ID: 3, Kind: KindError, Error: strings.Repeat("x", MaxFrame)}
	var buf bytes.Buffer
	if err := WriteFrameLimit(&buf, big, 4*MaxFrame); err != nil {
		t.Fatalf("write under a raised cap: %v", err)
	}
	if _, err := ReadFrameLimit(bytes.NewReader(buf.Bytes()), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("default-cap read of the oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
	resp, err := ReadResponseLimit(bytes.NewReader(buf.Bytes()), 4*MaxFrame)
	if err != nil || resp.ID != 3 || len(resp.Error) != MaxFrame {
		t.Fatalf("raised-cap read: err=%v id=%d len=%d", err, resp.ID, len(resp.Error))
	}
}

// FuzzReadFrame throws arbitrary byte streams at the frame decoder.  The
// decoder must never panic, never allocate beyond the cap, and on success
// must have consumed exactly header+payload so framing stays in sync.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	WriteFrame(&ok, Request{Op: OpQuery, Query: "project(R; a)"})
	f.Add(ok.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'})
	f.Add(append([]byte{0, 0, 0, 2}, []byte("{}extra")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("payload of %d bytes exceeds the cap", len(payload))
		}
		if want := len(data) - 4 - len(payload); r.Len() != want {
			t.Fatalf("consumed %d trailing bytes too many", want-r.Len())
		}
	})
}
