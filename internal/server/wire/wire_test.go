package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip pins the framing format: WriteFrame then ReadFrame
// returns the exact JSON payload, and ReadResponse decodes it.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Response{ID: 7, Kind: KindResult, Columns: []string{"a"}, Rows: [][]string{{"1"}, {"⊥1"}}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Kind != in.Kind || len(out.Rows) != 2 || out.Rows[1][0] != "⊥1" {
		t.Fatalf("round trip mangled the response: %+v", out)
	}
}

// TestReadFrameTruncated pins that frames cut short — in the header or
// the payload — fail with io.ErrUnexpectedEOF rather than hanging or
// succeeding, and a clean EOF before any byte is io.EOF.
func TestReadFrameTruncated(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("")); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if _, err := ReadFrame(strings.NewReader("\x00\x00")); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short header: err = %v, want unexpected EOF", err)
	}
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("only ten b")
	if _, err := ReadFrame(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short payload: err = %v, want unexpected EOF", err)
	}
}

// TestReadFrameOversized pins the hard cap: a length prefix above
// MaxFrame is rejected as ErrFrameTooLarge without the payload being
// read, so a hostile prefix can neither allocate gigabytes nor block
// waiting for bytes that never come.
func TestReadFrameOversized(t *testing.T) {
	for _, n := range []uint32{MaxFrame + 1, 1 << 30, 0xFFFFFFFF} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		r := bytes.NewReader(hdr[:])
		if _, err := ReadFrame(r); !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("prefix %d: err = %v, want ErrFrameTooLarge", n, err)
		}
		if r.Len() != 0 {
			t.Errorf("prefix %d: header not fully consumed", n)
		}
	}
	// At exactly the cap the frame is legal.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame)
	buf.Write(hdr[:])
	buf.Write(bytes.Repeat([]byte{'x'}, MaxFrame))
	payload, err := ReadFrame(&buf)
	if err != nil || len(payload) != MaxFrame {
		t.Errorf("frame at cap: len=%d err=%v", len(payload), err)
	}
}

// TestWriteFrameOversized pins that the writer applies the same cap.
func TestWriteFrameOversized(t *testing.T) {
	big := Response{Error: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzReadFrame throws arbitrary byte streams at the frame decoder.  The
// decoder must never panic, never allocate beyond the cap, and on success
// must have consumed exactly header+payload so framing stays in sync.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	WriteFrame(&ok, Request{Op: OpQuery, Query: "project(R; a)"})
	f.Add(ok.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'})
	f.Add(append([]byte{0, 0, 0, 2}, []byte("{}extra")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("payload of %d bytes exceeds the cap", len(payload))
		}
		if want := len(data) - 4 - len(payload); r.Len() != want {
			t.Fatalf("consumed %d trailing bytes too many", want-r.Len())
		}
	})
}
