// Package wire defines the incserver network protocol: length-prefixed
// JSON frames carrying one Request or Response each.  A frame is a 4-byte
// big-endian payload length followed by that many bytes of JSON; the
// length is hard-capped at MaxFrame so a hostile or corrupted prefix can
// never make either side allocate unbounded memory or block reading a
// frame that will never arrive.
//
// The protocol is deliberately small: one request, one reply, in order,
// per connection — except for subscription pushes (KindDelta), which the
// server interleaves between replies; clients tell them apart because
// pushes carry no request ID.  Values travel in the textual form of
// internal/value (integers as decimal, ⊥i for marked nulls, strings
// quoted only when ambiguous), which round-trips exactly through
// value.Parse — answers compare bit-identical across the wire.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame is the default cap on a frame payload, applied by both reader
// and writer.  A length prefix above the cap is a protocol error, not an
// allocation.  Deployments that ship bulk updates or very wide answers
// can raise the cap per endpoint with the …Limit frame functions
// (server.Config.MaxFrame and client.DialMaxFrame wire them through); the
// two sides must agree.
const MaxFrame = 1 << 20

// Request operations.  Every request names one op; unknown ops get a
// CodeParse error reply.
const (
	// OpHello introduces the client; the reply carries the server banner
	// and the head commit.
	OpHello = "HELLO"
	// OpQuery evaluates Query under Mode/Planner/Workers on the session's
	// pinned snapshot, pinning one first if the session has none.
	OpQuery = "QUERY"
	// OpUpdate applies Ops to the live database through the engine's
	// writer lock; the session's pinned snapshot is unaffected.
	OpUpdate = "UPDATE"
	// OpCommit turns the updates since the last commit into a commit and
	// pushes every registered view's answer delta to its subscribers.
	OpCommit = "COMMIT"
	// OpAsOf pins the session to the state at a historical commit (Ref is
	// an id, unique prefix, branch name, or commit message).
	OpAsOf = "ASOF"
	// OpRefresh re-pins the session to the live head; the reply names the
	// head commit.
	OpRefresh = "REFRESH"
	// OpRegister registers Query under Mode/Planner as the maintained
	// view Name, server-side.
	OpRegister = "REGISTER"
	// OpSubscribe subscribes the connection to the registered view Name:
	// the reply is the view's current answer, and every later commit that
	// changes it pushes a KindDelta message.
	OpSubscribe = "SUBSCRIBE"
	// OpUnsubscribe drops the connection's subscription to Name.
	OpUnsubscribe = "UNSUBSCRIBE"
	// OpStats reports server and engine counters.
	OpStats = "STATS"
	// OpQuit closes the connection after an acknowledging reply.
	OpQuit = "QUIT"
)

// Response kinds.
const (
	// KindOK acknowledges an op with no tabular payload.
	KindOK = "ok"
	// KindHello is the reply to OpHello.
	KindHello = "hello"
	// KindResult carries an answer relation (Columns + Rows).
	KindResult = "result"
	// KindCommit is the reply to OpCommit, naming the new commit.
	KindCommit = "commit"
	// KindDelta is a subscription push: the net answer change of View at
	// Commit.  Pushes carry ID 0 — they answer no request.
	KindDelta = "delta"
	// KindStats carries the Stats payload.
	KindStats = "stats"
	// KindError reports a failure, classified by Code.
	KindError = "error"
)

// Error codes carried by KindError responses.  They mirror the incq CLI's
// exit-code convention: CodeParse (and CodeProto) mean the request itself
// was malformed (exit 2), everything else is an evaluation/data failure
// (exit 1).
const (
	// CodeParse marks a request the server understood as a frame but not
	// as an operation: unknown op, malformed query, bad mode/planner, bad
	// value literal.
	CodeParse = "parse"
	// CodeEval marks a well-formed request that failed against the data:
	// unknown relation or commit, arity mismatch, evaluation error.
	CodeEval = "eval"
	// CodeBusy marks a request rejected by admission control: the session
	// limit, or no execution slot within the request timeout.
	CodeBusy = "busy"
	// CodeProto marks a frame that was not valid JSON for a Request, or a
	// framing violation (oversized length prefix).  Framing violations
	// close the connection; garbage JSON inside an intact frame does not.
	CodeProto = "proto"
	// CodeShutdown marks a request refused because the server is
	// draining.
	CodeShutdown = "shutdown"
)

// Request is one client frame.
type Request struct {
	// ID is echoed in the reply so clients can match responses to
	// requests; pushes carry ID 0.
	ID uint64 `json:"id,omitempty"`
	// Op selects the operation (OpHello …​ OpQuit).
	Op string `json:"op"`
	// Client is a free-form banner sent with OpHello.
	Client string `json:"client,omitempty"`
	// Query is the relational-algebra query text (internal/queryparse
	// syntax) for OpQuery and OpRegister.
	Query string `json:"query,omitempty"`
	// Mode is the evaluation mode name (engine.ParseMode); empty means
	// certain.
	Mode string `json:"mode,omitempty"`
	// Planner is "on", "off" or "" (engine.ParsePlanner).
	Planner string `json:"planner,omitempty"`
	// Workers is the intra-query worker budget (engine.Options.Workers).
	Workers int `json:"workers,omitempty"`
	// Ops are the mutations of an OpUpdate.
	Ops []UpdateOp `json:"ops,omitempty"`
	// Ref names a commit for OpAsOf.
	Ref string `json:"ref,omitempty"`
	// Name names a view for OpRegister/OpSubscribe/OpUnsubscribe.
	Name string `json:"name,omitempty"`
	// Message is the commit message for OpCommit.
	Message string `json:"message,omitempty"`
}

// UpdateOp is one mutation of an OpUpdate request.
type UpdateOp struct {
	// Op is "add" or "delete".
	Op string `json:"op"`
	// Rel names the relation to mutate.
	Rel string `json:"rel"`
	// Row is the tuple in textual value form, one cell per attribute.
	Row []string `json:"row"`
}

// Response is one server frame: a reply (ID echoes the request) or a
// subscription push (ID 0, KindDelta).
type Response struct {
	ID   uint64 `json:"id,omitempty"`
	Kind string `json:"kind"`
	// Code classifies KindError responses.
	Code string `json:"code,omitempty"`
	// Error is the failure message of KindError responses.
	Error string `json:"error,omitempty"`
	// Server is the banner of KindHello responses.
	Server string `json:"server,omitempty"`
	// Commit is the relevant commit id: the head for hello/refresh, the
	// pinned commit for asof, the new commit for commit replies, the
	// committed commit for delta pushes.
	Commit string `json:"commit,omitempty"`
	// Columns are the answer attribute names of KindResult and KindDelta.
	Columns []string `json:"columns,omitempty"`
	// Rows are the answer tuples of KindResult in textual value form,
	// sorted in the relation's canonical tuple order.
	Rows [][]string `json:"rows,omitempty"`
	// View names the view of a subscribe reply or delta push.
	View string `json:"view,omitempty"`
	// Inserted and Deleted are the net answer change of a KindDelta push.
	Inserted [][]string `json:"inserted,omitempty"`
	Deleted  [][]string `json:"deleted,omitempty"`
	// Applied is the number of tuples an OpUpdate actually changed.
	Applied int `json:"applied,omitempty"`
	// Stats is the payload of KindStats responses.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the payload of a STATS reply: server admission counters plus a
// coherent snapshot of the engine's cache and view counters.
type Stats struct {
	// Sessions is the number of currently connected sessions.
	Sessions int `json:"sessions"`
	// Served counts requests that acquired an execution slot.
	Served uint64 `json:"served"`
	// Rejected counts requests refused with CodeBusy.
	Rejected uint64 `json:"rejected"`
	// Head is the current head commit id.
	Head string `json:"head,omitempty"`
	// Planned and Oracle are the engine's plan-cache counters for the two
	// evaluation paths.
	Planned CacheCounters `json:"planned"`
	Oracle  CacheCounters `json:"oracle"`
	// Views maps registered view names to their refresh counters.
	Views map[string]ViewCounters `json:"views,omitempty"`
}

// CacheCounters mirrors the engine's plan-cache statistics.
type CacheCounters struct {
	OneShotHits      uint64 `json:"one_shot_hits"`
	OneShotMisses    uint64 `json:"one_shot_misses"`
	OneShotEvictions uint64 `json:"one_shot_evictions"`
	WorldHits        uint64 `json:"world_hits"`
	WorldMisses      uint64 `json:"world_misses"`
	WorldEvictions   uint64 `json:"world_evictions"`
}

// ViewCounters mirrors a maintained view's refresh statistics.
type ViewCounters struct {
	Updates     uint64 `json:"updates"`
	Skipped     uint64 `json:"skipped"`
	Incremental uint64 `json:"incremental"`
	Recomputed  uint64 `json:"recomputed"`
	DeltaIn     uint64 `json:"delta_in"`
	DeltaOut    uint64 `json:"delta_out"`
	Failed      uint64 `json:"failed"`
}

// FrameTooLargeError reports a frame payload above the endpoint's cap.
// After reading one the stream position is untrustworthy (the oversized
// payload was never consumed); the connection must be closed.
type FrameTooLargeError struct {
	// Limit is the cap the frame exceeded, in bytes.
	Limit int
}

// Error formats the violation with the endpoint's cap.
func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("wire: frame exceeds %d bytes", e.Limit)
}

// Is makes every FrameTooLargeError match ErrFrameTooLarge under
// errors.Is, regardless of the configured limit.
func (e *FrameTooLargeError) Is(target error) bool {
	_, ok := target.(*FrameTooLargeError)
	return ok
}

// ErrFrameTooLarge is the sentinel for errors.Is checks; frame functions
// return a *FrameTooLargeError carrying the actual limit.
var ErrFrameTooLarge error = &FrameTooLargeError{Limit: MaxFrame}

// frameLimit resolves a caller-supplied cap: zero or negative means the
// protocol default MaxFrame.
func frameLimit(limit int) int {
	if limit <= 0 {
		return MaxFrame
	}
	return limit
}

// WriteFrame marshals v and writes it as one length-prefixed frame,
// capped at MaxFrame.
func WriteFrame(w io.Writer, v any) error { return WriteFrameLimit(w, v, 0) }

// WriteFrameLimit is WriteFrame under an explicit payload cap; limit <= 0
// means MaxFrame.  Both sides of a connection must agree on the cap, or a
// frame one side writes may be a framing violation to the other.
func WriteFrameLimit(w io.Writer, v any, limit int) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if max := frameLimit(limit); len(payload) > max {
		return &FrameTooLargeError{Limit: max}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame payload, capped at MaxFrame.
// A clean EOF before any header byte returns io.EOF; a header or payload
// cut short returns io.ErrUnexpectedEOF; a length above the cap returns a
// *FrameTooLargeError without reading (or allocating) the payload.
func ReadFrame(r io.Reader) ([]byte, error) { return ReadFrameLimit(r, 0) }

// ReadFrameLimit is ReadFrame under an explicit payload cap; limit <= 0
// means MaxFrame.
func ReadFrameLimit(r io.Reader, limit int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if max := frameLimit(limit); uint64(n) > uint64(max) {
		return nil, &FrameTooLargeError{Limit: max}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// ReadResponse reads and decodes one Response frame, capped at MaxFrame.
func ReadResponse(r io.Reader) (Response, error) { return ReadResponseLimit(r, 0) }

// ReadResponseLimit is ReadResponse under an explicit payload cap;
// limit <= 0 means MaxFrame.
func ReadResponseLimit(r io.Reader, limit int) (Response, error) {
	payload, err := ReadFrameLimit(r, limit)
	if err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return Response{}, fmt.Errorf("wire: bad response frame: %w", err)
	}
	return resp, nil
}
