// Package client is the Go client for the incserver wire protocol
// (internal/server/wire), shared by the incq CLI's -connect remote mode,
// the end-to-end tests, and the server-throughput experiment.
//
// A Client owns one connection — one server session — and is not safe for
// concurrent use: the protocol is one request, one reply, in order, so
// concurrent callers must use one Client each (which also gives each its
// own snapshot pinning).  Subscription pushes the server interleaves
// between replies are buffered by Call and consumed with NextDelta.
package client

import (
	"fmt"
	"net"
	"time"

	"incdata/internal/server/wire"
)

// RemoteError is a typed error reply from the server.
type RemoteError struct {
	// Code is the wire error code (wire.CodeParse etc.).
	Code string
	// Msg is the server's failure message.
	Msg string
}

// Error formats the failure with its code.
func (e *RemoteError) Error() string { return fmt.Sprintf("%s (%s)", e.Msg, e.Code) }

// Client is one session against an incserver.
type Client struct {
	nc     net.Conn
	nextID uint64
	// maxFrame is the frame payload cap agreed with the server; 0 means
	// wire.MaxFrame.
	maxFrame int
	// pushes buffers KindDelta frames read while waiting for replies.
	pushes []wire.Response
	// Banner and Head are the server identification and head commit from
	// the HELLO exchange at dial time.
	Banner string
	Head   string
}

// Dial connects to an incserver, performs the HELLO exchange, and returns
// the session.  A BUSY error reply (session limit) is returned as a
// RemoteError.
func Dial(addr string) (*Client, error) { return DialMaxFrame(addr, 0) }

// DialMaxFrame is Dial against a server configured with a non-default
// frame payload cap (server.Config.MaxFrame); maxFrame <= 0 means the
// protocol default wire.MaxFrame.  Both sides must agree on the cap.
func DialMaxFrame(addr string, maxFrame int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, maxFrame: maxFrame}
	resp, err := c.Call(wire.Request{Op: wire.OpHello, Client: "incdata-go/1"})
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.Banner = resp.Server
	c.Head = resp.Commit
	return c, nil
}

// Close closes the session's connection without the QUIT handshake.
func (c *Client) Close() error { return c.nc.Close() }

// Quit performs the QUIT handshake and closes the connection.
func (c *Client) Quit() error {
	_, err := c.Call(wire.Request{Op: wire.OpQuit})
	cerr := c.nc.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Call sends one request and returns its reply.  Error replies come back
// as *RemoteError; delta pushes read while waiting are buffered for
// NextDelta.
func (c *Client) Call(req wire.Request) (wire.Response, error) {
	c.nextID++
	req.ID = c.nextID
	if err := wire.WriteFrameLimit(c.nc, req, c.maxFrame); err != nil {
		return wire.Response{}, err
	}
	for {
		resp, err := wire.ReadResponseLimit(c.nc, c.maxFrame)
		if err != nil {
			return wire.Response{}, err
		}
		if resp.ID == 0 && resp.Kind == wire.KindDelta {
			c.pushes = append(c.pushes, resp)
			continue
		}
		if resp.ID == 0 && resp.Kind == wire.KindError {
			// Connection-level failure (e.g. the session limit at accept
			// time): it answers no particular request.
			return resp, &RemoteError{Code: resp.Code, Msg: resp.Error}
		}
		if resp.ID != req.ID {
			return wire.Response{}, fmt.Errorf("client: reply id %d for request %d", resp.ID, req.ID)
		}
		if resp.Kind == wire.KindError {
			return resp, &RemoteError{Code: resp.Code, Msg: resp.Error}
		}
		return resp, nil
	}
}

// NextDelta returns the next subscription push, waiting up to timeout for
// one to arrive if none is buffered.  It must not race a concurrent Call
// (Clients are single-goroutine).
func (c *Client) NextDelta(timeout time.Duration) (wire.Response, error) {
	if len(c.pushes) > 0 {
		p := c.pushes[0]
		c.pushes = c.pushes[1:]
		return p, nil
	}
	if err := c.nc.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return wire.Response{}, err
	}
	defer c.nc.SetReadDeadline(time.Time{})
	resp, err := wire.ReadResponseLimit(c.nc, c.maxFrame)
	if err != nil {
		return wire.Response{}, err
	}
	if resp.ID != 0 || resp.Kind != wire.KindDelta {
		return wire.Response{}, fmt.Errorf("client: expected delta push, got kind %q id %d", resp.Kind, resp.ID)
	}
	return resp, nil
}

// Query evaluates a query on the session's pinned snapshot.
func (c *Client) Query(query, mode, planner string, workers int) (wire.Response, error) {
	return c.Call(wire.Request{Op: wire.OpQuery, Query: query, Mode: mode, Planner: planner, Workers: workers})
}

// Update applies mutations to the live database.
func (c *Client) Update(ops ...wire.UpdateOp) (wire.Response, error) {
	return c.Call(wire.Request{Op: wire.OpUpdate, Ops: ops})
}

// Add is shorthand for a single-tuple insert.
func Add(rel string, row ...string) wire.UpdateOp {
	return wire.UpdateOp{Op: "add", Rel: rel, Row: row}
}

// Delete is shorthand for a single-tuple delete.
func Delete(rel string, row ...string) wire.UpdateOp {
	return wire.UpdateOp{Op: "delete", Rel: rel, Row: row}
}

// Commit commits the pending updates and returns the new commit id.
func (c *Client) Commit(message string) (string, error) {
	resp, err := c.Call(wire.Request{Op: wire.OpCommit, Message: message})
	if err != nil {
		return "", err
	}
	return resp.Commit, nil
}

// AsOf pins the session's reads to a historical commit and returns the
// resolved commit id.
func (c *Client) AsOf(ref string) (string, error) {
	resp, err := c.Call(wire.Request{Op: wire.OpAsOf, Ref: ref})
	if err != nil {
		return "", err
	}
	return resp.Commit, nil
}

// Refresh re-pins the session to the live head and returns the head
// commit id.
func (c *Client) Refresh() (string, error) {
	resp, err := c.Call(wire.Request{Op: wire.OpRefresh})
	if err != nil {
		return "", err
	}
	return resp.Commit, nil
}

// Register creates a server-side maintained view.
func (c *Client) Register(name, query, mode, planner string) error {
	_, err := c.Call(wire.Request{Op: wire.OpRegister, Name: name, Query: query, Mode: mode, Planner: planner})
	return err
}

// Subscribe subscribes the session to a registered view and returns the
// view's current answer (the baseline its delta stream starts from).
func (c *Client) Subscribe(name string) (wire.Response, error) {
	return c.Call(wire.Request{Op: wire.OpSubscribe, Name: name})
}

// Unsubscribe drops the session's subscription to a view.
func (c *Client) Unsubscribe(name string) error {
	_, err := c.Call(wire.Request{Op: wire.OpUnsubscribe, Name: name})
	return err
}

// Stats fetches the server's statistics report.
func (c *Client) Stats() (*wire.Stats, error) {
	resp, err := c.Call(wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("client: stats reply without payload")
	}
	return resp.Stats, nil
}
