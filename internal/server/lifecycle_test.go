package server

// Session-lifecycle tests: snapshot pinning across concurrent commits,
// deterministic subscriber delta streams (including commits that must NOT
// push), admission-control backpressure with typed BUSY errors, the
// session cap, graceful-shutdown draining, and the STATS report.

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"incdata/internal/engine"
	"incdata/internal/server/client"
	"incdata/internal/server/wire"
)

// TestCommitsSurviveServerRestart pins the durable deployment: a server
// over a store-attached engine makes every wire COMMIT durable, so a new
// server process over the same directory serves the committed state.
func TestCommitsSurviveServerRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	eng := testEngine(t)
	if err := eng.Persist(dir); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := dial(t, addr.String())
	if _, err := cl.Update(client.Add("R", "7", "8")); err != nil {
		t.Fatal(err)
	}
	id, err := cl.Commit("wire-commit")
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh engine over the same directory, a fresh server.
	eng2, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	srv2, err := New(eng2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2 := dial(t, addr2.String())
	if cl2.Head != id {
		t.Fatalf("recovered head %s, want the wire commit %s", cl2.Head, id)
	}
	resp, err := cl2.Query("R", "certain", "on", 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range resp.Rows {
		if len(row) == 2 && row[0] == "7" && row[1] == "8" {
			found = true
		}
	}
	if !found {
		t.Fatalf("the committed row did not survive the restart: %v", resp.Rows)
	}
}

// TestSnapshotPinning pins the session-isolation contract: a session's
// first QUERY pins the state it sees, commits by other sessions stay
// invisible until REFRESH, and REFRESH reveals them.
func TestSnapshotPinning(t *testing.T) {
	srv, eng, addr := startServer(t, Config{})
	reader := dial(t, addr)
	writer := dial(t, addr)
	const q = "project(R; a)"

	first, err := reader.Query(q, "certain", "on", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Update(client.Add("R", "50", "2")); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Commit("add 50"); err != nil {
		t.Fatal(err)
	}

	pinned, err := reader.Query(q, "certain", "on", 0)
	if err != nil {
		t.Fatal(err)
	}
	if flat(pinned.Columns, pinned.Rows) != flat(first.Columns, first.Rows) {
		t.Fatalf("pinned session saw a concurrent commit:\nbefore:\n%s\nafter:\n%s",
			flat(first.Columns, first.Rows), flat(pinned.Columns, pinned.Rows))
	}

	head, err := reader.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if head == "" {
		t.Fatal("REFRESH did not name the head commit")
	}
	refreshed, err := reader.Query(q, "certain", "on", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := localFlat(t, srv, eng.Snapshot(), q, "certain", "on")
	if got := flat(refreshed.Columns, refreshed.Rows); got != want {
		t.Fatalf("after refresh:\nremote:\n%s\nlocal:\n%s", got, want)
	}
	if flat(refreshed.Columns, refreshed.Rows) == flat(first.Columns, first.Rows) {
		t.Fatal("refresh did not reveal the new commit")
	}
}

// TestSubscriberStream is the deterministic subscription test: an insert
// that changes the view pushes exactly its answer delta, a commit that
// cannot change the view pushes nothing, a delete pushes the removal, and
// UNSUBSCRIBE stops the stream.
func TestSubscriberStream(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	const viewQ = "project(join(R, S); a, c)"
	setup := dial(t, addr)
	if err := setup.Register("V", viewQ, "certain", "on"); err != nil {
		t.Fatal(err)
	}
	sub := dial(t, addr)
	baseline, err := sub.Subscribe("V")
	if err != nil {
		t.Fatal(err)
	}
	if baseline.View != "V" || baseline.Kind != wire.KindResult {
		t.Fatalf("subscribe reply: %+v", baseline)
	}

	writer := dial(t, addr)

	// R(9,2) joins S(2,3): the view gains (9,3).
	if _, err := writer.Update(client.Add("R", "9", "2")); err != nil {
		t.Fatal(err)
	}
	c1, err := writer.Commit("add 9")
	if err != nil {
		t.Fatal(err)
	}
	push, err := sub.NextDelta(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if push.View != "V" || push.Commit != c1 {
		t.Fatalf("push: view=%s commit=%s, want V/%s", push.View, push.Commit, c1)
	}
	if len(push.Inserted) != 1 || len(push.Deleted) != 0 ||
		push.Inserted[0][0] != "9" || push.Inserted[0][1] != "3" {
		t.Fatalf("push delta: +%v -%v, want +[(9,3)]", push.Inserted, push.Deleted)
	}

	// S(7,8) joins nothing: the view is refreshed but unchanged, so the
	// commit must not push.
	if _, err := writer.Update(client.Add("S", "7", "8")); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Commit("irrelevant"); err != nil {
		t.Fatal(err)
	}
	if push, err := sub.NextDelta(300 * time.Millisecond); err == nil {
		t.Fatalf("no-change commit pushed %+v", push)
	}

	// Deleting R(9,2) takes (9,3) back out.
	if _, err := writer.Update(client.Delete("R", "9", "2")); err != nil {
		t.Fatal(err)
	}
	c3, err := writer.Commit("del 9")
	if err != nil {
		t.Fatal(err)
	}
	push, err = sub.NextDelta(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if push.Commit != c3 || len(push.Deleted) != 1 || len(push.Inserted) != 0 ||
		push.Deleted[0][0] != "9" || push.Deleted[0][1] != "3" {
		t.Fatalf("push delta: +%v -%v at %s, want -[(9,3)] at %s", push.Inserted, push.Deleted, push.Commit, c3)
	}

	// After UNSUBSCRIBE the stream is silent.
	if err := sub.Unsubscribe("V"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Update(client.Add("R", "11", "2")); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Commit("add 11"); err != nil {
		t.Fatal(err)
	}
	if push, err := sub.NextDelta(300 * time.Millisecond); err == nil {
		t.Fatalf("push after unsubscribe: %+v", push)
	}
}

// TestBackpressureBusy pins the admission gate: with one execution slot
// held, a second request times out of the queue with a typed BUSY error
// rather than piling up, and the rejection is counted.
func TestBackpressureBusy(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(op string) {
		if op == wire.OpQuery {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
	}
	srv, _, addr := startServerWithHook(t, Config{MaxInflight: 1, RequestTimeout: 100 * time.Millisecond}, hook)

	slow := dial(t, addr)
	type result struct {
		resp wire.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := slow.Query("R", "certain", "on", 0)
		done <- result{resp, err}
	}()
	<-entered

	fast := dial(t, addr)
	_, err := fast.Query("R", "certain", "on", 0)
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBusy {
		t.Fatalf("gated request: err = %v, want BUSY", err)
	}

	close(release)
	res := <-done
	if res.err != nil {
		t.Fatalf("slot holder failed: %v", res.err)
	}
	if srv.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	// The slot is free again: the previously refused client succeeds.
	if _, err := fast.Query("R", "certain", "on", 0); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestSessionLimit pins admission at accept time: above MaxSessions a
// connection is refused with a BUSY error, and closing a session frees
// its slot.
func TestSessionLimit(t *testing.T) {
	_, _, addr := startServer(t, Config{MaxSessions: 1})
	first, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Dial(addr)
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeBusy {
		t.Fatalf("over-limit dial: err = %v, want BUSY", err)
	}
	first.Close()
	// The slot frees asynchronously as the server tears the session down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl, err := client.Dial(addr)
		if err == nil {
			cl.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain pins the shutdown contract: Close waits for the
// in-flight request to finish and its reply to flush before sockets
// close, so the client gets its answer, not a reset.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{})
	var once sync.Once
	hook := func(op string) {
		if op == wire.OpQuery {
			once.Do(func() {
				close(entered)
				time.Sleep(300 * time.Millisecond)
			})
		}
	}
	srv, _, addr := startServerWithHook(t, Config{}, hook)

	cl := dial(t, addr)
	type result struct {
		resp wire.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := cl.Query("R", "certain", "on", 0)
		done <- result{resp, err}
	}()
	<-entered

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("Close returned in %v without draining the in-flight request", elapsed)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request lost during shutdown: %v", res.err)
	}
	if res.resp.Kind != wire.KindResult {
		t.Fatalf("in-flight reply: %+v", res.resp)
	}
	// New requests on the drained server fail rather than hang.
	if _, err := cl.Query("R", "certain", "on", 0); err == nil {
		t.Fatal("query after shutdown should fail")
	}
}

// TestStatsReport pins the STATS payload: session and admission counters,
// the head commit, and per-view refresh counters, all present.
func TestStatsReport(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	cl := dial(t, addr)
	if err := cl.Register("V", "project(R; a)", "certain", "on"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Update(client.Add("R", "77", "2")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Commit("bump"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query("R", "certain", "on", 0); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions < 1 {
		t.Errorf("sessions = %d, want >= 1", st.Sessions)
	}
	if st.Served == 0 {
		t.Error("served counter is zero after served requests")
	}
	if st.Head == "" {
		t.Error("head commit missing")
	}
	vc, ok := st.Views["V"]
	if !ok {
		t.Fatalf("views = %v, want V", st.Views)
	}
	if vc.Updates == 0 {
		t.Error("view update counter is zero after an update")
	}
}
