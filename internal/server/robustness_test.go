package server

// Protocol-robustness tests: hostile and malformed byte streams against a
// live server.  The invariants: the server never panics, never hangs, and
// classifies failures with typed error codes — garbage JSON inside an
// intact frame keeps the connection usable, framing violations close it.

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"incdata/internal/server/client"
	"incdata/internal/server/wire"
)

// rawDial opens a plain TCP connection to the server, bypassing the
// client's protocol discipline.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	return nc
}

// TestGarbageJSONKeepsConnection pins that a frame whose payload is not a
// Request gets a typed proto error and the stream stays usable: a valid
// request on the same connection still answers.
func TestGarbageJSONKeepsConnection(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	nc := rawDial(t, addr)

	for _, garbage := range []string{"not json at all", `{"op": 42}`, `[]`, `{"op":"QUERY","ops":"x"}`} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(garbage)))
		if _, err := nc.Write(append(hdr[:], garbage...)); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(nc)
		if err != nil {
			t.Fatalf("%q: %v", garbage, err)
		}
		if resp.Kind != wire.KindError || resp.Code != wire.CodeProto {
			t.Fatalf("%q: kind=%s code=%s, want proto error", garbage, resp.Kind, resp.Code)
		}
	}

	// The stream survived: a well-formed request still works.
	if err := wire.WriteFrame(nc, wire.Request{ID: 9, Op: wire.OpHello}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(nc)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || resp.Kind != wire.KindHello {
		t.Fatalf("after garbage: %+v, want hello reply", resp)
	}
}

// TestOversizedPrefixClosesConnection pins that a length prefix above the
// cap gets a proto error and then a hangup — the stream position cannot
// be trusted after a framing violation.
func TestOversizedPrefixClosesConnection(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	nc := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(nc)
	if err != nil {
		t.Fatalf("expected a proto error before the hangup: %v", err)
	}
	if resp.Kind != wire.KindError || resp.Code != wire.CodeProto {
		t.Fatalf("kind=%s code=%s, want proto error", resp.Kind, resp.Code)
	}
	if _, err := wire.ReadResponse(nc); err == nil {
		t.Fatal("connection must be closed after a framing violation")
	}
}

// TestTruncatedFrameDisconnectsWithoutHanging pins that a client dying
// mid-frame neither hangs a handler goroutine nor leaks the session: the
// server just closes its side.
func TestTruncatedFrameDisconnectsWithoutHanging(t *testing.T) {
	srv, _, addr := startServer(t, Config{})
	nc := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := nc.Write(append(hdr[:], "only part"...)); err != nil {
		t.Fatal(err)
	}
	if err := nc.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	// The server sees an unexpected EOF and tears the session down; our
	// read unblocks with EOF rather than timing out.
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("read after truncated frame: %v", err)
	}
	// The session slot is released: Close does not wait on a leaked
	// handler (it would time the test out if it did).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigMaxFrame pins the configurable frame cap end to end.  A
// server with a tiny cap treats a frame the protocol default would accept
// as a framing violation (typed proto error, then hangup); a server with
// a raised cap serves an update whose frame exceeds the default 1 MiB,
// provided the client dialed with the matching cap — a default-cap client
// refuses to even write that frame, with the typed error.
func TestConfigMaxFrame(t *testing.T) {
	t.Run("small cap refuses", func(t *testing.T) {
		_, _, addr := startServer(t, Config{MaxFrame: 256})
		nc := rawDial(t, addr)
		// 300 bytes of query is legal by the protocol default but over
		// this server's cap.  Write it uncapped to get it on the wire.
		req := wire.Request{ID: 1, Op: wire.OpQuery, Query: strings.Repeat("R", 300)}
		if err := wire.WriteFrameLimit(nc, req, wire.MaxFrame); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(nc)
		if err != nil {
			t.Fatalf("expected a proto error before the hangup: %v", err)
		}
		if resp.Kind != wire.KindError || resp.Code != wire.CodeProto {
			t.Fatalf("kind=%s code=%s, want proto error", resp.Kind, resp.Code)
		}
		if _, err := wire.ReadResponse(nc); err == nil {
			t.Fatal("connection must be closed after exceeding the configured cap")
		}
	})

	t.Run("raised cap serves oversized frames", func(t *testing.T) {
		const frameCap = 4 * wire.MaxFrame
		_, _, addr := startServer(t, Config{MaxFrame: frameCap})
		cl, err := client.DialMaxFrame(addr, frameCap)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// One update frame of ~2 MiB: over the protocol default, under
		// this deployment's cap.
		bigRow := strings.Repeat("x", 2*wire.MaxFrame)
		resp, err := cl.Update(client.Add("R", "9", bigRow))
		if err != nil {
			t.Fatalf("oversized update under a raised cap: %v", err)
		}
		if resp.Applied != 1 {
			t.Fatalf("applied = %d, want 1", resp.Applied)
		}
		// Reading the wide row back crosses the cap in the reply
		// direction too.
		qr, err := cl.Query("R", "certain", "on", 0)
		if err != nil {
			t.Fatalf("query returning the wide row: %v", err)
		}
		found := false
		for _, row := range qr.Rows {
			if len(row) == 2 && row[1] == bigRow {
				found = true
			}
		}
		if !found {
			t.Fatal("the 2 MiB cell did not round-trip through the raised cap")
		}

		// A default-cap client against the same server cannot even write
		// that frame: the typed error surfaces client-side.
		def := dial(t, addr)
		if _, err := def.Update(client.Add("R", "10", bigRow)); !errors.Is(err, wire.ErrFrameTooLarge) {
			t.Fatalf("default-cap write: err = %v, want ErrFrameTooLarge", err)
		}
		var fe *wire.FrameTooLargeError
		if _, err := def.Update(client.Add("R", "11", bigRow)); !errors.As(err, &fe) || fe.Limit != wire.MaxFrame {
			t.Fatalf("default-cap write: err = %v, want FrameTooLargeError{%d}", err, wire.MaxFrame)
		}
	})
}

// TestTypedErrorCodes pins the error classification across the request
// surface: unknown ops and malformed inputs are parse errors, well-formed
// requests failing against the data are eval errors.
func TestTypedErrorCodes(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	cl := dial(t, addr)

	cases := []struct {
		name string
		req  wire.Request
		code string
	}{
		{"unknown op", wire.Request{Op: "EXPLODE"}, wire.CodeParse},
		{"empty op", wire.Request{}, wire.CodeParse},
		{"malformed query", wire.Request{Op: wire.OpQuery, Query: "project(R"}, wire.CodeParse},
		{"bad mode", wire.Request{Op: wire.OpQuery, Query: "R", Mode: "bogus"}, wire.CodeParse},
		{"bad planner", wire.Request{Op: wire.OpQuery, Query: "R", Planner: "maybe"}, wire.CodeParse},
		{"unknown relation", wire.Request{Op: wire.OpQuery, Query: "Nope"}, wire.CodeEval},
		{"update without ops", wire.Request{Op: wire.OpUpdate}, wire.CodeParse},
		{"update bad op kind", wire.Request{Op: wire.OpUpdate, Ops: []wire.UpdateOp{{Op: "upsert", Rel: "R", Row: []string{"1", "2"}}}}, wire.CodeParse},
		{"update unknown relation", wire.Request{Op: wire.OpUpdate, Ops: []wire.UpdateOp{{Op: "add", Rel: "Nope", Row: []string{"1"}}}}, wire.CodeEval},
		{"update arity mismatch", wire.Request{Op: wire.OpUpdate, Ops: []wire.UpdateOp{{Op: "add", Rel: "R", Row: []string{"1"}}}}, wire.CodeEval},
		{"asof unknown commit", wire.Request{Op: wire.OpAsOf, Ref: "nope"}, wire.CodeEval},
		{"register without name", wire.Request{Op: wire.OpRegister, Query: "R"}, wire.CodeParse},
		{"subscribe unknown view", wire.Request{Op: wire.OpSubscribe, Name: "ghost"}, wire.CodeEval},
		{"unsubscribe without name", wire.Request{Op: wire.OpUnsubscribe}, wire.CodeParse},
	}
	for _, c := range cases {
		_, err := cl.Call(c.req)
		var re *client.RemoteError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want RemoteError", c.name, err)
			continue
		}
		if re.Code != c.code {
			t.Errorf("%s: code = %s, want %s (%s)", c.name, re.Code, c.code, re.Msg)
		}
	}

	// After all those failures the session still works.
	if _, err := cl.Query("R", "certain", "on", 0); err != nil {
		t.Fatalf("session unusable after error replies: %v", err)
	}
}
