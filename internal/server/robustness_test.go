package server

// Protocol-robustness tests: hostile and malformed byte streams against a
// live server.  The invariants: the server never panics, never hangs, and
// classifies failures with typed error codes — garbage JSON inside an
// intact frame keeps the connection usable, framing violations close it.

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"incdata/internal/server/client"
	"incdata/internal/server/wire"
)

// rawDial opens a plain TCP connection to the server, bypassing the
// client's protocol discipline.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	return nc
}

// TestGarbageJSONKeepsConnection pins that a frame whose payload is not a
// Request gets a typed proto error and the stream stays usable: a valid
// request on the same connection still answers.
func TestGarbageJSONKeepsConnection(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	nc := rawDial(t, addr)

	for _, garbage := range []string{"not json at all", `{"op": 42}`, `[]`, `{"op":"QUERY","ops":"x"}`} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(garbage)))
		if _, err := nc.Write(append(hdr[:], garbage...)); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(nc)
		if err != nil {
			t.Fatalf("%q: %v", garbage, err)
		}
		if resp.Kind != wire.KindError || resp.Code != wire.CodeProto {
			t.Fatalf("%q: kind=%s code=%s, want proto error", garbage, resp.Kind, resp.Code)
		}
	}

	// The stream survived: a well-formed request still works.
	if err := wire.WriteFrame(nc, wire.Request{ID: 9, Op: wire.OpHello}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(nc)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || resp.Kind != wire.KindHello {
		t.Fatalf("after garbage: %+v, want hello reply", resp)
	}
}

// TestOversizedPrefixClosesConnection pins that a length prefix above the
// cap gets a proto error and then a hangup — the stream position cannot
// be trusted after a framing violation.
func TestOversizedPrefixClosesConnection(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	nc := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(nc)
	if err != nil {
		t.Fatalf("expected a proto error before the hangup: %v", err)
	}
	if resp.Kind != wire.KindError || resp.Code != wire.CodeProto {
		t.Fatalf("kind=%s code=%s, want proto error", resp.Kind, resp.Code)
	}
	if _, err := wire.ReadResponse(nc); err == nil {
		t.Fatal("connection must be closed after a framing violation")
	}
}

// TestTruncatedFrameDisconnectsWithoutHanging pins that a client dying
// mid-frame neither hangs a handler goroutine nor leaks the session: the
// server just closes its side.
func TestTruncatedFrameDisconnectsWithoutHanging(t *testing.T) {
	srv, _, addr := startServer(t, Config{})
	nc := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := nc.Write(append(hdr[:], "only part"...)); err != nil {
		t.Fatal(err)
	}
	if err := nc.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	// The server sees an unexpected EOF and tears the session down; our
	// read unblocks with EOF rather than timing out.
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("read after truncated frame: %v", err)
	}
	// The session slot is released: Close does not wait on a leaked
	// handler (it would time the test out if it did).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTypedErrorCodes pins the error classification across the request
// surface: unknown ops and malformed inputs are parse errors, well-formed
// requests failing against the data are eval errors.
func TestTypedErrorCodes(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	cl := dial(t, addr)

	cases := []struct {
		name string
		req  wire.Request
		code string
	}{
		{"unknown op", wire.Request{Op: "EXPLODE"}, wire.CodeParse},
		{"empty op", wire.Request{}, wire.CodeParse},
		{"malformed query", wire.Request{Op: wire.OpQuery, Query: "project(R"}, wire.CodeParse},
		{"bad mode", wire.Request{Op: wire.OpQuery, Query: "R", Mode: "bogus"}, wire.CodeParse},
		{"bad planner", wire.Request{Op: wire.OpQuery, Query: "R", Planner: "maybe"}, wire.CodeParse},
		{"unknown relation", wire.Request{Op: wire.OpQuery, Query: "Nope"}, wire.CodeEval},
		{"update without ops", wire.Request{Op: wire.OpUpdate}, wire.CodeParse},
		{"update bad op kind", wire.Request{Op: wire.OpUpdate, Ops: []wire.UpdateOp{{Op: "upsert", Rel: "R", Row: []string{"1", "2"}}}}, wire.CodeParse},
		{"update unknown relation", wire.Request{Op: wire.OpUpdate, Ops: []wire.UpdateOp{{Op: "add", Rel: "Nope", Row: []string{"1"}}}}, wire.CodeEval},
		{"update arity mismatch", wire.Request{Op: wire.OpUpdate, Ops: []wire.UpdateOp{{Op: "add", Rel: "R", Row: []string{"1"}}}}, wire.CodeEval},
		{"asof unknown commit", wire.Request{Op: wire.OpAsOf, Ref: "nope"}, wire.CodeEval},
		{"register without name", wire.Request{Op: wire.OpRegister, Query: "R"}, wire.CodeParse},
		{"subscribe unknown view", wire.Request{Op: wire.OpSubscribe, Name: "ghost"}, wire.CodeEval},
		{"unsubscribe without name", wire.Request{Op: wire.OpUnsubscribe}, wire.CodeParse},
	}
	for _, c := range cases {
		_, err := cl.Call(c.req)
		var re *client.RemoteError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want RemoteError", c.name, err)
			continue
		}
		if re.Code != c.code {
			t.Errorf("%s: code = %s, want %s (%s)", c.name, re.Code, c.code, re.Msg)
		}
	}

	// After all those failures the session still works.
	if _, err := cl.Query("R", "certain", "on", 0); err != nil {
		t.Fatalf("session unusable after error replies: %v", err)
	}
}
