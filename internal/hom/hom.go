// Package hom implements homomorphisms between (incomplete) databases and
// the information orderings they induce (Section 5.2 of the paper):
//
//	D ⪯owa  D'  ⇔  there is a homomorphism h : D → D'
//	D ⪯wcwa D'  ⇔  there is an onto homomorphism (h(adom D) = adom D')
//	D ⪯cwa  D'  ⇔  there is a strong onto homomorphism (h(D) = D')
//
// A homomorphism maps the active domain of D to the active domain of D',
// is the identity on constants, and sends every tuple of D to a tuple of D'.
package hom

import (
	"sort"

	"incdata/internal/table"
	"incdata/internal/value"
)

// Mapping is a homomorphism candidate: an assignment of values to the nulls
// of the source database.  Constants are implicitly fixed.
type Mapping map[value.Value]value.Value

// ApplyValue returns the image of a value under the mapping (constants and
// unassigned nulls are fixed).
func (m Mapping) ApplyValue(v value.Value) value.Value {
	if v.IsNull() {
		if img, ok := m[v]; ok {
			return img
		}
	}
	return v
}

// ApplyTuple applies the mapping to every field of a tuple.
func (m Mapping) ApplyTuple(t table.Tuple) table.Tuple { return t.Map(m.ApplyValue) }

// ApplyDatabase returns h(D).
func (m Mapping) ApplyDatabase(d *table.Database) *table.Database { return d.Map(m.ApplyValue) }

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// tupleObligation records a source tuple and the index (into the ordered
// null list) of the last null it mentions, used for incremental checking.
type tupleObligation struct {
	rel     string
	tuple   table.Tuple
	lastIdx int
}

// searcher performs backtracking search for homomorphisms from src to dst.
type searcher struct {
	src, dst    *table.Database
	nulls       []value.Value // nulls of src in fixed order
	nullIdx     map[value.Value]int
	candidates  []value.Value       // adom(dst), candidate images for each null
	obligations [][]tupleObligation // obligations[i]: tuples checkable once null i is assigned
	immediate   []tupleObligation   // null-free source tuples (checked up front)
}

func newSearcher(src, dst *table.Database) *searcher {
	s := &searcher{src: src, dst: dst}
	s.nulls = table.SortedValues(src.Nulls())
	s.nullIdx = make(map[value.Value]int, len(s.nulls))
	for i, n := range s.nulls {
		s.nullIdx[n] = i
	}
	s.candidates = table.SortedValues(dst.ActiveDomain())
	s.obligations = make([][]tupleObligation, len(s.nulls))
	for _, relName := range src.RelationNames() {
		rel := src.Relation(relName)
		for _, t := range rel.Tuples() {
			last := -1
			for _, v := range t {
				if v.IsNull() {
					if i := s.nullIdx[v]; i > last {
						last = i
					}
				}
			}
			ob := tupleObligation{rel: relName, tuple: t, lastIdx: last}
			if last < 0 {
				s.immediate = append(s.immediate, ob)
			} else {
				s.obligations[last] = append(s.obligations[last], ob)
			}
		}
	}
	return s
}

// checkTuple reports whether the image of the obligation's tuple under m is
// present in dst.
func (s *searcher) checkTuple(m Mapping, ob tupleObligation) bool {
	dstRel := s.dst.Relation(ob.rel)
	if dstRel == nil {
		return false
	}
	return dstRel.Contains(m.ApplyTuple(ob.tuple))
}

// search enumerates homomorphisms; accept is called with each complete
// homomorphism and returns true to keep searching or false to stop.  The
// return value reports whether some call to accept returned false (i.e. a
// witness was found and the search stopped early).
func (s *searcher) search(accept func(Mapping) bool) bool {
	m := make(Mapping, len(s.nulls))
	for _, ob := range s.immediate {
		if !s.checkTuple(m, ob) {
			return false
		}
	}
	stopped := false
	var rec func(i int) bool // returns false to stop the whole search
	rec = func(i int) bool {
		if i == len(s.nulls) {
			if !accept(m) {
				stopped = true
				return false
			}
			return true
		}
		for _, c := range s.candidates {
			m[s.nulls[i]] = c
			ok := true
			for _, ob := range s.obligations[i] {
				if !s.checkTuple(m, ob) {
					ok = false
					break
				}
			}
			if ok {
				if !rec(i + 1) {
					return false
				}
			}
		}
		delete(m, s.nulls[i])
		return true
	}
	rec(0)
	return stopped
}

// Find searches for a homomorphism h : src → dst and returns it (as a
// mapping on the nulls of src) together with a success flag.
func Find(src, dst *table.Database) (Mapping, bool) {
	s := newSearcher(src, dst)
	var found Mapping
	ok := s.search(func(m Mapping) bool {
		found = m.Clone()
		return false
	})
	return found, ok
}

// Exists reports whether a homomorphism src → dst exists.
func Exists(src, dst *table.Database) bool {
	_, ok := Find(src, dst)
	return ok
}

// isStrongOnto reports whether h(src) = dst (every tuple of dst is the image
// of a tuple of src).
func isStrongOnto(m Mapping, src, dst *table.Database) bool {
	img := m.ApplyDatabase(src)
	return img.Equal(dst)
}

// isOnto reports whether h(adom(src)) = adom(dst).
func isOnto(m Mapping, src, dst *table.Database) bool {
	image := map[value.Value]bool{}
	for v := range src.ActiveDomain() {
		image[m.ApplyValue(v)] = true
	}
	dstDom := dst.ActiveDomain()
	if len(image) != len(dstDom) {
		return false
	}
	for v := range dstDom {
		if !image[v] {
			return false
		}
	}
	return true
}

// FindStrongOnto searches for a strong onto homomorphism h : src → dst,
// i.e. a homomorphism with h(src) = dst.
func FindStrongOnto(src, dst *table.Database) (Mapping, bool) {
	// Quick necessary condition: every relation of dst must be no larger
	// than the corresponding relation of src (images cannot add tuples).
	for _, name := range dst.RelationNames() {
		sr := src.Relation(name)
		if sr == nil {
			if dst.Relation(name).Len() > 0 {
				return nil, false
			}
			continue
		}
		if dst.Relation(name).Len() > sr.Len() {
			return nil, false
		}
	}
	s := newSearcher(src, dst)
	var found Mapping
	ok := s.search(func(m Mapping) bool {
		if isStrongOnto(m, src, dst) {
			found = m.Clone()
			return false
		}
		return true
	})
	return found, ok
}

// ExistsStrongOnto reports whether a strong onto homomorphism src → dst
// exists.
func ExistsStrongOnto(src, dst *table.Database) bool {
	_, ok := FindStrongOnto(src, dst)
	return ok
}

// FindOnto searches for an onto homomorphism (h(adom src) = adom dst).
func FindOnto(src, dst *table.Database) (Mapping, bool) {
	s := newSearcher(src, dst)
	var found Mapping
	ok := s.search(func(m Mapping) bool {
		if isOnto(m, src, dst) {
			found = m.Clone()
			return false
		}
		return true
	})
	return found, ok
}

// ExistsOnto reports whether an onto homomorphism src → dst exists.
func ExistsOnto(src, dst *table.Database) bool {
	_, ok := FindOnto(src, dst)
	return ok
}

// LeqOWA is the open-world information ordering: D ⪯owa D' iff there is a
// homomorphism D → D'.
func LeqOWA(d, dPrime *table.Database) bool { return Exists(d, dPrime) }

// LeqCWA is the closed-world information ordering: D ⪯cwa D' iff there is a
// strong onto homomorphism D → D'.
func LeqCWA(d, dPrime *table.Database) bool { return ExistsStrongOnto(d, dPrime) }

// LeqWCWA is the weak closed-world ordering: D ⪯wcwa D' iff there is an onto
// homomorphism D → D'.
func LeqWCWA(d, dPrime *table.Database) bool { return ExistsOnto(d, dPrime) }

// EquivalentOWA reports hom-equivalence: homomorphisms both ways.  Under the
// OWA ordering such databases carry the same information.
func EquivalentOWA(a, b *table.Database) bool { return Exists(a, b) && Exists(b, a) }

// CountHomomorphisms returns the number of homomorphisms src → dst (used by
// tests and the ordering experiments; exponential in the number of nulls).
func CountHomomorphisms(src, dst *table.Database) int {
	s := newSearcher(src, dst)
	count := 0
	s.search(func(Mapping) bool {
		count++
		return true
	})
	return count
}

// Core computes a core of the database under OWA: a minimal (with respect to
// tuple deletion) sub-database hom-equivalent to d.  Cores are unique up to
// isomorphism and are a convenient canonical representative of the
// OWA-information content of a naïve database.
func Core(d *table.Database) *table.Database {
	current := d.Clone()
	for changed := true; changed; {
		changed = false
		for _, name := range current.RelationNames() {
			rel := current.Relation(name)
			tuples := rel.Tuples()
			// Try removing tuples in a deterministic order: larger tuples
			// (more nulls) are better removal candidates, but any order
			// converges to a core.
			sort.Slice(tuples, func(i, j int) bool { return tuples[i].Less(tuples[j]) })
			for _, t := range tuples {
				candidate := current.Clone()
				candidate.Relation(name).Remove(t)
				// We may only remove t if the smaller database still admits a
				// homomorphism from the original (it always maps into the
				// original since it is a sub-database).
				if Exists(current, candidate) {
					current = candidate
					changed = true
				}
			}
		}
	}
	return current
}
