// Package hom implements homomorphisms between (incomplete) databases and
// the information orderings they induce (Section 5.2 of the paper):
//
//	D ⪯owa  D'  ⇔  there is a homomorphism h : D → D'
//	D ⪯wcwa D'  ⇔  there is an onto homomorphism (h(adom D) = adom D')
//	D ⪯cwa  D'  ⇔  there is a strong onto homomorphism (h(D) = D')
//
// A homomorphism maps the active domain of D to the active domain of D',
// is the identity on constants, and sends every tuple of D to a tuple of D'.
package hom

import (
	"slices"

	"incdata/internal/table"
	"incdata/internal/value"
)

// Mapping is a homomorphism candidate: an assignment of values to the nulls
// of the source database.  Constants are implicitly fixed.
type Mapping map[value.Value]value.Value

// ApplyValue returns the image of a value under the mapping (constants and
// unassigned nulls are fixed).
func (m Mapping) ApplyValue(v value.Value) value.Value {
	if v.IsNull() {
		if img, ok := m[v]; ok {
			return img
		}
	}
	return v
}

// ApplyTuple applies the mapping to every field of a tuple.
func (m Mapping) ApplyTuple(t table.Tuple) table.Tuple { return t.Map(m.ApplyValue) }

// ApplyDatabase returns h(D).
func (m Mapping) ApplyDatabase(d *table.Database) *table.Database { return d.Map(m.ApplyValue) }

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// obField is one precompiled field of an obligation tuple: either a fixed
// constant or a reference to a null by its index in the searcher's null
// order, so the search loop resolves images by slice indexing, with no map
// lookups.
type obField struct {
	val     value.Value // the field value when nullIdx < 0
	nullIdx int         // index into searcher.nulls, or -1 for constants
}

// tupleObligation records a source tuple, the destination relation its
// image must belong to, and the index (into the ordered null list) of the
// last null it mentions, used for incremental checking.
type tupleObligation struct {
	dstRel  *table.Relation // nil when dst lacks the relation: always fails
	tuple   table.Tuple
	fields  []obField
	lastIdx int
}

// searcher performs backtracking search for homomorphisms from src to dst.
type searcher struct {
	src, dst    *table.Database
	nulls       []value.Value       // nulls of src in fixed order
	candidates  []value.Value       // adom(dst), candidate images for each null
	obligations [][]tupleObligation // obligations[i]: tuples checkable once null i is assigned
	immediate   []tupleObligation   // null-free source tuples (checked up front)
	assigned    []value.Value       // current image per null (parallel to nulls)
	keyBuf      []byte              // scratch for image keys (no per-check allocation)

	// Forbidden image, used by Core: when set, no source tuple may map
	// onto this tuple of forbidRel — searching src → dst∖{t} without
	// materializing the smaller database.
	forbidRel *table.Relation
	forbidKey []byte
}

func newSearcher(src, dst *table.Database) *searcher {
	s := &searcher{src: src, dst: dst}
	if src == dst {
		// The self-searcher (core computation): collect nulls and
		// candidates in one pass.
		all := collectSorted(src, func(value.Value) bool { return true })
		s.candidates = all
		for _, v := range all {
			if v.IsNull() {
				s.nulls = append(s.nulls, v)
			}
		}
	} else {
		s.nulls = collectSorted(src, func(v value.Value) bool { return v.IsNull() })
		s.candidates = collectSorted(dst, func(value.Value) bool { return true })
	}
	s.assigned = make([]value.Value, len(s.nulls))
	s.obligations = make([][]tupleObligation, len(s.nulls))
	// The null list is sorted, so null indices resolve by binary search; no
	// index map is needed.
	nullIndex := func(v value.Value) int {
		idx, _ := slices.BinarySearchFunc(s.nulls, v, value.Compare)
		return idx
	}
	for _, relName := range src.RelationNames() {
		rel := src.Relation(relName)
		dstRel := dst.Relation(relName)
		// Iterate the stored tuples directly: the searcher never mutates
		// them, and the obligation order only affects pruning, not which
		// homomorphism the (null-order, candidate-order) search finds first.
		rel.Each(func(t table.Tuple) bool {
			last := -1
			fields := make([]obField, len(t))
			for fi, v := range t {
				if v.IsNull() {
					i := nullIndex(v)
					fields[fi] = obField{nullIdx: i}
					if i > last {
						last = i
					}
				} else {
					fields[fi] = obField{val: v, nullIdx: -1}
				}
			}
			ob := tupleObligation{dstRel: dstRel, tuple: t, fields: fields, lastIdx: last}
			if last < 0 {
				s.immediate = append(s.immediate, ob)
			} else {
				s.obligations[last] = append(s.obligations[last], ob)
			}
			return true
		})
	}
	return s
}

// collectSorted gathers the distinct values of d satisfying keep, sorted.
// It collects with duplicates and sort-deduplicates — for the small
// databases homomorphism search runs on, that beats building a set.
func collectSorted(d *table.Database, keep func(value.Value) bool) []value.Value {
	var out []value.Value
	for _, name := range d.RelationNames() {
		d.Relation(name).Each(func(t table.Tuple) bool {
			for _, v := range t {
				if keep(v) {
					out = append(out, v)
				}
			}
			return true
		})
	}
	slices.SortFunc(out, value.Compare)
	return slices.Compact(out)
}

// checkTuple reports whether the image of the obligation's tuple under m is
// present in dst.  The image's key is built in a scratch buffer; the image
// tuple itself is never materialized.
func (s *searcher) checkTuple(ob tupleObligation) bool {
	if ob.dstRel == nil {
		return false
	}
	buf := s.keyBuf[:0]
	for _, f := range ob.fields {
		if f.nullIdx >= 0 {
			buf = s.assigned[f.nullIdx].AppendKey(buf)
		} else {
			buf = f.val.AppendKey(buf)
		}
	}
	s.keyBuf = buf
	if !ob.dstRel.ContainsKey(buf) {
		return false
	}
	if s.forbidRel == ob.dstRel && string(buf) == string(s.forbidKey) {
		return false
	}
	return true
}

// existsAvoiding reports whether a homomorphism src → dst exists whose
// image avoids the tuple t of the named destination relation, i.e. a
// homomorphism src → dst∖{t}.  Core uses it to test tuple removals
// without cloning the database per attempt.
func (s *searcher) existsAvoiding(rel *table.Relation, t table.Tuple) bool {
	s.forbidRel = rel
	s.forbidKey = t.AppendKey(s.forbidKey[:0])
	found := s.search(func(Mapping) bool { return false })
	s.forbidRel = nil
	return found
}

// search enumerates homomorphisms; accept is called with each complete
// homomorphism and returns true to keep searching or false to stop.  The
// return value reports whether some call to accept returned false (i.e. a
// witness was found and the search stopped early).
func (s *searcher) search(accept func(Mapping) bool) bool {
	for _, ob := range s.immediate {
		if !s.checkTuple(ob) {
			return false
		}
	}
	m := make(Mapping, len(s.nulls))
	stopped := false
	var rec func(i int) bool // returns false to stop the whole search
	rec = func(i int) bool {
		if i == len(s.nulls) {
			if !accept(m) {
				stopped = true
				return false
			}
			return true
		}
		for _, c := range s.candidates {
			s.assigned[i] = c
			ok := true
			for _, ob := range s.obligations[i] {
				if !s.checkTuple(ob) {
					ok = false
					break
				}
			}
			if ok {
				m[s.nulls[i]] = c
				if !rec(i + 1) {
					return false
				}
			}
		}
		delete(m, s.nulls[i])
		return true
	}
	rec(0)
	return stopped
}

// Find searches for a homomorphism h : src → dst and returns it (as a
// mapping on the nulls of src) together with a success flag.
func Find(src, dst *table.Database) (Mapping, bool) {
	s := newSearcher(src, dst)
	var found Mapping
	ok := s.search(func(m Mapping) bool {
		found = m.Clone()
		return false
	})
	return found, ok
}

// Exists reports whether a homomorphism src → dst exists.
func Exists(src, dst *table.Database) bool {
	_, ok := Find(src, dst)
	return ok
}

// isStrongOnto reports whether h(src) = dst (every tuple of dst is the image
// of a tuple of src).
func isStrongOnto(m Mapping, src, dst *table.Database) bool {
	img := m.ApplyDatabase(src)
	return img.Equal(dst)
}

// isOnto reports whether h(adom(src)) = adom(dst).
func isOnto(m Mapping, src, dst *table.Database) bool {
	image := map[value.Value]bool{}
	for v := range src.ActiveDomain() {
		image[m.ApplyValue(v)] = true
	}
	dstDom := dst.ActiveDomain()
	if len(image) != len(dstDom) {
		return false
	}
	for v := range dstDom {
		if !image[v] {
			return false
		}
	}
	return true
}

// FindStrongOnto searches for a strong onto homomorphism h : src → dst,
// i.e. a homomorphism with h(src) = dst.
func FindStrongOnto(src, dst *table.Database) (Mapping, bool) {
	// Quick necessary condition: every relation of dst must be no larger
	// than the corresponding relation of src (images cannot add tuples).
	for _, name := range dst.RelationNames() {
		sr := src.Relation(name)
		if sr == nil {
			if dst.Relation(name).Len() > 0 {
				return nil, false
			}
			continue
		}
		if dst.Relation(name).Len() > sr.Len() {
			return nil, false
		}
	}
	s := newSearcher(src, dst)
	var found Mapping
	ok := s.search(func(m Mapping) bool {
		if isStrongOnto(m, src, dst) {
			found = m.Clone()
			return false
		}
		return true
	})
	return found, ok
}

// ExistsStrongOnto reports whether a strong onto homomorphism src → dst
// exists.
func ExistsStrongOnto(src, dst *table.Database) bool {
	_, ok := FindStrongOnto(src, dst)
	return ok
}

// FindOnto searches for an onto homomorphism (h(adom src) = adom dst).
func FindOnto(src, dst *table.Database) (Mapping, bool) {
	s := newSearcher(src, dst)
	var found Mapping
	ok := s.search(func(m Mapping) bool {
		if isOnto(m, src, dst) {
			found = m.Clone()
			return false
		}
		return true
	})
	return found, ok
}

// ExistsOnto reports whether an onto homomorphism src → dst exists.
func ExistsOnto(src, dst *table.Database) bool {
	_, ok := FindOnto(src, dst)
	return ok
}

// LeqOWA is the open-world information ordering: D ⪯owa D' iff there is a
// homomorphism D → D'.
func LeqOWA(d, dPrime *table.Database) bool { return Exists(d, dPrime) }

// LeqCWA is the closed-world information ordering: D ⪯cwa D' iff there is a
// strong onto homomorphism D → D'.
func LeqCWA(d, dPrime *table.Database) bool { return ExistsStrongOnto(d, dPrime) }

// LeqWCWA is the weak closed-world ordering: D ⪯wcwa D' iff there is an onto
// homomorphism D → D'.
func LeqWCWA(d, dPrime *table.Database) bool { return ExistsOnto(d, dPrime) }

// EquivalentOWA reports hom-equivalence: homomorphisms both ways.  Under the
// OWA ordering such databases carry the same information.
func EquivalentOWA(a, b *table.Database) bool { return Exists(a, b) && Exists(b, a) }

// CountHomomorphisms returns the number of homomorphisms src → dst (used by
// tests and the ordering experiments; exponential in the number of nulls).
func CountHomomorphisms(src, dst *table.Database) int {
	s := newSearcher(src, dst)
	count := 0
	s.search(func(Mapping) bool {
		count++
		return true
	})
	return count
}

// Core computes a core of the database under OWA: a minimal (with respect to
// tuple deletion) sub-database hom-equivalent to d.  Cores are unique up to
// isomorphism and are a convenient canonical representative of the
// OWA-information content of a naïve database.
//
// A tuple t may be removed when current admits a homomorphism into
// current∖{t} (the smaller database always maps into the larger).  The
// search runs on a single reusable searcher per core state with t as a
// forbidden image, so failed attempts — the common case once the core is
// reached — cost no setup; a complete database is its own core (every
// homomorphism fixes it pointwise).
func Core(d *table.Database) *table.Database {
	current := d.Clone()
	if current.IsComplete() {
		return current
	}
	for changed := true; changed; {
		changed = false
		s := newSearcher(current, current)
		for _, name := range current.RelationNames() {
			rel := current.Relation(name)
			// Try removing tuples in a deterministic order: any order
			// converges to a core, and the canonical order makes the
			// representative reproducible.
			tuples := rel.SortedTuples()
			for _, t := range tuples {
				if s.existsAvoiding(rel, t) {
					rel.Remove(t)
					changed = true
					s = newSearcher(current, current)
				}
			}
		}
	}
	return current
}
