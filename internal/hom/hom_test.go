package hom

import (
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

func db1(t *testing.T, rows ...[]string) *table.Database {
	t.Helper()
	s := schema.MustNew(schema.WithArity("R", len(rows[0])))
	d := table.NewDatabase(s)
	for _, r := range rows {
		d.MustAddRow("R", r...)
	}
	return d
}

func TestMappingApply(t *testing.T) {
	m := Mapping{value.Null(1): value.Int(7)}
	if m.ApplyValue(value.Null(1)) != value.Int(7) || m.ApplyValue(value.Null(2)) != value.Null(2) || m.ApplyValue(value.Int(3)) != value.Int(3) {
		t.Error("ApplyValue wrong")
	}
	tp := m.ApplyTuple(table.MustParseTuple("⊥1", "5"))
	if !tp.Equal(table.MustParseTuple("7", "5")) {
		t.Errorf("ApplyTuple = %v", tp)
	}
	c := m.Clone()
	c[value.Null(1)] = value.Int(8)
	if m[value.Null(1)] != value.Int(7) {
		t.Error("Clone aliases")
	}
}

func TestFindSimple(t *testing.T) {
	// R = {(1,⊥1),(⊥1,2)} maps into R' = {(1,3),(3,2)} via ⊥1↦3.
	src := db1(t, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	dst := db1(t, []string{"1", "3"}, []string{"3", "2"})
	m, ok := Find(src, dst)
	if !ok {
		t.Fatal("homomorphism should exist")
	}
	if m[value.Null(1)] != value.Int(3) {
		t.Errorf("mapping = %v", m)
	}
	if !m.ApplyDatabaseCheck(src, dst) {
		t.Error("image not contained in dst")
	}
}

// ApplyDatabaseCheck is a test helper verifying h(src) ⊆ dst.
func (m Mapping) ApplyDatabaseCheck(src, dst *table.Database) bool {
	return dst.ContainsDatabase(m.ApplyDatabase(src))
}

func TestFindRespectConstants(t *testing.T) {
	// Constants must be fixed: R={(1,2)} has no homomorphism into R'={(3,4)}.
	src := db1(t, []string{"1", "2"})
	dst := db1(t, []string{"3", "4"})
	if Exists(src, dst) {
		t.Error("homomorphism must fix constants")
	}
}

func TestFindSharedNullConstraint(t *testing.T) {
	// ⊥1 occurs twice; both occurrences must map to the same value.
	src := db1(t, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	dst := db1(t, []string{"1", "3"}, []string{"4", "2"}) // would need ⊥1↦3 and ⊥1↦4
	if Exists(src, dst) {
		t.Error("no homomorphism should exist when a shared null needs two images")
	}
}

func TestFindNullToNull(t *testing.T) {
	// Nulls may map to nulls of the target.
	src := db1(t, []string{"1", "⊥1"})
	dst := db1(t, []string{"1", "⊥5"})
	m, ok := Find(src, dst)
	if !ok || m[value.Null(1)] != value.Null(5) {
		t.Errorf("expected ⊥1↦⊥5, got %v ok=%v", m, ok)
	}
}

func TestFindCompleteTuplesMustMatch(t *testing.T) {
	src := db1(t, []string{"1", "2"}, []string{"1", "⊥1"})
	dst := db1(t, []string{"1", "3"})
	if Exists(src, dst) {
		t.Error("null-free tuple (1,2) has no image; no homomorphism")
	}
	dst2 := db1(t, []string{"1", "2"})
	if !Exists(src, dst2) {
		t.Error("homomorphism with ⊥1↦2 should exist")
	}
}

func TestExistsEmptySource(t *testing.T) {
	src := table.NewDatabase(schema.MustNew(schema.WithArity("R", 2)))
	dst := db1(t, []string{"1", "2"})
	if !Exists(src, dst) {
		t.Error("empty database maps into anything")
	}
	if Exists(dst, src) {
		t.Error("nonempty complete database does not map into empty one")
	}
}

func TestStrongOnto(t *testing.T) {
	// The paper: D ⪯cwa D' iff strong onto homomorphism exists.
	src := db1(t, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	dstExact := db1(t, []string{"1", "3"}, []string{"3", "2"})
	if !ExistsStrongOnto(src, dstExact) {
		t.Error("strong onto homomorphism should exist (⊥1↦3 covers all of dst)")
	}
	// Add an extra tuple to dst: still a homomorphism, but not strong onto.
	dstExtra := db1(t, []string{"1", "3"}, []string{"3", "2"}, []string{"5", "6"})
	if !Exists(src, dstExtra) {
		t.Error("plain homomorphism should exist into the larger db")
	}
	if ExistsStrongOnto(src, dstExtra) {
		t.Error("strong onto homomorphism should not exist when dst has an unhit tuple")
	}
}

func TestStrongOntoMerging(t *testing.T) {
	// A strong onto homomorphism may merge tuples of src.
	src := db1(t, []string{"1", "⊥1"}, []string{"1", "⊥2"})
	dst := db1(t, []string{"1", "7"})
	m, ok := FindStrongOnto(src, dst)
	if !ok {
		t.Fatal("strong onto homomorphism should exist by merging both tuples onto (1,7)")
	}
	if m[value.Null(1)] != value.Int(7) || m[value.Null(2)] != value.Int(7) {
		t.Errorf("mapping = %v", m)
	}
}

func TestOnto(t *testing.T) {
	// Onto requires covering adom(dst), not the tuples of dst.
	src := db1(t, []string{"1", "⊥1"})
	dst := db1(t, []string{"1", "2"})
	if !ExistsOnto(src, dst) {
		t.Error("onto homomorphism (⊥1↦2) should exist: image {1,2} = adom(dst)")
	}
	dstBig := db1(t, []string{"1", "2"}, []string{"1", "3"})
	if ExistsOnto(src, dstBig) {
		t.Error("cannot cover adom {1,2,3} with image of {1,⊥1}")
	}
	if !Exists(src, dstBig) {
		t.Error("plain homomorphism should still exist")
	}
}

func TestOrderings(t *testing.T) {
	// From the paper (Section 5.3): R = {(1,2),(2,⊥)}, and the candidate
	// "certain answer" {(1,2)}.  Under ⪯owa, {(1,2)} ⪯ every v(R); under
	// ⪯cwa it is NOT below v(R).
	r := db1(t, []string{"1", "2"}, []string{"2", "⊥1"})
	single := db1(t, []string{"1", "2"})
	vr := db1(t, []string{"1", "2"}, []string{"2", "5"}) // a valuation image of r

	if !LeqOWA(single, vr) {
		t.Error("{(1,2)} ⪯owa v(R) should hold")
	}
	if LeqCWA(single, vr) {
		t.Error("{(1,2)} ⪯cwa v(R) should NOT hold (the paper's point)")
	}
	if !LeqCWA(r, vr) {
		t.Error("R ⪯cwa v(R) should hold")
	}
	if !LeqOWA(r, vr) || !LeqWCWA(r, vr) {
		t.Error("R should be below v(R) in all orderings")
	}
}

func TestEquivalentOWA(t *testing.T) {
	a := db1(t, []string{"1", "⊥1"})
	b := db1(t, []string{"1", "⊥2"}, []string{"1", "⊥3"})
	if !EquivalentOWA(a, b) {
		t.Error("a and b are hom-equivalent")
	}
	c := db1(t, []string{"1", "2"})
	if EquivalentOWA(a, c) {
		t.Error("a and c are not hom-equivalent (c has no hom into a ... actually it does? check)")
	}
}

func TestCountHomomorphisms(t *testing.T) {
	src := db1(t, []string{"1", "⊥1"})
	dst := db1(t, []string{"1", "2"}, []string{"1", "3"})
	// ⊥1 can map to 2 or 3 (mapping to 1 would need tuple (1,1) in dst).
	if got := CountHomomorphisms(src, dst); got != 2 {
		t.Errorf("CountHomomorphisms = %d, want 2", got)
	}
	if got := CountHomomorphisms(dst, src); got != 0 {
		t.Errorf("CountHomomorphisms(dst,src) = %d, want 0", got)
	}
}

func TestCore(t *testing.T) {
	// {(1,⊥1),(1,⊥2),(1,2)} has core {(1,2)}: every tuple maps onto (1,2).
	d := db1(t, []string{"1", "⊥1"}, []string{"1", "⊥2"}, []string{"1", "2"})
	core := Core(d)
	if core.TotalTuples() != 1 {
		t.Fatalf("core size = %d, want 1: %v", core.TotalTuples(), core)
	}
	if !core.Relation("R").Contains(table.MustParseTuple("1", "2")) {
		t.Errorf("core = %v", core)
	}
	if !EquivalentOWA(d, core) {
		t.Error("core must be hom-equivalent to the original")
	}
	// A database that is already a core stays unchanged.
	c2 := db1(t, []string{"1", "2"}, []string{"3", "4"})
	if !Core(c2).Equal(c2) {
		t.Error("complete database without redundancy should be its own core")
	}
}

func TestLeqOWAReflexiveTransitiveSample(t *testing.T) {
	a := db1(t, []string{"1", "⊥1"})
	b := db1(t, []string{"1", "2"})
	c := db1(t, []string{"1", "2"}, []string{"3", "4"})
	if !LeqOWA(a, a) || !LeqOWA(b, b) {
		t.Error("⪯owa must be reflexive")
	}
	if !LeqOWA(a, b) || !LeqOWA(b, c) || !LeqOWA(a, c) {
		t.Error("⪯owa transitivity sample failed")
	}
}
