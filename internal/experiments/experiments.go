// Package experiments implements the reproduction experiments E1–E19
// indexed in the "Experiments" section of README.md.  The paper (a theory keynote) has no numbered
// tables or figures; each experiment regenerates one of its worked examples
// or checkable claims, at parameterised scale, and prints the rows recorded
// in README.md.  The same code backs cmd/incbench (human-readable
// output) and the root-level Go benchmarks (one Benchmark per experiment).
//
// All query evaluation goes through the engine facade (internal/engine): a
// Harness carries the evaluation settings (planner on/off) and spins up
// one engine per generated database, exactly as a serving workload would.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"incdata/internal/cq"
	"incdata/internal/ctable"
	"incdata/internal/engine"
	"incdata/internal/hom"
	"incdata/internal/order"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/sqlx"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
	"incdata/internal/workload"
)

// Harness carries the evaluation settings shared by every experiment; the
// zero value evaluates through the engine with the planner on.
type Harness struct {
	// Planner selects the engine's evaluation path for every query the
	// experiments run.
	Planner engine.PlannerSetting

	// Workers is the intra-query worker budget passed to every evaluation
	// (engine.Options.Workers): 0 resolves to GOMAXPROCS, 1 forces the
	// serial oracle path.  E16 sweeps its own worker counts on top.
	Workers int

	// Columnar selects the vectorized columnar execution path or the
	// per-tuple row oracle for every planned evaluation
	// (engine.Options.Columnar).
	Columnar engine.ColumnarSetting

	// Coded selects the dictionary-coded execution tier of planned
	// evaluation (engine.Options.Coded).
	Coded engine.CodedSetting
}

// engine builds the evaluation engine for one generated database.
func (h Harness) engine(d *table.Database) *engine.Engine { return engine.New(d) }

// opts is the engine options for a mode under the harness's settings.
func (h Harness) opts(m engine.Mode) engine.Options {
	return engine.Options{Mode: m, Planner: h.Planner, Workers: h.Workers, Columnar: h.Columnar, Coded: h.Coded}
}

// mustRel unwraps an engine evaluation that cannot fail in a healthy
// experiment run.
func mustRel(r *table.Relation, err error) *table.Relation {
	if err != nil {
		panic(err)
	}
	return r
}

// Result is the printable outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
	// Seconds is the wall-clock time the experiment took; cmd/incbench
	// archives it to compare planner-on and planner-off runs.
	Seconds float64 `json:"seconds"`
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	if r.Notes != "" {
		b.WriteString(r.Notes)
		b.WriteString("\n")
	}
	return b.String()
}

func itoa(i int) string           { return fmt.Sprintf("%d", i) }
func ftoa(f float64) string       { return fmt.Sprintf("%.2f", f) }
func dtoa(d time.Duration) string { return d.Round(time.Microsecond).String() }

// sqlNotIn is the introduction's SQL query.
func sqlNotIn() sqlx.Query {
	return sqlx.Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where:  sqlx.In{Term: sqlx.Col("o_id"), Sub: sqlx.Subquery{Select: "order", From: "Pay"}, Negate: true},
	}
}

// sqlNotExists is the correlated NOT EXISTS rewrite.
func sqlNotExists() sqlx.Query {
	return sqlx.Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: sqlx.Exists{
			Sub:    sqlx.Subquery{From: "Pay", Correlate: []sqlx.Correlation{{Inner: "order", Outer: "o_id"}}},
			Negate: true,
		},
	}
}

// certainUnpaid counts the orders that are unpaid in every valuation: an
// order is certainly unpaid iff no payment references it by constant and no
// payment has a null order reference (a null could pay for it).
func certainUnpaid(d *table.Database) int {
	nullPayments := false
	referenced := map[value.Value]bool{}
	d.Relation("Pay").Each(func(t table.Tuple) bool {
		if t[1].IsNull() {
			nullPayments = true
		} else {
			referenced[t[1]] = true
		}
		return true
	})
	if nullPayments {
		return 0
	}
	count := 0
	d.Relation("Order").Each(func(t table.Tuple) bool {
		if !referenced[t[0]] {
			count++
		}
		return true
	})
	return count
}

// E1UnpaidOrders sweeps the orders/payments workload over sizes and null
// rates and compares the SQL NOT IN answer, the SQL NOT EXISTS rewrite
// (the sound "possibly unpaid" over-approximation), and tuple-level certain
// answers against the generator's ground truth.
func (h Harness) E1UnpaidOrders(sizes []int, nullRates []float64) Result {
	res := Result{
		ID:     "E1",
		Title:  "Unpaid-orders anomaly: SQL 3VL vs certain answers (§1)",
		Header: []string{"orders", "nullRate", "trulyUnpaid", "sqlNotIn", "sqlNotExists", "certainUnpaid", "notInFalseNeg"},
		Notes: "sqlNotIn collapses to 0 as soon as a single payment has a null order reference;\n" +
			"NOT EXISTS returns the sound possible-unpaid over-approximation; certainUnpaid is the sound lower bound.",
	}
	for _, n := range sizes {
		for _, rate := range nullRates {
			d, unpaid := workload.Orders(workload.OrdersConfig{Orders: n, PaidFraction: 0.7, NullRate: rate, Seed: 42})
			eng := h.engine(d)
			notIn := mustRel(eng.SQL(sqlNotIn()))
			notExists := mustRel(eng.SQL(sqlNotExists()))
			cert := certainUnpaid(d)
			falseNeg := len(unpaid) - notIn.Len()
			if falseNeg < 0 {
				falseNeg = 0
			}
			res.Rows = append(res.Rows, []string{
				itoa(n), ftoa(rate), itoa(len(unpaid)), itoa(notIn.Len()), itoa(notExists.Len()), itoa(cert), itoa(falseNeg),
			})
		}
	}
	return res
}

// E2Difference reproduces the R − S anomaly: SQL returns ∅ whenever S
// contains a null although |R| > |S| forces nonemptiness; the Boolean
// certain answer "R − S is nonempty" is computed from the cardinalities.
func (h Harness) E2Difference(rSizes []int) Result {
	res := Result{
		ID:     "E2",
		Title:  "R − S with a null in S: SQL vs certainty (§1)",
		Header: []string{"|R|", "|S|", "sqlAnswer", "naiveCertain", "certainNonempty"},
		Notes:  "SQL answers ∅ for every |R|; the certain Boolean answer is true whenever |R| > |S|.",
	}
	for _, n := range rSizes {
		d := workload.Pairs(workload.PairsConfig{RSize: n, SSize: 1, SNulls: 1, DomainSize: 10 * n, Seed: 7})
		eng := h.engine(d)
		q := sqlx.Query{
			Select: []string{"A"},
			From:   "R",
			Where:  sqlx.In{Term: sqlx.Col("A"), Sub: sqlx.Subquery{Select: "A", From: "S"}, Negate: true},
		}
		sqlAns := mustRel(eng.SQL(q))
		naive, _ := eng.Eval(ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")}, h.opts(engine.ModeCertain))
		rLen := d.Relation("R").Len()
		sLen := d.Relation("S").Len()
		res.Rows = append(res.Rows, []string{
			itoa(rLen), itoa(sLen), itoa(sqlAns.Len()), itoa(naive.Len()), fmt.Sprintf("%v", rLen > sLen),
		})
	}
	return res
}

// E3Tautology reproduces Grant's example: the tautological selection drops
// the null row under SQL 3VL but is certain under every interpretation.
func (h Harness) E3Tautology() Result {
	d := table.NewDatabase(workload.OrdersSchema())
	d.MustAddRow("Order", "oid1", "pr1")
	d.MustAddRow("Order", "oid2", "pr2")
	d.MustAddRow("Pay", "pid1", "⊥1", "100")
	eng := h.engine(d)

	sqlQ := sqlx.Query{
		Select: []string{"p_id"},
		From:   "Pay",
		Where: sqlx.AnyOf(
			sqlx.Eq(sqlx.Col("order"), sqlx.ValString("oid1")),
			sqlx.Neq(sqlx.Col("order"), sqlx.ValString("oid1")),
		),
	}
	sqlAns := mustRel(eng.SQL(sqlQ))

	raQ := ra.Project{
		Input: ra.Select{
			Input: ra.Base("Pay"),
			Pred: ra.AnyOf(
				ra.Eq(ra.Attr("order"), ra.LitString("oid1")),
				ra.Neq(ra.Attr("order"), ra.LitString("oid1")),
			),
		},
		Attrs: []string{"p_id"},
	}
	cwaOpts := h.opts(engine.ModeCertainCWA)
	cwaOpts.ExtraFresh = 1
	truth, _ := eng.Eval(raQ, cwaOpts)

	return Result{
		ID:     "E3",
		Title:  "Tautological selection σ[order='oid1' ∨ order≠'oid1'] (§1, Grant 1977)",
		Header: []string{"evaluation", "answer size", "contains pid1"},
		Rows: [][]string{
			{"SQL 3VL", itoa(sqlAns.Len()), fmt.Sprintf("%v", sqlAns.Contains(table.MustParseTuple("pid1")))},
			{"certain (world enumeration)", itoa(truth.Len()), fmt.Sprintf("%v", truth.Contains(table.MustParseTuple("pid1")))},
		},
		Notes: "The certain answer contains pid1; SQL's three-valued logic loses it.",
	}
}

// E4CTables verifies the strong-representation-system property of c-tables
// on R − S instances of growing size: the worlds of the computed c-table
// coincide with the direct images {v(R) − v(S)}.
func (h Harness) E4CTables(rSizes []int) Result {
	res := Result{
		ID:     "E4",
		Title:  "Conditional tables as a strong representation system for R − S (§2)",
		Header: []string{"|R|", "ctable rows", "worlds", "matchesDirect", "time"},
	}
	for _, n := range rSizes {
		rRel := table.NewRelation(schema.NewRelation("R", "A"))
		for i := 0; i < n; i++ {
			rRel.MustAdd(table.NewTuple(value.Int(int64(i + 1))))
		}
		sRel := table.NewRelation(schema.NewRelation("S", "A"))
		sRel.MustAdd(table.NewTuple(value.Null(1)))

		start := time.Now()
		diff, _ := ctable.Diff(ctable.FromRelation(rRel), ctable.FromRelation(sRel))
		dom := make([]value.Value, 0, n+1)
		for i := 0; i < n; i++ {
			dom = append(dom, value.Int(int64(i+1)))
		}
		dom = append(dom, value.String("fresh"))
		worlds := diff.WorldSet(dom)
		elapsed := time.Since(start)

		// Direct evaluation world by world.
		matches := true
		for _, c := range dom {
			want := rRel.Clone()
			want.Remove(table.NewTuple(c))
			found := false
			for _, w := range worlds {
				if w.Equal(want) {
					found = true
					break
				}
			}
			if !found {
				matches = false
			}
		}
		res.Rows = append(res.Rows, []string{
			itoa(n), itoa(len(diff.Rows)), itoa(len(worlds)), fmt.Sprintf("%v", matches), dtoa(elapsed),
		})
	}
	return res
}

// E5NaiveUCQ checks equation (4) — naïve evaluation computes certain
// answers for UCQs — on random naïve databases, and exhibits the π(R−S)
// counterexample outside the fragment.
func (h Harness) E5NaiveUCQ(trials int, nullCounts []int) Result {
	res := Result{
		ID:     "E5",
		Title:  "Naïve evaluation = certain answers for UCQs; failure beyond (§2, eq. 4)",
		Header: []string{"nulls", "trials", "ucqAgree", "ucqDisagree", "projDiffSpurious"},
	}
	ucq := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	projDiff := ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"#1"}}
	for _, k := range nullCounts {
		agree, disagree, spurious := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			d := workload.Random(workload.RandomConfig{
				Relations:         map[string]int{"R": 2, "S": 2},
				TuplesPerRelation: 6,
				DomainSize:        4,
				Nulls:             k,
				NullRate:          0.35,
				Seed:              int64(1000*k + trial),
			})
			eng := h.engine(d)
			cmpOpts := h.opts(engine.ModeCertainCWA)
			cmpOpts.ExtraFresh = 1
			cmpOpts.MaxWorlds = 200000
			cmp, err := eng.Compare(ucq, cmpOpts)
			if err != nil {
				continue
			}
			if cmp.Agree {
				agree++
			} else {
				disagree++
			}
			cmp2, err := eng.Compare(projDiff, cmpOpts)
			if err == nil && len(cmp2.SpuriousInNaive) > 0 {
				spurious++
			}
		}
		res.Rows = append(res.Rows, []string{itoa(k), itoa(trials), itoa(agree), itoa(disagree), itoa(spurious)})
	}
	res.Notes = "ucqDisagree must be 0 (the paper's eq. 4); projDiffSpurious counts instances where naïve\n" +
		"evaluation of π(R−S) returns non-certain tuples, the paper's counterexample."
	return res
}

// E6Complexity exhibits the complexity separation: naïve evaluation scales
// with the database, world enumeration scales exponentially with the number
// of nulls.
func (h Harness) E6Complexity(dbSizes []int, nullCounts []int) Result {
	res := Result{
		ID:     "E6",
		Title:  "Data-complexity separation: naïve evaluation vs world enumeration (§2)",
		Header: []string{"tuples", "nulls", "naiveTime", "worlds", "worldTime"},
	}
	q := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}
	for _, size := range dbSizes {
		for _, k := range nullCounts {
			d := workload.Random(workload.RandomConfig{
				Relations:         map[string]int{"R": 2, "S": 2},
				TuplesPerRelation: size,
				DomainSize:        size * 2,
				Nulls:             k,
				NullRate:          0.2,
				Seed:              int64(size + k),
			})
			eng := h.engine(d)
			start := time.Now()
			if _, err := eng.Eval(q, h.opts(engine.ModeCertain)); err != nil {
				continue
			}
			naiveTime := time.Since(start)

			cwaOpts := h.opts(engine.ModeCertainCWA)
			cwaOpts.ExtraFresh = 1
			cwaOpts.MaxWorlds = 1 << 17
			cwaOpts.Workers = 4
			start = time.Now()
			worlds := 0
			_, err := eng.Eval(q, cwaOpts)
			worldTime := time.Since(start)
			worldCell := "skipped"
			if err == nil {
				dom := len(d.Consts()) + 1
				worlds = 1
				for i := 0; i < len(d.Nulls()); i++ {
					worlds *= dom
				}
				worldCell = dtoa(worldTime)
			}
			res.Rows = append(res.Rows, []string{itoa(d.TotalTuples()), itoa(len(d.Nulls())), dtoa(naiveTime), itoa(worlds), worldCell})
		}
	}
	res.Notes = "worldTime grows as |dom|^#nulls while naiveTime tracks the database size — the paper's\n" +
		"complexity gap (AC0 naïve evaluation vs coNP certain answers) made concrete."
	return res
}

// E7Duality cross-checks the three equivalent ways of computing certain
// answers to Boolean CQs under OWA (§4): naïve evaluation D ⊨ Q, the
// containment Q_D ⊆ Q, and the homomorphism test.
func (h Harness) E7Duality(atomCounts []int, trials int) Result {
	res := Result{
		ID:     "E7",
		Title:  "Duality: certain CQ answers = containment = naïve evaluation (§4)",
		Header: []string{"atoms", "trials", "allAgree", "naiveTime", "containmentTime"},
	}
	s := schema.MustNew(schema.WithArity("R", 2))
	for _, atoms := range atomCounts {
		agree := true
		var naiveTotal, contTotal time.Duration
		for trial := 0; trial < trials; trial++ {
			d := workload.Random(workload.RandomConfig{
				Relations:         map[string]int{"R": 2},
				TuplesPerRelation: 8,
				DomainSize:        4,
				Nulls:             3,
				NullRate:          0.3,
				Seed:              int64(100*atoms + trial),
			})
			// A chain CQ of the given length: ∃x0..xk R(x0,x1) ∧ ... ∧ R(x_{k-1},x_k).
			var body []cq.Atom
			for i := 0; i < atoms; i++ {
				body = append(body, cq.NewAtom("R", cq.V(fmt.Sprintf("x%d", i)), cq.V(fmt.Sprintf("x%d", i+1))))
			}
			q := cq.Query{Body: body}

			start := time.Now()
			naive, err := q.EvalBool(d)
			naiveTotal += time.Since(start)
			if err != nil {
				continue
			}
			start = time.Now()
			qd := cq.FromDatabase(d)
			viaCont, err := cq.Contained(qd, q, s)
			contTotal += time.Since(start)
			if err != nil || naive != viaCont {
				agree = false
			}
		}
		res.Rows = append(res.Rows, []string{
			itoa(atoms), itoa(trials), fmt.Sprintf("%v", agree),
			dtoa(naiveTotal / time.Duration(trials)), dtoa(contTotal / time.Duration(trials)),
		})
	}
	return res
}

// E8CertainO reproduces the Section 5.3 example: the intersection-based
// certain answer is not a ⪯cwa lower bound of the answer set, while
// certainO (the GLB) is, and certainO coincides with the naïve answer.
func (h Harness) E8CertainO() Result {
	s := schema.MustNew(schema.WithArity("R", 2))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "2", "⊥1")
	q := ra.Base("R")
	eng := h.engine(d)

	cwaOpts := h.opts(engine.ModeCertainCWA)
	cwaOpts.ExtraFresh = 2
	glbOpts := h.opts(engine.ModeCertainObject)
	glbOpts.ExtraFresh = 2
	inter, _ := eng.Eval(q, cwaOpts)
	glb, _ := eng.Eval(q, glbOpts)
	naiveRaw, _ := eng.Eval(q, h.opts(engine.ModeNaive))

	// Collect the answer relations over the worlds as databases for the
	// lower-bound checks.
	var answers []*table.Database
	worldsDom := []value.Value{value.Int(1), value.Int(2), value.Int(3)}
	for _, c := range worldsDom {
		w := table.NewDatabase(s)
		w.MustAddRow("R", "1", "2")
		w.MustAdd("R", table.NewTuple(value.Int(2), c))
		answers = append(answers, w)
	}
	toDB := func(r *table.Relation) *table.Database {
		out := table.NewDatabase(s)
		for _, t := range r.Tuples() {
			out.MustAdd("R", t)
		}
		return out
	}
	interLBCWA := order.IsLowerBound(order.CWA, toDB(inter), answers)
	interLBOWA := order.IsLowerBound(order.OWA, toDB(inter), answers)
	glbLBOWA := order.IsLowerBound(order.OWA, toDB(glb), answers)
	naiveEquiv := hom.EquivalentOWA(toDB(glb), toDB(naiveRaw))

	return Result{
		ID:     "E8",
		Title:  "Intersection vs certainO on R = {(1,2),(2,⊥)} (§5.3)",
		Header: []string{"object", "tuples", "⪯owa lower bound", "⪯cwa lower bound", "≡ naïve answer"},
		Rows: [][]string{
			{"intersection {(1,2)}", itoa(inter.Len()), fmt.Sprintf("%v", interLBOWA), fmt.Sprintf("%v", interLBCWA), "false"},
			{"certainO (GLB)", itoa(glb.Len()), fmt.Sprintf("%v", glbLBOWA), "n/a", fmt.Sprintf("%v", naiveEquiv)},
		},
		Notes: "The intersection-based answer fails to be a ⪯cwa lower bound; certainO keeps the\n" +
			"partially-known tuple (2,⊥) and is hom-equivalent to the naïvely evaluated answer (eq. 9).",
	}
}

// E9Division verifies that cwa-naïve evaluation works for division (RAcwa)
// queries on generated enrolment databases of growing size.
func (h Harness) E9Division(studentCounts []int, nullRates []float64) Result {
	res := Result{
		ID:     "E9",
		Title:  "Division (RAcwa) under CWA: naïve evaluation is correct (§6.2)",
		Header: []string{"students", "nullRate", "naiveAnswer", "agreesWithWorlds", "naiveTime"},
	}
	q := ra.Division{Left: ra.Base("Enroll"), Right: ra.Base("Course")}
	for _, n := range studentCounts {
		for _, rate := range nullRates {
			d, _ := workload.Enroll(workload.EnrollConfig{Students: n, Courses: 3, EnrollRate: 0.8, NullRate: rate, Seed: int64(n)})
			eng := h.engine(d)
			start := time.Now()
			naive, err := eng.Eval(q, h.opts(engine.ModeCertain))
			naiveTime := time.Since(start)
			if err != nil {
				continue
			}
			agreeCell := "skipped"
			if len(d.Nulls()) <= 3 {
				cwaOpts := h.opts(engine.ModeCertainCWA)
				cwaOpts.ExtraFresh = 1
				cwaOpts.MaxWorlds = 1 << 17
				cwaOpts.Workers = 4
				truth, err := eng.Eval(q, cwaOpts)
				if err == nil {
					agreeCell = fmt.Sprintf("%v", naive.Equal(truth))
				}
			}
			res.Rows = append(res.Rows, []string{itoa(n), ftoa(rate), itoa(naive.Len()), agreeCell, dtoa(naiveTime)})
		}
	}
	res.Notes = "agreesWithWorlds is checked exhaustively when the instance has at most 3 nulls (world enumeration\n" +
		"is exponential in the null count); RAcwa queries must always agree where the check runs."
	return res
}

// E10Exchange chases the introduction's schema mapping at scale and answers
// a UCQ over the exchanged data.
func (h Harness) E10Exchange(orderCounts []int) Result {
	res := Result{
		ID:     "E10",
		Title:  "Schema mappings and the chase: Order(i,p) → Cust(x), Pref(x,p) (§1, §7)",
		Header: []string{"orders", "targetTuples", "inventedNulls", "certainPrefs", "chaseTime"},
	}
	for _, n := range orderCounts {
		src, _ := workload.Orders(workload.OrdersConfig{Orders: n, PaidFraction: 0, NullRate: 0, Seed: 9})
		m := paperMapping()
		start := time.Now()
		target, err := m.Chase(projectOrders(src))
		elapsed := time.Since(start)
		if err != nil {
			continue
		}
		q := cq.Single(cq.Query{Name: "q", Head: []string{"p"}, Body: []cq.Atom{cq.NewAtom("Pref", cq.V("x"), cq.V("p"))}})
		ans, err := q.Eval(target)
		certainPrefs := 0
		if err == nil {
			certainPrefs = ans.CompletePart().Len()
		}
		res.Rows = append(res.Rows, []string{
			itoa(n), itoa(target.TotalTuples()), itoa(len(target.Nulls())), itoa(certainPrefs), dtoa(elapsed),
		})
	}
	return res
}

// E11Theorem runs the naïve-evaluation theorem harness over families of
// small instances: equation (9) must hold for monotone generic queries and
// fail for the non-monotone counterexample.
func (h Harness) E11Theorem(instanceCount int) Result {
	monotone := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a"},
	}
	nonMonotone := ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"#1"}}

	holdsMono, holdsNon := 0, 0
	total := 0
	for i := 0; i < instanceCount; i++ {
		d := workload.Random(workload.RandomConfig{
			Relations:         map[string]int{"R": 2, "S": 2},
			TuplesPerRelation: 3,
			DomainSize:        3,
			Nulls:             2,
			NullRate:          0.4,
			Seed:              int64(i),
		})
		total++
		if h.theoremHolds(monotone, d) {
			holdsMono++
		}
		if h.theoremHolds(nonMonotone, d) {
			holdsNon++
		}
	}
	return Result{
		ID:     "E11",
		Title:  "Naïve-evaluation theorem (eq. 9) verified on small-instance families (§6.1)",
		Header: []string{"query", "instances", "certainO = Q(D)"},
		Rows: [][]string{
			{"π_a(R ⋈ S)  (monotone, generic)", itoa(total), itoa(holdsMono)},
			{"π_A(R − S)  (non-monotone)", itoa(total), itoa(holdsNon)},
		},
		Notes: "The monotone query must satisfy the theorem on every instance; the non-monotone one fails\n" +
			"on instances where the difference interacts with nulls.",
	}
}

func (h Harness) theoremHolds(q ra.Expr, d *table.Database) bool {
	eng := h.engine(d)
	glbOpts := h.opts(engine.ModeCertainObject)
	glbOpts.ExtraFresh = 2
	glbOpts.MaxWorlds = 1 << 20
	glb, err := eng.Eval(q, glbOpts)
	if err != nil {
		return false
	}
	naiveRaw, err := eng.Eval(q, h.opts(engine.ModeNaive))
	if err != nil {
		return false
	}
	return hom.EquivalentOWA(relToDB(glb), relToDB(naiveRaw))
}

func relToDB(r *table.Relation) *table.Database {
	s := schema.MustNew(schema.WithArity("Ans", r.Arity()))
	d := table.NewDatabase(s)
	for _, t := range r.Tuples() {
		d.MustAdd("Ans", t)
	}
	return d
}

// E13EngineBatch measures the engine's concurrent batch API: a mixed batch
// of SQL and certain-answer queries served against one consistent snapshot
// on worker pools of growing size, while a writer keeps committing updates
// to the live database.  The speedup column is the tentpole number: how
// much throughput the snapshot-isolated worker pool buys over serial
// evaluation of the same batch (bounded by the core count — on one CPU it
// hovers around 1x).
func (h Harness) E13EngineBatch(queries int, workerCounts []int) Result {
	res := Result{
		ID:     "E13",
		Title:  "Engine batch throughput: snapshot-isolated worker pool (engine facade)",
		Header: []string{"workers", "queries", "seconds", "qps", "speedup", "agree"},
		Notes: "All sweeps serve one consistent snapshot while a writer commits to the live database;\n" +
			"agree checks every answer against the workers=1 sweep of the same snapshot.\n" +
			fmt.Sprintf("Speedup is bounded by the scheduler: this run had GOMAXPROCS=%d (NumCPU=%d), so the\n"+
				"attainable ceiling is min(workers, %d)x — on a single-CPU host every sweep is ~1x.",
				runtime.GOMAXPROCS(0), runtime.NumCPU(), runtime.GOMAXPROCS(0)),
	}
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		workerCounts = append([]int{1}, workerCounts...)
	}
	d, _ := workload.Orders(workload.OrdersConfig{Orders: 500, PaidFraction: 0.7, NullRate: 0.3, Seed: 42})
	eng := h.engine(d)

	unpaidRA := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	notExists := sqlNotExists()
	reqs := make([]engine.Request, queries)
	for i := range reqs {
		switch i % 3 {
		case 0:
			reqs[i] = engine.Request{SQL: &notExists}
		case 1:
			reqs[i] = engine.Request{Query: unpaidRA, Opts: h.opts(engine.ModeCertain)}
		default:
			reqs[i] = engine.Request{Query: unpaidRA, Opts: h.opts(engine.ModeNaive)}
		}
	}

	// Every sweep reads this snapshot; the writes below must never show up
	// in any answer.
	snap := eng.Snapshot()
	var baseline []engine.Response
	var serialSecs float64
	for _, workers := range workerCounts {
		// Commit a write between sweeps: snapshot isolation is what keeps
		// the sweeps comparable.
		if err := eng.Update(func(db *table.Database) error {
			return db.Add("Order", table.NewTuple(value.String(fmt.Sprintf("oid-w%d", workers)), value.String("pr-extra")))
		}); err != nil {
			continue
		}
		start := time.Now()
		resp := snap.Serve(reqs, workers)
		elapsed := time.Since(start)

		agree := true
		if baseline == nil {
			baseline = resp
			serialSecs = elapsed.Seconds()
		} else {
			for i := range resp {
				if (resp[i].Err == nil) != (baseline[i].Err == nil) {
					agree = false
					break
				}
				if resp[i].Err == nil && !resp[i].Rel.Equal(baseline[i].Rel) {
					agree = false
					break
				}
			}
		}
		speedup := "-"
		if serialSecs > 0 && elapsed.Seconds() > 0 && workers != 1 {
			speedup = fmt.Sprintf("%.2fx", serialSecs/elapsed.Seconds())
		}
		res.Rows = append(res.Rows, []string{
			itoa(workers), itoa(queries), fmt.Sprintf("%.4f", elapsed.Seconds()),
			fmt.Sprintf("%.0f", float64(queries)/elapsed.Seconds()), speedup, fmt.Sprintf("%v", agree),
		})
	}
	return res
}

// viewUpdate is one pre-generated update step of the E14 stream, expressed
// as concrete tuples so the identical mutation can be committed to the
// maintained-view engine and the full-recompute baseline engine.
type viewUpdate struct {
	rel string
	add bool
	t   table.Tuple
}

// commit applies the update through an engine's write path.
func (u viewUpdate) commit(eng *engine.Engine) error {
	return eng.Update(func(db *table.Database) error {
		if u.add {
			return db.Add(u.rel, u.t)
		}
		db.Relation(u.rel).Remove(u.t)
		return nil
	})
}

// e14Stream pre-generates a deterministic update stream over the orders
// workload: order and payment inserts (some payments with fresh marked
// nulls for their order reference) and deletions of previously present
// tuples.
func e14Stream(d *table.Database, updates int, seed int64) []viewUpdate {
	rng := rand.New(rand.NewSource(seed))
	orders := d.Relation("Order").SortedTuples()
	pays := d.Relation("Pay").SortedTuples()
	nextNull := uint64(1 << 20) // clear of the generator's null ids
	out := make([]viewUpdate, 0, updates)
	for i := 0; i < updates; i++ {
		switch r := rng.Intn(10); {
		case r < 4: // new order
			t := table.NewTuple(value.String(fmt.Sprintf("new-o%d", i)), value.String(fmt.Sprintf("pr%d", rng.Intn(50))))
			orders = append(orders, t)
			out = append(out, viewUpdate{rel: "Order", add: true, t: t})
		case r < 7: // new payment, sometimes with a null order reference
			ref := value.Value(value.String(fmt.Sprintf("new-o%d", rng.Intn(i+1))))
			if rng.Intn(4) == 0 {
				ref = value.Null(nextNull)
				nextNull++
			}
			t := table.NewTuple(value.String(fmt.Sprintf("new-p%d", i)), ref, value.Int(int64(10+rng.Intn(990))))
			pays = append(pays, t)
			out = append(out, viewUpdate{rel: "Pay", add: true, t: t})
		case r < 9 && len(orders) > 0: // delete an order
			j := rng.Intn(len(orders))
			out = append(out, viewUpdate{rel: "Order", add: false, t: orders[j]})
			orders[j] = orders[len(orders)-1]
			orders = orders[:len(orders)-1]
		case len(pays) > 0: // delete a payment
			j := rng.Intn(len(pays))
			out = append(out, viewUpdate{rel: "Pay", add: false, t: pays[j]})
			pays[j] = pays[len(pays)-1]
			pays = pays[:len(pays)-1]
		}
	}
	return out
}

// E14IncrementalViews measures maintained certain-answer views on an
// update stream: one engine registers the unpaid-orders difference and a
// paid-orders join as views (refreshed from the captured tuple deltas on
// every commit), the baseline engine re-evaluates both queries from
// scratch after every commit.  Both sides commit the identical stream;
// the speedup column is the tentpole number — how much cheaper serving
// the maintained answer is than recomputing it, growing with the database
// size since refresh cost tracks the delta, not the data.
func (h Harness) E14IncrementalViews(orderCounts []int, updates int) Result {
	res := Result{
		ID:     "E14",
		Title:  "Incremental certain-answer views: per-update refresh vs full re-evaluation",
		Header: []string{"orders", "updates", "incremental", "full", "speedup", "perRefresh", "agree"},
		Notes: "Each update commits to both engines; the view engine additionally refreshes both\n" +
			"registered views, the baseline re-evaluates both queries; agree compares the\n" +
			"maintained answers against full re-evaluation at the end of the stream.",
	}
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	paid := ra.Project{
		Input: ra.Join{Left: ra.Base("Order"), Right: ra.Rename{Input: ra.Base("Pay"), As: "P", Attrs: []string{"p_id", "o_id", "amount"}}},
		Attrs: []string{"o_id", "amount"},
	}
	queries := map[string]ra.Expr{"unpaid": unpaid, "paid": paid}

	for _, n := range orderCounts {
		d, _ := workload.Orders(workload.OrdersConfig{Orders: n, PaidFraction: 0.7, NullRate: 0.1, Seed: 42})
		viewEng := h.engine(d.Clone())
		fullEng := h.engine(d.Clone())
		for name, q := range queries {
			if err := viewEng.Register(name, q, h.opts(engine.ModeCertain)); err != nil {
				panic(err)
			}
		}
		stream := e14Stream(d, updates, 7)

		var incDur, fullDur time.Duration
		for _, u := range stream {
			start := time.Now()
			if err := u.commit(viewEng); err != nil {
				panic(err)
			}
			for name := range queries {
				mustRel(viewEng.Answers(name))
			}
			incDur += time.Since(start)

			start = time.Now()
			if err := u.commit(fullEng); err != nil {
				panic(err)
			}
			for _, q := range queries {
				mustRel(fullEng.Eval(q, h.opts(engine.ModeCertain)))
			}
			fullDur += time.Since(start)
		}

		agree := true
		for name, q := range queries {
			got := mustRel(viewEng.Answers(name))
			want := mustRel(fullEng.Eval(q, h.opts(engine.ModeCertain)))
			if !got.Equal(want) {
				agree = false
			}
		}
		res.Rows = append(res.Rows, []string{
			itoa(n), itoa(len(stream)),
			fmt.Sprintf("%.4fs", incDur.Seconds()), fmt.Sprintf("%.4fs", fullDur.Seconds()),
			fmt.Sprintf("%.1fx", fullDur.Seconds()/incDur.Seconds()),
			dtoa(incDur / time.Duration(len(stream))),
			fmt.Sprintf("%v", agree),
		})
	}
	return res
}

// E12Orderings measures the homomorphism-based orderings and GLB machinery
// on random database pairs.
func (h Harness) E12Orderings(sizes []int, pairs int) Result {
	res := Result{
		ID:     "E12",
		Title:  "Information orderings ⪯owa/⪯cwa and GLBs on random pairs (§5.2, §5.3)",
		Header: []string{"tuples", "pairs", "owaRelated", "cwaRelated", "avgOrderTime", "avgGLBTime"},
	}
	for _, size := range sizes {
		owaRelated, cwaRelated := 0, 0
		var orderTotal, glbTotal time.Duration
		for i := 0; i < pairs; i++ {
			a := workload.Random(workload.RandomConfig{Relations: map[string]int{"R": 2}, TuplesPerRelation: size, DomainSize: 4, Nulls: 3, NullRate: 0.3, Seed: int64(2*i + 1)})
			b := workload.Random(workload.RandomConfig{Relations: map[string]int{"R": 2}, TuplesPerRelation: size, DomainSize: 4, Nulls: 3, NullRate: 0.1, Seed: int64(2*i + 2)})
			start := time.Now()
			if order.LeqOWA(a, b) {
				owaRelated++
			}
			if order.LeqCWA(a, b) {
				cwaRelated++
			}
			orderTotal += time.Since(start)
			start = time.Now()
			if _, err := order.GLBOWA([]*table.Database{a, b}); err == nil {
				glbTotal += time.Since(start)
			}
		}
		res.Rows = append(res.Rows, []string{
			itoa(size), itoa(pairs), itoa(owaRelated), itoa(cwaRelated),
			dtoa(orderTotal / time.Duration(pairs)), dtoa(glbTotal / time.Duration(pairs)),
		})
	}
	return res
}

// E15VersionHistory measures the version subsystem end to end: a commit
// stream over the orders workload (a batch of captured updates per
// commit, checkpoints every K commits), a time-travel sweep evaluating
// certain answers at random historical commits through the engine's
// AsOf snapshots, and a branch/checkout/merge exercise.  The commit/s and
// asof/s columns are the tentpole throughput numbers; agree verifies that
// sampled historical answers are bit-identical to a from-scratch replay
// of the update stream, and that the merge unified both branches.
func (h Harness) E15VersionHistory(commits, batch int, checkpoints []int, asofQueries int) Result {
	res := Result{
		ID:     "E15",
		Title:  "Version history: commit throughput, time-travel certain answers, merge (commit DAG over deltas)",
		Header: []string{"checkpointK", "commits", "commit/s", "asof", "asof/s", "merge", "conflicts", "agree"},
		Notes: "Each commit captures one batch of update deltas; AsOf replays from the nearest checkpoint;\n" +
			"agree compares sampled historical certain answers against a from-scratch replay engine\n" +
			"and checks the branch merge; merge times a divergent branch/checkout/merge cycle.",
	}
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	certOpts := h.opts(engine.ModeCertain)

	for _, k := range checkpoints {
		d, _ := workload.Orders(workload.OrdersConfig{Orders: 500, PaidFraction: 0.7, NullRate: 0.1, Seed: 42})
		stream := e14Stream(d.Clone(), commits*batch, 11)
		eng := h.engine(d)
		if _, err := eng.EnableHistory(engine.HistoryOptions{CheckpointEvery: k}); err != nil {
			panic(err)
		}

		// Commit stream: one batch of updates per commit.
		var ids []version.CommitID
		start := time.Now()
		for i := 0; i < commits; i++ {
			chunk := stream[i*batch : (i+1)*batch]
			if err := eng.Update(func(db *table.Database) error {
				for _, u := range chunk {
					if u.add {
						if err := db.Add(u.rel, u.t); err != nil {
							return err
						}
					} else {
						db.Relation(u.rel).Remove(u.t)
					}
				}
				return nil
			}); err != nil {
				panic(err)
			}
			id, err := eng.Commit(fmt.Sprintf("batch %d", i))
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
		}
		commitSecs := time.Since(start).Seconds()

		// Time-travel sweep: certain answers at random historical commits.
		rng := rand.New(rand.NewSource(99))
		start = time.Now()
		for i := 0; i < asofQueries; i++ {
			snap, err := eng.AsOf(ids[rng.Intn(len(ids))])
			if err != nil {
				panic(err)
			}
			mustRel(snap.Eval(unpaid, certOpts))
		}
		asofSecs := time.Since(start).Seconds()

		// Agree: sampled historical answers vs a from-scratch replay.
		agree := true
		for _, i := range []int{0, commits / 2, commits - 1} {
			replay, _ := workload.Orders(workload.OrdersConfig{Orders: 500, PaidFraction: 0.7, NullRate: 0.1, Seed: 42})
			for _, u := range stream[:(i+1)*batch] {
				if u.add {
					replay.MustAdd(u.rel, u.t)
				} else {
					replay.Relation(u.rel).Remove(u.t)
				}
			}
			snap, err := eng.AsOf(ids[i])
			if err != nil {
				panic(err)
			}
			if !snap.Database().Equal(replay) {
				agree = false
				continue
			}
			got := mustRel(snap.Eval(unpaid, certOpts))
			want := mustRel(h.engine(replay).Eval(unpaid, certOpts))
			if !got.Equal(want) {
				agree = false
			}
		}

		// Branch / checkout / merge cycle: divergent edits on both sides.
		if err := eng.Branch("side"); err != nil {
			panic(err)
		}
		commitOne := func(rel string, t table.Tuple, msg string) {
			if err := eng.Update(func(db *table.Database) error { return db.Add(rel, t) }); err != nil {
				panic(err)
			}
			if _, err := eng.Commit(msg); err != nil {
				panic(err)
			}
		}
		start = time.Now()
		commitOne("Order", table.NewTuple(value.String("main-oid"), value.String("pr-main")), "main edit")
		if err := eng.Checkout("side"); err != nil {
			panic(err)
		}
		commitOne("Order", table.NewTuple(value.String("side-oid"), value.String("pr-side")), "side edit")
		if err := eng.Checkout("main"); err != nil {
			panic(err)
		}
		mres, err := eng.Merge("side", "merge side")
		if err != nil {
			panic(err)
		}
		mergeDur := time.Since(start)
		merged := mres.State.Relation("Order")
		if !merged.Contains(table.NewTuple(value.String("main-oid"), value.String("pr-main"))) ||
			!merged.Contains(table.NewTuple(value.String("side-oid"), value.String("pr-side"))) {
			agree = false
		}

		res.Rows = append(res.Rows, []string{
			itoa(k), itoa(commits),
			fmt.Sprintf("%.0f", float64(commits)/commitSecs),
			itoa(asofQueries),
			fmt.Sprintf("%.0f", float64(asofQueries)/asofSecs),
			dtoa(mergeDur), itoa(len(mres.Conflicts)), fmt.Sprintf("%v", agree),
		})
	}
	return res
}

// E16ParallelScaling measures the engine's intra-query worker knob
// (engine.Options.Workers): the E1-style unpaid-orders difference and the
// E5-style join-project UCQ evaluated morsel-parallel at growing worker
// counts, plus an E13-style batch sweep for comparison with inter-query
// parallelism.  Every row's answer is checked bit-identical against the
// workers=1 sweep (the serial differential oracle), so the speedup column
// is the only thing that may vary between hosts: it is bounded by
// GOMAXPROCS, and on a single-CPU host every sweep hovers around 1x — the
// notes record the bound so archived JSON runs stay interpretable.
func (h Harness) E16ParallelScaling(rows int, workerCounts []int) Result {
	res := Result{
		ID:     "E16",
		Title:  "Intra-query parallel scaling: morsel-driven evaluation vs worker count",
		Header: []string{"workload", "workers", "seconds", "speedup", "agree"},
		Notes: fmt.Sprintf("Workers is the intra-query budget (engine.Options.Workers); agree pins every sweep\n"+
			"bit-identical to workers=1.  Speedup is bounded by GOMAXPROCS=%d (NumCPU=%d): the\n"+
			"headline scaling needs a multi-core host, on one CPU every row is ~1x by design.",
			runtime.GOMAXPROCS(0), runtime.NumCPU()),
	}
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		workerCounts = append([]int{1}, workerCounts...)
	}

	ordersDB, _ := workload.Orders(workload.OrdersConfig{Orders: rows, PaidFraction: 0.7, NullRate: 0.1, Seed: 16})
	unpaidRA := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	joinDB := workload.Random(workload.RandomConfig{
		Relations:         map[string]int{"R": 2, "S": 2},
		TuplesPerRelation: rows,
		DomainSize:        rows/8 + 4,
		Nulls:             3,
		NullRate:          0.02,
		Seed:              16,
	})
	ucq := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}},
		},
		Attrs: []string{"a", "c"},
	}

	type sweep struct {
		name string
		run  func(workers int) (string, error) // returns an answer fingerprint
	}
	ordersEng := h.engine(ordersDB)
	joinEng := h.engine(joinDB)
	batchReqs := make([]engine.Request, 64)
	for i := range batchReqs {
		batchReqs[i] = engine.Request{Query: unpaidRA, Opts: h.opts(engine.ModeCertain)}
	}
	batchSnap := ordersEng.Snapshot()
	sweeps := []sweep{
		{"diff-certain", func(workers int) (string, error) {
			opts := h.opts(engine.ModeCertain)
			opts.Workers = workers
			rel, err := ordersEng.Eval(unpaidRA, opts)
			if err != nil {
				return "", err
			}
			return rel.CanonicalKey(), nil
		}},
		{"join-certain", func(workers int) (string, error) {
			opts := h.opts(engine.ModeCertain)
			opts.Workers = workers
			rel, err := joinEng.Eval(ucq, opts)
			if err != nil {
				return "", err
			}
			return rel.CanonicalKey(), nil
		}},
		{"batch-serve", func(workers int) (string, error) {
			var b strings.Builder
			for _, resp := range batchSnap.Serve(batchReqs, workers) {
				if resp.Err != nil {
					return "", resp.Err
				}
				b.WriteString(resp.Rel.CanonicalKey())
				b.WriteByte('\n')
			}
			return b.String(), nil
		}},
	}

	for _, sw := range sweeps {
		// Warm the plan caches and derived indexes so the workers=1 baseline
		// is not charged for one-time compilation.
		if _, err := sw.run(1); err != nil {
			res.Rows = append(res.Rows, []string{sw.name, "-", "-", "-", "error"})
			continue
		}
		var baseFP string
		var baseSecs float64
		for _, workers := range workerCounts {
			// Best of three runs: the individual sweeps are fast enough that a
			// single shot is dominated by scheduler and GC noise.
			var fp string
			var err error
			elapsed := 0.0
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				fp, err = sw.run(workers)
				if err != nil {
					break
				}
				if secs := time.Since(start).Seconds(); rep == 0 || secs < elapsed {
					elapsed = secs
				}
			}
			if err != nil {
				res.Rows = append(res.Rows, []string{sw.name, itoa(workers), "-", "-", "error"})
				continue
			}
			agree := true
			speedup := "-"
			if workers == 1 {
				baseFP, baseSecs = fp, elapsed
			} else {
				agree = fp == baseFP
				if elapsed > 0 && baseSecs > 0 {
					speedup = fmt.Sprintf("%.2fx", baseSecs/elapsed)
				}
			}
			res.Rows = append(res.Rows, []string{
				sw.name, itoa(workers), fmt.Sprintf("%.4f", elapsed), speedup, fmt.Sprintf("%v", agree),
			})
		}
	}
	return res
}

// E17CodedStrings measures the dictionary-coded execution tier on the
// string-heavy catalog workload (workload.Catalog): a projected
// item/tag join and a category difference, each evaluated with the coded
// tier off (the PR-7 columnar path) and on, across worker counts.  Codes
// turn string equality into u64 equality — the hash-join build and probe
// hash raw codes instead of encoding binary string keys, and the final
// gather deduplicates on code tuples before any value is decoded — so
// the on/off ratio is the headline number.  Every coded answer is pinned
// bit-identical to its uncoded twin (agree column).
func (h Harness) E17CodedStrings(items int, workerCounts []int) Result {
	res := Result{
		ID:     "E17",
		Title:  "Coded columns: dictionary-coded kernels vs columnar on string-heavy joins",
		Header: []string{"workload", "workers", "coded-off", "coded-on", "ratio", "agree"},
		Notes: "coded-off/coded-on are best-of-three seconds for the same query with\n" +
			"engine.Options.Coded off and on (everything else identical); ratio is off/on, so\n" +
			"> 1x means the coded tier wins.  agree pins the coded answer bit-identical to the\n" +
			"columnar one.",
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1}
	}

	db := workload.Catalog(workload.CatalogConfig{
		Items:      items,
		Categories: 24,
		Tags:       40,
		Nulls:      3,
		NullRate:   0.02,
		Seed:       17,
	})
	eng := h.engine(db)

	// Projected join: which (category, tag) combinations exist — the
	// dedup-heavy set-semantics shape.
	catTags := ra.Project{
		Input: ra.Join{
			Left:  ra.Rename{Input: ra.Base("Item"), As: "I", Attrs: []string{"sku", "category"}},
			Right: ra.Rename{Input: ra.Base("Tagged"), As: "T", Attrs: []string{"sku", "tag"}},
		},
		Attrs: []string{"category", "tag"},
	}
	// Difference: SKUs that are items but never tagged.
	untagged := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Item"), Attrs: []string{"sku"}}, As: "A", Attrs: []string{"sku"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Tagged"), Attrs: []string{"sku"}}, As: "B", Attrs: []string{"sku"}},
	}

	run := func(q ra.Expr, workers int, coded engine.CodedSetting) (string, float64, error) {
		opts := h.opts(engine.ModeCertain)
		opts.Workers = workers
		opts.Coded = coded
		var fp string
		elapsed := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			rel, err := eng.Eval(q, opts)
			if err != nil {
				return "", 0, err
			}
			if secs := time.Since(start).Seconds(); rep == 0 || secs < elapsed {
				elapsed = secs
			}
			fp = rel.CanonicalKey()
		}
		return fp, elapsed, nil
	}

	for _, w := range []struct {
		name string
		q    ra.Expr
	}{{"cat-tag-join", catTags}, {"untagged-diff", untagged}} {
		// Warm plan caches, partitionings and encodings so neither setting
		// is charged for one-time builds.
		if _, _, err := run(w.q, 1, engine.CodedOff); err != nil {
			res.Rows = append(res.Rows, []string{w.name, "-", "-", "-", "-", "error"})
			continue
		}
		if _, _, err := run(w.q, 1, engine.CodedOn); err != nil {
			res.Rows = append(res.Rows, []string{w.name, "-", "-", "-", "-", "error"})
			continue
		}
		for _, workers := range workerCounts {
			offFP, offSecs, err := run(w.q, workers, engine.CodedOff)
			if err != nil {
				res.Rows = append(res.Rows, []string{w.name, itoa(workers), "-", "-", "-", "error"})
				continue
			}
			onFP, onSecs, err := run(w.q, workers, engine.CodedOn)
			if err != nil {
				res.Rows = append(res.Rows, []string{w.name, itoa(workers), "-", "-", "-", "error"})
				continue
			}
			ratio := "-"
			if onSecs > 0 {
				ratio = fmt.Sprintf("%.2fx", offSecs/onSecs)
			}
			res.Rows = append(res.Rows, []string{
				w.name, itoa(workers),
				fmt.Sprintf("%.4f", offSecs), fmt.Sprintf("%.4f", onSecs),
				ratio, fmt.Sprintf("%v", onFP == offFP),
			})
		}
	}
	return res
}
