package experiments

import (
	"time"

	"incdata/internal/cq"
	"incdata/internal/engine"
	"incdata/internal/exchange"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// paperMapping is the schema mapping of the paper's introduction:
// Order(i,p) → ∃x Cust(x) ∧ Pref(x,p).
func paperMapping() exchange.Mapping {
	src := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	tgt := schema.MustNew(
		schema.NewRelation("Cust", "cust"),
		schema.NewRelation("Pref", "cust", "product"),
	)
	return exchange.Mapping{
		Source: src,
		Target: tgt,
		Dependencies: []exchange.Dependency{{
			Name: "order-to-cust",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head: []cq.Atom{
				cq.NewAtom("Cust", cq.V("x")),
				cq.NewAtom("Pref", cq.V("x"), cq.V("p")),
			},
			Existential: []string{"x"},
		}},
	}
}

// projectOrders restricts an orders/payments database to its Order relation
// so that it matches the source schema of paperMapping.
func projectOrders(d *table.Database) *table.Database {
	src := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	out := table.NewDatabase(src)
	d.Relation("Order").Each(func(t table.Tuple) bool {
		out.MustAdd("Order", t)
		return true
	})
	return out
}

// Config bundles the sweep parameters of all experiments so that the CLI
// and the benchmarks can choose between a quick and a full run.
type Config struct {
	// Planner selects the engine evaluation path for every query the
	// experiments run (the incbench -planner flag).
	Planner engine.PlannerSetting

	// Workers is the intra-query worker budget every evaluation runs under
	// (the incbench -workers flag); 0 resolves to GOMAXPROCS.
	Workers int

	// Columnar selects the vectorized columnar path or the per-tuple row
	// oracle for every planned evaluation (the incbench -columnar flag).
	Columnar engine.ColumnarSetting

	// Coded selects the dictionary-coded execution tier or the columnar
	// oracle for every planned evaluation (the incbench -coded flag).
	Coded engine.CodedSetting

	E1Sizes        []int
	E1NullRates    []float64
	E2Sizes        []int
	E4Sizes        []int
	E5Trials       int
	E5NullCounts   []int
	E6DBSizes      []int
	E6NullCounts   []int
	E7AtomCounts   []int
	E7Trials       int
	E9Students     []int
	E9NullRates    []float64
	E10Orders      []int
	E11Instances   int
	E12Sizes       []int
	E12Pairs       int
	E13Queries     int
	E13Workers     []int
	E14Orders      []int
	E14Updates     int
	E15Commits     int
	E15Batch       int
	E15Checkpoints []int
	E15AsOf        int
	E16Rows        int
	E16Workers     []int
	E17Items       int
	E17Workers     []int
	E18Orders      int
	E18Clients     []int
	E18Requests    int
	E19Commits     int
	E19Batch       int
	E19Checkpoints []int
	E19AsOf        int
	E19Budget      int64
}

// QuickConfig keeps every experiment under a few seconds; it is the default
// for cmd/incbench and for the Go benchmarks.
func QuickConfig() Config {
	return Config{
		E1Sizes:        []int{100, 500, 2000},
		E1NullRates:    []float64{0, 0.1, 0.3, 0.5},
		E2Sizes:        []int{10, 100, 1000, 5000},
		E4Sizes:        []int{2, 4, 8, 16},
		E5Trials:       20,
		E5NullCounts:   []int{1, 2, 3},
		E6DBSizes:      []int{20, 80},
		E6NullCounts:   []int{1, 2, 3, 4},
		E7AtomCounts:   []int{2, 4, 8},
		E7Trials:       10,
		E9Students:     []int{50, 200, 1000},
		E9NullRates:    []float64{0, 0.05},
		E10Orders:      []int{100, 1000, 10000},
		E11Instances:   40,
		E12Sizes:       []int{4, 8},
		E12Pairs:       10,
		E13Queries:     400,
		E13Workers:     []int{1, 2, 4},
		E14Orders:      []int{500, 2000},
		E14Updates:     300,
		E15Commits:     60,
		E15Batch:       4,
		E15Checkpoints: []int{1, 8, 32},
		E15AsOf:        150,
		E16Rows:        4000,
		E16Workers:     []int{1, 2, 4, 8},
		E17Items:       4000,
		E17Workers:     []int{1, 2, 4},
		E18Orders:      800,
		E18Clients:     []int{1, 2, 4},
		E18Requests:    300,
		E19Commits:     60,
		E19Batch:       4,
		E19Checkpoints: []int{1, 8, 32},
		E19AsOf:        100,
		E19Budget:      16 << 10,
	}
}

// FullConfig runs larger sweeps (minutes, not seconds); README.md
// records QuickConfig numbers so results are reproducible everywhere.
func FullConfig() Config {
	return Config{
		E1Sizes:        []int{100, 1000, 10000, 50000},
		E1NullRates:    []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
		E2Sizes:        []int{10, 100, 1000, 10000, 100000},
		E4Sizes:        []int{2, 4, 8, 16, 32},
		E5Trials:       100,
		E5NullCounts:   []int{1, 2, 3, 4},
		E6DBSizes:      []int{20, 80, 320},
		E6NullCounts:   []int{1, 2, 3, 4, 5, 6},
		E7AtomCounts:   []int{2, 4, 8, 12},
		E7Trials:       50,
		E9Students:     []int{50, 200, 1000, 5000},
		E9NullRates:    []float64{0, 0.05, 0.1},
		E10Orders:      []int{100, 1000, 10000, 100000},
		E11Instances:   200,
		E12Sizes:       []int{4, 8, 16},
		E12Pairs:       25,
		E13Queries:     2000,
		E13Workers:     []int{1, 2, 4, 8},
		E14Orders:      []int{2000, 10000, 50000},
		E14Updates:     1000,
		E15Commits:     400,
		E15Batch:       5,
		E15Checkpoints: []int{1, 16, 64},
		E15AsOf:        1000,
		E16Rows:        20000,
		E16Workers:     []int{1, 2, 4, 8},
		E17Items:       20000,
		E17Workers:     []int{1, 2, 4, 8},
		E18Orders:      4000,
		E18Clients:     []int{1, 2, 4, 8},
		E18Requests:    2000,
		E19Commits:     400,
		E19Batch:       5,
		E19Checkpoints: []int{1, 16, 64},
		E19AsOf:        500,
		E19Budget:      16 << 10,
	}
}

// All runs every experiment with the given configuration, in order, and
// stamps each result with its wall-clock duration.
func All(cfg Config) []Result { return Run(cfg, nil) }

// Run executes the selected experiments (nil or empty selects all) in
// order through a Harness with the config's evaluation settings, stamping
// each result with its wall-clock duration.
func Run(cfg Config, ids map[string]bool) []Result {
	h := Harness{Planner: cfg.Planner, Workers: cfg.Workers, Columnar: cfg.Columnar, Coded: cfg.Coded}
	runs := []struct {
		id  string
		run func() Result
	}{
		{"E1", func() Result { return h.E1UnpaidOrders(cfg.E1Sizes, cfg.E1NullRates) }},
		{"E2", func() Result { return h.E2Difference(cfg.E2Sizes) }},
		{"E3", func() Result { return h.E3Tautology() }},
		{"E4", func() Result { return h.E4CTables(cfg.E4Sizes) }},
		{"E5", func() Result { return h.E5NaiveUCQ(cfg.E5Trials, cfg.E5NullCounts) }},
		{"E6", func() Result { return h.E6Complexity(cfg.E6DBSizes, cfg.E6NullCounts) }},
		{"E7", func() Result { return h.E7Duality(cfg.E7AtomCounts, cfg.E7Trials) }},
		{"E8", func() Result { return h.E8CertainO() }},
		{"E9", func() Result { return h.E9Division(cfg.E9Students, cfg.E9NullRates) }},
		{"E10", func() Result { return h.E10Exchange(cfg.E10Orders) }},
		{"E11", func() Result { return h.E11Theorem(cfg.E11Instances) }},
		{"E12", func() Result { return h.E12Orderings(cfg.E12Sizes, cfg.E12Pairs) }},
		{"E13", func() Result { return h.E13EngineBatch(cfg.E13Queries, cfg.E13Workers) }},
		{"E14", func() Result { return h.E14IncrementalViews(cfg.E14Orders, cfg.E14Updates) }},
		{"E15", func() Result {
			return h.E15VersionHistory(cfg.E15Commits, cfg.E15Batch, cfg.E15Checkpoints, cfg.E15AsOf)
		}},
		{"E16", func() Result { return h.E16ParallelScaling(cfg.E16Rows, cfg.E16Workers) }},
		{"E17", func() Result { return h.E17CodedStrings(cfg.E17Items, cfg.E17Workers) }},
		{"E18", func() Result { return h.E18ServerThroughput(cfg.E18Orders, cfg.E18Clients, cfg.E18Requests) }},
		{"E19", func() Result {
			return h.E19DurableStore(cfg.E19Commits, cfg.E19Batch, cfg.E19Checkpoints, cfg.E19AsOf, cfg.E19Budget)
		}},
	}
	var out []Result
	for _, r := range runs {
		if len(ids) > 0 && !ids[r.id] {
			continue
		}
		start := time.Now()
		res := r.run()
		res.Seconds = time.Since(start).Seconds()
		out = append(out, res)
	}
	return out
}
