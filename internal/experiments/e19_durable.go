package experiments

// E19: the durable storage subsystem (internal/store) end to end — commit
// throughput while every commit appends to the content-addressed store,
// cold-open recovery cost, time-travel over the recovered history pinned
// bit-identical to the in-memory engine that wrote it, and the spill-to-
// disk join under a constrained memory budget pinned bit-identical to
// fully resident evaluation.

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"incdata/internal/engine"
	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/version"
	"incdata/internal/workload"
)

// E19DurableStore measures durable persistence: for each checkpoint
// interval K a commit stream runs with the engine attached to a fresh
// store (every commit appends a log record, every Kth also a manifest),
// the store is cold-opened into a new engine, and an AsOf sweep runs over
// the recovered history.  commit/s and open_ms are the headline numbers;
// agree pins sampled recovered historical answers bit-identical to the
// writing engine's, and spill pins a projected-join answer under
// MemBudget bytes (Grace-style partitioned spill) bit-identical to the
// unbounded path on the recovered head.
func (h Harness) E19DurableStore(commits, batch int, checkpoints []int, asofQueries int, budget int64) Result {
	res := Result{
		ID:     "E19",
		Title:  "Durable store: commit log throughput, cold-open recovery, time travel, spill join",
		Header: []string{"checkpointK", "commits", "commit/s", "open_ms", "asof", "asof/s", "agree", "spill"},
		Notes: fmt.Sprintf("Each commit appends one CRC-framed delta record to the store's log (a manifest of\n"+
			"content-addressed chunks every K commits); open_ms cold-opens the directory and\n"+
			"recovers the full history; asof/s evaluates certain answers at random recovered\n"+
			"commits; agree compares recovered states and answers bit-identically against the\n"+
			"writing engine; spill evaluates a projected join under a %d-byte build budget\n"+
			"against the unbounded join on the recovered head.", budget),
	}
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"o_id"}}, As: "O", Attrs: []string{"id"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"order"}}, As: "P", Attrs: []string{"id"}},
	}
	paid := ra.Project{
		Input: ra.Join{Left: ra.Base("Order"), Right: ra.Rename{Input: ra.Base("Pay"), As: "P", Attrs: []string{"p_id", "o_id", "amount"}}},
		Attrs: []string{"o_id", "amount"},
	}
	certOpts := h.opts(engine.ModeCertain)

	for _, k := range checkpoints {
		d, _ := workload.Orders(workload.OrdersConfig{Orders: 500, PaidFraction: 0.7, NullRate: 0.1, Seed: 42})
		stream := e14Stream(d.Clone(), commits*batch, 19)
		eng := h.engine(d)
		if _, err := eng.EnableHistory(engine.HistoryOptions{CheckpointEvery: k}); err != nil {
			panic(err)
		}
		dir, err := os.MkdirTemp("", "incdata-e19-")
		if err != nil {
			panic(err)
		}
		store := dir + "/store"
		if err := eng.Persist(store); err != nil {
			panic(err)
		}

		// Durable commit stream: one batch of updates per commit, each
		// commit appended to the log inside the commit critical section.
		var ids []version.CommitID
		start := time.Now()
		for i := 0; i < commits; i++ {
			chunk := stream[i*batch : (i+1)*batch]
			if err := eng.Update(func(db *table.Database) error {
				for _, u := range chunk {
					if u.add {
						if err := db.Add(u.rel, u.t); err != nil {
							return err
						}
					} else {
						db.Relation(u.rel).Remove(u.t)
					}
				}
				return nil
			}); err != nil {
				panic(err)
			}
			id, err := eng.Commit(fmt.Sprintf("batch %d", i))
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
		}
		commitSecs := time.Since(start).Seconds()
		if err := eng.Close(); err != nil {
			panic(err)
		}

		// Cold open: recover head and every branch from the log's valid
		// prefix; checkpoint states load their chunks lazily.
		start = time.Now()
		reopened, err := engine.Open(store)
		if err != nil {
			panic(err)
		}
		openMs := time.Since(start).Seconds() * 1000

		// Time-travel sweep over the recovered history.
		rng := rand.New(rand.NewSource(99))
		start = time.Now()
		for i := 0; i < asofQueries; i++ {
			snap, err := reopened.AsOf(ids[rng.Intn(len(ids))])
			if err != nil {
				panic(err)
			}
			mustRel(snap.Eval(unpaid, certOpts))
		}
		asofSecs := time.Since(start).Seconds()

		// Agree: sampled recovered states and answers against the writing
		// engine (still fully usable in memory after Close detached it).
		agree := true
		for _, i := range []int{0, commits / 2, commits - 1} {
			want, err := eng.AsOf(ids[i])
			if err != nil {
				panic(err)
			}
			got, err := reopened.AsOf(ids[i])
			if err != nil {
				panic(err)
			}
			if !got.Database().Equal(want.Database()) {
				agree = false
				continue
			}
			for _, q := range []ra.Expr{unpaid, paid} {
				if !mustRel(got.Eval(q, certOpts)).Equal(mustRel(want.Eval(q, certOpts))) {
					agree = false
				}
			}
		}

		// Spill join on the recovered head: the build side exceeds the
		// budget, so the join runs Grace-style through disk partitions —
		// the answer must still be bit-identical to the resident path.
		spillOpts := certOpts
		spillOpts.MemBudget = budget
		spillAgree := mustRel(reopened.Eval(paid, spillOpts)).Equal(mustRel(reopened.Eval(paid, certOpts)))

		if err := reopened.Close(); err != nil {
			panic(err)
		}
		os.RemoveAll(dir)
		res.Rows = append(res.Rows, []string{
			itoa(k), itoa(commits), fmt.Sprintf("%.0f", float64(commits)/commitSecs),
			fmt.Sprintf("%.2f", openMs),
			itoa(asofQueries), fmt.Sprintf("%.0f", float64(asofQueries)/asofSecs),
			fmt.Sprintf("%v", agree), fmt.Sprintf("%v", spillAgree),
		})
	}
	return res
}
