package experiments

import (
	"strconv"
	"strings"
	"testing"

	"incdata/internal/engine"
)

func cell(t *testing.T, r Result, row int, col string) string {
	t.Helper()
	for i, h := range r.Header {
		if h == col {
			return r.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q", r.ID, col)
	return ""
}

func atoiCell(t *testing.T, r Result, row int, col string) int {
	t.Helper()
	n, err := strconv.Atoi(cell(t, r, row, col))
	if err != nil {
		t.Fatalf("%s: column %q row %d is not an int: %v", r.ID, col, row, err)
	}
	return n
}

func TestE1ShapeMatchesPaper(t *testing.T) {
	r := Harness{}.E1UnpaidOrders([]int{200}, []float64{0, 0.4})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// With no nulls SQL NOT IN finds every truly unpaid order.
	if atoiCell(t, r, 0, "sqlNotIn") != atoiCell(t, r, 0, "trulyUnpaid") {
		t.Error("without nulls SQL should match the ground truth")
	}
	if atoiCell(t, r, 0, "notInFalseNeg") != 0 {
		t.Error("without nulls there are no false negatives")
	}
	// With nulls SQL NOT IN collapses to zero and misses every unpaid order.
	if atoiCell(t, r, 1, "sqlNotIn") != 0 {
		t.Error("with nulls SQL NOT IN must return the empty answer")
	}
	if atoiCell(t, r, 1, "notInFalseNeg") != atoiCell(t, r, 1, "trulyUnpaid") {
		t.Error("false negatives should equal the number of truly unpaid orders")
	}
	// NOT EXISTS over-approximates: at least as many as the ground truth.
	if atoiCell(t, r, 1, "sqlNotExists") < atoiCell(t, r, 1, "trulyUnpaid") {
		t.Error("NOT EXISTS should be a sound over-approximation of unpaid orders")
	}
	if !strings.Contains(r.String(), "E1") {
		t.Error("String should include the experiment id")
	}
}

func TestE2Shape(t *testing.T) {
	r := Harness{}.E2Difference([]int{10, 100})
	for i := range r.Rows {
		if atoiCell(t, r, i, "sqlAnswer") != 0 {
			t.Error("SQL answer must be empty whenever S contains a null")
		}
		if cell(t, r, i, "certainNonempty") != "true" {
			t.Error("|R| > |S| forces nonemptiness")
		}
	}
}

func TestE3Shape(t *testing.T) {
	r := Harness{}.E3Tautology()
	if cell(t, r, 0, "contains pid1") != "false" || cell(t, r, 1, "contains pid1") != "true" {
		t.Errorf("tautology experiment wrong: %v", r.Rows)
	}
}

func TestE4Shape(t *testing.T) {
	r := Harness{}.E4CTables([]int{2, 4})
	for i := range r.Rows {
		if cell(t, r, i, "matchesDirect") != "true" {
			t.Error("c-table worlds must match direct evaluation")
		}
		// |R| values + 1 fresh constant, but worlds dedupe to |R|+1 possibilities.
		if atoiCell(t, r, i, "worlds") < 2 {
			t.Error("expected multiple worlds")
		}
	}
}

func TestE5Shape(t *testing.T) {
	r := Harness{}.E5NaiveUCQ(5, []int{1, 2})
	for i := range r.Rows {
		if atoiCell(t, r, i, "ucqDisagree") != 0 {
			t.Error("naïve evaluation must agree with certain answers for UCQs")
		}
	}
}

func TestE7Shape(t *testing.T) {
	r := Harness{}.E7Duality([]int{2, 3}, 3)
	for i := range r.Rows {
		if cell(t, r, i, "allAgree") != "true" {
			t.Error("the three routes to CQ certain answers must agree")
		}
	}
}

func TestE8Shape(t *testing.T) {
	r := Harness{}.E8CertainO()
	if cell(t, r, 0, "⪯cwa lower bound") != "false" {
		t.Error("intersection must not be a ⪯cwa lower bound (the paper's point)")
	}
	if cell(t, r, 1, "≡ naïve answer") != "true" {
		t.Error("certainO must be hom-equivalent to the naïve answer")
	}
	if cell(t, r, 0, "⪯owa lower bound") != "true" || cell(t, r, 1, "⪯owa lower bound") != "true" {
		t.Error("both objects are ⪯owa lower bounds")
	}
}

func TestE9Shape(t *testing.T) {
	r := Harness{}.E9Division([]int{30}, []float64{0, 0.05})
	for i := range r.Rows {
		if got := cell(t, r, i, "agreesWithWorlds"); got != "true" && got != "skipped" {
			t.Errorf("division naïve evaluation must agree with world enumeration, got %q", got)
		}
	}
}

func TestE10Shape(t *testing.T) {
	r := Harness{}.E10Exchange([]int{50})
	if atoiCell(t, r, 0, "targetTuples") != 100 {
		t.Errorf("chase of 50 orders should create 100 target tuples, got %s", cell(t, r, 0, "targetTuples"))
	}
	if atoiCell(t, r, 0, "inventedNulls") != 50 {
		t.Error("one invented null per order expected")
	}
	if atoiCell(t, r, 0, "certainPrefs") == 0 {
		t.Error("product preferences are certain")
	}
}

func TestE11Shape(t *testing.T) {
	r := Harness{}.E11Theorem(10)
	if atoiCell(t, r, 0, "certainO = Q(D)") != atoiCell(t, r, 0, "instances") {
		t.Error("the theorem must hold on every instance for the monotone query")
	}
}

func TestE12AndE6Smoke(t *testing.T) {
	r := Harness{}.E12Orderings([]int{3}, 3)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	r6 := Harness{}.E6Complexity([]int{10}, []int{1, 2})
	if len(r6.Rows) != 2 {
		t.Fatalf("E6 rows = %d", len(r6.Rows))
	}
	if !strings.Contains(r6.String(), "naiveTime") {
		t.Error("E6 table should include naiveTime column")
	}
}

func TestConfigsAndAll(t *testing.T) {
	q := QuickConfig()
	f := FullConfig()
	if q.E11Instances >= f.E11Instances || len(q.E1Sizes) > len(f.E1Sizes) {
		t.Error("FullConfig should be at least as large as QuickConfig")
	}
	// Smoke-run All with a tiny config to exercise the registry end to end.
	tiny := Config{
		E1Sizes: []int{50}, E1NullRates: []float64{0.3},
		E2Sizes: []int{10}, E4Sizes: []int{2},
		E5Trials: 2, E5NullCounts: []int{1},
		E6DBSizes: []int{5}, E6NullCounts: []int{1},
		E7AtomCounts: []int{2}, E7Trials: 2,
		E9Students: []int{10}, E9NullRates: []float64{0},
		E10Orders: []int{10}, E11Instances: 3,
		E12Sizes: []int{3}, E12Pairs: 2,
		E13Queries: 16, E13Workers: []int{1, 2},
		E14Orders: []int{30}, E14Updates: 20,
		E15Commits: 6, E15Batch: 2, E15Checkpoints: []int{2}, E15AsOf: 10,
		E16Rows: 200, E16Workers: []int{1, 2},
		E17Items: 200, E17Workers: []int{1, 2},
		E18Orders: 40, E18Clients: []int{2}, E18Requests: 20,
		E19Commits: 6, E19Batch: 2, E19Checkpoints: []int{2}, E19AsOf: 10, E19Budget: 1 << 10,
	}
	results := All(tiny)
	if len(results) != 19 {
		t.Fatalf("All should run 19 experiments, got %d", len(results))
	}
	ids := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || len(r.Header) == 0 || len(r.Rows) == 0 {
			t.Errorf("experiment %q has an empty result", r.ID)
		}
		ids[r.ID] = true
		if !strings.HasPrefix(r.String(), "== "+r.ID) {
			t.Errorf("String of %s malformed", r.ID)
		}
	}
	for i := 1; i <= 19; i++ {
		if !ids["E"+strconv.Itoa(i)] {
			t.Errorf("missing experiment E%d", i)
		}
	}
}

// TestE19DurableSmoke pins the durable-store experiment end to end: every
// checkpoint interval must recover bit-identically (agree) and the spill
// join must match the resident path (spill).
func TestE19DurableSmoke(t *testing.T) {
	r := Harness{}.E19DurableStore(8, 2, []int{1, 4}, 10, 1<<10)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		if got := cell(t, r, i, "agree"); got != "true" {
			t.Errorf("row %d: recovered history disagreed with the writing engine", i)
		}
		if got := cell(t, r, i, "spill"); got != "true" {
			t.Errorf("row %d: spill join disagreed with the resident join", i)
		}
	}
}

// TestE13BatchAgreesAcrossWorkerCounts pins the engine batch experiment:
// parallel sweeps must agree with the serial baseline, and both worker
// counts must produce rows.
func TestE13BatchAgreesAcrossWorkerCounts(t *testing.T) {
	r := Harness{}.E13EngineBatch(24, []int{1, 4})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		if got := cell(t, r, i, "agree"); got != "true" {
			t.Errorf("row %d: parallel batch disagreed with serial baseline", i)
		}
	}
}

// TestPlannerSettingsAgree runs a representative experiment under both
// engine paths and requires identical result tables.  E2's naiveCertain
// column comes from eng.Eval(ModeCertain), which actually dispatches on
// the planner setting, and its table has no timing columns.
func TestPlannerSettingsAgree(t *testing.T) {
	on := Harness{Planner: engine.PlannerOn}.E2Difference([]int{10, 100})
	off := Harness{Planner: engine.PlannerOff}.E2Difference([]int{10, 100})
	if len(on.Rows) != len(off.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(on.Rows), len(off.Rows))
	}
	for i := range on.Rows {
		for j := range on.Rows[i] {
			if on.Rows[i][j] != off.Rows[i][j] {
				t.Errorf("row %d col %d: planner-on %q vs planner-off %q", i, j, on.Rows[i][j], off.Rows[i][j])
			}
		}
	}
}
