package experiments

// E18: throughput of the multi-session network server (internal/server) —
// the wire protocol, admission gate, per-session snapshots and
// subscription pushes measured end to end over real TCP connections, with
// the remote answers pinned bit-identical to in-process evaluation.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"incdata/internal/engine"
	"incdata/internal/queryparse"
	"incdata/internal/server"
	"incdata/internal/server/client"
	"incdata/internal/workload"
)

// wireFlat serializes an answer the way the server does — canonical tuple
// order, textual value cells — so remote and local answers compare
// bit-identically.
func wireFlat(cols []string, rows [][]string) string {
	parts := make([]string, 0, len(rows)+1)
	parts = append(parts, strings.Join(cols, ","))
	for _, r := range rows {
		parts = append(parts, strings.Join(r, ","))
	}
	return strings.Join(parts, "\n")
}

// localWireFlat evaluates in-process and serializes like the server.
func localWireFlat(eng *engine.Engine, query string, opts engine.Options) (string, error) {
	expr, err := queryparse.Parse(query)
	if err != nil {
		return "", err
	}
	rel, err := eng.Eval(expr, opts)
	if err != nil {
		return "", err
	}
	cols := append([]string(nil), rel.Schema().Attrs...)
	ts := rel.SortedTuples()
	rows := make([][]string, len(ts))
	for i, t := range ts {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return wireFlat(cols, rows), nil
}

// E18ServerThroughput measures the network server end to end: client
// fleets of growing size fire a mixed request stream — certain-answer
// queries on pinned snapshots, updates with commits, ASOF time-travel to
// commits other clients made — at one server over real TCP, while a
// subscriber receives every commit's view delta.  qps is the headline
// number; agree pins the remote head answer bit-identical to in-process
// evaluation after each sweep, and pushes counts the subscription deltas
// delivered.
func (h Harness) E18ServerThroughput(orders int, clientCounts []int, requests int) Result {
	res := Result{
		ID:     "E18",
		Title:  "Server throughput: concurrent sessions over the wire protocol",
		Header: []string{"clients", "requests", "seconds", "qps", "pushes", "agree"},
		Notes: "Each sweep fires a mixed stream (80% QUERY, 10% UPDATE+COMMIT, 10% ASOF) from the\n" +
			"given number of concurrent sessions at one server over real TCP; qps counts\n" +
			"requests served per second.  pushes counts subscription deltas received by a\n" +
			"subscriber session; agree pins the remote head answer bit-identical to in-process\n" +
			"evaluation on the same engine after the sweep.",
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{1}
	}
	const unpaidQ = "diff(project(Order; o_id), project(Pay; order))"
	plannerText := ""
	if h.Planner == engine.PlannerOff {
		plannerText = "off"
	}

	d, _ := workload.Orders(workload.OrdersConfig{Orders: orders, PaidFraction: 0.7, NullRate: 0.1, Seed: 18})
	eng := h.engine(d)
	srv, err := server.New(eng, server.Config{Workers: h.Workers})
	if err != nil {
		res.Notes += "\nserver: " + err.Error()
		return res
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		res.Notes += "\nlisten: " + err.Error()
		return res
	}
	defer srv.Close()

	setup, err := client.Dial(addr.String())
	if err != nil {
		res.Notes += "\ndial: " + err.Error()
		return res
	}
	defer setup.Close()
	if err := setup.Register("unpaid", unpaidQ, "certain", plannerText); err != nil {
		res.Notes += "\nregister: " + err.Error()
		return res
	}
	subscriber, err := client.Dial(addr.String())
	if err != nil {
		res.Notes += "\ndial: " + err.Error()
		return res
	}
	defer subscriber.Close()
	if _, err := subscriber.Subscribe("unpaid"); err != nil {
		res.Notes += "\nsubscribe: " + err.Error()
		return res
	}

	var (
		commitMu sync.Mutex
		commits  []string
		nextOID  int
	)
	recordCommit := func(id string) {
		commitMu.Lock()
		defer commitMu.Unlock()
		commits = append(commits, id)
	}
	someCommit := func(rnd *rand.Rand) string {
		commitMu.Lock()
		defer commitMu.Unlock()
		if len(commits) == 0 {
			return ""
		}
		return commits[rnd.Intn(len(commits))]
	}
	freshOID := func() string {
		commitMu.Lock()
		defer commitMu.Unlock()
		nextOID++
		return fmt.Sprintf("oid-e18-%d", nextOID)
	}

	for _, nclients := range clientCounts {
		perClient := requests / nclients
		if perClient == 0 {
			perClient = 1
		}
		var wg sync.WaitGroup
		var failed sync.Once
		var sweepErr error
		served := 0
		start := time.Now()
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(int64(1000*nclients + c)))
				cl, err := client.Dial(addr.String())
				if err != nil {
					failed.Do(func() { sweepErr = err })
					return
				}
				defer cl.Close()
				for i := 0; i < perClient; i++ {
					var err error
					switch {
					case i%10 == 0:
						if _, err = cl.Update(client.Add("Order", freshOID(), "pr-e18")); err == nil {
							var id string
							if id, err = cl.Commit("e18"); err == nil {
								recordCommit(id)
							}
						}
					case i%10 == 1:
						if ref := someCommit(rnd); ref != "" {
							if _, err = cl.AsOf(ref); err == nil {
								_, err = cl.Query(unpaidQ, "certain", plannerText, 0)
							}
							// Un-pin so later queries read fresh state.
							if err == nil {
								_, err = cl.Refresh()
							}
						}
					default:
						_, err = cl.Query(unpaidQ, "certain", plannerText, 0)
					}
					if err != nil {
						failed.Do(func() { sweepErr = fmt.Errorf("client %d: %w", c, err) })
						return
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		served = nclients * perClient
		if sweepErr != nil {
			res.Rows = append(res.Rows, []string{itoa(nclients), itoa(served), "-", "-", "-", "error: " + sweepErr.Error()})
			continue
		}

		// Drain this sweep's subscription pushes.
		pushes := 0
		for {
			if _, err := subscriber.NextDelta(200 * time.Millisecond); err != nil {
				break
			}
			pushes++
		}

		// Quiesced agree check: the remote head answer must serialize
		// identically to in-process evaluation of the same query.
		agree := false
		if _, err := setup.Refresh(); err == nil {
			resp, rerr := setup.Query(unpaidQ, "certain", plannerText, 0)
			opts := h.opts(engine.ModeCertain)
			opts.MaxWorlds = 1 << 20
			opts.Columnar = engine.ColumnarAuto
			opts.Coded = engine.CodedAuto
			want, lerr := localWireFlat(eng, unpaidQ, opts)
			agree = rerr == nil && lerr == nil && wireFlat(resp.Columns, resp.Rows) == want
		}

		res.Rows = append(res.Rows, []string{
			itoa(nclients), itoa(served), fmt.Sprintf("%.4f", elapsed),
			fmt.Sprintf("%.0f", float64(served)/elapsed), itoa(pushes), fmt.Sprintf("%v", agree),
		})
	}
	return res
}
