package inc

import (
	"fmt"

	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// The delta-propagation network.  A maintained view compiles its
// (rewritten) query into a tree of nodes, one per operator, each holding
// exactly the auxiliary state its delta rule needs:
//
//	σ, ρ        stateless — deltas filter / pass through
//	π           derivation counts per output tuple
//	∪           per-tuple side counts (0..2)
//	⋈, ×        incrementally maintained hash indexes of both inputs
//	∩, −        membership sets of both inputs
//
// A refresh feeds the base-relation deltas captured by table.Tracker into
// the leaves and propagates set-level transitions (a tuple entering or
// leaving an operator's output) upward, so the work per update is
// proportional to the delta sizes, not to the database.  The delta rules
// are the classic counting rules for non-recursive view maintenance,
// specialised to set semantics:
//
//	Δ(σp(E))  = σp(ΔE)
//	Δ(π(E))   : count derivations, emit on 0↔+ transitions
//	Δ(L ⋈ R)  = (ΔL ⋈ R_old) ∪ (L_new ⋈ ΔR)        — probes the indexes
//	Δ(L ∪ R)  : side counts, emit on 0↔+ transitions
//	Δ(L ∩ R)  = (ΔL ∩ R_old) ∪ (L_new ∩ ΔR)
//	Δ(L − R)  = (ΔL − R_old) ∪ inverse(ΔR ∩ L_new)
//
// Sequencing is what makes the signed rules exact: each binary node
// processes ΔL against its pre-refresh right state, applies ΔL to its left
// state, then processes ΔR against the post-refresh left state.  Output
// tuples of ⋈/×/∩/− have unique derivations, so per-key net accumulation
// (the emitter) suffices; π and ∪ count derivations explicitly.

// errUnsupported marks query shapes the network cannot maintain
// incrementally (division, the Δ active-domain operator); the view falls
// back to stamp-gated recomputation.
var errUnsupported = fmt.Errorf("inc: query shape not incrementally maintainable")

// change is one set-level transition of a node's output: tuple t (whose
// canonical key is key) entered (add) or left (!add) the result.
type change struct {
	key string
	t   table.Tuple
	add bool
}

// nkind discriminates network operators.
type nkind uint8

const (
	nRel nkind = iota
	nSelect
	nProject
	nRename
	nJoin // Product compiles to a join with no key columns
	nUnion
	nIntersect
	nDiff
)

// node is one operator of a view's delta network.
type node struct {
	kind nkind
	l, r *node
	rs   schema.Relation

	relName string                 // nRel
	pred    func(table.Tuple) bool // nSelect
	projIdx []int                  // nProject

	// nJoin: key positions per side and right positions appended to the
	// output (empty lpos makes it a product).
	lpos, rpos, extraIdx []int

	counts         map[string]*centry     // nProject, nUnion: derivation counts
	lIndex, rIndex *sideIndex             // nJoin
	lSet, rSet     map[string]table.Tuple // nIntersect, nDiff
}

// centry is one counted output tuple.
type centry struct {
	t table.Tuple
	c int
}

// sideIndex is an incrementally maintained hash index of one join input:
// join-key → tuple-key → tuple.  Unlike table.Index it is updated in place
// on every delta, so refreshes never rebuild it.
type sideIndex struct {
	pos []int
	m   map[string]map[string]table.Tuple
}

func newSideIndex(pos []int) *sideIndex {
	return &sideIndex{pos: pos, m: map[string]map[string]table.Tuple{}}
}

// joinKey appends the index's key columns of t to buf.
func (ix *sideIndex) joinKey(t table.Tuple, buf []byte) []byte {
	for _, p := range ix.pos {
		buf = t[p].AppendKey(buf)
	}
	return buf
}

func (ix *sideIndex) apply(c change, jk string) {
	bucket := ix.m[jk]
	if c.add {
		if bucket == nil {
			bucket = map[string]table.Tuple{}
			ix.m[jk] = bucket
		}
		bucket[c.key] = c.t
		return
	}
	delete(bucket, c.key)
	if len(bucket) == 0 {
		delete(ix.m, jk)
	}
}

// network is a compiled delta network plus its refresh scratch.
type network struct {
	root   *node
	keyBuf []byte
}

// buildNetwork compiles a (rewritten) expression over the schema, or
// returns errUnsupported when some operator has no delta rule.
func buildNetwork(e ra.Expr, sc *schema.Schema) (*network, error) {
	root, err := build(e, sc)
	if err != nil {
		return nil, err
	}
	return &network{root: root}, nil
}

func build(e ra.Expr, sc *schema.Schema) (*node, error) {
	switch ex := e.(type) {
	case ra.Rel:
		rs, err := ex.OutSchema(sc)
		if err != nil {
			return nil, err
		}
		return &node{kind: nRel, rs: rs, relName: ex.Name}, nil

	case ra.Select:
		// Gather the selection cascade; a cascade over a product whose
		// conjuncts equate one attribute of each side becomes an indexed
		// equi-join, exactly like the planner's compilers.
		var preds []ra.Predicate
		var inExpr ra.Expr = ex
		for {
			cur, ok := inExpr.(ra.Select)
			if !ok {
				break
			}
			preds = append(preds, cur.Pred)
			inExpr = cur.Input
		}
		if prod, ok := inExpr.(ra.Product); ok {
			return buildSelectProduct(preds, prod, sc)
		}
		in, err := build(inExpr, sc)
		if err != nil {
			return nil, err
		}
		return wrapSelects(in, preds)

	case ra.Project:
		in, err := build(ex.Input, sc)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(ex.Attrs))
		for i, a := range ex.Attrs {
			p := in.rs.AttrIndex(a)
			if p < 0 {
				return nil, fmt.Errorf("ra: projection attribute %q not in %s", a, in.rs)
			}
			idx[i] = p
		}
		return &node{
			kind: nProject, l: in, projIdx: idx,
			rs:     schema.NewRelation("π("+in.rs.Name+")", ex.Attrs...),
			counts: map[string]*centry{},
		}, nil

	case ra.Rename:
		in, err := build(ex.Input, sc)
		if err != nil {
			return nil, err
		}
		rs, err := ex.OutSchemaFromInput(in.rs)
		if err != nil {
			return nil, err
		}
		return &node{kind: nRename, l: in, rs: rs}, nil

	case ra.Product:
		l, r, err := buildPair(ex.Left, ex.Right, sc)
		if err != nil {
			return nil, err
		}
		return newJoin(l, r, nil, nil), nil

	case ra.Join:
		l, r, err := buildPair(ex.Left, ex.Right, sc)
		if err != nil {
			return nil, err
		}
		lpos, rpos, extraIdx, rs := plan.NaturalJoin(l.rs, r.rs)
		n := newJoin(l, r, lpos, rpos)
		n.extraIdx, n.rs = extraIdx, rs
		return n, nil

	case ra.Union:
		l, r, err := buildSetOp(ex.Left, ex.Right, "∪", sc)
		if err != nil {
			return nil, err
		}
		return &node{
			kind: nUnion, l: l, r: r,
			rs:     schema.NewRelation("("+l.rs.Name+"∪"+r.rs.Name+")", l.rs.Attrs...),
			counts: map[string]*centry{},
		}, nil

	case ra.Intersect:
		l, r, err := buildSetOp(ex.Left, ex.Right, "∩", sc)
		if err != nil {
			return nil, err
		}
		return &node{
			kind: nIntersect, l: l, r: r,
			rs:   schema.NewRelation("("+l.rs.Name+"∩"+r.rs.Name+")", l.rs.Attrs...),
			lSet: map[string]table.Tuple{}, rSet: map[string]table.Tuple{},
		}, nil

	case ra.Diff:
		l, r, err := buildSetOp(ex.Left, ex.Right, "−", sc)
		if err != nil {
			return nil, err
		}
		return &node{
			kind: nDiff, l: l, r: r,
			rs:   schema.NewRelation("("+l.rs.Name+"−"+r.rs.Name+")", l.rs.Attrs...),
			lSet: map[string]table.Tuple{}, rSet: map[string]table.Tuple{},
		}, nil

	default:
		// ra.Division needs group-support counting, ra.Delta the whole
		// active domain; both views fall back to recomputation.
		return nil, errUnsupported
	}
}

// newJoin builds a join node over its inputs; extraIdx and rs default to
// the product shape (all right columns appended).
func newJoin(l, r *node, lpos, rpos []int) *node {
	attrs := append(append([]string{}, l.rs.Attrs...), r.rs.Attrs...)
	extra := make([]int, r.rs.Arity())
	for i := range extra {
		extra[i] = i
	}
	return &node{
		kind: nJoin, l: l, r: r,
		rs:       schema.NewRelation("("+l.rs.Name+"×"+r.rs.Name+")", attrs...),
		lpos:     lpos,
		rpos:     rpos,
		extraIdx: extra,
		lIndex:   newSideIndex(lpos),
		rIndex:   newSideIndex(rpos),
	}
}

// buildSelectProduct is the network's Product+Select→Join rule: cross-side
// equality conjuncts key the join indexes, the rest stay as filters.
func buildSelectProduct(preds []ra.Predicate, prod ra.Product, sc *schema.Schema) (*node, error) {
	l, r, err := buildPair(prod.Left, prod.Right, sc)
	if err != nil {
		return nil, err
	}
	lpos, rpos, residual := plan.PartitionEquiJoin(preds, l.rs, r.rs)
	return wrapSelects(newJoin(l, r, lpos, rpos), residual)
}

// wrapSelects stacks compiled selection filters over in, innermost
// predicate first (preds is collected outermost-first; conjunction order
// is immaterial).
func wrapSelects(in *node, preds []ra.Predicate) (*node, error) {
	n := in
	for i := len(preds) - 1; i >= 0; i-- {
		cp, err := plan.CompilePredicate(preds[i], n.rs)
		if err != nil {
			return nil, err
		}
		n = &node{kind: nSelect, l: n, rs: n.rs, pred: cp}
	}
	return n, nil
}

func buildPair(le, re ra.Expr, sc *schema.Schema) (*node, *node, error) {
	l, err := build(le, sc)
	if err != nil {
		return nil, nil, err
	}
	r, err := build(re, sc)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func buildSetOp(le, re ra.Expr, op string, sc *schema.Schema) (*node, *node, error) {
	l, r, err := buildPair(le, re, sc)
	if err != nil {
		return nil, nil, err
	}
	if l.rs.Arity() != r.rs.Arity() {
		return nil, nil, fmt.Errorf("ra: %s of arities %d and %d", op, l.rs.Arity(), r.rs.Arity())
	}
	return l, r, nil
}

// emitter accumulates per-key net transitions; flush emits each key at
// most once, with transient add+delete pairs cancelled.
type emitter struct {
	m map[string]*echange
}

type echange struct {
	t   table.Tuple
	net int
}

func (e *emitter) init() {
	if e.m == nil {
		e.m = map[string]*echange{}
	}
}

func (e *emitter) note(key string, t table.Tuple, add bool) {
	e.init()
	ec := e.m[key]
	if ec == nil {
		ec = &echange{t: t}
		e.m[key] = ec
	}
	if add {
		ec.net++
	} else {
		ec.net--
	}
}

func (e *emitter) flush() []change {
	if len(e.m) == 0 {
		return nil
	}
	out := make([]change, 0, len(e.m))
	for k, ec := range e.m {
		switch {
		case ec.net > 0:
			out = append(out, change{key: k, t: ec.t, add: true})
		case ec.net < 0:
			out = append(out, change{key: k, t: ec.t, add: false})
		}
	}
	e.m = nil
	return out
}

// refresh propagates the base-relation deltas through the network and
// returns the root's set-level output transitions.
func (nw *network) refresh(base map[string][]change) []change {
	return nw.node(nw.root, base)
}

func (nw *network) node(n *node, base map[string][]change) []change {
	switch n.kind {
	case nRel:
		return base[n.relName]

	case nSelect:
		in := nw.node(n.l, base)
		var out []change
		for _, c := range in {
			if n.pred(c.t) {
				out = append(out, c)
			}
		}
		return out

	case nRename:
		return nw.node(n.l, base)

	case nProject:
		in := nw.node(n.l, base)
		if len(in) == 0 {
			return nil
		}
		touched := map[string]int{}
		for _, c := range in {
			pt := c.t.Project(n.projIdx...)
			nw.keyBuf = pt.AppendKey(nw.keyBuf[:0])
			n.bump(string(nw.keyBuf), pt, delta(c.add), touched)
		}
		return n.transitions(touched)

	case nUnion:
		dl := nw.node(n.l, base)
		dr := nw.node(n.r, base)
		if len(dl) == 0 && len(dr) == 0 {
			return nil
		}
		touched := map[string]int{}
		for _, c := range dl {
			n.bump(c.key, c.t, delta(c.add), touched)
		}
		for _, c := range dr {
			n.bump(c.key, c.t, delta(c.add), touched)
		}
		return n.transitions(touched)

	case nJoin:
		return nw.join(n, base)

	case nIntersect:
		dl := nw.node(n.l, base)
		dr := nw.node(n.r, base)
		var em emitter
		// ΔL against the pre-refresh right side…
		for _, c := range dl {
			if _, inR := n.rSet[c.key]; inR {
				em.note(c.key, c.t, c.add)
			}
			applySet(n.lSet, c)
		}
		// …then ΔR against the post-refresh left side.
		for _, c := range dr {
			if _, inL := n.lSet[c.key]; inL {
				em.note(c.key, c.t, c.add)
			}
			applySet(n.rSet, c)
		}
		return em.flush()

	case nDiff:
		dl := nw.node(n.l, base)
		dr := nw.node(n.r, base)
		var em emitter
		// ΔL passes through where the pre-refresh right side has no match…
		for _, c := range dl {
			if _, inR := n.rSet[c.key]; !inR {
				em.note(c.key, c.t, c.add)
			}
			applySet(n.lSet, c)
		}
		// …and ΔR inverts against the post-refresh left side: a tuple
		// entering R suppresses it, a tuple leaving R re-exposes it.
		for _, c := range dr {
			if _, inL := n.lSet[c.key]; inL {
				em.note(c.key, c.t, !c.add)
			}
			applySet(n.rSet, c)
		}
		return em.flush()

	default:
		panic(fmt.Sprintf("inc: unknown network operator %d", n.kind))
	}
}

// join runs the two-phase delta-join: ΔL probes the pre-refresh right
// index, is applied to the left index, then ΔR probes the post-refresh
// left index.  Output derivations are unique, so net accumulation is
// exact.
func (nw *network) join(n *node, base map[string][]change) []change {
	dl := nw.node(n.l, base)
	dr := nw.node(n.r, base)
	var em emitter
	for _, c := range dl {
		nw.keyBuf = n.lIndex.joinKey(c.t, nw.keyBuf[:0])
		jk := string(nw.keyBuf)
		for _, rt := range n.rIndex.m[jk] {
			out := concatExtra(c.t, rt, n.extraIdx)
			em.note(out.Key(), out, c.add)
		}
		n.lIndex.apply(c, jk)
	}
	for _, c := range dr {
		nw.keyBuf = n.rIndex.joinKey(c.t, nw.keyBuf[:0])
		jk := string(nw.keyBuf)
		for _, lt := range n.lIndex.m[jk] {
			out := concatExtra(lt, c.t, n.extraIdx)
			em.note(out.Key(), out, c.add)
		}
		n.rIndex.apply(c, jk)
	}
	return em.flush()
}

// bump adjusts a counted node's derivation count, remembering the
// pre-refresh count of each touched key.
func (n *node) bump(key string, t table.Tuple, d int, touched map[string]int) {
	e := n.counts[key]
	if e == nil {
		e = &centry{t: t}
		n.counts[key] = e
	}
	if _, seen := touched[key]; !seen {
		touched[key] = e.c
	}
	e.c += d
}

// transitions emits the 0↔+ transitions of the touched keys and drops
// zero-count entries.
func (n *node) transitions(touched map[string]int) []change {
	var out []change
	for k, old := range touched {
		e := n.counts[k]
		switch {
		case old == 0 && e.c > 0:
			out = append(out, change{key: k, t: e.t, add: true})
		case old > 0 && e.c <= 0:
			out = append(out, change{key: k, t: e.t, add: false})
		}
		if e.c <= 0 {
			delete(n.counts, k)
		}
	}
	return out
}

func applySet(set map[string]table.Tuple, c change) {
	if c.add {
		set[c.key] = c.t
	} else {
		delete(set, c.key)
	}
}

func concatExtra(lt, rt table.Tuple, extraIdx []int) table.Tuple {
	out := make(table.Tuple, len(lt), len(lt)+len(extraIdx))
	copy(out, lt)
	for _, ri := range extraIdx {
		out = append(out, rt[ri])
	}
	return out
}

func delta(add bool) int {
	if add {
		return 1
	}
	return -1
}
