package inc

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// testSchema is two joinable binary relations plus a unary one, enough to
// exercise every operator the network supports.
func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
		schema.NewRelation("T", "a"),
		schema.NewRelation("U", "a", "b"),
	)
}

// testQueries is the fixture of maintainable query shapes the differential
// tests sweep: one per operator plus composed trees.
func testQueries() map[string]ra.Expr {
	r, s, u := ra.Base("R"), ra.Base("S"), ra.Base("U")
	return map[string]ra.Expr{
		"select":      ra.Select{Input: r, Pred: ra.Cmp{Left: ra.Attr("a"), Op: ra.NEQ, Right: ra.Lit(value.MustParse("3"))}},
		"project":     ra.Project{Input: r, Attrs: []string{"b"}},
		"rename":      ra.Rename{Input: r, As: "RR", Attrs: []string{"x", "y"}},
		"join":        ra.Join{Left: r, Right: s},
		"product":     ra.Product{Left: ra.Rename{Input: r, As: "R1", Attrs: []string{"a1", "b1"}}, Right: ra.Rename{Input: s, As: "S1", Attrs: []string{"b2", "c2"}}},
		"equijoin":    ra.Select{Input: ra.Product{Left: ra.Rename{Input: r, As: "R1", Attrs: []string{"a1", "b1"}}, Right: ra.Rename{Input: s, As: "S1", Attrs: []string{"b2", "c2"}}}, Pred: ra.Cmp{Left: ra.Attr("b1"), Op: ra.EQ, Right: ra.Attr("b2")}},
		"union":       ra.Union{Left: r, Right: u},
		"intersect":   ra.Intersect{Left: r, Right: u},
		"diff":        ra.Diff{Left: r, Right: u},
		"selfjoin":    ra.Join{Left: ra.Project{Input: r, Attrs: []string{"b"}}, Right: ra.Project{Input: s, Attrs: []string{"b"}}},
		"composed":    ra.Project{Input: ra.Join{Left: r, Right: s}, Attrs: []string{"a", "c"}},
		"diff-nested": ra.Diff{Left: ra.Project{Input: r, Attrs: []string{"a"}}, Right: ra.Project{Input: ra.Join{Left: r, Right: s}, Attrs: []string{"a"}}},
	}
}

// naiveRecompute is the oracle both strategies are compared against.
func naiveRecompute(q ra.Expr, completeOnly bool) RecomputeFunc {
	return func(db *table.Database) (*table.Relation, error) {
		r, err := ra.Eval(q, db)
		if err != nil {
			return nil, err
		}
		if completeOnly {
			return ra.StripNulls(r), nil
		}
		return r, nil
	}
}

// randomTuple draws a tuple over a small domain with occasional nulls, so
// collisions (and thus deletions that matter) are common.
func randomTuple(rng *rand.Rand, arity int) table.Tuple {
	t := make(table.Tuple, arity)
	for i := range t {
		if rng.Intn(6) == 0 {
			t[i] = value.Null(uint64(1 + rng.Intn(3)))
		} else {
			t[i] = value.MustParse(fmt.Sprint(rng.Intn(5)))
		}
	}
	return t
}

// mutate applies one random update step to the database under tracking and
// returns the captured change set.
func mutate(rng *rand.Rand, d *table.Database) *table.ChangeSet {
	tr := d.Track()
	names := d.RelationNames()
	steps := 1 + rng.Intn(4)
	for i := 0; i < steps; i++ {
		rel := d.Relation(names[rng.Intn(len(names))])
		switch rng.Intn(3) {
		case 0, 1:
			rel.MustAdd(randomTuple(rng, rel.Arity()))
		default:
			// Delete a random existing tuple (if any).
			ts := rel.SortedTuples()
			if len(ts) > 0 {
				rel.Remove(ts[rng.Intn(len(ts))])
			}
		}
	}
	return tr.Stop()
}

// TestNetworkDifferential drives every fixture query through 300 random
// update steps and pins the maintained answer to from-scratch naïve
// evaluation (and its null-stripped certain variant) after every step.
func TestNetworkDifferential(t *testing.T) {
	for name, q := range testQueries() {
		for _, completeOnly := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/completeOnly=%v", name, completeOnly), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				d := table.NewDatabase(testSchema())
				for i := 0; i < 10; i++ {
					d.MustAdd("R", randomTuple(rng, 2))
					d.MustAdd("S", randomTuple(rng, 2))
					d.MustAdd("U", randomTuple(rng, 2))
				}
				v, err := New(name, q, d, Config{
					CompleteOnly: completeOnly,
					Recompute:    naiveRecompute(q, completeOnly),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !v.Incremental() {
					t.Fatalf("query %s should compile to a delta network", name)
				}
				check := func(step int) {
					want, err := naiveRecompute(q, completeOnly)(d)
					if err != nil {
						t.Fatal(err)
					}
					got, err := v.Answer()
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("step %d: maintained answer diverged\ngot  %v\nwant %v", step, got, want)
					}
				}
				check(-1)
				for step := 0; step < 300; step++ {
					cs := mutate(rng, d)
					if err := v.Apply(cs, d); err != nil {
						t.Fatal(err)
					}
					check(step)
				}
				st := v.Stats()
				if st.Incremental == 0 {
					t.Error("expected incremental refreshes")
				}
				if st.Recomputed != 0 {
					t.Errorf("incremental view recomputed %d times", st.Recomputed)
				}
			})
		}
	}
}

// TestRecomputeFallback covers the strategies the network cannot maintain:
// division and the Δ operator (whole-database dependency).
func TestRecomputeFallback(t *testing.T) {
	sc := schema.MustNew(
		schema.NewRelation("Takes", "student", "course"),
		schema.NewRelation("Req", "course"),
	)
	div := ra.Division{Left: ra.Base("Takes"), Right: ra.Base("Req")}
	d := table.NewDatabase(sc)
	d.MustAddRow("Takes", "ann", "db")
	d.MustAddRow("Takes", "ann", "os")
	d.MustAddRow("Takes", "bob", "db")
	d.MustAddRow("Req", "db")
	d.MustAddRow("Req", "os")

	v, err := New("grads", div, d, Config{CompleteOnly: true, Recompute: naiveRecompute(div, true)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Incremental() {
		t.Fatal("division must fall back to recomputation")
	}
	if got := mustAnswer(t, v); got.Len() != 1 || !got.Contains(table.MustParseTuple("ann")) {
		t.Fatalf("initial answer = %v", got)
	}

	tr := d.Track()
	d.MustAddRow("Takes", "bob", "os")
	cs := tr.Stop()
	if err := v.Apply(cs, d); err != nil {
		t.Fatal(err)
	}
	if got := mustAnswer(t, v); got.Len() != 2 || !got.Contains(table.MustParseTuple("bob")) {
		t.Fatalf("post-update answer = %v", got)
	}
	if st := v.Stats(); st.Recomputed != 1 || st.Incremental != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSkipIrrelevantUpdate pins the stamp-validated no-op: an update that
// only touches an unread relation must not refresh the view at all.
func TestSkipIrrelevantUpdate(t *testing.T) {
	d := table.NewDatabase(testSchema())
	d.MustAddRow("R", "1", "2")
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}
	v, err := New("ra", q, d, Config{CompleteOnly: true, Recompute: naiveRecompute(q, true)})
	if err != nil {
		t.Fatal(err)
	}

	tr := d.Track()
	d.MustAddRow("S", "9", "9") // unread by the view
	cs := tr.Stop()
	if err := v.Apply(cs, d); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Skipped != 1 || st.Incremental != 0 || st.Recomputed != 0 {
		t.Fatalf("stats = %+v, want one skip and no refresh", st)
	}

	// A cancelled update (net-empty delta) is also a no-op.
	tr = d.Track()
	d.MustAddRow("R", "7", "7")
	d.Relation("R").Remove(table.MustParseTuple("7", "7"))
	cs = tr.Stop()
	if err := v.Apply(cs, d); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Skipped != 2 {
		t.Fatalf("stats = %+v, want the cancelled update skipped", st)
	}
}

// TestDeleteNullCarryingTuple pins delta capture and maintenance across a
// deletion of a tuple that mentions a marked null.
func TestDeleteNullCarryingTuple(t *testing.T) {
	d := table.NewDatabase(testSchema())
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("R", "1", "2")
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"b"}}

	// Raw view: the null is in the answer until its tuple is deleted.
	raw, err := New("raw", q, d, Config{Recompute: naiveRecompute(q, false)})
	if err != nil {
		t.Fatal(err)
	}
	// Certain view: the null never appears.
	cert, err := New("cert", q, d, Config{CompleteOnly: true, Recompute: naiveRecompute(q, true)})
	if err != nil {
		t.Fatal(err)
	}
	nullB := table.NewTuple(value.Null(1))
	if !mustAnswer(t, raw).Contains(nullB) {
		t.Fatal("raw view must carry the null tuple")
	}
	if mustAnswer(t, cert).Contains(nullB) {
		t.Fatal("certain view must strip the null tuple")
	}

	tr := d.Track()
	if !d.Relation("R").Remove(table.MustParseTuple("1", "⊥1")) {
		t.Fatal("null-carrying tuple should exist")
	}
	cs := tr.Stop()
	rd := cs.Delta("R")
	if len(rd.Deleted) != 1 {
		t.Fatalf("delta = %+v, want exactly the null-carrying delete", rd)
	}
	for _, v := range []*View{raw, cert} {
		if err := v.Apply(cs, d); err != nil {
			t.Fatal(err)
		}
	}
	if mustAnswer(t, raw).Contains(nullB) {
		t.Fatal("raw view still carries the deleted null tuple")
	}
	if got, want := mustAnswer(t, raw).Len(), 1; got != want {
		t.Fatalf("raw answer size = %d, want %d", got, want)
	}
	if got := mustAnswer(t, cert); got.Len() != 1 || !got.Contains(table.MustParseTuple("2")) {
		t.Fatalf("certain answer = %v", got)
	}
}

// mustAnswer unwraps a view answer that must be fresh.
func mustAnswer(t *testing.T, v *View) *table.Relation {
	t.Helper()
	r, err := v.Answer()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFailedRefreshMarksStale pins the staleness contract: when a
// recompute refresh errors, the view must refuse to serve its pre-update
// answer, must not skip later updates, and must recover on the next
// successful refresh.
func TestFailedRefreshMarksStale(t *testing.T) {
	d := table.NewDatabase(testSchema())
	d.MustAddRow("R", "1", "2")
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}
	fail := fmt.Errorf("transient evaluator failure")
	failing := true
	v, err := New("flaky", q, d, Config{
		ForceRecompute: true,
		Recompute: func(db *table.Database) (*table.Relation, error) {
			if failing {
				return nil, fail
			}
			return naiveRecompute(q, true)(db)
		},
	})
	if err == nil || v != nil {
		t.Fatal("initial materialization must surface the recompute error")
	}

	failing = false
	v, err = New("flaky", q, d, Config{
		ForceRecompute: true,
		Recompute: func(db *table.Database) (*table.Relation, error) {
			if failing {
				return nil, fail
			}
			return naiveRecompute(q, true)(db)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAnswer(t, v)

	// A refresh that fails poisons Answer...
	failing = true
	tr := d.Track()
	d.MustAddRow("R", "9", "9")
	if err := v.Apply(tr.Stop(), d); err == nil {
		t.Fatal("failed refresh must surface its error")
	}
	if _, err := v.Answer(); err == nil {
		t.Fatal("stale view must not serve the pre-update answer")
	}
	if st := v.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v, want one failed refresh", st)
	}

	// ...an irrelevant update must not be skipped while stale...
	failing = false
	tr = d.Track()
	d.MustAddRow("S", "5", "5") // unread by q
	if err := v.Apply(tr.Stop(), d); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Skipped != 0 {
		t.Fatalf("stats = %+v: a stale view must not skip", st)
	}

	// ...and the successful recompute clears the staleness.
	got := mustAnswer(t, v)
	want, err := naiveRecompute(q, true)(d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("recovered answer = %v, want %v", got, want)
	}
}
