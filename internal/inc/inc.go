// Package inc maintains materialized certain-answer views incrementally
// over snapshot deltas: a registered query's answer is computed once, and
// every subsequent database update refreshes it from the captured
// per-relation tuple deltas (table.Tracker) instead of re-evaluating the
// query — the paper's certain answers promoted to first-class objects that
// survive updates.
//
// Two maintenance strategies coexist, chosen at registration:
//
//   - Incremental (the default for naïve-evaluation answers): the query is
//     rewritten by the planner (internal/plan) and compiled into a delta
//     network — one node per operator, holding derivation counts,
//     incrementally maintained join indexes, or side membership sets as its
//     delta rule requires (see network.go).  A refresh costs work
//     proportional to the update's delta, not to the database.
//   - Recompute (world-enumeration modes, division, the Δ operator): the
//     view re-evaluates through the engine's evaluator — whose world-plan
//     caches reuse hoisted stable subplans across snapshots — but only when
//     the update can actually affect the answer: for division that means a
//     relation the query reads changed; for answers depending on the whole
//     active domain (Δ, and the world-enumeration modes, whose enumeration
//     domain collects every relation's constants) any net-nonempty update.
//
// Either way an update whose net delta cannot affect the view is a no-op
// validated without touching the answer (the "stamp-validated skip": the
// captured change set is exact, so untouched stamps mean untouched
// answers).
//
// Views are not internally synchronized: the engine (internal/engine)
// owns them and serializes Apply with its writer lock, handing out
// answers as copy-on-write clones that concurrent readers may keep.
package inc

import (
	"errors"
	"fmt"

	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/table"
)

// RecomputeFunc re-evaluates a view's answer from scratch on a database
// state.  The engine supplies one that routes through its evaluator with
// the view's registered options.
type RecomputeFunc func(db *table.Database) (*table.Relation, error)

// Config controls how a view is built and maintained.
type Config struct {
	// CompleteOnly keeps only null-free tuples in the maintained answer
	// (certain answers by naïve evaluation, equation (4)); without it the
	// view maintains the raw naïve answer, nulls included.
	CompleteOnly bool

	// Recompute re-evaluates the view from scratch; it is required, and is
	// the only evaluation path when ForceRecompute is set or the query has
	// no incremental network.
	Recompute RecomputeFunc

	// ForceRecompute disables the delta network even for maintainable
	// queries; refreshes recompute (still skipping irrelevant updates).
	ForceRecompute bool

	// WholeDB marks the view's answer as depending on the whole database,
	// not just the relations the query reads — the engine sets it for the
	// world-enumeration modes, whose enumeration domain is built from
	// every relation's constants, so an insert anywhere can change the
	// answer.  Such views refresh on every net-nonempty update.  It
	// implies ForceRecompute.
	WholeDB bool
}

// Stats counts a view's refresh traffic since registration.
type Stats struct {
	// Updates is the number of database updates delivered to the view.
	Updates uint64
	// Skipped counts updates whose captured delta touched no relation the
	// view reads — validated as no-ops without touching the answer.
	Skipped uint64
	// Incremental counts refreshes served by the delta network.
	Incremental uint64
	// Recomputed counts refreshes served by full re-evaluation.
	Recomputed uint64
	// DeltaIn is the total number of base-relation delta tuples consumed
	// by incremental refreshes.
	DeltaIn uint64
	// DeltaOut is the total number of answer tuples changed by incremental
	// refreshes.
	DeltaOut uint64
	// Failed counts refreshes whose recomputation errored, leaving the
	// view stale until a later refresh succeeds.
	Failed uint64
}

// View is one materialized query answer maintained across updates.
type View struct {
	name         string
	query        ra.Expr
	deps         []string
	wholeDB      bool
	completeOnly bool
	net          *network
	recompute    RecomputeFunc
	out          *table.Relation
	stale        error // non-nil after a failed refresh, until one succeeds
	stats        Stats
	// acc accumulates the net change of the maintained answer since the
	// last TakeDelta (nil while nothing changed).  It is what lets a
	// serving layer push exactly the changed answer tuples to subscribers
	// instead of re-sending (or re-diffing) the whole materialization.
	acc *table.Delta
}

// New compiles and materializes a view over the database's current state.
// The query is validated and rewritten through the planner; queries with
// no incremental network (division, Δ) and configs with ForceRecompute
// fall back to cfg.Recompute for both initialization and refreshes.
func New(name string, q ra.Expr, db *table.Database, cfg Config) (*View, error) {
	if cfg.Recompute == nil {
		return nil, fmt.Errorf("inc: view %q needs a Recompute fallback", name)
	}
	if _, err := q.OutSchema(db.Schema()); err != nil {
		return nil, fmt.Errorf("inc: view %q: %w", name, err)
	}
	v := &View{
		name:         name,
		query:        q,
		completeOnly: cfg.CompleteOnly,
		recompute:    cfg.Recompute,
	}
	v.deps, v.wholeDB = ra.BaseRelations(q)
	v.wholeDB = v.wholeDB || cfg.WholeDB

	if !cfg.ForceRecompute && !v.wholeDB {
		rw, err := plan.Rewrite(q, db.Schema())
		if err != nil {
			return nil, fmt.Errorf("inc: view %q: %w", name, err)
		}
		net, err := buildNetwork(rw, db.Schema())
		switch {
		case err == nil:
			v.net = net
		case errors.Is(err, errUnsupported):
			// Recompute fallback below.
		default:
			return nil, fmt.Errorf("inc: view %q: %w", name, err)
		}
	}

	if v.net == nil {
		out, err := cfg.Recompute(db)
		if err != nil {
			return nil, fmt.Errorf("inc: view %q: %w", name, err)
		}
		v.out = out.Clone()
		return v, nil
	}

	// Initial materialization reuses the refresh path: feed the full
	// current contents of every read relation as inserts.
	v.out = table.NewRelation(v.net.root.rs)
	base := map[string][]change{}
	for _, dep := range v.deps {
		rel := db.Relation(dep)
		chs := make([]change, 0, rel.Len())
		rel.EachKeyed(func(k string, t table.Tuple) bool {
			chs = append(chs, change{key: k, t: t, add: true})
			return true
		})
		base[dep] = chs
	}
	v.applyNetwork(base)
	// The initial materialization is the baseline subscribers start from,
	// not a change against anything: deltas accumulate only from here on.
	v.acc = nil
	return v, nil
}

// Name returns the view's registration name.
func (v *View) Name() string { return v.name }

// Query returns the registered query.
func (v *View) Query() ra.Expr { return v.query }

// Incremental reports whether the view is maintained by the delta network
// (as opposed to stamp-gated recomputation).
func (v *View) Incremental() bool { return v.net != nil }

// Deps returns the base relations the view reads.  Views that depend on
// the whole database (the Δ operator, Config.WholeDB) additionally treat
// every net-nonempty update as relevant, regardless of Deps.
func (v *View) Deps() []string { return v.deps }

// Stats returns the refresh counters.
func (v *View) Stats() Stats { return v.stats }

// Answer returns the maintained answer as a copy-on-write clone: callers
// may keep it across subsequent updates.  After a failed refresh the
// materialization no longer corresponds to any committed database state,
// so Answer returns the failure instead of the stale relation until a
// later refresh succeeds.  The caller must serialize Answer with Apply
// (the engine's lock does).
func (v *View) Answer() (*table.Relation, error) {
	if v.stale != nil {
		return nil, fmt.Errorf("inc: view %q is stale after a failed refresh: %w", v.name, v.stale)
	}
	return v.out.Clone(), nil
}

// Apply refreshes the view for one captured update.  The change set must
// be the exact net delta of db against the state the view last saw; the
// engine guarantees this by capturing every Update with a table.Tracker.
func (v *View) Apply(cs *table.ChangeSet, db *table.Database) error {
	v.stats.Updates++
	// A stale view must not skip: even an otherwise-irrelevant update is
	// its chance to recompute back to a committed state.
	if v.stale == nil && !v.relevant(cs) {
		v.stats.Skipped++
		return nil
	}
	if v.net == nil {
		v.stats.Recomputed++
		out, err := v.recompute(db)
		if err != nil {
			v.stats.Failed++
			v.stale = err
			return fmt.Errorf("inc: view %q: %w", v.name, err)
		}
		v.stale = nil
		old := v.out
		v.out = out.Clone()
		// Recomputation replaces the answer wholesale; recover the net
		// change by diffing so TakeDelta stays exact on this path too.
		v.out.EachKeyed(func(k string, t table.Tuple) bool {
			if !old.ContainsKeyString(k) {
				v.noteAnswer(k, t, true)
			}
			return true
		})
		old.EachKeyed(func(k string, t table.Tuple) bool {
			if !v.out.ContainsKeyString(k) {
				v.noteAnswer(k, t, false)
			}
			return true
		})
		return nil
	}
	v.stats.Incremental++
	base := map[string][]change{}
	for _, dep := range v.deps {
		d := cs.Delta(dep)
		if d.Empty() {
			continue
		}
		chs := make([]change, 0, d.Size())
		for k, t := range d.Deleted {
			chs = append(chs, change{key: k, t: t, add: false})
		}
		for k, t := range d.Inserted {
			chs = append(chs, change{key: k, t: t, add: true})
		}
		base[dep] = chs
		v.stats.DeltaIn += uint64(len(chs))
	}
	v.stats.DeltaOut += v.applyNetwork(base)
	return nil
}

// applyNetwork runs one network refresh and applies the root transitions
// to the materialized answer, returning the number of answer changes.
func (v *View) applyNetwork(base map[string][]change) uint64 {
	changed := uint64(0)
	for _, c := range v.net.refresh(base) {
		if v.completeOnly && c.t.HasNull() {
			continue
		}
		if c.add {
			if v.out.Contains(c.t) {
				continue
			}
			v.out.MustAdd(c.t)
		} else if !v.out.Remove(c.t) {
			continue
		}
		v.noteAnswer(c.key, c.t, c.add)
		changed++
	}
	return changed
}

// noteAnswer records one net answer change in the accumulated delta, with
// the same cancellation the capture layer applies: re-adding a tuple whose
// deletion is pending (or vice versa) cancels instead of double-counting.
func (v *View) noteAnswer(key string, t table.Tuple, add bool) {
	if v.acc == nil {
		v.acc = table.NewDelta()
	}
	if add {
		if _, ok := v.acc.Deleted[key]; ok {
			delete(v.acc.Deleted, key)
			return
		}
		v.acc.Inserted[key] = t
	} else {
		if _, ok := v.acc.Inserted[key]; ok {
			delete(v.acc.Inserted, key)
			return
		}
		v.acc.Deleted[key] = t
	}
}

// TakeDelta returns the net change of the maintained answer accumulated
// since the last TakeDelta (or since registration) and resets the
// accumulator.  Applying every taken delta, in take order, to a clone of
// the answer at registration reproduces the current answer exactly — the
// contract the server's subscriber streams are built on.  Like every View
// method, the caller must serialize TakeDelta with Apply (the engine's
// lock does).
func (v *View) TakeDelta() *table.Delta {
	d := v.acc
	v.acc = nil
	if d == nil {
		d = table.NewDelta()
	}
	return d
}

// relevant reports whether the update's net delta can affect the view.
func (v *View) relevant(cs *table.ChangeSet) bool {
	if v.wholeDB {
		return !cs.Empty()
	}
	for _, dep := range v.deps {
		if !cs.Delta(dep).Empty() {
			return true
		}
	}
	return false
}
