package queryparse

import (
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

func exampleDB(t *testing.T) *table.Database {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("Order", "o_id", "product"),
		schema.NewRelation("Paid", "o_id"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("Order", "oid1", "pr1")
	d.MustAddRow("Order", "oid2", "pr2")
	d.MustAddRow("Paid", "oid1")
	return d
}

func TestParseBaseAndOperators(t *testing.T) {
	cases := []struct {
		in   string
		want string // the canonical ra String rendering
	}{
		{"Order", "Order"},
		{"project(Order; o_id)", "π[o_id](Order)"},
		{"project(Order ; o_id , product)", "π[o_id,product](Order)"},
		{"select(Order; product = 'pr1')", "σ[product=pr1](Order)"},
		{"select(Order; o_id != 'x' & product = 'pr1')", "σ[(o_id≠x ∧ product=pr1)](Order)"},
		{"select(Order; product = 'pr1' | product = 'pr2')", "σ[(product=pr1 ∨ product=pr2)](Order)"},
		{"select(Order; o_id < 10)", "σ[o_id<10](Order)"},
		{"select(Order; o_id >= -3)", "σ[o_id≥-3](Order)"},
		{"select(Order; o_id <= 3)", "σ[o_id≤3](Order)"},
		{"select(Order; o_id > 3)", "σ[o_id>3](Order)"},
		{"rename(Order; O2)", "ρ[O2](Order)"},
		{"rename(Order; O2; a, b)", "ρ[O2(a,b)](Order)"},
		{"join(Order, Paid)", "(Order ⋈ Paid)"},
		{"product(Order, rename(Paid; P2; pid))", "(Order × ρ[P2(pid)](Paid))"},
		{"union(Paid, Paid)", "(Paid ∪ Paid)"},
		{"diff(project(Order; o_id), Paid)", "(π[o_id](Order) − Paid)"},
		{"intersect(Paid, Paid)", "(Paid ∩ Paid)"},
		{"divide(Order, rename(Paid; P; product))", "(Order ÷ ρ[P(product)](Paid))"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if e.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, e.String(), c.want)
		}
	}
}

func TestParsedQueriesEvaluate(t *testing.T) {
	d := exampleDB(t)
	// Unpaid orders, written in the query language.
	q, err := Parse("diff(project(Order; o_id), Paid)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ra.Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(table.MustParseTuple("oid2")) {
		t.Errorf("unpaid orders = %v", res)
	}
	q2, err := Parse("project(select(Order; product = 'pr1'); o_id)")
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := ra.Eval(q2, d)
	if res2.Len() != 1 || !res2.Contains(table.MustParseTuple("oid1")) {
		t.Errorf("selection result = %v", res2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"project(Order)",
		"project(Order; )",
		"project(Order; a b)",
		"select(Order)",
		"select(Order; product)",
		"select(Order; product = )",
		"select(Order; product = 'x' & o_id = 1 | a = 2)",
		"select(Order; product = 'unterminated)",
		"rename(Order)",
		"rename(Order; )",
		"join(Order)",
		"join(Order, )",
		"join(Order, Paid",
		"frobnicate(Order, Paid)",
		"Order extra",
		"union(Order Paid)",
		"select(Order; o_id = 99999999999999999999)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParsedFragmentsClassify(t *testing.T) {
	pos, err := Parse("project(join(Order, Paid); o_id)")
	if err != nil {
		t.Fatal(err)
	}
	if !ra.IsPositive(pos) {
		t.Error("parsed SPJ query should be positive")
	}
	div, err := Parse("divide(Order, rename(Paid; P; product))")
	if err != nil {
		t.Fatal(err)
	}
	if ra.IsPositive(div) || !ra.IsRAcwa(div) {
		t.Error("parsed division should classify as RAcwa")
	}
	diff, err := Parse("diff(Paid, Paid)")
	if err != nil {
		t.Fatal(err)
	}
	if ra.IsRAcwa(diff) {
		t.Error("parsed difference should be full RA")
	}
}
