// Package queryparse parses a small textual query language into
// relational-algebra expressions (package ra).  It exists for the incq CLI,
// so that queries over CSV data can be written on the command line.
//
// Grammar (whitespace-insensitive):
//
//	expr  := NAME
//	       | project(expr ; attr, ...)
//	       | select(expr ; cond)
//	       | rename(expr ; NewName)            -- keep attributes
//	       | rename(expr ; NewName ; a, b, ...) -- rename attributes too
//	       | join(expr , expr)      | product(expr , expr)
//	       | union(expr , expr)     | diff(expr , expr)
//	       | intersect(expr , expr) | divide(expr , expr)
//	cond  := cmp ( '&' cmp )*   or   cmp ( '|' cmp )*    (no mixing)
//	cmp   := operand op operand          op ∈ { =, !=, <, <=, >, >= }
//	operand := attribute | 123 (int) | 'text' (string constant)
//
// Example:  project(select(diff(Order2, Paid); product = 'pr1'); o_id)
package queryparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"incdata/internal/ra"
	"incdata/internal/value"
)

// Parse parses a query expression.
func Parse(input string) (ra.Expr, error) {
	p := &parser{input: input}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("queryparse: trailing input at offset %d: %q", p.pos, p.input[p.pos:])
	}
	return e, nil
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("queryparse: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := rune(p.input[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '#' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected an identifier")
	}
	return p.input[start:p.pos], nil
}

var binaryOps = map[string]func(l, r ra.Expr) ra.Expr{
	"join":      func(l, r ra.Expr) ra.Expr { return ra.Join{Left: l, Right: r} },
	"product":   func(l, r ra.Expr) ra.Expr { return ra.Product{Left: l, Right: r} },
	"union":     func(l, r ra.Expr) ra.Expr { return ra.Union{Left: l, Right: r} },
	"diff":      func(l, r ra.Expr) ra.Expr { return ra.Diff{Left: l, Right: r} },
	"intersect": func(l, r ra.Expr) ra.Expr { return ra.Intersect{Left: l, Right: r} },
	"divide":    func(l, r ra.Expr) ra.Expr { return ra.Division{Left: l, Right: r} },
}

func (p *parser) parseExpr() (ra.Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '(' {
		return ra.Base(name), nil
	}
	lower := strings.ToLower(name)
	if err := p.expect('('); err != nil {
		return nil, err
	}
	switch lower {
	case "project":
		return p.parseProject()
	case "select":
		return p.parseSelect()
	case "rename":
		return p.parseRename()
	default:
		build, ok := binaryOps[lower]
		if !ok {
			return nil, p.errf("unknown operator %q", name)
		}
		left, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return build(left, right), nil
	}
}

func (p *parser) parseProject() (ra.Expr, error) {
	input, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, err
	}
	attrs, err := p.attrList(')')
	if err != nil {
		return nil, err
	}
	return ra.Project{Input: input, Attrs: attrs}, nil
}

func (p *parser) parseRename() (ra.Expr, error) {
	input, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, err
	}
	newName, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() == ')' {
		p.pos++
		return ra.Rename{Input: input, As: newName}, nil
	}
	if err := p.expect(';'); err != nil {
		return nil, err
	}
	attrs, err := p.attrList(')')
	if err != nil {
		return nil, err
	}
	return ra.Rename{Input: input, As: newName, Attrs: attrs}, nil
}

func (p *parser) parseSelect() (ra.Expr, error) {
	input, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(';'); err != nil {
		return nil, err
	}
	pred, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return ra.Select{Input: input, Pred: pred}, nil
}

func (p *parser) attrList(end byte) ([]string, error) {
	var attrs []string
	for {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case end:
			p.pos++
			return attrs, nil
		default:
			return nil, p.errf("expected ',' or %q in attribute list", string(end))
		}
	}
}

func (p *parser) parseCond() (ra.Predicate, error) {
	first, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	preds := []ra.Predicate{first}
	connective := byte(0)
	for {
		p.skipSpace()
		c := p.peek()
		if c != '&' && c != '|' {
			break
		}
		if connective == 0 {
			connective = c
		} else if connective != c {
			return nil, p.errf("cannot mix '&' and '|' without parentheses")
		}
		p.pos++
		next, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	if connective == '&' {
		return ra.AllOf(preds...), nil
	}
	return ra.AnyOf(preds...), nil
}

var cmpOps = []struct {
	text string
	op   ra.CmpOp
}{
	{"!=", ra.NEQ}, {"<=", ra.LEQ}, {">=", ra.GEQ},
	{"=", ra.EQ}, {"<", ra.LT}, {">", ra.GT},
}

func (p *parser) parseCmp() (ra.Predicate, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for _, c := range cmpOps {
		if strings.HasPrefix(p.input[p.pos:], c.text) {
			p.pos += len(c.text)
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return ra.Cmp{Left: left, Op: c.op, Right: right}, nil
		}
	}
	return nil, p.errf("expected a comparison operator")
}

func (p *parser) parseOperand() (ra.Operand, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return ra.Operand{}, p.errf("unterminated string literal")
		}
		s := p.input[start:p.pos]
		p.pos++
		return ra.LitString(s), nil
	case c == '-' || unicode.IsDigit(rune(c)):
		start := p.pos
		p.pos++
		for p.pos < len(p.input) && unicode.IsDigit(rune(p.input[p.pos])) {
			p.pos++
		}
		i, err := strconv.ParseInt(p.input[start:p.pos], 10, 64)
		if err != nil {
			return ra.Operand{}, p.errf("bad integer literal: %v", err)
		}
		return ra.Lit(value.Int(i)), nil
	default:
		a, err := p.ident()
		if err != nil {
			return ra.Operand{}, err
		}
		return ra.Attr(a), nil
	}
}
