package value

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v       Value
		kind    Kind
		isNull  bool
		isConst bool
	}{
		{Int(3), KindInt, false, true},
		{Int(-7), KindInt, false, true},
		{String("abc"), KindString, false, true},
		{String(""), KindString, false, true},
		{Null(0), KindNull, true, false},
		{Null(42), KindNull, true, false},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.kind {
			t.Errorf("%v: Kind = %v, want %v", c.v, got, c.kind)
		}
		if got := c.v.IsNull(); got != c.isNull {
			t.Errorf("%v: IsNull = %v, want %v", c.v, got, c.isNull)
		}
		if got := c.v.IsConst(); got != c.isConst {
			t.Errorf("%v: IsConst = %v, want %v", c.v, got, c.isConst)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatalf("zero Value should be a null, got %v", v)
	}
	if v.NullID() != 0 {
		t.Fatalf("zero Value should be ⊥0, got %v", v)
	}
}

func TestNullIdentity(t *testing.T) {
	if Null(1) != Null(1) {
		t.Error("⊥1 should equal ⊥1 (marked nulls have identity)")
	}
	if Null(1) == Null(2) {
		t.Error("⊥1 should not equal ⊥2")
	}
	if Null(1) == Int(1) {
		t.Error("⊥1 should not equal constant 1")
	}
	if Int(1) == String("1") {
		t.Error("int 1 should not equal string \"1\"")
	}
}

func TestNullIDPanicsOnConstant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NullID on a constant should panic")
		}
	}()
	_ = Int(1).NullID()
}

func TestAccessors(t *testing.T) {
	if i, ok := Int(9).AsInt(); !ok || i != 9 {
		t.Errorf("AsInt(Int(9)) = %d,%v", i, ok)
	}
	if _, ok := String("x").AsInt(); ok {
		t.Error("AsInt on string should fail")
	}
	if s, ok := String("x").AsString(); !ok || s != "x" {
		t.Errorf("AsString(String(x)) = %q,%v", s, ok)
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("AsString on int should fail")
	}
	if _, ok := Null(1).AsInt(); ok {
		t.Error("AsInt on null should fail")
	}
}

func TestFreshNullsDistinct(t *testing.T) {
	ResetFreshNulls()
	seen := map[Value]bool{}
	for i := 0; i < 1000; i++ {
		n := FreshNull()
		if !n.IsNull() {
			t.Fatal("FreshNull returned a constant")
		}
		if seen[n] {
			t.Fatalf("FreshNull returned duplicate %v", n)
		}
		seen[n] = true
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-1), "-1"},
		{String("abc"), "abc"},
		{String("has space"), `"has space"`},
		{String("7"), `"7"`},
		{String(""), `""`},
		{Null(3), "⊥3"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(12345), Int(-6),
		String("hello"), String("with space"), String("42"), String(""),
		Null(0), Null(7), Null(123456),
	}
	for _, v := range vals {
		got, err := Parse(v.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", v.String(), err)
			continue
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseForms(t *testing.T) {
	if v := MustParse("_:9"); v != Null(9) {
		t.Errorf("_:9 parsed as %v", v)
	}
	if v := MustParse("17"); v != Int(17) {
		t.Errorf("17 parsed as %v", v)
	}
	if v := MustParse("oid1"); v != String("oid1") {
		t.Errorf("oid1 parsed as %v", v)
	}
	if v := MustParse("NULL"); !v.IsNull() {
		t.Errorf("NULL parsed as %v", v)
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse(\"\") should fail")
	}
	if _, err := Parse("⊥x"); err == nil {
		t.Error("Parse(⊥x) should fail")
	}
	if _, err := Parse(`"unterminated`); err == nil {
		t.Error("Parse of bad quoted string should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("")
}

func TestCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null(0), Null(1), Null(9),
		Int(-3), Int(0), Int(5),
		String("a"), String("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
			if Less(ordered[i], ordered[j]) != (want < 0) {
				t.Errorf("Less(%v,%v) inconsistent with Compare", ordered[i], ordered[j])
			}
		}
	}
}

func TestCompareSortsDeterministically(t *testing.T) {
	vs := []Value{String("z"), Int(3), Null(2), Int(-1), String("a"), Null(0)}
	sort.Slice(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
	want := []Value{Null(0), Null(2), Int(-1), Int(3), String("a"), String("z")}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, vs[i], want[i])
		}
	}
}

func TestMaxNullID(t *testing.T) {
	if got := MaxNullID(Int(5), String("x")); got != 0 {
		t.Errorf("MaxNullID with no nulls = %d", got)
	}
	if got := MaxNullID(Null(3), Int(9), Null(11), Null(2)); got != 11 {
		t.Errorf("MaxNullID = %d, want 11", got)
	}
	if got := MaxNullID(); got != 0 {
		t.Errorf("MaxNullID() = %d, want 0", got)
	}
}

// Property: Compare is antisymmetric and transitive-ish on random ints, and
// Parse∘String is the identity for integer and null values.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		return Compare(x, y) == -Compare(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseStringIdentity(t *testing.T) {
	f := func(a int64, id uint64, s string) bool {
		iv := Int(a)
		nv := Null(id)
		sv := String(s)
		p1, err1 := Parse(iv.String())
		p2, err2 := Parse(nv.String())
		p3, err3 := Parse(sv.String())
		return err1 == nil && p1 == iv &&
			err2 == nil && p2 == nv &&
			err3 == nil && p3 == sv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindNull.String() != "null" || KindInt.String() != "int" || KindString.String() != "string" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
