// Package value defines the atomic values that populate incomplete
// databases: constants drawn from a countably infinite set Const and
// (marked) nulls drawn from a countably infinite set Null.
//
// The model follows Section 2 of Libkin, "Incomplete Data: What Went
// Wrong, and How to Fix It" (PODS 2014): database entries are elements of
// Const ∪ Null, a null ⊥i may occur several times (naïve nulls), and a
// valuation maps nulls to constants.  Constants are typed (integers and
// strings) purely for convenience of workload generation and CSV I/O; the
// theory never depends on the type of a constant.
package value

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Kind discriminates the variants of a Value.
type Kind uint8

const (
	// KindNull marks a labelled (naïve/marked) null ⊥i.
	KindNull Kind = iota
	// KindInt marks an integer constant.
	KindInt
	// KindString marks a string constant.
	KindString
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single database entry: either a constant (int or string) or a
// marked null.  The zero Value is the null ⊥0.
//
// Value is a small comparable struct; it can be used as a map key and
// compared with ==.  Two nulls are equal iff they carry the same id, which
// is exactly the semantics of marked (naïve) nulls.
type Value struct {
	kind Kind
	i    int64  // integer payload or null id
	s    string // string payload
}

// Int returns an integer constant.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// String returns a string constant.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Null returns the marked null with the given id (⊥id).
func Null(id uint64) Value { return Value{kind: KindNull, i: int64(id)} }

// nullCounter backs FreshNull.
var nullCounter atomic.Uint64

// FreshNull returns a marked null with an id that has not been returned by
// FreshNull before in this process.  It is safe for concurrent use.
func FreshNull() Value { return Null(nullCounter.Add(1)) }

// ResetFreshNulls resets the fresh-null counter.  Only tests and the
// benchmark harness should call it, to obtain reproducible null ids.
func ResetFreshNulls() { nullCounter.Store(0) }

// EnsureFreshNullsAfter raises the fresh-null counter to at least id, so
// every later FreshNull returns an id strictly above it.  The durable
// store calls it when opening a database whose persisted state mentions
// null ids this process has not issued — without it a later FreshNull
// could collide with a stored marked null and silently alias two
// unrelated unknowns.  It is safe for concurrent use.
func EnsureFreshNullsAfter(id uint64) {
	for {
		cur := nullCounter.Load()
		if cur >= id || nullCounter.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Kind reports the variant of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is a null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v.kind != KindNull }

// NullID returns the id of a null value; it panics when v is a constant.
func (v Value) NullID() uint64 {
	if v.kind != KindNull {
		panic("value: NullID called on a constant")
	}
	return uint64(v.i)
}

// AsInt returns the integer payload and whether v is an integer constant.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return v.i, true
}

// AsString returns the string payload and whether v is a string constant.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.s, true
}

// AppendKey appends a compact self-delimiting binary encoding of v to dst
// and returns the extended slice.  Distinct values have distinct encodings,
// and because string payloads are length-prefixed, the concatenation of
// several encodings decodes unambiguously — unlike separator-based schemes,
// a payload can never be confused with an encoding boundary.
func (v Value) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	if v.kind == KindString {
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	}
	// KindNull and KindInt both carry an integer payload.
	return binary.AppendVarint(dst, v.i)
}

// DecodeKey decodes one value from the front of a key encoding produced
// by AppendKey and returns it together with the remaining bytes.  It is
// the inverse of AppendKey: the durable chunk store and the spill files of
// the budgeted hash join persist tuples in exactly the key format, so the
// encoding does double duty as the serialization format.  It never
// panics; corrupt input returns an error.
func DecodeKey(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("value: decode: empty input")
	}
	kind := Kind(b[0])
	b = b[1:]
	switch kind {
	case KindString:
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return Value{}, nil, fmt.Errorf("value: decode: bad string length")
		}
		b = b[sz:]
		if uint64(len(b)) < n {
			return Value{}, nil, fmt.Errorf("value: decode: string payload cut short (want %d bytes, have %d)", n, len(b))
		}
		return String(string(b[:n])), b[n:], nil
	case KindNull, KindInt:
		i, sz := binary.Varint(b)
		if sz <= 0 {
			return Value{}, nil, fmt.Errorf("value: decode: bad varint payload")
		}
		return Value{kind: kind, i: i}, b[sz:], nil
	default:
		return Value{}, nil, fmt.Errorf("value: decode: unknown kind byte %d", kind)
	}
}

// String renders the value: integers as decimal literals, strings verbatim
// (quoted only if they could be confused with another literal form), and
// nulls as ⊥id.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥" + strconv.FormatUint(uint64(v.i), 10)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		if needsQuoting(v.s) {
			return strconv.Quote(v.s)
		}
		return v.s
	default:
		return fmt.Sprintf("value.Value(kind=%d)", v.kind)
	}
}

// needsQuoting reports whether a string constant must be quoted to survive a
// round trip through Parse.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return true
	}
	if strings.HasPrefix(s, "⊥") || strings.HasPrefix(s, "_:") || strings.HasPrefix(s, "\"") {
		return true
	}
	for _, r := range s {
		switch r {
		case ',', '(', ')', ' ', '\t', '\n':
			return true
		}
	}
	return false
}

// Parse converts a textual form back into a Value. Accepted forms:
//
//	⊥7 or _:7        marked null with id 7
//	NULL, null       a fresh null (SQL-style unlabelled null)
//	-42, 17          integer constant
//	"quoted text"    string constant (Go quoting rules)
//	anything else    string constant, verbatim
func Parse(s string) (Value, error) {
	switch {
	case s == "":
		return Value{}, fmt.Errorf("value: cannot parse empty string")
	case strings.HasPrefix(s, "⊥"):
		id, err := strconv.ParseUint(strings.TrimPrefix(s, "⊥"), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad null literal %q: %w", s, err)
		}
		return Null(id), nil
	case strings.HasPrefix(s, "_:"):
		id, err := strconv.ParseUint(strings.TrimPrefix(s, "_:"), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad null literal %q: %w", s, err)
		}
		return Null(id), nil
	case s == "NULL" || s == "null":
		return FreshNull(), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if strings.HasPrefix(s, "\"") {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad quoted string %q: %w", s, err)
		}
		return String(unq), nil
	}
	return String(s), nil
}

// MustParse is Parse that panics on error; it is intended for literals in
// tests and examples.
func MustParse(s string) Value {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Compare defines a total order on values used to canonicalise relations:
// nulls (by id) < integers (numerically) < strings (lexicographically).
// It returns -1, 0 or +1.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull, KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(a.s, b.s)
	default:
		return 0
	}
}

// Less reports whether a precedes b in the canonical order.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Equal reports whether two values are identical.  For constants this is
// value equality; for nulls it is identity of the mark (⊥i = ⊥i but
// ⊥i ≠ ⊥j for i ≠ j), matching the semantics of naïve tables.
func Equal(a, b Value) bool { return a == b }

// MaxNullID returns the largest null id among the given values, or 0 if
// none of them is a null.
func MaxNullID(vs ...Value) uint64 {
	var max uint64
	for _, v := range vs {
		if v.IsNull() && v.NullID() > max {
			max = v.NullID()
		}
	}
	return max
}
