// Code space: a dense uint64 encoding of values used by the coded
// (monomorphic) execution tier.  Certain-answer semantics never depends
// on the *type* of a constant — only on constant-vs-null identity and
// equality — so kernels may trade the 32-byte Value struct for one
// machine word as long as code equality coincides with Value equality.
//
// Layout (two tag bits at the top):
//
//	00 / 01  in-range integer i ∈ [-2^62, 2^62), biased: code = i + 2^62.
//	         The top bit is 0 exactly for these codes, and the bias is
//	         order-preserving, so two integer codes compare like the
//	         integers themselves.
//	10       dictionary entry: the low 62 bits index a per-database
//	         dictionary (strings, and the astronomically rare integers
//	         outside the direct range).
//	11       marked null ⊥id with id < 2^62: code = nullTag | id.
//
// The dictionary (internal/table.Dict) interns each distinct value at
// most once, so within one database lineage code equality ⟺ Value
// equality across every relation sharing the dictionary.  Nulls are
// never interned — CodeIsNull is a pure tag test.
package value

// Code-space tags and limits.  codePayloadBits is the width of the
// payload under the two tag bits.
const (
	codePayloadBits = 62
	// CodePayloadLimit bounds dictionary indexes and directly
	// encodable null ids: payloads are < 2^62.
	CodePayloadLimit = uint64(1) << codePayloadBits
	codePayloadMask  = CodePayloadLimit - 1
	codeIntBias      = int64(1) << codePayloadBits // maps [-2^62, 2^62) onto [0, 2^63)
	codeDictTag      = uint64(2) << codePayloadBits
	codeNullTag      = uint64(3) << codePayloadBits
)

// EncodeDirect encodes the values that need no dictionary: integers in
// [-2^62, 2^62) and nulls with id < 2^62.  It reports false for strings,
// out-of-range integers (both of which the dictionary handles) and for
// null ids at or above 2^62 (which make the whole relation uncodable —
// nulls must never enter the dictionary or CodeIsNull would lie).
func EncodeDirect(v Value) (uint64, bool) {
	switch v.kind {
	case KindInt:
		if v.i >= -codeIntBias && v.i < codeIntBias {
			return uint64(v.i + codeIntBias), true
		}
	case KindNull:
		if uint64(v.i) < CodePayloadLimit {
			return codeNullTag | uint64(v.i), true
		}
	}
	return 0, false
}

// DecodeDirect inverts EncodeDirect for integer and null codes; it
// reports false for dictionary codes, whose payload only the dictionary
// can resolve.
func DecodeDirect(code uint64) (Value, bool) {
	switch {
	case code < codeDictTag: // top bit 0: biased integer
		return Int(int64(code) - codeIntBias), true
	case code >= codeNullTag:
		return Null(code & codePayloadMask), true
	default:
		return Value{}, false
	}
}

// CodeIsNull reports whether code encodes a null.  It is exact: nulls
// are never interned in a dictionary, so the tag test suffices.
func CodeIsNull(code uint64) bool { return code >= codeNullTag }

// CodeIsInt reports whether code is a directly encoded integer, in
// which case two such codes compare like the integers they encode.
func CodeIsInt(code uint64) bool { return code < codeDictTag }

// DictCode tags a dictionary index as a code.  The index must be below
// CodePayloadLimit.
func DictCode(index uint64) uint64 { return codeDictTag | index }

// DictIndex extracts the dictionary index from a dictionary code.
func DictIndex(code uint64) uint64 { return code & codePayloadMask }

// HashCode folds one code into a running 64-bit hash h (seed
// CodeHashSeed): a splitmix-style mix of the code, then an FNV step.
// The coded join build and probe sides and the coded dedup sets must
// all use exactly this function so their hashes agree.
func HashCode(h, code uint64) uint64 {
	code *= 0x9E3779B97F4A7C15
	code ^= code >> 29
	code *= 0xBF58476D1CE4E5B9
	code ^= code >> 32
	h ^= code
	h *= 1099511628211
	return h
}

// CodeHashSeed is the initial hash value for HashCode chains (the
// FNV-1a offset basis, matching the binary-key hash of the partitioner).
const CodeHashSeed = uint64(14695981039346656037)
