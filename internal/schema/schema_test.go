package schema

import "testing"

func TestRelationBasics(t *testing.T) {
	r := NewRelation("Order", "o_id", "product")
	if r.Arity() != 2 {
		t.Fatalf("arity = %d", r.Arity())
	}
	if r.AttrIndex("product") != 1 || r.AttrIndex("o_id") != 0 {
		t.Error("AttrIndex wrong")
	}
	if r.AttrIndex("missing") != -1 {
		t.Error("AttrIndex for missing attr should be -1")
	}
	if !r.HasAttr("o_id") || r.HasAttr("x") {
		t.Error("HasAttr wrong")
	}
	if r.String() != "Order(o_id,product)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestWithArity(t *testing.T) {
	r := WithArity("R", 3)
	if r.Arity() != 3 {
		t.Fatalf("arity = %d", r.Arity())
	}
	if r.Attrs[0] != "#1" || r.Attrs[2] != "#3" {
		t.Errorf("auto attrs = %v", r.Attrs)
	}
}

func TestRelationRenameAndEqual(t *testing.T) {
	r := NewRelation("R", "a", "b")
	s := r.Rename("S")
	if s.Name != "S" || s.Arity() != 2 {
		t.Error("Rename wrong")
	}
	if !r.Equal(NewRelation("R", "a", "b")) {
		t.Error("Equal should hold")
	}
	if r.Equal(s) {
		t.Error("different names should not be equal")
	}
	if r.Equal(NewRelation("R", "a")) {
		t.Error("different arities should not be equal")
	}
	if r.Equal(NewRelation("R", "a", "c")) {
		t.Error("different attrs should not be equal")
	}
	// Rename must not alias the attribute slice.
	s.Attrs[0] = "zzz"
	if r.Attrs[0] != "a" {
		t.Error("Rename aliases attribute slice")
	}
}

func TestSchemaAddLookup(t *testing.T) {
	s := MustNew(NewRelation("R", "a", "b"), NewRelation("S", "c"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has("R") || !s.Has("S") || s.Has("T") {
		t.Error("Has wrong")
	}
	r, ok := s.Relation("R")
	if !ok || r.Arity() != 2 {
		t.Error("Relation lookup wrong")
	}
	if _, ok := s.Relation("nope"); ok {
		t.Error("lookup of missing relation should fail")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("Names = %v", names)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := New(NewRelation("R", "a"), NewRelation("R", "b")); err == nil {
		t.Error("duplicate relation names should be rejected")
	}
	if _, err := New(NewRelation("", "a")); err == nil {
		t.Error("empty relation name should be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on error")
		}
	}()
	MustNew(NewRelation("R"), NewRelation("R"))
}

func TestMustRelationPanics(t *testing.T) {
	s := MustNew(NewRelation("R", "a"))
	if got := s.MustRelation("R"); got.Name != "R" {
		t.Error("MustRelation wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRelation should panic for unknown relation")
		}
	}()
	s.MustRelation("missing")
}

func TestSchemaCloneEqualString(t *testing.T) {
	s := MustNew(NewRelation("S", "c"), NewRelation("R", "a", "b"))
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone should be equal")
	}
	if err := c.Add(NewRelation("T", "x")); err != nil {
		t.Fatal(err)
	}
	if s.Equal(c) {
		t.Error("after adding to clone, schemas should differ")
	}
	if s.String() != "R(a,b); S(c)" {
		t.Errorf("String = %q", s.String())
	}
	other := MustNew(NewRelation("R", "a", "zz"), NewRelation("S", "c"))
	if s.Equal(other) {
		t.Error("schemas with different attribute names should differ")
	}
}

func TestNilSchema(t *testing.T) {
	var s *Schema
	if s.Len() != 0 || s.Names() != nil || s.Relations() != nil || s.Clone() != nil {
		t.Error("nil schema accessors should be zero values")
	}
	if _, ok := s.Relation("R"); ok {
		t.Error("nil schema should have no relations")
	}
}

func TestEmptySchemaAdd(t *testing.T) {
	var s Schema
	if err := s.Add(NewRelation("R", "a")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("R") {
		t.Error("Add on zero-value Schema should work")
	}
}
