// Package schema describes relational schemas: named relations with a fixed
// arity and named attributes.  Schemas are shared by complete and incomplete
// databases alike (Section 2 of the paper): incompleteness lives in the data,
// not in the schema.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is the schema of a single relation: a name and an ordered list of
// attribute names.  The arity of the relation is the number of attributes.
type Relation struct {
	Name  string
	Attrs []string
}

// NewRelation builds a relation schema.  If no attribute names are given the
// attributes are auto-named #1..#arity via WithArity.
func NewRelation(name string, attrs ...string) Relation {
	return Relation{Name: name, Attrs: attrs}
}

// WithArity builds a relation schema with auto-named attributes #1..#arity.
func WithArity(name string, arity int) Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("#%d", i+1)
	}
	return Relation{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes.
func (r Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (r Relation) AttrIndex(attr string) int {
	for i, a := range r.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the relation has the named attribute.
func (r Relation) HasAttr(attr string) bool { return r.AttrIndex(attr) >= 0 }

// Rename returns a copy of the schema under a new relation name.
func (r Relation) Rename(name string) Relation {
	return Relation{Name: name, Attrs: append([]string(nil), r.Attrs...)}
}

// String renders the schema as Name(attr1,...,attrk).
func (r Relation) String() string {
	return r.Name + "(" + strings.Join(r.Attrs, ",") + ")"
}

// Equal reports whether two relation schemas have the same name, arity and
// attribute names in the same order.
func (r Relation) Equal(o Relation) bool {
	if r.Name != o.Name || len(r.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}

// Schema is a collection of relation schemas with unique names.
type Schema struct {
	rels   []Relation
	byName map[string]int
}

// New builds a schema from relation schemas.  Duplicate relation names are
// rejected with an error.
func New(rels ...Relation) (*Schema, error) {
	s := &Schema{byName: make(map[string]int, len(rels))}
	for _, r := range rels {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(rels ...Relation) *Schema {
	s, err := New(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add inserts a relation schema; it fails if the name is already used or
// empty.
func (s *Schema) Add(r Relation) error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if s.byName == nil {
		s.byName = make(map[string]int)
	}
	if _, dup := s.byName[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	s.byName[r.Name] = len(s.rels)
	s.rels = append(s.rels, r)
	return nil
}

// Relation looks up a relation schema by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	if s == nil || s.byName == nil {
		return Relation{}, false
	}
	i, ok := s.byName[name]
	if !ok {
		return Relation{}, false
	}
	return s.rels[i], true
}

// MustRelation looks up a relation schema and panics if it is absent.
func (s *Schema) MustRelation(name string) Relation {
	r, ok := s.Relation(name)
	if !ok {
		panic(fmt.Sprintf("schema: unknown relation %q", name))
	}
	return r
}

// Has reports whether the schema contains the named relation.
func (s *Schema) Has(name string) bool {
	_, ok := s.Relation(name)
	return ok
}

// Names returns the relation names in sorted order.
func (s *Schema) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.rels))
	for _, r := range s.rels {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}

// Relations returns the relation schemas sorted by name.
func (s *Schema) Relations() []Relation {
	if s == nil {
		return nil
	}
	out := append([]Relation(nil), s.rels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of relations in the schema.
func (s *Schema) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rels)
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	if s == nil {
		return nil
	}
	out := &Schema{byName: make(map[string]int, len(s.rels))}
	for _, r := range s.rels {
		out.byName[r.Name] = len(out.rels)
		out.rels = append(out.rels, r.Rename(r.Name))
	}
	return out
}

// Equal reports whether two schemas contain the same relation schemas
// (order-insensitive).
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for _, r := range s.Relations() {
		or, ok := o.Relation(r.Name)
		if !ok || !r.Equal(or) {
			return false
		}
	}
	return true
}

// String renders the schema as a sorted, semicolon-separated list.
func (s *Schema) String() string {
	rels := s.Relations()
	parts := make([]string, len(rels))
	for i, r := range rels {
		parts[i] = r.String()
	}
	return strings.Join(parts, "; ")
}
