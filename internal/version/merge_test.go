package version_test

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// mergeFixture builds a history whose root holds the given R-tuples and a
// working clone per branch.
func mergeFixture(t *testing.T, rows ...[]string) (*version.History, *table.Database, *table.Database) {
	t.Helper()
	s := schema.MustNew(schema.NewRelation("R", "a", "b"))
	db := table.NewDatabase(s)
	for _, r := range rows {
		db.MustAddRow("R", r...)
	}
	h, root := version.New(db, "main", "root", version.Options{})
	if err := h.Branch("side", root); err != nil {
		t.Fatal(err)
	}
	return h, db, db.Clone()
}

// refine replaces old by new in the working database under delta capture
// and commits it to the branch.
func refine(t *testing.T, h *version.History, branch string, db *table.Database, msg, oldA, oldB, newA, newB string) version.CommitID {
	t.Helper()
	return commitSteps(t, h, branch, db, msg, []step{
		{rel: "R", add: false, t: table.MustParseTuple(oldA, oldB)},
		{rel: "R", add: true, t: table.MustParseTuple(newA, newB)},
	})
}

func mustMerge(t *testing.T, h *version.History, branch, other string) *version.MergeResult {
	t.Helper()
	res, err := h.Merge(branch, other, "merge "+other)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMergeComparableRefinements: both branches refine the same base
// tuple and the refinements are comparable — the merge silently keeps
// their GLB (the less informative side) and reports no conflict.
func TestMergeComparableRefinements(t *testing.T) {
	h, main, side := mergeFixture(t, []string{"o1", "⊥1"}, []string{"k", "5"})
	refine(t, h, "main", main, "m", "o1", "⊥1", "o1", "100")
	refine(t, h, "side", side, "s", "o1", "⊥1", "o1", "⊥7")
	res := mustMerge(t, h, "main", "side")
	if len(res.Conflicts) != 0 {
		t.Fatalf("comparable refinements must not conflict: %v", res.Conflicts)
	}
	rel := res.State.Relation("R")
	if rel.Contains(table.MustParseTuple("o1", "100")) {
		t.Fatal("merge must not keep certainty only one branch asserts")
	}
	// The GLB of (o1,100) and (o1,⊥7) is (o1,⊥7) up to null identity.
	if rel.Len() != 2 {
		t.Fatalf("merged relation: %s", rel)
	}
}

// TestMergeIncomparableRefinements: the branches assert conflicting
// constants for the same base null — the merge resolves to the GLB (a
// fresh null) and reports the conflict.
func TestMergeIncomparableRefinements(t *testing.T) {
	h, main, side := mergeFixture(t, []string{"o1", "⊥1"}, []string{"k", "5"})
	refine(t, h, "main", main, "m", "o1", "⊥1", "o1", "100")
	refine(t, h, "side", side, "s", "o1", "⊥1", "o1", "200")
	res := mustMerge(t, h, "main", "side")
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != version.ConflictRefineRefine {
		t.Fatalf("conflicts = %v, want one refine/refine", res.Conflicts)
	}
	rel := res.State.Relation("R")
	if rel.Contains(table.MustParseTuple("o1", "100")) || rel.Contains(table.MustParseTuple("o1", "200")) {
		t.Fatalf("conflicting constants must not survive: %s", rel)
	}
	// The resolution is (o1, ⊥fresh): one tuple with a null alongside (k,5).
	if rel.Len() != 2 || rel.IsComplete() {
		t.Fatalf("merged relation: %s", rel)
	}
	c := res.Conflicts[0]
	if c.Resolution == nil || !rel.Contains(c.Resolution) {
		t.Fatalf("reported resolution %v must be in the merged state", c.Resolution)
	}
}

// TestMergeRefineDelete: one branch deletes what the other refines — the
// deletion wins and the conflict is reported, in both directions.
func TestMergeRefineDelete(t *testing.T) {
	// Ours refines, theirs deletes.
	h, main, side := mergeFixture(t, []string{"o1", "⊥1"}, []string{"k", "5"})
	refine(t, h, "main", main, "m", "o1", "⊥1", "o1", "100")
	commitSteps(t, h, "side", side, "s", []step{{rel: "R", add: false, t: table.MustParseTuple("o1", "⊥1")}})
	res := mustMerge(t, h, "main", "side")
	if len(res.Conflicts) != 1 || res.Conflicts[0].Kind != version.ConflictRefineDelete {
		t.Fatalf("conflicts = %v, want one refine/delete", res.Conflicts)
	}
	if got := res.State.Relation("R").Len(); got != 1 {
		t.Fatalf("deletion must win: %s", res.State.Relation("R"))
	}

	// Ours deletes, theirs refines.
	h2, main2, side2 := mergeFixture(t, []string{"o1", "⊥1"}, []string{"k", "5"})
	commitSteps(t, h2, "main", main2, "m", []step{{rel: "R", add: false, t: table.MustParseTuple("o1", "⊥1")}})
	refine(t, h2, "side", side2, "s", "o1", "⊥1", "o1", "100")
	res2 := mustMerge(t, h2, "main", "side")
	if len(res2.Conflicts) != 1 || res2.Conflicts[0].Kind != version.ConflictRefineDelete {
		t.Fatalf("conflicts = %v, want one refine/delete", res2.Conflicts)
	}
	if got := res2.State.Relation("R").Len(); got != 1 {
		t.Fatalf("deletion must win: %s", res2.State.Relation("R"))
	}
}

// TestMergeDisjointEdits: edits to different tuples union without
// conflicts, like any set-based three-way merge.
func TestMergeDisjointEdits(t *testing.T) {
	h, main, side := mergeFixture(t, []string{"o1", "⊥1"}, []string{"o2", "⊥2"})
	refine(t, h, "main", main, "m", "o1", "⊥1", "o1", "100")
	commitSteps(t, h, "side", side, "s", []step{
		{rel: "R", add: false, t: table.MustParseTuple("o2", "⊥2")},
		{rel: "R", add: true, t: table.MustParseTuple("o2", "7")},
		{rel: "R", add: true, t: table.MustParseTuple("new", "1")},
	})
	res := mustMerge(t, h, "main", "side")
	if len(res.Conflicts) != 0 {
		t.Fatalf("disjoint edits must not conflict: %v", res.Conflicts)
	}
	rel := res.State.Relation("R")
	for _, want := range [][]string{{"o1", "100"}, {"o2", "7"}, {"new", "1"}} {
		if !rel.Contains(table.MustParseTuple(want...)) {
			t.Fatalf("merged relation misses %v: %s", want, rel)
		}
	}
	if rel.Len() != 3 {
		t.Fatalf("merged relation: %s", rel)
	}
}

// TestMergeFastForward covers the non-diverged cases: merging an ancestor
// is a no-op, merging a descendant fast-forwards the ref without a merge
// commit.
func TestMergeFastForward(t *testing.T) {
	h, main, _ := mergeFixture(t, []string{"o1", "⊥1"})
	c1 := commitSteps(t, h, "main", main, "m", []step{{rel: "R", add: true, t: table.MustParseTuple("x", "1")}})

	// side is behind main: merging side into main is a no-op.
	res := mustMerge(t, h, "main", "side")
	if !res.FastForward || res.Commit != c1 {
		t.Fatalf("merging an ancestor: %+v", res)
	}

	// main is ahead of side: merging main into side fast-forwards.
	res2 := mustMerge(t, h, "side", "main")
	if !res2.FastForward || res2.Commit != c1 {
		t.Fatalf("fast-forward: %+v", res2)
	}
	if id, _ := h.Head("side"); id != c1 {
		t.Fatalf("side head = %v, want %v", id, c1)
	}
	if before := h.Stats().Commits; before != 2 {
		t.Fatalf("fast-forwards must not create commits: %d", before)
	}
}

// completeTuples returns the set of null-free tuples of a relation keyed
// canonically — the certain answers of the identity query under naïve
// evaluation.
func completeTuples(r *table.Relation) map[string]bool {
	out := map[string]bool{}
	r.Each(func(t table.Tuple) bool {
		if t.IsComplete() {
			out[t.Key()] = true
		}
		return true
	})
	return out
}

// TestMergeCertaintyPreservationFuzz is the acceptance fuzz: randomized
// branch pairs that only refine nulls (plus disjoint inserts) must merge
// such that the certain answers of the merge contain the intersection of
// both branches' certain answers — here instantiated with the identity
// query per relation (certain answer: the null-free tuples) and a
// projection witness check.
func TestMergeCertaintyPreservationFuzz(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := schema.MustNew(schema.NewRelation("R", "a", "b"), schema.NewRelation("S", "x"))
		db := table.NewDatabase(s)
		var nullTuples []table.Tuple
		for i := 0; i < 12; i++ {
			var b value.Value = value.Int(int64(rng.Intn(8)))
			if rng.Intn(2) == 0 {
				b = value.Null(uint64(i + 1))
			}
			tp := table.NewTuple(value.String(fmt.Sprintf("o%d", i)), b)
			db.MustAdd("R", tp)
			if !tp.IsComplete() {
				nullTuples = append(nullTuples, tp)
			}
		}
		db.MustAddRow("S", "9")
		h, root := version.New(db, "main", "root", version.Options{CheckpointEvery: 1 + rng.Intn(4)})
		if err := h.Branch("side", root); err != nil {
			t.Fatal(err)
		}
		side := db.Clone()

		// Each branch refines a random subset of the null tuples (to a
		// constant or a renamed null) and inserts a few fresh tuples.
		branchEdit := func(branch string, work *table.Database, seed int64) {
			r := rand.New(rand.NewSource(seed))
			var steps []step
			for _, tp := range nullTuples {
				switch r.Intn(3) {
				case 0: // refine the null to a constant
					steps = append(steps, step{rel: "R", add: false, t: tp})
					steps = append(steps, step{rel: "R", add: true, t: table.NewTuple(tp[0], value.Int(int64(r.Intn(8))))})
				case 1: // rename the null
					steps = append(steps, step{rel: "R", add: false, t: tp})
					steps = append(steps, step{rel: "R", add: true, t: table.NewTuple(tp[0], value.Null(uint64(100+r.Intn(50))))})
				}
			}
			for i := 0; i < r.Intn(3); i++ {
				steps = append(steps, step{rel: "R", add: true, t: table.NewTuple(value.String(fmt.Sprintf("%s-new%d", branch, i)), value.Int(int64(r.Intn(8))))})
			}
			commitSteps(t, h, branch, work, branch, steps)
		}
		branchEdit("main", db, int64(1000+trial))
		branchEdit("side", side, int64(2000+trial))

		stateA, err := h.AsOf(must(h.Head("main")))
		if err != nil {
			t.Fatal(err)
		}
		stateB, err := h.AsOf(must(h.Head("side")))
		if err != nil {
			t.Fatal(err)
		}
		res := mustMerge(t, h, "main", "side")

		for _, rel := range []string{"R", "S"} {
			certA := completeTuples(stateA.Relation(rel))
			certB := completeTuples(stateB.Relation(rel))
			certM := completeTuples(res.State.Relation(rel))
			for k := range certA {
				if certB[k] && !certM[k] {
					t.Fatalf("trial %d: certain tuple of both branches lost in merge (%s):\nA: %s\nB: %s\nM: %s\nconflicts: %v",
						trial, rel, stateA.Relation(rel), stateB.Relation(rel), res.State.Relation(rel), res.Conflicts)
				}
			}
		}

		// Projection witness: every first-column value certain in both
		// branches must keep a witness in the merge.
		firstCol := func(d *table.Database) map[value.Value]bool {
			out := map[value.Value]bool{}
			d.Relation("R").Each(func(tp table.Tuple) bool {
				if tp[0].IsConst() {
					out[tp[0]] = true
				}
				return true
			})
			return out
		}
		pA, pB, pM := firstCol(stateA), firstCol(stateB), firstCol(res.State)
		for v := range pA {
			if pB[v] && !pM[v] {
				t.Fatalf("trial %d: projected certain value %v of both branches lost in merge", trial, v)
			}
		}

		// The merge head state must be reachable as a normal commit too.
		head := must(h.Head("main"))
		if head != res.Commit {
			t.Fatalf("branch head %v, want merge commit %v", head, res.Commit)
		}
		viaAsOf, err := h.AsOf(head)
		if err != nil {
			t.Fatal(err)
		}
		if !viaAsOf.Equal(res.State) {
			t.Fatalf("trial %d: AsOf(merge) differs from the returned merge state", trial)
		}
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
