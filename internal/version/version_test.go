// Package version_test exercises the commit DAG through package table
// directly (controlled histories) and through the engine facade (the
// integration the library ships); the engine-level differential pins live
// in internal/engine's history tests.
package version_test

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// histSchema is the two-relation schema the randomized streams mutate.
func histSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "x"),
	)
}

// step is one randomized mutation, concrete so the identical sequence can
// be replayed onto a fresh database.
type step struct {
	rel string
	add bool
	t   table.Tuple
}

func (s step) apply(d *table.Database) {
	if s.add {
		d.MustAdd(s.rel, s.t)
	} else {
		d.Relation(s.rel).Remove(s.t)
	}
}

// randomStream pre-generates n mutations: inserts (some with nulls) and
// deletions of previously-present tuples.
func randomStream(rng *rand.Rand, n int) []step {
	var rTuples, sTuples []table.Tuple
	nextNull := uint64(1000)
	out := make([]step, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 4:
			var b value.Value = value.Int(int64(rng.Intn(20)))
			if rng.Intn(3) == 0 {
				b = value.Null(nextNull)
				nextNull++
			}
			t := table.NewTuple(value.String(fmt.Sprintf("r%d", rng.Intn(30))), b)
			rTuples = append(rTuples, t)
			out = append(out, step{rel: "R", add: true, t: t})
		case r < 6:
			t := table.NewTuple(value.Int(int64(rng.Intn(50))))
			sTuples = append(sTuples, t)
			out = append(out, step{rel: "S", add: true, t: t})
		case r < 8 && len(rTuples) > 0:
			j := rng.Intn(len(rTuples))
			out = append(out, step{rel: "R", add: false, t: rTuples[j]})
			rTuples = append(rTuples[:j], rTuples[j+1:]...)
		case len(sTuples) > 0:
			j := rng.Intn(len(sTuples))
			out = append(out, step{rel: "S", add: false, t: sTuples[j]})
			sTuples = append(sTuples[:j], sTuples[j+1:]...)
		}
	}
	return out
}

// commitSteps applies a batch of steps to the working database under delta
// capture and commits the captured change set.
func commitSteps(t *testing.T, h *version.History, branch string, db *table.Database, msg string, steps []step) version.CommitID {
	t.Helper()
	tr := db.Track()
	for _, s := range steps {
		s.apply(db)
	}
	cs := tr.Stop()
	id, err := h.Commit(branch, msg, cs, db)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestAsOfMatchesReplay is the reconstruction property test: for
// randomized update streams and every checkpointing policy, the state
// AsOf(c) returns for every commit c is bit-identical to replaying the
// update sequence up to c onto a fresh database.
func TestAsOfMatchesReplay(t *testing.T) {
	for _, checkpointEvery := range []int{-1, 1, 3, 16} {
		t.Run(fmt.Sprintf("checkpointEvery=%d", checkpointEvery), func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				rng := rand.New(rand.NewSource(int64(100*checkpointEvery + trial)))
				db := table.NewDatabase(histSchema())
				// A non-empty root state.
				db.MustAddRow("R", "seed", "1")
				h, root := version.New(db, "main", "root", version.Options{CheckpointEvery: checkpointEvery})

				stream := randomStream(rng, 120)
				// Commit in random batch sizes; remember the stream prefix
				// behind every commit.
				prefixAt := map[version.CommitID]int{root: 0}
				var ids []version.CommitID
				i := 0
				for i < len(stream) {
					n := 1 + rng.Intn(7)
					if i+n > len(stream) {
						n = len(stream) - i
					}
					id := commitSteps(t, h, "main", db, fmt.Sprintf("c%d", i), stream[i:i+n])
					i += n
					prefixAt[id] = i
					ids = append(ids, id)
				}

				// Every commit, visited twice (the second visit exercises
				// the reconstruction memo), must equal the from-scratch
				// replay of its prefix.
				for pass := 0; pass < 2; pass++ {
					for _, id := range append([]version.CommitID{root}, ids...) {
						got, err := h.AsOf(id)
						if err != nil {
							t.Fatal(err)
						}
						want := table.NewDatabase(histSchema())
						want.MustAddRow("R", "seed", "1")
						for _, s := range stream[:prefixAt[id]] {
							s.apply(want)
						}
						if !got.Equal(want) {
							t.Fatalf("checkpointEvery=%d trial=%d: AsOf(%s) differs from replay of %d steps:\n%s\nwant:\n%s",
								checkpointEvery, trial, id, prefixAt[id], got, want)
						}
					}
				}

				// Diff pin: the composed delta from any commit to any other,
				// applied to the source state, lands on the target state.
				for trial2 := 0; trial2 < 10; trial2++ {
					all := append([]version.CommitID{root}, ids...)
					a := all[rng.Intn(len(all))]
					b := all[rng.Intn(len(all))]
					cs, err := h.Diff(a, b)
					if err != nil {
						t.Fatal(err)
					}
					src, _ := h.AsOf(a)
					dst, _ := h.AsOf(b)
					moved := src.Clone()
					if err := moved.Apply(cs); err != nil {
						t.Fatal(err)
					}
					if !moved.Equal(dst) {
						t.Fatalf("Diff(%s,%s) applied to source does not reach target:\n%s\nwant:\n%s", a, b, moved, dst)
					}
				}
			}
		})
	}
}

// TestCheckpointPolicy pins that checkpointing actually follows the
// configured interval (beyond the always-present root checkpoint).
func TestCheckpointPolicy(t *testing.T) {
	db := table.NewDatabase(histSchema())
	h, _ := version.New(db, "main", "root", version.Options{CheckpointEvery: 4})
	for i := 0; i < 10; i++ {
		commitSteps(t, h, "main", db, fmt.Sprintf("c%d", i), []step{{rel: "S", add: true, t: table.NewTuple(value.Int(int64(i)))}})
	}
	st := h.Stats()
	if st.Commits != 11 {
		t.Fatalf("commits = %d, want 11", st.Commits)
	}
	// Root (depth 0) plus depths 4 and 8.
	if st.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", st.Checkpoints)
	}

	// With checkpointing disabled only the root is materialized.
	db2 := table.NewDatabase(histSchema())
	h2, _ := version.New(db2, "main", "root", version.Options{CheckpointEvery: -1})
	for i := 0; i < 10; i++ {
		commitSteps(t, h2, "main", db2, fmt.Sprintf("c%d", i), []step{{rel: "S", add: true, t: table.NewTuple(value.Int(int64(i)))}})
	}
	if got := h2.Stats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints = %d, want 1 (root only)", got)
	}
}

// TestAsOfShared pins the memoization contract: repeated AsOf calls for
// one commit return the identical database instance, so relation stamps
// (and with them plan-cache entries) stay valid across historical reads.
func TestAsOfShared(t *testing.T) {
	db := table.NewDatabase(histSchema())
	h, _ := version.New(db, "main", "root", version.Options{})
	var last version.CommitID
	for i := 0; i < 3; i++ {
		last = commitSteps(t, h, "main", db, fmt.Sprintf("c%d", i), []step{{rel: "S", add: true, t: table.NewTuple(value.Int(int64(i)))}})
	}
	a, err := h.AsOf(last)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AsOf(last)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("AsOf must return the identical reconstructed instance on repeat calls")
	}
	if a.Relation("S").Stamp() != b.Relation("S").Stamp() {
		t.Fatal("stamps must match across repeated AsOf")
	}
}

// TestLogResolveBranch covers the log order, reference resolution and
// branch creation errors.
func TestLogResolveBranch(t *testing.T) {
	db := table.NewDatabase(histSchema())
	h, root := version.New(db, "main", "root", version.Options{})
	c1 := commitSteps(t, h, "main", db, "first", []step{{rel: "S", add: true, t: table.NewTuple(value.Int(1))}})
	c2 := commitSteps(t, h, "main", db, "second", []step{{rel: "S", add: true, t: table.NewTuple(value.Int(2))}})

	log, err := h.Log(c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 || log[0].ID != c2 || log[1].ID != c1 || log[2].ID != root {
		t.Fatalf("log order wrong: %v", log)
	}

	for ref, want := range map[string]version.CommitID{
		string(c1):     c1,
		string(c1)[:6]: c1,
		"second":       c2,
		"main":         c2,
		"root":         root,
	} {
		got, err := h.Resolve(ref)
		if err != nil || got != want {
			t.Errorf("Resolve(%q) = %v, %v; want %v", ref, got, err, want)
		}
	}
	if _, err := h.Resolve("nope"); err == nil {
		t.Error("Resolve of unknown ref must fail")
	}

	if err := h.Branch("dev", c1); err != nil {
		t.Fatal(err)
	}
	if err := h.Branch("dev", c1); err == nil {
		t.Error("duplicate branch must fail")
	}
	if err := h.Branch("x", "nope"); err == nil {
		t.Error("branch at unknown commit must fail")
	}
	if id, err := h.Head("dev"); err != nil || id != c1 {
		t.Errorf("Head(dev) = %v, %v; want %v", id, err, c1)
	}
	if _, err := h.Commit("ghost", "m", table.NewChangeSet(), db); err == nil {
		t.Error("commit on unknown branch must fail")
	}
}
