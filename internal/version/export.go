package version

// Export/Restore: the bridge between the in-memory commit DAG and the
// durable store (internal/store).  Export walks the history into plain
// data — commits in append order, branch refs, checkpoint ids — that the
// store writes as log records; Restore rebuilds an equivalent History from
// records read back, re-deriving every depth and re-verifying every
// non-root commit id, so a corrupted or hand-edited log cannot smuggle in
// a commit whose content does not hash to its claimed id.
//
// Restore deliberately does NOT verify the root id against the root
// checkpoint state: doing so would canonicalize the full base database,
// forcing every lazily loading relation to materialize at Open time and
// defeating chunk-on-demand paging.  The chunk store already verifies the
// state bytes by content hash, which is the same guarantee.

import (
	"fmt"

	"incdata/internal/table"
)

// Depth returns the commit's first-parent depth from the root (the root
// is depth 0).  Checkpoint placement is keyed on it, both in memory and
// in the durable commit log.
func (c *Commit) Depth() int { return c.depth }

// ExportedCommit is one commit in portable form: exactly the fields that
// contribute to the content-addressed id, in history append order.
type ExportedCommit struct {
	ID      CommitID
	Parents []CommitID
	Message string
	Delta   *table.ChangeSet
}

// Exported is a plain-data image of a History, sufficient to rebuild it
// given the checkpoint states (which travel separately, as chunked
// manifests in the durable store).
type Exported struct {
	Opts        Options
	Commits     []ExportedCommit // append order; Commits[0] is the root
	Branches    map[string]CommitID
	Checkpoints []CommitID // commits with a materialized state, root included
}

// Export returns a plain-data image of the history.  The delta pointers
// are shared, not copied — commits are immutable once created.
func (h *History) Export() Exported {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := Exported{
		Opts:     h.opts,
		Commits:  make([]ExportedCommit, 0, len(h.log)),
		Branches: make(map[string]CommitID, len(h.branches)),
	}
	for _, id := range h.log {
		c := h.commits[id]
		out.Commits = append(out.Commits, ExportedCommit{
			ID:      c.ID,
			Parents: append([]CommitID(nil), c.Parents...),
			Message: c.Message,
			Delta:   c.Delta,
		})
	}
	for n, id := range h.branches {
		out.Branches[n] = id
	}
	for _, id := range h.log {
		if _, ok := h.checkpoints[id]; ok {
			out.Checkpoints = append(out.Checkpoints, id)
		}
	}
	return out
}

// Restore rebuilds a History from exported commits (append order, root
// first), branch refs, and the materialized states of the checkpointed
// commits.  Every non-root commit id is re-verified against its content
// and every depth re-derived; the root must have a state (it is the
// terminal checkpoint every AsOf replay walks back to).  Duplicate commit
// ids in the input collapse to the first occurrence, mirroring the
// content-addressed dedup of Commit.
func Restore(commits []ExportedCommit, branches map[string]CommitID, checkpoints map[CommitID]*table.Database, opts Options) (*History, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if opts.ReconCache == 0 {
		opts.ReconCache = DefaultReconCache
	}
	if len(commits) == 0 {
		return nil, fmt.Errorf("version: restore: no commits")
	}
	if len(commits[0].Parents) != 0 {
		return nil, fmt.Errorf("version: restore: first commit %s is not a root", commits[0].ID)
	}
	h := &History{
		opts:        opts,
		commits:     make(map[CommitID]*Commit, len(commits)),
		log:         make([]CommitID, 0, len(commits)),
		branches:    make(map[string]CommitID, len(branches)),
		checkpoints: make(map[CommitID]*table.Database, len(checkpoints)),
	}
	for i, ec := range commits {
		if _, dup := h.commits[ec.ID]; dup {
			continue
		}
		cs := ec.Delta
		if cs == nil {
			cs = table.NewChangeSet()
		}
		c := &Commit{ID: ec.ID, Parents: append([]CommitID(nil), ec.Parents...), Message: ec.Message, Delta: cs}
		if i == 0 {
			c.Parents = nil
		} else {
			if len(c.Parents) == 0 {
				return nil, fmt.Errorf("version: restore: commit %s: only the first commit may be a root", ec.ID)
			}
			for _, p := range c.Parents {
				if _, ok := h.commits[p]; !ok {
					return nil, fmt.Errorf("version: restore: commit %s: unknown parent %q", ec.ID, p)
				}
			}
			if want := commitID(c.Parents, c.Message, cs, nil); want != ec.ID {
				return nil, fmt.Errorf("version: restore: commit %s: content hashes to %s", ec.ID, want)
			}
			c.depth = h.commits[c.Parents[0]].depth + 1
		}
		h.commits[c.ID] = c
		h.log = append(h.log, c.ID)
	}
	for name, id := range branches {
		if _, ok := h.commits[id]; !ok {
			return nil, fmt.Errorf("version: restore: branch %q points at unknown commit %q", name, id)
		}
		h.branches[name] = id
	}
	if len(h.branches) == 0 {
		return nil, fmt.Errorf("version: restore: no branches")
	}
	for id, db := range checkpoints {
		if _, ok := h.commits[id]; !ok {
			return nil, fmt.Errorf("version: restore: checkpoint at unknown commit %q", id)
		}
		if db == nil {
			return nil, fmt.Errorf("version: restore: nil checkpoint state at %q", id)
		}
		h.checkpoints[id] = db
	}
	if _, ok := h.checkpoints[h.log[0]]; !ok {
		return nil, fmt.Errorf("version: restore: root %s has no checkpoint state", h.log[0])
	}
	return h, nil
}
