package version

// Three-way merge with order-theoretic conflict reconciliation.  The merge
// of two branch heads a and b works from their first-parent base: the
// result starts from a's state and replays b's net changes, so disjoint
// edits union exactly as in a set-based merge.  The paper-specific part is
// what happens when both branches refined the same incomplete tuple — a
// deletion of a null-carrying base tuple paired with an insertion of a
// more informative version of it (base ⪯ replacement in the tuple-level
// informativeness order).  Two refinements of one base tuple are
// reconciled by their greatest lower bound: the most informative tuple
// below both sides, i.e. exactly the information both branches agree is
// certain, and never less than the base.  Comparable refinements resolve
// silently (the GLB is just the less informative side); incomparable ones
// — the branches assert conflicting constants or refine different
// positions — still resolve to the GLB, but are reported as explicit
// Conflicts.  A refinement racing a plain deletion resolves to the
// deletion (certainty-preserving under CWA: a tuple one branch no longer
// asserts cannot be certain) and is reported too.

import (
	"fmt"
	"sort"

	"incdata/internal/order"
	"incdata/internal/table"
)

// ConflictKind classifies a reported merge conflict.
type ConflictKind uint8

const (
	// ConflictRefineRefine means both branches refined the same base
	// tuple in incomparable ways; the resolution is the GLB of the two
	// refinements.
	ConflictRefineRefine ConflictKind = iota
	// ConflictRefineDelete means one branch refined a base tuple the
	// other deleted; the resolution is the deletion.
	ConflictRefineDelete
)

// String names the conflict kind.
func (k ConflictKind) String() string {
	switch k {
	case ConflictRefineRefine:
		return "refine/refine"
	case ConflictRefineDelete:
		return "refine/delete"
	default:
		return fmt.Sprintf("ConflictKind(%d)", uint8(k))
	}
}

// Conflict is one reported reconciliation.  Ours is the receiving branch's
// tuple, Theirs the merged-in branch's; either may be nil for a deletion.
// Resolution is the tuple the merge kept, nil when it resolved by
// deletion.
type Conflict struct {
	Relation   string
	Kind       ConflictKind
	Base       table.Tuple
	Ours       table.Tuple
	Theirs     table.Tuple
	Resolution table.Tuple
}

// String renders the conflict for reports.
func (c Conflict) String() string {
	res := "deleted"
	if c.Resolution != nil {
		res = c.Resolution.String()
	}
	return fmt.Sprintf("%s %s: base %v, ours %v, theirs %v -> %s",
		c.Relation, c.Kind, c.Base, c.Ours, c.Theirs, res)
}

// MergeResult reports the outcome of a Merge.
type MergeResult struct {
	// Commit is the merge commit (or the surviving head for fast-forward
	// and already-up-to-date merges).
	Commit CommitID
	// State is the merged database state — immutable and shared, clone
	// before mutating.
	State *table.Database
	// Conflicts lists every non-silent reconciliation, in deterministic
	// order.
	Conflicts []Conflict
	// FastForward reports that no merge commit was needed: the branches
	// had not diverged.
	FastForward bool
}

// refinement pairs a deleted null-carrying base tuple with the single
// inserted tuple refining it within one branch's net diff.
type refinement struct {
	baseKey string
	base    table.Tuple
	to      table.Tuple
	toKey   string
}

// refinements extracts the base→replacement pairs of one branch's net
// delta for a relation: a deleted tuple with nulls and exactly one
// inserted refinement of it, where that insertion refines no other
// deleted tuple (the pairing must be unambiguous in both directions).
// Unpaired deletions and insertions stay plain set edits.
func refinements(d *table.Delta) []refinement {
	if d.Empty() {
		return nil
	}
	delKeys := sortedKeys(d.Deleted)
	insKeys := sortedKeys(d.Inserted)
	candidates := make([]refinement, 0, len(delKeys))
	insUses := map[string]int{}
	for _, dk := range delKeys {
		t0 := d.Deleted[dk]
		if t0.IsComplete() {
			continue
		}
		var match refinement
		matches := 0
		for _, ik := range insKeys {
			t1 := d.Inserted[ik]
			if order.TupleLeq(t0, t1) {
				match = refinement{baseKey: dk, base: t0, to: t1, toKey: ik}
				matches++
			}
		}
		if matches == 1 {
			candidates = append(candidates, match)
			insUses[match.toKey]++
		}
	}
	out := candidates[:0]
	for _, r := range candidates {
		if insUses[r.toKey] == 1 {
			out = append(out, r)
		}
	}
	return out
}

func sortedKeys(m map[string]table.Tuple) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge merges the other branch's head into the named branch: it computes
// both sides' net diffs against their first-parent base, builds the merged
// state (reconciling refinement conflicts via tuple-level GLBs), commits
// it with both heads as parents, and advances the branch ref.  Branches
// that have not diverged fast-forward without a new commit.
func (h *History) Merge(branch, other, message string) (*MergeResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.branches[branch]
	if !ok {
		return nil, fmt.Errorf("version: unknown branch %q", branch)
	}
	b, ok := h.branches[other]
	if !ok {
		return nil, fmt.Errorf("version: unknown branch %q", other)
	}
	base, err := h.firstParentBase(a, b)
	if err != nil {
		return nil, err
	}
	// Not diverged: already up to date, or fast-forward.
	if base == b || a == b {
		state, err := h.asOfLocked(a)
		if err != nil {
			return nil, err
		}
		return &MergeResult{Commit: a, State: state, FastForward: true}, nil
	}
	if base == a {
		state, err := h.asOfLocked(b)
		if err != nil {
			return nil, err
		}
		h.branches[branch] = b
		return &MergeResult{Commit: b, State: state, FastForward: true}, nil
	}

	stateA, err := h.asOfLocked(a)
	if err != nil {
		return nil, err
	}
	stateB, err := h.asOfLocked(b)
	if err != nil {
		return nil, err
	}
	diffA, err := h.diffLocked(base, a)
	if err != nil {
		return nil, err
	}
	diffB, err := h.diffLocked(base, b)
	if err != nil {
		return nil, err
	}

	merged := stateA.Clone()
	tr := merged.Track()
	conflicts := mergeChanges(merged, diffA, diffB, stateA, stateB)
	cs := tr.Stop()
	id, err := h.commitLocked(branch, message, cs, nil, b)
	if err != nil {
		return nil, err
	}
	// Materialize the merge state: memoized (and checkpointed on
	// boundary) so follow-up AsOf/Checkout reads share it.
	mergedSnap := merged.Snapshot()
	if h.opts.CheckpointEvery > 0 && h.commits[id].depth%h.opts.CheckpointEvery == 0 {
		if _, ok := h.checkpoints[id]; !ok {
			h.checkpoints[id] = mergedSnap
		}
	}
	h.memoLocked(id, mergedSnap)
	return &MergeResult{Commit: id, State: mergedSnap, Conflicts: conflicts}, nil
}

// diffLocked is Diff with h.mu already held.
func (h *History) diffLocked(a, b CommitID) (*table.ChangeSet, error) {
	base, err := h.firstParentBase(a, b)
	if err != nil {
		return nil, err
	}
	down, err := h.firstParentPath(base, a)
	if err != nil {
		return nil, err
	}
	up, err := h.firstParentPath(base, b)
	if err != nil {
		return nil, err
	}
	net := table.NewChangeSet()
	for i := len(down) - 1; i >= 0; i-- {
		net.Compose(down[i].Delta.Invert())
	}
	for _, c := range up {
		net.Compose(c.Delta)
	}
	return net, nil
}

// mergeChanges replays B's net changes onto the merged state (which starts
// as a copy of A's state), reconciling refinement conflicts, and returns
// the reported conflicts in deterministic order.
func mergeChanges(merged *table.Database, diffA, diffB *table.ChangeSet, stateA, stateB *table.Database) []Conflict {
	glb := order.NewGLBAlloc(maxNullID(stateA, stateB) + 1)
	var conflicts []Conflict

	rels := map[string]bool{}
	for _, n := range diffA.RelationNames() {
		rels[n] = true
	}
	for _, n := range diffB.RelationNames() {
		rels[n] = true
	}
	names := make([]string, 0, len(rels))
	for n := range rels {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		rel := merged.Relation(name)
		if rel == nil {
			continue
		}
		dA, dB := diffA.Delta(name), diffB.Delta(name)
		refsA, refsB := refinements(dA), refinements(dB)
		refAByBase := map[string]refinement{}
		for _, r := range refsA {
			refAByBase[r.baseKey] = r
		}
		refBByBase := map[string]refinement{}
		for _, r := range refsB {
			refBByBase[r.baseKey] = r
		}
		refBaseB := map[string]bool{}
		refToB := map[string]bool{}
		for _, r := range refsB {
			refBaseB[r.baseKey] = true
			refToB[r.toKey] = true
		}

		// B's refinements, reconciled against A's view of the base tuple.
		for _, rb := range refsB {
			if fa, ok := refAByBase[rb.baseKey]; ok {
				// Both sides refined the same base tuple: replace A's
				// refinement (present in merged) by the GLB of both.
				g := glb.TupleGLB(fa.to, rb.to)
				if !g.Equal(fa.to) {
					rel.Remove(fa.to)
					rel.MustAdd(g)
				}
				if !order.TuplesComparable(fa.to, rb.to) {
					conflicts = append(conflicts, Conflict{
						Relation: name, Kind: ConflictRefineRefine,
						Base: rb.base, Ours: fa.to, Theirs: rb.to, Resolution: g,
					})
				}
				continue
			}
			if dA != nil {
				if _, deletedByA := dA.Deleted[rb.baseKey]; deletedByA {
					// A deleted the tuple B refined: deletion wins; the
					// refinement is dropped (merged already lacks the base).
					conflicts = append(conflicts, Conflict{
						Relation: name, Kind: ConflictRefineDelete,
						Base: rb.base, Theirs: rb.to,
					})
					continue
				}
			}
			// A left the base tuple alone: apply B's refinement.
			rel.Remove(rb.base)
			rel.MustAdd(rb.to)
		}

		if dB != nil {
			// B's plain deletions (not refinement bases).
			for _, k := range sortedKeys(dB.Deleted) {
				if refBaseB[k] {
					continue
				}
				t0 := dB.Deleted[k]
				if fa, refinedByA := refAByBase[k]; refinedByA {
					// B deleted the tuple A refined: deletion wins.
					rel.Remove(fa.to)
					conflicts = append(conflicts, Conflict{
						Relation: name, Kind: ConflictRefineDelete,
						Base: t0, Ours: fa.to,
					})
					continue
				}
				rel.Remove(t0)
			}
			// B's plain insertions (not refinement targets).
			for _, k := range sortedKeys(dB.Inserted) {
				if refToB[k] {
					continue
				}
				rel.MustAdd(dB.Inserted[k])
			}
		}

		// Common tuples survive: a tuple asserted by BOTH final states is
		// shared certain information and must be in the merge, even when
		// the reconciliation above replaced it (e.g. a refinement target
		// colliding with a tuple the other branch kept).
		relA, relB := stateA.Relation(name), stateB.Relation(name)
		relB.EachKeyed(func(k string, t table.Tuple) bool {
			if relA.ContainsKeyString(k) && !rel.ContainsKeyString(k) {
				rel.MustAdd(t)
			}
			return true
		})
	}
	return conflicts
}

// maxNullID returns the largest null id occurring in either database.
func maxNullID(dbs ...*table.Database) uint64 {
	var max uint64
	for _, d := range dbs {
		for n := range d.Nulls() {
			if id := n.NullID(); id > max {
				max = id
			}
		}
	}
	return max
}
