// Package version adds a commit history to incomplete databases: an
// append-only commit DAG over the captured update deltas of package table,
// with named branch refs, checkpointed time travel and an order-theoretic
// three-way merge.
//
// A History starts from a root database state (its first checkpoint) and
// grows by Commit: each commit stores the net table.ChangeSet of one batch
// of updates relative to its first parent, so the full state at any commit
// is its nearest materialized checkpoint plus a replay of the deltas after
// it.  Checkpoints are taken every K commits of first-parent depth
// (Options.CheckpointEvery), bounding reconstruction to O(K·|Δ|) instead of
// O(history); reconstructed states are memoized in a small cache, so
// repeated AsOf calls for one commit return the identical immutable
// database — which is what lets the engine's stamp-keyed plan caches
// validate across historical reads.
//
// Diff composes per-commit deltas (inverted on the ancestor-ward leg)
// through the first-parent base of two commits into one net change set;
// Merge runs a three-way merge against that base, reconciling tuples the
// two branches refined in conflicting null/constant ways via the
// tuple-level informativeness order of package order — the greatest lower
// bound of both sides' refinements, which preserves exactly the certainty
// both branches share — and reporting every non-silent reconciliation as
// an explicit Conflict (see merge.go).
//
// A History is safe for concurrent use: readers (AsOf, Diff, Log) take the
// same internal mutex as writers (Commit, Branch, Merge), and every
// database it hands out is immutable and shared — callers clone before
// mutating.
package version

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"incdata/internal/table"
)

// CommitID identifies a commit: a truncated hex digest of the commit's
// parents, message and delta contents, so identical changes on identical
// parents are content-addressed to the same id.
type CommitID string

// Commit is one node of the DAG.  Delta is the net change relative to
// Parents[0] (empty for the root); merge commits carry the merged-in head
// as a second parent.  Commits and their deltas are immutable once created.
type Commit struct {
	ID      CommitID
	Parents []CommitID
	Message string
	Delta   *table.ChangeSet

	depth int // first-parent depth from the root, for checkpoint placement
}

// Options configures a History.
type Options struct {
	// CheckpointEvery materializes a full database checkpoint every K
	// commits of first-parent depth; 0 means DefaultCheckpointEvery,
	// negative keeps only the root checkpoint (every AsOf replays the
	// whole first-parent chain).
	CheckpointEvery int

	// ReconCache bounds the number of memoized reconstructed states
	// (checkpoints are kept separately and always); 0 means
	// DefaultReconCache, negative disables memoization.
	ReconCache int
}

// DefaultCheckpointEvery is the checkpoint interval when Options leaves it
// zero.
const DefaultCheckpointEvery = 16

// DefaultReconCache is the reconstruction-memo capacity when Options
// leaves it zero.
const DefaultReconCache = 8

// Stats is a point-in-time summary of a history's size.
type Stats struct {
	Commits     int
	Checkpoints int
	Branches    int
}

// History is the commit DAG plus branch refs, checkpoints and the
// reconstruction memo.
type History struct {
	mu          sync.Mutex
	opts        Options
	commits     map[CommitID]*Commit
	log         []CommitID // append order, oldest first
	branches    map[string]CommitID
	checkpoints map[CommitID]*table.Database // immutable snapshots
	recon       map[CommitID]*table.Database // bounded memo of replays
	reconOrder  []CommitID                   // FIFO eviction order for recon
}

// New creates a history whose root commit holds the given database state
// (checkpointed in full) and points the named branch at it.  The base is
// snapshotted, not adopted: the caller may keep mutating it (the usual
// engine write path), and the root checkpoint keeps the state as of now.
func New(base *table.Database, branch, message string, opts Options) (*History, CommitID) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if opts.ReconCache == 0 {
		opts.ReconCache = DefaultReconCache
	}
	snap := base.Snapshot()
	id := commitID(nil, message, nil, snap)
	root := &Commit{ID: id, Message: message, Delta: table.NewChangeSet()}
	return &History{
		opts:        opts,
		commits:     map[CommitID]*Commit{id: root},
		log:         []CommitID{id},
		branches:    map[string]CommitID{branch: id},
		checkpoints: map[CommitID]*table.Database{id: snap},
	}, id
}

// commitID derives the content-addressed id: parents, message and the
// canonical per-relation delta encoding (for the root, the full base state
// instead).
func commitID(parents []CommitID, message string, cs *table.ChangeSet, base *table.Database) CommitID {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeStr := func(s string) {
		n := binary.PutUvarint(buf[:], uint64(len(s)))
		h.Write(buf[:n])
		h.Write([]byte(s))
	}
	for _, p := range parents {
		writeStr(string(p))
	}
	writeStr(message)
	if base != nil {
		writeStr(base.CanonicalKey())
	}
	if cs != nil {
		for _, name := range cs.RelationNames() {
			writeStr(name)
			d := cs.Rels[name]
			for _, side := range []map[string]table.Tuple{d.Deleted, d.Inserted} {
				keys := make([]string, 0, len(side))
				for k := range side {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				writeStr(fmt.Sprintf("%d", len(keys)))
				for _, k := range keys {
					writeStr(k)
				}
			}
		}
	}
	return CommitID(hex.EncodeToString(h.Sum(nil))[:16])
}

// Stats returns the history's current size counters.
func (h *History) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{Commits: len(h.commits), Checkpoints: len(h.checkpoints), Branches: len(h.branches)}
}

// Commit appends a commit holding cs (the net change since the branch
// head) to the named branch and advances the branch ref.  The state is the
// resulting full database, used when the commit falls on a checkpoint
// boundary; it is snapshotted, never adopted.  Committing an identical
// change set on the identical parent is content-addressed to the existing
// commit.  extraParents records merged-in heads (used by Merge).
func (h *History) Commit(branch, message string, cs *table.ChangeSet, state *table.Database, extraParents ...CommitID) (CommitID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.commitLocked(branch, message, cs, state, extraParents...)
}

func (h *History) commitLocked(branch, message string, cs *table.ChangeSet, state *table.Database, extraParents ...CommitID) (CommitID, error) {
	parent, ok := h.branches[branch]
	if !ok {
		return "", fmt.Errorf("version: unknown branch %q", branch)
	}
	if cs == nil {
		cs = table.NewChangeSet()
	}
	parents := append([]CommitID{parent}, extraParents...)
	for _, p := range extraParents {
		if _, ok := h.commits[p]; !ok {
			return "", fmt.Errorf("version: unknown parent commit %q", p)
		}
	}
	id := commitID(parents, message, cs, nil)
	if _, exists := h.commits[id]; !exists {
		c := &Commit{ID: id, Parents: parents, Message: message, Delta: cs, depth: h.commits[parent].depth + 1}
		h.commits[id] = c
		h.log = append(h.log, id)
		if h.opts.CheckpointEvery > 0 && c.depth%h.opts.CheckpointEvery == 0 && state != nil {
			h.checkpoints[id] = state.Snapshot()
		}
	}
	h.branches[branch] = id
	return id, nil
}

// Branch creates a new branch ref pointing at the given commit.
func (h *History) Branch(name string, at CommitID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.branches[name]; dup {
		return fmt.Errorf("version: branch %q already exists", name)
	}
	if _, ok := h.commits[at]; !ok {
		return fmt.Errorf("version: unknown commit %q", at)
	}
	h.branches[name] = at
	return nil
}

// Head returns the commit a branch points at.
func (h *History) Head(branch string) (CommitID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id, ok := h.branches[branch]
	if !ok {
		return "", fmt.Errorf("version: unknown branch %q", branch)
	}
	return id, nil
}

// Branches returns a copy of the branch refs.
func (h *History) Branches() map[string]CommitID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]CommitID, len(h.branches))
	for n, id := range h.branches {
		out[n] = id
	}
	return out
}

// Lookup returns the commit with the given id.
func (h *History) Lookup(id CommitID) (*Commit, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.commits[id]
	if !ok {
		return nil, fmt.Errorf("version: unknown commit %q", id)
	}
	return c, nil
}

// Resolve turns a commit reference — a full id, a unique id prefix, a
// branch name, or a unique commit message — into a commit id.
func (h *History) Resolve(ref string) (CommitID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.commits[CommitID(ref)]; ok {
		return CommitID(ref), nil
	}
	if id, ok := h.branches[ref]; ok {
		return id, nil
	}
	var match CommitID
	matches := 0
	for _, id := range h.log {
		if len(ref) > 0 && (strings.HasPrefix(string(id), ref) || h.commits[id].Message == ref) {
			match = id
			matches++
		}
	}
	switch matches {
	case 1:
		return match, nil
	case 0:
		return "", fmt.Errorf("version: unknown commit %q", ref)
	default:
		return "", fmt.Errorf("version: ambiguous commit reference %q (%d matches)", ref, matches)
	}
}

// Log returns the first-parent chain of the given commit, newest first,
// down to the root.
func (h *History) Log(from CommitID) ([]*Commit, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.commits[from]
	if !ok {
		return nil, fmt.Errorf("version: unknown commit %q", from)
	}
	out := make([]*Commit, 0, c.depth+1)
	for {
		out = append(out, c)
		if len(c.Parents) == 0 {
			return out, nil
		}
		c = h.commits[c.Parents[0]]
	}
}

// AsOf reconstructs the full database state at a commit: the nearest
// materialized checkpoint on the commit's first-parent chain plus a replay
// of the deltas after it.  The returned database is immutable and shared —
// repeated calls for one commit return the identical instance (checkpoint
// or memo hit), so relation stamps, and with them the engine's plan-cache
// entries, stay valid across historical reads.  Callers who want to mutate
// it must Clone.
func (h *History) AsOf(id CommitID) (*table.Database, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.asOfLocked(id)
}

func (h *History) asOfLocked(id CommitID) (*table.Database, error) {
	if db, ok := h.checkpoints[id]; ok {
		return db, nil
	}
	if db, ok := h.recon[id]; ok {
		return db, nil
	}
	c, ok := h.commits[id]
	if !ok {
		return nil, fmt.Errorf("version: unknown commit %q", id)
	}
	// Walk the first-parent chain back to the nearest materialized state
	// (checkpoint or memoized reconstruction); the root is always
	// checkpointed, so the walk terminates.
	var chain []*Commit
	base := (*table.Database)(nil)
	for {
		chain = append(chain, c)
		p := c.Parents[0]
		if db, ok := h.checkpoints[p]; ok {
			base = db
			break
		}
		if db, ok := h.recon[p]; ok {
			base = db
			break
		}
		c = h.commits[p]
	}
	db := base.Clone()
	for i := len(chain) - 1; i >= 0; i-- {
		if err := db.Apply(chain[i].Delta); err != nil {
			return nil, fmt.Errorf("version: replay to %s: %w", id, err)
		}
	}
	h.memoLocked(id, db)
	return db, nil
}

// memoLocked stores a reconstructed state in the bounded FIFO memo.
func (h *History) memoLocked(id CommitID, db *table.Database) {
	if h.opts.ReconCache < 0 {
		return
	}
	if h.recon == nil {
		h.recon = map[CommitID]*table.Database{}
	}
	if _, ok := h.recon[id]; ok {
		return
	}
	for len(h.reconOrder) >= h.opts.ReconCache && len(h.reconOrder) > 0 {
		delete(h.recon, h.reconOrder[0])
		h.reconOrder = h.reconOrder[1:]
	}
	h.recon[id] = db
	h.reconOrder = append(h.reconOrder, id)
}

// firstParentBase returns the deepest commit on both arguments'
// first-parent chains — the three-way base used by Diff and Merge.  The
// root is on every chain, so a base always exists.
func (h *History) firstParentBase(a, b CommitID) (CommitID, error) {
	ca, ok := h.commits[a]
	if !ok {
		return "", fmt.Errorf("version: unknown commit %q", a)
	}
	cb, ok := h.commits[b]
	if !ok {
		return "", fmt.Errorf("version: unknown commit %q", b)
	}
	onA := map[CommitID]bool{}
	for c := ca; ; c = h.commits[c.Parents[0]] {
		onA[c.ID] = true
		if len(c.Parents) == 0 {
			break
		}
	}
	for c := cb; ; c = h.commits[c.Parents[0]] {
		if onA[c.ID] {
			return c.ID, nil
		}
		if len(c.Parents) == 0 {
			return c.ID, nil
		}
	}
}

// firstParentPath returns the commits strictly after base up to and
// including to, in application order, following first parents.  base must
// be on to's first-parent chain.
func (h *History) firstParentPath(base, to CommitID) ([]*Commit, error) {
	var rev []*Commit
	c := h.commits[to]
	for c.ID != base {
		rev = append(rev, c)
		if len(c.Parents) == 0 {
			return nil, fmt.Errorf("version: %s is not a first-parent ancestor of %s", base, to)
		}
		c = h.commits[c.Parents[0]]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Diff returns the net per-relation change from commit a to commit b,
// composed from the per-commit deltas through their first-parent base:
// the inverted deltas walking a back to the base, then the forward deltas
// up to b.  When b is a first-parent descendant of a this is a pure
// forward composition.
func (h *History) Diff(a, b CommitID) (*table.ChangeSet, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.diffLocked(a, b)
}
