package version_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// TestConcurrentAsOfReaders stresses historical readers against a
// committing writer under -race: while one goroutine keeps committing,
// readers reconstruct random commits and verify the reconstruction is
// internally consistent (every read of one commit sees the same state).
func TestConcurrentAsOfReaders(t *testing.T) {
	db := table.NewDatabase(histSchema())
	h, root := version.New(db, "main", "root", version.Options{CheckpointEvery: 4})

	const commits = 60
	var (
		mu  sync.Mutex
		ids = []version.CommitID{root}
		// sTuples[i] is the number of S tuples at ids[i]; the writer only
		// ever inserts into S, so a reconstruction is consistent iff it
		// holds exactly that many tuples.
		counts = []int{0}
	)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				i := rng.Intn(len(ids))
				id, want := ids[i], counts[i]
				mu.Unlock()
				state, err := h.AsOf(id)
				if err != nil {
					t.Errorf("AsOf(%s): %v", id, err)
					return
				}
				if got := state.Relation("S").Len(); got != want {
					t.Errorf("AsOf(%s): %d tuples, want %d", id, got, want)
					return
				}
			}
		}(int64(r))
	}

	writer := db
	n := 0
	for i := 0; i < commits; i++ {
		tr := writer.Track()
		for j := 0; j < 3; j++ {
			writer.MustAdd("S", table.NewTuple(value.Int(int64(n))))
			n++
		}
		cs := tr.Stop()
		id, err := h.Commit("main", fmt.Sprintf("c%d", i), cs, writer)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		ids = append(ids, id)
		counts = append(counts, n)
		mu.Unlock()
	}
	close(done)
	wg.Wait()
}
