package ra

import (
	"fmt"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// DB is the view of a database the evaluator needs.  *table.Database
// implements it; package certain supplies valuation views that substitute
// nulls on the fly during base-relation scans, so that world enumeration
// never materializes a full database per valuation.
//
// Relations returned by Relation are treated as immutable by the evaluator:
// they are scanned and may be shared (copy-on-write) into the result, but
// never mutated.
type DB interface {
	Relation(name string) *table.Relation
	Schema() *schema.Schema
	ActiveDomain() map[value.Value]bool
}

// Eval evaluates the expression against a database using naïve evaluation:
// nulls are ordinary values with marked-null identity.  On complete
// databases this is standard relational-algebra evaluation.
func Eval(e Expr, d *table.Database) (*table.Relation, error) {
	return EvalDB(e, d)
}

// EvalDB is Eval over any DB implementation.  The result never aliases
// mutable state of the database: base relations reaching the output are
// shared copy-on-write, so mutating the result does not change the input.
func EvalDB(e Expr, db DB) (*table.Relation, error) {
	ev := evaluator{db: db}
	out, err := ev.eval(e)
	if err != nil {
		return nil, err
	}
	return out.Clone(), nil
}

// MustEval is Eval that panics on error; intended for examples and tests.
func MustEval(e Expr, d *table.Database) *table.Relation {
	r, err := Eval(e, d)
	if err != nil {
		panic(err)
	}
	return r
}

// EvalBool evaluates a Boolean query: the expression is evaluated and the
// answer is "true" iff the result is nonempty.  This matches the standard
// encoding of Boolean queries in relational algebra.
func EvalBool(e Expr, d *table.Database) (bool, error) {
	return EvalBoolDB(e, d)
}

// EvalBoolDB is EvalBool over any DB implementation.
func EvalBoolDB(e Expr, db DB) (bool, error) {
	ev := evaluator{db: db}
	r, err := ev.eval(e)
	if err != nil {
		return false, err
	}
	return r.Len() > 0, nil
}

// evaluator carries the database view and a reusable key scratch buffer so
// that inner loops (hash join, division grouping) do not allocate per tuple.
type evaluator struct {
	db     DB
	keyBuf []byte
}

// projKey appends the key of t restricted to the given positions into the
// evaluator's scratch buffer and returns it; valid until the next call.
func (ev *evaluator) projKey(t table.Tuple, positions []int) []byte {
	buf := ev.keyBuf[:0]
	for _, p := range positions {
		buf = t[p].AppendKey(buf)
	}
	ev.keyBuf = buf
	return buf
}

func (ev *evaluator) eval(e Expr) (*table.Relation, error) {
	switch ex := e.(type) {
	case Rel:
		rel := ev.db.Relation(ex.Name)
		if rel == nil {
			return nil, fmt.Errorf("ra: unknown relation %q", ex.Name)
		}
		return rel, nil

	case Select:
		in, err := ev.eval(ex.Input)
		if err != nil {
			return nil, err
		}
		rs := in.Schema()
		if err := ex.Pred.validate(rs); err != nil {
			return nil, err
		}
		return in.Filter(func(t table.Tuple) bool { return ex.Pred.Holds(t, rs) }), nil

	case Project:
		// Fuse a selection directly below the projection into a single
		// pass, so the selected intermediate is never materialized.
		inExpr := ex.Input
		var pred Predicate
		if sel, ok := inExpr.(Select); ok {
			inExpr = sel.Input
			pred = sel.Pred
		}
		in, err := ev.eval(inExpr)
		if err != nil {
			return nil, err
		}
		rs := in.Schema()
		if pred != nil {
			if err := pred.validate(rs); err != nil {
				return nil, err
			}
		}
		idx := make([]int, len(ex.Attrs))
		for i, a := range ex.Attrs {
			j := rs.AttrIndex(a)
			if j < 0 {
				return nil, fmt.Errorf("ra: projection attribute %q not in %s", a, rs)
			}
			idx[i] = j
		}
		outSchema := schema.NewRelation("π("+rs.Name+")", ex.Attrs...)
		out := table.NewRelation(outSchema)
		in.Each(func(t table.Tuple) bool {
			if pred != nil && !pred.Holds(t, rs) {
				return true
			}
			out.MustAdd(t.Project(idx...))
			return true
		})
		return out, nil

	case Rename:
		in, err := ev.eval(ex.Input)
		if err != nil {
			return nil, err
		}
		rs, err := ex.OutSchemaFromInput(in.Schema())
		if err != nil {
			return nil, err
		}
		return in.WithSchema(rs), nil

	case Product:
		l, err := ev.eval(ex.Left)
		if err != nil {
			return nil, err
		}
		r, err := ev.eval(ex.Right)
		if err != nil {
			return nil, err
		}
		ls, rsch := l.Schema(), r.Schema()
		for _, a := range rsch.Attrs {
			if ls.HasAttr(a) {
				return nil, fmt.Errorf("ra: product attribute clash on %q", a)
			}
		}
		attrs := append(append([]string{}, ls.Attrs...), rsch.Attrs...)
		out := table.NewRelation(schema.NewRelation("("+ls.Name+"×"+rsch.Name+")", attrs...))
		l.Each(func(lt table.Tuple) bool {
			r.Each(func(rt table.Tuple) bool {
				out.MustAdd(lt.Concat(rt))
				return true
			})
			return true
		})
		return out, nil

	case Join:
		return ev.evalJoin(ex)

	case Union:
		l, r, err := ev.evalPair(ex.Left, ex.Right, "∪")
		if err != nil {
			return nil, err
		}
		out := l.WithSchema(schema.NewRelation("("+l.Name()+"∪"+r.Name()+")", l.Schema().Attrs...))
		if err := out.AddAll(r); err != nil {
			return nil, err
		}
		return out, nil

	case Diff:
		l, r, err := ev.evalPair(ex.Left, ex.Right, "−")
		if err != nil {
			return nil, err
		}
		out := l.Filter(func(t table.Tuple) bool { return !r.Contains(t) })
		return out.WithSchema(schema.NewRelation("("+l.Name()+"−"+r.Name()+")", l.Schema().Attrs...)), nil

	case Intersect:
		l, r, err := ev.evalPair(ex.Left, ex.Right, "∩")
		if err != nil {
			return nil, err
		}
		out := l.Filter(r.Contains)
		return out.WithSchema(schema.NewRelation("("+l.Name()+"∩"+r.Name()+")", l.Schema().Attrs...)), nil

	case Division:
		return ev.evalDivision(ex)

	case Delta:
		rs, err := ex.OutSchema(ev.db.Schema())
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(rs)
		for v := range ev.db.ActiveDomain() {
			out.MustAdd(table.NewTuple(v, v))
		}
		return out, nil

	default:
		return nil, fmt.Errorf("ra: unsupported expression %T", e)
	}
}

// OutSchemaFromInput computes the Rename output schema given the already
// evaluated input schema (used by the evaluator to avoid re-deriving the
// input schema from the database schema, which would fail for derived
// inputs).
func (r Rename) OutSchemaFromInput(in schema.Relation) (schema.Relation, error) {
	name := r.As
	if name == "" {
		name = in.Name
	}
	attrs := in.Attrs
	if len(r.Attrs) > 0 {
		if len(r.Attrs) != in.Arity() {
			return schema.Relation{}, fmt.Errorf("ra: rename of %s to %d attributes", in, len(r.Attrs))
		}
		attrs = r.Attrs
	}
	return schema.NewRelation(name, attrs...), nil
}

func (ev *evaluator) evalPair(le, re Expr, op string) (*table.Relation, *table.Relation, error) {
	l, err := ev.eval(le)
	if err != nil {
		return nil, nil, err
	}
	r, err := ev.eval(re)
	if err != nil {
		return nil, nil, err
	}
	if l.Arity() != r.Arity() {
		return nil, nil, fmt.Errorf("ra: %s of arities %d and %d", op, l.Arity(), r.Arity())
	}
	return l, r, nil
}

func (ev *evaluator) evalJoin(j Join) (*table.Relation, error) {
	l, err := ev.eval(j.Left)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(j.Right)
	if err != nil {
		return nil, err
	}
	ls, rsch := l.Schema(), r.Schema()
	// Shared attributes and the positions to compare.
	var lShared, rShared []int
	var extraAttrs []string
	var extraIdx []int
	for ri, a := range rsch.Attrs {
		if li := ls.AttrIndex(a); li >= 0 {
			lShared = append(lShared, li)
			rShared = append(rShared, ri)
		} else {
			extraAttrs = append(extraAttrs, a)
			extraIdx = append(extraIdx, ri)
		}
	}
	attrs := append(append([]string{}, ls.Attrs...), extraAttrs...)
	out := table.NewRelation(schema.NewRelation("("+ls.Name+"⋈"+rsch.Name+")", attrs...))

	// Hash join on the shared attributes (marked-null identity, so nulls
	// join with themselves — that is naïve evaluation).  The build side is
	// an open-addressed chain over a slice: the bucket map allocates one
	// string key per distinct join key, not per tuple, and probes convert
	// no strings at all.
	type node struct {
		t    table.Tuple
		next int32 // 1-based index into nodes; 0 terminates
	}
	nodes := make([]node, 0, r.Len())
	buckets := make([]int32, 0, 16)
	heads := make(map[string]int32, r.Len()) // join key → slot in buckets
	r.Each(func(rt table.Tuple) bool {
		k := ev.projKey(rt, rShared)
		slot, ok := heads[string(k)]
		if !ok {
			buckets = append(buckets, 0)
			slot = int32(len(buckets) - 1)
			heads[string(k)] = slot
		}
		nodes = append(nodes, node{t: rt, next: buckets[slot]})
		buckets[slot] = int32(len(nodes))
		return true
	})
	l.Each(func(lt table.Tuple) bool {
		slot, ok := heads[string(ev.projKey(lt, lShared))]
		if !ok {
			return true
		}
		for i := buckets[slot]; i != 0; i = nodes[i-1].next {
			rt := nodes[i-1].t
			combined := make(table.Tuple, len(lt), len(lt)+len(extraIdx))
			copy(combined, lt)
			for _, ri := range extraIdx {
				combined = append(combined, rt[ri])
			}
			out.MustAdd(combined)
		}
		return true
	})
	return out, nil
}

func (ev *evaluator) evalDivision(dv Division) (*table.Relation, error) {
	l, err := ev.eval(dv.Left)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(dv.Right)
	if err != nil {
		return nil, err
	}
	ls, rsch := l.Schema(), r.Schema()
	if rsch.Arity() == 0 {
		return nil, fmt.Errorf("ra: division by zero-ary relation")
	}
	// Positions of divisor attributes inside the dividend, and of the kept
	// attributes.
	divPos := make([]int, rsch.Arity())
	for i, a := range rsch.Attrs {
		j := ls.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("ra: division attribute %q of %s not in %s", a, rsch, ls)
		}
		divPos[i] = j
	}
	var keepAttrs []string
	var keepPos []int
	for i, a := range ls.Attrs {
		if !rsch.HasAttr(a) {
			keepAttrs = append(keepAttrs, a)
			keepPos = append(keepPos, i)
		}
	}
	if len(keepAttrs) == 0 {
		return nil, fmt.Errorf("ra: division %s ÷ %s would have empty schema", ls, rsch)
	}
	out := table.NewRelation(schema.NewRelation("("+ls.Name+"÷"+rsch.Name+")", keepAttrs...))

	// Group dividend tuples by their kept part; collect the set of divisor
	// parts seen for each group.  Keys are built in the scratch buffer and
	// converted to strings only when a new map entry is actually created.
	type group struct {
		repr table.Tuple
		seen map[string]bool
	}
	groups := map[string]*group{}
	var divBuf []byte
	l.Each(func(t table.Tuple) bool {
		k := ev.projKey(t, keepPos)
		g, ok := groups[string(k)]
		if !ok {
			g = &group{repr: t.Project(keepPos...), seen: map[string]bool{}}
			groups[string(k)] = g
		}
		divBuf = divBuf[:0]
		for _, p := range divPos {
			divBuf = t[p].AppendKey(divBuf)
		}
		if !g.seen[string(divBuf)] {
			g.seen[string(divBuf)] = true
		}
		return true
	})
	// Divisor tuple keys.
	var divisorKeys []string
	r.Each(func(t table.Tuple) bool {
		divisorKeys = append(divisorKeys, string(t.AppendKey(ev.keyBuf[:0])))
		return true
	})
	for _, g := range groups {
		all := true
		for _, dk := range divisorKeys {
			if !g.seen[dk] {
				all = false
				break
			}
		}
		if all {
			out.MustAdd(g.repr)
		}
	}
	return out, nil
}

// StripNulls removes tuples containing nulls from a relation; composing it
// with naïve evaluation yields certain answers for the query classes of
// Section 6 (this is the "add IS NOT NULL to the WHERE clause" step).
func StripNulls(r *table.Relation) *table.Relation { return r.CompletePart() }

// ActiveDomainValues exposes adom(D) deterministically ordered; several
// experiments and the Δ operator need it.
func ActiveDomainValues(d *table.Database) []value.Value {
	return table.SortedValues(d.ActiveDomain())
}
