package ra

import (
	"fmt"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Eval evaluates the expression against a database using naïve evaluation:
// nulls are ordinary values with marked-null identity.  On complete
// databases this is standard relational-algebra evaluation.
func Eval(e Expr, d *table.Database) (*table.Relation, error) {
	out, err := eval(e, d)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MustEval is Eval that panics on error; intended for examples and tests.
func MustEval(e Expr, d *table.Database) *table.Relation {
	r, err := Eval(e, d)
	if err != nil {
		panic(err)
	}
	return r
}

// EvalBool evaluates a Boolean query: the expression is evaluated and the
// answer is "true" iff the result is nonempty.  This matches the standard
// encoding of Boolean queries in relational algebra.
func EvalBool(e Expr, d *table.Database) (bool, error) {
	r, err := Eval(e, d)
	if err != nil {
		return false, err
	}
	return r.Len() > 0, nil
}

func eval(e Expr, d *table.Database) (*table.Relation, error) {
	switch ex := e.(type) {
	case Rel:
		rel := d.Relation(ex.Name)
		if rel == nil {
			return nil, fmt.Errorf("ra: unknown relation %q", ex.Name)
		}
		return rel.Clone(), nil

	case Select:
		in, err := eval(ex.Input, d)
		if err != nil {
			return nil, err
		}
		rs := in.Schema()
		if err := ex.Pred.validate(rs); err != nil {
			return nil, err
		}
		return in.Filter(func(t table.Tuple) bool { return ex.Pred.Holds(t, rs) }), nil

	case Project:
		in, err := eval(ex.Input, d)
		if err != nil {
			return nil, err
		}
		rs := in.Schema()
		idx := make([]int, len(ex.Attrs))
		for i, a := range ex.Attrs {
			j := rs.AttrIndex(a)
			if j < 0 {
				return nil, fmt.Errorf("ra: projection attribute %q not in %s", a, rs)
			}
			idx[i] = j
		}
		outSchema := schema.NewRelation("π("+rs.Name+")", ex.Attrs...)
		out := table.NewRelation(outSchema)
		in.Each(func(t table.Tuple) bool {
			out.MustAdd(t.Project(idx...))
			return true
		})
		return out, nil

	case Rename:
		in, err := eval(ex.Input, d)
		if err != nil {
			return nil, err
		}
		rs, err := ex.OutSchemaFromInput(in.Schema())
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(rs)
		in.Each(func(t table.Tuple) bool {
			out.MustAdd(t)
			return true
		})
		return out, nil

	case Product:
		l, err := eval(ex.Left, d)
		if err != nil {
			return nil, err
		}
		r, err := eval(ex.Right, d)
		if err != nil {
			return nil, err
		}
		ls, rsch := l.Schema(), r.Schema()
		for _, a := range rsch.Attrs {
			if ls.HasAttr(a) {
				return nil, fmt.Errorf("ra: product attribute clash on %q", a)
			}
		}
		attrs := append(append([]string{}, ls.Attrs...), rsch.Attrs...)
		out := table.NewRelation(schema.NewRelation("("+ls.Name+"×"+rsch.Name+")", attrs...))
		l.Each(func(lt table.Tuple) bool {
			r.Each(func(rt table.Tuple) bool {
				out.MustAdd(lt.Concat(rt))
				return true
			})
			return true
		})
		return out, nil

	case Join:
		return evalJoin(ex, d)

	case Union:
		l, r, err := evalPair(ex.Left, ex.Right, d, "∪")
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(schema.NewRelation("("+l.Name()+"∪"+r.Name()+")", l.Schema().Attrs...))
		l.Each(func(t table.Tuple) bool { out.MustAdd(t); return true })
		r.Each(func(t table.Tuple) bool { out.MustAdd(t); return true })
		return out, nil

	case Diff:
		l, r, err := evalPair(ex.Left, ex.Right, d, "−")
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(schema.NewRelation("("+l.Name()+"−"+r.Name()+")", l.Schema().Attrs...))
		l.Each(func(t table.Tuple) bool {
			if !r.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case Intersect:
		l, r, err := evalPair(ex.Left, ex.Right, d, "∩")
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(schema.NewRelation("("+l.Name()+"∩"+r.Name()+")", l.Schema().Attrs...))
		l.Each(func(t table.Tuple) bool {
			if r.Contains(t) {
				out.MustAdd(t)
			}
			return true
		})
		return out, nil

	case Division:
		return evalDivision(ex, d)

	case Delta:
		rs, err := ex.OutSchema(d.Schema())
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(rs)
		for v := range d.ActiveDomain() {
			out.MustAdd(table.NewTuple(v, v))
		}
		return out, nil

	default:
		return nil, fmt.Errorf("ra: unsupported expression %T", e)
	}
}

// OutSchemaFromInput computes the Rename output schema given the already
// evaluated input schema (used by the evaluator to avoid re-deriving the
// input schema from the database schema, which would fail for derived
// inputs).
func (r Rename) OutSchemaFromInput(in schema.Relation) (schema.Relation, error) {
	name := r.As
	if name == "" {
		name = in.Name
	}
	attrs := in.Attrs
	if len(r.Attrs) > 0 {
		if len(r.Attrs) != in.Arity() {
			return schema.Relation{}, fmt.Errorf("ra: rename of %s to %d attributes", in, len(r.Attrs))
		}
		attrs = r.Attrs
	}
	return schema.NewRelation(name, attrs...), nil
}

func evalPair(le, re Expr, d *table.Database, op string) (*table.Relation, *table.Relation, error) {
	l, err := eval(le, d)
	if err != nil {
		return nil, nil, err
	}
	r, err := eval(re, d)
	if err != nil {
		return nil, nil, err
	}
	if l.Arity() != r.Arity() {
		return nil, nil, fmt.Errorf("ra: %s of arities %d and %d", op, l.Arity(), r.Arity())
	}
	return l, r, nil
}

func evalJoin(j Join, d *table.Database) (*table.Relation, error) {
	l, err := eval(j.Left, d)
	if err != nil {
		return nil, err
	}
	r, err := eval(j.Right, d)
	if err != nil {
		return nil, err
	}
	ls, rsch := l.Schema(), r.Schema()
	// Shared attributes and the positions to compare.
	type pair struct{ li, ri int }
	var shared []pair
	var extraAttrs []string
	var extraIdx []int
	for ri, a := range rsch.Attrs {
		if li := ls.AttrIndex(a); li >= 0 {
			shared = append(shared, pair{li: li, ri: ri})
		} else {
			extraAttrs = append(extraAttrs, a)
			extraIdx = append(extraIdx, ri)
		}
	}
	attrs := append(append([]string{}, ls.Attrs...), extraAttrs...)
	out := table.NewRelation(schema.NewRelation("("+ls.Name+"⋈"+rsch.Name+")", attrs...))

	// Hash join on the shared attributes (marked-null identity, so nulls
	// join with themselves — that is naïve evaluation).
	index := map[string][]table.Tuple{}
	keyOf := func(t table.Tuple, positions []int) string {
		parts := make(table.Tuple, len(positions))
		for i, p := range positions {
			parts[i] = t[p]
		}
		return parts.Key()
	}
	rShared := make([]int, len(shared))
	lShared := make([]int, len(shared))
	for i, p := range shared {
		rShared[i] = p.ri
		lShared[i] = p.li
	}
	r.Each(func(rt table.Tuple) bool {
		k := keyOf(rt, rShared)
		index[k] = append(index[k], rt)
		return true
	})
	l.Each(func(lt table.Tuple) bool {
		k := keyOf(lt, lShared)
		for _, rt := range index[k] {
			combined := lt.Clone()
			for _, ri := range extraIdx {
				combined = append(combined, rt[ri])
			}
			out.MustAdd(combined)
		}
		return true
	})
	return out, nil
}

func evalDivision(dv Division, d *table.Database) (*table.Relation, error) {
	l, err := eval(dv.Left, d)
	if err != nil {
		return nil, err
	}
	r, err := eval(dv.Right, d)
	if err != nil {
		return nil, err
	}
	ls, rsch := l.Schema(), r.Schema()
	if rsch.Arity() == 0 {
		return nil, fmt.Errorf("ra: division by zero-ary relation")
	}
	// Positions of divisor attributes inside the dividend, and of the kept
	// attributes.
	divPos := make([]int, rsch.Arity())
	for i, a := range rsch.Attrs {
		j := ls.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("ra: division attribute %q of %s not in %s", a, rsch, ls)
		}
		divPos[i] = j
	}
	var keepAttrs []string
	var keepPos []int
	for i, a := range ls.Attrs {
		if !rsch.HasAttr(a) {
			keepAttrs = append(keepAttrs, a)
			keepPos = append(keepPos, i)
		}
	}
	if len(keepAttrs) == 0 {
		return nil, fmt.Errorf("ra: division %s ÷ %s would have empty schema", ls, rsch)
	}
	out := table.NewRelation(schema.NewRelation("("+ls.Name+"÷"+rsch.Name+")", keepAttrs...))

	// Group dividend tuples by their kept part; collect the set of divisor
	// parts seen for each group.
	groups := map[string]map[string]bool{}
	repr := map[string]table.Tuple{}
	l.Each(func(t table.Tuple) bool {
		kt := t.Project(keepPos...)
		dt := t.Project(divPos...)
		k := kt.Key()
		if groups[k] == nil {
			groups[k] = map[string]bool{}
			repr[k] = kt
		}
		groups[k][dt.Key()] = true
		return true
	})
	// Divisor tuple keys.
	var divisorKeys []string
	r.Each(func(t table.Tuple) bool {
		divisorKeys = append(divisorKeys, t.Key())
		return true
	})
	for k, seen := range groups {
		all := true
		for _, dk := range divisorKeys {
			if !seen[dk] {
				all = false
				break
			}
		}
		if all {
			out.MustAdd(repr[k])
		}
	}
	return out, nil
}

// StripNulls removes tuples containing nulls from a relation; composing it
// with naïve evaluation yields certain answers for the query classes of
// Section 6 (this is the "add IS NOT NULL to the WHERE clause" step).
func StripNulls(r *table.Relation) *table.Relation { return r.CompletePart() }

// ActiveDomainValues exposes adom(D) deterministically ordered; several
// experiments and the Δ operator need it.
func ActiveDomainValues(d *table.Database) []value.Value {
	return table.SortedValues(d.ActiveDomain())
}
