package ra

import (
	"fmt"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Predicate is a selection condition evaluated over a single tuple.  Under
// naïve evaluation predicates are two-valued and nulls are ordinary values
// (marked-null identity): ⊥1 = ⊥1 holds, ⊥1 = ⊥2 and ⊥1 = 3 do not.
type Predicate interface {
	// validate checks that the attributes used by the predicate exist.
	validate(rs schema.Relation) error
	// Holds evaluates the predicate on a tuple with the given schema.
	Holds(t table.Tuple, rs schema.Relation) bool
	// String renders the predicate.
	String() string
	// positive reports whether the predicate belongs to the positive
	// fragment (built from =, ∧, ∨ only).
	positive() bool
}

// Operand is either an attribute reference or a constant.
type Operand struct {
	Attr   string      // attribute name if IsAttr
	Const  value.Value // constant otherwise
	IsAttr bool
}

// Attr builds an attribute operand.
func Attr(name string) Operand { return Operand{Attr: name, IsAttr: true} }

// Lit builds a constant operand.
func Lit(v value.Value) Operand { return Operand{Const: v} }

// LitInt builds an integer-constant operand.
func LitInt(i int64) Operand { return Lit(value.Int(i)) }

// LitString builds a string-constant operand.
func LitString(s string) Operand { return Lit(value.String(s)) }

func (o Operand) validate(rs schema.Relation) error {
	if o.IsAttr && !rs.HasAttr(o.Attr) {
		return fmt.Errorf("ra: unknown attribute %q in %s", o.Attr, rs)
	}
	return nil
}

func (o Operand) resolve(t table.Tuple, rs schema.Relation) value.Value {
	if o.IsAttr {
		return t[rs.AttrIndex(o.Attr)]
	}
	return o.Const
}

// String renders the operand.
func (o Operand) String() string {
	if o.IsAttr {
		return o.Attr
	}
	return o.Const.String()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators supported in selection predicates.
const (
	EQ CmpOp = iota
	NEQ
	LT
	LEQ
	GT
	GEQ
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NEQ:
		return "≠"
	case LT:
		return "<"
	case LEQ:
		return "≤"
	case GT:
		return ">"
	case GEQ:
		return "≥"
	default:
		return "?"
	}
}

// Cmp compares two operands.
type Cmp struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// Eq builds the predicate left = right.
func Eq(l, r Operand) Cmp { return Cmp{Left: l, Op: EQ, Right: r} }

// Neq builds the predicate left ≠ right.
func Neq(l, r Operand) Cmp { return Cmp{Left: l, Op: NEQ, Right: r} }

// Lt builds the predicate left < right.
func Lt(l, r Operand) Cmp { return Cmp{Left: l, Op: LT, Right: r} }

func (c Cmp) validate(rs schema.Relation) error {
	if err := c.Left.validate(rs); err != nil {
		return err
	}
	return c.Right.validate(rs)
}

// Holds implements Predicate with marked-null identity semantics.
func (c Cmp) Holds(t table.Tuple, rs schema.Relation) bool {
	l := c.Left.resolve(t, rs)
	r := c.Right.resolve(t, rs)
	switch c.Op {
	case EQ:
		return l == r
	case NEQ:
		return l != r
	case LT:
		return value.Compare(l, r) < 0
	case LEQ:
		return value.Compare(l, r) <= 0
	case GT:
		return value.Compare(l, r) > 0
	case GEQ:
		return value.Compare(l, r) >= 0
	default:
		return false
	}
}

// String implements Predicate.
func (c Cmp) String() string {
	return c.Left.String() + c.Op.String() + c.Right.String()
}

func (c Cmp) positive() bool { return c.Op == EQ }

// And is conjunction of predicates.
type And struct {
	Preds []Predicate
}

// AllOf builds a conjunction.
func AllOf(ps ...Predicate) And { return And{Preds: ps} }

func (a And) validate(rs schema.Relation) error {
	for _, p := range a.Preds {
		if err := p.validate(rs); err != nil {
			return err
		}
	}
	return nil
}

// Holds implements Predicate.
func (a And) Holds(t table.Tuple, rs schema.Relation) bool {
	for _, p := range a.Preds {
		if !p.Holds(t, rs) {
			return false
		}
	}
	return true
}

// String implements Predicate.
func (a And) String() string {
	if len(a.Preds) == 0 {
		return "true"
	}
	s := ""
	for i, p := range a.Preds {
		if i > 0 {
			s += " ∧ "
		}
		s += p.String()
	}
	return "(" + s + ")"
}

func (a And) positive() bool {
	for _, p := range a.Preds {
		if !p.positive() {
			return false
		}
	}
	return true
}

// Or is disjunction of predicates.
type Or struct {
	Preds []Predicate
}

// AnyOf builds a disjunction.
func AnyOf(ps ...Predicate) Or { return Or{Preds: ps} }

func (o Or) validate(rs schema.Relation) error {
	for _, p := range o.Preds {
		if err := p.validate(rs); err != nil {
			return err
		}
	}
	return nil
}

// Holds implements Predicate.
func (o Or) Holds(t table.Tuple, rs schema.Relation) bool {
	for _, p := range o.Preds {
		if p.Holds(t, rs) {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (o Or) String() string {
	if len(o.Preds) == 0 {
		return "false"
	}
	s := ""
	for i, p := range o.Preds {
		if i > 0 {
			s += " ∨ "
		}
		s += p.String()
	}
	return "(" + s + ")"
}

func (o Or) positive() bool {
	for _, p := range o.Preds {
		if !p.positive() {
			return false
		}
	}
	return true
}

// Not is negation of a predicate.
type Not struct {
	Pred Predicate
}

// Negate builds a negation.
func Negate(p Predicate) Not { return Not{Pred: p} }

func (n Not) validate(rs schema.Relation) error { return n.Pred.validate(rs) }

// Holds implements Predicate.
func (n Not) Holds(t table.Tuple, rs schema.Relation) bool { return !n.Pred.Holds(t, rs) }

// String implements Predicate.
func (n Not) String() string { return "¬" + n.Pred.String() }

func (n Not) positive() bool { return false }

// True is the always-true predicate.
type True struct{}

func (True) validate(schema.Relation) error { return nil }

// Holds implements Predicate.
func (True) Holds(table.Tuple, schema.Relation) bool { return true }

// String implements Predicate.
func (True) String() string { return "true" }

func (True) positive() bool { return true }

// False is the always-false predicate.  It arises from constant folding
// (e.g. σ[1=2]) in the query planner; σ[false](E) is the empty relation
// over E's schema.
type False struct{}

func (False) validate(schema.Relation) error { return nil }

// Holds implements Predicate.
func (False) Holds(table.Tuple, schema.Relation) bool { return false }

// String implements Predicate.
func (False) String() string { return "false" }

func (False) positive() bool { return false }
