// Package ra implements relational algebra over (possibly incomplete)
// databases: the operators σ, π, ×, ⋈, ∪, −, ∩, ρ, the division operator ÷,
// and the auxiliary Δ relation used to define the class RAcwa (Section 6.2
// of the paper).
//
// Evaluation (Eval) is naïve evaluation in the sense of the paper: nulls
// are treated as ordinary values, with marked-null identity for equality.
// On complete databases this coincides with standard relational-algebra
// evaluation.  Fragment classification (IsPositive, IsRAcwa) identifies the
// query classes for which naïve evaluation computes certain answers under
// OWA and CWA respectively.
package ra

import (
	"fmt"
	"strings"

	"incdata/internal/schema"
)

// Expr is a relational algebra expression.
type Expr interface {
	// OutSchema computes the output schema of the expression against a
	// database schema; it reports schema errors (unknown relations or
	// attributes, arity mismatches).
	OutSchema(s *schema.Schema) (schema.Relation, error)
	// String renders the expression in a conventional textual form.
	String() string
}

// Rel references a base relation by name.
type Rel struct {
	Name string
}

// Base is shorthand for referencing a base relation.
func Base(name string) Rel { return Rel{Name: name} }

// OutSchema implements Expr.
func (r Rel) OutSchema(s *schema.Schema) (schema.Relation, error) {
	rs, ok := s.Relation(r.Name)
	if !ok {
		return schema.Relation{}, fmt.Errorf("ra: unknown relation %q", r.Name)
	}
	return rs, nil
}

// String implements Expr.
func (r Rel) String() string { return r.Name }

// Select filters the input by a predicate (σ_pred).
type Select struct {
	Input Expr
	Pred  Predicate
}

// OutSchema implements Expr.
func (s Select) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	in, err := s.Input.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	if err := s.Pred.validate(in); err != nil {
		return schema.Relation{}, err
	}
	return in.Rename("σ(" + in.Name + ")"), nil
}

// String implements Expr.
func (s Select) String() string {
	return "σ[" + s.Pred.String() + "](" + s.Input.String() + ")"
}

// Project keeps only the named attributes, in the given order (π_attrs).
type Project struct {
	Input Expr
	Attrs []string
}

// OutSchema implements Expr.
func (p Project) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	in, err := p.Input.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	if len(p.Attrs) == 0 {
		return schema.Relation{}, fmt.Errorf("ra: projection onto no attributes")
	}
	for _, a := range p.Attrs {
		if !in.HasAttr(a) {
			return schema.Relation{}, fmt.Errorf("ra: projection attribute %q not in %s", a, in)
		}
	}
	return schema.NewRelation("π("+in.Name+")", p.Attrs...), nil
}

// String implements Expr.
func (p Project) String() string {
	return "π[" + strings.Join(p.Attrs, ",") + "](" + p.Input.String() + ")"
}

// Rename renames the output relation and, optionally, its attributes (ρ).
type Rename struct {
	Input Expr
	As    string
	Attrs []string // if non-empty, must match the input arity
}

// OutSchema implements Expr.
func (r Rename) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	in, err := r.Input.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	name := r.As
	if name == "" {
		name = in.Name
	}
	attrs := in.Attrs
	if len(r.Attrs) > 0 {
		if len(r.Attrs) != in.Arity() {
			return schema.Relation{}, fmt.Errorf("ra: rename of %s to %d attributes", in, len(r.Attrs))
		}
		attrs = r.Attrs
	}
	return schema.NewRelation(name, attrs...), nil
}

// String implements Expr.
func (r Rename) String() string {
	if len(r.Attrs) == 0 {
		return "ρ[" + r.As + "](" + r.Input.String() + ")"
	}
	return "ρ[" + r.As + "(" + strings.Join(r.Attrs, ",") + ")](" + r.Input.String() + ")"
}

// Product is the cartesian product (×); the attribute sets must be disjoint.
type Product struct {
	Left, Right Expr
}

// OutSchema implements Expr.
func (p Product) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	l, err := p.Left.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	r, err := p.Right.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	for _, a := range r.Attrs {
		if l.HasAttr(a) {
			return schema.Relation{}, fmt.Errorf("ra: product attribute clash on %q (rename one side)", a)
		}
	}
	attrs := append(append([]string{}, l.Attrs...), r.Attrs...)
	return schema.NewRelation("("+l.Name+"×"+r.Name+")", attrs...), nil
}

// String implements Expr.
func (p Product) String() string {
	return "(" + p.Left.String() + " × " + p.Right.String() + ")"
}

// Join is the natural join (⋈) on all shared attribute names.
type Join struct {
	Left, Right Expr
}

// OutSchema implements Expr.
func (j Join) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	l, err := j.Left.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	r, err := j.Right.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	attrs := append([]string{}, l.Attrs...)
	for _, a := range r.Attrs {
		if !l.HasAttr(a) {
			attrs = append(attrs, a)
		}
	}
	return schema.NewRelation("("+l.Name+"⋈"+r.Name+")", attrs...), nil
}

// String implements Expr.
func (j Join) String() string {
	return "(" + j.Left.String() + " ⋈ " + j.Right.String() + ")"
}

// binarySetOp factors the schema logic shared by ∪, −, ∩: both sides must
// have the same arity; the output uses the left schema's attributes.
func binarySetOp(op string, left, right Expr, sc *schema.Schema) (schema.Relation, error) {
	l, err := left.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	r, err := right.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	if l.Arity() != r.Arity() {
		return schema.Relation{}, fmt.Errorf("ra: %s of arities %d and %d", op, l.Arity(), r.Arity())
	}
	return schema.NewRelation("("+l.Name+op+r.Name+")", l.Attrs...), nil
}

// Union is set union (∪); arities must match.
type Union struct {
	Left, Right Expr
}

// OutSchema implements Expr.
func (u Union) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	return binarySetOp("∪", u.Left, u.Right, sc)
}

// String implements Expr.
func (u Union) String() string {
	return "(" + u.Left.String() + " ∪ " + u.Right.String() + ")"
}

// Diff is set difference (−); arities must match.
type Diff struct {
	Left, Right Expr
}

// OutSchema implements Expr.
func (d Diff) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	return binarySetOp("−", d.Left, d.Right, sc)
}

// String implements Expr.
func (d Diff) String() string {
	return "(" + d.Left.String() + " − " + d.Right.String() + ")"
}

// Intersect is set intersection (∩); arities must match.
type Intersect struct {
	Left, Right Expr
}

// OutSchema implements Expr.
func (i Intersect) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	return binarySetOp("∩", i.Left, i.Right, sc)
}

// String implements Expr.
func (i Intersect) String() string {
	return "(" + i.Left.String() + " ∩ " + i.Right.String() + ")"
}

// Division is the relational division R ÷ S: the divisor's attributes must
// be a subset of the dividend's; the result keeps the remaining attributes
// of R and contains a tuple t iff (t,s) ∈ R for every s ∈ S.  Division by a
// base relation (or an RA(Δ,π,×,∪) expression) is the operator that extends
// positive relational algebra to RAcwa in Section 6.2.
type Division struct {
	Left, Right Expr
}

// OutSchema implements Expr.
func (d Division) OutSchema(sc *schema.Schema) (schema.Relation, error) {
	l, err := d.Left.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	r, err := d.Right.OutSchema(sc)
	if err != nil {
		return schema.Relation{}, err
	}
	if r.Arity() == 0 {
		return schema.Relation{}, fmt.Errorf("ra: division by zero-ary relation")
	}
	var keep []string
	for _, a := range l.Attrs {
		if !r.HasAttr(a) {
			keep = append(keep, a)
		}
	}
	if len(keep)+r.Arity() != l.Arity() {
		return schema.Relation{}, fmt.Errorf("ra: division %s ÷ %s: divisor attributes must be a subset of dividend attributes", l, r)
	}
	if len(keep) == 0 {
		return schema.Relation{}, fmt.Errorf("ra: division %s ÷ %s would have empty schema", l, r)
	}
	return schema.NewRelation("("+l.Name+"÷"+r.Name+")", keep...), nil
}

// String implements Expr.
func (d Division) String() string {
	return "(" + d.Left.String() + " ÷ " + d.Right.String() + ")"
}

// Delta is the auxiliary query Δ returning {(a,a) | a ∈ adom(D)}, definable
// in positive relational algebra and used in the definition of RA(Δ,π,×,∪)
// divisors for RAcwa.
type Delta struct {
	Attr1, Attr2 string
}

// OutSchema implements Expr.
func (d Delta) OutSchema(*schema.Schema) (schema.Relation, error) {
	a1, a2 := d.Attr1, d.Attr2
	if a1 == "" {
		a1 = "δ1"
	}
	if a2 == "" {
		a2 = "δ2"
	}
	if a1 == a2 {
		return schema.Relation{}, fmt.Errorf("ra: Δ needs two distinct attribute names")
	}
	return schema.NewRelation("Δ", a1, a2), nil
}

// String implements Expr.
func (d Delta) String() string { return "Δ" }
