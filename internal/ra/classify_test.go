package ra

import "testing"

func TestClassify(t *testing.T) {
	posQueries := []Expr{
		Base("R"),
		Delta{},
		Select{Input: Base("R"), Pred: Eq(Attr("a"), LitInt(1))},
		Select{Input: Base("R"), Pred: AllOf(Eq(Attr("a"), LitInt(1)), AnyOf(Eq(Attr("b"), LitInt(2))))},
		Project{Input: Join{Left: Base("R"), Right: Base("S")}, Attrs: []string{"a"}},
		Union{Left: Base("R"), Right: Rename{Input: Base("R"), As: "R2"}},
		Intersect{Left: Base("R"), Right: Base("R")},
		Product{Left: Base("R"), Right: Base("S")},
	}
	for _, q := range posQueries {
		if !IsPositive(q) {
			t.Errorf("%s should be positive", q)
		}
		if !IsRAcwa(q) {
			t.Errorf("%s should be in RAcwa (positive ⊆ RAcwa)", q)
		}
		if Classify(q) != FragmentPositive {
			t.Errorf("%s should classify as positive", q)
		}
		if UsesDifference(q) {
			t.Errorf("%s should not use difference", q)
		}
		if !NaiveEvalSound(q, false) || !NaiveEvalSound(q, true) {
			t.Errorf("naïve evaluation should be sound for %s under both semantics", q)
		}
	}

	// Division by a base relation: RAcwa but not positive.
	div := Division{Left: Base("Enroll"), Right: Base("Course")}
	if IsPositive(div) {
		t.Error("division is not positive")
	}
	if !IsRAcwa(div) {
		t.Error("division by a base relation is in RAcwa")
	}
	if Classify(div) != FragmentRAcwa {
		t.Error("division should classify as RAcwa")
	}
	if NaiveEvalSound(div, false) {
		t.Error("naïve evaluation for division is not known sound under OWA")
	}
	if !NaiveEvalSound(div, true) {
		t.Error("naïve evaluation for division is sound under CWA")
	}

	// Division by an RA(Δ,π,×,∪) expression is still RAcwa.
	div2 := Division{
		Left:  Base("Enroll"),
		Right: Union{Left: Project{Input: Base("Course"), Attrs: []string{"course"}}, Right: Project{Input: Delta{Attr1: "course", Attr2: "c2"}, Attrs: []string{"course"}}},
	}
	if !IsRAcwa(div2) {
		t.Error("division by RA(Δ,π,×,∪) divisor should be RAcwa")
	}

	// Division by a selection is not RAcwa (selection not allowed in the divisor).
	div3 := Division{Left: Base("Enroll"), Right: Select{Input: Base("Course"), Pred: True{}}}
	if IsRAcwa(div3) {
		t.Error("division by a selection is outside RAcwa")
	}

	// Difference is outside both fragments.
	diff := Diff{Left: Base("R"), Right: Base("S")}
	if IsPositive(diff) || IsRAcwa(diff) {
		t.Error("difference must not be positive or RAcwa")
	}
	if Classify(diff) != FragmentFull {
		t.Error("difference should classify as full RA")
	}
	if !UsesDifference(diff) || !UsesDifference(Project{Input: diff, Attrs: []string{"a"}}) {
		t.Error("UsesDifference should detect nested difference")
	}
	if NaiveEvalSound(diff, true) || NaiveEvalSound(diff, false) {
		t.Error("naïve evaluation is not sound for difference")
	}

	// Selections with ≠ or ¬ leave the positive fragment.
	neq := Select{Input: Base("R"), Pred: Neq(Attr("a"), Attr("b"))}
	if IsPositive(neq) {
		t.Error("≠ selection is not positive")
	}
	neg := Select{Input: Base("R"), Pred: Negate(Eq(Attr("a"), LitInt(1)))}
	if IsPositive(neg) || IsRAcwa(neg) {
		t.Error("negated selection is not positive/RAcwa")
	}

	// Nested structures propagate.
	nested := Union{Left: Base("R"), Right: Diff{Left: Base("R"), Right: Base("S")}}
	if IsPositive(nested) || IsRAcwa(nested) || !UsesDifference(nested) {
		t.Error("nested difference classification wrong")
	}
	nestedDiv := Project{Input: Division{Left: Base("Enroll"), Right: Base("Course")}, Attrs: []string{"student"}}
	if IsPositive(nestedDiv) || !IsRAcwa(nestedDiv) || UsesDifference(nestedDiv) {
		t.Error("nested division classification wrong")
	}
	// Division whose dividend uses difference.
	mixedDiv := Division{Left: Diff{Left: Base("Enroll"), Right: Base("Enroll")}, Right: Base("Course")}
	if IsRAcwa(mixedDiv) || !UsesDifference(mixedDiv) {
		t.Error("division over a difference is not RAcwa")
	}
	// Intersect/Join/Select/Rename/Product/Delta paths of UsesDifference.
	if UsesDifference(Intersect{Left: Base("R"), Right: Base("S")}) ||
		UsesDifference(Join{Left: Base("R"), Right: Base("S")}) ||
		UsesDifference(Select{Input: Base("R"), Pred: True{}}) ||
		UsesDifference(Rename{Input: Base("R"), As: "X"}) ||
		UsesDifference(Product{Left: Base("R"), Right: Base("S")}) ||
		UsesDifference(Delta{}) {
		t.Error("UsesDifference false positives")
	}
	if UsesDifference(Union{Left: Base("R"), Right: Base("S")}) {
		t.Error("union without difference misreported")
	}
	if !UsesDifference(Union{Left: Diff{Left: Base("R"), Right: Base("S")}, Right: Base("S")}) {
		t.Error("difference under union missed")
	}
}

func TestClassifyRenameAndRAcwaPaths(t *testing.T) {
	// Renames are transparent for all classifications.
	q := Rename{Input: Division{Left: Base("Enroll"), Right: Base("Course")}, As: "Q"}
	if IsPositive(q) || !IsRAcwa(q) {
		t.Error("rename over division misclassified")
	}
	// RAcwa closed under intersection and join over divisions.
	q2 := Intersect{
		Left:  Project{Input: Base("Enroll"), Attrs: []string{"student"}},
		Right: Division{Left: Base("Enroll"), Right: Base("Course")},
	}
	if !IsRAcwa(q2) || IsPositive(q2) {
		t.Error("intersection with division misclassified")
	}
	// isDeltaPiProductUnion: product and rename inside divisor are fine,
	// join is not.
	div := Division{
		Left: Base("Enroll"),
		Right: Project{
			Input: Product{Left: Rename{Input: Base("Course"), As: "C1", Attrs: []string{"c1"}}, Right: Rename{Input: Base("Course"), As: "C2", Attrs: []string{"course"}}},
			Attrs: []string{"course"},
		},
	}
	if !IsRAcwa(div) {
		t.Error("divisor in RA(Δ,π,×,∪) with product/rename should be allowed")
	}
	badDiv := Division{Left: Base("Enroll"), Right: Join{Left: Base("Course"), Right: Base("Course")}}
	if IsRAcwa(badDiv) {
		t.Error("join in divisor is outside RA(Δ,π,×,∪)")
	}
}
