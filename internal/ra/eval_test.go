package ra

import (
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// testDB builds the two-relation database used across the evaluator tests:
//
//	R(a,b) = {(1,2), (2,3), (1,⊥1)}
//	S(b)   = {(2), (⊥2)}
func testDB(t *testing.T) *table.Database {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "2", "3")
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("S", "2")
	d.MustAddRow("S", "⊥2")
	return d
}

func mustTuples(t *testing.T, r *table.Relation, want ...[]string) {
	t.Helper()
	if r.Len() != len(want) {
		t.Fatalf("relation has %d tuples, want %d: %v", r.Len(), len(want), r)
	}
	for _, w := range want {
		if !r.Contains(table.MustParseTuple(w...)) {
			t.Errorf("missing tuple %v in %v", w, r)
		}
	}
}

func TestEvalBaseAndErrors(t *testing.T) {
	d := testDB(t)
	r := MustEval(Base("R"), d)
	if r.Len() != 3 {
		t.Errorf("base relation len = %d", r.Len())
	}
	if _, err := Eval(Base("Nope"), d); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := (Base("Nope")).OutSchema(d.Schema()); err == nil {
		t.Error("OutSchema of unknown relation should error")
	}
}

func TestMustEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEval should panic on error")
		}
	}()
	MustEval(Base("Nope"), testDB(t))
}

func TestEvalSelect(t *testing.T) {
	d := testDB(t)
	q := Select{Input: Base("R"), Pred: Eq(Attr("a"), LitInt(1))}
	mustTuples(t, MustEval(q, d), []string{"1", "2"}, []string{"1", "⊥1"})

	// Naïve semantics: ⊥1 = ⊥1 holds, ⊥1 = 2 does not.
	q2 := Select{Input: Base("R"), Pred: Eq(Attr("b"), Lit(value.Null(1)))}
	mustTuples(t, MustEval(q2, d), []string{"1", "⊥1"})

	q3 := Select{Input: Base("R"), Pred: Neq(Attr("a"), Attr("b"))}
	mustTuples(t, MustEval(q3, d), []string{"1", "2"}, []string{"2", "3"}, []string{"1", "⊥1"})

	q4 := Select{Input: Base("R"), Pred: Lt(Attr("a"), LitInt(2))}
	mustTuples(t, MustEval(q4, d), []string{"1", "2"}, []string{"1", "⊥1"})

	// Predicate attribute errors surface.
	if _, err := Eval(Select{Input: Base("R"), Pred: Eq(Attr("zz"), LitInt(1))}, d); err != nil {
		// Expected: unknown attribute
	} else {
		t.Error("selection on unknown attribute should error")
	}
}

func TestEvalProject(t *testing.T) {
	d := testDB(t)
	q := Project{Input: Base("R"), Attrs: []string{"a"}}
	mustTuples(t, MustEval(q, d), []string{"1"}, []string{"2"})
	// projection merges duplicates: (1,2) and (1,⊥1) both give a=1

	q2 := Project{Input: Base("R"), Attrs: []string{"b", "a"}}
	mustTuples(t, MustEval(q2, d), []string{"2", "1"}, []string{"3", "2"}, []string{"⊥1", "1"})

	if _, err := Eval(Project{Input: Base("R"), Attrs: []string{"zzz"}}, d); err == nil {
		t.Error("projection on missing attribute should error")
	}
	if _, err := (Project{Input: Base("R")}).OutSchema(d.Schema()); err == nil {
		t.Error("empty projection should error in OutSchema")
	}
}

func TestEvalRename(t *testing.T) {
	d := testDB(t)
	q := Rename{Input: Base("S"), As: "T", Attrs: []string{"c"}}
	r := MustEval(q, d)
	if r.Schema().Name != "T" || r.Schema().Attrs[0] != "c" || r.Len() != 2 {
		t.Errorf("rename wrong: %v %v", r.Schema(), r)
	}
	if _, err := Eval(Rename{Input: Base("S"), Attrs: []string{"a", "b"}}, d); err == nil {
		t.Error("rename with wrong attribute count should error")
	}
	// Rename without attrs keeps them.
	r2 := MustEval(Rename{Input: Base("S"), As: "U"}, d)
	if r2.Schema().Attrs[0] != "b" {
		t.Error("rename should keep attributes when none are given")
	}
}

func TestEvalProductAndJoin(t *testing.T) {
	d := testDB(t)
	// Product needs disjoint attributes.
	if _, err := Eval(Product{Left: Base("R"), Right: Base("S")}, d); err == nil {
		t.Error("product with clashing attribute b should error")
	}
	p := Product{Left: Base("R"), Right: Rename{Input: Base("S"), As: "S2", Attrs: []string{"c"}}}
	r := MustEval(p, d)
	if r.Len() != 6 || r.Arity() != 3 {
		t.Errorf("product: len=%d arity=%d", r.Len(), r.Arity())
	}

	// Natural join R ⋈ S on b: joins (1,2) with (2); ⊥1 and ⊥2 do not join
	// with anything (different marks, naïve identity).
	j := Join{Left: Base("R"), Right: Base("S")}
	mustTuples(t, MustEval(j, d), []string{"1", "2"})

	// A join with a shared null mark does join.
	d.MustAddRow("S", "⊥1")
	mustTuples(t, MustEval(j, d), []string{"1", "2"}, []string{"1", "⊥1"})

	// Join with no shared attributes degenerates to a product.
	j2 := Join{Left: Base("R"), Right: Rename{Input: Base("S"), As: "S2", Attrs: []string{"c"}}}
	r2 := MustEval(j2, d)
	if r2.Arity() != 3 || r2.Len() != 9 {
		t.Errorf("join-as-product: arity=%d len=%d", r2.Arity(), r2.Len())
	}
}

func TestEvalSetOperations(t *testing.T) {
	d := testDB(t)
	pa := Project{Input: Base("R"), Attrs: []string{"b"}}
	u := Union{Left: pa, Right: Base("S")}
	mustTuples(t, MustEval(u, d), []string{"2"}, []string{"3"}, []string{"⊥1"}, []string{"⊥2"})

	diff := Diff{Left: pa, Right: Base("S")}
	mustTuples(t, MustEval(diff, d), []string{"3"}, []string{"⊥1"})

	inter := Intersect{Left: pa, Right: Base("S")}
	mustTuples(t, MustEval(inter, d), []string{"2"})

	// Arity mismatch errors.
	if _, err := Eval(Union{Left: Base("R"), Right: Base("S")}, d); err == nil {
		t.Error("union with arity mismatch should error")
	}
	if _, err := Eval(Diff{Left: Base("R"), Right: Base("S")}, d); err == nil {
		t.Error("diff with arity mismatch should error")
	}
	if _, err := Eval(Intersect{Left: Base("R"), Right: Base("S")}, d); err == nil {
		t.Error("intersect with arity mismatch should error")
	}
}

func TestEvalBoolAndStripNulls(t *testing.T) {
	d := testDB(t)
	nonempty, err := EvalBool(Base("R"), d)
	if err != nil || !nonempty {
		t.Error("R should be nonempty")
	}
	empty, err := EvalBool(Select{Input: Base("R"), Pred: Eq(Attr("a"), LitInt(99))}, d)
	if err != nil || empty {
		t.Error("selection on 99 should be empty")
	}
	if _, err := EvalBool(Base("Nope"), d); err == nil {
		t.Error("EvalBool should propagate errors")
	}
	stripped := StripNulls(MustEval(Base("R"), d))
	mustTuples(t, stripped, []string{"1", "2"}, []string{"2", "3"})
}

// Division: the "students who take all courses" pattern.  Enroll(student,
// course) ÷ Course(course).
func TestEvalDivision(t *testing.T) {
	s := schema.MustNew(
		schema.NewRelation("Enroll", "student", "course"),
		schema.NewRelation("Course", "course"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("Enroll", "alice", "db")
	d.MustAddRow("Enroll", "alice", "os")
	d.MustAddRow("Enroll", "bob", "db")
	d.MustAddRow("Course", "db")
	d.MustAddRow("Course", "os")

	q := Division{Left: Base("Enroll"), Right: Base("Course")}
	mustTuples(t, MustEval(q, d), []string{"alice"})

	// Empty divisor: every group qualifies (universally quantified over ∅).
	empty := table.NewDatabase(s)
	empty.MustAddRow("Enroll", "carol", "db")
	mustTuples(t, MustEval(q, empty), []string{"carol"})

	// Divisor attributes must be a subset of dividend attributes.
	bad := Division{Left: Base("Course"), Right: Base("Enroll")}
	if _, err := Eval(bad, d); err == nil {
		t.Error("division with non-subset divisor should error")
	}
	if _, err := bad.OutSchema(s); err == nil {
		t.Error("OutSchema of bad division should error")
	}
	// Division that would keep no attributes errors.
	sameAttrs := Division{Left: Base("Course"), Right: Base("Course")}
	if _, err := Eval(sameAttrs, d); err == nil {
		t.Error("division with empty result schema should error")
	}
}

func TestEvalDelta(t *testing.T) {
	d := testDB(t)
	r := MustEval(Delta{Attr1: "x", Attr2: "y"}, d)
	adom := d.ActiveDomain()
	if r.Len() != len(adom) {
		t.Errorf("Δ has %d tuples, want |adom| = %d", r.Len(), len(adom))
	}
	for v := range adom {
		if !r.Contains(table.NewTuple(v, v)) {
			t.Errorf("Δ missing (%v,%v)", v, v)
		}
	}
	if _, err := Eval(Delta{Attr1: "x", Attr2: "x"}, d); err == nil {
		t.Error("Δ with identical attribute names should error")
	}
}

func TestOutSchemas(t *testing.T) {
	d := testDB(t)
	sc := d.Schema()
	cases := []struct {
		e     Expr
		attrs []string
	}{
		{Base("R"), []string{"a", "b"}},
		{Select{Input: Base("R"), Pred: True{}}, []string{"a", "b"}},
		{Project{Input: Base("R"), Attrs: []string{"b"}}, []string{"b"}},
		{Rename{Input: Base("R"), As: "X", Attrs: []string{"c", "d"}}, []string{"c", "d"}},
		{Product{Left: Base("R"), Right: Rename{Input: Base("S"), As: "T", Attrs: []string{"c"}}}, []string{"a", "b", "c"}},
		{Join{Left: Base("R"), Right: Base("S")}, []string{"a", "b"}},
		{Union{Left: Project{Input: Base("R"), Attrs: []string{"b"}}, Right: Base("S")}, []string{"b"}},
		{Diff{Left: Project{Input: Base("R"), Attrs: []string{"b"}}, Right: Base("S")}, []string{"b"}},
		{Intersect{Left: Project{Input: Base("R"), Attrs: []string{"b"}}, Right: Base("S")}, []string{"b"}},
		{Division{Left: Base("R"), Right: Base("S")}, []string{"a"}},
		{Delta{}, []string{"δ1", "δ2"}},
	}
	for _, c := range cases {
		rs, err := c.e.OutSchema(sc)
		if err != nil {
			t.Errorf("%s: OutSchema error %v", c.e, err)
			continue
		}
		if rs.Arity() != len(c.attrs) {
			t.Errorf("%s: arity %d, want %d", c.e, rs.Arity(), len(c.attrs))
			continue
		}
		for i, a := range c.attrs {
			if rs.Attrs[i] != a {
				t.Errorf("%s: attr[%d] = %q, want %q", c.e, i, rs.Attrs[i], a)
			}
		}
		// The evaluated relation's schema must agree with OutSchema arity.
		rel, err := Eval(c.e, d)
		if err != nil {
			t.Errorf("%s: Eval error %v", c.e, err)
			continue
		}
		if rel.Arity() != rs.Arity() {
			t.Errorf("%s: evaluated arity %d != schema arity %d", c.e, rel.Arity(), rs.Arity())
		}
	}
	// Error propagation through composite schemas.
	if _, err := (Select{Input: Base("Nope"), Pred: True{}}).OutSchema(sc); err == nil {
		t.Error("schema error should propagate through Select")
	}
	if _, err := (Product{Left: Base("R"), Right: Base("R")}).OutSchema(sc); err == nil {
		t.Error("product self-clash should error")
	}
	if _, err := (Union{Left: Base("R"), Right: Base("S")}).OutSchema(sc); err == nil {
		t.Error("union arity mismatch should error in OutSchema")
	}
	if _, err := (Rename{Input: Base("R"), Attrs: []string{"only-one"}}).OutSchema(sc); err == nil {
		t.Error("rename arity mismatch should error in OutSchema")
	}
}

func TestStrings(t *testing.T) {
	q := Diff{
		Left: Project{Input: Base("R"), Attrs: []string{"b"}},
		Right: Select{
			Input: Base("S"),
			Pred:  AllOf(Eq(Attr("b"), LitInt(2)), Negate(Neq(Attr("b"), LitString("x")))),
		},
	}
	s := q.String()
	want := "(π[b](R) − σ[(b=2 ∧ ¬b≠x)](S))"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
	if (Join{Left: Base("R"), Right: Base("S")}).String() != "(R ⋈ S)" {
		t.Error("join string wrong")
	}
	if (Division{Left: Base("R"), Right: Base("S")}).String() != "(R ÷ S)" {
		t.Error("division string wrong")
	}
	if (Delta{}).String() != "Δ" {
		t.Error("delta string wrong")
	}
	if (Union{Left: Base("R"), Right: Base("S")}).String() != "(R ∪ S)" {
		t.Error("union string wrong")
	}
	if (Intersect{Left: Base("R"), Right: Base("S")}).String() != "(R ∩ S)" {
		t.Error("intersect string wrong")
	}
	if (Product{Left: Base("R"), Right: Base("S")}).String() != "(R × S)" {
		t.Error("product string wrong")
	}
	if (Rename{Input: Base("R"), As: "X"}).String() != "ρ[X](R)" {
		t.Error("rename string wrong")
	}
	if (Rename{Input: Base("R"), As: "X", Attrs: []string{"c"}}).String() != "ρ[X(c)](R)" {
		t.Error("rename-with-attrs string wrong")
	}
	if AllOf().String() != "true" || AnyOf().String() != "false" {
		t.Error("empty connective strings wrong")
	}
	if AnyOf(Eq(Attr("a"), LitInt(1)), Lt(Attr("a"), LitInt(3))).String() != "(a=1 ∨ a<3)" {
		t.Error("or string wrong")
	}
	ops := []CmpOp{EQ, NEQ, LT, LEQ, GT, GEQ, CmpOp(99)}
	names := []string{"=", "≠", "<", "≤", ">", "≥", "?"}
	for i, op := range ops {
		if op.String() != names[i] {
			t.Errorf("op %d string = %q", i, op.String())
		}
	}
}

func TestPredicateSemantics(t *testing.T) {
	rs := schema.NewRelation("R", "a", "b")
	tup := table.MustParseTuple("1", "⊥1")
	if !(True{}).Holds(tup, rs) {
		t.Error("True should hold")
	}
	if !AllOf().Holds(tup, rs) {
		t.Error("empty conjunction should hold")
	}
	if AnyOf().Holds(tup, rs) {
		t.Error("empty disjunction should not hold")
	}
	cmp := Cmp{Left: Attr("a"), Op: LEQ, Right: LitInt(1)}
	if !cmp.Holds(tup, rs) {
		t.Error("1 ≤ 1 should hold")
	}
	if (Cmp{Left: Attr("a"), Op: GT, Right: LitInt(1)}).Holds(tup, rs) {
		t.Error("1 > 1 should not hold")
	}
	if !(Cmp{Left: Attr("a"), Op: GEQ, Right: LitInt(1)}).Holds(tup, rs) {
		t.Error("1 ≥ 1 should hold")
	}
	if (Cmp{Left: Attr("a"), Op: CmpOp(99), Right: LitInt(1)}).Holds(tup, rs) {
		t.Error("unknown operator should not hold")
	}
	// Unknown attribute validation on nested predicates.
	if err := AllOf(Eq(Attr("zz"), LitInt(1))).validate(rs); err == nil {
		t.Error("validate should catch unknown attribute in conjunction")
	}
	if err := AnyOf(Eq(Attr("zz"), LitInt(1))).validate(rs); err == nil {
		t.Error("validate should catch unknown attribute in disjunction")
	}
	if err := Negate(Eq(Attr("zz"), LitInt(1))).validate(rs); err == nil {
		t.Error("validate should catch unknown attribute under negation")
	}
	if err := Eq(LitInt(1), Attr("zz")).validate(rs); err == nil {
		t.Error("validate should catch unknown attribute on the right")
	}
}
