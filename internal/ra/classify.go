package ra

// Fragment classification (Section 2 and Section 6.2 of the paper).
//
// Positive relational algebra (σ=,π,×,⋈,∪, with equality-only selection
// conditions) is the algebraic counterpart of unions of conjunctive queries
// (UCQ); naïve evaluation computes certain answers for it under both OWA
// and CWA.
//
// RAcwa extends the positive algebra with the division operator Q ÷ Q'
// where the divisor Q' belongs to RA(Δ,π,×,∪) — base relations and Δ closed
// under π, × and ∪.  RAcwa coincides with Pos∀G (positive FO with universal
// guards), and naïve evaluation computes certain answers for it under CWA.

// IsPositive reports whether the expression belongs to the positive
// relational algebra: no difference, no intersection-free requirement
// (intersection is positive), no division, and selection predicates built
// from =, ∧, ∨ only.
func IsPositive(e Expr) bool {
	switch ex := e.(type) {
	case Rel, Delta:
		return true
	case Select:
		return ex.Pred.positive() && IsPositive(ex.Input)
	case Project:
		return IsPositive(ex.Input)
	case Rename:
		return IsPositive(ex.Input)
	case Product:
		return IsPositive(ex.Left) && IsPositive(ex.Right)
	case Join:
		return IsPositive(ex.Left) && IsPositive(ex.Right)
	case Union:
		return IsPositive(ex.Left) && IsPositive(ex.Right)
	case Intersect:
		return IsPositive(ex.Left) && IsPositive(ex.Right)
	case Diff, Division:
		return false
	default:
		return false
	}
}

// isDeltaPiProductUnion reports membership in RA(Δ,π,×,∪): base relations
// and Δ closed under projection, product, union and renaming (renaming is
// harmless relabelling).
func isDeltaPiProductUnion(e Expr) bool {
	switch ex := e.(type) {
	case Rel, Delta:
		return true
	case Project:
		return isDeltaPiProductUnion(ex.Input)
	case Rename:
		return isDeltaPiProductUnion(ex.Input)
	case Product:
		return isDeltaPiProductUnion(ex.Left) && isDeltaPiProductUnion(ex.Right)
	case Union:
		return isDeltaPiProductUnion(ex.Left) && isDeltaPiProductUnion(ex.Right)
	default:
		return false
	}
}

// IsRAcwa reports whether the expression belongs to RAcwa: closed under
// σ=,π,×,⋈,∪,∩ (no difference), plus division Q ÷ Q' with Q' in
// RA(Δ,π,×,∪).  Naïve evaluation computes certain answers for RAcwa
// queries under the closed-world semantics (Section 6.2).
func IsRAcwa(e Expr) bool {
	switch ex := e.(type) {
	case Rel, Delta:
		return true
	case Select:
		return ex.Pred.positive() && IsRAcwa(ex.Input)
	case Project:
		return IsRAcwa(ex.Input)
	case Rename:
		return IsRAcwa(ex.Input)
	case Product:
		return IsRAcwa(ex.Left) && IsRAcwa(ex.Right)
	case Join:
		return IsRAcwa(ex.Left) && IsRAcwa(ex.Right)
	case Union:
		return IsRAcwa(ex.Left) && IsRAcwa(ex.Right)
	case Intersect:
		return IsRAcwa(ex.Left) && IsRAcwa(ex.Right)
	case Division:
		return IsRAcwa(ex.Left) && isDeltaPiProductUnion(ex.Right)
	case Diff:
		return false
	default:
		return false
	}
}

// UsesDifference reports whether the expression contains a difference
// operator anywhere.
func UsesDifference(e Expr) bool {
	switch ex := e.(type) {
	case Rel, Delta:
		return false
	case Select:
		return UsesDifference(ex.Input)
	case Project:
		return UsesDifference(ex.Input)
	case Rename:
		return UsesDifference(ex.Input)
	case Product:
		return UsesDifference(ex.Left) || UsesDifference(ex.Right)
	case Join:
		return UsesDifference(ex.Left) || UsesDifference(ex.Right)
	case Union:
		return UsesDifference(ex.Left) || UsesDifference(ex.Right)
	case Intersect:
		return UsesDifference(ex.Left) || UsesDifference(ex.Right)
	case Division:
		return UsesDifference(ex.Left) || UsesDifference(ex.Right)
	case Diff:
		return true
	default:
		return false
	}
}

// Fragment names the finest query class an expression is known to belong
// to, for reporting purposes.
type Fragment string

// Fragments, from most to least restrictive.
const (
	FragmentPositive Fragment = "positive (UCQ)"
	FragmentRAcwa    Fragment = "RAcwa (Pos∀G)"
	FragmentFull     Fragment = "full relational algebra"
)

// Classify returns the finest fragment containing the expression.
func Classify(e Expr) Fragment {
	if IsPositive(e) {
		return FragmentPositive
	}
	if IsRAcwa(e) {
		return FragmentRAcwa
	}
	return FragmentFull
}

// NaiveEvalSound reports whether naïve evaluation (followed by null
// stripping) is guaranteed by the results of Section 6.2 to compute certain
// answers under the given closed-world flag: positive queries under OWA,
// positive and RAcwa queries under CWA.
func NaiveEvalSound(e Expr, closedWorld bool) bool {
	if IsPositive(e) {
		return true
	}
	if closedWorld && IsRAcwa(e) {
		return true
	}
	return false
}

// BaseRelations returns the names of the base relations the expression
// reads, in first-mention order.  wholeDB is set when the answer depends
// on more than those relations' contents: the Δ operator bakes in the
// active domain of the whole database, and unknown operators are treated
// conservatively.  Plan-cache validation (package certain) and maintained
// views (package inc) share this walker to decide which updates can
// affect a query.
func BaseRelations(e Expr) (names []string, wholeDB bool) {
	seen := map[string]bool{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case Rel:
			if !seen[ex.Name] {
				seen[ex.Name] = true
				names = append(names, ex.Name)
			}
		case Select:
			walk(ex.Input)
		case Project:
			walk(ex.Input)
		case Rename:
			walk(ex.Input)
		case Product:
			walk(ex.Left)
			walk(ex.Right)
		case Join:
			walk(ex.Left)
			walk(ex.Right)
		case Union:
			walk(ex.Left)
			walk(ex.Right)
		case Diff:
			walk(ex.Left)
			walk(ex.Right)
		case Intersect:
			walk(ex.Left)
			walk(ex.Right)
		case Division:
			walk(ex.Left)
			walk(ex.Right)
		default:
			wholeDB = true
		}
	}
	walk(e)
	return names, wholeDB
}
