package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/workload"
)

func TestReadWriteRelationRoundTrip(t *testing.T) {
	rel := table.NewRelation(schema.NewRelation("Pay", "p_id", "order", "amount"))
	rel.MustAdd(table.MustParseTuple("pid1", "⊥1", "100"))
	rel.MustAdd(table.MustParseTuple("pid2", "oid2", "250"))

	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "p_id,order,amount\n") {
		t.Errorf("missing header: %q", out)
	}
	got, err := ReadRelation(strings.NewReader(out), "Pay")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(rel) {
		t.Errorf("round trip mismatch: %v vs %v", got, rel)
	}
	if got.Schema().Attrs[1] != "order" {
		t.Error("attribute names lost")
	}
}

func TestReadRelationErrors(t *testing.T) {
	if _, err := ReadRelation(strings.NewReader(""), "R"); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadRelation(strings.NewReader("a,b\n1\n"), "R"); err == nil {
		t.Error("row with wrong field count should error")
	}
	if _, err := ReadRelation(strings.NewReader("a\n\"unterminated\n"), "R"); err == nil {
		t.Error("bad CSV should error")
	}
	// A parseable file with a bad value literal.
	if _, err := ReadRelation(strings.NewReader("a\n⊥x\n"), "R"); err == nil {
		t.Error("bad null literal should error")
	}
}

func TestDatabaseDirRoundTrip(t *testing.T) {
	d, _ := workload.Orders(workload.OrdersConfig{Orders: 25, PaidFraction: 0.6, NullRate: 0.4, Seed: 3})
	dir := t.TempDir()
	if err := WriteDatabaseDir(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabaseDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Error("database round trip mismatch")
	}
	if got.Schema().MustRelation("Pay").Attrs[1] != "order" {
		t.Error("schema attribute names lost")
	}
}

func TestReadDatabaseDirErrors(t *testing.T) {
	if _, err := ReadDatabaseDir("/nonexistent/dir"); err == nil {
		t.Error("missing dir should error")
	}
	empty := t.TempDir()
	if _, err := ReadDatabaseDir(empty); err == nil {
		t.Error("dir without csv files should error")
	}
	// A directory with a malformed CSV.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "R.csv"), []byte("a,b\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatabaseDir(bad); err == nil {
		t.Error("malformed relation should error")
	}
	// Non-csv files and subdirectories are ignored.
	mixed := t.TempDir()
	if err := os.WriteFile(filepath.Join(mixed, "notes.txt"), []byte("ignore"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(mixed, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mixed, "R.csv"), []byte("a\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDatabaseDir(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema().Len() != 1 || d.Relation("R").Len() != 1 {
		t.Errorf("unexpected database: %v", d)
	}
}

func TestWriteDatabaseDirError(t *testing.T) {
	d, _ := workload.Orders(workload.OrdersConfig{Orders: 2, PaidFraction: 1, NullRate: 0, Seed: 1})
	// Writing into a path that is a file should fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteDatabaseDir(blocker, d); err == nil {
		t.Error("writing into a file path should error")
	}
}
