package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/workload"
)

func TestReadWriteRelationRoundTrip(t *testing.T) {
	rel := table.NewRelation(schema.NewRelation("Pay", "p_id", "order", "amount"))
	rel.MustAdd(table.MustParseTuple("pid1", "⊥1", "100"))
	rel.MustAdd(table.MustParseTuple("pid2", "oid2", "250"))

	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "p_id,order,amount\n") {
		t.Errorf("missing header: %q", out)
	}
	got, err := ReadRelation(strings.NewReader(out), "Pay")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(rel) {
		t.Errorf("round trip mismatch: %v vs %v", got, rel)
	}
	if got.Schema().Attrs[1] != "order" {
		t.Error("attribute names lost")
	}
}

func TestReadRelationErrors(t *testing.T) {
	if _, err := ReadRelation(strings.NewReader(""), "R"); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadRelation(strings.NewReader("a,b\n1\n"), "R"); err == nil {
		t.Error("row with wrong field count should error")
	}
	if _, err := ReadRelation(strings.NewReader("a\n\"unterminated\n"), "R"); err == nil {
		t.Error("bad CSV should error")
	}
	// A parseable file with a bad value literal.
	if _, err := ReadRelation(strings.NewReader("a\n⊥x\n"), "R"); err == nil {
		t.Error("bad null literal should error")
	}
}

// TestNullMarkerCollision is the regression test for the duplicate-null-
// marker bug: an unlabelled NULL is assigned a fresh id by the process-wide
// counter, and when that id coincides with an explicit ⊥i elsewhere in the
// read, the two columns — which the user meant as distinct unknowns —
// silently became the SAME marked null.  Such reads must fail instead.
func TestNullMarkerCollision(t *testing.T) {
	// Explicit marker first, colliding NULL later.  After a counter reset
	// the first unlabelled NULL is assigned id 1, clashing with ⊥1.
	value.ResetFreshNulls()
	_, err := ReadRelation(strings.NewReader("a,b\n⊥1,x\nNULL,y\n"), "R")
	if err == nil {
		t.Fatal("NULL colliding with an explicit ⊥1 must be rejected")
	}
	if !strings.Contains(err.Error(), "⊥1") || !strings.Contains(err.Error(), "collid") {
		t.Errorf("collision error should name the marker, got: %v", err)
	}

	// The other order: NULL first, explicit marker after.
	value.ResetFreshNulls()
	_, err = ReadRelation(strings.NewReader("a,b\nNULL,x\n⊥1,y\n"), "R")
	if err == nil {
		t.Fatal("explicit ⊥1 colliding with an earlier NULL must be rejected")
	}

	// Repeated explicit markers are the point of marked nulls — fine.
	value.ResetFreshNulls()
	rel, err := ReadRelation(strings.NewReader("a,b\n⊥1,x\n⊥1,y\n"), "R")
	if err != nil {
		t.Fatalf("repeated explicit markers must stay legal: %v", err)
	}
	if len(rel.Nulls()) != 1 {
		t.Errorf("⊥1 used twice is one null, got %d", len(rel.Nulls()))
	}

	// Non-colliding mixes stay legal and keep the nulls distinct.
	value.ResetFreshNulls()
	rel, err = ReadRelation(strings.NewReader("a,b\n⊥7,x\nNULL,y\n"), "R")
	if err != nil {
		t.Fatalf("non-colliding NULL and ⊥7 must be accepted: %v", err)
	}
	if len(rel.Nulls()) != 2 {
		t.Errorf("expected 2 distinct nulls, got %d", len(rel.Nulls()))
	}
}

// TestNullMarkerCollisionAcrossFiles checks the database-wide scope of the
// collision check: nulls are shared across relations, so a NULL in one
// file clashing with a ⊥i in another must fail the whole directory read.
func TestNullMarkerCollisionAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "R.csv"), []byte("a\n⊥1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "S.csv"), []byte("b\nNULL\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	value.ResetFreshNulls()
	if _, err := ReadDatabaseDir(dir); err == nil {
		t.Fatal("cross-file marker collision must be rejected")
	}
}

func TestDatabaseDirRoundTrip(t *testing.T) {
	d, _ := workload.Orders(workload.OrdersConfig{Orders: 25, PaidFraction: 0.6, NullRate: 0.4, Seed: 3})
	dir := t.TempDir()
	if err := WriteDatabaseDir(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabaseDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Error("database round trip mismatch")
	}
	if got.Schema().MustRelation("Pay").Attrs[1] != "order" {
		t.Error("schema attribute names lost")
	}
}

func TestReadDatabaseDirErrors(t *testing.T) {
	if _, err := ReadDatabaseDir("/nonexistent/dir"); err == nil {
		t.Error("missing dir should error")
	}
	empty := t.TempDir()
	if _, err := ReadDatabaseDir(empty); err == nil {
		t.Error("dir without csv files should error")
	}
	// A directory with a malformed CSV.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "R.csv"), []byte("a,b\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatabaseDir(bad); err == nil {
		t.Error("malformed relation should error")
	}
	// Non-csv files and subdirectories are ignored.
	mixed := t.TempDir()
	if err := os.WriteFile(filepath.Join(mixed, "notes.txt"), []byte("ignore"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(mixed, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mixed, "R.csv"), []byte("a\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDatabaseDir(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema().Len() != 1 || d.Relation("R").Len() != 1 {
		t.Errorf("unexpected database: %v", d)
	}
}

func TestWriteDatabaseDirError(t *testing.T) {
	d, _ := workload.Orders(workload.OrdersConfig{Orders: 2, PaidFraction: 1, NullRate: 0, Seed: 1})
	// Writing into a path that is a file should fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteDatabaseDir(blocker, d); err == nil {
		t.Error("writing into a file path should error")
	}
}
