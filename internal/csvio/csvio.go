// Package csvio reads and writes relations as CSV files with a header row
// of attribute names.  Null markers follow the textual conventions of
// package value: "⊥7" or "_:7" for the marked null with id 7, and "NULL"
// for a fresh null.  This is the on-disk format used by the incq CLI.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// nullTracker records where every null marker of a database read came
// from, so collisions between explicit markers (⊥7, _:7) and the
// process-assigned ids of unlabelled NULLs can be rejected.  An unlabelled
// NULL always means a *distinct* unknown; if its assigned id coincides
// with an explicit ⊥i used elsewhere in the same read, the two columns
// would silently become the SAME null — changing the query semantics — so
// the read fails instead.  The tracker is scoped to one logical read: a
// single ReadRelation call, or a whole ReadDatabaseDir (nulls are shared
// database-wide).
type nullTracker struct {
	explicit map[uint64]string // null id → "relation row N" of an explicit marker
	fresh    map[uint64]string // null id → location of an unlabelled NULL
}

func newNullTracker() *nullTracker {
	return &nullTracker{explicit: map[uint64]string{}, fresh: map[uint64]string{}}
}

// isFreshMarker reports whether the textual field is an unlabelled null
// (which value.Parse turns into a fresh marked null).
func isFreshMarker(field string) bool { return field == "NULL" || field == "null" }

// record notes one parsed null and returns an error on an explicit/fresh
// id collision.
func (nt *nullTracker) record(id uint64, fresh bool, where string) error {
	if fresh {
		if prev, ok := nt.explicit[id]; ok {
			return fmt.Errorf("csvio: %s: unlabelled NULL was assigned id %d, colliding with the explicit marker ⊥%d at %s; the two would become the same null — renumber the explicit markers (e.g. ⊥%d00) or replace NULL with a distinct ⊥i",
				where, id, id, prev, id)
		}
		nt.fresh[id] = where
		return nil
	}
	if prev, ok := nt.fresh[id]; ok {
		return fmt.Errorf("csvio: %s: explicit marker ⊥%d collides with the id assigned to the unlabelled NULL at %s; the two would become the same null — renumber the explicit markers (e.g. ⊥%d00) or replace NULL with a distinct ⊥i",
			where, id, prev, id)
	}
	nt.explicit[id] = where
	return nil
}

// ReadRelation reads a relation from CSV: the first record is the header of
// attribute names, every following record is a tuple.  Null markers that
// collide — an explicit ⊥i next to an unlabelled NULL that happens to be
// assigned the same id — are rejected; see nullTracker.
func ReadRelation(r io.Reader, name string) (*table.Relation, error) {
	return readRelation(r, name, newNullTracker())
}

func readRelation(r io.Reader, name string, nulls *nullTracker) (*table.Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvio: relation %q has no header row", name)
	}
	header := records[0]
	if len(header) == 0 {
		return nil, fmt.Errorf("csvio: relation %q has an empty header", name)
	}
	rel := table.NewRelation(schema.NewRelation(name, header...))
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: relation %q row %d has %d fields, want %d", name, i+2, len(rec), len(header))
		}
		t := make(table.Tuple, len(rec))
		for j, field := range rec {
			v, err := value.Parse(field)
			if err != nil {
				return nil, fmt.Errorf("csvio: relation %q row %d: %w", name, i+2, err)
			}
			if v.IsNull() {
				where := fmt.Sprintf("relation %q row %d", name, i+2)
				if err := nulls.record(v.NullID(), isFreshMarker(field), where); err != nil {
					return nil, err
				}
			}
			t[j] = v
		}
		if err := rel.Add(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// WriteRelation writes the relation as CSV (header plus tuples in canonical
// order).
func WriteRelation(w io.Writer, rel *table.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Attrs); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	for _, t := range rel.Tuples() {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDatabaseDir loads every *.csv file of a directory as a relation named
// after the file (without extension) and assembles a database.
func ReadDatabaseDir(dir string) (*table.Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("csvio: no .csv files in %q", dir)
	}
	var rels []*table.Relation
	var schemas []schema.Relation
	// Nulls are shared database-wide, so marker collisions are checked
	// across all files of the directory, not per relation.
	nulls := newNullTracker()
	for _, fn := range names {
		f, err := os.Open(dir + string(os.PathSeparator) + fn)
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		rel, err := readRelation(f, strings.TrimSuffix(fn, ".csv"), nulls)
		f.Close()
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel)
		schemas = append(schemas, rel.Schema())
	}
	s, err := schema.New(schemas...)
	if err != nil {
		return nil, err
	}
	d := table.NewDatabase(s)
	for _, rel := range rels {
		if err := d.SetRelation(rel.Name(), rel); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// WriteDatabaseDir writes every relation of the database as dir/<name>.csv.
func WriteDatabaseDir(dir string, d *table.Database) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	for _, name := range d.RelationNames() {
		f, err := os.Create(dir + string(os.PathSeparator) + name + ".csv")
		if err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
		if err := WriteRelation(f, d.Relation(name)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	return nil
}
