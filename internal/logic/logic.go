// Package logic implements first-order formulae over relational
// vocabularies, their evaluation with active-domain semantics, the syntactic
// fragments the paper works with (existential positive ≡ UCQ, positive FO,
// and Pos∀G — positive formulae with universal guards), and the logical
// descriptions of incomplete databases of Section 4:
//
//	δD       = ∃x̄ PosDiag(D)                      with ModC(δD) = [[D]]owa
//	δD^cwa   = ∃x̄ (PosDiag(D) ∧ ⋀_R ∀ȳ(R(ȳ) → ∨_t ȳ=t))   with ModC = [[D]]cwa
//
// Formulae double as the "knowledge" representation of certainty (certainK)
// in the representation-system framework of Section 5.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"incdata/internal/table"
	"incdata/internal/value"
)

// Term is a variable or a constant appearing in a formula.
type Term struct {
	Var   string
	Const value.Value
	IsVar bool
}

// V builds a variable term.
func V(name string) Term { return Term{Var: name, IsVar: true} }

// C builds a constant term.
func C(v value.Value) Term { return Term{Const: v} }

// CInt builds an integer-constant term.
func CInt(i int64) Term { return C(value.Int(i)) }

// CString builds a string-constant term.
func CString(s string) Term { return C(value.String(s)) }

// String renders the term.
func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Const.String()
}

// Env is a variable assignment used during evaluation.
type Env map[string]value.Value

func (t Term) eval(env Env) (value.Value, error) {
	if !t.IsVar {
		return t.Const, nil
	}
	v, ok := env[t.Var]
	if !ok {
		return value.Value{}, fmt.Errorf("logic: unbound variable %s", t.Var)
	}
	return v, nil
}

// Formula is a first-order formula.
type Formula interface {
	// Eval evaluates the formula on a database under an environment
	// binding its free variables, with active-domain quantification.
	Eval(d *table.Database, env Env) (bool, error)
	// FreeVars adds the formula's free variables to the set.
	FreeVars(bound map[string]bool, free map[string]bool)
	// String renders the formula.
	String() string
}

// Atom is R(t1,...,tk).
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, args ...Term) Atom { return Atom{Rel: rel, Args: args} }

// Eval implements Formula.
func (a Atom) Eval(d *table.Database, env Env) (bool, error) {
	rel := d.Relation(a.Rel)
	if rel == nil {
		return false, fmt.Errorf("logic: unknown relation %q", a.Rel)
	}
	if rel.Arity() != len(a.Args) {
		return false, fmt.Errorf("logic: atom %s has %d arguments, relation has arity %d", a.Rel, len(a.Args), rel.Arity())
	}
	tuple := make(table.Tuple, len(a.Args))
	for i, arg := range a.Args {
		v, err := arg.eval(env)
		if err != nil {
			return false, err
		}
		tuple[i] = v
	}
	return rel.Contains(tuple), nil
}

// FreeVars implements Formula.
func (a Atom) FreeVars(bound, free map[string]bool) {
	for _, arg := range a.Args {
		if arg.IsVar && !bound[arg.Var] {
			free[arg.Var] = true
		}
	}
}

// String implements Formula.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		parts[i] = arg.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Equals is t1 = t2.
type Equals struct {
	Left, Right Term
}

// Eq builds an equality formula.
func Eq(l, r Term) Equals { return Equals{Left: l, Right: r} }

// Eval implements Formula.
func (e Equals) Eval(_ *table.Database, env Env) (bool, error) {
	l, err := e.Left.eval(env)
	if err != nil {
		return false, err
	}
	r, err := e.Right.eval(env)
	if err != nil {
		return false, err
	}
	return l == r, nil
}

// FreeVars implements Formula.
func (e Equals) FreeVars(bound, free map[string]bool) {
	for _, t := range []Term{e.Left, e.Right} {
		if t.IsVar && !bound[t.Var] {
			free[t.Var] = true
		}
	}
}

// String implements Formula.
func (e Equals) String() string { return e.Left.String() + "=" + e.Right.String() }

// Not is negation.
type Not struct{ Body Formula }

// Eval implements Formula.
func (n Not) Eval(d *table.Database, env Env) (bool, error) {
	b, err := n.Body.Eval(d, env)
	return !b, err
}

// FreeVars implements Formula.
func (n Not) FreeVars(bound, free map[string]bool) { n.Body.FreeVars(bound, free) }

// String implements Formula.
func (n Not) String() string { return "¬" + n.Body.String() }

// And is conjunction.
type And struct{ Conjuncts []Formula }

// AllOf builds a conjunction.
func AllOf(fs ...Formula) And { return And{Conjuncts: fs} }

// Eval implements Formula.
func (a And) Eval(d *table.Database, env Env) (bool, error) {
	for _, f := range a.Conjuncts {
		b, err := f.Eval(d, env)
		if err != nil {
			return false, err
		}
		if !b {
			return false, nil
		}
	}
	return true, nil
}

// FreeVars implements Formula.
func (a And) FreeVars(bound, free map[string]bool) {
	for _, f := range a.Conjuncts {
		f.FreeVars(bound, free)
	}
}

// String implements Formula.
func (a And) String() string { return joinFormulas(a.Conjuncts, " ∧ ", "true") }

// Or is disjunction.
type Or struct{ Disjuncts []Formula }

// AnyOf builds a disjunction.
func AnyOf(fs ...Formula) Or { return Or{Disjuncts: fs} }

// Eval implements Formula.
func (o Or) Eval(d *table.Database, env Env) (bool, error) {
	for _, f := range o.Disjuncts {
		b, err := f.Eval(d, env)
		if err != nil {
			return false, err
		}
		if b {
			return true, nil
		}
	}
	return false, nil
}

// FreeVars implements Formula.
func (o Or) FreeVars(bound, free map[string]bool) {
	for _, f := range o.Disjuncts {
		f.FreeVars(bound, free)
	}
}

// String implements Formula.
func (o Or) String() string { return joinFormulas(o.Disjuncts, " ∨ ", "false") }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Exists is existential quantification over active-domain values.
type Exists struct {
	Vars []string
	Body Formula
}

// Eval implements Formula.
func (e Exists) Eval(d *table.Database, env Env) (bool, error) {
	return quantify(d, env, e.Vars, e.Body, true)
}

// FreeVars implements Formula.
func (e Exists) FreeVars(bound, free map[string]bool) {
	inner := cloneSet(bound)
	for _, v := range e.Vars {
		inner[v] = true
	}
	e.Body.FreeVars(inner, free)
}

// String implements Formula.
func (e Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + " " + e.Body.String()
}

// ForAll is universal quantification over active-domain values.
type ForAll struct {
	Vars []string
	Body Formula
}

// Eval implements Formula.
func (f ForAll) Eval(d *table.Database, env Env) (bool, error) {
	return quantify(d, env, f.Vars, f.Body, false)
}

// FreeVars implements Formula.
func (f ForAll) FreeVars(bound, free map[string]bool) {
	inner := cloneSet(bound)
	for _, v := range f.Vars {
		inner[v] = true
	}
	f.Body.FreeVars(inner, free)
}

// String implements Formula.
func (f ForAll) String() string {
	return "∀" + strings.Join(f.Vars, ",") + " " + f.Body.String()
}

// ForAllGuard is the guarded universal quantifier of Pos∀G formulae:
// ∀x̄ (R(x̄) → body).  The guard relation R ranges over the tuples actually
// present in the database, so evaluation never leaves the active domain.
type ForAllGuard struct {
	Rel  string
	Vars []string
	Body Formula
}

// Eval implements Formula.
func (g ForAllGuard) Eval(d *table.Database, env Env) (bool, error) {
	rel := d.Relation(g.Rel)
	if rel == nil {
		return false, fmt.Errorf("logic: unknown relation %q", g.Rel)
	}
	if rel.Arity() != len(g.Vars) {
		return false, fmt.Errorf("logic: guard %s binds %d variables, relation has arity %d", g.Rel, len(g.Vars), rel.Arity())
	}
	ok := true
	var evalErr error
	rel.Each(func(t table.Tuple) bool {
		inner := cloneEnv(env)
		for i, v := range g.Vars {
			inner[v] = t[i]
		}
		b, err := g.Body.Eval(d, inner)
		if err != nil {
			evalErr = err
			return false
		}
		if !b {
			ok = false
			return false
		}
		return true
	})
	if evalErr != nil {
		return false, evalErr
	}
	return ok, nil
}

// FreeVars implements Formula.
func (g ForAllGuard) FreeVars(bound, free map[string]bool) {
	inner := cloneSet(bound)
	for _, v := range g.Vars {
		inner[v] = true
	}
	g.Body.FreeVars(inner, free)
}

// String implements Formula.
func (g ForAllGuard) String() string {
	return "∀" + strings.Join(g.Vars, ",") + "(" + g.Rel + "(" + strings.Join(g.Vars, ",") + ") → " + g.Body.String() + ")"
}

func quantify(d *table.Database, env Env, vars []string, body Formula, existential bool) (bool, error) {
	dom := table.SortedValues(d.ActiveDomain())
	if len(vars) == 0 {
		return body.Eval(d, env)
	}
	cur := cloneEnv(env)
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(vars) {
			return body.Eval(d, cur)
		}
		for _, v := range dom {
			cur[vars[i]] = v
			b, err := rec(i + 1)
			if err != nil {
				return false, err
			}
			if existential && b {
				return true, nil
			}
			if !existential && !b {
				return false, nil
			}
		}
		delete(cur, vars[i])
		return !existential, nil
	}
	return rec(0)
}

func cloneEnv(env Env) Env {
	out := make(Env, len(env)+2)
	for k, v := range env {
		out[k] = v
	}
	return out
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s)+2)
	for k, v := range s {
		out[k] = v
	}
	return out
}

// FreeVariables returns the free variables of a formula, sorted.
func FreeVariables(f Formula) []string {
	free := map[string]bool{}
	f.FreeVars(map[string]bool{}, free)
	out := make([]string, 0, len(free))
	for v := range free {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// EvalSentence evaluates a sentence (a formula without free variables).
func EvalSentence(f Formula, d *table.Database) (bool, error) {
	if fv := FreeVariables(f); len(fv) > 0 {
		return false, fmt.Errorf("logic: formula has free variables %v", fv)
	}
	return f.Eval(d, Env{})
}
