package logic

import (
	"fmt"
	"sort"

	"incdata/internal/table"
	"incdata/internal/value"
)

// Diagrams: the logical descriptions δD of an incomplete database D from
// Section 4 and Section 5.2 of the paper.

// nullVars assigns a variable name x<i> to each null of D, deterministically.
func nullVars(d *table.Database) (map[value.Value]string, []string) {
	nulls := d.SortedNulls()
	m := make(map[value.Value]string, len(nulls))
	names := make([]string, 0, len(nulls))
	for _, n := range nulls {
		name := fmt.Sprintf("x%d", n.NullID())
		m[n] = name
		names = append(names, name)
	}
	sort.Strings(names)
	return m, names
}

func termFor(v value.Value, vars map[value.Value]string) Term {
	if v.IsNull() {
		return V(vars[v])
	}
	return C(v)
}

// PositiveDiagram returns PosDiag(D): the conjunction of all atoms of D with
// nulls replaced by variables, plus the list of those variables.
func PositiveDiagram(d *table.Database) (And, []string) {
	vars, names := nullVars(d)
	var conj []Formula
	for _, relName := range d.RelationNames() {
		rel := d.Relation(relName)
		for _, t := range rel.Tuples() {
			args := make([]Term, len(t))
			for i, v := range t {
				args[i] = termFor(v, vars)
			}
			conj = append(conj, NewAtom(relName, args...))
		}
	}
	return AllOf(conj...), names
}

// OWADiagram returns δD = ∃x̄ PosDiag(D), the existential positive sentence
// whose complete models are exactly [[D]]owa (equation (5) of the paper).
func OWADiagram(d *table.Database) Formula {
	diag, vars := PositiveDiagram(d)
	if len(vars) == 0 {
		return diag
	}
	return Exists{Vars: vars, Body: diag}
}

// CWADiagram returns δD^cwa: the Pos∀G sentence
//
//	∃x̄ ( PosDiag(D) ∧ ⋀_R ∀ȳ ( R(ȳ) → ∨_{t∈R_D} ȳ = t ) )
//
// whose complete models are exactly [[D]]cwa (Section 5.2).
func CWADiagram(d *table.Database) Formula {
	vars, names := nullVars(d)
	diag, _ := PositiveDiagram(d)
	conj := []Formula{diag}
	for _, relName := range d.RelationNames() {
		rel := d.Relation(relName)
		arity := rel.Arity()
		yVars := make([]string, arity)
		for i := range yVars {
			yVars[i] = fmt.Sprintf("y%s%d", relName, i)
		}
		var disj []Formula
		for _, t := range rel.Tuples() {
			var eqs []Formula
			for i, v := range t {
				eqs = append(eqs, Eq(V(yVars[i]), termFor(v, vars)))
			}
			disj = append(disj, AllOf(eqs...))
		}
		conj = append(conj, ForAllGuard{Rel: relName, Vars: yVars, Body: AnyOf(disj...)})
	}
	body := AllOf(conj...)
	if len(names) == 0 {
		return body
	}
	return Exists{Vars: names, Body: body}
}

// ModelsOWA reports whether the complete database world is a model of the
// OWA diagram of d, i.e. whether world ∈ [[d]]owa by the logical route.  It
// is the logical counterpart of semantics.Represents(OWA, d, world) and the
// two are cross-checked in tests.
func ModelsOWA(d, world *table.Database) (bool, error) {
	return EvalSentence(OWADiagram(d), world)
}

// ModelsCWA reports whether world is a model of the CWA diagram of d.
func ModelsCWA(d, world *table.Database) (bool, error) {
	return EvalSentence(CWADiagram(d), world)
}
