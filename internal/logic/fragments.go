package logic

// Syntactic fragments used in the paper.
//
//   - Existential positive formulae (∃,∧,∨ over atoms and equalities) have
//     exactly the expressive power of unions of conjunctive queries; they
//     form a representation system under OWA and are preserved under
//     homomorphisms (Rossman's theorem), so naïve evaluation works for them
//     under OWA.
//   - Positive formulae additionally allow ∀.
//   - Pos∀G (positive with universal guards) allows ∀ only in the guarded
//     form ∀x̄(R(x̄) → φ); they are preserved under strong onto
//     homomorphisms, form a representation system under CWA, and coincide
//     with the algebra RAcwa, so naïve evaluation works for them under CWA.

// IsExistentialPositive reports membership in the ∃,∧,∨ fragment (UCQ).
func IsExistentialPositive(f Formula) bool {
	switch ff := f.(type) {
	case Atom, Equals:
		return true
	case And:
		for _, g := range ff.Conjuncts {
			if !IsExistentialPositive(g) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range ff.Disjuncts {
			if !IsExistentialPositive(g) {
				return false
			}
		}
		return true
	case Exists:
		return IsExistentialPositive(ff.Body)
	default:
		return false
	}
}

// IsPositive reports membership in positive FO: no negation, quantifiers
// unrestricted (the guarded universal is a special case of ∀).
func IsPositive(f Formula) bool {
	switch ff := f.(type) {
	case Atom, Equals:
		return true
	case And:
		for _, g := range ff.Conjuncts {
			if !IsPositive(g) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range ff.Disjuncts {
			if !IsPositive(g) {
				return false
			}
		}
		return true
	case Exists:
		return IsPositive(ff.Body)
	case ForAll:
		return IsPositive(ff.Body)
	case ForAllGuard:
		return IsPositive(ff.Body)
	default:
		return false
	}
}

// IsPosForallG reports membership in Pos∀G: positive formulae whose only
// universal quantification is the guarded form ∀x̄(R(x̄) → φ), represented
// here by the ForAllGuard node.
func IsPosForallG(f Formula) bool {
	switch ff := f.(type) {
	case Atom, Equals:
		return true
	case And:
		for _, g := range ff.Conjuncts {
			if !IsPosForallG(g) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range ff.Disjuncts {
			if !IsPosForallG(g) {
				return false
			}
		}
		return true
	case Exists:
		return IsPosForallG(ff.Body)
	case ForAllGuard:
		return IsPosForallG(ff.Body)
	case ForAll, Not:
		return false
	default:
		return false
	}
}

// Fragment names the finest fragment a formula is known to belong to.
type Fragment string

// Fragments, from most to least restrictive.
const (
	FragmentUCQ      Fragment = "existential positive (UCQ)"
	FragmentPosGuard Fragment = "Pos∀G"
	FragmentPositive Fragment = "positive FO"
	FragmentFO       Fragment = "first-order"
)

// Classify returns the finest fragment containing f.
func Classify(f Formula) Fragment {
	if IsExistentialPositive(f) {
		return FragmentUCQ
	}
	if IsPosForallG(f) {
		return FragmentPosGuard
	}
	if IsPositive(f) {
		return FragmentPositive
	}
	return FragmentFO
}
