package logic

import (
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
)

func db(t *testing.T, arity int, rows ...[]string) *table.Database {
	t.Helper()
	s := schema.MustNew(schema.WithArity("R", arity))
	d := table.NewDatabase(s)
	for _, r := range rows {
		d.MustAddRow("R", r...)
	}
	return d
}

func mustEval(t *testing.T, f Formula, d *table.Database) bool {
	t.Helper()
	b, err := EvalSentence(f, d)
	if err != nil {
		t.Fatalf("EvalSentence(%s): %v", f, err)
	}
	return b
}

func TestAtomAndEquality(t *testing.T) {
	d := db(t, 2, []string{"1", "2"}, []string{"2", "3"})
	if !mustEval(t, NewAtom("R", CInt(1), CInt(2)), d) {
		t.Error("R(1,2) should hold")
	}
	if mustEval(t, NewAtom("R", CInt(1), CInt(3)), d) {
		t.Error("R(1,3) should not hold")
	}
	if !mustEval(t, Eq(CInt(5), CInt(5)), d) || mustEval(t, Eq(CInt(5), CInt(6)), d) {
		t.Error("equality on constants wrong")
	}
	if _, err := EvalSentence(NewAtom("Nope", CInt(1)), d); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := EvalSentence(NewAtom("R", CInt(1)), d); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := (Atom{Rel: "R", Args: []Term{V("x"), CInt(1)}}).Eval(d, Env{}); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestConnectivesAndQuantifiers(t *testing.T) {
	d := db(t, 2, []string{"1", "2"}, []string{"2", "3"})
	// ∃x R(1,x) ∧ R(x,3): true with x=2.
	f := Exists{Vars: []string{"x"}, Body: AllOf(NewAtom("R", CInt(1), V("x")), NewAtom("R", V("x"), CInt(3)))}
	if !mustEval(t, f, d) {
		t.Errorf("%s should hold", f)
	}
	// ∃x R(3,x): false.
	if mustEval(t, Exists{Vars: []string{"x"}, Body: NewAtom("R", CInt(3), V("x"))}, d) {
		t.Error("∃x R(3,x) should fail")
	}
	// ∀x,y (R(x,y) → x ≠ y) written with ¬ and ∨ via general ForAll.
	g := ForAll{Vars: []string{"x", "y"}, Body: Or{Disjuncts: []Formula{
		Not{Body: NewAtom("R", V("x"), V("y"))},
		Not{Body: Eq(V("x"), V("y"))},
	}}}
	if !mustEval(t, g, d) {
		t.Error("no reflexive tuple, so formula should hold")
	}
	d.MustAddRow("R", "4", "4")
	if mustEval(t, g, d) {
		t.Error("after adding (4,4) the formula should fail")
	}
	// Empty disjunction false, empty conjunction true.
	if mustEval(t, AnyOf(), d) || !mustEval(t, AllOf(), d) {
		t.Error("empty connective semantics wrong")
	}
	// Quantifier with no variables degenerates to its body.
	if !mustEval(t, Exists{Body: AllOf()}, d) || !mustEval(t, ForAll{Body: AllOf()}, d) {
		t.Error("quantifier with no vars should evaluate body")
	}
	// Error propagation through connectives/quantifiers.
	bad := NewAtom("Nope", CInt(1))
	if _, err := EvalSentence(AllOf(bad), d); err == nil {
		t.Error("error should propagate through ∧")
	}
	if _, err := EvalSentence(AnyOf(bad), d); err == nil {
		t.Error("error should propagate through ∨")
	}
	if _, err := EvalSentence(Not{Body: bad}, d); err == nil {
		t.Error("error should propagate through ¬")
	}
	if _, err := EvalSentence(Exists{Vars: []string{"x"}, Body: bad}, d); err == nil {
		t.Error("error should propagate through ∃")
	}
	if _, err := EvalSentence(Equals{Left: V("x"), Right: CInt(1)}, d); err == nil {
		t.Error("free variable sentence should be rejected")
	}
}

func TestForAllGuard(t *testing.T) {
	d := db(t, 2, []string{"1", "2"}, []string{"1", "3"})
	// ∀x,y (R(x,y) → x = 1): holds.
	g := ForAllGuard{Rel: "R", Vars: []string{"x", "y"}, Body: Eq(V("x"), CInt(1))}
	if !mustEval(t, g, d) {
		t.Error("guarded universal should hold")
	}
	d.MustAddRow("R", "2", "2")
	if mustEval(t, g, d) {
		t.Error("guarded universal should fail after adding (2,2)")
	}
	if _, err := EvalSentence(ForAllGuard{Rel: "Nope", Vars: []string{"x"}, Body: AllOf()}, d); err == nil {
		t.Error("unknown guard relation should error")
	}
	if _, err := EvalSentence(ForAllGuard{Rel: "R", Vars: []string{"x"}, Body: AllOf()}, d); err == nil {
		t.Error("guard arity mismatch should error")
	}
	if _, err := EvalSentence(ForAllGuard{Rel: "R", Vars: []string{"x", "y"}, Body: NewAtom("Nope", V("x"))}, d); err == nil {
		t.Error("body error should propagate")
	}
	// Guard over an empty relation is vacuously true.
	empty := db(t, 2)
	if !mustEval(t, ForAllGuard{Rel: "R", Vars: []string{"x", "y"}, Body: AnyOf()}, empty) {
		t.Error("guard over empty relation should be vacuously true")
	}
}

func TestFreeVariables(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: AllOf(
		NewAtom("R", V("x"), V("y")),
		Eq(V("z"), CInt(1)),
		ForAllGuard{Rel: "R", Vars: []string{"u", "v"}, Body: Eq(V("u"), V("y"))},
		ForAll{Vars: []string{"w"}, Body: Not{Body: Eq(V("w"), V("x"))}},
	)}
	got := FreeVariables(f)
	want := []string{"y", "z"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FreeVariables = %v, want %v", got, want)
	}
}

func TestStrings(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: AllOf(
		NewAtom("R", CInt(1), V("x")),
		AnyOf(Eq(V("x"), CInt(2)), Not{Body: NewAtom("R", V("x"), V("x"))}),
		ForAllGuard{Rel: "R", Vars: []string{"y", "z"}, Body: Eq(V("y"), CInt(1))},
		ForAll{Vars: []string{"w"}, Body: Eq(V("w"), V("w"))},
	)}
	s := f.String()
	for _, frag := range []string{"∃x", "R(1,x)", "(x=2 ∨ ¬R(x,x))", "∀y,z(R(y,z) → y=1)", "∀w w=w"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q in %q", frag, s)
		}
	}
	if AllOf().String() != "true" || AnyOf().String() != "false" {
		t.Error("empty connective strings wrong")
	}
	if CString("a").String() != "a" || V("x").String() != "x" {
		t.Error("term strings wrong")
	}
}

func TestFragments(t *testing.T) {
	atom := NewAtom("R", V("x"), CInt(1))
	ucq := Exists{Vars: []string{"x"}, Body: AllOf(atom, AnyOf(Eq(V("x"), CInt(1)), atom))}
	if !IsExistentialPositive(ucq) || !IsPositive(ucq) || !IsPosForallG(ucq) {
		t.Error("UCQ should be in all positive fragments")
	}
	if Classify(ucq) != FragmentUCQ {
		t.Error("classification of UCQ wrong")
	}

	guarded := Exists{Vars: []string{"x"}, Body: ForAllGuard{Rel: "R", Vars: []string{"y", "z"}, Body: Eq(V("y"), V("x"))}}
	if IsExistentialPositive(guarded) {
		t.Error("guarded ∀ is not existential positive")
	}
	if !IsPosForallG(guarded) || !IsPositive(guarded) {
		t.Error("guarded ∀ should be Pos∀G and positive")
	}
	if Classify(guarded) != FragmentPosGuard {
		t.Error("classification of guarded formula wrong")
	}

	positive := ForAll{Vars: []string{"x"}, Body: Exists{Vars: []string{"y"}, Body: NewAtom("R", V("x"), V("y"))}}
	if IsExistentialPositive(positive) || IsPosForallG(positive) {
		t.Error("unguarded ∀ is neither UCQ nor Pos∀G")
	}
	if !IsPositive(positive) {
		t.Error("unguarded ∀ without negation is positive")
	}
	if Classify(positive) != FragmentPositive {
		t.Error("classification of positive formula wrong")
	}

	negated := Not{Body: atom}
	if IsExistentialPositive(negated) || IsPositive(negated) || IsPosForallG(negated) {
		t.Error("negation is in no positive fragment")
	}
	if Classify(negated) != FragmentFO {
		t.Error("classification of FO formula wrong")
	}
	// Fragments propagate through connectives.
	if IsExistentialPositive(AllOf(atom, negated)) || IsPositive(AnyOf(atom, negated)) || IsPosForallG(AllOf(atom, negated)) {
		t.Error("fragment checks must inspect subformulas")
	}
	if IsPosForallG(AnyOf(atom, ForAll{Vars: []string{"x"}, Body: atom})) {
		t.Error("unguarded ∀ under ∨ is not Pos∀G")
	}
	if !IsPositive(ForAllGuard{Rel: "R", Vars: []string{"x", "y"}, Body: atom}) {
		t.Error("guarded ∀ is positive")
	}
	if IsPositive(ForAll{Vars: []string{"x"}, Body: negated}) {
		t.Error("∀ over negation is not positive")
	}
	if IsExistentialPositive(Exists{Vars: []string{"x"}, Body: negated}) {
		t.Error("∃ over negation is not existential positive")
	}
	if IsPosForallG(Exists{Vars: []string{"x"}, Body: ForAll{Vars: []string{"y"}, Body: atom}}) {
		t.Error("∃∀ (unguarded) is not Pos∀G")
	}
}

// The duality example of Section 4: R = {(1,⊥),(⊥,2)} viewed as the Boolean
// CQ  Q_R = ∃x R(1,x) ∧ R(x,2), whose complete models are exactly [[R]]owa.
func TestDiagramsPaperExample(t *testing.T) {
	s := schema.MustNew(schema.WithArity("R", 2))
	r := table.NewDatabase(s)
	r.MustAddRow("R", "1", "⊥1")
	r.MustAddRow("R", "⊥1", "2")

	owa := OWADiagram(r)
	if !IsExistentialPositive(owa) {
		t.Error("OWA diagram must be existential positive")
	}
	cwa := CWADiagram(r)
	if !IsPosForallG(cwa) {
		t.Errorf("CWA diagram must be Pos∀G, classified as %s", Classify(cwa))
	}
	if IsExistentialPositive(cwa) {
		t.Error("CWA diagram should not be existential positive")
	}

	// world1 = {(1,3),(3,2)} is in [[R]]owa and [[R]]cwa.
	world1 := db(t, 2, []string{"1", "3"}, []string{"3", "2"})
	// world2 = world1 ∪ {(5,6)} is in [[R]]owa but not [[R]]cwa.
	world2 := db(t, 2, []string{"1", "3"}, []string{"3", "2"}, []string{"5", "6"})
	// world3 = {(1,3)} is in neither.
	world3 := db(t, 2, []string{"1", "3"})

	check := func(name string, f func(d, w *table.Database) (bool, error), w *table.Database, want bool) {
		t.Helper()
		got, err := f(r, w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("ModelsOWA(world1)", ModelsOWA, world1, true)
	check("ModelsOWA(world2)", ModelsOWA, world2, true)
	check("ModelsOWA(world3)", ModelsOWA, world3, false)
	check("ModelsCWA(world1)", ModelsCWA, world1, true)
	check("ModelsCWA(world2)", ModelsCWA, world2, false)
	check("ModelsCWA(world3)", ModelsCWA, world3, false)
}

func TestDiagramsCompleteDatabase(t *testing.T) {
	d := db(t, 2, []string{"1", "2"})
	owa := OWADiagram(d)
	if _, ok := owa.(Exists); ok {
		t.Error("diagram of a complete database needs no quantifier")
	}
	if ok, _ := ModelsOWA(d, d); !ok {
		t.Error("a complete database models its own OWA diagram")
	}
	if ok, _ := ModelsCWA(d, d); !ok {
		t.Error("a complete database models its own CWA diagram")
	}
	bigger := db(t, 2, []string{"1", "2"}, []string{"3", "4"})
	if ok, _ := ModelsOWA(d, bigger); !ok {
		t.Error("supersets model the OWA diagram")
	}
	if ok, _ := ModelsCWA(d, bigger); ok {
		t.Error("supersets do not model the CWA diagram")
	}
}

func TestDiagramAgreesWithValueSemantics(t *testing.T) {
	// Cross-check on a slightly larger random-ish instance with a repeated
	// null: logical route (diagram) vs. direct definition via valuations is
	// exercised in package semantics; here we check internal consistency of
	// the diagrams on hand-picked worlds.
	s := schema.MustNew(schema.WithArity("R", 2), schema.WithArity("S", 1))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("S", "⊥1")
	world := table.NewDatabase(s)
	world.MustAddRow("R", "1", "7")
	world.MustAddRow("S", "7")
	if ok, _ := ModelsCWA(d, world); !ok {
		t.Error("shared null instantiated consistently should satisfy CWA diagram")
	}
	badWorld := table.NewDatabase(s)
	badWorld.MustAddRow("R", "1", "7")
	badWorld.MustAddRow("S", "8")
	if ok, _ := ModelsCWA(d, badWorld); ok {
		t.Error("inconsistent instantiation of a shared null must not satisfy CWA diagram")
	}
	if ok, _ := ModelsOWA(d, badWorld); ok {
		t.Error("OWA diagram also requires consistent instantiation of the shared null")
	}
}
