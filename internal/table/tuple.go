// Package table implements the data model of incomplete relational
// databases from Section 2 of the paper: naïve tables (relations over
// Const ∪ Null in which a marked null may occur several times), Codd tables
// (each null occurs at most once), and databases assigning such relations to
// schema names.
//
// Relations use set semantics: duplicates are eliminated, and the tuple
// order exposed by accessors is the canonical (sorted) order, so that two
// relations with the same tuples compare equal.
package table

import (
	"fmt"
	"strings"

	"incdata/internal/value"
)

// Tuple is an ordered list of values (constants and/or nulls).
type Tuple []value.Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...value.Value) Tuple {
	t := make(Tuple, len(vs))
	copy(t, vs)
	return t
}

// ParseTuple builds a tuple by parsing each textual field with value.Parse.
func ParseTuple(fields ...string) (Tuple, error) {
	t := make(Tuple, len(fields))
	for i, f := range fields {
		v, err := value.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("table: field %d: %w", i, err)
		}
		t[i] = v
	}
	return t, nil
}

// MustParseTuple is ParseTuple that panics on error.
func MustParseTuple(fields ...string) Tuple {
	t, err := ParseTuple(fields...)
	if err != nil {
		panic(err)
	}
	return t
}

// Arity returns the number of fields.
func (t Tuple) Arity() int { return len(t) }

// Equal reports field-wise equality (marked-null identity for nulls).
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically using value.Compare; shorter
// tuples precede longer ones that share a prefix.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	default:
		return 0
	}
}

// Less reports whether t precedes o in the canonical order.
func (t Tuple) Less(o Tuple) bool { return t.Compare(o) < 0 }

// IsComplete reports whether the tuple contains no nulls.
func (t Tuple) IsComplete() bool {
	for _, v := range t {
		if v.IsNull() {
			return false
		}
	}
	return true
}

// HasNull reports whether the tuple contains at least one null.
func (t Tuple) HasNull() bool { return !t.IsComplete() }

// Nulls returns the set of nulls occurring in the tuple.
func (t Tuple) Nulls() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, v := range t {
		if v.IsNull() {
			out[v] = true
		}
	}
	return out
}

// Consts returns the set of constants occurring in the tuple.
func (t Tuple) Consts() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, v := range t {
		if v.IsConst() {
			out[v] = true
		}
	}
	return out
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns the tuple restricted to the given positions (0-based).
// It panics if a position is out of range.
func (t Tuple) Project(positions ...int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}

// Concat returns the concatenation of t and o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Map applies f to every field and returns the resulting tuple.
func (t Tuple) Map(f func(value.Value) value.Value) Tuple {
	out := make(Tuple, len(t))
	for i, v := range t {
		out[i] = f(v)
	}
	return out
}

// keyBufSize is the size of the stack scratch buffers used for tuple keys;
// keys longer than this spill to the heap but stay correct.
const keyBufSize = 96

// AppendKey appends the tuple's canonical binary key to dst and returns the
// extended slice.  Each field's encoding is self-delimiting (length-prefixed
// strings, varint integers), so distinct tuples — including tuples of
// different arities sharing a prefix — have distinct keys.  Hot paths append
// into a reusable scratch buffer and convert to string only at map inserts.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendKey(dst)
	}
	return dst
}

// Key returns a canonical string encoding of the tuple suitable for use as a
// map key.  Distinct tuples have distinct keys.
func (t Tuple) Key() string {
	var buf [keyBufSize]byte
	return string(t.AppendKey(buf[:0]))
}

// DecodeTuple decodes one tuple of the given arity from the front of a key
// encoding produced by AppendKey, returning it and the remaining bytes.
// The key format is self-delimiting per value, so concatenated tuple keys
// (the durable store's chunk payloads, the budgeted join's spill records)
// decode unambiguously.  Corrupt input returns an error, never a panic.
func DecodeTuple(b []byte, arity int) (Tuple, []byte, error) {
	t := make(Tuple, arity)
	var err error
	for i := 0; i < arity; i++ {
		t[i], b, err = value.DecodeKey(b)
		if err != nil {
			return nil, nil, fmt.Errorf("table: decode tuple field %d: %w", i, err)
		}
	}
	return t, b, nil
}

// mapChanged applies f to every field.  When f fixes every field it returns
// the original tuple and false without allocating; otherwise it returns a
// fresh mapped tuple and true.
func (t Tuple) mapChanged(f func(value.Value) value.Value) (Tuple, bool) {
	for i, v := range t {
		nv := f(v)
		if nv == v {
			continue
		}
		out := make(Tuple, len(t))
		copy(out, t[:i])
		out[i] = nv
		for j := i + 1; j < len(t); j++ {
			out[j] = f(t[j])
		}
		return out, true
	}
	return t, false
}

// String renders the tuple as (v1, v2, ..., vk).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
