package table

import (
	"testing"

	"incdata/internal/schema"
	"incdata/internal/value"
)

func twoRelDB(t *testing.T) *Database {
	t.Helper()
	s := schema.MustNew(schema.NewRelation("R", "a", "b"), schema.NewRelation("S", "b"))
	d := NewDatabase(s)
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("R", "3", "4")
	d.MustAddRow("S", "2")
	return d
}

func TestSnapshotIsolation(t *testing.T) {
	d := twoRelDB(t)
	snap := d.Snapshot()
	before := snap.Relation("R").Tuples()

	// Mutations of the original must not leak into the snapshot.
	d.MustAddRow("R", "5", "6")
	if !d.Relation("R").Contains(MustParseTuple("5", "6")) {
		t.Fatal("original lost the write")
	}
	if snap.Relation("R").Len() != len(before) {
		t.Fatalf("snapshot grew to %d tuples", snap.Relation("R").Len())
	}
	if snap.Relation("R").Contains(MustParseTuple("5", "6")) {
		t.Fatal("write leaked into the snapshot")
	}

	// A snapshot taken after the write sees it; the old one still does not.
	snap2 := d.Snapshot()
	if !snap2.Relation("R").Contains(MustParseTuple("5", "6")) {
		t.Fatal("fresh snapshot misses the write")
	}
	if snap.Relation("R").Contains(MustParseTuple("5", "6")) {
		t.Fatal("old snapshot changed retroactively")
	}
}

func TestStampIdentifiesContent(t *testing.T) {
	d := twoRelDB(t)
	r := d.Relation("R")

	// Snapshots carry the stamp of the storage they share.
	s1 := d.Snapshot()
	s2 := d.Snapshot()
	if s1.Relation("R").Stamp() != r.Stamp() || s2.Relation("R").Stamp() != r.Stamp() {
		t.Fatal("snapshot relations must share the base stamp")
	}
	if s1.Relation("R").Stamp().Gen == 0 {
		t.Fatal("stamps must have a nonzero generation")
	}

	// Mutating the base changes its stamp but freezes the snapshots'.
	old := s1.Relation("R").Stamp()
	d.MustAddRow("R", "7", "8")
	if r.Stamp() == old {
		t.Fatal("mutation must change the base stamp")
	}
	if s1.Relation("R").Stamp() != old {
		t.Fatal("snapshot stamp changed under mutation of the base")
	}

	// Unrelated relations keep their stamp across snapshots, which is what
	// lets plan caches survive writes to other relations.
	s3 := d.Snapshot()
	if s3.Relation("S").Stamp() != s1.Relation("S").Stamp() {
		t.Fatal("untouched relation should keep its stamp across snapshots")
	}

	// Fresh relations never share a stamp, even when empty and identical.
	a := NewRelation(schema.WithArity("T", 1))
	b := NewRelation(schema.WithArity("T", 1))
	if a.Stamp() == b.Stamp() {
		t.Fatal("independent relations must have distinct stamps")
	}

	// In-place mutations (exclusive owner) bump the stamp too.
	a.MustAdd(NewTuple(value.Int(1)))
	st := a.Stamp()
	a.MustAdd(NewTuple(value.Int(2)))
	if a.Stamp() == st {
		t.Fatal("in-place mutation must bump the stamp")
	}
}
