package table

import (
	"testing"

	"incdata/internal/schema"
	"incdata/internal/value"
)

func trackTestDB(t *testing.T) *Database {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "x"),
	)
	d := NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "3", "⊥1")
	d.MustAddRow("S", "u")
	return d
}

func TestTrackerInsertDelete(t *testing.T) {
	d := trackTestDB(t)
	tr := d.Track()
	d.MustAddRow("R", "5", "6")
	d.Relation("R").Remove(MustParseTuple("1", "2"))
	cs := tr.Stop()

	rd := cs.Delta("R")
	if rd == nil || len(rd.Inserted) != 1 || len(rd.Deleted) != 1 {
		t.Fatalf("R delta = %+v, want 1 insert + 1 delete", rd)
	}
	if cs.Delta("S") != nil {
		t.Fatalf("S was not mutated, delta = %+v", cs.Delta("S"))
	}
	if cs.Size() != 2 {
		t.Fatalf("Size = %d, want 2", cs.Size())
	}
}

func TestTrackerCancellation(t *testing.T) {
	d := trackTestDB(t)
	tr := d.Track()
	// Insert then delete a fresh tuple: net nothing.
	d.MustAddRow("R", "9", "9")
	d.Relation("R").Remove(MustParseTuple("9", "9"))
	// Delete then re-insert an existing tuple: net nothing.
	d.Relation("R").Remove(MustParseTuple("1", "2"))
	d.MustAddRow("R", "1", "2")
	cs := tr.Stop()
	if !cs.Empty() {
		t.Fatalf("expected empty change set, got %+v", cs.Rels)
	}
}

func TestTrackerDuplicateAddNotRecorded(t *testing.T) {
	d := trackTestDB(t)
	tr := d.Track()
	d.MustAddRow("R", "1", "2") // already present
	cs := tr.Stop()
	if !cs.Empty() {
		t.Fatalf("duplicate add must not record a change, got %+v", cs.Rels)
	}
}

func TestTrackerAddAllAndRetain(t *testing.T) {
	d := trackTestDB(t)
	extra := NewRelation(schema.NewRelation("X", "a", "b"))
	extra.MustAdd(MustParseTuple("1", "2")) // duplicate of existing
	extra.MustAdd(MustParseTuple("7", "8")) // new

	tr := d.Track()
	if err := d.Relation("R").AddAll(extra); err != nil {
		t.Fatal(err)
	}
	d.Relation("R").Retain(func(tp Tuple) bool { return tp[0] != value.MustParse("3") })
	cs := tr.Stop()

	rd := cs.Delta("R")
	if len(rd.Inserted) != 1 || !rd.Inserted[MustParseTuple("7", "8").Key()].Equal(MustParseTuple("7", "8")) {
		t.Fatalf("Inserted = %v, want exactly (7,8)", rd.Inserted)
	}
	if len(rd.Deleted) != 1 || !rd.Deleted[MustParseTuple("3", "⊥1").Key()].Equal(MustParseTuple("3", "⊥1")) {
		t.Fatalf("Deleted = %v, want exactly (3,⊥1)", rd.Deleted)
	}
}

func TestTrackerSetRelationDiffs(t *testing.T) {
	d := trackTestDB(t)
	repl := NewRelation(schema.NewRelation("R", "a", "b"))
	repl.MustAdd(MustParseTuple("1", "2")) // kept
	repl.MustAdd(MustParseTuple("9", "9")) // new

	tr := d.Track()
	if err := d.SetRelation("R", repl); err != nil {
		t.Fatal(err)
	}
	cs := tr.Stop()
	rd := cs.Delta("R")
	if len(rd.Inserted) != 1 || len(rd.Deleted) != 1 {
		t.Fatalf("delta = %+v, want insert (9,9) and delete (3,⊥1)", rd)
	}

	// The replacement relation keeps recording until Stop; after Stop the
	// database is fully detached and mutations go unrecorded.
	d.MustAddRow("R", "55", "66")
	if len(rd.Inserted) != 1 {
		t.Fatalf("mutation after Stop was recorded: %+v", rd)
	}
}

func TestTrackerSetRelationThenMutate(t *testing.T) {
	d := trackTestDB(t)
	tr := d.Track()
	repl := NewRelation(schema.NewRelation("R", "a", "b"))
	repl.MustAdd(MustParseTuple("1", "2"))
	if err := d.SetRelation("R", repl); err != nil {
		t.Fatal(err)
	}
	// The recorder must have moved to the replacement: further mutations
	// through the database are still captured.
	d.MustAddRow("R", "42", "42")
	cs := tr.Stop()
	rd := cs.Delta("R")
	if _, ok := rd.Inserted[MustParseTuple("42", "42").Key()]; !ok {
		t.Fatalf("post-SetRelation insert lost: %+v", rd)
	}
}

func TestTrackerResetRecordsDeletes(t *testing.T) {
	d := trackTestDB(t)
	tr := d.Track()
	r := d.Relation("R")
	r.Reset(r.Schema())
	cs := tr.Stop()
	rd := cs.Delta("R")
	if len(rd.Deleted) != 2 || len(rd.Inserted) != 0 {
		t.Fatalf("Reset delta = %+v, want 2 deletes", rd)
	}
}

func TestTrackerSnapshotIsolated(t *testing.T) {
	d := trackTestDB(t)
	tr := d.Track()
	snap := d.Snapshot()
	// Mutating the live database is recorded; the snapshot stays frozen and
	// untracked.
	d.MustAddRow("R", "5", "5")
	if snap.Relation("R").Contains(MustParseTuple("5", "5")) {
		t.Fatal("snapshot observed a post-snapshot write")
	}
	if snap.Relation("R").tracked() {
		t.Fatal("snapshot relations must not carry the recorder")
	}
	cs := tr.Stop()
	if cs.Delta("R").Size() != 1 {
		t.Fatalf("delta = %+v", cs.Delta("R"))
	}
}

func TestTrackerDoubleTrackPanics(t *testing.T) {
	d := trackTestDB(t)
	_ = d.Track()
	defer func() {
		if recover() == nil {
			t.Fatal("second Track must panic")
		}
	}()
	_ = d.Track()
}
