package table

// Hash partitioning of relations.  A Partitioning splits the tuples of a
// relation into a fixed number of disjoint buckets — by the FNV-1a hash of
// the binary key of a list of column positions (the join-key case), or
// round-robin when no positions are given (plain scan morsels).  Matching
// join keys always hash to the same bucket, so a hash join whose build and
// probe sides are partitioned on their respective key columns decomposes
// into per-partition joins with no cross-partition probes: bucket i of the
// probe side only ever matches bucket i of the build side.
//
// Partitionings are built lazily by Relation.Partition and cached on the
// relation exactly like hash indexes: any mutation invalidates them, and
// because relations are immutable while being evaluated (stamp-validated
// plan caches retain stable relations unchanged), a cached partitioning —
// including its lazily built per-partition indexes — survives for as long
// as plans keep evaluating over the same storage.

import (
	"sync/atomic"
)

// Partitioning is an immutable split of a relation's tuples into disjoint
// buckets, with a lazily built hash index per bucket.
type Partitioning struct {
	positions []int // nil: round-robin morsel split, no key semantics
	parts     int
	buckets   [][]Tuple
	indexes   []atomic.Pointer[Index]       // per-bucket, built on first use
	coded     []atomic.Pointer[codedBucket] // per-bucket coded indexes (see encode.go)
}

// Parts returns the number of buckets.
func (p *Partitioning) Parts() int { return p.parts }

// Positions returns the column positions the partitioning hashes on; nil
// for a round-robin morsel split.
func (p *Partitioning) Positions() []int { return p.positions }

// Bucket returns the tuples of bucket i.  The slice and its tuples are
// shared with the partitioning and must not be mutated.
func (p *Partitioning) Bucket(i int) []Tuple { return p.buckets[i] }

// Index returns the hash index of bucket i over the partitioning's
// positions, building it on first use.  Concurrent callers are safe.  It
// panics on a round-robin partitioning, which has no key columns.
func (p *Partitioning) Index(i int) *Index {
	if p.positions == nil {
		panic("table: Index on a round-robin partitioning")
	}
	if ix := p.indexes[i].Load(); ix != nil {
		return ix
	}
	ix := newIndexFromTuples(p.positions, p.buckets[i])
	if p.indexes[i].CompareAndSwap(nil, ix) {
		return ix
	}
	return p.indexes[i].Load()
}

// PartitionOfKey returns the bucket a tuple with the given binary key (as
// built by appending the partition positions' value keys) lands in.
func (p *Partitioning) PartitionOfKey(key []byte) int {
	return int(hashKey(key) % uint64(p.parts))
}

// hashKey is FNV-1a over the key bytes.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Partition returns a partitioning of the relation into parts buckets over
// the given column positions (nil positions split round-robin), building it
// on first use and caching it on the relation.  Concurrent callers are
// safe; the cache is invalidated by any mutation of the relation, exactly
// like Index's.  The positions slice is copied.
func (r *Relation) Partition(positions []int, parts int) *Partitioning {
	if parts < 1 {
		parts = 1
	}
	for {
		set := r.partitions.Load()
		if set != nil {
			for _, p := range *set {
				if p.parts == parts && samePositions(p.positions, positions) {
					return p
				}
			}
		}
		p := r.buildPartitioning(positions, parts)
		var cur []*Partitioning
		if set != nil {
			cur = *set
		}
		next := make([]*Partitioning, 0, len(cur)+1)
		next = append(next, cur...)
		next = append(next, p)
		if r.partitions.CompareAndSwap(set, &next) {
			return p
		}
		// Lost a race with another builder; retry (and likely adopt theirs).
	}
}

func (r *Relation) buildPartitioning(positions []int, parts int) *Partitioning {
	p := &Partitioning{
		parts:   parts,
		buckets: make([][]Tuple, parts),
		indexes: make([]atomic.Pointer[Index], parts),
		coded:   make([]atomic.Pointer[codedBucket], parts),
	}
	if positions != nil {
		p.positions = append([]int(nil), positions...)
	}
	if r == nil {
		return p
	}
	sizeHint := r.Len()/parts + 1
	if positions == nil {
		// Round-robin morsels: assignment is arbitrary (consumers always
		// merge every bucket under set semantics), so spread evenly.
		i := 0
		for _, t := range r.tuples {
			if p.buckets[i] == nil {
				p.buckets[i] = make([]Tuple, 0, sizeHint)
			}
			p.buckets[i] = append(p.buckets[i], t)
			i++
			if i == parts {
				i = 0
			}
		}
		return p
	}
	var buf [keyBufSize]byte
	for _, t := range r.tuples {
		key := buf[:0]
		for _, pos := range positions {
			key = t[pos].AppendKey(key)
		}
		i := p.PartitionOfKey(key)
		if p.buckets[i] == nil {
			p.buckets[i] = make([]Tuple, 0, sizeHint)
		}
		p.buckets[i] = append(p.buckets[i], t)
	}
	return p
}

// newIndexFromTuples builds a hash index over a tuple slice, in the same
// chained-slice layout Relation.buildIndex produces.
func newIndexFromTuples(positions []int, ts []Tuple) *Index {
	ix := &Index{
		positions: append([]int(nil), positions...),
		heads:     make(map[string]int32, len(ts)),
		entries:   make([]indexEntry, 0, len(ts)),
		complete:  true,
	}
	var buf [keyBufSize]byte
	for _, t := range ts {
		key := buf[:0]
		for _, p := range positions {
			key = t[p].AppendKey(key)
		}
		head := ix.heads[string(key)]
		ix.entries = append(ix.entries, indexEntry{t: t, next: head})
		ix.heads[string(key)] = int32(len(ix.entries))
		if ix.complete && !t.IsComplete() {
			ix.complete = false
		}
	}
	return ix
}

// invalidatePartitionings drops cached partitionings; every mutation path
// calls it (via invalidateDerived).
func (r *Relation) invalidatePartitionings() {
	if r.partitions.Load() != nil {
		r.partitions.Store(nil)
	}
}
