package table

import (
	"testing"
	"testing/quick"

	"incdata/internal/value"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Null(2), value.String("x"))
	if tp.Arity() != 3 {
		t.Fatalf("arity = %d", tp.Arity())
	}
	if tp.IsComplete() {
		t.Error("tuple with null should not be complete")
	}
	if !tp.HasNull() {
		t.Error("HasNull should be true")
	}
	complete := NewTuple(value.Int(1), value.Int(2))
	if !complete.IsComplete() || complete.HasNull() {
		t.Error("complete tuple misclassified")
	}
}

func TestTupleEqualCompare(t *testing.T) {
	a := NewTuple(value.Int(1), value.Null(1))
	b := NewTuple(value.Int(1), value.Null(1))
	c := NewTuple(value.Int(1), value.Null(2))
	if !a.Equal(b) {
		t.Error("identical tuples should be equal")
	}
	if a.Equal(c) {
		t.Error("tuples with different nulls should differ")
	}
	if a.Equal(NewTuple(value.Int(1))) {
		t.Error("different arities should differ")
	}
	if a.Compare(b) != 0 || a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Error("Compare inconsistent")
	}
	short := NewTuple(value.Int(1))
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("prefix ordering wrong")
	}
	if !short.Less(a) {
		t.Error("Less wrong")
	}
}

func TestTupleNullsConsts(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Null(2), value.Null(2), value.String("x"))
	nulls := tp.Nulls()
	if len(nulls) != 1 || !nulls[value.Null(2)] {
		t.Errorf("Nulls = %v", nulls)
	}
	consts := tp.Consts()
	if len(consts) != 2 || !consts[value.Int(1)] || !consts[value.String("x")] {
		t.Errorf("Consts = %v", consts)
	}
}

func TestTupleCloneProjectConcatMap(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Int(2), value.Int(3))
	cl := tp.Clone()
	cl[0] = value.Int(99)
	if v, _ := tp[0].AsInt(); v != 1 {
		t.Error("Clone aliases")
	}
	pr := tp.Project(2, 0)
	if !pr.Equal(NewTuple(value.Int(3), value.Int(1))) {
		t.Errorf("Project = %v", pr)
	}
	cc := tp.Concat(NewTuple(value.Int(4)))
	if cc.Arity() != 4 {
		t.Errorf("Concat arity = %d", cc.Arity())
	}
	mp := tp.Map(func(v value.Value) value.Value {
		i, _ := v.AsInt()
		return value.Int(i * 10)
	})
	if !mp.Equal(NewTuple(value.Int(10), value.Int(20), value.Int(30))) {
		t.Errorf("Map = %v", mp)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	tuples := []Tuple{
		NewTuple(value.Int(1), value.Int(2)),
		NewTuple(value.Int(12)),
		NewTuple(value.String("1"), value.Int(2)),
		NewTuple(value.Null(1), value.Int(2)),
		NewTuple(value.Int(1), value.Null(2)),
		NewTuple(value.String("a\x1fb")),
		NewTuple(value.String("a"), value.String("b")),
	}
	seen := map[string]Tuple{}
	for _, tp := range tuples {
		k := tp.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, tp)
		}
		seen[k] = tp
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Null(3), value.String("oid1"))
	if tp.String() != "(1, ⊥3, oid1)" {
		t.Errorf("String = %q", tp.String())
	}
}

func TestParseTuple(t *testing.T) {
	tp, err := ParseTuple("1", "⊥2", "oid1")
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Equal(NewTuple(value.Int(1), value.Null(2), value.String("oid1"))) {
		t.Errorf("ParseTuple = %v", tp)
	}
	if _, err := ParseTuple("1", ""); err == nil {
		t.Error("ParseTuple with empty field should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseTuple should panic")
		}
	}()
	MustParseTuple("")
}

func TestQuickTupleCompareConsistency(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x := NewTuple(value.Int(a), value.Int(b))
		y := NewTuple(value.Int(c), value.Int(d))
		cmp := x.Compare(y)
		if cmp == 0 {
			return x.Equal(y) && x.Key() == y.Key()
		}
		return !x.Equal(y) && cmp == -y.Compare(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
