package table

import (
	"testing"
	"testing/quick"

	"incdata/internal/value"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Null(2), value.String("x"))
	if tp.Arity() != 3 {
		t.Fatalf("arity = %d", tp.Arity())
	}
	if tp.IsComplete() {
		t.Error("tuple with null should not be complete")
	}
	if !tp.HasNull() {
		t.Error("HasNull should be true")
	}
	complete := NewTuple(value.Int(1), value.Int(2))
	if !complete.IsComplete() || complete.HasNull() {
		t.Error("complete tuple misclassified")
	}
}

func TestTupleEqualCompare(t *testing.T) {
	a := NewTuple(value.Int(1), value.Null(1))
	b := NewTuple(value.Int(1), value.Null(1))
	c := NewTuple(value.Int(1), value.Null(2))
	if !a.Equal(b) {
		t.Error("identical tuples should be equal")
	}
	if a.Equal(c) {
		t.Error("tuples with different nulls should differ")
	}
	if a.Equal(NewTuple(value.Int(1))) {
		t.Error("different arities should differ")
	}
	if a.Compare(b) != 0 || a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Error("Compare inconsistent")
	}
	short := NewTuple(value.Int(1))
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("prefix ordering wrong")
	}
	if !short.Less(a) {
		t.Error("Less wrong")
	}
}

func TestTupleNullsConsts(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Null(2), value.Null(2), value.String("x"))
	nulls := tp.Nulls()
	if len(nulls) != 1 || !nulls[value.Null(2)] {
		t.Errorf("Nulls = %v", nulls)
	}
	consts := tp.Consts()
	if len(consts) != 2 || !consts[value.Int(1)] || !consts[value.String("x")] {
		t.Errorf("Consts = %v", consts)
	}
}

func TestTupleCloneProjectConcatMap(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Int(2), value.Int(3))
	cl := tp.Clone()
	cl[0] = value.Int(99)
	if v, _ := tp[0].AsInt(); v != 1 {
		t.Error("Clone aliases")
	}
	pr := tp.Project(2, 0)
	if !pr.Equal(NewTuple(value.Int(3), value.Int(1))) {
		t.Errorf("Project = %v", pr)
	}
	cc := tp.Concat(NewTuple(value.Int(4)))
	if cc.Arity() != 4 {
		t.Errorf("Concat arity = %d", cc.Arity())
	}
	mp := tp.Map(func(v value.Value) value.Value {
		i, _ := v.AsInt()
		return value.Int(i * 10)
	})
	if !mp.Equal(NewTuple(value.Int(10), value.Int(20), value.Int(30))) {
		t.Errorf("Map = %v", mp)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	tuples := []Tuple{
		NewTuple(value.Int(1), value.Int(2)),
		NewTuple(value.Int(12)),
		NewTuple(value.String("1"), value.Int(2)),
		NewTuple(value.Null(1), value.Int(2)),
		NewTuple(value.Int(1), value.Null(2)),
		NewTuple(value.String("a\x1fb")),
		NewTuple(value.String("a"), value.String("b")),
	}
	seen := map[string]Tuple{}
	for _, tp := range tuples {
		k := tp.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, tp)
		}
		seen[k] = tp
	}
}

func TestTupleKeySeparatorCollision(t *testing.T) {
	// Regression: the original encoding joined fields with '\x1f', so a
	// string value containing the separator collided across field
	// boundaries: ("a\x1fsb") and ("a", "b") produced the same key.  The
	// length-prefixed binary encoding must keep them distinct.
	pairs := [][2]Tuple{
		{NewTuple(value.String("a\x1fsb")), NewTuple(value.String("a"), value.String("b"))},
		{NewTuple(value.String("a\x1f"), value.String("b")), NewTuple(value.String("a"), value.String("\x1fb"))},
		{NewTuple(value.String("ab")), NewTuple(value.String("a"), value.String("b"))},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision between %v and %v", p[0], p[1])
		}
		r := NewRelationArity("R", p[0].Arity())
		r.MustAdd(p[0])
		if p[1].Arity() == r.Arity() && r.Contains(p[1]) {
			t.Errorf("relation treats %v and %v as the same tuple", p[0], p[1])
		}
	}
}

func TestZeroAllocKeyPath(t *testing.T) {
	r := NewRelationArity("R", 3)
	for i := 0; i < 100; i++ {
		r.MustAdd(NewTuple(value.Int(int64(i)), value.String("name"), value.Null(uint64(i%7))))
	}
	probe := NewTuple(value.Int(42), value.String("name"), value.Null(0))
	if allocs := testing.AllocsPerRun(200, func() { r.Contains(probe) }); allocs != 0 {
		t.Errorf("Relation.Contains allocates %v times per call, want 0", allocs)
	}
	buf := make([]byte, 0, keyBufSize)
	if allocs := testing.AllocsPerRun(200, func() { buf = probe.AppendKey(buf[:0]) }); allocs != 0 {
		t.Errorf("Tuple.AppendKey into a sized buffer allocates %v times per call, want 0", allocs)
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple(value.Int(1), value.Null(3), value.String("oid1"))
	if tp.String() != "(1, ⊥3, oid1)" {
		t.Errorf("String = %q", tp.String())
	}
}

func TestParseTuple(t *testing.T) {
	tp, err := ParseTuple("1", "⊥2", "oid1")
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Equal(NewTuple(value.Int(1), value.Null(2), value.String("oid1"))) {
		t.Errorf("ParseTuple = %v", tp)
	}
	if _, err := ParseTuple("1", ""); err == nil {
		t.Error("ParseTuple with empty field should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseTuple should panic")
		}
	}()
	MustParseTuple("")
}

func TestQuickTupleCompareConsistency(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x := NewTuple(value.Int(a), value.Int(b))
		y := NewTuple(value.Int(c), value.Int(d))
		cmp := x.Compare(y)
		if cmp == 0 {
			return x.Equal(y) && x.Key() == y.Key()
		}
		return !x.Equal(y) && cmp == -y.Compare(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
