package table

import (
	"testing"

	"incdata/internal/schema"
	"incdata/internal/value"
)

func partitionTestRelation(n int) *Relation {
	r := NewRelation(schema.NewRelation("R", "a", "b"))
	for i := 0; i < n; i++ {
		r.MustAdd(NewTuple(value.Int(int64(i)), value.Int(int64(i%13))))
	}
	return r
}

// TestPartitionBucketsDisjointAndComplete checks that keyed and round-robin
// partitionings cover every tuple exactly once.
func TestPartitionBucketsDisjointAndComplete(t *testing.T) {
	r := partitionTestRelation(300)
	for _, positions := range [][]int{nil, {1}, {0, 1}} {
		p := r.Partition(positions, 7)
		if p.Parts() != 7 {
			t.Fatalf("Parts() = %d, want 7", p.Parts())
		}
		seen := map[string]int{}
		total := 0
		for i := 0; i < p.Parts(); i++ {
			for _, tp := range p.Bucket(i) {
				seen[tp.Key()]++
				total++
			}
		}
		if total != r.Len() {
			t.Fatalf("positions %v: buckets hold %d tuples, relation has %d", positions, total, r.Len())
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("positions %v: tuple %q appears in %d buckets", positions, k, n)
			}
		}
	}
}

// TestPartitionKeyAgreement checks the property hash joins rely on: equal
// key values land in the same bucket, on both sides of a join, and
// PartitionOfKey agrees with where buildPartitioning actually put tuples.
func TestPartitionKeyAgreement(t *testing.T) {
	r := partitionTestRelation(200)
	p := r.Partition([]int{1}, 5)
	for i := 0; i < p.Parts(); i++ {
		for _, tp := range p.Bucket(i) {
			key := tp[1].AppendKey(nil)
			if got := p.PartitionOfKey(key); got != i {
				t.Fatalf("tuple %s in bucket %d but PartitionOfKey says %d", tp, i, got)
			}
		}
	}
	// A partitioning of a different relation on a different position with the
	// same part count must agree bucket-for-bucket on equal values.
	s := NewRelation(schema.NewRelation("S", "b", "c"))
	for i := 0; i < 60; i++ {
		s.MustAdd(NewTuple(value.Int(int64(i%13)), value.Int(int64(i))))
	}
	ps := s.Partition([]int{0}, 5)
	for v := 0; v < 13; v++ {
		key := value.Int(int64(v)).AppendKey(nil)
		if p.PartitionOfKey(key) != ps.PartitionOfKey(key) {
			t.Fatalf("value %d maps to different buckets on the two sides", v)
		}
	}
}

// TestPartitionIndexes checks the lazily built per-bucket indexes find
// exactly the bucket's tuples, and that round-robin partitionings refuse to
// build one.
func TestPartitionIndexes(t *testing.T) {
	r := partitionTestRelation(150)
	p := r.Partition([]int{1}, 4)
	for i := 0; i < p.Parts(); i++ {
		ix := p.Index(i)
		if again := p.Index(i); again != ix {
			t.Fatalf("bucket %d index not cached", i)
		}
		if ix.Len() != len(p.Bucket(i)) {
			t.Fatalf("bucket %d index has %d entries, bucket has %d", i, ix.Len(), len(p.Bucket(i)))
		}
		for _, tp := range p.Bucket(i) {
			key := tp[1].AppendKey(nil)
			found := false
			for e := ix.Lookup(key); e != 0; {
				var cand Tuple
				cand, e = ix.At(e)
				if cand.Key() == tp.Key() {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("bucket %d index misses tuple %s", i, tp)
			}
		}
	}

	rr := r.Partition(nil, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Index on round-robin partitioning did not panic")
		}
	}()
	rr.Index(0)
}

// TestPartitionCacheIdentityAndInvalidation checks that Partition caches per
// (positions, parts) shape and that any mutation drops the cache.
func TestPartitionCacheIdentityAndInvalidation(t *testing.T) {
	r := partitionTestRelation(50)
	p1 := r.Partition([]int{1}, 4)
	if p2 := r.Partition([]int{1}, 4); p2 != p1 {
		t.Fatal("same-shape Partition not cached")
	}
	if p3 := r.Partition([]int{1}, 8); p3 == p1 {
		t.Fatal("different part count must build a new partitioning")
	}
	if p4 := r.Partition([]int{0}, 4); p4 == p1 {
		t.Fatal("different positions must build a new partitioning")
	}
	if p5 := r.Partition(nil, 4); p5 == p1 {
		t.Fatal("round-robin must not alias a keyed partitioning")
	}

	r.MustAdd(NewTuple(value.Int(999), value.Int(999)))
	p6 := r.Partition([]int{1}, 4)
	if p6 == p1 {
		t.Fatal("mutation did not invalidate cached partitioning")
	}
	total := 0
	for i := 0; i < p6.Parts(); i++ {
		total += len(p6.Bucket(i))
	}
	if total != r.Len() {
		t.Fatalf("rebuilt partitioning holds %d tuples, relation has %d", total, r.Len())
	}

	r.Remove(NewTuple(value.Int(999), value.Int(999)))
	if p7 := r.Partition([]int{1}, 4); p7 == p6 {
		t.Fatal("removal did not invalidate cached partitioning")
	}
}

// TestPartitionSnapshotIndependence checks that a copy-on-write snapshot
// keeps its own derived caches: mutating the original after a snapshot must
// not disturb partitionings taken from the snapshot's state.
func TestPartitionSnapshotIndependence(t *testing.T) {
	d := NewDatabase(schema.MustNew(schema.NewRelation("R", "a", "b")))
	for i := 0; i < 40; i++ {
		d.MustAdd("R", NewTuple(value.Int(int64(i)), value.Int(int64(i%5))))
	}
	snap := d.Snapshot()
	p := snap.Relation("R").Partition([]int{1}, 3)
	before := 0
	for i := 0; i < p.Parts(); i++ {
		before += len(p.Bucket(i))
	}
	d.MustAdd("R", NewTuple(value.Int(1000), value.Int(1000)))
	after := 0
	for i := 0; i < p.Parts(); i++ {
		after += len(p.Bucket(i))
	}
	if before != after || after != snap.Relation("R").Len() {
		t.Fatalf("snapshot partitioning changed under writer: before %d after %d snap %d",
			before, after, snap.Relation("R").Len())
	}
}
