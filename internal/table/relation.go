package table

import (
	"fmt"
	"sort"
	"strings"

	"incdata/internal/schema"
	"incdata/internal/value"
)

// Relation is a finite set of tuples of a fixed arity, together with its
// schema (name and attribute names).  The empty relation of any schema is
// valid.  Relation uses set semantics; Add silently deduplicates.
type Relation struct {
	schema schema.Relation
	tuples map[string]Tuple // keyed by Tuple.Key
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(rs schema.Relation) *Relation {
	return &Relation{schema: rs, tuples: make(map[string]Tuple)}
}

// NewRelationArity creates an empty relation named name with auto-named
// attributes of the given arity.
func NewRelationArity(name string, arity int) *Relation {
	return NewRelation(schema.WithArity(name, arity))
}

// FromTuples builds a relation with the given schema and tuples.  Tuples of
// the wrong arity cause an error.
func FromTuples(rs schema.Relation, tuples ...Tuple) (*Relation, error) {
	r := NewRelation(rs)
	for _, t := range tuples {
		if err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples that panics on error.
func MustFromTuples(rs schema.Relation, tuples ...Tuple) *Relation {
	r, err := FromTuples(rs, tuples...)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Relation { return r.schema }

// Name returns the relation name.
func (r *Relation) Name() string { return r.schema.Name }

// Arity returns the relation arity.
func (r *Relation) Arity() int { return r.schema.Arity() }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return len(r.tuples)
}

// Add inserts a tuple; duplicates are ignored.  The arity must match.
func (r *Relation) Add(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("table: tuple %v has arity %d, relation %s has arity %d",
			t, len(t), r.schema.Name, r.schema.Arity())
	}
	r.tuples[t.Key()] = t.Clone()
	return nil
}

// MustAdd is Add that panics on arity mismatch.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts all tuples of another relation (arity must match).
func (r *Relation) AddAll(o *Relation) error {
	for _, t := range o.Tuples() {
		if err := r.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a tuple if present and reports whether it was there.
func (r *Relation) Remove(t Tuple) bool {
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		delete(r.tuples, k)
		return true
	}
	return false
}

// Contains reports whether the tuple is present (marked-null identity).
func (r *Relation) Contains(t Tuple) bool {
	if r == nil {
		return false
	}
	_, ok := r.tuples[t.Key()]
	return ok
}

// Tuples returns the tuples in canonical (sorted) order.  The returned
// slice and its tuples are copies; mutating them does not affect r.
func (r *Relation) Tuples() []Tuple {
	if r == nil {
		return nil
	}
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Each calls f on every tuple (in unspecified order) until f returns false.
// The tuple passed to f must not be mutated.
func (r *Relation) Each(f func(Tuple) bool) {
	if r == nil {
		return
	}
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.schema)
	for k, t := range r.tuples {
		out.tuples[k] = t.Clone()
	}
	return out
}

// Rename returns a copy of the relation under a new name (same tuples).
func (r *Relation) Rename(name string) *Relation {
	out := r.Clone()
	out.schema = r.schema.Rename(name)
	return out
}

// Equal reports set equality of tuples; the relation names and attribute
// names are ignored, only arity and contents matter.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() || r.Arity() != o.Arity() {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// IsComplete reports whether no tuple contains a null.
func (r *Relation) IsComplete() bool {
	for _, t := range r.tuples {
		if t.HasNull() {
			return false
		}
	}
	return true
}

// IsCodd reports whether the relation is a Codd table: every null occurs at
// most once in the whole relation.
func (r *Relation) IsCodd() bool {
	seen := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			if v.IsNull() {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
	}
	return true
}

// CompletePart returns the sub-relation of null-free tuples (D_cmpl in the
// paper: the part of the answer kept when extracting certain answers).
func (r *Relation) CompletePart() *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.tuples {
		if t.IsComplete() {
			out.tuples[t.Key()] = t.Clone()
		}
	}
	return out
}

// Nulls returns the set of nulls occurring in the relation.
func (r *Relation) Nulls() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			if v.IsNull() {
				out[v] = true
			}
		}
	}
	return out
}

// Consts returns the set of constants occurring in the relation.
func (r *Relation) Consts() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			if v.IsConst() {
				out[v] = true
			}
		}
	}
	return out
}

// ActiveDomain returns adom(r) = Consts(r) ∪ Nulls(r).
func (r *Relation) ActiveDomain() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			out[v] = true
		}
	}
	return out
}

// Map applies f to every value of every tuple and returns the resulting
// relation (useful for applying valuations and homomorphisms).
func (r *Relation) Map(f func(value.Value) value.Value) *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.tuples {
		nt := t.Map(f)
		out.tuples[nt.Key()] = nt
	}
	return out
}

// Filter returns the sub-relation of tuples satisfying pred.
func (r *Relation) Filter(pred func(Tuple) bool) *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.tuples {
		if pred(t) {
			out.tuples[t.Key()] = t.Clone()
		}
	}
	return out
}

// String renders the relation as Name{(t1), (t2), ...} in canonical order.
func (r *Relation) String() string {
	ts := r.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return r.schema.Name + "{" + strings.Join(parts, ", ") + "}"
}
