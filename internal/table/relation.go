package table

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync/atomic"

	"incdata/internal/schema"
	"incdata/internal/value"
)

// Relation is a finite set of tuples of a fixed arity, together with its
// schema (name and attribute names).  The empty relation of any schema is
// valid.  Relation uses set semantics; Add silently deduplicates.
//
// Relations are copy-on-write: Clone, Rename and WithSchema share the
// underlying tuple storage and the first subsequent mutation of either side
// copies the map (never the tuples, which are immutable once stored).  A
// tuple passed to Add is adopted by the relation and must not be mutated by
// the caller afterwards.
type Relation struct {
	schema     schema.Relation
	tuples     map[string]Tuple                // keyed by Tuple.Key
	shared     atomic.Bool                     // tuple map shared with another Relation
	indexes    atomic.Pointer[[]*Index]        // lazily built hash indexes (see index.go)
	partitions atomic.Pointer[[]*Partitioning] // lazily built hash partitionings (see partition.go)
	encoding   atomic.Pointer[Encoding]        // lazily built coded sidecar (see encode.go)
	encStats   *encStats                       // build/decline/churn counters, shared across shares (see encode.go)
	lazy       atomic.Pointer[lazyLoad]        // pending on-demand load, nil once materialized (see lazy.go)
	version    uint64                          // bumped on every mutation (plan-cache validation)
	gen        uint64                          // storage generation, see Stamp
	rec        *recorder                       // delta capture hook, nil unless tracked (see delta.go)
}

// storageGen issues a process-unique generation id for every tuple map a
// relation ever owns.  Copy-on-write shares carry the generation over, so
// two relations with the same generation read the same storage lineage.
var storageGen atomic.Uint64

// nextGen returns a fresh, never-before-issued storage generation.
func nextGen() uint64 { return storageGen.Add(1) }

// NewRelation creates an empty relation with the given schema.
func NewRelation(rs schema.Relation) *Relation {
	return &Relation{schema: rs, tuples: make(map[string]Tuple), gen: nextGen(), encStats: &encStats{}}
}

// NewRelationArity creates an empty relation named name with auto-named
// attributes of the given arity.
func NewRelationArity(name string, arity int) *Relation {
	return NewRelation(schema.WithArity(name, arity))
}

// FromTuples builds a relation with the given schema and tuples.  Tuples of
// the wrong arity cause an error.
func FromTuples(rs schema.Relation, tuples ...Tuple) (*Relation, error) {
	r := NewRelation(rs)
	for _, t := range tuples {
		if err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples that panics on error.
func MustFromTuples(rs schema.Relation, tuples ...Tuple) *Relation {
	r, err := FromTuples(rs, tuples...)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Relation { return r.schema }

// Name returns the relation name.
func (r *Relation) Name() string { return r.schema.Name }

// Arity returns the relation arity.
func (r *Relation) Arity() int { return r.schema.Arity() }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	r.ensure()
	return len(r.tuples)
}

// Stamp identifies the content of a relation's tuple storage: the storage
// generation (process-unique per tuple map, carried across copy-on-write
// shares) plus the mutation counter.  Two relations whose stamps are equal
// hold identical tuple sets — either they share the same frozen map, or
// the stamp belongs to the single exclusive owner — which is what lets
// plan caches validate entries across database snapshots without pointer
// identity.
type Stamp struct {
	Gen uint64
	Ver uint64
}

// Stamp returns the relation's content stamp.  It is not synchronized:
// it must not race with mutations of the relation — the same contract as
// reading the relation itself.
func (r *Relation) Stamp() Stamp {
	if r == nil {
		return Stamp{}
	}
	return Stamp{Gen: r.gen, Ver: r.version}
}

// mutable ensures r exclusively owns its tuple map, copying it first when it
// is shared with another relation (the copy shares the stored tuples and
// their keys, which are immutable).
func (r *Relation) mutable() {
	r.ensure()
	r.version++
	r.invalidateDerived()
	if r.tuples == nil {
		r.tuples = make(map[string]Tuple)
		r.gen = nextGen()
		return
	}
	if r.shared.Load() {
		m := make(map[string]Tuple, len(r.tuples))
		for k, t := range r.tuples {
			m[k] = t
		}
		r.tuples = m
		r.gen = nextGen()
		r.shared.Store(false)
	}
}

// share returns a relation sharing r's tuple storage copy-on-write; both
// sides copy the map before their next mutation.
func (r *Relation) share() *Relation {
	r.shared.Store(true)
	// A pending lazy load is shared: whichever side touches the tuples
	// first materializes the one shared map for the whole lineage.  The
	// load state must be read BEFORE the tuple map: concurrent readers may
	// ensure() r between the two reads, and reading lazy first guarantees
	// that a nil here means the loaded map assignment is already visible
	// (ensure publishes it with a release store on the lazy pointer).
	ls := r.lazy.Load()
	out := &Relation{schema: r.schema, tuples: r.tuples, version: r.version, gen: r.gen, encStats: r.encStats}
	out.shared.Store(true)
	out.lazy.Store(ls)
	// The share reads the same frozen storage at the same stamp, so the
	// coded sidecar — stamp- and dictionary-validated on every use —
	// stays valid; carry it (and the churn score that rations its
	// rebuilds) instead of re-interning the relation on the other side.
	out.encoding.Store(r.encoding.Load())
	return out
}

// Add inserts a tuple; duplicates are ignored.  The arity must match.  The
// relation adopts t: callers must not mutate it after Add returns.
func (r *Relation) Add(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("table: tuple %v has arity %d, relation %s has arity %d",
			t, len(t), r.schema.Name, r.schema.Arity())
	}
	r.mutable()
	var buf [keyBufSize]byte
	k := t.AppendKey(buf[:0])
	if _, ok := r.tuples[string(k)]; !ok {
		r.tuples[string(k)] = t
		r.noteInsert(string(k), t)
	}
	return nil
}

// MustAdd is Add that panics on arity mismatch.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// AddBatch inserts a batch of tuples with a single mutation step: one
// version bump, one copy-on-write check and one derived-cache invalidation
// for the whole batch, instead of one per tuple.  The chunked executor
// (internal/plan) materializes operator output through it.  Like Add, the
// relation adopts the tuples; duplicates are ignored.
func (r *Relation) AddBatch(ts []Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	arity := r.schema.Arity()
	for _, t := range ts {
		if len(t) != arity {
			return fmt.Errorf("table: tuple %v has arity %d, relation %s has arity %d",
				t, len(t), r.schema.Name, arity)
		}
	}
	r.mutable()
	var buf [keyBufSize]byte
	for _, t := range ts {
		k := t.AppendKey(buf[:0])
		if _, ok := r.tuples[string(k)]; !ok {
			r.tuples[string(k)] = t
			r.noteInsert(string(k), t)
		}
	}
	return nil
}

// MustAddBatch is AddBatch that panics on arity mismatch.
func (r *Relation) MustAddBatch(ts []Tuple) {
	if err := r.AddBatch(ts); err != nil {
		panic(err)
	}
}

// AddAll inserts all tuples of another relation (arity must match).  The
// stored keys of o are reused, so no tuple is re-encoded or copied.
func (r *Relation) AddAll(o *Relation) error {
	if o.Len() == 0 {
		return nil
	}
	if o.Arity() != r.schema.Arity() {
		return fmt.Errorf("table: AddAll of arity %d into relation %s of arity %d",
			o.Arity(), r.schema.Name, r.schema.Arity())
	}
	r.mutable()
	if r.tracked() {
		for k, t := range o.tuples {
			if _, ok := r.tuples[k]; !ok {
				r.tuples[k] = t
				r.noteInsert(k, t)
			}
		}
		return nil
	}
	for k, t := range o.tuples {
		r.tuples[k] = t
	}
	return nil
}

// Remove deletes a tuple if present and reports whether it was there.
func (r *Relation) Remove(t Tuple) bool {
	r.ensure()
	var buf [keyBufSize]byte
	k := t.AppendKey(buf[:0])
	if old, ok := r.tuples[string(k)]; ok {
		r.mutable()
		delete(r.tuples, string(k))
		r.noteDelete(string(k), old)
		return true
	}
	return false
}

// Contains reports whether the tuple is present (marked-null identity).
func (r *Relation) Contains(t Tuple) bool {
	if r == nil {
		return false
	}
	r.ensure()
	var buf [keyBufSize]byte
	_, ok := r.tuples[string(t.AppendKey(buf[:0]))]
	return ok
}

// ContainsKey reports whether a tuple with the given binary key (as built
// by Tuple.AppendKey) is present.  Query plans probe with reusable key
// buffers, so this never allocates.
func (r *Relation) ContainsKey(key []byte) bool {
	if r == nil {
		return false
	}
	r.ensure()
	_, ok := r.tuples[string(key)]
	return ok
}

// ContainsKeyString is ContainsKey for an already-interned key string.
func (r *Relation) ContainsKeyString(key string) bool {
	if r == nil {
		return false
	}
	r.ensure()
	_, ok := r.tuples[key]
	return ok
}

// EachKeyed is Each, additionally passing each tuple's stored key.
func (r *Relation) EachKeyed(f func(key string, t Tuple) bool) {
	if r == nil {
		return
	}
	r.ensure()
	for k, t := range r.tuples {
		if !f(k, t) {
			return
		}
	}
}

// Tuples returns the tuples in canonical (sorted) order.  The returned
// slice and its tuples are copies; mutating them does not affect r.
func (r *Relation) Tuples() []Tuple {
	if r == nil {
		return nil
	}
	r.ensure()
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t.Clone())
	}
	slices.SortFunc(out, Tuple.Compare)
	return out
}

// SortedTuples returns the stored tuples in canonical (sorted) order
// without copying them.  The tuples are shared with the relation and must
// not be mutated; the slice itself is fresh.  Deterministic-order
// consumers that only read (core computation, direct products) use this
// instead of Tuples to avoid the per-tuple clones.
func (r *Relation) SortedTuples() []Tuple {
	if r == nil {
		return nil
	}
	r.ensure()
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	slices.SortFunc(out, Tuple.Compare)
	return out
}

// Each calls f on every tuple (in unspecified order) until f returns false.
// The tuple passed to f must not be mutated.
func (r *Relation) Each(f func(Tuple) bool) {
	if r == nil {
		return
	}
	r.ensure()
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// Clone returns a copy of the relation.  The copy is made lazily: both
// relations share the tuple map until one of them is mutated.
func (r *Relation) Clone() *Relation { return r.share() }

// Rename returns a copy of the relation under a new name (same tuples,
// shared copy-on-write).
func (r *Relation) Rename(name string) *Relation {
	out := r.share()
	out.schema = r.schema.Rename(name)
	return out
}

// WithSchema returns a relation with the same tuples (shared copy-on-write)
// under a different schema of the same arity; it panics on arity mismatch.
func (r *Relation) WithSchema(rs schema.Relation) *Relation {
	if rs.Arity() != r.schema.Arity() {
		panic(fmt.Sprintf("table: WithSchema arity %d on relation of arity %d", rs.Arity(), r.schema.Arity()))
	}
	out := r.share()
	out.schema = rs
	return out
}

// Equal reports set equality of tuples; the relation names and attribute
// names are ignored, only arity and contents matter.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() || r.Arity() != o.Arity() {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// IsComplete reports whether no tuple contains a null.
func (r *Relation) IsComplete() bool {
	r.ensure()
	for _, t := range r.tuples {
		if t.HasNull() {
			return false
		}
	}
	return true
}

// IsCodd reports whether the relation is a Codd table: every null occurs at
// most once in the whole relation.
func (r *Relation) IsCodd() bool {
	r.ensure()
	seen := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			if v.IsNull() {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
	}
	return true
}

// CompletePart returns the sub-relation of null-free tuples (D_cmpl in the
// paper: the part of the answer kept when extracting certain answers).  A
// relation that is already complete is shared copy-on-write rather than
// copied.
func (r *Relation) CompletePart() *Relation {
	if r.IsComplete() {
		return r.share()
	}
	return r.Filter(func(t Tuple) bool { return t.IsComplete() })
}

// Nulls returns the set of nulls occurring in the relation.
func (r *Relation) Nulls() map[value.Value]bool {
	r.ensure()
	out := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			if v.IsNull() {
				out[v] = true
			}
		}
	}
	return out
}

// Consts returns the set of constants occurring in the relation.
func (r *Relation) Consts() map[value.Value]bool {
	r.ensure()
	out := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			if v.IsConst() {
				out[v] = true
			}
		}
	}
	return out
}

// ActiveDomain returns adom(r) = Consts(r) ∪ Nulls(r).
func (r *Relation) ActiveDomain() map[value.Value]bool {
	r.ensure()
	out := map[value.Value]bool{}
	for _, t := range r.tuples {
		for _, v := range t {
			out[v] = true
		}
	}
	return out
}

// Map applies f to every value of every tuple and returns the resulting
// relation (useful for applying valuations and homomorphisms).  Tuples that
// f leaves unchanged are shared together with their stored keys.
func (r *Relation) Map(f func(value.Value) value.Value) *Relation {
	r.ensure()
	out := &Relation{schema: r.schema, tuples: make(map[string]Tuple, len(r.tuples)), gen: nextGen()}
	out.fillMapped(r, f)
	return out
}

// FillMapped resets r in place to f applied to every tuple of src, adopting
// src's schema.  The tuple map storage is reused across calls when r is not
// shared, which lets world-enumeration workers apply one valuation after
// another without reallocating.
func (r *Relation) FillMapped(src *Relation, f func(value.Value) value.Value) {
	r.Reset(src.schema)
	r.fillMapped(src, f)
}

// Reset clears r in place to the empty relation over rs, reusing the tuple
// map storage when r owns it exclusively.  World enumeration uses it to
// recycle per-world scratch relations.
func (r *Relation) Reset(rs schema.Relation) {
	r.schema = rs
	r.version++
	r.invalidateDerived()
	// A tracked reset must record the deletion of every stored tuple, so a
	// pending lazy load has to materialize first; untracked resets throw
	// the content away unseen, so the loader is simply dropped.
	if r.tracked() {
		r.ensure()
	} else {
		r.dropLazy()
	}
	r.noteDeleteAll()
	if r.tuples == nil || r.shared.Load() {
		r.tuples = make(map[string]Tuple)
		r.gen = nextGen()
		r.shared.Store(false)
	} else {
		clear(r.tuples)
	}
}

func (r *Relation) fillMapped(src *Relation, f func(value.Value) value.Value) {
	src.ensure()
	var buf [keyBufSize]byte
	tracked := r.tracked()
	for k, t := range src.tuples {
		nt, changed := t.mapChanged(f)
		if !changed {
			if tracked {
				if _, ok := r.tuples[k]; !ok {
					r.noteInsert(k, t)
				}
			}
			r.tuples[k] = t
			continue
		}
		nk := nt.AppendKey(buf[:0])
		if _, ok := r.tuples[string(nk)]; !ok {
			r.tuples[string(nk)] = nt
			if tracked {
				r.noteInsert(string(nk), nt)
			}
		}
	}
}

// Filter returns the sub-relation of tuples satisfying pred.  Tuples and
// their stored keys are shared with r, not copied.
func (r *Relation) Filter(pred func(Tuple) bool) *Relation {
	r.ensure()
	out := &Relation{schema: r.schema, tuples: make(map[string]Tuple), gen: nextGen()}
	for k, t := range r.tuples {
		if pred(t) {
			out.tuples[k] = t
		}
	}
	return out
}

// Retain removes, in place, every tuple for which pred is false.  It is the
// allocation-free complement of Filter, used for running intersections.
func (r *Relation) Retain(pred func(Tuple) bool) {
	r.mutable()
	for k, t := range r.tuples {
		if !pred(t) {
			delete(r.tuples, k)
			r.noteDelete(k, t)
		}
	}
}

// appendCanonicalKey appends a canonical binary encoding of the relation's
// contents (its sorted tuple keys, count-prefixed) to dst.
func (r *Relation) appendCanonicalKey(dst []byte) []byte {
	r.ensure()
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = append(dst, k...)
	}
	return dst
}

// CanonicalKey returns a canonical encoding of the relation's tuple set:
// two relations have equal canonical keys iff they contain the same tuples.
// It is much cheaper than String and is used to deduplicate worlds and
// answers during enumeration.
func (r *Relation) CanonicalKey() string {
	return string(r.appendCanonicalKey(nil))
}

// String renders the relation as Name{(t1), (t2), ...} in canonical order.
func (r *Relation) String() string {
	ts := r.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return r.schema.Name + "{" + strings.Join(parts, ", ") + "}"
}
