package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"incdata/internal/value"
)

func TestDictEncodeDecodeRoundTrip(t *testing.T) {
	d := NewDict()
	vals := []value.Value{
		value.Int(0), value.Int(-1), value.Int(1 << 40),
		value.String("a"), value.String("b"), value.String(""),
		value.Null(1), value.Null(77),
	}
	codes := make([]uint64, len(vals))
	for i, v := range vals {
		c, ok := d.Encode(v)
		if !ok {
			t.Fatalf("Encode(%v) not ok", v)
		}
		codes[i] = c
		if got := d.Decode(c); got != v {
			t.Fatalf("Decode(Encode(%v)) = %v", v, got)
		}
	}
	// Code equality must coincide with value equality.
	for i, a := range vals {
		for j, b := range vals {
			if (codes[i] == codes[j]) != (a == b) {
				t.Fatalf("code equality disagrees with value equality: %v vs %v", a, b)
			}
		}
	}
	// Nulls are tagged, never interned.
	for i, v := range vals {
		if value.CodeIsNull(codes[i]) != v.IsNull() {
			t.Fatalf("CodeIsNull(%v) wrong for %v", codes[i], v)
		}
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3 interned strings", d.Len())
	}
	// Re-encoding is stable.
	if c, _ := d.Encode(value.String("a")); c != codes[3] {
		t.Fatal("re-encoding changed the code")
	}
	// The only unencodable values: nulls with id ≥ 2^62.
	if _, ok := d.Encode(value.Null(uint64(1) << 62)); ok {
		t.Fatal("huge null id must not encode")
	}
}

func TestEncodingBuildAndInvalidate(t *testing.T) {
	d := NewDict()
	r := rel2(t, "R", []string{"1", "x"}, []string{"2", "y"}, []string{"⊥1", "x"})
	e := r.Encoding(d)
	if !e.Ok() || e.Rows() != 3 {
		t.Fatalf("Ok=%v Rows=%d", e.Ok(), e.Rows())
	}
	if e.ColConst(0) {
		t.Error("column 0 holds a null; ColConst must be false")
	}
	if !e.ColConst(1) {
		t.Error("column 1 is null-free; ColConst must be true")
	}
	// Decoding the vectors reproduces the relation's tuples.
	seen := map[string]bool{}
	for i := 0; i < e.Rows(); i++ {
		seen[fmt.Sprintf("%v|%v", d.Decode(e.Col(0)[i]), d.Decode(e.Col(1)[i]))] = true
	}
	if len(seen) != 3 {
		t.Fatalf("decoded rows = %v", seen)
	}
	// Cached until mutation.
	if r.Encoding(d) != e {
		t.Fatal("second Encoding call must return the cached sidecar")
	}
	r.MustAdd(MustParseTuple("3", "z"))
	e2 := r.Encoding(d)
	if e2 == e {
		t.Fatal("mutation must invalidate the cached encoding")
	}
	if e2.Rows() != 4 {
		t.Fatalf("rebuilt Rows = %d, want 4", e2.Rows())
	}
	// A different dictionary also misses the cache.
	if r.Encoding(NewDict()) == e2 {
		t.Fatal("an encoding must be keyed by its dictionary")
	}
}

func TestEncodingUnencodableIsCachedNegative(t *testing.T) {
	d := NewDict()
	r := NewRelationArity("R", 1)
	r.MustAdd(NewTuple(value.Null(uint64(1) << 62)))
	e := r.Encoding(d)
	if e == nil || e.Ok() {
		t.Fatalf("encoding of an unencodable relation must be a non-nil negative, got %+v", e)
	}
	if r.Encoding(d) != e {
		t.Fatal("the negative must be cached too")
	}
	if e.Index([]int{0}) != nil {
		t.Fatal("Index on a failed encoding must be nil")
	}
}

func TestCodedIndexLookup(t *testing.T) {
	d := NewDict()
	r := rel2(t, "R",
		[]string{"1", "x"}, []string{"1", "y"}, []string{"2", "x"}, []string{"⊥1", "x"})
	e := r.Encoding(d)
	ix := e.Index([]int{0})
	if ix == nil || ix.Len() != 4 {
		t.Fatalf("index: %+v", ix)
	}
	if ix.AllComplete() {
		t.Error("index over a relation with a null must not be AllComplete")
	}
	if got := e.Index([]int{0}); got != ix {
		t.Error("same positions must return the cached index")
	}
	probe := func(v value.Value) int {
		c, ok := d.Encode(v)
		if !ok {
			t.Fatalf("encode %v", v)
		}
		key := []uint64{c}
		h := value.HashCode(value.CodeHashSeed, c)
		n := 0
		for s := ix.Lookup(h); s != 0; {
			var row int32
			row, s = ix.At(s)
			if ix.MatchesKey(row, key) {
				n++
			}
		}
		if ix.HasKey(h, key) != (n > 0) {
			t.Fatalf("HasKey disagrees with chain walk for %v", v)
		}
		return n
	}
	if got := probe(value.Int(1)); got != 2 {
		t.Errorf("key 1 matched %d rows, want 2", got)
	}
	if got := probe(value.Int(2)); got != 1 {
		t.Errorf("key 2 matched %d rows, want 1", got)
	}
	if got := probe(value.Null(1)); got != 1 {
		t.Errorf("key ⊥1 matched %d rows, want 1", got)
	}
	if got := probe(value.Int(9)); got != 0 {
		t.Errorf("absent key matched %d rows, want 0", got)
	}
}

// TestEncodingChurnGuard pins the churn heuristic: a relation whose
// sidecar keeps getting invalidated before any reuse is eventually
// declined (Encoding returns nil, the plan layer falls back to the
// columnar path), and a relation that goes quiet earns its way back to
// full cache hits through the periodic probe rebuild.
func TestEncodingChurnGuard(t *testing.T) {
	d := NewDict()
	r := NewRelationArity("R", 1)
	r.MustAdd(NewTuple(value.Int(1)))
	declined := false
	for i := 0; i < 64; i++ {
		if r.Encoding(d) == nil {
			declined = true
			break
		}
		r.MustAdd(NewTuple(value.Int(int64(10 + i))))
	}
	if !declined {
		t.Fatal("a build-invalidate loop with no reuse must eventually be declined")
	}
	// Quiet relation: the probe rebuilds within encProbeInterval requests.
	var e *Encoding
	for i := 0; e == nil && i <= encProbeInterval; i++ {
		e = r.Encoding(d)
	}
	if e == nil || !e.Ok() {
		t.Fatal("the probe must rebuild once the relation goes quiet")
	}
	// Sustained reuse decays the churn score back to zero.
	for i := 0; i < encChurnCap; i++ {
		if got := r.Encoding(d); got != e {
			t.Fatalf("request %d after recovery missed the cached sidecar", i)
		}
	}
	if c := r.encStats.churn.Load(); c != 0 {
		t.Fatalf("churn = %d after sustained reuse, want 0", c)
	}
}

// TestEncodingConcurrentBuildVsWriter races concurrent Encoding builders
// (CAS publication) against a committing writer that keeps mutating the
// relation and thereby invalidating the sidecar.  Run under -race in CI.
// Every encoding a reader observes must be internally consistent: its row
// count matches its vectors, and its stamp never belongs to the future —
// a reader may see a stale (already-invalidated) encoding, but never a
// torn one.
func TestEncodingConcurrentBuildVsWriter(t *testing.T) {
	dict := NewDict()
	r := NewRelationArity("R", 2)
	for i := 0; i < 64; i++ {
		r.MustAdd(NewTuple(value.Int(int64(i%8)), value.String(fmt.Sprintf("s%d", i%5))))
	}

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := r.Encoding(dict)
				if e == nil {
					// The churn guard declined: the writer is invalidating
					// faster than readers reuse the sidecar.  Legal; retry.
					continue
				}
				if !e.Ok() {
					t.Error("all values are encodable; Ok must hold")
					return
				}
				rows := e.Rows()
				for j := 0; j < 2; j++ {
					if len(e.Col(j)) != rows {
						t.Errorf("col %d has %d codes for %d rows", j, len(e.Col(j)), rows)
						return
					}
				}
				// Decode a random cell; the dictionary must already hold
				// every code the published encoding mentions.
				if rows > 0 {
					i := rnd.Intn(rows)
					_ = dict.Decode(e.Col(0)[i])
					_ = dict.Decode(e.Col(1)[i])
				}
				// Coded indexes CAS-publish on the encoding concurrently.
				if ix := e.Index([]int{0}); ix.Len() != rows {
					t.Errorf("index has %d entries for %d rows", ix.Len(), rows)
					return
				}
			}
		}(g)
	}

	// The committing writer: each batch bumps the stamp and invalidates.
	for i := 0; i < 200; i++ {
		r.MustAdd(NewTuple(value.Int(int64(100+i)), value.String(fmt.Sprintf("w%d", i%7))))
	}
	close(stop)
	wg.Wait()

	// After the writer quiesces, a fresh encoding describes the final
	// relation exactly.  The churn guard may decline the first few
	// requests (the writer just hammered the relation); keep asking —
	// the probe must rebuild within encProbeInterval requests.
	var e *Encoding
	for i := 0; e == nil && i <= encProbeInterval; i++ {
		e = r.Encoding(dict)
	}
	if !e.Ok() || e.Rows() != r.Len() {
		t.Fatalf("final encoding: Ok=%v Rows=%d Len=%d", e.Ok(), e.Rows(), r.Len())
	}
	if e.stamp != r.Stamp() {
		t.Fatalf("final encoding stamp %v != relation stamp %v", e.stamp, r.Stamp())
	}
}
