package table

// Lazy relation loading: the durable store (internal/store) hands the
// engine databases whose relations carry a loader instead of tuples, so
// Open costs O(manifest) and a relation's chunks are read from disk only
// when something first scans, probes, indexes or mutates it.
//
// The design constraint is that everything built on relation headers —
// content stamps, copy-on-write sharing, plan-cache validation, the
// derived index/partitioning/encoding caches — must behave exactly as if
// the tuples had been there all along.  Loading therefore populates the
// tuple map WITHOUT bumping the version or generation (the content is
// logically present from the start; materializing it changes nothing),
// and the load state is a pointer shared across copy-on-write shares, so
// a snapshot chain of an unloaded relation loads its chunks exactly once
// no matter which share touches the data first.

import (
	"fmt"
	"sync"

	"incdata/internal/schema"
)

// lazyLoad is the shared load state of one unloaded relation lineage.
// All shares of the relation point at the same instance; the mutex
// serializes the single load, and the filled map is shared by every
// side (the shares are marked shared, so the usual copy-on-write kicks
// in before any mutation).
type lazyLoad struct {
	mu   sync.Mutex
	fill func(add func(Tuple)) error
	m    map[string]Tuple // the loaded storage, set once under mu
	done bool
}

// NewLazyRelation returns a relation over rs whose tuples are produced by
// fill on first access.  fill receives an add callback and must call it
// once per tuple (chunk by chunk, in any order; duplicates collapse); it
// runs at most once per lineage, even across copy-on-write shares and
// concurrent readers.  The relation behaves exactly like an eager one:
// its stamp is valid (and stable across the load) from the moment it is
// created.
//
// A failing load panics with the load error: by the time a loader runs,
// the caller is deep inside accessors (Each, Index, Len) that have no
// error channel, and a store whose chunks cannot be read is as broken as
// unreadable memory.  Callers who want to surface load errors gracefully
// call Preload first.
func NewLazyRelation(rs schema.Relation, fill func(add func(Tuple)) error) *Relation {
	r := &Relation{schema: rs, gen: nextGen(), encStats: &encStats{}}
	r.lazy.Store(&lazyLoad{fill: fill})
	return r
}

// ensure materializes a lazily loading relation's tuples; it is a cheap
// nil check on the overwhelmingly common eager path.  Every accessor and
// mutator of the tuple map calls it first.
func (r *Relation) ensure() {
	if r == nil {
		return
	}
	ls := r.lazy.Load()
	if ls == nil {
		return
	}
	ls.mu.Lock()
	if !ls.done {
		m := make(map[string]Tuple)
		var buf [keyBufSize]byte
		err := ls.fill(func(t Tuple) {
			k := t.AppendKey(buf[:0])
			m[string(k)] = t
		})
		if err != nil {
			ls.mu.Unlock()
			panic(fmt.Sprintf("table: lazy load of %s failed: %v", r.schema.Name, err))
		}
		ls.m = m
		ls.done = true
		ls.fill = nil
	}
	r.tuples = ls.m
	ls.mu.Unlock()
	// Publish "loaded" with release semantics: a goroutine that reads
	// lazy == nil afterwards also observes the r.tuples assignment above.
	r.lazy.Store(nil)
}

// Preload forces a lazily loading relation to materialize now, returning
// the load error instead of panicking.  Eager relations return nil.
func (r *Relation) Preload() (err error) {
	if r == nil || r.lazy.Load() == nil {
		return nil
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	r.ensure()
	return nil
}

// Loaded reports whether the relation's tuples are materialized in
// memory (always true for eager relations).
func (r *Relation) Loaded() bool {
	return r == nil || r.lazy.Load() == nil
}

// dropLazy discards a pending loader without running it; Reset uses it
// when the content is about to be thrown away anyway.
func (r *Relation) dropLazy() {
	r.lazy.Store(nil)
}
