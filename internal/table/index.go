package table

// Hash indexes over relation columns.  An Index groups the tuples of a
// relation by the binary key of a fixed list of column positions, in the
// chained-slice layout the evaluator's hash join uses: one map entry per
// distinct key and an int32-linked chain of tuples per entry, so probes
// convert no strings and allocate nothing.
//
// Indexes are built lazily by Relation.Index and cached on the relation;
// any mutation of the relation invalidates its cached indexes.  Because
// relations are treated as immutable while they are being evaluated
// (see the package contract on Relation), a cached index stays valid for
// as long as query plans keep probing the same relation — this is what
// lets world enumeration build each join's invariant build side once and
// probe it once per world.

// Index is an immutable hash index of a relation over a fixed list of
// column positions.
type Index struct {
	positions []int
	heads     map[string]int32 // projected key → 1-based head into entries
	entries   []indexEntry
	complete  bool // every indexed tuple is null-free
}

type indexEntry struct {
	t    Tuple
	next int32 // 1-based index into entries; 0 terminates the chain
}

// Positions returns the column positions the index is keyed on.
func (ix *Index) Positions() []int { return ix.positions }

// AllComplete reports whether every indexed tuple is null-free, tracked
// once at build time.  The vectorized hash-join probe (internal/plan)
// reads it to take the all-constant fast path: when the build side is
// null-free and the probe columns carry the all-constant sidecar, join
// output needs no per-value null bookkeeping at all.
func (ix *Index) AllComplete() bool { return ix.complete }

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return len(ix.entries) }

// Lookup returns the head of the chain of tuples whose projection on the
// indexed positions has the given binary key, or 0 if there is none.  The
// []byte key is never retained, so callers can reuse a scratch buffer.
func (ix *Index) Lookup(key []byte) int32 { return ix.heads[string(key)] }

// At returns the tuple stored at chain slot i (1-based, as returned by
// Lookup) and the next slot of the chain (0 terminates).  The returned
// tuple must not be mutated.
func (ix *Index) At(i int32) (Tuple, int32) {
	e := ix.entries[i-1]
	return e.t, e.next
}

// AppendTupleKey appends the key of t restricted to the indexed positions
// to dst — the probe-side counterpart of the index's own key encoding.
func (ix *Index) AppendTupleKey(dst []byte, t Tuple) []byte {
	for _, p := range ix.positions {
		dst = t[p].AppendKey(dst)
	}
	return dst
}

// Index returns a hash index of the relation over the given column
// positions, building it on first use and caching it on the relation.
// Concurrent callers are safe; the cache is invalidated by any mutation
// of the relation.  The positions slice is copied.
func (r *Relation) Index(positions []int) *Index {
	for {
		set := r.indexes.Load()
		if set != nil {
			for _, ix := range *set {
				if samePositions(ix.positions, positions) {
					return ix
				}
			}
		}
		ix := r.buildIndex(positions)
		var cur []*Index
		if set != nil {
			cur = *set
		}
		next := make([]*Index, 0, len(cur)+1)
		next = append(next, cur...)
		next = append(next, ix)
		if r.indexes.CompareAndSwap(set, &next) {
			return ix
		}
		// Lost a race with another builder; retry (and likely adopt theirs).
	}
}

func (r *Relation) buildIndex(positions []int) *Index {
	r.ensure()
	ix := &Index{
		positions: append([]int(nil), positions...),
		heads:     make(map[string]int32, r.Len()),
		entries:   make([]indexEntry, 0, r.Len()),
		complete:  true,
	}
	var buf [keyBufSize]byte
	for _, t := range r.tuples {
		key := buf[:0]
		for _, p := range positions {
			key = t[p].AppendKey(key)
		}
		head := ix.heads[string(key)]
		ix.entries = append(ix.entries, indexEntry{t: t, next: head})
		ix.heads[string(key)] = int32(len(ix.entries))
		if ix.complete && !t.IsComplete() {
			ix.complete = false
		}
	}
	return ix
}

// invalidateDerived drops all cached derived structures (hash indexes,
// partitionings and the coded sidecar); every mutation path calls it.
func (r *Relation) invalidateDerived() {
	if r.indexes.Load() != nil {
		r.indexes.Store(nil)
	}
	r.invalidatePartitionings()
	r.invalidateEncoding()
}

func samePositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
