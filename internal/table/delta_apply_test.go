package table

import (
	"testing"

	"incdata/internal/schema"
)

// applyFixture builds a two-relation database and returns it.
func applyFixture(t *testing.T) *Database {
	t.Helper()
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "x"),
	)
	d := NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "3", "⊥1")
	d.MustAddRow("S", "hello")
	return d
}

// TestApplyRoundTrip pins that a captured change set replays exactly: for
// any mutation sequence, old.Apply(captured) == new, and applying the
// inverted change set undoes it.
func TestApplyRoundTrip(t *testing.T) {
	d := applyFixture(t)
	before := d.Clone()
	tr := d.Track()
	d.MustAddRow("R", "5", "6")
	d.Relation("R").Remove(MustParseTuple("1", "2"))
	d.MustAddRow("S", "world")
	d.MustAddRow("S", "gone")
	d.Relation("S").Remove(MustParseTuple("gone")) // cancels out
	cs := tr.Stop()

	replayed := before.Clone()
	if err := replayed.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(d) {
		t.Fatalf("replay mismatch:\n%s\nwant:\n%s", replayed, d)
	}

	undone := d.Clone()
	if err := undone.Apply(cs.Invert()); err != nil {
		t.Fatal(err)
	}
	if !undone.Equal(before) {
		t.Fatalf("invert mismatch:\n%s\nwant:\n%s", undone, before)
	}
}

// TestApplyUnknownRelation pins the error on replaying a delta for a
// relation the schema does not have.
func TestApplyUnknownRelation(t *testing.T) {
	d := applyFixture(t)
	cs := NewChangeSet()
	cs.Rels["Nope"] = NewDelta()
	cs.Rels["Nope"].Inserted["k"] = MustParseTuple("1")
	if err := d.Apply(cs); err == nil {
		t.Fatal("apply of unknown relation must fail")
	}
}

// TestComposeCancels pins the composition algebra: applying two change
// sets in sequence equals applying their composition, and a change
// followed by its inverse composes to the empty set.
func TestComposeCancels(t *testing.T) {
	d := applyFixture(t)
	start := d.Clone()

	tr := d.Track()
	d.MustAddRow("R", "5", "6")
	d.Relation("S").Remove(MustParseTuple("hello"))
	cs1 := tr.Stop()

	tr = d.Track()
	d.Relation("R").Remove(MustParseTuple("5", "6")) // undoes cs1's insert
	d.MustAddRow("S", "hello")                       // undoes cs1's delete
	d.MustAddRow("S", "fresh")
	cs2 := tr.Stop()

	net := NewChangeSet()
	net.Compose(cs1)
	net.Compose(cs2)

	// Net must be exactly the S insert of "fresh".
	if got := net.Size(); got != 1 {
		t.Fatalf("net size %d, want 1:\n%s", got, net)
	}
	composed := start.Clone()
	if err := composed.Apply(net); err != nil {
		t.Fatal(err)
	}
	if !composed.Equal(d) {
		t.Fatalf("composed replay mismatch:\n%s\nwant:\n%s", composed, d)
	}

	// cs1 ∘ cs1⁻¹ is empty.
	undo := NewChangeSet()
	undo.Compose(cs1)
	undo.Compose(cs1.Invert())
	if !undo.Empty() {
		t.Fatalf("cs ∘ cs⁻¹ not empty:\n%s", undo)
	}
}

// TestApplyDeltaTracked pins that ApplyDelta feeds the delta capture of a
// tracked relation — version merges rely on it to record their commit
// delta.
func TestApplyDeltaTracked(t *testing.T) {
	d := applyFixture(t)
	delta := NewDelta()
	ins := MustParseTuple("9", "9")
	delta.Inserted[ins.Key()] = ins
	del := MustParseTuple("1", "2")
	delta.Deleted[del.Key()] = del

	tr := d.Track()
	d.Relation("R").ApplyDelta(delta)
	cs := tr.Stop()
	got := cs.Delta("R")
	if got.Size() != 2 || len(got.Inserted) != 1 || len(got.Deleted) != 1 {
		t.Fatalf("captured delta %v, want the applied insert+delete", got)
	}
}
