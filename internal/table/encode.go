package table

// Coded execution support: the per-database value dictionary (Dict), the
// per-relation coded-column sidecar (Encoding) and hash indexes over raw
// codes (CodedIndex).
//
// An Encoding interns every column of a relation into a dense []uint64
// code vector against the database's dictionary: in-range integers and
// null ids embed arithmetically in the code space (see value.EncodeDirect)
// and everything else — strings, astronomically out-of-range integers —
// gets a dictionary slot.  Because the dictionary interns each distinct
// value exactly once, code equality coincides with value equality across
// every relation encoded against the same dictionary, which is all that
// certain-answer evaluation ever asks of constants.  The vectorized
// kernels of internal/plan run entirely over these codes and decode back
// to value.Value only at materialization.
//
// Encodings are built lazily by Relation.Encoding and CAS-published on
// the relation with the same lifecycle as Partitioning: any mutation
// invalidates the cached sidecar (invalidateDerived), and the recorded
// content stamp double-checks that a cached encoding still describes the
// relation it is asked for.  A relation containing a value outside the
// code space (only null ids ≥ 2^62 qualify) yields an Encoding with
// Ok() == false, which the plan layer treats as "fall back to the
// columnar path".

import (
	"sync"
	"sync/atomic"

	"incdata/internal/value"
)

// Dict is a per-database intern table for values that do not embed
// directly in the code space.  It only ever grows; codes are stable for
// the lifetime of the dictionary, and the same dictionary is shared by
// every snapshot and clone of a database lineage, so codes stay
// comparable across snapshots.  All methods are safe for concurrent use.
type Dict struct {
	mu   sync.RWMutex
	ids  map[value.Value]uint64 // value → full (tagged) code
	vals []value.Value          // dictionary index → value; append-only
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[value.Value]uint64)} }

// Encode returns the code of v, interning it when the code space cannot
// express it directly.  It reports false only for values outside the
// code space entirely: nulls with id ≥ 2^62 (nulls must never be
// interned, or the tag test CodeIsNull would lie) and dictionary
// overflow past 2^62 entries.
func (d *Dict) Encode(v value.Value) (uint64, bool) {
	if c, ok := value.EncodeDirect(v); ok {
		return c, true
	}
	if v.IsNull() {
		return 0, false
	}
	d.mu.RLock()
	c, ok := d.ids[v]
	d.mu.RUnlock()
	if ok {
		return c, true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.ids[v]; ok {
		return c, true
	}
	idx := uint64(len(d.vals))
	if idx >= value.CodePayloadLimit {
		return 0, false
	}
	d.vals = append(d.vals, v)
	c = value.DictCode(idx)
	d.ids[v] = c
	return c, true
}

// Decode returns the value a code stands for.  The code must have been
// produced by this dictionary (or value.EncodeDirect).
func (d *Dict) Decode(code uint64) value.Value {
	if v, ok := value.DecodeDirect(code); ok {
		return v
	}
	d.mu.RLock()
	v := d.vals[value.DictIndex(code)]
	d.mu.RUnlock()
	return v
}

// Values returns the current decode table: Values()[i] is the value of
// dictionary code i.  The slice is append-only and its entries are
// immutable, so the returned header stays valid (for the indexes it
// covers) even while other goroutines keep interning; hot decode loops
// take one snapshot and refresh it only when they meet a newer code.
func (d *Dict) Values() []value.Value {
	d.mu.RLock()
	vals := d.vals
	d.mu.RUnlock()
	return vals
}

// Len returns the number of interned (dictionary-coded) values.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.vals)
	d.mu.RUnlock()
	return n
}

// Encoding is the coded-column sidecar of a relation: one []uint64 code
// vector per column (all in the same arbitrary-but-fixed row order) plus
// the per-column all-constant sidecar mirrored from the columnar layout.
// An Encoding is immutable once published.
type Encoding struct {
	dict   *Dict
	stamp  Stamp
	cols   [][]uint64
	consts []bool // per column: no null code present
	rows   int
	ok     bool // every value encoded; false → coded path must fall back
	// indexes caches coded hash indexes by key positions, CAS-published
	// exactly like Relation.indexes.
	indexes atomic.Pointer[[]*CodedIndex]
}

// Ok reports whether every value of the relation was encodable.  When
// false the other accessors carry partial data and must not be used.
func (e *Encoding) Ok() bool { return e != nil && e.ok }

// Rows returns the number of encoded rows.
func (e *Encoding) Rows() int { return e.rows }

// Col returns the code vector of column j.  It must not be mutated.
func (e *Encoding) Col(j int) []uint64 { return e.cols[j] }

// ColConst reports whether column j contains no null code.
func (e *Encoding) ColConst(j int) bool { return e.consts[j] }

// Dict returns the dictionary the encoding was built against.
func (e *Encoding) Dict() *Dict { return e.dict }

// Churn accounting for the coded sidecar.  A build is an O(relation)
// interning pass, repaid only when the sidecar is reused across several
// evaluations; the table layer cannot see evaluation boundaries, but a
// single evaluation makes at most a handful of Encoding calls per
// scanned relation (eligibility check, shared prepare, one per worker
// stream).  So every build charges encChurnCost — set well above one
// evaluation's worth of cache hits — while each hit repays a single
// point: a relation mutating every evaluation or two (view maintenance,
// update streams) rebuilds constantly, accumulates churn and is declined
// at encChurnLimit, while one that rebuilds at most every ~½ dozen
// evaluations decays back to zero.  Declined relations still rebuild
// one request in encProbeInterval, so a relation that goes quiet earns
// its way back under the limit; encChurnCap bounds how far a
// persistently hot relation can climb, keeping that recovery fast.
//
// The score lives in the lineage-shared encStats, not the relation
// header: under the engine's snapshot pattern a sidecar is built on a
// copy-on-write share while the mutations that doom it land on the live
// header, and only a lineage-wide score sees that the builds are never
// amortized.
const (
	encChurnCost     = 32
	encChurnLimit    = 64
	encChurnCap      = 128
	encProbeInterval = 16
)

// encStats counts coded-sidecar build and decline events for one relation
// lineage.  The pointer is shared across copy-on-write shares — like the
// churn score it complements — so Engine.Stats sees the lineage's history
// no matter which snapshot paid for a build.  Derived temporaries made by
// the plan layer carry a nil encStats; the methods are nil-safe.
type encStats struct {
	builds   atomic.Uint64
	declines atomic.Uint64
	churn    atomic.Uint32 // builds not yet repaid by reuse (see above)
	probe    atomic.Uint32 // declined-request counter driving probe rebuilds
}

// noteBuild counts one interning pass and charges the churn score for it;
// cache hits repay the charge one point at a time (churnDecay).
func (s *encStats) noteBuild() {
	if s == nil {
		return
	}
	s.builds.Add(1)
	if c := s.churn.Load(); c < encChurnCap {
		s.churn.CompareAndSwap(c, c+encChurnCost)
	}
}

func (s *encStats) noteDecline() {
	if s != nil {
		s.declines.Add(1)
	}
}

// churnDecay repays one churn point for a cache hit.
func (s *encStats) churnDecay() {
	if s == nil {
		return
	}
	if c := s.churn.Load(); c > 0 {
		s.churn.CompareAndSwap(c, c-1)
	}
}

// declining reports whether the churn score is at or past the decline
// limit; a nil encStats (plan-layer temporaries) never declines.
func (s *encStats) declining() bool {
	return s != nil && s.churn.Load() >= encChurnLimit
}

// probeNext advances the declined-request counter; every
// encProbeInterval-th request rebuilds anyway so a quiet relation can
// recover.
func (s *encStats) probeNext() uint32 {
	if s == nil {
		return 0
	}
	return s.probe.Add(1)
}

// EncodingStats is a point-in-time snapshot of one relation's coded-
// sidecar churn-guard state, surfaced through Engine.Stats: how many
// interning passes the relation has paid for, how many Encoding requests
// the churn guard turned away, and whether it is declining right now.
type EncodingStats struct {
	Builds   uint64 // coded sidecars built (full interning passes)
	Declines uint64 // Encoding requests declined by the churn guard
	Declined bool   // churn score currently at or above the decline limit
}

// Active reports whether the relation has any coded-sidecar history worth
// reporting.
func (s EncodingStats) Active() bool {
	return s.Builds > 0 || s.Declines > 0 || s.Declined
}

// EncodingStats returns the relation's encode/decline counters and whether
// the churn guard is currently declining sidecar builds for it.
func (r *Relation) EncodingStats() EncodingStats {
	if r == nil || r.encStats == nil {
		return EncodingStats{}
	}
	return EncodingStats{
		Builds:   r.encStats.builds.Load(),
		Declines: r.encStats.declines.Load(),
		Declined: r.encStats.declining(),
	}
}

// Encoding returns the relation's coded sidecar against the given
// dictionary, building it on first use and caching it on the relation.
// Concurrent callers are safe; any mutation of the relation invalidates
// the cache (and the stamp check below rejects an encoding that slipped
// past an interleaved mutation).  Check Ok on the result: a relation
// holding a value outside the code space encodes to a cached negative,
// and a relation churning faster than the cache pays off declines with
// nil (Ok() is nil-safe) until it quiets down again.
func (r *Relation) Encoding(dict *Dict) *Encoding {
	if r == nil || dict == nil {
		return nil
	}
	for {
		e := r.encoding.Load()
		if e != nil && e.dict == dict && e.stamp == r.Stamp() {
			r.encStats.churnDecay()
			return e
		}
		if r.encStats.declining() && r.encStats.probeNext()%encProbeInterval != 0 {
			r.encStats.noteDecline()
			return nil
		}
		ne := r.buildEncoding(dict)
		if r.encoding.CompareAndSwap(e, ne) {
			return ne
		}
		// Lost a race with another builder; retry (and likely adopt theirs).
	}
}

func (r *Relation) buildEncoding(dict *Dict) *Encoding {
	r.encStats.noteBuild()
	arity := r.schema.Arity()
	e := &Encoding{
		dict:   dict,
		stamp:  r.Stamp(),
		cols:   make([][]uint64, arity),
		consts: make([]bool, arity),
		rows:   r.Len(),
		ok:     true,
	}
	for j := range e.cols {
		e.cols[j] = make([]uint64, 0, e.rows)
		e.consts[j] = true
	}
	for _, t := range r.tuples {
		for j, v := range t {
			c, ok := dict.Encode(v)
			if !ok {
				e.ok = false
				return e
			}
			e.cols[j] = append(e.cols[j], c)
			if e.consts[j] && value.CodeIsNull(c) {
				e.consts[j] = false
			}
		}
	}
	return e
}

// AdoptEncoding publishes a pre-built coded sidecar: cols holds one code
// vector per column, row i across the vectors encoding exactly one
// stored tuple, with every stored tuple covered once (any order).  The
// coded execution path produces these vectors as a byproduct of
// materializing a temporary, so adopting them saves the full
// re-interning pass a later Encoding call would spend on values the
// materialization just decoded.  The caller must own the relation
// exclusively and must not mutate cols afterwards; vectors that don't
// match the relation's shape are ignored.
func (r *Relation) AdoptEncoding(dict *Dict, cols [][]uint64) {
	if r == nil || dict == nil || len(cols) != r.Arity() {
		return
	}
	e := &Encoding{
		dict:   dict,
		stamp:  r.Stamp(),
		cols:   cols,
		consts: make([]bool, len(cols)),
		rows:   r.Len(),
		ok:     true,
	}
	for j, col := range cols {
		if len(col) != e.rows {
			return
		}
		cst := true
		for _, code := range col {
			if value.CodeIsNull(code) {
				cst = false
				break
			}
		}
		e.consts[j] = cst
	}
	r.encoding.Store(e)
}

// invalidateEncoding drops the cached coded sidecar; every mutation path
// calls it (via invalidateDerived).  The churn score is charged at build
// time and repaid by cache hits (see encStats), so dropping the cache
// needs no extra accounting here — a doomed build has already paid.
func (r *Relation) invalidateEncoding() {
	if r.encoding.Load() != nil {
		r.encoding.Store(nil)
	}
}

// CodedIndex is an immutable hash index over raw u64 codes: tuples are
// grouped by the HashCode-fold of their codes at a fixed list of key
// positions, in the same chained-slice layout as Index, but rows are
// stored as arity-strided code tuples instead of value tuples — probes
// hash machine words and verify matches by u64 equality, with no binary
// key encoding and no allocation.  Distinct keys may share a hash
// bucket; callers verify candidates with MatchesKey.
type CodedIndex struct {
	positions []int
	arity     int
	heads     map[uint64]int32 // code hash → 1-based head into entries
	entries   []codedEntry
	codes     []uint64 // row-major, arity-strided code tuples
	complete  bool     // every indexed row is null-free
}

type codedEntry struct {
	row  int32 // row number into codes (×arity)
	next int32 // 1-based index into entries; 0 terminates the chain
}

// Positions returns the key positions the index hashes on.
func (ix *CodedIndex) Positions() []int { return ix.positions }

// AllComplete reports whether every indexed row is null-free.
func (ix *CodedIndex) AllComplete() bool { return ix.complete }

// Len returns the number of indexed rows.
func (ix *CodedIndex) Len() int { return len(ix.entries) }

// Lookup returns the head of the chain for the given key-code hash (as
// folded by value.HashCode over the key positions), or 0 if none.
func (ix *CodedIndex) Lookup(h uint64) int32 { return ix.heads[h] }

// At returns the row stored at chain slot i (1-based, as returned by
// Lookup) and the next slot of the chain (0 terminates).
func (ix *CodedIndex) At(i int32) (row int32, next int32) {
	e := ix.entries[i-1]
	return e.row, e.next
}

// Row returns the full code tuple of a row.  It must not be mutated.
func (ix *CodedIndex) Row(row int32) []uint64 {
	a := int(row) * ix.arity
	return ix.codes[a : a+ix.arity]
}

// MatchesKey reports whether the row's codes at the key positions equal
// the probe key (key[k] corresponds to positions[k]).
func (ix *CodedIndex) MatchesKey(row int32, key []uint64) bool {
	rc := ix.Row(row)
	for k, p := range ix.positions {
		if rc[p] != key[k] {
			return false
		}
	}
	return true
}

// HasKey reports whether any indexed row matches the probe key with the
// given hash — the coded counterpart of Relation.ContainsKey for
// difference membership.
func (ix *CodedIndex) HasKey(h uint64, key []uint64) bool {
	for e := ix.Lookup(h); e != 0; {
		row, next := ix.At(e)
		if ix.MatchesKey(row, key) {
			return true
		}
		e = next
	}
	return false
}

// Index returns a coded hash index of the encoding over the given key
// positions, building it on first use and caching it on the encoding
// (CAS-published like Relation.Index).  It returns nil on a failed
// encoding.  The positions slice is copied.
func (e *Encoding) Index(positions []int) *CodedIndex {
	if !e.Ok() {
		return nil
	}
	for {
		set := e.indexes.Load()
		if set != nil {
			for _, ix := range *set {
				if samePositions(ix.positions, positions) {
					return ix
				}
			}
		}
		ix := newCodedIndexFromCols(positions, e.cols, e.rows)
		var cur []*CodedIndex
		if set != nil {
			cur = *set
		}
		next := make([]*CodedIndex, 0, len(cur)+1)
		next = append(next, cur...)
		next = append(next, ix)
		if e.indexes.CompareAndSwap(set, &next) {
			return ix
		}
		// Lost a race with another builder; retry (and likely adopt theirs).
	}
}

// NewCodedIndexFromCols builds a coded hash index directly from
// column-wise code vectors (row i across the vectors is one code tuple;
// rows must already be distinct).  The coded join uses it to index a
// derived build side straight off its coded stream, without ever
// materializing the side as tuples.  The vectors are read once and not
// retained.
func NewCodedIndexFromCols(positions []int, cols [][]uint64, rows int) *CodedIndex {
	return newCodedIndexFromCols(positions, cols, rows)
}

func newCodedIndexFromCols(positions []int, cols [][]uint64, rows int) *CodedIndex {
	arity := len(cols)
	ix := &CodedIndex{
		positions: append([]int(nil), positions...),
		arity:     arity,
		heads:     make(map[uint64]int32, rows),
		entries:   make([]codedEntry, 0, rows),
		codes:     make([]uint64, 0, rows*arity),
		complete:  true,
	}
	for i := 0; i < rows; i++ {
		h := value.CodeHashSeed
		for _, p := range positions {
			h = value.HashCode(h, cols[p][i])
		}
		for j := 0; j < arity; j++ {
			c := cols[j][i]
			ix.codes = append(ix.codes, c)
			if ix.complete && value.CodeIsNull(c) {
				ix.complete = false
			}
		}
		head := ix.heads[h]
		ix.entries = append(ix.entries, codedEntry{row: int32(i), next: head})
		ix.heads[h] = int32(len(ix.entries))
	}
	return ix
}

// codedBucket caches one partition bucket's coded index together with
// the dictionary it was encoded against; ix is nil when the bucket holds
// a value outside the code space (a cached negative).
type codedBucket struct {
	dict *Dict
	ix   *CodedIndex
}

// CodedIndex returns the coded hash index of bucket i over the
// partitioning's positions, encoding the bucket's tuples against dict
// and caching the result per bucket (CAS-published like Index).  It
// returns nil when dict is nil or a bucket value is outside the code
// space — callers fall back to the binary-key Index.  It panics on a
// round-robin partitioning, which has no key columns.
func (p *Partitioning) CodedIndex(i int, dict *Dict) *CodedIndex {
	if p.positions == nil {
		panic("table: CodedIndex on a round-robin partitioning")
	}
	if dict == nil {
		return nil
	}
	for {
		cb := p.coded[i].Load()
		if cb != nil && cb.dict == dict {
			return cb.ix
		}
		ncb := &codedBucket{dict: dict, ix: newCodedIndexFromTuples(p.positions, p.buckets[i], dict)}
		if p.coded[i].CompareAndSwap(cb, ncb) {
			return ncb.ix
		}
		// Lost a race with another builder; retry (and likely adopt theirs).
	}
}

// newCodedIndexFromTuples encodes a tuple slice against dict and indexes
// it; it returns nil when any value is outside the code space.
func newCodedIndexFromTuples(positions []int, ts []Tuple, dict *Dict) *CodedIndex {
	arity := 0
	if len(ts) > 0 {
		arity = len(ts[0])
	}
	ix := &CodedIndex{
		positions: append([]int(nil), positions...),
		arity:     arity,
		heads:     make(map[uint64]int32, len(ts)),
		entries:   make([]codedEntry, 0, len(ts)),
		codes:     make([]uint64, 0, len(ts)*arity),
		complete:  true,
	}
	row := make([]uint64, arity)
	for i, t := range ts {
		for j, v := range t {
			c, ok := dict.Encode(v)
			if !ok {
				return nil
			}
			row[j] = c
			if ix.complete && value.CodeIsNull(c) {
				ix.complete = false
			}
		}
		h := value.CodeHashSeed
		for _, p := range positions {
			h = value.HashCode(h, row[p])
		}
		ix.codes = append(ix.codes, row...)
		head := ix.heads[h]
		ix.entries = append(ix.entries, codedEntry{row: int32(i), next: head})
		ix.heads[h] = int32(len(ix.entries))
	}
	return ix
}
