package table

import (
	"testing"

	"incdata/internal/schema"
	"incdata/internal/value"
)

func rel2(t *testing.T, name string, rows ...[]string) *Relation {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("rel2 needs rows")
	}
	r := NewRelationArity(name, len(rows[0]))
	for _, row := range rows {
		r.MustAdd(MustParseTuple(row...))
	}
	return r
}

func TestRelationAddContainsDedup(t *testing.T) {
	r := NewRelationArity("R", 2)
	r.MustAdd(MustParseTuple("1", "2"))
	r.MustAdd(MustParseTuple("1", "2")) // duplicate
	r.MustAdd(MustParseTuple("1", "⊥1"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", r.Len())
	}
	if !r.Contains(MustParseTuple("1", "⊥1")) {
		t.Error("Contains should find tuple with null")
	}
	if r.Contains(MustParseTuple("1", "⊥2")) {
		t.Error("different null id should not be contained")
	}
	if err := r.Add(MustParseTuple("1")); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestRelationMustAddPanics(t *testing.T) {
	r := NewRelationArity("R", 1)
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on arity mismatch")
		}
	}()
	r.MustAdd(MustParseTuple("1", "2"))
}

func TestRelationTuplesSorted(t *testing.T) {
	r := rel2(t, "R", []string{"3", "1"}, []string{"1", "2"}, []string{"⊥1", "5"})
	ts := r.Tuples()
	if len(ts) != 3 {
		t.Fatalf("len = %d", len(ts))
	}
	// canonical order: nulls first, then ints
	if !ts[0].Equal(MustParseTuple("⊥1", "5")) || !ts[1].Equal(MustParseTuple("1", "2")) || !ts[2].Equal(MustParseTuple("3", "1")) {
		t.Errorf("sorted order wrong: %v", ts)
	}
	// returned tuples are copies
	ts[1][0] = value.Int(99)
	if !r.Contains(MustParseTuple("1", "2")) {
		t.Error("Tuples() must return copies")
	}
}

func TestRelationRemoveEachFilter(t *testing.T) {
	r := rel2(t, "R", []string{"1", "2"}, []string{"3", "4"}, []string{"5", "6"})
	if !r.Remove(MustParseTuple("3", "4")) {
		t.Error("Remove should succeed")
	}
	if r.Remove(MustParseTuple("3", "4")) {
		t.Error("second Remove should fail")
	}
	count := 0
	r.Each(func(Tuple) bool { count++; return true })
	if count != 2 {
		t.Errorf("Each visited %d", count)
	}
	// early stop
	count = 0
	r.Each(func(Tuple) bool { count++; return false })
	if count != 1 {
		t.Errorf("Each with early stop visited %d", count)
	}
	f := r.Filter(func(tp Tuple) bool { v, _ := tp[0].AsInt(); return v == 1 })
	if f.Len() != 1 || !f.Contains(MustParseTuple("1", "2")) {
		t.Errorf("Filter = %v", f)
	}
}

func TestRelationCloneRenameEqual(t *testing.T) {
	r := rel2(t, "R", []string{"1", "2"})
	c := r.Clone()
	c.MustAdd(MustParseTuple("3", "4"))
	if r.Len() != 1 {
		t.Error("Clone aliases storage")
	}
	s := r.Rename("S")
	if s.Name() != "S" || !s.Equal(r) {
		t.Error("Rename should preserve tuples, change name; Equal ignores names")
	}
	if r.Equal(c) {
		t.Error("relations with different tuples should differ")
	}
	other := rel2(t, "R", []string{"1", "3"})
	if r.Equal(other) {
		t.Error("different tuples same size should differ")
	}
	if r.Equal(NewRelationArity("R", 3)) {
		t.Error("different arity should differ")
	}
}

func TestRelationCompletenessCodd(t *testing.T) {
	complete := rel2(t, "R", []string{"1", "2"}, []string{"3", "4"})
	if !complete.IsComplete() || !complete.IsCodd() {
		t.Error("complete relation should be complete and Codd")
	}
	// naive table from the paper: R = {(⊥,1,⊥'), (2,⊥',⊥)}
	naive := rel2(t, "R", []string{"⊥1", "1", "⊥2"}, []string{"2", "⊥2", "⊥1"})
	if naive.IsComplete() {
		t.Error("naive table should not be complete")
	}
	if naive.IsCodd() {
		t.Error("repeated nulls -> not a Codd table")
	}
	codd := rel2(t, "S", []string{"⊥1", "1", "⊥2"}, []string{"2", "⊥3", "⊥4"})
	if !codd.IsCodd() {
		t.Error("all-distinct nulls -> Codd table")
	}
}

func TestRelationDomains(t *testing.T) {
	r := rel2(t, "R", []string{"⊥1", "1", "⊥2"}, []string{"2", "⊥2", "⊥1"})
	consts := r.Consts()
	if len(consts) != 2 || !consts[value.Int(1)] || !consts[value.Int(2)] {
		t.Errorf("Consts = %v", consts)
	}
	nulls := r.Nulls()
	if len(nulls) != 2 || !nulls[value.Null(1)] || !nulls[value.Null(2)] {
		t.Errorf("Nulls = %v", nulls)
	}
	if len(r.ActiveDomain()) != 4 {
		t.Errorf("adom = %v", r.ActiveDomain())
	}
}

func TestRelationCompletePartMap(t *testing.T) {
	r := rel2(t, "R", []string{"1", "2"}, []string{"2", "⊥1"})
	cp := r.CompletePart()
	if cp.Len() != 1 || !cp.Contains(MustParseTuple("1", "2")) {
		t.Errorf("CompletePart = %v", cp)
	}
	m := r.Map(func(v value.Value) value.Value {
		if v.IsNull() {
			return value.Int(9)
		}
		return v
	})
	if m.Len() != 2 || !m.Contains(MustParseTuple("2", "9")) {
		t.Errorf("Map = %v", m)
	}
}

func TestRelationMapMerges(t *testing.T) {
	// When a valuation makes two tuples identical, set semantics merges them.
	r := rel2(t, "R", []string{"1", "⊥1"}, []string{"1", "⊥2"})
	m := r.Map(func(v value.Value) value.Value {
		if v.IsNull() {
			return value.Int(7)
		}
		return v
	})
	if m.Len() != 1 {
		t.Errorf("Map should merge identical tuples, len = %d", m.Len())
	}
}

func TestRelationStringAndSchema(t *testing.T) {
	rs := schema.NewRelation("Order", "o_id", "product")
	r := MustFromTuples(rs, MustParseTuple("oid1", "pr1"), MustParseTuple("oid2", "pr2"))
	if r.Schema().Name != "Order" || r.Arity() != 2 || r.Name() != "Order" {
		t.Error("schema accessors wrong")
	}
	want := "Order{(oid1, pr1), (oid2, pr2)}"
	if r.String() != want {
		t.Errorf("String = %q, want %q", r.String(), want)
	}
	if _, err := FromTuples(rs, MustParseTuple("x")); err == nil {
		t.Error("FromTuples with wrong arity should fail")
	}
}

func TestMustFromTuplesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFromTuples should panic on bad arity")
		}
	}()
	MustFromTuples(schema.WithArity("R", 2), MustParseTuple("1"))
}

func TestRelationAddAll(t *testing.T) {
	a := rel2(t, "R", []string{"1", "2"})
	b := rel2(t, "R", []string{"3", "4"}, []string{"1", "2"})
	if err := a.AddAll(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Errorf("AddAll result len = %d", a.Len())
	}
	bad := rel2(t, "S", []string{"1"})
	if err := a.AddAll(bad); err == nil {
		t.Error("AddAll with wrong arity should fail")
	}
}

func TestNilRelationAccessors(t *testing.T) {
	var r *Relation
	if r.Len() != 0 {
		t.Error("nil relation Len should be 0")
	}
	if r.Contains(MustParseTuple("1")) {
		t.Error("nil relation should contain nothing")
	}
	if r.Tuples() != nil {
		t.Error("nil relation Tuples should be nil")
	}
	r.Each(func(Tuple) bool { t.Error("nil relation Each should not call f"); return true })
}
