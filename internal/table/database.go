package table

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"strings"

	"incdata/internal/schema"
	"incdata/internal/value"
)

// Database is an incomplete relational instance: it assigns to each relation
// name of a schema a finite relation over Const ∪ Null (a naïve database in
// the terminology of the paper).  A complete database is one without nulls.
type Database struct {
	schema *schema.Schema
	rels   map[string]*Relation
	// dict is the value dictionary of this database lineage: snapshots,
	// clones and derived databases all share it, so coded-column codes
	// stay comparable across them (see encode.go).
	dict *Dict
}

// NewDatabase creates an empty database over the given schema.  Every
// relation of the schema is initialised to the empty relation.
func NewDatabase(s *schema.Schema) *Database {
	d := &Database{schema: s, rels: make(map[string]*Relation, s.Len()), dict: NewDict()}
	for _, rs := range s.Relations() {
		d.rels[rs.Name] = NewRelation(rs)
	}
	return d
}

// Dict returns the database's value dictionary, shared across snapshots
// and clones of the same lineage.  The coded execution tier keys its
// per-relation encodings against it; a nil dictionary (possible only on
// a zero-value Database) disables coded execution.
func (d *Database) Dict() *Dict {
	if d == nil {
		return nil
	}
	return d.dict
}

// Schema returns the database schema.
func (d *Database) Schema() *schema.Schema { return d.schema }

// Relation returns the named relation, or nil if the schema has no such
// relation.
func (d *Database) Relation(name string) *Relation {
	if d == nil {
		return nil
	}
	return d.rels[name]
}

// MustRelation returns the named relation and panics if it does not exist.
func (d *Database) MustRelation(name string) *Relation {
	r := d.Relation(name)
	if r == nil {
		panic(fmt.Sprintf("table: unknown relation %q", name))
	}
	return r
}

// Add inserts a tuple into the named relation.
func (d *Database) Add(rel string, t Tuple) error {
	r := d.Relation(rel)
	if r == nil {
		return fmt.Errorf("table: unknown relation %q", rel)
	}
	return r.Add(t)
}

// MustAdd is Add that panics on error.
func (d *Database) MustAdd(rel string, t Tuple) {
	if err := d.Add(rel, t); err != nil {
		panic(err)
	}
}

// MustAddRow parses each field with value.Parse and adds the tuple.
func (d *Database) MustAddRow(rel string, fields ...string) {
	d.MustAdd(rel, MustParseTuple(fields...))
}

// SetRelation replaces the named relation wholesale (the arity must match
// the schema).  Under delta tracking the replacement is recorded as the
// exact tuple diff between the old and new contents, so an equal
// replacement produces an empty delta.
func (d *Database) SetRelation(rel string, r *Relation) error {
	rs, ok := d.schema.Relation(rel)
	if !ok {
		return fmt.Errorf("table: unknown relation %q", rel)
	}
	if rs.Arity() != r.Arity() {
		return fmt.Errorf("table: relation %q has arity %d, got %d", rel, rs.Arity(), r.Arity())
	}
	cp := r.Clone()
	cp.schema = rs
	if old := d.rels[rel]; old.tracked() {
		// Diffing needs both tuple maps materialized; untracked replacement
		// below keeps a lazily loading replacement lazy.
		old.ensure()
		cp.ensure()
		for k, t := range old.tuples {
			if _, ok := cp.tuples[k]; !ok {
				old.rec.get().noteDelete(k, t)
			}
		}
		for k, t := range cp.tuples {
			if _, ok := old.tuples[k]; !ok {
				old.rec.get().noteInsert(k, t)
			}
		}
		cp.rec, old.rec = old.rec, nil
	}
	d.rels[rel] = cp
	return nil
}

// RelationNames returns the relation names in sorted order.
func (d *Database) RelationNames() []string {
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalTuples returns the total number of tuples across all relations.
func (d *Database) TotalTuples() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	out := &Database{schema: d.schema, rels: make(map[string]*Relation, len(d.rels)), dict: d.dict}
	for n, r := range d.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// Snapshot returns an immutable view of the database for snapshot-isolated
// reads: the view shares every relation's tuple storage copy-on-write, so
// taking it costs O(#relations), and subsequent mutations of the original
// copy the mutated relation's map first and never disturb the view.  Any
// number of goroutines may evaluate queries against the returned database
// concurrently, also while writers keep mutating the original.
//
// Snapshot itself must not race with writers (it reads each relation's
// stamp while marking the storage shared); callers serialize the two, which
// is what engine.Engine does with its mutex.  The returned database is a
// view, not a fork: mutating it violates the isolation contract — use
// Clone for a mutable copy.
func (d *Database) Snapshot() *Database {
	return d.SnapshotReusing(nil)
}

// SnapshotReusing is Snapshot, except that relations whose content stamp
// is unchanged since prev (a snapshot of an earlier state of the same
// database) reuse prev's relation headers instead of fresh shares.
// Headers own the lazily built derived caches — hash indexes,
// partitionings, the coded sidecar — so with reuse a commit costs only
// the mutated relations their caches instead of dropping every
// relation's.  Safe because snapshots are read-only and stamps identify
// content: an equal stamp means the header describes exactly the frozen
// storage the new snapshot reads.  prev may be nil (plain Snapshot).
func (d *Database) SnapshotReusing(prev *Database) *Database {
	out := &Database{schema: d.schema, rels: make(map[string]*Relation, len(d.rels)), dict: d.dict}
	for n, r := range d.rels {
		if prev != nil {
			if p, ok := prev.rels[n]; ok && p.Stamp() == r.Stamp() {
				out.rels[n] = p
				continue
			}
		}
		out.rels[n] = r.share()
	}
	return out
}

// Equal reports whether two databases over the same relation names have
// identical relations (set equality of tuples per relation).
func (d *Database) Equal(o *Database) bool {
	if len(d.rels) != len(o.rels) {
		return false
	}
	for n, r := range d.rels {
		or, ok := o.rels[n]
		if !ok || !r.Equal(or) {
			return false
		}
	}
	return true
}

// IsComplete reports whether the database contains no nulls.
func (d *Database) IsComplete() bool {
	for _, r := range d.rels {
		if !r.IsComplete() {
			return false
		}
	}
	return true
}

// IsCodd reports whether every null occurs at most once in the whole
// database (the Codd-table model of SQL nulls).
func (d *Database) IsCodd() bool {
	seen := map[value.Value]bool{}
	for _, name := range d.RelationNames() {
		for _, t := range d.rels[name].Tuples() {
			for _, v := range t {
				if v.IsNull() {
					if seen[v] {
						return false
					}
					seen[v] = true
				}
			}
		}
	}
	return true
}

// Nulls returns Null(D): the set of nulls occurring in D.
func (d *Database) Nulls() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, r := range d.rels {
		for n := range r.Nulls() {
			out[n] = true
		}
	}
	return out
}

// Consts returns Const(D): the set of constants occurring in D.
func (d *Database) Consts() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, r := range d.rels {
		for c := range r.Consts() {
			out[c] = true
		}
	}
	return out
}

// ActiveDomain returns adom(D) = Const(D) ∪ Null(D).
func (d *Database) ActiveDomain() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, r := range d.rels {
		for v := range r.ActiveDomain() {
			out[v] = true
		}
	}
	return out
}

// SortedNulls returns Null(D) as a deterministically ordered slice.
func (d *Database) SortedNulls() []value.Value {
	return SortedValues(d.Nulls())
}

// SortedConsts returns Const(D) as a deterministically ordered slice.
func (d *Database) SortedConsts() []value.Value {
	return SortedValues(d.Consts())
}

// Map applies f to every value of every tuple in every relation.
func (d *Database) Map(f func(value.Value) value.Value) *Database {
	out := &Database{schema: d.schema, rels: make(map[string]*Relation, len(d.rels)), dict: d.dict}
	for n, r := range d.rels {
		out.rels[n] = r.Map(f)
	}
	return out
}

// CompletePart returns the database keeping only null-free tuples.
func (d *Database) CompletePart() *Database {
	out := &Database{schema: d.schema, rels: make(map[string]*Relation, len(d.rels)), dict: d.dict}
	for n, r := range d.rels {
		out.rels[n] = r.CompletePart()
	}
	return out
}

// ContainsDatabase reports whether every tuple of o is present in d
// (relation-wise containment, marked-null identity).  This is the "⊇" used
// by the OWA semantics.
func (d *Database) ContainsDatabase(o *Database) bool {
	for n, or := range o.rels {
		dr, ok := d.rels[n]
		if !ok {
			if or.Len() > 0 {
				return false
			}
			continue
		}
		contained := true
		or.Each(func(t Tuple) bool {
			if !dr.Contains(t) {
				contained = false
				return false
			}
			return true
		})
		if !contained {
			return false
		}
	}
	return true
}

// CanonicalKey returns a canonical binary encoding of the database
// contents: two databases over the same schema have equal keys iff they
// hold the same tuples relation by relation.  World enumeration uses it to
// deduplicate worlds far more cheaply than rendering String.
func (d *Database) CanonicalKey() string {
	var buf []byte
	for _, n := range d.RelationNames() {
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
		buf = d.rels[n].appendCanonicalKey(buf)
	}
	return string(buf)
}

// String renders the database relation by relation in sorted name order.
func (d *Database) String() string {
	names := d.RelationNames()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = d.rels[n].String()
	}
	return strings.Join(parts, "\n")
}

// SortedValues converts a value set into a deterministically ordered slice.
func SortedValues(set map[value.Value]bool) []value.Value {
	out := make([]value.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	slices.SortFunc(out, value.Compare)
	return out
}
