package table

import (
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/value"
)

// ordersSchema is the schema of the running example from Section 1 of the
// paper: Order(o_id, product) and Pay(p_id, order, amount).
func ordersSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("Order", "o_id", "product"),
		schema.NewRelation("Pay", "p_id", "order", "amount"),
	)
}

// ordersDB is the instance from the introduction: Order = {(oid1,pr1),
// (oid2,pr2)}, Pay = {(pid1, ⊥, 100)}.
func ordersDB() *Database {
	d := NewDatabase(ordersSchema())
	d.MustAddRow("Order", "oid1", "pr1")
	d.MustAddRow("Order", "oid2", "pr2")
	d.MustAddRow("Pay", "pid1", "⊥1", "100")
	return d
}

func TestDatabaseBasics(t *testing.T) {
	d := ordersDB()
	if d.Schema().Len() != 2 {
		t.Error("schema lost")
	}
	if d.Relation("Order").Len() != 2 || d.Relation("Pay").Len() != 1 {
		t.Error("relation sizes wrong")
	}
	if d.Relation("Nope") != nil {
		t.Error("unknown relation should be nil")
	}
	if d.TotalTuples() != 3 {
		t.Errorf("TotalTuples = %d", d.TotalTuples())
	}
	names := d.RelationNames()
	if len(names) != 2 || names[0] != "Order" || names[1] != "Pay" {
		t.Errorf("RelationNames = %v", names)
	}
	if err := d.Add("Nope", MustParseTuple("1")); err == nil {
		t.Error("Add to unknown relation should fail")
	}
}

func TestDatabaseMustPanics(t *testing.T) {
	d := ordersDB()
	defer func() {
		if recover() == nil {
			t.Error("MustRelation should panic on unknown relation")
		}
	}()
	d.MustRelation("Nope")
}

func TestDatabaseMustAddPanics(t *testing.T) {
	d := ordersDB()
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on unknown relation")
		}
	}()
	d.MustAdd("Nope", MustParseTuple("1"))
}

func TestDatabaseCompletenessAndDomains(t *testing.T) {
	d := ordersDB()
	if d.IsComplete() {
		t.Error("database with a null should not be complete")
	}
	if !d.IsCodd() {
		t.Error("single occurrence of ⊥1 -> Codd database")
	}
	d.MustAddRow("Order", "oid3", "⊥1") // reuse ⊥1 across relations
	if d.IsCodd() {
		t.Error("reused null -> not Codd")
	}
	nulls := d.Nulls()
	if len(nulls) != 1 || !nulls[value.Null(1)] {
		t.Errorf("Nulls = %v", nulls)
	}
	if len(d.Consts()) != 7 {
		t.Errorf("Consts = %v", d.Consts())
	}
	if len(d.ActiveDomain()) != 8 {
		t.Errorf("adom = %v", d.ActiveDomain())
	}
	sn := d.SortedNulls()
	if len(sn) != 1 || sn[0] != value.Null(1) {
		t.Errorf("SortedNulls = %v", sn)
	}
	sc := d.SortedConsts()
	if len(sc) != 7 || !value.Less(sc[0], sc[len(sc)-1]) {
		t.Errorf("SortedConsts = %v", sc)
	}
}

func TestDatabaseCloneEqual(t *testing.T) {
	d := ordersDB()
	c := d.Clone()
	if !d.Equal(c) {
		t.Error("clone should be equal")
	}
	c.MustAddRow("Order", "oid9", "pr9")
	if d.Equal(c) {
		t.Error("modified clone should differ")
	}
	if d.Relation("Order").Len() != 2 {
		t.Error("clone aliases storage")
	}
	// databases over different relation name sets are unequal
	other := NewDatabase(schema.MustNew(schema.NewRelation("Order", "o_id", "product")))
	if d.Equal(other) {
		t.Error("different relation sets should differ")
	}
}

func TestDatabaseMapAndCompletePart(t *testing.T) {
	d := ordersDB()
	v := d.Map(func(x value.Value) value.Value {
		if x.IsNull() {
			return value.String("oid1")
		}
		return x
	})
	if !v.IsComplete() {
		t.Error("after substituting nulls, database should be complete")
	}
	if !v.Relation("Pay").Contains(MustParseTuple("pid1", "oid1", "100")) {
		t.Error("Map did not substitute")
	}
	cp := d.CompletePart()
	if cp.Relation("Pay").Len() != 0 || cp.Relation("Order").Len() != 2 {
		t.Error("CompletePart wrong")
	}
}

func TestDatabaseContainsDatabase(t *testing.T) {
	d := ordersDB()
	small := NewDatabase(ordersSchema())
	small.MustAddRow("Order", "oid1", "pr1")
	if !d.ContainsDatabase(small) {
		t.Error("d should contain its subset")
	}
	if small.ContainsDatabase(d) {
		t.Error("subset should not contain superset")
	}
	if !d.ContainsDatabase(d) {
		t.Error("containment should be reflexive")
	}
}

func TestDatabaseSetRelation(t *testing.T) {
	d := ordersDB()
	r := NewRelationArity("X", 2)
	r.MustAdd(MustParseTuple("a", "b"))
	if err := d.SetRelation("Order", r); err != nil {
		t.Fatal(err)
	}
	if d.Relation("Order").Len() != 1 || !d.Relation("Order").Contains(MustParseTuple("a", "b")) {
		t.Error("SetRelation did not replace")
	}
	if d.Relation("Order").Name() != "Order" {
		t.Error("SetRelation should rename to schema name")
	}
	if err := d.SetRelation("Nope", r); err == nil {
		t.Error("SetRelation on unknown relation should fail")
	}
	bad := NewRelationArity("X", 5)
	if err := d.SetRelation("Order", bad); err == nil {
		t.Error("SetRelation with arity mismatch should fail")
	}
	// original relation r is not aliased
	r.MustAdd(MustParseTuple("c", "d"))
	if d.Relation("Order").Len() != 1 {
		t.Error("SetRelation aliases the given relation")
	}
}

func TestDatabaseString(t *testing.T) {
	d := ordersDB()
	s := d.String()
	if !strings.Contains(s, "Order{(oid1, pr1), (oid2, pr2)}") || !strings.Contains(s, "Pay{(pid1, ⊥1, 100)}") {
		t.Errorf("String = %q", s)
	}
}

func TestSortedValues(t *testing.T) {
	set := map[value.Value]bool{
		value.Int(5):      true,
		value.Null(1):     true,
		value.String("a"): true,
		value.Int(-2):     true,
	}
	got := SortedValues(set)
	if len(got) != 4 || got[0] != value.Null(1) || got[1] != value.Int(-2) || got[3] != value.String("a") {
		t.Errorf("SortedValues = %v", got)
	}
}
