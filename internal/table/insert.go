package table

// Keyed batch insertion.  The columnar gather path (internal/plan)
// computes each output row's binary key column-wise before it decides
// whether to materialize the row as a tuple at all; Inserter lets it
// probe and insert with that precomputed key so duplicate rows are
// dropped without ever allocating a tuple, and the copy-on-write check
// and version bump happen once per batch instead of once per row (the
// same amortization AddBatch provides for row batches).

// Inserter performs amortized keyed inserts into a relation.  It is
// obtained from BeginInsert and must be used exclusively: no other
// mutation, share, or snapshot of the relation may happen between
// BeginInsert and the last Add/Has call, and an Inserter must not be
// used from multiple goroutines.
type Inserter struct {
	r *Relation
}

// BeginInsert prepares the relation for a batch of keyed inserts,
// performing the copy-on-write check, version bump, and derived-cache
// invalidation once for the whole batch.
func (r *Relation) BeginInsert() Inserter {
	r.mutable()
	return Inserter{r: r}
}

// Has reports whether a tuple with the given precomputed key is already
// stored.  The key is never retained.
func (in Inserter) Has(key []byte) bool {
	_, ok := in.r.tuples[string(key)]
	return ok
}

// Add inserts t under its precomputed key (which must equal
// t.AppendKey(nil)); it is a no-op when the key is already present.  The
// key bytes are copied into the interned map key, never retained.
func (in Inserter) Add(key []byte, t Tuple) {
	if _, ok := in.r.tuples[string(key)]; ok {
		return
	}
	in.r.tuples[string(key)] = t
	in.r.noteInsert(string(key), t)
}
