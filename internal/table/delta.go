package table

// Delta capture: the signal that drives incremental view maintenance
// (internal/inc).  A Tracker attached to a Database records, for every
// relation, the net set of tuples inserted and deleted since tracking
// started — normalized against the starting state, so an insert followed
// by a delete of the same tuple (or vice versa) cancels out and an update
// that ends where it began produces an empty delta.
//
// Tracking piggybacks on the existing mutation paths: every in-place
// mutator of Relation (Add, AddAll, Remove, Retain, Reset, FillMapped)
// notes the tuples it actually changes, and Database.SetRelation diffs the
// old and new contents.  Untracked relations — scratch relations inside
// plan sessions, snapshots, clones — carry a nil recorder and pay only a
// nil check.

// Delta is the net change of one relation between two points in time:
// Inserted holds tuples present now but not then, Deleted tuples present
// then but not now.  Both are keyed by the canonical tuple key
// (Tuple.Key); the two maps are always disjoint.
type Delta struct {
	Inserted map[string]Tuple
	Deleted  map[string]Tuple
}

// Empty reports whether the delta records no net change.
func (d *Delta) Empty() bool {
	return d == nil || (len(d.Inserted) == 0 && len(d.Deleted) == 0)
}

// Size returns the total number of inserted plus deleted tuples.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.Inserted) + len(d.Deleted)
}

// noteInsert records that the tuple keyed k became present.  A pending
// deletion of the same tuple cancels instead (the tuple is back where it
// started).
func (d *Delta) noteInsert(k string, t Tuple) {
	if _, ok := d.Deleted[k]; ok {
		delete(d.Deleted, k)
		return
	}
	d.Inserted[k] = t
}

// noteDelete records that the tuple keyed k became absent, cancelling a
// pending insertion of the same tuple.
func (d *Delta) noteDelete(k string, t Tuple) {
	if _, ok := d.Inserted[k]; ok {
		delete(d.Inserted, k)
		return
	}
	d.Deleted[k] = t
}

// ChangeSet is the net change of a whole database between two points in
// time: one Delta per relation that was actually mutated.  Relations whose
// net change is empty may appear with an empty Delta (the mutation was
// undone) or not at all.
type ChangeSet struct {
	Rels map[string]*Delta
}

// Empty reports whether no relation has a net change.
func (cs *ChangeSet) Empty() bool {
	if cs == nil {
		return true
	}
	for _, d := range cs.Rels {
		if !d.Empty() {
			return false
		}
	}
	return true
}

// Delta returns the named relation's delta, or nil when the relation was
// not mutated.
func (cs *ChangeSet) Delta(name string) *Delta {
	if cs == nil {
		return nil
	}
	return cs.Rels[name]
}

// Size returns the total number of inserted plus deleted tuples across all
// relations.
func (cs *ChangeSet) Size() int {
	n := 0
	if cs != nil {
		for _, d := range cs.Rels {
			n += d.Size()
		}
	}
	return n
}

// recorder is the per-relation capture hook.  It lives on the Relation so
// the in-place mutators can note changes without knowing about databases;
// the Tracker owns it and detaches it on Stop.  The Delta is allocated on
// the first actual change and registered in the change set at that point,
// so an update that never touches a relation costs nothing beyond the
// recorder itself (one slice slot, allocated in bulk by Track).
type recorder struct {
	cs    *ChangeSet
	name  string
	delta *Delta // nil until the first change
}

// get returns the recorder's delta, allocating and registering it on
// first use.
func (rec *recorder) get() *Delta {
	if rec.delta == nil {
		rec.delta = &Delta{Inserted: map[string]Tuple{}, Deleted: map[string]Tuple{}}
		rec.cs.Rels[rec.name] = rec.delta
	}
	return rec.delta
}

// tracked reports whether changes must be recorded; mutators call it
// before doing per-tuple bookkeeping so untracked relations skip the work.
func (r *Relation) tracked() bool { return r != nil && r.rec != nil }

func (r *Relation) noteInsert(k string, t Tuple) {
	if r.rec != nil {
		r.rec.get().noteInsert(k, t)
	}
}

func (r *Relation) noteDelete(k string, t Tuple) {
	if r.rec != nil {
		r.rec.get().noteDelete(k, t)
	}
}

// noteDeleteAll records the deletion of every current tuple (Reset).
func (r *Relation) noteDeleteAll() {
	if r.rec == nil || len(r.tuples) == 0 {
		return
	}
	d := r.rec.get()
	for k, t := range r.tuples {
		d.noteDelete(k, t)
	}
}

// Tracker captures the net tuple changes of a database's relations from
// Track until Stop.  At most one tracker may be attached to a database at
// a time, and the database must not be mutated concurrently with Track or
// Stop (the same single-writer contract as mutation itself — the engine
// serializes updates under its lock).
type Tracker struct {
	db *Database
	cs *ChangeSet
}

// Track attaches a tracker to every relation of the database and returns
// it.  It panics if a tracker is already attached.  Attaching is cheap:
// deltas are allocated lazily on the first actual change per relation.
func (d *Database) Track() *Tracker {
	cs := &ChangeSet{Rels: make(map[string]*Delta)}
	tr := &Tracker{db: d, cs: cs}
	recs := make([]recorder, len(d.rels)) // one bulk allocation
	i := 0
	for name, r := range d.rels {
		if r.rec != nil {
			panic("table: database is already tracked")
		}
		recs[i] = recorder{cs: cs, name: name}
		r.rec = &recs[i]
		i++
	}
	return tr
}

// Stop detaches the tracker and returns the captured change set, dropping
// relations whose net change cancelled out.  The tracker must not be used
// afterwards.
func (tr *Tracker) Stop() *ChangeSet {
	for _, r := range tr.db.rels {
		r.rec = nil
	}
	for name, d := range tr.cs.Rels {
		if d.Empty() {
			delete(tr.cs.Rels, name)
		}
	}
	return tr.cs
}
