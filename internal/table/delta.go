package table

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Delta capture: the signal that drives incremental view maintenance
// (internal/inc).  A Tracker attached to a Database records, for every
// relation, the net set of tuples inserted and deleted since tracking
// started — normalized against the starting state, so an insert followed
// by a delete of the same tuple (or vice versa) cancels out and an update
// that ends where it began produces an empty delta.
//
// Tracking piggybacks on the existing mutation paths: every in-place
// mutator of Relation (Add, AddAll, Remove, Retain, Reset, FillMapped)
// notes the tuples it actually changes, and Database.SetRelation diffs the
// old and new contents.  Untracked relations — scratch relations inside
// plan sessions, snapshots, clones — carry a nil recorder and pay only a
// nil check.

// Delta is the net change of one relation between two points in time:
// Inserted holds tuples present now but not then, Deleted tuples present
// then but not now.  Both are keyed by the canonical tuple key
// (Tuple.Key); the two maps are always disjoint.
type Delta struct {
	Inserted map[string]Tuple
	Deleted  map[string]Tuple
}

// NewDelta returns an empty delta ready for composition.
func NewDelta() *Delta {
	return &Delta{Inserted: map[string]Tuple{}, Deleted: map[string]Tuple{}}
}

// Empty reports whether the delta records no net change.
func (d *Delta) Empty() bool {
	return d == nil || (len(d.Inserted) == 0 && len(d.Deleted) == 0)
}

// Size returns the total number of inserted plus deleted tuples.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.Inserted) + len(d.Deleted)
}

// noteInsert records that the tuple keyed k became present.  A pending
// deletion of the same tuple cancels instead (the tuple is back where it
// started).
func (d *Delta) noteInsert(k string, t Tuple) {
	if _, ok := d.Deleted[k]; ok {
		delete(d.Deleted, k)
		return
	}
	d.Inserted[k] = t
}

// noteDelete records that the tuple keyed k became absent, cancelling a
// pending insertion of the same tuple.
func (d *Delta) noteDelete(k string, t Tuple) {
	if _, ok := d.Inserted[k]; ok {
		delete(d.Inserted, k)
		return
	}
	d.Deleted[k] = t
}

// Invert returns the reverse delta: applying it undoes d.  The returned
// delta shares d's maps (Inserted and Deleted are swapped, not copied), so
// neither side may be mutated afterwards — version history treats captured
// deltas as immutable, which is the intended use.
func (d *Delta) Invert() *Delta {
	if d == nil {
		return nil
	}
	return &Delta{Inserted: d.Deleted, Deleted: d.Inserted}
}

// compose folds a subsequent delta into d: d becomes the net change of
// applying d then next.  Because both deltas are exact (a tuple is only
// recorded deleted when present, inserted when absent), insert-then-delete
// and delete-then-insert of the same tuple cancel to no net change.
func (d *Delta) compose(next *Delta) {
	for k, t := range next.Deleted {
		d.noteDelete(k, t)
	}
	for k, t := range next.Inserted {
		d.noteInsert(k, t)
	}
}

// ChangeSet is the net change of a whole database between two points in
// time: one Delta per relation that was actually mutated.  Relations whose
// net change is empty may appear with an empty Delta (the mutation was
// undone) or not at all.
type ChangeSet struct {
	Rels map[string]*Delta
}

// NewChangeSet returns an empty change set ready for Compose.
func NewChangeSet() *ChangeSet {
	return &ChangeSet{Rels: map[string]*Delta{}}
}

// Empty reports whether no relation has a net change.
func (cs *ChangeSet) Empty() bool {
	if cs == nil {
		return true
	}
	for _, d := range cs.Rels {
		if !d.Empty() {
			return false
		}
	}
	return true
}

// Delta returns the named relation's delta, or nil when the relation was
// not mutated.
func (cs *ChangeSet) Delta(name string) *Delta {
	if cs == nil {
		return nil
	}
	return cs.Rels[name]
}

// Size returns the total number of inserted plus deleted tuples across all
// relations.
func (cs *ChangeSet) Size() int {
	n := 0
	if cs != nil {
		for _, d := range cs.Rels {
			n += d.Size()
		}
	}
	return n
}

// Compose folds a subsequent change set into cs: cs becomes the net change
// of applying cs then next.  The receiver must own its maps (start from
// NewChangeSet and only ever Compose into it); next is only read.  This is
// the replay primitive of version history: a chain of per-commit deltas
// composes into the net diff between two commits.
func (cs *ChangeSet) Compose(next *ChangeSet) {
	if next == nil {
		return
	}
	for name, nd := range next.Rels {
		if nd.Empty() {
			continue
		}
		d := cs.Rels[name]
		if d == nil {
			d = NewDelta()
			cs.Rels[name] = d
		}
		d.compose(nd)
	}
}

// Invert returns the reverse change set: applying it undoes cs.  Like
// Delta.Invert it shares the underlying maps, so both sides must be treated
// as immutable afterwards.
func (cs *ChangeSet) Invert() *ChangeSet {
	if cs == nil {
		return nil
	}
	out := &ChangeSet{Rels: make(map[string]*Delta, len(cs.Rels))}
	for name, d := range cs.Rels {
		out.Rels[name] = d.Invert()
	}
	return out
}

// RelationNames returns the names of relations with a non-empty net change,
// sorted.
func (cs *ChangeSet) RelationNames() []string {
	if cs == nil {
		return nil
	}
	names := make([]string, 0, len(cs.Rels))
	for n, d := range cs.Rels {
		if !d.Empty() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// String renders the change set relation by relation in sorted order, each
// delta as -deleted and +inserted tuples in canonical order — the format
// cmd/incq's -diff flag prints.
func (cs *ChangeSet) String() string {
	var b strings.Builder
	for _, name := range cs.RelationNames() {
		d := cs.Rels[name]
		fmt.Fprintf(&b, "%s (+%d -%d)\n", name, len(d.Inserted), len(d.Deleted))
		for _, t := range sortedDeltaTuples(d.Deleted) {
			fmt.Fprintf(&b, "  - %s\n", t)
		}
		for _, t := range sortedDeltaTuples(d.Inserted) {
			fmt.Fprintf(&b, "  + %s\n", t)
		}
	}
	return b.String()
}

// sortedDeltaTuples returns one side of a delta in canonical tuple order.
func sortedDeltaTuples(m map[string]Tuple) []Tuple {
	out := make([]Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	slices.SortFunc(out, Tuple.Compare)
	return out
}

// ApplyDelta replays a captured delta onto the relation in place: deleted
// tuples are removed, inserted tuples added (idempotently — tuples already
// in their target state are skipped).  The delta's tuples are adopted, not
// copied; they must come from the same schema lineage (arity is not
// re-checked).  Delta capture keeps working: a tracked relation notes the
// changes ApplyDelta makes, which is how version merges record their own
// commit delta.
func (r *Relation) ApplyDelta(d *Delta) {
	if d.Empty() {
		return
	}
	r.mutable()
	for k, t := range d.Deleted {
		if _, ok := r.tuples[k]; ok {
			delete(r.tuples, k)
			r.noteDelete(k, t)
		}
	}
	for k, t := range d.Inserted {
		if _, ok := r.tuples[k]; !ok {
			r.tuples[k] = t
			r.noteInsert(k, t)
		}
	}
}

// Apply replays a change set onto the database in place, relation by
// relation.  It is the checkpoint-replay hook of version history: a state
// equals its nearest checkpoint plus the composition of the deltas after
// it.  A delta for a relation the schema does not have is an error.
func (d *Database) Apply(cs *ChangeSet) error {
	if cs == nil {
		return nil
	}
	for name, delta := range cs.Rels {
		r := d.rels[name]
		if r == nil {
			return fmt.Errorf("table: apply: unknown relation %q", name)
		}
		r.ApplyDelta(delta)
	}
	return nil
}

// recorder is the per-relation capture hook.  It lives on the Relation so
// the in-place mutators can note changes without knowing about databases;
// the Tracker owns it and detaches it on Stop.  The Delta is allocated on
// the first actual change and registered in the change set at that point,
// so an update that never touches a relation costs nothing beyond the
// recorder itself (one slice slot, allocated in bulk by Track).
type recorder struct {
	cs    *ChangeSet
	name  string
	delta *Delta // nil until the first change
}

// get returns the recorder's delta, allocating and registering it on
// first use.
func (rec *recorder) get() *Delta {
	if rec.delta == nil {
		rec.delta = &Delta{Inserted: map[string]Tuple{}, Deleted: map[string]Tuple{}}
		rec.cs.Rels[rec.name] = rec.delta
	}
	return rec.delta
}

// tracked reports whether changes must be recorded; mutators call it
// before doing per-tuple bookkeeping so untracked relations skip the work.
func (r *Relation) tracked() bool { return r != nil && r.rec != nil }

func (r *Relation) noteInsert(k string, t Tuple) {
	if r.rec != nil {
		r.rec.get().noteInsert(k, t)
	}
}

func (r *Relation) noteDelete(k string, t Tuple) {
	if r.rec != nil {
		r.rec.get().noteDelete(k, t)
	}
}

// noteDeleteAll records the deletion of every current tuple (Reset).
func (r *Relation) noteDeleteAll() {
	if r.rec == nil || len(r.tuples) == 0 {
		return
	}
	d := r.rec.get()
	for k, t := range r.tuples {
		d.noteDelete(k, t)
	}
}

// Tracker captures the net tuple changes of a database's relations from
// Track until Stop.  At most one tracker may be attached to a database at
// a time, and the database must not be mutated concurrently with Track or
// Stop (the same single-writer contract as mutation itself — the engine
// serializes updates under its lock).
type Tracker struct {
	db *Database
	cs *ChangeSet
}

// Track attaches a tracker to every relation of the database and returns
// it.  It panics if a tracker is already attached.  Attaching is cheap:
// deltas are allocated lazily on the first actual change per relation.
func (d *Database) Track() *Tracker {
	cs := &ChangeSet{Rels: make(map[string]*Delta)}
	tr := &Tracker{db: d, cs: cs}
	recs := make([]recorder, len(d.rels)) // one bulk allocation
	i := 0
	for name, r := range d.rels {
		if r.rec != nil {
			panic("table: database is already tracked")
		}
		recs[i] = recorder{cs: cs, name: name}
		r.rec = &recs[i]
		i++
	}
	return tr
}

// Stop detaches the tracker and returns the captured change set, dropping
// relations whose net change cancelled out.  The tracker must not be used
// afterwards.
func (tr *Tracker) Stop() *ChangeSet {
	for _, r := range tr.db.rels {
		r.rec = nil
	}
	for name, d := range tr.cs.Rels {
		if d.Empty() {
			delete(tr.cs.Rels, name)
		}
	}
	return tr.cs
}
