// Package constraints implements integrity constraints over incomplete
// relations — functional dependencies and unary inclusion dependencies —
// under the three satisfaction notions the literature on incomplete data
// distinguishes (the "handling constraints" direction of Section 7 of the
// paper):
//
//   - naïve satisfaction: nulls are treated as ordinary values (marked-null
//     identity), i.e. the constraint is checked on the naïve table as-is;
//   - possible (weak) satisfaction: some valuation of the nulls yields a
//     complete relation satisfying the constraint;
//   - certain (strong) satisfaction: every valuation does.
//
// Possible/certain satisfaction are checked by valuation enumeration over a
// finite domain (adom plus fresh constants), mirroring the certain-answer
// machinery; constraints are, after all, Boolean queries.
package constraints

import (
	"fmt"
	"strings"

	"incdata/internal/semantics"
	"incdata/internal/table"
)

// FD is a functional dependency X → Y over attribute positions of a single
// relation.
type FD struct {
	Rel string
	Lhs []int
	Rhs []int
}

// String renders the FD.
func (fd FD) String() string {
	return fmt.Sprintf("%s: %s → %s", fd.Rel, joinInts(fd.Lhs), joinInts(fd.Rhs))
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("#%d", x+1)
	}
	return strings.Join(parts, ",")
}

// validate checks the positions against the relation's arity.
func (fd FD) validate(r *table.Relation) error {
	if r == nil {
		return fmt.Errorf("constraints: unknown relation %q", fd.Rel)
	}
	for _, p := range append(append([]int{}, fd.Lhs...), fd.Rhs...) {
		if p < 0 || p >= r.Arity() {
			return fmt.Errorf("constraints: position %d out of range for %s", p, fd.Rel)
		}
	}
	if len(fd.Lhs) == 0 || len(fd.Rhs) == 0 {
		return fmt.Errorf("constraints: FD with empty side")
	}
	return nil
}

// holdsOn checks the FD on a relation with marked-null identity: any two
// tuples agreeing on Lhs must agree on Rhs.
func (fd FD) holdsOn(r *table.Relation) bool {
	seen := map[string]table.Tuple{}
	ok := true
	r.Each(func(t table.Tuple) bool {
		key := t.Project(fd.Lhs...).Key()
		if prev, dup := seen[key]; dup {
			if prev.Project(fd.Rhs...).Key() != t.Project(fd.Rhs...).Key() {
				ok = false
				return false
			}
		} else {
			seen[key] = t
		}
		return true
	})
	return ok
}

// SatisfiesNaive checks the FD on the naïve table directly.
func (fd FD) SatisfiesNaive(d *table.Database) (bool, error) {
	r := d.Relation(fd.Rel)
	if err := fd.validate(r); err != nil {
		return false, err
	}
	return fd.holdsOn(r), nil
}

// SatisfiesPossibly reports whether some valuation of the nulls (over adom
// plus extraFresh fresh constants) yields a relation satisfying the FD.
func (fd FD) SatisfiesPossibly(d *table.Database, extraFresh int) (bool, error) {
	r := d.Relation(fd.Rel)
	if err := fd.validate(r); err != nil {
		return false, err
	}
	dom := semantics.DomainOf(d, extraFresh)
	possible := false
	semantics.EnumerateCWA(d, dom, func(w *table.Database) bool {
		if fd.holdsOn(w.Relation(fd.Rel)) {
			possible = true
			return false
		}
		return true
	})
	return possible, nil
}

// SatisfiesCertainly reports whether every valuation yields a relation
// satisfying the FD.
func (fd FD) SatisfiesCertainly(d *table.Database, extraFresh int) (bool, error) {
	r := d.Relation(fd.Rel)
	if err := fd.validate(r); err != nil {
		return false, err
	}
	dom := semantics.DomainOf(d, extraFresh)
	certain := true
	semantics.EnumerateCWA(d, dom, func(w *table.Database) bool {
		if !fd.holdsOn(w.Relation(fd.Rel)) {
			certain = false
			return false
		}
		return true
	})
	return certain, nil
}

// IND is a unary inclusion dependency R[pos] ⊆ S[pos'].
type IND struct {
	FromRel string
	FromPos int
	ToRel   string
	ToPos   int
}

// String renders the IND.
func (ind IND) String() string {
	return fmt.Sprintf("%s[#%d] ⊆ %s[#%d]", ind.FromRel, ind.FromPos+1, ind.ToRel, ind.ToPos+1)
}

func (ind IND) validate(d *table.Database) error {
	from := d.Relation(ind.FromRel)
	to := d.Relation(ind.ToRel)
	if from == nil || to == nil {
		return fmt.Errorf("constraints: unknown relation in %s", ind)
	}
	if ind.FromPos < 0 || ind.FromPos >= from.Arity() || ind.ToPos < 0 || ind.ToPos >= to.Arity() {
		return fmt.Errorf("constraints: position out of range in %s", ind)
	}
	return nil
}

func (ind IND) holdsOn(d *table.Database) bool {
	to := map[string]bool{}
	d.Relation(ind.ToRel).Each(func(t table.Tuple) bool {
		to[t.Project(ind.ToPos).Key()] = true
		return true
	})
	ok := true
	d.Relation(ind.FromRel).Each(func(t table.Tuple) bool {
		if !to[t.Project(ind.FromPos).Key()] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// SatisfiesNaive checks the IND with marked-null identity.
func (ind IND) SatisfiesNaive(d *table.Database) (bool, error) {
	if err := ind.validate(d); err != nil {
		return false, err
	}
	return ind.holdsOn(d), nil
}

// SatisfiesPossibly reports whether some valuation satisfies the IND.
func (ind IND) SatisfiesPossibly(d *table.Database, extraFresh int) (bool, error) {
	if err := ind.validate(d); err != nil {
		return false, err
	}
	dom := semantics.DomainOf(d, extraFresh)
	possible := false
	semantics.EnumerateCWA(d, dom, func(w *table.Database) bool {
		if ind.holdsOn(w) {
			possible = true
			return false
		}
		return true
	})
	return possible, nil
}

// SatisfiesCertainly reports whether every valuation satisfies the IND.
func (ind IND) SatisfiesCertainly(d *table.Database, extraFresh int) (bool, error) {
	if err := ind.validate(d); err != nil {
		return false, err
	}
	dom := semantics.DomainOf(d, extraFresh)
	certain := true
	semantics.EnumerateCWA(d, dom, func(w *table.Database) bool {
		if !ind.holdsOn(w) {
			certain = false
			return false
		}
		return true
	})
	return certain, nil
}
