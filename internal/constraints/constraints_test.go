package constraints

import (
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
)

func db(t *testing.T, rRows, sRows [][]string) *table.Database {
	t.Helper()
	s := schema.MustNew(schema.WithArity("R", 2), schema.WithArity("S", 1))
	d := table.NewDatabase(s)
	for _, r := range rRows {
		d.MustAddRow("R", r...)
	}
	for _, r := range sRows {
		d.MustAddRow("S", r...)
	}
	return d
}

func TestFDThreeNotions(t *testing.T) {
	fd := FD{Rel: "R", Lhs: []int{0}, Rhs: []int{1}}
	// R = {(1,2),(1,⊥1)}: naïvely violated (2 ≠ ⊥1), possibly satisfied
	// (⊥1↦2), not certainly satisfied (⊥1↦3 violates).
	d := db(t, [][]string{{"1", "2"}, {"1", "⊥1"}}, nil)
	if ok, err := fd.SatisfiesNaive(d); err != nil || ok {
		t.Errorf("naive = %v %v, want violated", ok, err)
	}
	if ok, err := fd.SatisfiesPossibly(d, 1); err != nil || !ok {
		t.Errorf("possibly = %v %v, want satisfied", ok, err)
	}
	if ok, err := fd.SatisfiesCertainly(d, 1); err != nil || ok {
		t.Errorf("certainly = %v %v, want violated", ok, err)
	}

	// A complete relation satisfying the FD satisfies it in all senses.
	d2 := db(t, [][]string{{"1", "2"}, {"3", "4"}}, nil)
	for name, f := range map[string]func() (bool, error){
		"naive":     func() (bool, error) { return fd.SatisfiesNaive(d2) },
		"possibly":  func() (bool, error) { return fd.SatisfiesPossibly(d2, 1) },
		"certainly": func() (bool, error) { return fd.SatisfiesCertainly(d2, 1) },
	} {
		if ok, err := f(); err != nil || !ok {
			t.Errorf("%s on clean relation = %v %v", name, ok, err)
		}
	}

	// A hard violation on constants is a violation in every sense.
	d3 := db(t, [][]string{{"1", "2"}, {"1", "3"}}, nil)
	if ok, _ := fd.SatisfiesPossibly(d3, 1); ok {
		t.Error("constant violation cannot be repaired by valuations")
	}
	if ok, _ := fd.SatisfiesCertainly(d3, 1); ok {
		t.Error("certain satisfaction must fail too")
	}

	// Naïve satisfaction can hold while certain satisfaction fails: two
	// tuples with distinct-null keys collide under some valuation.
	d4 := db(t, [][]string{{"⊥1", "1"}, {"⊥2", "2"}}, nil)
	if ok, _ := fd.SatisfiesNaive(d4); !ok {
		t.Error("naively the keys ⊥1 and ⊥2 are distinct")
	}
	if ok, _ := fd.SatisfiesCertainly(d4, 1); ok {
		t.Error("⊥1 = ⊥2 under some valuation breaks the FD")
	}
}

func TestFDErrorsAndString(t *testing.T) {
	d := db(t, [][]string{{"1", "2"}}, nil)
	if _, err := (FD{Rel: "Nope", Lhs: []int{0}, Rhs: []int{1}}).SatisfiesNaive(d); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := (FD{Rel: "R", Lhs: []int{0}, Rhs: []int{7}}).SatisfiesNaive(d); err == nil {
		t.Error("out-of-range position should error")
	}
	if _, err := (FD{Rel: "R", Lhs: nil, Rhs: []int{1}}).SatisfiesCertainly(d, 1); err == nil {
		t.Error("empty LHS should error")
	}
	if _, err := (FD{Rel: "Nope", Lhs: []int{0}, Rhs: []int{1}}).SatisfiesPossibly(d, 1); err == nil {
		t.Error("unknown relation should error in possible satisfaction")
	}
	fd := FD{Rel: "R", Lhs: []int{0}, Rhs: []int{1}}
	if !strings.Contains(fd.String(), "R: #1 → #2") {
		t.Errorf("String = %q", fd.String())
	}
}

func TestIND(t *testing.T) {
	ind := IND{FromRel: "S", FromPos: 0, ToRel: "R", ToPos: 0}
	// S = {⊥1}, R = {(1,2)}: naïvely violated, possibly satisfied (⊥1↦1),
	// not certainly satisfied.
	d := db(t, [][]string{{"1", "2"}}, [][]string{{"⊥1"}})
	if ok, err := ind.SatisfiesNaive(d); err != nil || ok {
		t.Errorf("naive = %v %v", ok, err)
	}
	if ok, err := ind.SatisfiesPossibly(d, 1); err != nil || !ok {
		t.Errorf("possibly = %v %v", ok, err)
	}
	if ok, err := ind.SatisfiesCertainly(d, 1); err != nil || ok {
		t.Errorf("certainly = %v %v", ok, err)
	}
	// Satisfied in all senses when the value is present.
	d2 := db(t, [][]string{{"1", "2"}}, [][]string{{"1"}})
	if ok, _ := ind.SatisfiesNaive(d2); !ok {
		t.Error("naive should hold")
	}
	if ok, _ := ind.SatisfiesCertainly(d2, 1); !ok {
		t.Error("certain should hold")
	}
	if ok, _ := ind.SatisfiesPossibly(d2, 1); !ok {
		t.Error("possible should hold")
	}
	// Errors and String.
	if _, err := (IND{FromRel: "Nope", ToRel: "R"}).SatisfiesNaive(d); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := (IND{FromRel: "S", FromPos: 5, ToRel: "R"}).SatisfiesPossibly(d, 1); err == nil {
		t.Error("out-of-range position should error")
	}
	if _, err := (IND{FromRel: "S", FromPos: 0, ToRel: "R", ToPos: 9}).SatisfiesCertainly(d, 1); err == nil {
		t.Error("out-of-range target position should error")
	}
	if !strings.Contains(ind.String(), "S[#1] ⊆ R[#1]") {
		t.Errorf("String = %q", ind.String())
	}
}
